GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

# Full CI gate: tier-1, vet, race detector, and a deadline smoke run of
# cmd/goldmine that must exit cleanly (see scripts/verify.sh).
verify:
	sh scripts/verify.sh
