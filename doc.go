// Package goldmine is a from-scratch Go reproduction of "Towards Coverage
// Closure: Using GoldMine Assertions for Generating Design Validation
// Stimulus" (Liu, Sheridan, Tuohy, Vasudevan — DATE 2011 / UIUC CRHC-10-03).
//
// The library mines decision-tree assertions from RTL simulation traces,
// model-checks every candidate, and feeds counterexamples back into the trace
// data, incrementally refining the tree until every leaf is a proven
// invariant — at which point the accumulated counterexample inputs are the
// generated validation stimulus and the output's functionality is completely
// covered.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for measured results
// against the paper's tables and figures. The public surface lives under
// internal/ packages driven by the cmd/ tools and examples/.
package goldmine
