// Quickstart: mine assertions and validation stimulus for a small Verilog
// design in ~40 lines. Parses an RTL module, runs the counterexample-guided
// refinement loop on one output, and prints the proven assertions plus the
// generated test patterns.
package main

import (
	"context"

	"fmt"
	"log"

	"goldmine/internal/core"
	"goldmine/internal/rtl"
)

const src = `
module handshake(input clk, rst, input req, ack, output reg busy);
  always @(posedge clk)
    if (rst)      busy <= 0;
    else if (req) busy <= 1;
    else if (ack) busy <= 0;
endmodule`

func main() {
	design, err := rtl.ElaborateSource(src)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := core.NewEngine(design, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Zero-pattern start: the miner begins from "busy is always 0" and lets
	// counterexamples discover the design's behaviour.
	res, err := engine.MineOutputByName(context.Background(), "busy", 0, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged=%v after %d iterations, input-space coverage %.1f%%\n",
		res.Converged, len(res.Iterations), 100*res.InputSpaceCoverage())
	fmt.Println("\nproven assertions:")
	for _, rec := range res.Proved {
		fmt.Printf("  %-40s  // %s\n", rec.Assertion.String(), rec.Method)
	}
	fmt.Println("\nSVA form:")
	for _, rec := range res.Proved {
		fmt.Println(" ", rec.Assertion.SVA(design.Clock))
	}
	fmt.Printf("\n%d generated validation patterns (counterexamples):\n", len(res.Ctx))
	for i, ctx := range res.Ctx {
		fmt.Printf("  pattern %d: %d cycles\n", i+1, len(ctx))
	}
}
