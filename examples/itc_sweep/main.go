// ITC sweep: compares random stimulus against GoldMine-enhanced stimulus on
// the ITC'99-style benchmark designs (a lighter-budget version of Figure 16),
// printing line / condition / toggle / FSM / branch coverage side by side.
package main

import (
	"context"

	"fmt"
	"log"

	"goldmine/internal/core"
	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

func main() {
	benches := []string{"b01", "b02", "b09", "b12", "b17", "b18"}
	cycles := map[string]int{
		"b01": 85, "b02": 50, "b09": 2000, "b12": 2000, "b17": 2000, "b18": 2000,
	}
	fmt.Printf("%-6s %7s | %-37s | %-37s\n", "module", "cycles", "random (ln/cond/tgl/fsm/br)", "goldmine (ln/cond/tgl/fsm/br)")
	for _, name := range benches {
		b, err := designs.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		d, err := b.Design()
		if err != nil {
			log.Fatal(err)
		}
		n := cycles[name]
		rnd := stimgen.Random(d, n, 3, 2)

		rndCol := coverage.New(d)
		if err := rndCol.RunSuite([]sim.Stimulus{rnd}); err != nil {
			log.Fatal(err)
		}

		cfg := core.DefaultConfig()
		cfg.Window = b.Window
		cfg.MaxIterations = 8
		eng, err := core.NewEngine(d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		suite := []sim.Stimulus{rnd}
		seedLen := n
		if seedLen > 128 {
			seedLen = 128
		}
		seed := stimgen.Random(d, seedLen, 3, 2)
		for _, out := range b.KeyOutputs {
			sig := d.Signal(out)
			for bit := 0; bit < sig.Width; bit++ {
				res, err := eng.MineOutput(context.Background(), sig, bit, seed)
				if err != nil {
					log.Fatal(err)
				}
				suite = append(suite, res.Ctx...)
			}
		}
		gmCol := coverage.New(d)
		if err := gmCol.RunSuite(suite); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-6s %7d | %-37s | %-37s\n", name, n, short(rndCol.Report()), short(gmCol.Report()))
	}
}

func short(r coverage.Report) string {
	return fmt.Sprintf("%s/%s/%s/%s/%s",
		trim(r.Line), trim(r.Cond), trim(r.Toggle), trim(r.FSM), trim(r.Branch))
}

func trim(m coverage.Metric) string {
	if !m.Defined() {
		return "X"
	}
	return fmt.Sprintf("%.0f", m.Pct())
}
