// Temporal mining: Section 2.1's mining-window mechanism on a design with
// multi-cycle behaviour. A request/grant handshake with a fixed two-cycle
// grant latency is mined at window lengths 0, 1 and 2 — only the window that
// spans the latency can express the protocol ("once req is seen, gnt is
// asserted two cycles later"), illustrating how the window length bounds the
// temporal depth of discoverable assertions.
package main

import (
	"context"

	"fmt"
	"log"

	"goldmine/internal/core"
	"goldmine/internal/rtl"
)

const src = `
// Two-cycle-latency handshake: req -> (one cycle) pend -> (one cycle) gnt.
module latency2(input clk, rst, input req, output gnt);
  reg pend, gnt_r;
  always @(posedge clk) begin
    if (rst) begin
      pend <= 0;
      gnt_r <= 0;
    end else begin
      pend <= req;
      gnt_r <= pend;
    end
  end
  assign gnt = gnt_r;
endmodule`

func main() {
	design, err := rtl.ElaborateSource(src)
	if err != nil {
		log.Fatal(err)
	}
	for _, window := range []int{0, 1, 2} {
		cfg := core.DefaultConfig()
		cfg.Window = window
		engine, err := core.NewEngine(design, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.MineOutputByName(context.Background(), "gnt", 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d: converged=%v, %d proved assertions, %d ctx, coverage %.1f%%\n",
			window, res.Converged, len(res.Proved), len(res.Ctx), 100*res.InputSpaceCoverage())
		// Show the deepest assertions: the window-2 run expresses the full
		// req -> XX gnt protocol in terms of primary inputs; shallower
		// windows must lean on internal state (pend) instead.
		maxShown := 4
		for _, rec := range res.Proved {
			if maxShown == 0 {
				fmt.Println("   ...")
				break
			}
			fmt.Printf("   %s\n", rec.Assertion)
			maxShown--
		}
		usesState := false
		for _, rec := range res.Proved {
			for _, p := range rec.Assertion.Antecedent {
				if p.Signal == "pend" || p.Signal == "gnt_r" || p.Signal == "gnt" {
					usesState = true
				}
			}
		}
		fmt.Printf("   (assertions reference internal state: %v)\n\n", usesState)
	}
}
