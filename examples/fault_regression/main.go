// Fault regression: the Section 7.4 flow. Mines an assertion suite on the
// correct fetch-stage design, then injects stuck-at faults on the paper's
// signals (stall_in, branch_mispredict, icache_rdvl_i) and reports how many
// assertions detect each fault — using the mined suite as a regression
// vehicle, exactly as Table 2 does.
package main

import (
	"context"

	"fmt"
	"log"

	"goldmine/internal/core"
	"goldmine/internal/designs"
	"goldmine/internal/mc"
	"goldmine/internal/monitor"
	"goldmine/internal/mutate"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

func main() {
	bench, err := designs.Get("fetch")
	if err != nil {
		log.Fatal(err)
	}
	design, err := bench.Design()
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Window = bench.Window
	cfg.MaxIterations = 16
	engine, err := core.NewEngine(design, cfg)
	if err != nil {
		log.Fatal(err)
	}

	seed := stimgen.Random(design, 64, 5, 2)
	fmt.Println("mining regression assertions for fetch.valid ...")
	res, err := engine.MineOutputByName(context.Background(), "valid", 0, seed)
	if err != nil {
		log.Fatal(err)
	}
	asserts := res.Assertions()
	fmt.Printf("mined %d proven assertions (converged=%v)\n\n", len(asserts), res.Converged)

	faults := []mutate.Fault{
		{Signal: "stall_in", StuckAt1: false},
		{Signal: "stall_in", StuckAt1: true},
		{Signal: "branch_mispredict", StuckAt1: false},
		{Signal: "branch_mispredict", StuckAt1: true},
		{Signal: "icache_rdvl_i", StuckAt1: false},
		{Signal: "icache_rdvl_i", StuckAt1: true},
	}
	opts := mc.DefaultOptions()
	opts.MaxBMCDepth = 10
	opts.MaxInduction = 6
	dets, err := mutate.Campaign(design, asserts, faults, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-30s %10s\n", "fault", "detected by")
	for _, det := range dets {
		fmt.Printf("%-30s %6d / %d\n", det.Fault.String(), det.Detected, det.Total)
	}
	fmt.Println("\nassertions detecting 'stall_in stuck-at-1':")
	for _, det := range dets {
		if det.Fault.Signal == "stall_in" && det.Fault.StuckAt1 {
			for _, i := range det.Detecting {
				fmt.Println("  ", asserts[i])
			}
		}
	}

	// The same suite also works as a simulation-time monitor: replay random
	// stimulus on a mutant with the assertions attached as checkers.
	fmt.Println("\nsimulation-based regression (assertion monitor on a mutant):")
	mutant, err := mutate.Apply(design, mutate.Fault{Signal: "stall_in", StuckAt1: true})
	if err != nil {
		log.Fatal(err)
	}
	mon, err := monitor.New(mutant, asserts)
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.RunSuite([]sim.Stimulus{stimgen.Random(mutant, 2000, 11, 2)}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  violations observed: %d (clean=%v, vacuous assertions: %d/%d)\n",
		len(mon.Violations()), mon.Clean(), mon.VacuousCount(), len(asserts))
}
