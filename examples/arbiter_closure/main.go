// Arbiter closure: the paper's Section 6 walk-through. Mines the two-port
// round-robin arbiter starting from the directed test of Figure 7, printing
// each refinement iteration: the candidate assertions checked, which failed
// (with their counterexamples), which were proven, and the coverage growth —
// ending with the final decision tree that certifies coverage closure for
// gnt0.
package main

import (
	"context"

	"fmt"
	"log"

	"goldmine/internal/core"
	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/sim"
)

func main() {
	bench, err := designs.Get("arbiter2")
	if err != nil {
		log.Fatal(err)
	}
	design, err := bench.Design()
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Window = bench.Window
	engine, err := core.NewEngine(design, cfg)
	if err != nil {
		log.Fatal(err)
	}

	seed := bench.Directed()
	fmt.Printf("design: %s, mining window %d, directed seed of %d cycles\n\n",
		design.Name, cfg.Window, len(seed))

	res, err := engine.MineOutputByName(context.Background(), "gnt0", 0, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Iteration-by-iteration narrative, like the paper's Figures 8-11.
	for _, st := range res.Iterations {
		fmt.Printf("iteration %d: %d candidates, %d proved, %d counterexamples, %d rows, tree %d/%d nodes/leaves, input-space %.2f%%\n",
			st.Iteration, st.Candidates, st.NewProved, st.NewCtx, st.Rows,
			st.TreeNodes, st.TreeLeaves, 100*st.InputSpaceCoverage)
	}

	fmt.Println("\nfalsified candidates and their counterexamples:")
	for i, rec := range res.Failed {
		fmt.Printf("  [it%d] %s\n", rec.Iteration, rec.Assertion)
		if i < len(res.Ctx) {
			fmt.Printf("        ctx: %d cycles\n", len(res.Ctx[i]))
		}
	}

	fmt.Println("\nproven assertions (the paper's A2, A3, A6-A9, A11, A12 analogues):")
	for _, rec := range res.Proved {
		fmt.Printf("  [it%d, %s] %s\n", rec.Iteration, rec.Method, rec.Assertion)
	}

	fmt.Printf("\nfinal decision tree (converged=%v):\n%s\n", res.Converged, res.Tree)

	// Coverage of the enhanced test suite, as in Figure 12.
	suite := []sim.Stimulus{seed}
	suite = append(suite, res.Ctx...)
	col := coverage.New(design)
	if err := col.RunSuite(suite); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enhanced suite coverage: %s\n", col.Report())
	fmt.Printf("input-space coverage (sum of 1/2^depth): %.2f%%\n", 100*res.InputSpaceCoverage())
}
