package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRandomQuiet(t *testing.T) {
	if err := run("arbiter2", "", 10, "random", 1, true, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunDirectedWithTrace(t *testing.T) {
	if err := run("arbiter2", "", 0, "directed", 1, false, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunExhaustive(t *testing.T) {
	if err := run("cex_small", "", 0, "exhaustive", 1, true, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunVCDOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wave.vcd")
	if err := run("arbiter2", "", 8, "random", 3, true, path, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "$enddefinitions") {
		t.Error("VCD output malformed")
	}
}

func TestRunFileInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.v")
	os.WriteFile(path, []byte("module m(input a, output y); assign y = ~a; endmodule"), 0o644)
	if err := run("", path, 4, "random", 1, true, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 10, "random", 1, true, "", true); err == nil {
		t.Error("missing design should error")
	}
	if err := run("fetch", "", 10, "directed2", 1, true, "", true); err == nil {
		t.Error("bad stim spec should error")
	}
	if err := run("wb_stage", "", 10, "exhaustive", 1, true, "", true); err == nil {
		t.Error("wide exhaustive should error (24 input bits)")
	}
	if err := run("b01", "", 10, "directed", 1, true, "", false); err == nil {
		t.Error("design without directed test should error")
	}
}

// TestRunVCDIdenticalAcrossEngines pins the rtlsim -compiled contract: the
// VCD dump from the compiled engine is byte-identical to the interpreter's.
func TestRunVCDIdenticalAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	pi := filepath.Join(dir, "interp.vcd")
	pc := filepath.Join(dir, "compiled.vcd")
	if err := run("b06", "", 50, "random", 7, true, pi, false); err != nil {
		t.Fatal(err)
	}
	if err := run("b06", "", 50, "random", 7, true, pc, true); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(pi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(pc)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("compiled VCD differs from interpreter VCD")
	}
}
