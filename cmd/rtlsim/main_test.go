package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRandomQuiet(t *testing.T) {
	if err := run("arbiter2", "", 10, "random", 1, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunDirectedWithTrace(t *testing.T) {
	if err := run("arbiter2", "", 0, "directed", 1, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunExhaustive(t *testing.T) {
	if err := run("cex_small", "", 0, "exhaustive", 1, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunVCDOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wave.vcd")
	if err := run("arbiter2", "", 8, "random", 3, true, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "$enddefinitions") {
		t.Error("VCD output malformed")
	}
}

func TestRunFileInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.v")
	os.WriteFile(path, []byte("module m(input a, output y); assign y = ~a; endmodule"), 0o644)
	if err := run("", path, 4, "random", 1, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 10, "random", 1, true, ""); err == nil {
		t.Error("missing design should error")
	}
	if err := run("fetch", "", 10, "directed2", 1, true, ""); err == nil {
		t.Error("bad stim spec should error")
	}
	if err := run("wb_stage", "", 10, "exhaustive", 1, true, ""); err == nil {
		t.Error("wide exhaustive should error (24 input bits)")
	}
	if err := run("b01", "", 10, "directed", 1, true, ""); err == nil {
		t.Error("design without directed test should error")
	}
}
