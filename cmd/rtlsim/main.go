// Command rtlsim parses, elaborates and simulates a design, dumping the
// per-cycle trace of every signal and a coverage summary.
//
// Usage:
//
//	rtlsim -design arbiter2 -cycles 20 -stim random -seed 7
//	rtlsim -file my.v -cycles 100 -stim random
//	rtlsim -design arbiter2 -stim directed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/simc"
	"goldmine/internal/stimgen"
)

func main() {
	var (
		design = flag.String("design", "", "benchmark design name")
		file   = flag.String("file", "", "Verilog source file")
		cycles = flag.Int("cycles", 20, "cycles to simulate (random stimulus)")
		stim   = flag.String("stim", "random", "stimulus: random | directed | exhaustive")
		seed   = flag.Int64("seed", 1, "random stimulus seed")
		quiet  = flag.Bool("quiet", false, "suppress the trace, print only coverage")
		vcd    = flag.String("vcd", "", "write the trace as a VCD file")
		comp   = flag.Bool("compiled", true, "use the compiled instruction-tape simulator (trace, VCD and coverage are identical to the interpreter)")
	)
	flag.Parse()
	if err := run(*design, *file, *cycles, *stim, *seed, *quiet, *vcd, *comp); err != nil {
		fmt.Fprintln(os.Stderr, "rtlsim:", err)
		os.Exit(1)
	}
}

func run(design, file string, cycles int, stimSpec string, seed int64, quiet bool, vcdPath string, compiled bool) error {
	var d *rtl.Design
	var bench *designs.Benchmark
	var err error
	switch {
	case design != "":
		bench, err = designs.Get(design)
		if err != nil {
			return err
		}
		d, err = bench.Design()
		if err != nil {
			return err
		}
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		d, err = rtl.ElaborateSource(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -design or -file")
	}

	var stim sim.Stimulus
	switch stimSpec {
	case "random":
		stim = stimgen.Random(d, cycles, seed, 2)
	case "directed":
		if bench == nil || bench.Directed == nil {
			return fmt.Errorf("design has no directed test")
		}
		stim = bench.Directed()
	case "exhaustive":
		stim = stimgen.Exhaustive(d, 20)
		if stim == nil {
			return fmt.Errorf("input space too large for exhaustive stimulus")
		}
	default:
		return fmt.Errorf("bad -stim %q", stimSpec)
	}

	col := coverage.New(d)
	col.BeginRun()
	trace := sim.NewTrace(d)
	if compiled {
		p, err := simc.Compile(d)
		if err != nil {
			return err
		}
		m := simc.NewMachine(p)
		m.Observe(col.Observe)
		for _, iv := range stim {
			if err := m.Step(iv, trace); err != nil {
				return err
			}
		}
	} else {
		s, err := sim.New(d)
		if err != nil {
			return err
		}
		s.Observe(col.Observe)
		for _, iv := range stim {
			if err := s.Step(iv, trace); err != nil {
				return err
			}
		}
	}

	if !quiet {
		// Header.
		var names []string
		for _, sig := range trace.Signals {
			names = append(names, sig.Name)
		}
		fmt.Printf("cycle  %s\n", strings.Join(names, "  "))
		for c := 0; c < trace.Cycles(); c++ {
			var cells []string
			for i, sig := range trace.Signals {
				cells = append(cells, fmt.Sprintf("%*d", len(sig.Name), trace.Values[c][i]))
			}
			fmt.Printf("%5d  %s\n", c, strings.Join(cells, "  "))
		}
	}
	if vcdPath != "" {
		f, err := os.Create(vcdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sim.WriteVCD(f, d, trace, d.Name); err != nil {
			return err
		}
		fmt.Println("wrote", vcdPath)
	}
	fmt.Println("coverage:", col.Report())
	return nil
}
