// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig12
//	experiments -run all [-timeout 5m] [-check-timeout 10s]
//
// SIGINT/SIGTERM or -timeout stop the run at the next experiment boundary;
// tables already rendered stand as partial results and the process exits
// with code 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"goldmine/internal/experiments"
	"goldmine/internal/prof"
	"goldmine/internal/telemetry"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment name or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		timeout    = flag.Duration("timeout", 0, "overall wall-clock budget for the whole run (0 = none)")
		checkTO    = flag.Duration("check-timeout", 0, "wall-clock budget per formal check (0 = none)")
		workers    = flag.Int("j", runtime.GOMAXPROCS(0), "parallel mining workers (1 = sequential; tables are identical for any value)")
		schedBench = flag.String("sched-bench", "", "run the scheduler benchmark and write the JSON report to this file ('-' = stdout), then exit")
		mcBench    = flag.String("mc-bench", "", "run the incremental model-checking benchmark and write the JSON report to this file ('-' = stdout), then exit")
		telBench   = flag.String("telemetry-bench", "", "run the telemetry overhead benchmark and write the JSON report to this file ('-' = stdout), then exit")
		simBench   = flag.String("sim-bench", "", "run the compiled/batched simulation benchmark and write the JSON report to this file ('-' = stdout), then exit")
		serveBench = flag.String("serve-bench", "", "run the goldmined serving/durability benchmark and write the JSON report to this file ('-' = stdout), then exit")
		coverBench = flag.String("cover-bench", "", "run the coverage-closure benchmark (directed vs random vs CEX-only) and write the JSON report to this file ('-' = stdout), then exit")
		corpBench  = flag.String("corpus-bench", "", "run the assertion-corpus reduction benchmark (dedup, clustering, oracle-ranked suite reduction) and write the JSON report to this file ('-' = stdout), then exit")
		telOut     = flag.String("telemetry", "", "write a JSONL telemetry journal of the whole run to this file")
		metrics    = flag.Bool("metrics-summary", false, "print the aggregated metrics snapshot as JSON to stderr on exit")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Desc)
		}
		return
	}
	// os.Exit below skips defers, so the profile stop runs explicitly on
	// every exit path — including the interrupt one (exit code 2).
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProf()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		stopProf()
		os.Exit(1)
	}
	experiments.CheckTimeout = *checkTO
	experiments.Workers = *workers

	// os.Exit skips defers, so the telemetry flush (like the profile stop)
	// runs explicitly on the error and interrupt exit paths too.
	flushTel := func() {}
	if *telOut != "" || *metrics {
		var j *telemetry.Journal
		if *telOut != "" {
			f, err := os.Create(*telOut)
			if err != nil {
				fail("experiments: %v", err)
			}
			j = telemetry.NewJournal(f, telemetry.DefaultJournalBuffer)
		}
		tel := telemetry.New(telemetry.NewRegistry(), j)
		experiments.Telemetry = tel
		flushed := false
		flushTel = func() {
			if flushed {
				return
			}
			flushed = true
			tel.EmitSnapshot()
			if err := tel.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
			if *metrics {
				_ = tel.Registry().Snapshot().WriteJSON(os.Stderr)
			}
		}
		defer flushTel()
		prevFail := fail
		fail = func(format string, args ...any) {
			flushTel()
			prevFail(format, args...)
		}
	}

	// Signals are installed BEFORE the bench dispatch below: a SIGTERM (or
	// SIGINT) mid-bench must drain through the clean-partial path — telemetry
	// snapshot, journal close trailer, exit 2 — not default-kill the process
	// and leave a journal cmd/telcheck rejects.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	benchTo := func(path string, run func(io.Writer) error, what string) {
		var out io.Writer = os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				fail("experiments: %v", err)
			}
			defer f.Close()
			out = f
		}
		// The bench runs in a goroutine so a signal can cut it loose: the
		// report is lost, but the journal still gets its trailer.
		done := make(chan error, 1)
		go func() { done <- run(out) }()
		select {
		case err := <-done:
			if err != nil {
				fail("experiments: %s: %v", what, err)
			}
		case <-ctx.Done():
			experiments.Telemetry.Event("run.abandoned", telemetry.String("experiment", what))
			fmt.Fprintf(os.Stderr, "experiments: %s interrupted\n", what)
			flushTel()
			stopProf()
			os.Exit(2)
		}
	}
	if *schedBench != "" {
		benchTo(*schedBench, func(w io.Writer) error { return experiments.SchedBench(w, *workers) }, "sched-bench")
		return
	}
	if *mcBench != "" {
		benchTo(*mcBench, experiments.MCBench, "mc-bench")
		return
	}
	if *telBench != "" {
		benchTo(*telBench, experiments.TelemetryBench, "telemetry-bench")
		return
	}
	if *simBench != "" {
		benchTo(*simBench, experiments.SimBench, "sim-bench")
		return
	}
	if *serveBench != "" {
		benchTo(*serveBench, func(w io.Writer) error { return experiments.ServeBench(w, *workers) }, "serve-bench")
		return
	}
	if *coverBench != "" {
		benchTo(*coverBench, func(w io.Writer) error { return experiments.CoverBench(w, *workers) }, "cover-bench")
		return
	}
	if *corpBench != "" {
		benchTo(*corpBench, experiments.CorpusBench, "corpus-bench")
		return
	}

	var targets []experiments.Experiment
	if *run == "all" {
		targets = experiments.All()
	} else {
		e, err := experiments.Get(*run)
		if err != nil {
			fail("experiments: %v", err)
		}
		targets = []experiments.Experiment{*e}
	}

	type outcome struct {
		tab *experiments.Table
		err error
	}
	completed := 0
	for _, e := range targets {
		if ctx.Err() != nil {
			break
		}
		start := time.Now()
		// Run in a goroutine so cancellation can cut a stalled experiment
		// loose; a completed experiment always flushes its table first.
		ch := make(chan outcome, 1)
		go func(e experiments.Experiment) {
			tab, err := e.Run()
			ch <- outcome{tab, err}
		}(e)
		select {
		case o := <-ch:
			if o.err != nil {
				fail("experiments: %s: %v", e.Name, o.err)
			}
			o.tab.Render(os.Stdout)
			fmt.Printf("(%s completed in %.2fs)\n\n", e.Name, time.Since(start).Seconds())
			completed++
		case <-ctx.Done():
			// The abandoned goroutine's open spans will never End, so the
			// journal records the abandonment; telcheck reads this event and
			// demotes the resulting missing-parent links to warnings.
			experiments.Telemetry.Event("run.abandoned",
				telemetry.String("experiment", e.Name))
			fmt.Fprintf(os.Stderr, "experiments: %s abandoned after %.2fs\n", e.Name, time.Since(start).Seconds())
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "experiments: interrupted — %d/%d experiments completed (tables above are final)\n",
			completed, len(targets))
		flushTel()
		stopProf()
		os.Exit(2)
	}
}
