// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig12
//	experiments -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"goldmine/internal/experiments"
)

func main() {
	var (
		run  = flag.String("run", "all", "experiment name or 'all'")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Desc)
		}
		return
	}

	var targets []experiments.Experiment
	if *run == "all" {
		targets = experiments.All()
	} else {
		e, err := experiments.Get(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		targets = []experiments.Experiment{*e}
	}
	for _, e := range targets {
		start := time.Now()
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
		fmt.Printf("(%s completed in %.2fs)\n\n", e.Name, time.Since(start).Seconds())
	}
}
