// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig12
//	experiments -run all [-timeout 5m] [-check-timeout 10s]
//
// SIGINT/SIGTERM or -timeout stop the run at the next experiment boundary;
// tables already rendered stand as partial results and the process exits
// with code 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"goldmine/internal/experiments"
	"goldmine/internal/prof"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment name or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		timeout    = flag.Duration("timeout", 0, "overall wall-clock budget for the whole run (0 = none)")
		checkTO    = flag.Duration("check-timeout", 0, "wall-clock budget per formal check (0 = none)")
		workers    = flag.Int("j", runtime.GOMAXPROCS(0), "parallel mining workers (1 = sequential; tables are identical for any value)")
		schedBench = flag.String("sched-bench", "", "run the scheduler benchmark and write the JSON report to this file ('-' = stdout), then exit")
		mcBench    = flag.String("mc-bench", "", "run the incremental model-checking benchmark and write the JSON report to this file ('-' = stdout), then exit")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Desc)
		}
		return
	}
	// os.Exit below skips defers, so the profile stop runs explicitly on
	// every exit path — including the interrupt one (exit code 2).
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProf()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		stopProf()
		os.Exit(1)
	}
	experiments.CheckTimeout = *checkTO
	experiments.Workers = *workers

	benchTo := func(path string, run func(io.Writer) error, what string) {
		var out io.Writer = os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				fail("experiments: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := run(out); err != nil {
			fail("experiments: %s: %v", what, err)
		}
	}
	if *schedBench != "" {
		benchTo(*schedBench, func(w io.Writer) error { return experiments.SchedBench(w, *workers) }, "sched-bench")
		return
	}
	if *mcBench != "" {
		benchTo(*mcBench, experiments.MCBench, "mc-bench")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var targets []experiments.Experiment
	if *run == "all" {
		targets = experiments.All()
	} else {
		e, err := experiments.Get(*run)
		if err != nil {
			fail("experiments: %v", err)
		}
		targets = []experiments.Experiment{*e}
	}

	type outcome struct {
		tab *experiments.Table
		err error
	}
	completed := 0
	for _, e := range targets {
		if ctx.Err() != nil {
			break
		}
		start := time.Now()
		// Run in a goroutine so cancellation can cut a stalled experiment
		// loose; a completed experiment always flushes its table first.
		ch := make(chan outcome, 1)
		go func(e experiments.Experiment) {
			tab, err := e.Run()
			ch <- outcome{tab, err}
		}(e)
		select {
		case o := <-ch:
			if o.err != nil {
				fail("experiments: %s: %v", e.Name, o.err)
			}
			o.tab.Render(os.Stdout)
			fmt.Printf("(%s completed in %.2fs)\n\n", e.Name, time.Since(start).Seconds())
			completed++
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "experiments: %s abandoned after %.2fs\n", e.Name, time.Since(start).Seconds())
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "experiments: interrupted — %d/%d experiments completed (tables above are final)\n",
			completed, len(targets))
		stopProf()
		os.Exit(2)
	}
}
