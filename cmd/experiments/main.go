// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig12
//	experiments -run all [-timeout 5m] [-check-timeout 10s]
//
// SIGINT/SIGTERM or -timeout stop the run at the next experiment boundary;
// tables already rendered stand as partial results and the process exits
// with code 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"goldmine/internal/experiments"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment name or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		timeout    = flag.Duration("timeout", 0, "overall wall-clock budget for the whole run (0 = none)")
		checkTO    = flag.Duration("check-timeout", 0, "wall-clock budget per formal check (0 = none)")
		workers    = flag.Int("j", runtime.GOMAXPROCS(0), "parallel mining workers (1 = sequential; tables are identical for any value)")
		schedBench = flag.String("sched-bench", "", "run the scheduler benchmark and write the JSON report to this file ('-' = stdout), then exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Desc)
		}
		return
	}
	experiments.CheckTimeout = *checkTO
	experiments.Workers = *workers

	if *schedBench != "" {
		out := os.Stdout
		if *schedBench != "-" {
			f, err := os.Create(*schedBench)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := experiments.SchedBench(out, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: sched-bench:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var targets []experiments.Experiment
	if *run == "all" {
		targets = experiments.All()
	} else {
		e, err := experiments.Get(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		targets = []experiments.Experiment{*e}
	}

	type outcome struct {
		tab *experiments.Table
		err error
	}
	completed := 0
	for _, e := range targets {
		if ctx.Err() != nil {
			break
		}
		start := time.Now()
		// Run in a goroutine so cancellation can cut a stalled experiment
		// loose; a completed experiment always flushes its table first.
		ch := make(chan outcome, 1)
		go func(e experiments.Experiment) {
			tab, err := e.Run()
			ch <- outcome{tab, err}
		}(e)
		select {
		case o := <-ch:
			if o.err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, o.err)
				os.Exit(1)
			}
			o.tab.Render(os.Stdout)
			fmt.Printf("(%s completed in %.2fs)\n\n", e.Name, time.Since(start).Seconds())
			completed++
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "experiments: %s abandoned after %.2fs\n", e.Name, time.Since(start).Seconds())
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "experiments: interrupted — %d/%d experiments completed (tables above are final)\n",
			completed, len(targets))
		os.Exit(2)
	}
}
