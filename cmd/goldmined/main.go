// Command goldmined is the fault-tolerant multi-tenant mining daemon: a JSON
// HTTP API over a pooled engine fleet with admission control, per-tenant
// budgets, retrying/quarantining job execution, and a durable job journal
// that lets a killed daemon resume pending jobs and re-serve completed
// results without recomputation.
//
// Exit codes follow the repo's CLI convention: 0 after a clean drain
// (SIGTERM/SIGINT), 1 on startup or serving errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"goldmine/internal/serve"
	"goldmine/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8333", "listen address (host:port; port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts that use -addr :0)")
		walPath  = flag.String("wal", "", "durable job journal path (empty = no durability)")
		corpusF  = flag.String("corpus", "", "cross-run assertion corpus journal path (empty = in-memory corpus only)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "job-executing workers")
		jobWkrs  = flag.Int("job-workers", runtime.GOMAXPROCS(0), "cap on one job's intra-mining parallelism")
		queue    = flag.Int("queue", 64, "admission bound: max admitted-but-unfinished jobs (beyond it, 429 + Retry-After)")
		tQueue   = flag.Int("tenant-queue", 0, "per-tenant cap on queued+running jobs (0 = unlimited)")
		tBudget  = flag.Duration("tenant-budget", 0, "per-tenant total mining wall-clock budget (0 = unlimited)")
		jobTO    = flag.Duration("job-timeout", 0, "default per-job wall-clock bound (0 = none)")
		attempts = flag.Int("max-attempts", 3, "attempts before a job dying to engine-internal faults is quarantined")
		rBase    = flag.Duration("retry-base", 100*time.Millisecond, "base retry backoff (doubles per attempt, with jitter)")
		rMax     = flag.Duration("retry-max", 5*time.Second, "retry backoff cap")
		drain    = flag.Duration("drain", 15*time.Second, "graceful-drain bound: in-flight jobs past it are checkpointed for the next start")
		cacheCap = flag.Int("cache-capacity", 1<<20, "cross-run verdict cache capacity (entries; <0 = unbounded)")
		cacheSh  = flag.Int("cache-shards", 16, "verdict cache shard count (rounded up to a power of two)")
		pool     = flag.Int("pool", 0, "idle engines retained per design+options (0 = workers)")
		portf    = flag.Int("portfolio", 0, "race N diversified SAT solver lanes on predicted-hard checks, sharing learned clauses (0 or 1 disables; artifacts are identical either way)")
		telOut   = flag.String("telemetry", "", "write a JSONL telemetry journal to this file")
		metrics  = flag.Bool("metrics-summary", false, "print the metrics snapshot to stderr on exit")
	)
	flag.Parse()
	if err := run(*addr, *addrFile, *walPath, *telOut, serveConfig{
		workers: *workers, jobWorkers: *jobWkrs, queue: *queue,
		tenantQueue: *tQueue, tenantBudget: *tBudget, jobTimeout: *jobTO,
		attempts: *attempts, retryBase: *rBase, retryMax: *rMax,
		drain: *drain, cacheCap: *cacheCap, cacheShards: *cacheSh, pool: *pool,
		portfolio: *portf, corpusPath: *corpusF,
	}, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "goldmined:", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	workers, jobWorkers, queue, tenantQueue int
	tenantBudget, jobTimeout                time.Duration
	attempts                                int
	retryBase, retryMax, drain              time.Duration
	cacheCap, cacheShards, pool             int
	portfolio                               int
	corpusPath                              string
}

func run(addr, addrFile, walPath, telOut string, sc serveConfig, metrics bool) error {
	var tel *telemetry.Tracer
	if telOut != "" || metrics {
		var j *telemetry.Journal
		if telOut != "" {
			f, err := os.Create(telOut)
			if err != nil {
				return err
			}
			j = telemetry.NewJournal(f, telemetry.DefaultJournalBuffer)
		}
		tel = telemetry.New(telemetry.NewRegistry(), j)
	}

	s, err := serve.New(serve.Config{
		Workers:         sc.workers,
		QueueDepth:      sc.queue,
		TenantMaxActive: sc.tenantQueue,
		TenantBudget:    sc.tenantBudget,
		JobTimeout:      sc.jobTimeout,
		MaxAttempts:     sc.attempts,
		RetryBase:       sc.retryBase,
		RetryMax:        sc.retryMax,
		DrainTimeout:    sc.drain,
		CacheShards:     sc.cacheShards,
		CacheCapacity:   sc.cacheCap,
		MaxJobWorkers:   sc.jobWorkers,
		PoolPerKey:      sc.pool,
		Portfolio:       sc.portfolio,
		WALPath:         walPath,
		CorpusPath:      sc.corpusPath,
		Tracer:          tel,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "goldmined: listening on %s (workers=%d queue=%d wal=%q)\n",
		bound, sc.workers, sc.queue, walPath)

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// SIGTERM and SIGINT both drain gracefully; either way the telemetry
	// journal gets its snapshot and close trailer, so daemon journals always
	// validate under cmd/telcheck.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return err
	}
	stop()
	fmt.Fprintln(os.Stderr, "goldmined: draining")

	shutCtx, cancel := context.WithTimeout(context.Background(), sc.drain+5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	drainErr := s.Shutdown(shutCtx)
	if tel != nil {
		tel.EmitSnapshot()
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "goldmined:", err)
		}
		if metrics {
			_ = tel.Registry().Snapshot().WriteJSON(os.Stderr)
		}
	}
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	fmt.Fprintln(os.Stderr, "goldmined: drained")
	return nil
}
