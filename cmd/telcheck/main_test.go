package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldmine/internal/telemetry"
)

// journalFile records a real tracer session to a temp file and returns its
// path: a root span with two children, one point event, a snapshot, and the
// close trailer.
func journalFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := telemetry.NewJournal(f, 64)
	tr := telemetry.New(telemetry.NewRegistry(), j)
	root := tr.Root("mine.run")
	c1 := root.Child("mine.output")
	c1.Child("mc.check").End()
	c1.End()
	root.End()
	tr.Event("sched.steal", telemetry.Int("task", 3))
	tr.EmitSnapshot()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTelcheckValid(t *testing.T) {
	path := journalFile(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-require", "mine.run,mc.check,sched.steal", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "OK") || !strings.Contains(out.String(), "3 spans") {
		t.Errorf("unexpected summary: %s", out.String())
	}
}

func TestTelcheckMissingRequired(t *testing.T) {
	path := journalFile(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-require", "sat.solve", path}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "sat.solve") {
		t.Errorf("stderr does not name the missing span: %s", errw.String())
	}
}

func TestTelcheckTruncatedJournal(t *testing.T) {
	path := journalFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	trunc := filepath.Join(t.TempDir(), "trunc.jsonl")
	if err := os.WriteFile(trunc, append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{trunc}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1 for a journal without its trailer", code)
	}
	if !strings.Contains(errw.String(), "trailer") {
		t.Errorf("stderr does not mention the trailer: %s", errw.String())
	}
}

func TestTelcheckOrphanSpan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "orphan.jsonl")
	content := `{"ts_us":100,"kind":"span","name":"child","span":2,"parent":9,"dur_us":5}
{"ts_us":200,"kind":"close","attrs":{"written":1,"dropped":0}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{path}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1 for an orphan span with zero drops", code)
	}
	if !strings.Contains(errw.String(), "missing parent") {
		t.Errorf("stderr does not report the orphan: %s", errw.String())
	}
}

func TestTelcheckAbandonedRunOrphans(t *testing.T) {
	// When the producer cut a stalled experiment loose (run.abandoned event),
	// spans whose parents never flushed are warnings, not failures.
	path := filepath.Join(t.TempDir(), "abandoned.jsonl")
	content := `{"ts_us":100,"kind":"span","name":"child","span":2,"parent":9,"dur_us":5}
{"ts_us":150,"kind":"event","name":"run.abandoned","attrs":{"experiment":"fig13"}}
{"ts_us":200,"kind":"close","attrs":{"written":2,"dropped":0}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, want 0 for orphans in an abandoned run: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "parent link(s) lost") {
		t.Errorf("stdout does not note the demoted orphan: %s", out.String())
	}
}

func TestTelcheckBadNesting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nest.jsonl")
	// Child interval [100, 99100] extends far past parent [50, 10050].
	content := `{"ts_us":100,"kind":"span","name":"child","span":2,"parent":1,"dur_us":99000}
{"ts_us":50,"kind":"span","name":"root","span":1,"dur_us":10000}
{"ts_us":200,"kind":"close","attrs":{"written":2,"dropped":0}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{path}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1 for a child escaping its parent's interval", code)
	}
	if !strings.Contains(errw.String(), "outside parent") {
		t.Errorf("stderr does not report the nesting violation: %s", errw.String())
	}
}
