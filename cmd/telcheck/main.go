// Command telcheck validates a goldmine telemetry journal (the JSONL file
// written by goldmine -telemetry / experiments -telemetry).
//
// Usage:
//
//	telcheck [-require mine.run,mc.check,...] [journal.jsonl]
//
// With no file argument the journal is read from stdin. telcheck verifies
// that every line parses as a journal record with a known kind, that span
// identifiers are unique and every span's parent resolves to another span in
// the journal with the child's interval nested inside the parent's, and that
// the file ends with the close trailer whose written count matches the lines
// actually present. Each -require name must appear as at least one span or
// event. On success it prints a per-name summary and exits 0; any violation
// is reported to stderr and exits 1.
//
// A journal recorded under backpressure may have dropped events (the trailer
// says how many); parent links into dropped spans are then reported as
// warnings rather than failures, since the loss is accounted for. The same
// demotion applies when the journal carries a "run.abandoned" event: the
// producer cut a stalled experiment loose, so that experiment's open spans
// were never flushed and their children legitimately lack parents.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"goldmine/internal/telemetry"
)

// tsSlackUS absorbs the microsecond truncation of wall-clock timestamps when
// checking that a child span's interval nests inside its parent's.
const tsSlackUS = 1000

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("telcheck", flag.ContinueOnError)
	fs.SetOutput(errw)
	require := fs.String("require", "", "comma-separated span/event names that must each appear at least once")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	in := io.Reader(os.Stdin)
	src := "<stdin>"
	if fs.NArg() > 1 {
		fmt.Fprintln(errw, "telcheck: at most one journal file")
		return 1
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(errw, "telcheck:", err)
			return 1
		}
		defer f.Close()
		in, src = f, fs.Arg(0)
	}

	var (
		spans     = map[uint64]telemetry.JSONEvent{}
		seenNames = map[string]int{}
		events    int
		snapshots int
		lines     int
		abandoned int
		trailer   *telemetry.JSONEvent
		failures  int
	)
	bad := func(line int, format string, a ...any) {
		fmt.Fprintf(errw, "telcheck: %s:%d: %s\n", src, line, fmt.Sprintf(format, a...))
		failures++
	}

	sc := bufio.NewScanner(in)
	// Snapshot lines carry the whole metrics dump on one line; give the
	// scanner room well past the default 64 KiB token limit.
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		lines++
		if trailer != nil {
			bad(lines, "record after the close trailer")
			trailer = nil // report once; keep validating the rest
		}
		var e telemetry.JSONEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			bad(lines, "unparseable line: %v", err)
			continue
		}
		switch e.Kind {
		case telemetry.KindSpan:
			if e.Span == 0 {
				bad(lines, "span record without a span id")
				continue
			}
			if _, dup := spans[e.Span]; dup {
				bad(lines, "duplicate span id %d", e.Span)
				continue
			}
			spans[e.Span] = e
			seenNames[e.Name]++
		case telemetry.KindEvent:
			events++
			seenNames[e.Name]++
			if e.Name == "run.abandoned" {
				abandoned++
			}
		case telemetry.KindSnapshot:
			snapshots++
		case telemetry.KindClose:
			t := e
			trailer = &t
		default:
			bad(lines, "unknown record kind %q", e.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(errw, "telcheck:", err)
		return 1
	}

	dropped := int64(0)
	if trailer == nil {
		bad(lines, "journal has no close trailer (run cut short?)")
	} else {
		written := attrInt(trailer.Attrs, "written", -1)
		dropped = attrInt(trailer.Attrs, "dropped", -1)
		if written < 0 || dropped < 0 {
			bad(lines, "close trailer lacks written/dropped accounting")
		} else if int(written) != lines-1 {
			bad(lines, "trailer says %d records written, file has %d", written, lines-1)
		}
	}

	// Span-tree well-formedness: parents resolve, intervals nest. A parent
	// lost to backpressure (trailer owns up to drops) or to an abandoned
	// experiment (journal carries run.abandoned) is only a warning.
	orphanWarnings := 0
	for id, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		par, ok := spans[sp.Parent]
		if !ok {
			if dropped > 0 || abandoned > 0 {
				orphanWarnings++
				continue
			}
			bad(lines, "span %d (%s) references missing parent %d", id, sp.Name, sp.Parent)
			continue
		}
		cs, ce := sp.TS, sp.TS+sp.DurUS
		ps, pe := par.TS, par.TS+par.DurUS
		if cs < ps-tsSlackUS || ce > pe+tsSlackUS {
			bad(lines, "span %d (%s) [%d,%d] extends outside parent %d (%s) [%d,%d]",
				id, sp.Name, cs, ce, sp.Parent, par.Name, ps, pe)
		}
	}

	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && seenNames[name] == 0 {
				bad(lines, "required name %q never appears", name)
			}
		}
	}

	if failures > 0 {
		fmt.Fprintf(errw, "telcheck: %s: %d failure(s)\n", src, failures)
		return 1
	}

	names := make([]string, 0, len(seenNames))
	for n := range seenNames {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "telcheck: %s OK — %d records: %d spans, %d events, %d snapshot(s), %d dropped",
		src, lines, len(spans), events, snapshots, dropped)
	if orphanWarnings > 0 {
		fmt.Fprintf(out, " (%d parent link(s) lost to drops/abandonment)", orphanWarnings)
	}
	fmt.Fprintln(out)
	for _, n := range names {
		fmt.Fprintf(out, "  %-24s %d\n", n, seenNames[n])
	}
	return 0
}

// attrInt reads a numeric attribute from a decoded attrs map (JSON numbers
// arrive as float64).
func attrInt(attrs map[string]any, key string, def int64) int64 {
	v, ok := attrs[key]
	if !ok {
		return def
	}
	switch n := v.(type) {
	case float64:
		return int64(n)
	case int64:
		return n
	default:
		return def
	}
}
