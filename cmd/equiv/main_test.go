package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEquivSelf(t *testing.T) {
	if err := run("arbiter2", "arbiter2", 16); err != nil {
		t.Fatal(err)
	}
}

func TestEquivFiles(t *testing.T) {
	a := write(t, "a.v", `module m(input p, q, output y); assign y = p ^ q; endmodule`)
	b := write(t, "b.v", `module m(input p, q, output y); assign y = (p | q) & ~(p & q); endmodule`)
	if err := run(a, b, 8); err != nil {
		t.Fatal(err)
	}
	c := write(t, "c.v", `module m(input p, q, output y); assign y = p & q; endmodule`)
	if err := run(a, c, 8); err != nil {
		t.Fatal(err)
	}
}

func TestEquivErrors(t *testing.T) {
	if err := run("", "arbiter2", 8); err == nil {
		t.Error("missing design should error")
	}
	if err := run("arbiter2", "/nonexistent.v", 8); err == nil {
		t.Error("missing file should error")
	}
	a := write(t, "a.v", `module m(input p, output y); assign y = p; endmodule`)
	if err := run("arbiter2", a, 8); err == nil {
		t.Error("interface mismatch should error")
	}
}
