// Command equiv checks two designs for functional equivalence: exact for
// combinational designs and for sequential designs whose combined state fits
// the explicit product-machine engine, bounded miter unrolling otherwise.
//
// Usage:
//
//	equiv -a golden.v -b revised.v
//	equiv -a arbiter2 -b my_arbiter.v -depth 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"goldmine/internal/designs"
	"goldmine/internal/mc"
	"goldmine/internal/rtl"
)

func main() {
	var (
		aSpec = flag.String("a", "", "first design: benchmark name or Verilog file")
		bSpec = flag.String("b", "", "second design: benchmark name or Verilog file")
		depth = flag.Int("depth", 24, "bounded miter depth for large sequential designs")
	)
	flag.Parse()
	if err := run(*aSpec, *bSpec, *depth); err != nil {
		fmt.Fprintln(os.Stderr, "equiv:", err)
		os.Exit(1)
	}
}

func load(spec string) (*rtl.Design, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing design (need -a and -b)")
	}
	if b, err := designs.Get(spec); err == nil {
		return b.Design()
	}
	src, err := os.ReadFile(spec)
	if err != nil {
		return nil, err
	}
	return rtl.ElaborateSource(string(src))
}

func run(aSpec, bSpec string, depth int) error {
	a, err := load(aSpec)
	if err != nil {
		return err
	}
	b, err := load(bSpec)
	if err != nil {
		return err
	}
	opts := mc.DefaultOptions()
	opts.MaxBMCDepth = depth
	res, err := mc.Equivalent(a, b, opts)
	if err != nil {
		return err
	}
	switch res.Status {
	case mc.EquivEqual:
		fmt.Printf("EQUIVALENT (exhaustive, depth %d)\n", res.Depth)
	case mc.EquivBounded:
		fmt.Printf("equivalent up to %d cycles (no proof beyond the bound)\n", res.Depth)
	case mc.EquivDifferent:
		fmt.Printf("DIFFERENT: output %s diverges after %d cycles\n", res.Output, len(res.Ctx))
		var cycles []string
		for _, iv := range res.Ctx {
			var kv []string
			for k, v := range iv {
				if v != 0 {
					kv = append(kv, fmt.Sprintf("%s=%d", k, v))
				}
			}
			if len(kv) == 0 {
				kv = []string{"-"}
			}
			cycles = append(cycles, strings.Join(kv, ","))
		}
		fmt.Println("distinguishing sequence:", strings.Join(cycles, " | "))
	}
	return nil
}
