package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"goldmine/internal/holes"
)

func TestRunRandomOnly(t *testing.T) {
	var out bytes.Buffer
	if err := run(cliOpts{design: "arbiter2", cycles: 100, seed: 1, uncovered: true, workers: 1}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "arbiter2:") {
		t.Errorf("missing report line: %q", out.String())
	}
}

func TestRunWithGoldmine(t *testing.T) {
	if err := run(cliOpts{design: "arbiter2", cycles: 50, seed: 1, goldmine: true, workers: 1}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDirected(t *testing.T) {
	var out bytes.Buffer
	if err := run(cliOpts{design: "b01", cycles: 200, seed: 1, directed: true, workers: 2}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"initial", "final", "methods: sat="} {
		if !strings.Contains(s, want) {
			t.Errorf("directed output missing %q:\n%s", want, s)
		}
	}
}

func TestRunHolesJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(cliOpts{design: "b01", cycles: 20, seed: 1, holesJSON: true, workers: 1}, &out); err != nil {
		t.Fatal(err)
	}
	// The report line precedes the JSON array: split it off and decode.
	s := out.String()
	i := strings.Index(s, "[")
	if i < 0 {
		t.Fatalf("no JSON array in output:\n%s", s)
	}
	var views []holes.JSON
	if err := json.Unmarshal([]byte(s[i:]), &views); err != nil {
		t.Fatalf("holes JSON does not parse: %v\n%s", err, s[i:])
	}
	if len(views) == 0 {
		t.Error("20 random cycles closed every hole of b01?")
	}
	for _, v := range views {
		if v.Key == "" || v.Kind == "" {
			t.Errorf("hole view missing key/kind: %+v", v)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(cliOpts{cycles: 10, seed: 1}, &bytes.Buffer{}); err == nil {
		t.Error("missing design should error")
	}
	if err := run(cliOpts{design: "nope", cycles: 10, seed: 1}, &bytes.Buffer{}); err == nil {
		t.Error("unknown design should error")
	}
}

func TestMinInt(t *testing.T) {
	if minInt(3, 5) != 3 || minInt(5, 3) != 3 {
		t.Error("minInt broken")
	}
}
