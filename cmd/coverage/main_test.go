package main

import "testing"

func TestRunRandomOnly(t *testing.T) {
	if err := run("arbiter2", 100, 1, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithGoldmine(t *testing.T) {
	if err := run("arbiter2", 50, 1, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 10, 1, false, false); err == nil {
		t.Error("missing design should error")
	}
	if err := run("nope", 10, 1, false, false); err == nil {
		t.Error("unknown design should error")
	}
}

func TestMinInt(t *testing.T) {
	if minInt(3, 5) != 3 || minInt(5, 3) != 3 {
		t.Error("minInt broken")
	}
}
