// Command coverage measures all coverage metrics of a design under a chosen
// stimulus and lists the uncovered points.
//
// Usage:
//
//	coverage -design fetch -cycles 1000 -seed 3
//	coverage -design arbiter2 -goldmine
package main

import (
	"context"

	"flag"
	"fmt"
	"os"

	"goldmine/internal/core"
	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

func main() {
	var (
		design    = flag.String("design", "", "benchmark design name")
		cycles    = flag.Int("cycles", 1000, "random cycles")
		seed      = flag.Int64("seed", 1, "random seed")
		goldmine  = flag.Bool("goldmine", false, "augment with GoldMine counterexample stimulus")
		uncovered = flag.Bool("uncovered", false, "list uncovered points")
	)
	flag.Parse()
	if err := run(*design, *cycles, *seed, *goldmine, *uncovered); err != nil {
		fmt.Fprintln(os.Stderr, "coverage:", err)
		os.Exit(1)
	}
}

func run(design string, cycles int, seed int64, withGoldmine, listUncovered bool) error {
	if design == "" {
		return fmt.Errorf("need -design (one of %v)", designs.Names())
	}
	b, err := designs.Get(design)
	if err != nil {
		return err
	}
	d, err := b.Design()
	if err != nil {
		return err
	}
	suite := []sim.Stimulus{stimgen.Random(d, cycles, seed, 2)}

	if withGoldmine {
		cfg := core.DefaultConfig()
		cfg.Window = b.Window
		cfg.MaxIterations = 24
		eng, err := core.NewEngine(d, cfg)
		if err != nil {
			return err
		}
		seedStim := stimgen.Random(d, minInt(cycles, 128), seed, 2)
		for _, name := range b.KeyOutputs {
			sig := d.Signal(name)
			for bit := 0; bit < sig.Width; bit++ {
				res, err := eng.MineOutput(context.Background(), sig, bit, seedStim)
				if err != nil {
					return err
				}
				suite = append(suite, res.Ctx...)
			}
		}
	}

	col := coverage.New(d)
	if err := col.RunSuite(suite); err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", design, col.Report())
	if listUncovered {
		for _, p := range col.UncoveredPoints() {
			fmt.Println("  uncovered:", p)
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
