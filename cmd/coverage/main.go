// Command coverage measures all coverage metrics of a design under a chosen
// stimulus, lists the uncovered points, and — with -directed — runs the
// coverage-closure loop that aims SAT-directed stimulus at the holes.
//
// Usage:
//
//	coverage -design fetch -cycles 1000 -seed 3
//	coverage -design arbiter2 -goldmine
//	coverage -design fetch -directed -cycles 1000 -j 4
//	coverage -design fetch -directed -dead-corpus dead.jsonl
//	coverage -design fsm -holes-json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"goldmine/internal/core"
	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/holes"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

type cliOpts struct {
	design    string
	cycles    int
	seed      int64
	goldmine  bool
	uncovered bool
	directed  bool
	legacy    bool
	deadFile  string
	holesJSON bool
	workers   int
}

func main() {
	var o cliOpts
	flag.StringVar(&o.design, "design", "", "benchmark design name")
	flag.IntVar(&o.cycles, "cycles", 1000, "total stimulus cycle budget")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.BoolVar(&o.goldmine, "goldmine", false, "augment with GoldMine counterexample stimulus")
	flag.BoolVar(&o.uncovered, "uncovered", false, "list uncovered points")
	flag.BoolVar(&o.directed, "directed", false, "close coverage: aim SAT-directed stimulus at the holes (equal -cycles budget)")
	flag.BoolVar(&o.legacy, "legacy", false, "use the fixed-depth closure loop without witness sharing or dead pruning (baseline)")
	flag.StringVar(&o.deadFile, "dead-corpus", "", "JSONL journal of proven-dead holes, loaded before and appended after closure")
	flag.BoolVar(&o.holesJSON, "holes-json", false, "dump the remaining coverage holes as JSON to stdout")
	flag.IntVar(&o.workers, "j", runtime.GOMAXPROCS(0), "parallel directed workers (results are identical for any value)")
	flag.Parse()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coverage:", err)
		os.Exit(1)
	}
}

func run(o cliOpts, w io.Writer) error {
	if o.design == "" {
		return fmt.Errorf("need -design (one of %v)", designs.Names())
	}
	b, err := designs.Get(o.design)
	if err != nil {
		return err
	}
	d, err := b.Design()
	if err != nil {
		return err
	}

	var suite []sim.Stimulus
	if o.directed {
		res, err := stimgen.CloseCoverage(context.Background(), d, stimgen.ClosureOptions{
			DirectedOptions: stimgen.DirectedOptions{Seed: o.seed, Workers: o.workers, Legacy: o.legacy},
			TotalCycles:     o.cycles,
			FillRandom:      true,
			Compiled:        true,
			DeadFile:        o.deadFile,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: initial %s\n", o.design, res.Initial)
		for i, st := range res.Iterations {
			fmt.Fprintf(w, "  iter %d: holes=%d directed=%d closed=%d shared=%d dead=%d deferred=%d\n",
				i+1, st.Holes, st.Directed, st.Closed, st.Shared, st.Dead, st.Deferred)
		}
		fmt.Fprintf(w, "%s: final   %s\n", o.design, res.Final)
		fmt.Fprintf(w, "  methods: sat=%d fuzz=%d shared=%d dead=%d deferred=%d unreachable=%d open=%d error=%d cycles=%d converged=%v\n",
			res.Methods[stimgen.MethodSAT], res.Methods[stimgen.MethodFuzz],
			res.Methods[stimgen.MethodShared], res.Methods[stimgen.MethodDead],
			res.Methods[stimgen.MethodDeferred],
			res.Methods[stimgen.MethodUnreachable], res.Methods[stimgen.MethodOpen],
			res.Methods[stimgen.MethodError], res.CyclesUsed, res.Converged)
		fmt.Fprintf(w, "  reach: calls=%d solves=%d\n", res.ReachCalls, res.ReachSolves)
		if res.Evicted > 0 || res.Readmitted > 0 {
			fmt.Fprintf(w, "  compact: evicted=%d readmitted=%d\n", res.Evicted, res.Readmitted)
		}
		fmt.Fprintf(w, "  dead: total=%d new=%d\n", res.DeadLoaded+len(res.Dead), len(res.Dead))
		for _, dh := range res.Dead {
			fmt.Fprintf(w, "  proven dead: %s (depth=%d k=%d)\n", dh.Key, dh.Depth, dh.K)
		}
		suite = res.Suite
	} else {
		suite = []sim.Stimulus{stimgen.Random(d, o.cycles, o.seed, 2)}
		if o.goldmine {
			cfg := core.DefaultConfig()
			cfg.Window = b.Window
			cfg.MaxIterations = 24
			eng, err := core.NewEngine(d, cfg)
			if err != nil {
				return err
			}
			seedStim := stimgen.Random(d, minInt(o.cycles, 128), o.seed, 2)
			for _, name := range b.KeyOutputs {
				sig := d.Signal(name)
				for bit := 0; bit < sig.Width; bit++ {
					res, err := eng.MineOutput(context.Background(), sig, bit, seedStim)
					if err != nil {
						return err
					}
					suite = append(suite, res.Ctx...)
				}
			}
		}
	}

	col := coverage.New(d)
	if err := col.RunSuite(suite); err != nil {
		return err
	}
	if !o.directed {
		fmt.Fprintf(w, "%s: %s\n", o.design, col.Report())
	}
	if o.uncovered {
		for i, p := range d.Cover.Points {
			if !col.PointCovered(i) {
				fmt.Fprintln(w, "  uncovered:", p.String())
			}
		}
	}
	if o.holesJSON {
		hs := holes.FromCollector(col)
		if o.deadFile != "" {
			dead, err := stimgen.LoadDeadHoles(o.deadFile, d)
			if err != nil {
				return err
			}
			kept := hs[:0]
			for _, h := range hs {
				if _, ok := dead[h.Key()]; !ok {
					kept = append(kept, h)
				}
			}
			hs = kept
		}
		views := make([]holes.JSON, len(hs))
		for i, h := range hs {
			views[i] = h.JSON()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(views); err != nil {
			return err
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
