// Command goldmine runs the counterexample-guided assertion and stimulus
// generation flow on a benchmark design or a Verilog file.
//
// Usage:
//
//	goldmine -design arbiter2 [-output gnt0] [-bit 0] [-seed directed]
//	goldmine -file my.v -output y -seed random:128 -format sva
//
// It prints the proven assertions (LTL, SVA or PSL), the counterexample
// patterns discovered, per-iteration statistics and the final decision tree.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"goldmine/internal/assertion"
	"goldmine/internal/core"
	"goldmine/internal/designs"
	"goldmine/internal/prof"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

// errInterrupted reports a run cut short by SIGINT/SIGTERM or -timeout. The
// partial results are already flushed; main exits with code 2 so scripts can
// tell "partial" from "failed".
var errInterrupted = errors.New("interrupted: partial results above")

func main() {
	var (
		design   = flag.String("design", "", "benchmark design name (see -list)")
		file     = flag.String("file", "", "Verilog source file (alternative to -design)")
		output   = flag.String("output", "", "output signal to mine (default: all outputs)")
		bit      = flag.Int("bit", -1, "output bit to mine (default: all bits)")
		window   = flag.Int("window", -1, "mining window length (default: benchmark's)")
		seed     = flag.String("seed", "directed", "seed stimulus: directed | random:<cycles> | none")
		format   = flag.String("format", "ltl", "assertion format: ltl | sva | psl")
		maxIter  = flag.Int("max-iter", 64, "maximum refinement iterations")
		batched  = flag.Bool("batched", false, "batch each iteration's checks before updating the tree (Section 7 optimization; enables parallel check lanes under -j)")
		full     = flag.Bool("full-ctx", false, "add every counterexample window to the dataset")
		tree     = flag.Bool("tree", false, "print the final decision tree")
		reduce   = flag.Bool("reduce", false, "apply A-Val subsumption reduction and ranking to the printed assertions")
		minimize = flag.Bool("minimize", false, "minimize counterexample patterns before printing")
		list     = flag.Bool("list", false, "list benchmark designs and exit")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget for the whole run (0 = none)")
		checkTO  = flag.Duration("check-timeout", 0, "wall-clock budget per formal check (0 = none)")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel mining workers (1 = sequential; results are identical for any value)")
		schedOut = flag.Bool("sched-stats", false, "print scheduler/cache telemetry to stderr (advisory, non-deterministic)")
		incr     = flag.Bool("incremental", true, "reuse persistent SAT solver sessions across checks (verdicts and counterexamples are identical either way)")
		coi      = flag.Bool("coi", true, "cone-of-influence CNF reduction: encode only the logic each assertion can observe")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, b := range designs.All() {
			fmt.Printf("%-10s %s\n", b.Name, b.Description)
		}
		return
	}
	// os.Exit below skips defers, so the profile stop runs explicitly on
	// every exit path — including the SIGINT/-timeout one (exit code 2).
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldmine:", err)
		os.Exit(1)
	}
	defer stopProf()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := runOpts{
		design: *design, file: *file, output: *output,
		bit: *bit, window: *window,
		seed: *seed, format: *format,
		maxIter: *maxIter, checkTO: *checkTO, workers: *workers,
		batched: *batched, fullCtx: *full, printTree: *tree,
		reduce: *reduce, minimize: *minimize, schedOut: *schedOut,
		incremental: *incr, coi: *coi,
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "goldmine:", err)
		stopProf()
		if errors.Is(err, errInterrupted) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// runOpts carries the flag values into run; the zero value of the two
// engine toggles is "off", so tests opt in explicitly where they matter.
type runOpts struct {
	design, file, output string
	bit, window          int
	seed, format         string
	maxIter              int
	checkTO              time.Duration
	workers              int
	batched, fullCtx     bool
	printTree, reduce    bool
	minimize, schedOut   bool
	incremental, coi     bool
}

func run(ctx context.Context, o runOpts) error {
	var d *rtl.Design
	var bench *designs.Benchmark
	var err error
	switch {
	case o.design != "":
		bench, err = designs.Get(o.design)
		if err != nil {
			return err
		}
		d, err = bench.Design()
		if err != nil {
			return err
		}
	case o.file != "":
		src, err := os.ReadFile(o.file)
		if err != nil {
			return err
		}
		d, err = rtl.ElaborateSource(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -design or -file (use -list for benchmarks)")
	}

	cfg := core.DefaultConfig()
	cfg.MaxIterations = o.maxIter
	cfg.BatchedChecks = o.batched
	cfg.AddFullCtxTrace = o.fullCtx
	cfg.Workers = o.workers
	cfg.Incremental = o.incremental
	cfg.MC.CoI = o.coi
	cfg.MC.CheckTimeout = o.checkTO
	if o.window >= 0 {
		cfg.Window = o.window
	} else if bench != nil {
		cfg.Window = bench.Window
	}

	stim, err := seedStimulus(d, bench, o.seed)
	if err != nil {
		return err
	}

	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		return err
	}

	var targets []core.Target
	addTarget := func(sig *rtl.Signal) {
		if o.bit >= 0 {
			targets = append(targets, core.Target{Output: sig, Bit: o.bit})
			return
		}
		for b := 0; b < sig.Width; b++ {
			targets = append(targets, core.Target{Output: sig, Bit: b})
		}
	}
	if o.output != "" {
		sig := d.Signal(o.output)
		if sig == nil {
			return fmt.Errorf("no signal %q", o.output)
		}
		addTarget(sig)
	} else {
		for _, sig := range d.Outputs() {
			addTarget(sig)
		}
	}

	// Mine every target (in parallel for -j > 1), then print in target order:
	// the output below is byte-identical for any -j value. On SIGINT/-timeout
	// the engine drains cleanly and everything mined so far is still flushed.
	all, err := eng.MineTargetsCtx(ctx, targets, stim)
	if err != nil {
		return err
	}
	interrupted := all.Interrupted
	mined := len(all.Outputs)
	totalProved, totalCtx, totalUnknown, totalFaults := 0, 0, 0, 0
	for _, res := range all.Outputs {
		name := res.Output
		if sig := d.Signal(res.Output); sig != nil && sig.Width > 1 {
			name = fmt.Sprintf("%s[%d]", res.Output, res.Bit)
		}
		extra := ""
		if len(res.Unknown) > 0 || len(res.Errors) > 0 {
			extra = fmt.Sprintf(" unknown=%d faults=%d stuck=%d", len(res.Unknown), len(res.Errors), res.StuckLeafs)
		}
		if res.Interrupted {
			extra += " interrupted"
		}
		fmt.Printf("--- %s.%s: converged=%v iterations=%d proved=%d ctx=%d coverage=%.2f%%%s\n",
			d.Name, name, res.Converged, len(res.Iterations), len(res.Proved), len(res.Ctx),
			100*res.InputSpaceCoverage(), extra)
		if o.reduce {
			kept := assertion.ReduceSuite(res.Assertions())
			fmt.Printf("  A-Val reduction: %d -> %d assertions\n", len(res.Proved), len(kept))
			for _, a := range kept {
				fmt.Printf("  %s\n", renderA(a, o.format, d.Clock))
			}
		} else {
			for _, rec := range res.Proved {
				fmt.Printf("  [it%d %s] %s\n", rec.Iteration, rec.Method, render(rec.Assertion.String(), rec, o.format, d.Clock))
			}
		}
		for i, ctx := range res.Ctx {
			if o.minimize && i < len(res.Failed) {
				if min, err := core.MinimizeCtx(d, res.Failed[i].Assertion, ctx); err == nil {
					ctx = min
				}
			}
			fmt.Printf("  ctx%d (%d cycles): %s\n", i+1, len(ctx), stimString(ctx))
		}
		if o.printTree {
			fmt.Println(res.Tree.String())
		}
		for _, ee := range res.Errors {
			fmt.Fprintf(os.Stderr, "  fault: %v\n", ee)
		}
		totalProved += len(res.Proved)
		totalCtx += len(res.Ctx)
		totalUnknown += len(res.Unknown)
		totalFaults += len(res.Errors)
	}
	extra := ""
	if totalUnknown > 0 || totalFaults > 0 {
		extra = fmt.Sprintf(", %d unknown, %d isolated faults", totalUnknown, totalFaults)
	}
	fmt.Printf("total: %d proved assertions, %d counterexample patterns%s, %d formal checks (%.2fs formal time)\n",
		totalProved, totalCtx, extra, eng.Checker.Checks, eng.Checker.TotalTime.Seconds())
	if o.schedOut && all.Sched != nil {
		s := all.Sched
		fmt.Fprintf(os.Stderr, "sched: workers=%d tasks=%d stolen=%d panics=%d cache-hits=%d deduped=%d misses=%d hit-rate=%.1f%%\n",
			s.Workers, s.Tasks, s.TasksStolen, s.WorkerPanics, s.CacheHits, s.ChecksDeduped, s.CacheMisses, 100*s.CacheHitRate)
	}
	if interrupted {
		return fmt.Errorf("%w (%d/%d targets mined)", errInterrupted, mined, len(targets))
	}
	return nil
}

func renderA(a *assertion.Assertion, format, clock string) string {
	switch format {
	case "sva":
		return a.SVA(clock)
	case "psl":
		return a.PSL(clock)
	default:
		return a.String()
	}
}

func render(ltl string, rec core.AssertionRecord, format, clock string) string {
	switch format {
	case "sva":
		return rec.Assertion.SVA(clock)
	case "psl":
		return rec.Assertion.PSL(clock)
	default:
		return ltl
	}
}

func seedStimulus(d *rtl.Design, bench *designs.Benchmark, spec string) (sim.Stimulus, error) {
	switch {
	case spec == "none":
		return nil, nil
	case spec == "directed":
		if bench != nil && bench.Directed != nil {
			return bench.Directed(), nil
		}
		return nil, nil
	case strings.HasPrefix(spec, "random:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "random:"))
		if err != nil {
			return nil, fmt.Errorf("bad seed spec %q", spec)
		}
		return stimgen.Random(d, n, 1, 2), nil
	default:
		return nil, fmt.Errorf("bad seed spec %q (directed | random:<n> | none)", spec)
	}
}

func stimString(stim sim.Stimulus) string {
	var parts []string
	for _, iv := range stim {
		var kv []string
		for _, k := range sortedKeys(iv) {
			if iv[k] != 0 {
				kv = append(kv, fmt.Sprintf("%s=%d", k, iv[k]))
			}
		}
		if len(kv) == 0 {
			parts = append(parts, "-")
		} else {
			parts = append(parts, strings.Join(kv, ","))
		}
	}
	return strings.Join(parts, " | ")
}

func sortedKeys(iv sim.InputVec) []string {
	var keys []string
	for k := range iv {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}
