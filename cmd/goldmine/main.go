// Command goldmine runs the counterexample-guided assertion and stimulus
// generation flow on a benchmark design or a Verilog file.
//
// Usage:
//
//	goldmine -design arbiter2 [-output gnt0] [-bit 0] [-seed directed]
//	goldmine -file my.v -output y -seed random:128 -format sva
//
// It prints the proven assertions (LTL, SVA or PSL), the counterexample
// patterns discovered, per-iteration statistics and the final decision tree.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"goldmine/internal/assertion"
	"goldmine/internal/core"
	"goldmine/internal/corpus"
	"goldmine/internal/designs"
	"goldmine/internal/prof"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
	"goldmine/internal/telemetry"
)

// errInterrupted reports a run cut short by SIGINT/SIGTERM or -timeout. The
// partial results are already flushed; main exits with code 2 so scripts can
// tell "partial" from "failed".
var errInterrupted = errors.New("interrupted: partial results above")

func main() {
	var (
		design   = flag.String("design", "", "benchmark design name (see -list)")
		file     = flag.String("file", "", "Verilog source file (alternative to -design)")
		output   = flag.String("output", "", "output signal to mine (default: all outputs)")
		bit      = flag.Int("bit", -1, "output bit to mine (default: all bits)")
		window   = flag.Int("window", -1, "mining window length (default: benchmark's)")
		seed     = flag.String("seed", "directed", "seed stimulus: directed | random:<cycles> | none")
		format   = flag.String("format", "ltl", "assertion format: ltl | sva | psl")
		maxIter  = flag.Int("max-iter", 64, "maximum refinement iterations")
		batched  = flag.Bool("batched", false, "batch each iteration's checks before updating the tree (Section 7 optimization; enables parallel check lanes under -j)")
		full     = flag.Bool("full-ctx", false, "add every counterexample window to the dataset")
		tree     = flag.Bool("tree", false, "print the final decision tree")
		canon    = flag.Bool("canonical", false, "print the canonical artifact rendering instead of the report (the determinism contract's byte-identical form, also served by goldmined)")
		reduce   = flag.Bool("reduce", false, "corpus reduction: ingest the mined assertions into the corpus (see -corpus), cluster by cone signature, rank with the fault/coverage oracle, and print the minimal high-value suite (deterministic for any -j)")
		corpusF  = flag.String("corpus", "", "with -reduce: persist the assertion corpus to this JSONL file (loaded before ingest, saved after; cross-run duplicates deduplicate on canonical keys)")
		minimize = flag.Bool("minimize", false, "minimize counterexample patterns before printing")
		list     = flag.Bool("list", false, "list benchmark designs and exit")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget for the whole run (0 = none)")
		checkTO  = flag.Duration("check-timeout", 0, "wall-clock budget per formal check (0 = none)")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel mining workers (1 = sequential; results are identical for any value)")
		schedOut = flag.Bool("sched-stats", false, "print scheduler/cache telemetry to stderr (advisory, non-deterministic)")
		incr     = flag.Bool("incremental", true, "reuse persistent SAT solver sessions across checks (verdicts and counterexamples are identical either way)")
		portf    = flag.Int("portfolio", 0, "race N diversified SAT solver lanes on predicted-hard checks, sharing learned clauses (needs -incremental; 0 or 1 disables; artifacts are identical either way)")
		compiled = flag.Bool("compiled", true, "use the compiled instruction-tape simulator for seed and counterexample traces (artifacts are identical either way)")
		coi      = flag.Bool("coi", true, "cone-of-influence CNF reduction: encode only the logic each assertion can observe")
		closeCov = flag.Bool("close-coverage", false, "run the coverage-closure loop (SAT-directed stimulus aimed at the uncovered points) instead of mining")
		coverCyc = flag.Int("cover-cycles", 2000, "total stimulus cycle budget for -close-coverage")
		coverSd  = flag.Int64("cover-seed", 1, "random seed for -close-coverage")
		coverLeg = flag.Bool("cover-legacy", false, "fixed-depth closure loop without witness sharing or dead pruning (the baseline engine)")
		coverDd  = flag.String("cover-dead", "", "JSONL journal of proven-dead coverage holes, loaded before and appended after -close-coverage")
		telOut   = flag.String("telemetry", "", "write a JSONL telemetry journal (spans, events, final metrics snapshot) to this file")
		metrics  = flag.Bool("metrics-summary", false, "print the metrics snapshot (counters, gauges, histograms) to stderr on exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, b := range designs.All() {
			fmt.Printf("%-10s %s\n", b.Name, b.Description)
		}
		return
	}
	// os.Exit below skips defers, so the profile stop runs explicitly on
	// every exit path — including the SIGINT/-timeout one (exit code 2).
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldmine:", err)
		os.Exit(1)
	}
	defer stopProf()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := runOpts{
		design: *design, file: *file, output: *output,
		bit: *bit, window: *window,
		seed: *seed, format: *format,
		maxIter: *maxIter, checkTO: *checkTO, workers: *workers,
		batched: *batched, fullCtx: *full, printTree: *tree, canonical: *canon,
		reduce: *reduce, corpus: *corpusF, minimize: *minimize, schedOut: *schedOut,
		incremental: *incr, coi: *coi, compiled: *compiled, portfolio: *portf,
		closeCoverage: *closeCov, coverCycles: *coverCyc, coverSeed: *coverSd,
		coverLegacy: *coverLeg, coverDead: *coverDd,
		telemetry: *telOut, metricsSummary: *metrics,
		timeout: *timeout,
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "goldmine:", err)
		stopProf()
		if errors.Is(err, errInterrupted) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// runOpts carries the flag values into run; the zero value of the two
// engine toggles is "off", so tests opt in explicitly where they matter.
type runOpts struct {
	design, file, output string
	bit, window          int
	seed, format         string
	maxIter              int
	checkTO              time.Duration
	timeout              time.Duration
	workers              int
	batched, fullCtx     bool
	printTree, reduce    bool
	corpus               string
	canonical            bool
	minimize, schedOut   bool
	incremental, coi     bool
	compiled             bool
	portfolio            int
	closeCoverage        bool
	coverCycles          int
	coverSeed            int64
	coverLegacy          bool
	coverDead            string
	telemetry            string
	metricsSummary       bool
}

// validate rejects contradictory or out-of-range flag combinations up front,
// with errors that name the flags, instead of letting a bad knob surface as a
// confusing mining result (or be silently ignored) deep in the run.
func (o runOpts) validate() error {
	switch {
	case o.design != "" && o.file != "":
		return fmt.Errorf("-design and -file are mutually exclusive; pass one")
	case o.design == "" && o.file == "":
		return fmt.Errorf("need -design or -file (use -list for benchmarks)")
	}
	if o.bit >= 0 && o.output == "" {
		return fmt.Errorf("-bit %d needs -output to name the signal it indexes", o.bit)
	}
	if o.window < -1 {
		return fmt.Errorf("-window must be >= 0 (or omitted for the benchmark default), got %d", o.window)
	}
	if o.maxIter < 1 {
		return fmt.Errorf("-max-iter must be >= 1, got %d", o.maxIter)
	}
	if o.workers < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", o.workers)
	}
	if o.checkTO < 0 {
		return fmt.Errorf("-check-timeout must be >= 0, got %v", o.checkTO)
	}
	if o.portfolio < 0 {
		return fmt.Errorf("-portfolio must be >= 0, got %d", o.portfolio)
	}
	if o.portfolio >= 2 && !o.incremental {
		return fmt.Errorf("-portfolio %d needs -incremental: the racing lanes live on persistent sessions", o.portfolio)
	}
	if o.closeCoverage && o.coverCycles < 1 {
		return fmt.Errorf("-cover-cycles must be >= 1, got %d", o.coverCycles)
	}
	if o.timeout > 0 && o.checkTO > o.timeout {
		return fmt.Errorf("-check-timeout %v exceeds -timeout %v: the per-check budget could never fire", o.checkTO, o.timeout)
	}
	switch o.format {
	case "ltl", "sva", "psl":
	default:
		return fmt.Errorf("-format must be ltl, sva or psl, got %q", o.format)
	}
	if o.telemetry != "" && o.telemetry == o.file {
		return fmt.Errorf("-telemetry would overwrite the -file design source %q", o.telemetry)
	}
	if o.corpus != "" && !o.reduce {
		return fmt.Errorf("-corpus needs -reduce: the corpus file is only read and written by the reduction flow")
	}
	if o.corpus != "" && o.corpus == o.file {
		return fmt.Errorf("-corpus would overwrite the -file design source %q", o.corpus)
	}
	return nil
}

func run(ctx context.Context, o runOpts) error {
	if err := o.validate(); err != nil {
		return err
	}
	var d *rtl.Design
	var bench *designs.Benchmark
	var err error
	switch {
	case o.design != "":
		bench, err = designs.Get(o.design)
		if err != nil {
			return err
		}
		d, err = bench.Design()
		if err != nil {
			return err
		}
	case o.file != "":
		src, err := os.ReadFile(o.file)
		if err != nil {
			return err
		}
		d, err = rtl.ElaborateSource(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -design or -file (use -list for benchmarks)")
	}

	// The flags map 1:1 onto the builder's setters; Build (inside Engine)
	// rejects anything validate above missed at the library level.
	copts := core.NewOptions().
		MaxIterations(o.maxIter).
		Batched(o.batched).
		FullCtxTrace(o.fullCtx).
		Workers(o.workers).
		Incremental(o.incremental).
		Portfolio(o.portfolio).
		Compiled(o.compiled).
		CoI(o.coi).
		CheckTimeout(o.checkTO)
	if o.window >= 0 {
		copts.Window(o.window)
	} else if bench != nil {
		copts.Window(bench.Window)
	}

	var tel *telemetry.Tracer
	if o.telemetry != "" || o.metricsSummary {
		var j *telemetry.Journal
		if o.telemetry != "" {
			f, err := os.Create(o.telemetry)
			if err != nil {
				return err
			}
			j = telemetry.NewJournal(f, telemetry.DefaultJournalBuffer)
		}
		tel = telemetry.New(telemetry.NewRegistry(), j)
		copts.Telemetry(tel)
	}

	if o.closeCoverage {
		if tel != nil {
			defer func() {
				tel.EmitSnapshot()
				if err := tel.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "goldmine:", err)
				}
				if o.metricsSummary {
					_ = tel.Registry().Snapshot().WriteJSON(os.Stderr)
				}
			}()
		}
		return runClosure(ctx, d, o, tel)
	}

	stim, err := seedStimulus(d, bench, o.seed)
	if err != nil {
		return err
	}

	eng, err := copts.Engine(d)
	if err != nil {
		return err
	}
	if tel != nil {
		// The journal ends with a full metrics snapshot plus the accounting
		// trailer; the optional summary goes to stderr so the artifacts on
		// stdout stay byte-identical with telemetry on or off.
		defer func() {
			tel.EmitSnapshot()
			if err := tel.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "goldmine:", err)
			}
			if o.metricsSummary {
				_ = tel.Registry().Snapshot().WriteJSON(os.Stderr)
			}
		}()
	}

	var targets []core.Target
	addTarget := func(sig *rtl.Signal) {
		if o.bit >= 0 {
			targets = append(targets, core.Target{Output: sig, Bit: o.bit})
			return
		}
		for b := 0; b < sig.Width; b++ {
			targets = append(targets, core.Target{Output: sig, Bit: b})
		}
	}
	if o.output != "" {
		sig := d.Signal(o.output)
		if sig == nil {
			return fmt.Errorf("no signal %q", o.output)
		}
		addTarget(sig)
	} else {
		for _, sig := range d.Outputs() {
			addTarget(sig)
		}
	}

	// Mine every target (in parallel for -j > 1), then print in target order:
	// the output below is byte-identical for any -j value. On SIGINT/-timeout
	// the engine drains cleanly and everything mined so far is still flushed.
	all, err := eng.MineTargets(ctx, targets, stim)
	if err != nil {
		return err
	}
	interrupted := all.Interrupted
	mined := len(all.Outputs)
	if o.canonical {
		fmt.Print(all.Canonical())
		if interrupted {
			return fmt.Errorf("%w (%d/%d targets mined)", errInterrupted, mined, len(targets))
		}
		return nil
	}
	totalProved, totalCtx, totalUnknown, totalFaults := 0, 0, 0, 0
	for _, res := range all.Outputs {
		name := res.Output
		if sig := d.Signal(res.Output); sig != nil && sig.Width > 1 {
			name = fmt.Sprintf("%s[%d]", res.Output, res.Bit)
		}
		extra := ""
		if len(res.Unknown) > 0 || len(res.Errors) > 0 {
			extra = fmt.Sprintf(" unknown=%d faults=%d stuck=%d", len(res.Unknown), len(res.Errors), res.StuckLeafs)
		}
		if res.Interrupted {
			extra += " interrupted"
		}
		fmt.Printf("--- %s.%s: converged=%v iterations=%d proved=%d ctx=%d coverage=%.2f%%%s\n",
			d.Name, name, res.Converged, len(res.Iterations), len(res.Proved), len(res.Ctx),
			100*res.InputSpaceCoverage(), extra)
		if !o.reduce {
			// With -reduce the per-output listing is replaced by the corpus
			// section below: the suite is selected across outputs, not per
			// output.
			for _, rec := range res.Proved {
				fmt.Printf("  [it%d %s] %s\n", rec.Iteration, rec.Method, render(rec.Assertion.String(), rec, o.format, d.Clock))
			}
		}
		for i, ctx := range res.Ctx {
			if o.minimize && i < len(res.Failed) {
				if min, err := core.MinimizeCtx(d, res.Failed[i].Assertion, ctx); err == nil {
					ctx = min
				}
			}
			fmt.Printf("  ctx%d (%d cycles): %s\n", i+1, len(ctx), stimString(ctx))
		}
		if o.printTree {
			fmt.Println(res.Tree.String())
		}
		for _, ee := range res.Errors {
			fmt.Fprintf(os.Stderr, "  fault: %v\n", ee)
		}
		totalProved += len(res.Proved)
		totalCtx += len(res.Ctx)
		totalUnknown += len(res.Unknown)
		totalFaults += len(res.Errors)
	}
	if o.reduce {
		if err := corpusReport(d, all, o, tel); err != nil {
			return err
		}
	}
	extra := ""
	if totalUnknown > 0 || totalFaults > 0 {
		extra = fmt.Sprintf(", %d unknown, %d isolated faults", totalUnknown, totalFaults)
	}
	fmt.Printf("total: %d proved assertions, %d counterexample patterns%s, %d formal checks (%.2fs formal time)\n",
		totalProved, totalCtx, extra, eng.Checker.Checks, eng.Checker.TotalTime.Seconds())
	if o.schedOut && all.Sched != nil {
		s := all.Sched
		fmt.Fprintf(os.Stderr, "sched: workers=%d tasks=%d stolen=%d panics=%d cache-hits=%d deduped=%d misses=%d hit-rate=%.1f%%\n",
			s.Workers, s.Tasks, s.TasksStolen, s.WorkerPanics, s.CacheHits, s.ChecksDeduped, s.CacheMisses, 100*s.CacheHitRate)
	}
	if interrupted {
		return fmt.Errorf("%w (%d/%d targets mined)", errInterrupted, mined, len(targets))
	}
	return nil
}

// runClosure handles -close-coverage: seed randomly, aim SAT-directed
// stimulus at the remaining holes, iterate, and report the closure. The
// output is byte-identical for any -j value.
func runClosure(ctx context.Context, d *rtl.Design, o runOpts, tel *telemetry.Tracer) error {
	res, err := stimgen.CloseCoverage(ctx, d, stimgen.ClosureOptions{
		DirectedOptions: stimgen.DirectedOptions{
			Seed:      o.coverSeed,
			Workers:   o.workers,
			Telemetry: tel,
			Legacy:    o.coverLegacy,
		},
		TotalCycles: o.coverCycles,
		FillRandom:  true,
		Compiled:    o.compiled,
		DeadFile:    o.coverDead,
	})
	if err != nil {
		return err
	}
	fmt.Printf("--- %s: coverage closure (budget %d cycles)\n", d.Name, o.coverCycles)
	fmt.Printf("initial: %s\n", res.Initial)
	for i, st := range res.Iterations {
		fmt.Printf("iter %d:  holes=%d directed=%d closed=%d shared=%d dead=%d deferred=%d\n",
			i+1, st.Holes, st.Directed, st.Closed, st.Shared, st.Dead, st.Deferred)
	}
	fmt.Printf("final:   %s\n", res.Final)
	fmt.Printf("methods: sat=%d fuzz=%d shared=%d dead=%d deferred=%d unreachable=%d open=%d error=%d\n",
		res.Methods[stimgen.MethodSAT], res.Methods[stimgen.MethodFuzz],
		res.Methods[stimgen.MethodShared], res.Methods[stimgen.MethodDead],
		res.Methods[stimgen.MethodDeferred],
		res.Methods[stimgen.MethodUnreachable], res.Methods[stimgen.MethodOpen],
		res.Methods[stimgen.MethodError])
	fmt.Printf("reach:   calls=%d solves=%d\n", res.ReachCalls, res.ReachSolves)
	if res.Evicted > 0 || res.Readmitted > 0 {
		fmt.Printf("compact: evicted=%d readmitted=%d\n", res.Evicted, res.Readmitted)
	}
	fmt.Printf("dead:    total=%d new=%d\n", res.DeadLoaded+len(res.Dead), len(res.Dead))
	for _, dh := range res.Dead {
		fmt.Printf("proven dead: %s (depth=%d k=%d)\n", dh.Key, dh.Depth, dh.K)
	}
	fmt.Printf("cycles=%d converged=%v\n", res.CyclesUsed, res.Converged)
	if ctx.Err() != nil {
		return errInterrupted
	}
	return nil
}

// corpusReport runs the -reduce pipeline: load the persisted corpus (when
// -corpus names one), ingest this run's proved assertions with canonical-key
// dedup, persist, then cluster/measure/select and print the reduced suite.
// Everything printed is deterministic: same design, seed and corpus file
// content produce byte-identical output for any -j value.
func corpusReport(d *rtl.Design, all *core.Result, o runOpts, tel *telemetry.Tracer) error {
	crp := corpus.New()
	loaded := 0
	if o.corpus != "" {
		var err error
		crp, err = corpus.Load(o.corpus)
		if err != nil {
			return err
		}
		loaded = crp.Len()
	}
	st := crp.IngestResult("cli", all)
	if o.corpus != "" {
		if err := corpus.Save(o.corpus, crp); err != nil {
			return err
		}
	}
	red, err := corpus.Reduce(d, crp, corpus.Options{Telemetry: tel})
	if err != nil {
		return err
	}
	fmt.Printf("--- corpus: %s ---\n", d.Name)
	fmt.Printf("ingested: %d proved records, %d new, %d duplicates (corpus %d entries, %d loaded)\n",
		st.Records, st.New, st.Dups, crp.Len(), loaded)
	fmt.Printf("clusters: %d cone signatures, %d subsumed collapsed, %d candidates\n",
		red.Clusters, red.Collapsed, red.Candidates)
	fmt.Printf("oracle: %d cycles, %d faults; full suite kills %d faults, covers %d windows, %d vacuous monitors\n",
		red.Cycles, red.Faults, red.KillsFull, red.WindowsFull, red.Vacuous)
	fmt.Printf("selected: %d of %d monitors (props %d -> %d)\n",
		len(red.Selected), red.Total, red.PropsFull, red.PropsSelected)
	fmt.Printf("retained: kills %d/%d (%.1f%%), windows %d/%d (%.1f%%)\n",
		red.KillsSelected, red.KillsFull, red.KillRetention(),
		red.WindowsSelected, red.WindowsFull, red.CoverRetention())
	for i, sel := range red.Selected {
		fmt.Printf("  %d. [+%d kills +%d windows] %s\n",
			i+1, sel.GainKills, sel.GainWindows, renderA(sel.Entry.A, o.format, d.Clock))
	}
	return nil
}

func renderA(a *assertion.Assertion, format, clock string) string {
	switch format {
	case "sva":
		return a.SVA(clock)
	case "psl":
		return a.PSL(clock)
	default:
		return a.String()
	}
}

func render(ltl string, rec core.AssertionRecord, format, clock string) string {
	switch format {
	case "sva":
		return rec.Assertion.SVA(clock)
	case "psl":
		return rec.Assertion.PSL(clock)
	default:
		return ltl
	}
}

func seedStimulus(d *rtl.Design, bench *designs.Benchmark, spec string) (sim.Stimulus, error) {
	switch {
	case spec == "none":
		return nil, nil
	case spec == "directed":
		if bench != nil && bench.Directed != nil {
			return bench.Directed(), nil
		}
		return nil, nil
	case strings.HasPrefix(spec, "random:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "random:"))
		if err != nil {
			return nil, fmt.Errorf("bad seed spec %q", spec)
		}
		return stimgen.Random(d, n, 1, 2), nil
	default:
		return nil, fmt.Errorf("bad seed spec %q (directed | random:<n> | none)", spec)
	}
}

func stimString(stim sim.Stimulus) string {
	var parts []string
	for _, iv := range stim {
		var kv []string
		for _, k := range sortedKeys(iv) {
			if iv[k] != 0 {
				kv = append(kv, fmt.Sprintf("%s=%d", k, iv[k]))
			}
		}
		if len(kv) == 0 {
			parts = append(parts, "-")
		} else {
			parts = append(parts, strings.Join(kv, ","))
		}
	}
	return strings.Join(parts, " | ")
}

func sortedKeys(iv sim.InputVec) []string {
	var keys []string
	for k := range iv {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}
