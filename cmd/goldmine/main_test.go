package main

import (
	"os"
	"path/filepath"
	"testing"

	"goldmine/internal/sim"
)

func TestRunDesign(t *testing.T) {
	if err := run("arbiter2", "", "gnt0", 0, -1, "directed", "ltl", 32, false, true, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllOutputsSVA(t *testing.T) {
	if err := run("cex_small", "", "", -1, -1, "none", "sva", 16, false, false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inv.v")
	src := `module inv(input a, output y); assign y = ~a; endmodule`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "y", 0, 0, "random:8", "psl", 8, true, false, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", -1, -1, "directed", "ltl", 8, false, false, false, false); err == nil {
		t.Error("missing design should error")
	}
	if err := run("nope", "", "", -1, -1, "directed", "ltl", 8, false, false, false, false); err == nil {
		t.Error("unknown design should error")
	}
	if err := run("arbiter2", "", "ghost", 0, -1, "directed", "ltl", 8, false, false, false, false); err == nil {
		t.Error("unknown output should error")
	}
	if err := run("arbiter2", "", "gnt0", 0, -1, "random:x", "ltl", 8, false, false, false, false); err == nil {
		t.Error("bad seed spec should error")
	}
}

func TestStimString(t *testing.T) {
	s := stimString(sim.Stimulus{{"a": 1, "b": 0}, {}})
	if s == "" {
		t.Error("empty stim string")
	}
}
