package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"goldmine/internal/sim"
)

func TestRunDesign(t *testing.T) {
	if err := run(context.Background(), "arbiter2", "", "gnt0", 0, -1, "directed", "ltl", 32, 0, 2, true, false, true, false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, "arbiter2", "", "", -1, -1, "directed", "ltl", 8, 0, 2, false, false, false, false, false, false)
	if !errors.Is(err, errInterrupted) {
		t.Fatalf("err = %v, want errInterrupted", err)
	}
}

func TestRunAllOutputsSVA(t *testing.T) {
	if err := run(context.Background(), "cex_small", "", "", -1, -1, "none", "sva", 16, 0, 2, false, false, false, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inv.v")
	src := `module inv(input a, output y); assign y = ~a; endmodule`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "", path, "y", 0, 0, "random:8", "psl", 8, 0, 2, false, true, false, true, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", "", "", -1, -1, "directed", "ltl", 8, 0, 2, false, false, false, false, false, false); err == nil {
		t.Error("missing design should error")
	}
	if err := run(context.Background(), "nope", "", "", -1, -1, "directed", "ltl", 8, 0, 2, false, false, false, false, false, false); err == nil {
		t.Error("unknown design should error")
	}
	if err := run(context.Background(), "arbiter2", "", "ghost", 0, -1, "directed", "ltl", 8, 0, 2, false, false, false, false, false, false); err == nil {
		t.Error("unknown output should error")
	}
	if err := run(context.Background(), "arbiter2", "", "gnt0", 0, -1, "random:x", "ltl", 8, 0, 2, false, false, false, false, false, false); err == nil {
		t.Error("bad seed spec should error")
	}
}

func TestStimString(t *testing.T) {
	s := stimString(sim.Stimulus{{"a": 1, "b": 0}, {}})
	if s == "" {
		t.Error("empty stim string")
	}
}
