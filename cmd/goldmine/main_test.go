package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"goldmine/internal/sim"
	"goldmine/internal/telemetry"
)

func TestRunDesign(t *testing.T) {
	o := runOpts{
		design: "arbiter2", output: "gnt0", bit: 0, window: -1,
		seed: "directed", format: "ltl", maxIter: 32, workers: 2,
		batched: true, printTree: true, minimize: true,
		incremental: true, coi: true,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

// TestRunDesignFresh exercises the stateless checker path the -incremental
// and -coi flags fall back to.
func TestRunDesignFresh(t *testing.T) {
	o := runOpts{
		design: "arbiter2", output: "gnt0", bit: 0, window: -1,
		seed: "directed", format: "ltl", maxIter: 32, workers: 1,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := runOpts{
		design: "arbiter2", bit: -1, window: -1,
		seed: "directed", format: "ltl", maxIter: 8, workers: 2,
		incremental: true, coi: true,
	}
	err := run(ctx, o)
	if !errors.Is(err, errInterrupted) {
		t.Fatalf("err = %v, want errInterrupted", err)
	}
}

func TestRunAllOutputsSVA(t *testing.T) {
	o := runOpts{
		design: "cex_small", bit: -1, window: -1,
		seed: "none", format: "sva", maxIter: 16, workers: 2,
		reduce: true, incremental: true, coi: true,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inv.v")
	src := `module inv(input a, output y); assign y = ~a; endmodule`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	o := runOpts{
		file: path, output: "y", bit: 0, window: 0,
		seed: "random:8", format: "psl", maxIter: 8, workers: 2,
		fullCtx: true, reduce: true, minimize: true,
		incremental: true, coi: true,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	base := runOpts{
		bit: -1, window: -1, seed: "directed", format: "ltl",
		maxIter: 8, workers: 2, incremental: true, coi: true,
	}
	if err := run(context.Background(), base); err == nil {
		t.Error("missing design should error")
	}
	o := base
	o.design = "nope"
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown design should error")
	}
	o = base
	o.design, o.output, o.bit = "arbiter2", "ghost", 0
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown output should error")
	}
	o = base
	o.design, o.output, o.bit, o.seed = "arbiter2", "gnt0", 0, "random:x"
	if err := run(context.Background(), o); err == nil {
		t.Error("bad seed spec should error")
	}
}

func TestStimString(t *testing.T) {
	s := stimString(sim.Stimulus{{"a": 1, "b": 0}, {}})
	if s == "" {
		t.Error("empty stim string")
	}
}

// TestValidateFlags covers the contradictory-flag rejection added with the
// Options builder: each bad combination must be refused up front with a
// message naming the offending flag, before any design is loaded.
func TestValidateFlags(t *testing.T) {
	ok := runOpts{
		design: "arbiter2", bit: -1, window: -1,
		seed: "directed", format: "ltl", maxIter: 8, workers: 1,
	}
	if err := ok.validate(); err != nil {
		t.Fatalf("valid opts rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*runOpts)
		want string
	}{
		{"design and file", func(o *runOpts) { o.file = "x.v" }, "mutually exclusive"},
		{"neither design nor file", func(o *runOpts) { o.design = "" }, "-design or -file"},
		{"bit without output", func(o *runOpts) { o.bit = 2 }, "-bit"},
		{"negative window", func(o *runOpts) { o.window = -2 }, "-window"},
		{"zero max-iter", func(o *runOpts) { o.maxIter = 0 }, "-max-iter"},
		{"zero workers", func(o *runOpts) { o.workers = 0 }, "-j"},
		{"negative check timeout", func(o *runOpts) { o.checkTO = -time.Second }, "-check-timeout"},
		{"check timeout above timeout", func(o *runOpts) {
			o.timeout = time.Second
			o.checkTO = 2 * time.Second
		}, "exceeds -timeout"},
		{"unknown format", func(o *runOpts) { o.format = "uvm" }, "-format"},
		{"telemetry clobbers source", func(o *runOpts) {
			o.design, o.file = "", "d.v"
			o.telemetry = "d.v"
		}, "-telemetry"},
	}
	for _, tc := range cases {
		o := ok
		tc.mut(&o)
		err := o.validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRunTelemetryJournal runs a full mine with -telemetry and checks the
// journal is complete: parseable JSONL, a close trailer, and at least one
// span from each refinement-loop layer the design exercises.
func TestRunTelemetryJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	o := runOpts{
		design: "arbiter2", bit: -1, window: -1,
		seed: "directed", format: "ltl", maxIter: 8, workers: 1,
		incremental: true, coi: true, telemetry: path,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal has only %d lines", len(lines))
	}
	seen := map[string]bool{}
	var last telemetry.JSONEvent
	for i, ln := range lines {
		var e telemetry.JSONEvent
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d unparseable: %v", i+1, err)
		}
		seen[e.Kind+":"+e.Name] = true
		last = e
	}
	if last.Kind != telemetry.KindClose {
		t.Fatalf("journal does not end with the close trailer (got %q)", last.Kind)
	}
	for _, want := range []string{
		"span:mine.run", "span:mine.output", "span:mine.iteration",
		"span:mc.check", "span:sched.cache_probe", "span:sim.run",
		"snapshot:metrics",
	} {
		if !seen[want] {
			t.Errorf("journal lacks %s", want)
		}
	}
}
