package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"goldmine/internal/sim"
)

func TestRunDesign(t *testing.T) {
	o := runOpts{
		design: "arbiter2", output: "gnt0", bit: 0, window: -1,
		seed: "directed", format: "ltl", maxIter: 32, workers: 2,
		batched: true, printTree: true, minimize: true,
		incremental: true, coi: true,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

// TestRunDesignFresh exercises the stateless checker path the -incremental
// and -coi flags fall back to.
func TestRunDesignFresh(t *testing.T) {
	o := runOpts{
		design: "arbiter2", output: "gnt0", bit: 0, window: -1,
		seed: "directed", format: "ltl", maxIter: 32, workers: 1,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := runOpts{
		design: "arbiter2", bit: -1, window: -1,
		seed: "directed", format: "ltl", maxIter: 8, workers: 2,
		incremental: true, coi: true,
	}
	err := run(ctx, o)
	if !errors.Is(err, errInterrupted) {
		t.Fatalf("err = %v, want errInterrupted", err)
	}
}

func TestRunAllOutputsSVA(t *testing.T) {
	o := runOpts{
		design: "cex_small", bit: -1, window: -1,
		seed: "none", format: "sva", maxIter: 16, workers: 2,
		reduce: true, incremental: true, coi: true,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inv.v")
	src := `module inv(input a, output y); assign y = ~a; endmodule`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	o := runOpts{
		file: path, output: "y", bit: 0, window: 0,
		seed: "random:8", format: "psl", maxIter: 8, workers: 2,
		fullCtx: true, reduce: true, minimize: true,
		incremental: true, coi: true,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	base := runOpts{
		bit: -1, window: -1, seed: "directed", format: "ltl",
		maxIter: 8, workers: 2, incremental: true, coi: true,
	}
	if err := run(context.Background(), base); err == nil {
		t.Error("missing design should error")
	}
	o := base
	o.design = "nope"
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown design should error")
	}
	o = base
	o.design, o.output, o.bit = "arbiter2", "ghost", 0
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown output should error")
	}
	o = base
	o.design, o.output, o.bit, o.seed = "arbiter2", "gnt0", 0, "random:x"
	if err := run(context.Background(), o); err == nil {
		t.Error("bad seed spec should error")
	}
}

func TestStimString(t *testing.T) {
	s := stimString(sim.Stimulus{{"a": 1, "b": 0}, {}})
	if s == "" {
		t.Error("empty stim string")
	}
}
