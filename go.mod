module goldmine

go 1.22
