package goldmine

// End-to-end integration tests: the full parse → elaborate → simulate → mine
// → model-check → refine pipeline on the benchmark designs, with the two
// soundness properties that make the paper's claims meaningful:
//
//  1. every assertion the flow proves is never violated by long random
//     simulation (proved means proved);
//  2. every counterexample pattern the flow emits actually violates the
//     assertion it was generated for (ctx means ctx).

import (
	"context"

	"math/rand"
	"testing"

	"goldmine/internal/assertion"
	"goldmine/internal/core"
	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

// checkAssertionOnTrace verifies a on every window of tr; returns the cycle
// of the first violation or -1.
func checkAssertionOnTrace(t *testing.T, tr *sim.Trace, a *assertion.Assertion) int {
	t.Helper()
	get := func(c int, p assertion.Prop) uint64 {
		v, err := tr.Value(c, p.Signal)
		if err != nil {
			t.Fatalf("trace read %s: %v", p.Signal, err)
		}
		if p.Bit >= 0 {
			return (v >> uint(p.Bit)) & 1
		}
		return v
	}
	for p0 := 0; p0+a.Consequent.Offset < tr.Cycles(); p0++ {
		match := true
		for _, prop := range a.Antecedent {
			if get(p0+prop.Offset, prop) != prop.Value {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if get(p0+a.Consequent.Offset, a.Consequent) != a.Consequent.Value {
			return p0
		}
	}
	return -1
}

func mineBenchmark(t *testing.T, name string, outputs []string, maxIter int) (*rtl.Design, []*core.OutputResult) {
	t.Helper()
	b, err := designs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Design()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Window = b.Window
	cfg.MaxIterations = maxIter
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if outputs == nil {
		outputs = b.KeyOutputs
	}
	var seed sim.Stimulus
	if b.Directed != nil {
		seed = b.Directed()
	} else {
		seed = stimgen.Random(d, 32, 9, 2)
	}
	var results []*core.OutputResult
	for _, out := range outputs {
		sig := d.Signal(out)
		if sig == nil {
			t.Fatalf("%s: no output %s", name, out)
		}
		for bit := 0; bit < sig.Width; bit++ {
			res, err := eng.MineOutput(context.Background(), sig, bit, seed)
			if err != nil {
				t.Fatalf("%s.%s[%d]: %v", name, out, bit, err)
			}
			results = append(results, res)
		}
	}
	return d, results
}

// TestEndToEndSoundness mines a spread of benchmarks and validates both
// soundness properties against 2000 cycles of random simulation.
func TestEndToEndSoundness(t *testing.T) {
	cases := []struct {
		name    string
		outputs []string
	}{
		{"arbiter2", nil},
		{"arbiter4", []string{"gnt0", "gnt1"}},
		{"cex_small", nil},
		{"b01", nil},
		{"b02", nil},
		{"b06", []string{"uscita"}},
		{"b10", []string{"valid"}},
		{"fetch", []string{"valid"}},
		{"decode", []string{"is_alu", "illegal", "trap"}},
		{"wb_stage", []string{"wb_we", "saturate"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d, results := mineBenchmark(t, tc.name, tc.outputs, 24)
			rng := rand.New(rand.NewSource(1234))
			long := stimgen.Random(d, 2000, rng.Int63(), 2)
			tr, err := sim.Simulate(d, long)
			if err != nil {
				t.Fatal(err)
			}
			provedCount, ctxCount := 0, 0
			for _, res := range results {
				// Property 1: proved assertions hold on random simulation.
				for _, rec := range res.Proved {
					provedCount++
					if at := checkAssertionOnTrace(t, tr, rec.Assertion); at >= 0 {
						t.Errorf("proved assertion violated at cycle %d: %s", at, rec.Assertion)
					}
				}
				// Property 2: each ctx violates its assertion.
				for i, rec := range res.Failed {
					if i >= len(res.Ctx) {
						break
					}
					ctxCount++
					ctxTr, err := sim.Simulate(d, res.Ctx[i])
					if err != nil {
						t.Fatalf("ctx replay: %v", err)
					}
					if at := checkAssertionOnTrace(t, ctxTr, rec.Assertion); at < 0 {
						t.Errorf("ctx does not violate its assertion: %s", rec.Assertion)
					}
				}
			}
			if provedCount == 0 {
				t.Errorf("%s: nothing proved", tc.name)
			}
			t.Logf("%s: %d proved, %d ctx validated", tc.name, provedCount, ctxCount)
		})
	}
}

// TestSmallDesignsConverge asserts full coverage closure on the designs where
// the paper claims it.
func TestSmallDesignsConverge(t *testing.T) {
	for _, name := range []string{"cex_small", "arbiter2", "arbiter4"} {
		_, results := mineBenchmark(t, name, nil, 64)
		for _, res := range results {
			if !res.Converged {
				t.Errorf("%s.%s[%d] did not converge", name, res.Output, res.Bit)
				continue
			}
			if cov := res.InputSpaceCoverage(); cov < 0.999 {
				t.Errorf("%s.%s[%d] converged at %.4f input-space coverage", name, res.Output, res.Bit, cov)
			}
		}
	}
}

// TestSuiteImprovesCoverage: the mined suite never lowers any coverage
// metric relative to its own seed, on every benchmark with a directed test.
func TestSuiteImprovesCoverage(t *testing.T) {
	for _, bname := range []string{"arbiter2", "fetch", "decode"} {
		b, _ := designs.Get(bname)
		d, err := b.Design()
		if err != nil {
			t.Fatal(err)
		}
		seed := b.Directed()
		base := coverage.New(d)
		if err := base.RunSuite([]sim.Stimulus{seed}); err != nil {
			t.Fatal(err)
		}
		baseRep := base.Report()

		_, results := mineBenchmark(t, bname, nil, 16)
		suite := []sim.Stimulus{seed}
		for _, res := range results {
			suite = append(suite, res.Ctx...)
		}
		full := coverage.New(d)
		if err := full.RunSuite(suite); err != nil {
			t.Fatal(err)
		}
		fullRep := full.Report()

		type pair struct {
			name       string
			base, full coverage.Metric
		}
		for _, p := range []pair{
			{"line", baseRep.Line, fullRep.Line},
			{"branch", baseRep.Branch, fullRep.Branch},
			{"cond", baseRep.Cond, fullRep.Cond},
			{"expr", baseRep.Expr, fullRep.Expr},
		} {
			if p.full.Pct() < p.base.Pct() {
				t.Errorf("%s: %s coverage decreased %.2f -> %.2f", bname, p.name, p.base.Pct(), p.full.Pct())
			}
		}
	}
}
