// Package serve is the mining-as-a-service layer: a fault-tolerant,
// multi-tenant daemon core that accepts design+options mining jobs over a
// JSON API and runs them on a pooled fleet of reusable core.Engine instances.
//
// Robustness is the organizing principle — every failure mode degrades
// gracefully instead of losing work:
//
//   - Admission control: the job queue is bounded; a full queue rejects with
//     a typed ErrQueueFull (HTTP 429 + Retry-After), never by blocking or by
//     unbounded memory growth.
//   - Per-tenant budgets: each tenant gets a mining wall-clock budget (the
//     PR 1 deadline plumbing caps a job's context at the tenant's remaining
//     budget, so exhaustion mid-job yields a clean partial artifact), plus a
//     queued-job cap so one tenant cannot starve the others out of the queue.
//   - Retry with backoff: a job that dies to mc.ErrEngineInternal (worker
//     panic, engine crash) is retried with exponential backoff + jitter and
//     quarantined after a capped number of attempts — a poisoned job can
//     never wedge a worker loop.
//   - Durable jobs: every transition (submit, start, done, fail, quarantine,
//     cancel, checkpoint) is appended synchronously to a JSONL write-ahead
//     journal (the telemetry wire format, see telemetry.EncodeEvent). A
//     killed-and-restarted daemon replays the journal: completed jobs are
//     re-served from their recorded artifacts without recomputation, pending
//     jobs resume in submit order.
//   - Graceful drain: Shutdown stops admission, lets in-flight jobs finish
//     (or checkpoints them after the drain timeout — they resume on the next
//     start), flushes the journal, and returns so the daemon can exit 0.
//   - Liveness: Healthz/Readyz surface queue depth, drain state, and worker
//     liveness for load balancers.
//
// Engines are pooled per design+options fingerprint, so repeat jobs reuse
// compiled simulator programs, warmed SAT sessions, and reachability caches;
// all engines share one process-wide sharded LRU verdict cache
// (sched.NewVerdictCacheSized), so tenants mining the same design hit each
// other's warm verdicts across jobs and across daemon restarts' runs.
package serve
