package serve

import (
	"fmt"
	"sync"

	"goldmine/internal/core"
	"goldmine/internal/rtl"
	"goldmine/internal/sched"
)

// poolKey identifies engines that are interchangeable: same design structure
// and the same engine configuration (checker options via the sched
// fingerprint, plus every Config knob that shapes an engine's behaviour).
// The shared-cache pointer is deliberately excluded — all pooled engines use
// the server's cache.
func poolKey(d *rtl.Design, cfg core.Config) string {
	return sched.DesignFingerprint(d) + "|" + sched.OptionsFingerprint(cfg.MC) +
		fmt.Sprintf("|w%d/i%d/c%d/win%d/b%v/f%v/sc%v/inc%v/cs%v/t%v/it%v",
			cfg.Workers, cfg.MaxIterations, cfg.MaxChecks, cfg.Window,
			cfg.BatchedChecks, cfg.AddFullCtxTrace, cfg.SignalCone,
			cfg.Incremental, cfg.CompiledSim, cfg.Timeout, cfg.IterationTimeout)
}

// enginePool parks idle core.Engine instances per poolKey so successive jobs
// on the same design+options reuse compiled simulator programs, warmed
// incremental SAT sessions, and model-checker reachability caches. An engine
// is checked out exclusively (core.Engine is not safe for two concurrent
// mining runs); concurrent same-key jobs simply build additional engines,
// which all share the process-wide verdict cache, so the expensive state —
// verdicts — is shared even when the engines are not.
type enginePool struct {
	mu     sync.Mutex
	idle   map[string][]*core.Engine
	perKey int // parked engines retained per key

	builds, reuses int64
}

func newEnginePool(perKey int) *enginePool {
	if perKey < 1 {
		perKey = 1
	}
	return &enginePool{idle: map[string][]*core.Engine{}, perKey: perKey}
}

// acquire checks an idle engine out or builds a fresh one via build.
func (p *enginePool) acquire(key string, build func() (*core.Engine, error)) (*core.Engine, error) {
	p.mu.Lock()
	if es := p.idle[key]; len(es) > 0 {
		e := es[len(es)-1]
		p.idle[key] = es[:len(es)-1]
		p.reuses++
		p.mu.Unlock()
		return e, nil
	}
	p.builds++
	p.mu.Unlock()
	return build()
}

// release parks an engine for reuse; a full per-key shelf drops it. Callers
// must not release an engine whose run panicked — a possibly-corrupt engine
// dies with its job, exactly like a panicked mc.Session is never repooled.
func (p *enginePool) release(key string, e *core.Engine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[key]) < p.perKey {
		p.idle[key] = append(p.idle[key], e)
	}
}

// PoolStats is the engine-reuse telemetry surfaced by /statsz.
type PoolStats struct {
	// Keys is the number of distinct design+options shelves.
	Keys int `json:"keys"`
	// Idle is the number of parked engines across shelves.
	Idle int `json:"idle"`
	// Builds and Reuses count acquire outcomes over the server's lifetime.
	Builds int64 `json:"builds"`
	Reuses int64 `json:"reuses"`
}

func (p *enginePool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{Keys: len(p.idle), Builds: p.builds, Reuses: p.reuses}
	for _, es := range p.idle {
		st.Idle += len(es)
	}
	return st
}
