package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldmine/internal/mc"
	"goldmine/internal/telemetry"
)

// testConfig is a small, fast server configuration for runner-seam tests.
func testConfig(run Runner) Config {
	return Config{
		Workers:      2,
		QueueDepth:   64,
		MaxAttempts:  3,
		RetryBase:    time.Millisecond,
		RetryMax:     5 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		Runner:       run,
	}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// okRunner completes instantly with a tiny artifact.
func okRunner(ctx context.Context, spec *JobSpec) (*Artifact, error) {
	return &Artifact{Design: spec.Design, Canonical: "canon:" + spec.Design + "\n"}, nil
}

func spec(tenant string) JobSpec { return JobSpec{Tenant: tenant, Design: "arbiter2"} }

func TestSubmitRunsJob(t *testing.T) {
	s := mustServer(t, testConfig(okRunner))
	defer shutdown(t, s)
	j, err := s.Submit(spec("t1"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := s.WaitJob(context.Background(), j.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if got.State != JobDone || got.Artifact == nil || got.Artifact.Canonical != "canon:arbiter2\n" {
		t.Fatalf("job = %+v, want done with artifact", got)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", got.Attempts)
	}
}

func TestSubmitValidates(t *testing.T) {
	s := mustServer(t, testConfig(okRunner))
	defer shutdown(t, s)
	if _, err := s.Submit(JobSpec{Design: "arbiter2"}); err == nil {
		t.Fatal("submit without tenant should fail")
	}
	if _, err := s.Submit(JobSpec{Tenant: "t", Design: "d", Source: "module m; endmodule"}); err == nil {
		t.Fatal("submit with design AND source should fail")
	}
}

// TestAdmissionControl fills the bounded queue with blocked jobs and checks
// that the overflow submission is rejected with the typed ErrQueueFull — and
// that capacity frees once jobs finish.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		select {
		case <-release:
			return &Artifact{Design: spec.Design}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cfg := testConfig(blocking)
	cfg.Workers = 1
	cfg.QueueDepth = 3
	s := mustServer(t, cfg)
	defer shutdown(t, s)

	var ids []string
	for i := 0; i < 3; i++ {
		j, err := s.Submit(spec(fmt.Sprintf("t%d", i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}
	if _, err := s.Submit(spec("overflow")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	close(release)
	for _, id := range ids {
		if j, err := s.WaitJob(context.Background(), id); err != nil || j.State != JobDone {
			t.Fatalf("job %s: %+v, %v", id, j, err)
		}
	}
	// Terminal jobs no longer occupy admission slots.
	if _, err := s.Submit(spec("late")); err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
}

// TestTenantFairnessCap pins that one tenant saturating its per-tenant slot
// cap is rejected with the typed error while other tenants are still served.
func TestTenantFairnessCap(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		select {
		case <-release:
			return &Artifact{Design: spec.Design}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cfg := testConfig(blocking)
	cfg.Workers = 1
	cfg.TenantMaxActive = 2
	s := mustServer(t, cfg)
	defer shutdown(t, s)

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(spec("greedy")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(spec("greedy")); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("third greedy submit err = %v, want ErrTenantQueueFull", err)
	}
	// The other tenant is not starved by greedy's cap.
	j, err := s.Submit(spec("polite"))
	if err != nil {
		t.Fatalf("polite submit: %v", err)
	}
	close(release)
	if got, err := s.WaitJob(context.Background(), j.ID); err != nil || got.State != JobDone {
		t.Fatalf("polite job: %+v, %v", got, err)
	}
}

// TestTenantBudget exhausts one tenant's wall-clock budget and checks the
// typed rejection — while another tenant keeps mining against its own budget.
func TestTenantBudget(t *testing.T) {
	slow := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		time.Sleep(30 * time.Millisecond)
		return &Artifact{Design: spec.Design}, nil
	}
	cfg := testConfig(slow)
	cfg.TenantBudget = 20 * time.Millisecond
	s := mustServer(t, cfg)
	defer shutdown(t, s)

	j, err := s.Submit(spec("burner"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if got, _ := s.WaitJob(context.Background(), j.ID); got.State != JobDone {
		t.Fatalf("first job state = %s, want done", got.State)
	}
	// 30ms consumed > 20ms budget: the next submit is rejected, typed.
	if _, err := s.Submit(spec("burner")); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-budget submit err = %v, want ErrBudgetExhausted", err)
	}
	// An independent tenant still gets served.
	j2, err := s.Submit(spec("fresh"))
	if err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	if got, _ := s.WaitJob(context.Background(), j2.ID); got.State != JobDone {
		t.Fatalf("fresh job state = %s, want done", got.State)
	}
}

// TestRetryThenSucceed: a job that dies twice to engine-internal faults is
// retried with backoff and completes on the third attempt.
func TestRetryThenSucceed(t *testing.T) {
	var calls atomic.Int32
	flaky := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("%w: injected", mc.ErrEngineInternal)
		}
		return &Artifact{Design: spec.Design}, nil
	}
	s := mustServer(t, testConfig(flaky))
	defer shutdown(t, s)
	j, err := s.Submit(spec("t1"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got, err := s.WaitJob(context.Background(), j.ID)
	if err != nil || got.State != JobDone {
		t.Fatalf("job = %+v, %v; want done", got, err)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", got.Attempts)
	}
	if st := s.Stats(); st.Retried != 2 {
		t.Fatalf("retried = %d, want 2", st.Retried)
	}
}

// TestQuarantine: a job that keeps dying is quarantined after MaxAttempts —
// poisoned work cannot wedge the fleet.
func TestQuarantine(t *testing.T) {
	poison := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		return nil, fmt.Errorf("%w: always", mc.ErrEngineInternal)
	}
	s := mustServer(t, testConfig(poison))
	defer shutdown(t, s)
	j, err := s.Submit(spec("t1"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got, err := s.WaitJob(context.Background(), j.ID)
	if err != nil || got.State != JobQuarantined {
		t.Fatalf("job = %+v, %v; want quarantined", got, err)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", got.Attempts)
	}
}

// TestWorkerPanicRecovery: a panicking runner is an engine-internal fault —
// retried, and the worker that hosted the panic survives to run other jobs.
func TestWorkerPanicRecovery(t *testing.T) {
	var calls atomic.Int32
	bomb := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		if calls.Add(1) == 1 {
			panic("injected worker panic")
		}
		return &Artifact{Design: spec.Design}, nil
	}
	cfg := testConfig(bomb)
	cfg.Workers = 1
	s := mustServer(t, cfg)
	defer shutdown(t, s)
	j, err := s.Submit(spec("t1"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got, err := s.WaitJob(context.Background(), j.ID)
	if err != nil || got.State != JobDone {
		t.Fatalf("job = %+v, %v; want done after panic retry", got, err)
	}
	if live := s.Stats().WorkersLive; live != 1 {
		t.Fatalf("workers live = %d, want 1 (panic must not kill the worker)", live)
	}
}

// TestNonRetryableErrorFailsFast: a spec-level error is terminal on the first
// attempt, never retried.
func TestNonRetryableErrorFailsFast(t *testing.T) {
	bad := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		return nil, errors.New("no such design")
	}
	s := mustServer(t, testConfig(bad))
	defer shutdown(t, s)
	j, _ := s.Submit(spec("t1"))
	got, err := s.WaitJob(context.Background(), j.ID)
	if err != nil || got.State != JobFailed {
		t.Fatalf("job = %+v, %v; want failed", got, err)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries for spec errors)", got.Attempts)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	blocking := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &Artifact{Design: spec.Design}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cfg := testConfig(blocking)
	cfg.Workers = 1
	s := mustServer(t, cfg)
	defer shutdown(t, s)

	running, _ := s.Submit(spec("t1"))
	queued, _ := s.Submit(spec("t1"))
	<-started

	if ok, err := s.Cancel(queued.ID); err != nil || !ok {
		t.Fatalf("cancel queued: %v %v", ok, err)
	}
	if got, _ := s.WaitJob(context.Background(), queued.ID); got.State != JobCanceled {
		t.Fatalf("queued job state = %s, want canceled", got.State)
	}
	if ok, err := s.Cancel(running.ID); err != nil || !ok {
		t.Fatalf("cancel running: %v %v", ok, err)
	}
	if got, _ := s.WaitJob(context.Background(), running.ID); got.State != JobCanceled {
		t.Fatalf("running job state = %s, want canceled", got.State)
	}
	// Canceling a terminal job reports false, not an error.
	if ok, err := s.Cancel(running.ID); err != nil || ok {
		t.Fatalf("re-cancel = %v %v, want false nil", ok, err)
	}
}

// TestCancelRaceWithWorkerPickup hammers the window between a worker popping
// a job and marking it running: a Cancel landing in that gap must settle the
// job exactly once (the old unlocked check let the worker resurrect a
// terminal job and double-close its done channel).
func TestCancelRaceWithWorkerPickup(t *testing.T) {
	cfg := testConfig(okRunner)
	cfg.Workers = 4
	s := mustServer(t, cfg)
	defer shutdown(t, s)

	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		j, err := s.Submit(spec(fmt.Sprintf("t%d", i%4)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if _, err := s.Cancel(id); err != nil {
				t.Errorf("cancel %s: %v", id, err)
			}
		}(j.ID)
		if _, err := s.WaitJob(context.Background(), j.ID); err != nil {
			t.Fatalf("wait %s: %v", j.ID, err)
		}
	}
	wg.Wait()
	for _, j := range s.Jobs("") {
		if j.State != JobDone && j.State != JobCanceled {
			t.Fatalf("job %s state = %s, want done or canceled", j.ID, j.State)
		}
	}
}

// TestBudgetExhaustedIsDurable: a job rejected at run time because its
// tenant's budget is spent must replay as failed after a restart, not flip
// back to queued and burn a worker re-failing.
func TestBudgetExhaustedIsDurable(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	slow := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		time.Sleep(30 * time.Millisecond)
		return &Artifact{Design: spec.Design}, nil
	}
	cfg := testConfig(slow)
	cfg.Workers = 1
	cfg.TenantBudget = 20 * time.Millisecond
	cfg.WALPath = walPath
	s1 := mustServer(t, cfg)
	// Both admitted while the budget is untouched; the first burns it, the
	// second hits the pre-attempt budget check and fails terminally.
	j1, err := s1.Submit(spec("burner"))
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	j2, err := s1.Submit(spec("burner"))
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if got, _ := s1.WaitJob(context.Background(), j1.ID); got.State != JobDone {
		t.Fatalf("job1 state = %s, want done", got.State)
	}
	got2, _ := s1.WaitJob(context.Background(), j2.ID)
	if got2.State != JobFailed || !strings.Contains(got2.Err, "budget") {
		t.Fatalf("job2 = %+v, want budget-exhausted failure", got2)
	}
	s1.Kill()

	// Restart: the failed job must stay failed and must not rerun.
	var reran atomic.Int32
	run2 := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		reran.Add(1)
		return &Artifact{Design: spec.Design}, nil
	}
	cfg2 := testConfig(run2)
	cfg2.TenantBudget = 20 * time.Millisecond
	cfg2.WALPath = walPath
	s2 := mustServer(t, cfg2)
	defer shutdown(t, s2)
	got, ok := s2.Job(j2.ID)
	if !ok || got.State != JobFailed {
		t.Fatalf("replayed job2 = %+v (ok=%v), want failed", got, ok)
	}
	if st := s2.Stats(); st.ResumedPending != 0 {
		t.Fatalf("resumed pending = %d, want 0 (terminal jobs must not resume)", st.ResumedPending)
	}
	if n := reran.Load(); n != 0 {
		t.Fatalf("runner reran %d times after restart, want 0", n)
	}
}

// TestDrainRestartDrainRestart: the end-to-end shape of the drain-trailer
// bug — a daemon that gracefully drains, restarts, works, drains again, and
// restarts must keep starting on its own WAL.
func TestDrainRestartDrainRestart(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	for round := 0; round < 3; round++ {
		cfg := testConfig(okRunner)
		cfg.WALPath = walPath
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("round %d: New: %v", round, err)
		}
		j, err := s.Submit(JobSpec{Tenant: "t", Design: fmt.Sprintf("d%d", round)})
		if err != nil {
			t.Fatalf("round %d: submit: %v", round, err)
		}
		if got, _ := s.WaitJob(context.Background(), j.ID); got.State != JobDone {
			t.Fatalf("round %d: job state = %s", round, got.State)
		}
		shutdown(t, s)
	}
}

// TestDrainCompletesInFlight: Shutdown lets running jobs finish and loses
// nothing; each submitted job is executed exactly once.
func TestDrainCompletesInFlight(t *testing.T) {
	var runs atomic.Int32
	slowOK := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		runs.Add(1)
		time.Sleep(5 * time.Millisecond)
		return &Artifact{Design: spec.Design}, nil
	}
	s := mustServer(t, testConfig(slowOK))
	const n = 12
	var ids []string
	for i := 0; i < n; i++ {
		j, err := s.Submit(spec(fmt.Sprintf("t%d", i%3)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}
	shutdown(t, s)
	done := 0
	for _, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State == JobDone {
			done++
		} else if j.State != JobQueued {
			t.Fatalf("job %s state = %s after drain, want done or queued(checkpointed)", id, j.State)
		}
	}
	if int(runs.Load()) != done {
		t.Fatalf("runner ran %d times but %d jobs done: lost or duplicated work", runs.Load(), done)
	}
	// After the drain, submissions are refused with the typed error.
	if _, err := s.Submit(spec("late")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}

// TestKillRestartDurability is the core crash-safety property: SIGKILL the
// daemon mid-load, restart it on the same WAL, and (a) completed jobs are
// re-served from the journal without recomputation, (b) pending jobs resume
// and complete, (c) nothing is lost or duplicated.
func TestKillRestartDurability(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")

	var runs1 atomic.Int32
	release := make(chan struct{})
	gated := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		runs1.Add(1)
		if spec.Design == "slow" {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &Artifact{Design: spec.Design, Canonical: "canon:" + spec.Design + "\n"}, nil
	}
	cfg := testConfig(gated)
	cfg.Workers = 1
	cfg.WALPath = walPath
	s1 := mustServer(t, cfg)

	fast, err := s1.Submit(JobSpec{Tenant: "t1", Design: "fast"})
	if err != nil {
		t.Fatalf("submit fast: %v", err)
	}
	if got, _ := s1.WaitJob(context.Background(), fast.ID); got.State != JobDone {
		t.Fatalf("fast job state = %s", got.State)
	}
	slow, err := s1.Submit(JobSpec{Tenant: "t1", Design: "slow"})
	if err != nil {
		t.Fatalf("submit slow: %v", err)
	}
	queued, err := s1.Submit(JobSpec{Tenant: "t2", Design: "fast2"})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	// Wait until the slow job is actually running, then kill the daemon.
	for {
		if j, _ := s1.Job(slow.ID); j.State == JobRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s1.Kill()
	close(release)

	// Restart on the same WAL with a fresh runner that records what reruns.
	var reran sync.Map
	run2 := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		reran.Store(spec.Design, true)
		return &Artifact{Design: spec.Design, Canonical: "canon:" + spec.Design + "\n"}, nil
	}
	cfg2 := testConfig(run2)
	cfg2.WALPath = walPath
	s2 := mustServer(t, cfg2)
	defer shutdown(t, s2)

	// (a) The completed job is served from the journal, marked recovered,
	// with a byte-identical artifact — and was NOT recomputed.
	got, ok := s2.Job(fast.ID)
	if !ok || got.State != JobDone {
		t.Fatalf("recovered fast job = %+v, %v", got, ok)
	}
	if !got.Recovered {
		t.Fatal("recovered job should carry the Recovered flag")
	}
	if got.Artifact == nil || got.Artifact.Canonical != "canon:fast\n" {
		t.Fatalf("recovered artifact = %+v, want byte-identical canonical", got.Artifact)
	}

	// (b) The killed-mid-flight job and the queued job both resume and run.
	for _, id := range []string{slow.ID, queued.ID} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		j, err := s2.WaitJob(ctx, id)
		cancel()
		if err != nil || j.State != JobDone {
			t.Fatalf("resumed job %s = %+v, %v", id, j, err)
		}
	}

	// (c) Exactly the two pending jobs reran; the done one did not.
	if _, did := reran.Load("fast"); did {
		t.Fatal("completed job was recomputed after restart")
	}
	for _, d := range []string{"slow", "fast2"} {
		if _, did := reran.Load(d); !did {
			t.Fatalf("pending job %q did not rerun after restart", d)
		}
	}
	st := s2.Stats()
	if st.RecoveredDone != 1 || st.ResumedPending != 2 {
		t.Fatalf("recovery stats = %+v, want 1 recovered / 2 resumed", st)
	}
}

// TestRestartPreservesAttemptCounts: a job one failure short of quarantine
// stays one failure short across a restart.
func TestRestartPreservesAttemptCounts(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	poison := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		return nil, fmt.Errorf("%w: always", mc.ErrEngineInternal)
	}
	cfg := testConfig(poison)
	cfg.MaxAttempts = 5
	cfg.RetryBase = time.Hour // park the job in retry-wait after one failure
	cfg.RetryMax = time.Hour
	cfg.WALPath = walPath
	s1 := mustServer(t, cfg)
	j, err := s1.Submit(spec("t1"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for {
		if got, _ := s1.Job(j.ID); got.Attempts == 1 && got.State == JobQueued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s1.Kill()

	cfg2 := testConfig(poison)
	cfg2.MaxAttempts = 5
	cfg2.WALPath = walPath
	s2 := mustServer(t, cfg2)
	defer shutdown(t, s2)
	got, err := s2.WaitJob(context.Background(), j.ID)
	if err != nil || got.State != JobQuarantined {
		t.Fatalf("job = %+v, %v; want quarantined", got, err)
	}
	if got.Attempts != 5 {
		t.Fatalf("attempts = %d, want 5 (1 pre-restart + 4 post)", got.Attempts)
	}
}

// TestBudgetSurvivesRestart: wall clock charged against a tenant's budget is
// replayed from the WAL, so a restart does not refill budgets.
func TestBudgetSurvivesRestart(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	slow := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		time.Sleep(30 * time.Millisecond)
		return &Artifact{Design: spec.Design}, nil
	}
	cfg := testConfig(slow)
	cfg.TenantBudget = 20 * time.Millisecond
	cfg.WALPath = walPath
	s1 := mustServer(t, cfg)
	j, _ := s1.Submit(spec("burner"))
	if got, _ := s1.WaitJob(context.Background(), j.ID); got.State != JobDone {
		t.Fatalf("job state = %s", got.State)
	}
	s1.Kill()

	cfg2 := testConfig(slow)
	cfg2.TenantBudget = 20 * time.Millisecond
	cfg2.WALPath = walPath
	s2 := mustServer(t, cfg2)
	defer shutdown(t, s2)
	if _, err := s2.Submit(spec("burner")); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-restart submit err = %v, want ErrBudgetExhausted", err)
	}
}

// TestRealMiningJob runs one real end-to-end job (no runner seam) and pins
// the canonical artifact against a direct engine run, plus cross-run cache
// reuse on a second identical job served by a pooled engine.
func TestRealMiningJob(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 8, MaxAttempts: 2,
		RetryBase: time.Millisecond, RetryMax: time.Millisecond,
		DrainTimeout: 30 * time.Second}
	s := mustServer(t, cfg)
	defer shutdown(t, s)

	j1, err := s.Submit(JobSpec{Tenant: "t1", Design: "arbiter2"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got1, err := s.WaitJob(context.Background(), j1.ID)
	if err != nil || got1.State != JobDone {
		t.Fatalf("job1 = %+v, %v", got1, err)
	}
	if got1.Artifact.Canonical == "" || !got1.Artifact.Converged {
		t.Fatalf("artifact = %+v, want converged canonical", got1.Artifact)
	}

	// Second identical job: pooled engine, warm cross-run verdict cache.
	j2, err := s.Submit(JobSpec{Tenant: "t2", Design: "arbiter2"})
	if err != nil {
		t.Fatalf("submit2: %v", err)
	}
	got2, err := s.WaitJob(context.Background(), j2.ID)
	if err != nil || got2.State != JobDone {
		t.Fatalf("job2 = %+v, %v", got2, err)
	}
	if got1.Artifact.Canonical != got2.Artifact.Canonical {
		t.Fatal("same spec produced different canonical artifacts")
	}
	if got2.Artifact.CacheHits == 0 {
		t.Fatalf("second run cache hits = 0, want cross-run reuse (stats %+v)", got2.Artifact)
	}
	st := s.Stats()
	if st.Pool.Reuses == 0 {
		t.Fatalf("pool reuses = 0, want engine reuse (pool %+v)", st.Pool)
	}
}

// TestPortfolioJobMatchesDefault: a server configured with a racing SAT
// portfolio produces byte-identical canonical artifacts to a plain server,
// and its tracer-backed /statsz payload surfaces the solver search counters.
func TestPortfolioJobMatchesDefault(t *testing.T) {
	tel := telemetry.New(telemetry.NewRegistry(), nil)
	cfg := Config{Workers: 1, QueueDepth: 8, MaxAttempts: 2,
		RetryBase: time.Millisecond, RetryMax: time.Millisecond,
		DrainTimeout: 30 * time.Second, Portfolio: 3, Tracer: tel}
	s := mustServer(t, cfg)
	defer shutdown(t, s)

	plain := mustServer(t, Config{Workers: 1, QueueDepth: 8, MaxAttempts: 2,
		RetryBase: time.Millisecond, RetryMax: time.Millisecond,
		DrainTimeout: 30 * time.Second})
	defer shutdown(t, plain)

	run := func(srv *Server) *Artifact {
		j, err := srv.Submit(JobSpec{Tenant: "t1", Design: "fetch"})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		got, err := srv.WaitJob(context.Background(), j.ID)
		if err != nil || got.State != JobDone {
			t.Fatalf("job = %+v, %v", got, err)
		}
		return got.Artifact
	}
	a, b := run(s), run(plain)
	if a.Canonical != b.Canonical {
		t.Fatal("portfolio server produced a different canonical artifact")
	}

	st := s.Stats()
	if st.Solver == nil {
		t.Fatal("stats.Solver is nil with a Tracer wired")
	}
	if st.Solver["sat.solves"] == 0 {
		t.Fatalf("stats.Solver[sat.solves] = 0, want > 0 (solver %v)", st.Solver)
	}
	if plain.Stats().Solver != nil {
		t.Fatal("stats.Solver should be absent without a Tracer")
	}
}
