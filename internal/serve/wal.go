package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"goldmine/internal/telemetry"
)

// WAL record names. Every record is one JSONL line in the telemetry journal
// wire format (kind "job", encoded by telemetry.EncodeEvent): "submit"
// carries the full JobSpec as data, terminal records ("done", "quarantine",
// "cancel") settle the job, and the rest are progress markers that survive a
// crash ("start", "fail", "checkpoint").
const (
	walKind       = "job"
	walSubmit     = "submit"
	walStart      = "start"
	walDone       = "done"
	walFail       = "fail"
	walReject     = "reject"
	walQuarantine = "quarantine"
	walCancel     = "cancel"
	walCheckpoint = "checkpoint"
	walDrain      = "drain"
)

// wal is the durable write-ahead job journal. Appends are synchronous and
// mutex-serialized: by the time a client learns a job ID (or a result), the
// corresponding record has reached the kernel, so a SIGKILLed process loses
// at most the record being written when it died — and replay tolerates that
// torn final line.
type wal struct {
	mu       sync.Mutex
	f        *os.File
	buf      []byte
	path     string
	disabled atomic.Bool // set by Kill: simulates abrupt process death
	appends  atomic.Int64
}

// walJob is one job reconstructed by replay.
type walJob struct {
	ID       string
	Spec     JobSpec
	State    JobState
	Attempts int
	Err      string
	Artifact *Artifact
	// ChargedMS is the mining wall clock recorded against the job's tenant
	// (done records), replayed so budgets survive restarts.
	ChargedMS float64
}

// openWAL opens (or creates) the journal at path and replays it: the
// returned jobs are in original submit order with their latest state applied.
func openWAL(path string) (*wal, []*walJob, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	jobs, err := replayWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	return &wal{f: f, path: path}, jobs, nil
}

// replayWAL folds the journal into per-job state. A final line that fails to
// parse is treated as torn by the crash and ignored; a malformed line with
// anything after it — records or blanks — means real corruption and fails
// the open.
func replayWAL(f *os.File) ([]*walJob, error) {
	byID := map[string]*walJob{}
	var order []*walJob
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var pendingErr error
	line, badLine := 0, 0
	for sc.Scan() {
		line++
		// Any line after a bad record — even a blank one — proves bytes were
		// written past it, so it was mid-file corruption, not a torn tail.
		if pendingErr != nil {
			return nil, fmt.Errorf("wal: corrupt record at line %d: %w", badLine, pendingErr)
		}
		if len(sc.Bytes()) == 0 {
			continue
		}
		var je telemetry.JSONEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			pendingErr, badLine = err, line
			continue
		}
		// Drain trailers are id-less lifecycle markers, not job records; a
		// restarted daemon appends past them, leaving them mid-file.
		if je.Kind != walKind || je.Name == walDrain {
			continue
		}
		if err := applyRecord(byID, &order, &je); err != nil {
			pendingErr, badLine = err, line
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// pendingErr on the very last line: torn write at the kill point.
	return order, nil
}

func attrString(je *telemetry.JSONEvent, key string) string {
	s, _ := je.Attrs[key].(string)
	return s
}

func attrInt(je *telemetry.JSONEvent, key string) int64 {
	// encoding/json decodes numbers into float64.
	f, _ := je.Attrs[key].(float64)
	return int64(f)
}

func applyRecord(byID map[string]*walJob, order *[]*walJob, je *telemetry.JSONEvent) error {
	id := attrString(je, "id")
	if id == "" {
		return fmt.Errorf("job record %q without id", je.Name)
	}
	j := byID[id]
	if je.Name == walSubmit {
		if j != nil {
			return fmt.Errorf("duplicate submit for %s", id)
		}
		j = &walJob{ID: id, State: JobQueued}
		if je.Data == nil {
			return fmt.Errorf("submit %s without spec", id)
		}
		if err := json.Unmarshal(*je.Data, &j.Spec); err != nil {
			return fmt.Errorf("submit %s: %w", id, err)
		}
		byID[id] = j
		*order = append(*order, j)
		return nil
	}
	if j == nil {
		return fmt.Errorf("%s record for unknown job %s", je.Name, id)
	}
	switch je.Name {
	case walStart:
		j.State = JobRunning
		j.Attempts = int(attrInt(je, "attempt"))
	case walDone:
		j.State = JobDone
		j.ChargedMS += float64(attrInt(je, "elapsed_us")) / 1000
		if je.Data != nil {
			var a Artifact
			if err := json.Unmarshal(*je.Data, &a); err != nil {
				return fmt.Errorf("done %s: %w", id, err)
			}
			j.Artifact = &a
		}
	case walFail:
		j.State = JobQueued // retry pending
		j.Attempts = int(attrInt(je, "attempt"))
		j.Err = attrString(je, "error")
		j.ChargedMS += float64(attrInt(je, "elapsed_us")) / 1000
	case walReject:
		j.State = JobFailed
		j.Err = attrString(je, "error")
		j.ChargedMS += float64(attrInt(je, "elapsed_us")) / 1000
	case walQuarantine:
		j.State = JobQuarantined
		j.Err = attrString(je, "error")
	case walCancel:
		j.State = JobCanceled
	case walCheckpoint:
		// A drained in-flight job: pending again, attempt count retained
		// (the checkpoint was not a failure).
		j.State = JobQueued
		j.ChargedMS += float64(attrInt(je, "elapsed_us")) / 1000
	default:
		return fmt.Errorf("unknown job record %q for %s", je.Name, id)
	}
	return nil
}

// append encodes one record and writes it synchronously. Errors are returned
// so callers can surface them, but the in-memory state machine proceeds
// regardless — a daemon with a sick disk degrades to non-durable operation
// rather than refusing all work.
func (w *wal) append(name string, data any, attrs ...telemetry.Attr) error {
	if w == nil || w.disabled.Load() {
		return nil
	}
	e := telemetry.Event{TS: time.Now(), Kind: walKind, Name: name, Attrs: attrs, Data: data}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	w.buf, err = telemetry.EncodeEvent(w.buf[:0], &e)
	if err != nil {
		return fmt.Errorf("wal: encode %s: %w", name, err)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("wal: append %s: %w", name, err)
	}
	w.appends.Add(1)
	return nil
}

// disable stops all further writes without flushing anything — the Kill path
// uses it to make an in-process restart indistinguishable from SIGKILL.
func (w *wal) disable() {
	if w != nil {
		w.disabled.Store(true)
	}
}

func (w *wal) close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
