package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testHTTP(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutdown(t, s)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, m
}

func TestHTTPSubmitAndArtifact(t *testing.T) {
	_, ts := testHTTP(t, testConfig(okRunner))
	resp, m := postJob(t, ts, `{"tenant":"t1","design":"arbiter2"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", m)
	}

	wresp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	var jv map[string]any
	_ = json.NewDecoder(wresp.Body).Decode(&jv)
	wresp.Body.Close()
	if jv["state"] != "done" {
		t.Fatalf("job = %v, want done", jv)
	}

	aresp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(aresp.Body)
	aresp.Body.Close()
	if string(body) != "canon:arbiter2\n" {
		t.Fatalf("artifact = %q", body)
	}
	if ct := aresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("artifact content type = %q", ct)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := testHTTP(t, testConfig(okRunner))
	if resp, _ := postJob(t, ts, `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d, want 400", resp.StatusCode)
	}
	resp, m := postJob(t, ts, `{"design":"arbiter2"}`)
	if resp.StatusCode != http.StatusBadRequest || m["code"] != "bad_request" {
		t.Fatalf("missing tenant = %d %v, want 400 bad_request", resp.StatusCode, m)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/j999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPOverload: at queue capacity the API answers 429 with both the
// Retry-After header and the machine-readable code.
func TestHTTPOverload(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		select {
		case <-release:
			return &Artifact{Design: spec.Design}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cfg := testConfig(blocking)
	cfg.Workers = 1
	cfg.QueueDepth = 2
	s, ts := testHTTP(t, cfg)
	defer close(release)

	for i := 0; i < 2; i++ {
		if resp, m := postJob(t, ts, fmt.Sprintf(`{"tenant":"t%d","design":"d"}`, i)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d = %d %v", i, resp.StatusCode, m)
		}
	}
	resp, m := postJob(t, ts, `{"tenant":"t9","design":"d"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if m["code"] != "queue_full" {
		t.Fatalf("code = %v, want queue_full", m["code"])
	}

	// readyz reflects the saturated queue.
	r, _ := http.Get(ts.URL + "/readyz")
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz at capacity = %d, want 503", r.StatusCode)
	}
	// healthz stays green: the process is alive, just busy.
	h, _ := http.Get(ts.URL + "/healthz")
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz at capacity = %d, want 200", h.StatusCode)
	}
	_ = s
}

func TestHTTPTenantErrors(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
		select {
		case <-release:
			return &Artifact{Design: spec.Design}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cfg := testConfig(blocking)
	cfg.Workers = 1
	cfg.TenantMaxActive = 1
	_, ts := testHTTP(t, cfg)
	defer close(release)

	if resp, _ := postJob(t, ts, `{"tenant":"g","design":"d"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	resp, m := postJob(t, ts, `{"tenant":"g","design":"d"}`)
	if resp.StatusCode != http.StatusTooManyRequests || m["code"] != "tenant_queue_full" {
		t.Fatalf("tenant overflow = %d %v, want 429 tenant_queue_full", resp.StatusCode, m)
	}
	// Another tenant is admitted despite g's saturation.
	if resp, _ := postJob(t, ts, `{"tenant":"p","design":"d"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202", resp.StatusCode)
	}
}

func TestHTTPDrainRejects(t *testing.T) {
	s := mustServer(t, testConfig(okRunner))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, m := postJob(t, ts, `{"tenant":"t","design":"d"}`)
	if resp.StatusCode != http.StatusServiceUnavailable || m["code"] != "draining" {
		t.Fatalf("post-drain submit = %d %v, want 503 draining", resp.StatusCode, m)
	}
	r, _ := http.Get(ts.URL + "/readyz")
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz draining = %d, want 503", r.StatusCode)
	}
}

func TestHTTPStatsAndList(t *testing.T) {
	_, ts := testHTTP(t, testConfig(okRunner))
	_, m := postJob(t, ts, `{"tenant":"t1","design":"arbiter2"}`)
	id := m["id"].(string)
	if _, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=1"); err != nil {
		t.Fatal(err)
	}

	lresp, _ := http.Get(ts.URL + "/v1/jobs?tenant=t1")
	var list []map[string]any
	_ = json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if len(list) != 1 || list[0]["id"] != id {
		t.Fatalf("list = %v", list)
	}

	sresp, _ := http.Get(ts.URL + "/statsz")
	var st map[string]any
	_ = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if st["submitted"].(float64) != 1 || st["completed"].(float64) != 1 {
		t.Fatalf("statsz = %v", st)
	}

	// Cancel API on a terminal job: 200, state unchanged.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dv map[string]any
	_ = json.NewDecoder(dresp.Body).Decode(&dv)
	dresp.Body.Close()
	if dv["state"] != "done" {
		t.Fatalf("cancel of done job yielded state %v", dv["state"])
	}
}
