package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"goldmine/internal/core"
	"goldmine/internal/designs"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

// JobSpec is the client-supplied description of one mining job. The fields
// mirror the goldmine CLI flags 1:1 and resolve to the same defaults, so a
// job's canonical artifact is byte-identical to a fresh `goldmine -canonical`
// run with the equivalent flags — the property the recovery smoke test pins.
type JobSpec struct {
	// Tenant names the submitting tenant (budget/queue accounting key).
	Tenant string `json:"tenant"`
	// Design is a benchmark name; Source is inline Verilog. Exactly one.
	Design string `json:"design,omitempty"`
	Source string `json:"source,omitempty"`
	// Output restricts mining to one signal (default: all outputs), Bit to
	// one bit of it (nil: all bits).
	Output string `json:"output,omitempty"`
	Bit    *int   `json:"bit,omitempty"`
	// Seed is the seed stimulus spec: directed | random:<cycles> | none
	// (default directed, like the CLI).
	Seed string `json:"seed,omitempty"`
	// Window overrides the mining window (nil: the benchmark's default).
	Window *int `json:"window,omitempty"`
	// MaxIter bounds refinement iterations (0: the engine default, 64).
	MaxIter int `json:"max_iter,omitempty"`
	// Workers is the intra-job parallelism degree (0: 1; artifacts are
	// identical for any value). Capped by the server's MaxJobWorkers.
	Workers int `json:"workers,omitempty"`
	// Batched enables the Section 7 batched-check optimization.
	Batched bool `json:"batched,omitempty"`
	// FullCtx adds every counterexample window to the dataset.
	FullCtx bool `json:"full_ctx,omitempty"`
	// TimeoutMS bounds the job's wall clock (0: server default). The
	// effective deadline is further capped by the tenant's remaining budget.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// CheckTimeoutMS bounds one formal check (0: none).
	CheckTimeoutMS int64 `json:"check_timeout_ms,omitempty"`
}

// Validate rejects malformed specs with errors that name the fields, before
// the job consumes any queue slot or budget.
func (s *JobSpec) Validate() error {
	switch {
	case s.Tenant == "":
		return fmt.Errorf("spec: tenant is required")
	case s.Design != "" && s.Source != "":
		return fmt.Errorf("spec: design and source are mutually exclusive")
	case s.Design == "" && s.Source == "":
		return fmt.Errorf("spec: need design (a benchmark name) or source (inline Verilog)")
	}
	if s.Bit != nil && *s.Bit >= 0 && s.Output == "" {
		return fmt.Errorf("spec: bit needs output to name the signal it indexes")
	}
	if s.Window != nil && *s.Window < 0 {
		return fmt.Errorf("spec: window must be >= 0, got %d", *s.Window)
	}
	if s.MaxIter < 0 || s.Workers < 0 || s.TimeoutMS < 0 || s.CheckTimeoutMS < 0 {
		return fmt.Errorf("spec: max_iter, workers, timeout_ms and check_timeout_ms must be >= 0")
	}
	if s.Seed != "" && s.Seed != "directed" && s.Seed != "none" && !strings.HasPrefix(s.Seed, "random:") {
		return fmt.Errorf("spec: bad seed %q (directed | random:<n> | none)", s.Seed)
	}
	return nil
}

// resolved is a spec elaborated into everything a mining run needs.
type resolved struct {
	design  *rtl.Design
	cfg     core.Config
	seed    sim.Stimulus
	targets []core.Target
	// poolKey identifies engines that are interchangeable for this job:
	// same design structure, same checker options, same engine toggles.
	poolKey string
}

// resolve elaborates the design, maps the spec onto the validated core
// options builder with the same defaults as the goldmine CLI, and derives the
// seed and target set. maxWorkers caps the per-job parallelism.
func resolve(spec *JobSpec, maxWorkers int) (*resolved, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var (
		d     *rtl.Design
		bench *designs.Benchmark
		err   error
	)
	if spec.Design != "" {
		bench, err = designs.Get(spec.Design)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		d, err = bench.Design()
	} else {
		d, err = rtl.ElaborateSource(spec.Source)
	}
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}

	workers := spec.Workers
	if workers < 1 {
		workers = 1
	}
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	opts := core.NewOptions().
		Batched(spec.Batched).
		FullCtxTrace(spec.FullCtx).
		Workers(workers).
		CheckTimeout(time.Duration(spec.CheckTimeoutMS) * time.Millisecond)
	if spec.MaxIter > 0 {
		opts.MaxIterations(spec.MaxIter)
	}
	if spec.Window != nil {
		opts.Window(*spec.Window)
	} else if bench != nil {
		opts.Window(bench.Window)
	}
	cfg, err := opts.Build()
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}

	seed, err := seedStimulus(d, bench, spec.Seed)
	if err != nil {
		return nil, err
	}

	var targets []core.Target
	addTarget := func(sig *rtl.Signal) {
		if spec.Bit != nil && *spec.Bit >= 0 {
			targets = append(targets, core.Target{Output: sig, Bit: *spec.Bit})
			return
		}
		for b := 0; b < sig.Width; b++ {
			targets = append(targets, core.Target{Output: sig, Bit: b})
		}
	}
	if spec.Output != "" {
		sig := d.Signal(spec.Output)
		if sig == nil {
			return nil, fmt.Errorf("spec: no signal %q in design %s", spec.Output, d.Name)
		}
		addTarget(sig)
	} else {
		for _, sig := range d.Outputs() {
			addTarget(sig)
		}
	}
	return &resolved{
		design:  d,
		cfg:     cfg,
		seed:    seed,
		targets: targets,
		poolKey: poolKey(d, cfg),
	}, nil
}

// seedStimulus mirrors the goldmine CLI's -seed resolution.
func seedStimulus(d *rtl.Design, bench *designs.Benchmark, spec string) (sim.Stimulus, error) {
	switch {
	case spec == "none":
		return nil, nil
	case spec == "" || spec == "directed":
		if bench != nil && bench.Directed != nil {
			return bench.Directed(), nil
		}
		return nil, nil
	case strings.HasPrefix(spec, "random:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "random:"))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("spec: bad seed %q", spec)
		}
		return stimgen.Random(d, n, 1, 2), nil
	default:
		return nil, fmt.Errorf("spec: bad seed %q (directed | random:<n> | none)", spec)
	}
}

// Artifact is the durable result of one completed job: the canonical mining
// artifact (the determinism contract's rendering, byte-identical to
// `goldmine -canonical`) plus a summary. It is what the WAL persists and what
// a restarted daemon re-serves without recomputation.
type Artifact struct {
	Design    string `json:"design"`
	Canonical string `json:"canonical"`
	Proved    int    `json:"proved"`
	Ctx       int    `json:"ctx"`
	Unknown   int    `json:"unknown"`
	Faults    int    `json:"faults"`
	Converged bool   `json:"converged"`
	// Interrupted marks a partial artifact: the job's deadline or the
	// tenant's remaining budget expired and the loop stopped cleanly.
	Interrupted bool    `json:"interrupted"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	// Cache telemetry of this job's run against the shared cross-run cache.
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	ChecksDeduped int64 `json:"checks_deduped"`
}

// makeArtifact condenses a mining result into its durable form.
func makeArtifact(res *core.Result) *Artifact {
	a := &Artifact{
		Design:      res.Design.Name,
		Canonical:   res.Canonical(),
		Converged:   res.Converged(),
		Interrupted: res.Interrupted,
		ElapsedMS:   float64(res.Elapsed.Microseconds()) / 1000,
	}
	for _, o := range res.Outputs {
		a.Proved += len(o.Proved)
		a.Ctx += len(o.Ctx)
		a.Unknown += len(o.Unknown)
		a.Faults += len(o.Errors)
	}
	if res.Sched != nil {
		a.CacheHits = res.Sched.CacheHits
		a.CacheMisses = res.Sched.CacheMisses
		a.ChecksDeduped = res.Sched.ChecksDeduped
	}
	return a
}

// runCore is the default job runner: resolve the spec, check an engine out of
// the pool (or build one wired to the shared verdict cache), mine, and return
// the engine for the next job of the same design+options.
func (s *Server) runCore(ctx context.Context, spec *JobSpec) (*Artifact, error) {
	r, err := resolve(spec, s.cfg.MaxJobWorkers)
	if err != nil {
		return nil, err
	}
	eng, err := s.pool.acquire(r.poolKey, func() (*core.Engine, error) {
		cfg := r.cfg
		cfg.Cache = s.cache
		// Server-wide portfolio width: racing changes wall-clock only (never
		// artifacts), so it is applied outside the spec and the pool key.
		cfg.MC.Portfolio = s.cfg.Portfolio
		e, err := core.NewEngine(r.design, cfg)
		if err != nil {
			return nil, err
		}
		if s.cfg.Tracer != nil {
			e.SetTelemetry(s.cfg.Tracer)
		}
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	// A pooled engine was built on an earlier job's elaboration of the same
	// design, so this job's target signals belong to a different (structurally
	// identical) rtl.Design instance. Remap them by name onto the engine's
	// design — mining against foreign signal pointers corrupts the run.
	targets := r.targets
	if eng.D != r.design {
		targets = make([]core.Target, len(r.targets))
		for i, tg := range r.targets {
			sig := eng.D.Signal(tg.Output.Name)
			if sig == nil {
				return nil, fmt.Errorf("spec: pooled engine lacks signal %q", tg.Output.Name)
			}
			targets[i] = core.Target{Output: sig, Bit: tg.Bit}
		}
	}
	// A panic escaping MineTargets leaves the engine's internals in an
	// unknown state: let the panic pass to runJob's recover barrier and drop
	// the engine instead of repooling it.
	repool := false
	defer func() {
		if repool {
			s.pool.release(r.poolKey, eng)
		}
	}()
	res, err := eng.MineTargets(ctx, targets, r.seed)
	repool = true
	if err != nil {
		return nil, err
	}
	// Ingest into the cross-run corpus while the live result still has the
	// assertion objects — makeArtifact condenses them to the canonical
	// string. The tenant labels the run's provenance.
	s.corpus.IngestResult(spec.Tenant, res)
	return makeArtifact(res), nil
}
