package serve

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"goldmine/internal/mc"
)

// checkNoLeaks runs fn and asserts the goroutine count settles back to its
// starting point. Settling is polled: timers and netpoll strays need a few
// scheduler rounds to unwind.
func checkNoLeaks(t *testing.T, fn func()) {
	t.Helper()
	runtime.GC()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNoGoroutineLeakAfterDrain: a full lifecycle — submit, run, drain —
// leaves no worker, timer, or waiter goroutines behind.
func TestNoGoroutineLeakAfterDrain(t *testing.T) {
	checkNoLeaks(t, func() {
		s := mustServer(t, testConfig(okRunner))
		for i := 0; i < 8; i++ {
			if _, err := s.Submit(spec(fmt.Sprintf("t%d", i%2))); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		shutdown(t, s)
	})
}

// TestNoGoroutineLeakAfterCancel: canceled jobs (queued and running) release
// their workers and wake their waiters.
func TestNoGoroutineLeakAfterCancel(t *testing.T) {
	checkNoLeaks(t, func() {
		started := make(chan struct{}, 4)
		blocking := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		cfg := testConfig(blocking)
		cfg.Workers = 1
		s := mustServer(t, cfg)
		running, _ := s.Submit(spec("t1"))
		queued, _ := s.Submit(spec("t1"))
		<-started
		for _, id := range []string{queued.ID, running.ID} {
			if _, err := s.Cancel(id); err != nil {
				t.Fatalf("cancel %s: %v", id, err)
			}
			if _, err := s.WaitJob(context.Background(), id); err != nil {
				t.Fatalf("wait %s: %v", id, err)
			}
		}
		shutdown(t, s)
	})
}

// TestNoGoroutineLeakAfterPanicRecovery: a worker that hosted a panicking
// job keeps serving and everything still unwinds at drain.
func TestNoGoroutineLeakAfterPanicRecovery(t *testing.T) {
	checkNoLeaks(t, func() {
		var first = make(chan struct{}, 1)
		bomb := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
			select {
			case first <- struct{}{}:
				panic("injected")
			default:
			}
			return &Artifact{Design: spec.Design}, nil
		}
		s := mustServer(t, testConfig(bomb))
		j, _ := s.Submit(spec("t1"))
		got, err := s.WaitJob(context.Background(), j.ID)
		if err != nil || got.State != JobDone {
			t.Fatalf("job after panic = %+v, %v", got, err)
		}
		shutdown(t, s)
	})
}

// TestNoGoroutineLeakAfterRetryQuarantine: backoff timers from the retry
// machinery are all stopped or fired by the end of the lifecycle.
func TestNoGoroutineLeakAfterRetryQuarantine(t *testing.T) {
	checkNoLeaks(t, func() {
		poison := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
			return nil, fmt.Errorf("%w: always", mc.ErrEngineInternal)
		}
		s := mustServer(t, testConfig(poison))
		j, _ := s.Submit(spec("t1"))
		if got, _ := s.WaitJob(context.Background(), j.ID); got.State != JobQuarantined {
			t.Fatalf("state = %s, want quarantined", got.State)
		}
		shutdown(t, s)
	})
}

// TestNoGoroutineLeakAfterKill: the crash-simulation path also unwinds every
// goroutine (the process outlives the "crash" in-test).
func TestNoGoroutineLeakAfterKill(t *testing.T) {
	checkNoLeaks(t, func() {
		blocking := func(ctx context.Context, spec *JobSpec) (*Artifact, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		s := mustServer(t, testConfig(blocking))
		for i := 0; i < 4; i++ {
			if _, err := s.Submit(spec("t1")); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		s.Kill()
	})
}
