package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldmine/internal/corpus"
	"goldmine/internal/mc"
	"goldmine/internal/sched"
	"goldmine/internal/telemetry"
)

// JobState is the lifecycle of one job.
type JobState string

const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobDone        JobState = "done"
	JobFailed      JobState = "failed" // terminal non-retryable error (bad spec, budget)
	JobQuarantined JobState = "quarantined"
	JobCanceled    JobState = "canceled"
)

// terminal reports whether a state ends the job's lifecycle.
func (s JobState) terminal() bool {
	switch s {
	case JobDone, JobFailed, JobQuarantined, JobCanceled:
		return true
	}
	return false
}

// Job is one tracked mining job. Fields are guarded by the server mutex;
// handlers read consistent snapshots via view().
type Job struct {
	ID       string
	Spec     JobSpec
	State    JobState
	Attempts int
	Err      string
	Artifact *Artifact
	// Recovered marks an artifact served from the WAL after a restart
	// instead of being recomputed.
	Recovered bool
	// Checkpointed marks a job parked by a drain: it resumes on the next
	// daemon start.
	Checkpointed bool
	Submitted    time.Time

	// canceled is a pointer so Job snapshots returned by the query API are
	// plain copyable values (atomic.Bool embeds a no-copy sentinel).
	canceled  *atomic.Bool
	cancelRun context.CancelFunc // set while running
	done      chan struct{}      // closed on terminal state
}

// Runner executes one job attempt. The default is Server.runCore; tests and
// the load harness substitute flaky runners to exercise the retry,
// quarantine, and recovery machinery without hostile RTL.
type Runner func(ctx context.Context, spec *JobSpec) (*Artifact, error)

// Config tunes a Server. The zero value of every field gets a sensible
// default from New.
type Config struct {
	// Workers is the number of job-executing goroutines.
	Workers int
	// QueueDepth bounds the number of admitted-but-unfinished jobs; beyond
	// it submissions are rejected with ErrQueueFull.
	QueueDepth int
	// TenantMaxActive caps one tenant's queued+running jobs (fairness).
	TenantMaxActive int
	// TenantBudget is each tenant's total mining wall-clock allowance
	// (0 = unlimited). A job's deadline is capped at the tenant's remainder.
	TenantBudget time.Duration
	// JobTimeout is the default per-job wall-clock bound (0 = none);
	// JobSpec.TimeoutMS overrides it per job.
	JobTimeout time.Duration
	// MaxAttempts is the attempt cap before a job that keeps dying to
	// engine-internal faults is quarantined.
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential backoff between attempts.
	RetryBase, RetryMax time.Duration
	// DrainTimeout bounds how long Shutdown waits for in-flight jobs before
	// checkpointing them.
	DrainTimeout time.Duration
	// CacheShards/CacheCapacity size the process-wide cross-run verdict
	// cache shared by every engine.
	CacheShards, CacheCapacity int
	// MaxJobWorkers caps the per-job intra-mining parallelism a spec may
	// request.
	MaxJobWorkers int
	// Portfolio is the racing SAT portfolio width applied to every job's
	// engine (0 or 1 disables racing). Server-wide rather than per-spec
	// because artifacts are identical either way — the knob only trades CPU
	// for latency on hard checks, a capacity decision that belongs to the
	// operator, and keeping it out of JobSpec keeps it out of artifact
	// provenance. Pooled engines remain interchangeable: the fingerprint
	// excludes it.
	Portfolio int
	// PoolPerKey is how many idle engines are retained per design+options.
	PoolPerKey int
	// WALPath is the durable job journal; empty runs without durability
	// (tests, ephemeral services).
	WALPath string
	// CorpusPath persists the cross-run assertion corpus as a JSONL journal
	// (see internal/corpus): every proven assertion mined by any job is
	// deduplicated on its canonical key and appended, and a restarted
	// daemon reloads the corpus before serving. Empty keeps the corpus
	// in-memory only.
	CorpusPath string
	// Tracer receives serve.* spans/events and engine telemetry (optional).
	Tracer *telemetry.Tracer
	// Runner overrides the job executor (nil = the real mining runner).
	Runner Runner
}

func (c *Config) setDefaults() {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.CacheShards < 1 {
		c.CacheShards = 16
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 1 << 20
	}
	if c.MaxJobWorkers < 1 {
		c.MaxJobWorkers = runtime.GOMAXPROCS(0)
	}
	if c.PoolPerKey < 1 {
		c.PoolPerKey = c.Workers
	}
	if c.Portfolio < 0 {
		c.Portfolio = 0
	}
}

// jobQueue is the bounded FIFO between admission and the worker fleet. It is
// a slice under a cond rather than a channel so internal re-enqueues (WAL
// replay, retries) can exceed the admission bound without deadlock — the
// bound applies to client submissions, enforced by the server.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *jobQueue) push(j *Job) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, j)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks for the next job; ok=false means the queue is closed (drain or
// kill) — remaining items are deliberately abandoned, their WAL state makes
// them resume on the next start.
func (q *jobQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j, true
}

func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Server is the daemon core. Create with New, serve HTTP via Handler, stop
// with Shutdown (graceful) or Kill (crash simulation for recovery tests).
type Server struct {
	cfg     Config
	cache   *sched.VerdictCache
	pool    *enginePool
	tenants *tenants
	wal     *wal
	q       *jobQueue
	run     Runner
	// corpus accumulates every proven assertion mined by this daemon's
	// jobs (deduplicated across runs); corpusStore is its append-mode
	// persistence when CorpusPath is configured, nil otherwise.
	corpus      *corpus.Corpus
	corpusStore *corpus.Store

	// baseCtx parents every job context; baseCancel fires on drain timeout
	// or Kill and checkpoints everything still running.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int

	draining atomic.Bool
	killed   atomic.Bool
	live     atomic.Int32 // live workers
	active   atomic.Int32 // jobs currently executing
	wg       sync.WaitGroup

	timersMu sync.Mutex
	timers   map[*time.Timer]struct{}

	rngMu sync.Mutex
	rng   *rand.Rand

	startedAt time.Time
	// replay/lifetime counters for /statsz and the bench harness.
	submitted, completed, failed, retried, quarantined atomic.Int64
	recoveredDone, resumedPending                      atomic.Int64
}

// New builds a server, replays the WAL (when configured), starts the worker
// fleet, and re-enqueues every pending job in original submit order.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     sched.NewVerdictCacheSized(cfg.CacheShards, cfg.CacheCapacity),
		pool:      newEnginePool(cfg.PoolPerKey),
		tenants:   newTenants(cfg.TenantBudget, cfg.TenantMaxActive),
		q:         newJobQueue(),
		jobs:      map[string]*Job{},
		timers:    map[*time.Timer]struct{}{},
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
		startedAt: time.Now(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.run = cfg.Runner
	if s.run == nil {
		s.run = s.runCore
	}

	if cfg.CorpusPath != "" {
		crp, store, err := corpus.OpenStore(cfg.CorpusPath)
		if err != nil {
			return nil, err
		}
		s.corpus = crp
		s.corpusStore = store
	} else {
		s.corpus = corpus.New()
	}

	if cfg.WALPath != "" {
		w, replayed, err := openWAL(cfg.WALPath)
		if err != nil {
			return nil, err
		}
		s.wal = w
		for _, wj := range replayed {
			s.adopt(wj)
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		s.live.Add(1)
		go s.worker()
	}
	return s, nil
}

// adopt folds one replayed WAL job into the live state: terminal jobs are
// re-served from their recorded outcome, pending ones resume.
func (s *Server) adopt(wj *walJob) {
	j := &Job{
		ID:        wj.ID,
		Spec:      wj.Spec,
		State:     wj.State,
		Attempts:  wj.Attempts,
		Err:       wj.Err,
		Artifact:  wj.Artifact,
		Submitted: time.Now(),
		canceled:  new(atomic.Bool),
		done:      make(chan struct{}),
	}
	if n, err := strconv.Atoi(strings.TrimPrefix(wj.ID, "j")); err == nil && n >= s.nextID {
		s.nextID = n + 1
	}
	charged := time.Duration(wj.ChargedMS * float64(time.Millisecond))
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if j.State.terminal() {
		close(j.done)
		s.tenants.charge(j.Spec.Tenant, charged)
		if j.State == JobDone {
			j.Recovered = true
			s.recoveredDone.Add(1)
		}
		return
	}
	// Pending (queued, running-at-kill, failed-awaiting-retry, or
	// checkpointed): resume from the front of the line. The attempt count
	// survives, so a job that was one failure from quarantine still is.
	j.State = JobQueued
	s.tenants.charge(j.Spec.Tenant, charged)
	s.tenants.readmit(j.Spec.Tenant)
	s.resumedPending.Add(1)
	s.q.push(j)
}

// Submit validates and admits one job: WAL first, then the queue, so a job
// whose ID a client ever observes is durable. The typed errors (ErrDraining,
// ErrQueueFull, ErrTenantQueueFull, ErrBudgetExhausted) describe every
// rejection.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Global admission bound: everything admitted but not yet terminal. The
	// count, the tenant reservation, and the insert happen under one lock so
	// concurrent submissions cannot overshoot the bound.
	s.mu.Lock()
	pending := 0
	for _, j := range s.jobs {
		if !j.State.terminal() {
			pending++
		}
	}
	if pending >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	if err := s.tenants.admit(spec.Tenant); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	j := &Job{
		ID: id, Spec: spec, State: JobQueued,
		Submitted: time.Now(),
		canceled:  new(atomic.Bool),
		done:      make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	// The submit record is appended under the same lock that allocated the
	// ID, so WAL order matches admission order and replay resumes pending
	// jobs in their original submit order.
	s.walErr(s.wal.append(walSubmit, &spec, telemetry.String("id", id)))
	s.mu.Unlock()
	s.submitted.Add(1)
	s.cfg.Tracer.Event("serve.submit",
		telemetry.String("id", id), telemetry.String("tenant", spec.Tenant))
	s.q.push(j)
	return j, nil
}

// walErr surfaces WAL append failures to telemetry without failing the job —
// a sick disk degrades durability, not service.
func (s *Server) walErr(err error) {
	if err != nil {
		s.cfg.Tracer.Event("serve.wal_error", telemetry.String("error", err.Error()))
	}
}

func (s *Server) worker() {
	defer func() {
		s.live.Add(-1)
		s.wg.Done()
	}()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// attemptOutcome classifies one attempt for the retry machinery.
type attemptOutcome int

const (
	attemptDone attemptOutcome = iota
	attemptCheckpoint
	attemptRetryable
	attemptFatal
)

// safeRun invokes the runner behind a recover barrier: a panic that escapes
// every engine-level barrier becomes a retryable ErrEngineInternal instead of
// taking the worker (and every queued job behind it) down.
func (s *Server) safeRun(ctx context.Context, spec *JobSpec) (art *Artifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			art = nil
			err = fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, r)
		}
	}()
	return s.run(ctx, spec)
}

func (s *Server) runJob(j *Job) {
	// The canceled/terminal check and the queued→running transition are one
	// critical section: a concurrent Cancel either settles the job before we
	// look (we bail here) or observes JobRunning and cancels the run context.
	// Checking outside the lock would let Cancel finish the job in the gap
	// and this worker resurrect a terminal job (and double-close j.done).
	s.mu.Lock()
	if j.State.terminal() {
		s.mu.Unlock()
		return
	}
	if j.canceled.Load() {
		s.mu.Unlock()
		s.finish(j, JobCanceled, "", nil, 0)
		return
	}
	j.Attempts++
	attempt := j.Attempts
	j.State = JobRunning
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancelRun = cancel
	s.mu.Unlock()
	defer cancel()
	s.active.Add(1)
	defer s.active.Add(-1)
	s.walErr(s.wal.append(walStart, nil,
		telemetry.String("id", j.ID), telemetry.Int("attempt", int64(attempt))))

	// Deadline: the job's own timeout capped by the tenant's remaining
	// budget — the PR 1 context plumbing turns either into a clean partial
	// artifact instead of lost work.
	timeout := s.cfg.JobTimeout
	if j.Spec.TimeoutMS > 0 {
		timeout = time.Duration(j.Spec.TimeoutMS) * time.Millisecond
	}
	budgetCapped := false
	if rem, limited := s.tenants.remaining(j.Spec.Tenant); limited {
		if rem <= 0 {
			// Terminal states must survive restarts: without a reject record
			// the replay would re-queue a job the client saw fail.
			s.walErr(s.wal.append(walReject, nil,
				telemetry.String("id", j.ID),
				telemetry.String("error", ErrBudgetExhausted.Error())))
			s.finish(j, JobFailed, ErrBudgetExhausted.Error(), nil, 0)
			return
		}
		if timeout <= 0 || rem < timeout {
			timeout = rem
			budgetCapped = true
		}
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	_, sp := s.cfg.Tracer.StartSpan(s.baseCtx, "serve.job",
		telemetry.String("id", j.ID), telemetry.Int("attempt", int64(attempt)))
	start := time.Now()
	art, err := s.safeRun(ctx, &j.Spec)
	elapsed := time.Since(start)
	sp.End(telemetry.Bool("ok", err == nil))

	outcome := attemptDone
	msg := ""
	switch {
	case j.canceled.Load():
		outcome = attemptFatal // settled below as canceled
	case err == nil && art != nil && art.Interrupted && s.stopping():
		// The drain (or kill) cancellation cut this attempt short: the
		// partial artifact is discarded and the job resumes after restart.
		outcome = attemptCheckpoint
	case err == nil && art != nil:
		if art.Interrupted && budgetCapped {
			// Budget expiry mid-job: keep the partial artifact, note why.
			msg = ErrBudgetExhausted.Error()
		}
		outcome = attemptDone
	case err == nil:
		outcome = attemptFatal
		msg = "serve: runner returned neither artifact nor error"
	case s.stopping() && (errors.Is(err, context.Canceled) || errors.Is(err, mc.ErrCanceled)):
		// A runner that surfaces the drain cancellation as an error instead
		// of a partial artifact still checkpoints rather than failing.
		outcome = attemptCheckpoint
	case errors.Is(err, mc.ErrEngineInternal):
		outcome = attemptRetryable
		msg = err.Error()
	default:
		outcome = attemptFatal
		msg = err.Error()
	}

	switch outcome {
	case attemptDone:
		s.walErr(s.wal.append(walDone, art,
			telemetry.String("id", j.ID),
			telemetry.Int("attempt", int64(attempt)),
			telemetry.Int("elapsed_us", elapsed.Microseconds()),
			telemetry.Bool("interrupted", art.Interrupted)))
		s.finish(j, JobDone, msg, art, elapsed)
	case attemptCheckpoint:
		s.walErr(s.wal.append(walCheckpoint, nil,
			telemetry.String("id", j.ID),
			telemetry.Int("elapsed_us", elapsed.Microseconds())))
		s.mu.Lock()
		j.State = JobQueued
		j.Checkpointed = true
		// The checkpoint was a drain artifact, not a failure of the job:
		// the attempt does not count against the quarantine cap.
		j.Attempts--
		j.cancelRun = nil
		s.mu.Unlock()
		s.tenants.settle(j.Spec.Tenant, elapsed)
	case attemptFatal:
		state := JobFailed
		if j.canceled.Load() {
			state = JobCanceled
			s.walErr(s.wal.append(walCancel, nil, telemetry.String("id", j.ID)))
		} else {
			s.walErr(s.wal.append(walReject, nil,
				telemetry.String("id", j.ID),
				telemetry.String("error", msg),
				telemetry.Int("elapsed_us", elapsed.Microseconds())))
		}
		s.finish(j, state, msg, nil, elapsed)
	case attemptRetryable:
		s.walErr(s.wal.append(walFail, nil,
			telemetry.String("id", j.ID),
			telemetry.Int("attempt", int64(attempt)),
			telemetry.String("error", msg),
			telemetry.Int("elapsed_us", elapsed.Microseconds())))
		if attempt >= s.cfg.MaxAttempts {
			s.walErr(s.wal.append(walQuarantine, nil,
				telemetry.String("id", j.ID), telemetry.String("error", msg)))
			s.quarantined.Add(1)
			s.cfg.Tracer.Event("serve.quarantine", telemetry.String("id", j.ID))
			s.finish(j, JobQuarantined, msg, nil, elapsed)
			return
		}
		s.tenants.settle(j.Spec.Tenant, elapsed)
		s.tenants.readmit(j.Spec.Tenant)
		s.scheduleRetry(j, attempt, msg)
	}
}

// finish drives a job to a terminal state and releases its tenant slot.
func (s *Server) finish(j *Job, state JobState, msg string, art *Artifact, elapsed time.Duration) {
	s.mu.Lock()
	if j.State.terminal() {
		s.mu.Unlock()
		return
	}
	j.State = state
	j.Err = msg
	if art != nil {
		j.Artifact = art
	}
	j.cancelRun = nil
	s.mu.Unlock()
	close(j.done)
	s.tenants.settle(j.Spec.Tenant, elapsed)
	switch state {
	case JobDone:
		s.completed.Add(1)
	case JobFailed, JobQuarantined:
		s.failed.Add(1)
	}
}

// scheduleRetry re-enqueues a job after exponential backoff with jitter
// (full-jitter in [delay/2, delay]). During a drain the push is a no-op and
// the WAL fail record carries the job into the next daemon run instead.
func (s *Server) scheduleRetry(j *Job, attempt int, msg string) {
	delay := s.cfg.RetryBase << (attempt - 1)
	if delay > s.cfg.RetryMax || delay <= 0 {
		delay = s.cfg.RetryMax
	}
	s.rngMu.Lock()
	delay = delay/2 + time.Duration(s.rng.Int63n(int64(delay/2)+1))
	s.rngMu.Unlock()
	s.mu.Lock()
	j.State = JobQueued
	j.Err = msg
	j.cancelRun = nil
	s.mu.Unlock()
	s.retried.Add(1)
	s.cfg.Tracer.Event("serve.retry",
		telemetry.String("id", j.ID),
		telemetry.Int("attempt", int64(attempt)),
		telemetry.Int("delay_us", delay.Microseconds()))
	var t *time.Timer
	t = time.AfterFunc(delay, func() {
		s.timersMu.Lock()
		delete(s.timers, t)
		s.timersMu.Unlock()
		if s.stopping() || s.draining.Load() {
			return
		}
		s.q.push(j)
	})
	s.timersMu.Lock()
	s.timers[t] = struct{}{}
	s.timersMu.Unlock()
}

func (s *Server) stopping() bool {
	return s.baseCtx.Err() != nil
}

// Job returns a job snapshot by ID.
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *snapshot(j), true
}

// snapshot copies the mutex-guarded fields; callers hold s.mu.
func snapshot(j *Job) *Job {
	return &Job{
		ID: j.ID, Spec: j.Spec, State: j.State, Attempts: j.Attempts,
		Err: j.Err, Artifact: j.Artifact, Recovered: j.Recovered,
		Checkpointed: j.Checkpointed, Submitted: j.Submitted,
	}
}

// Jobs lists job snapshots in submit order, optionally filtered by tenant.
func (s *Server) Jobs(tenant string) []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant != "" && j.Spec.Tenant != tenant {
			continue
		}
		out = append(out, *snapshot(j))
	}
	return out
}

// WaitJob blocks until the job reaches a terminal state (or ctx dies) and
// returns its final snapshot. A checkpointed job never terminates within this
// process; callers see ctx.Err.
func (s *Server) WaitJob(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("serve: no job %s", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return *snapshot(j), nil
}

// Cancel cancels a queued or running job. Canceling a terminal job is a
// no-op reporting false.
func (s *Server) Cancel(id string) (bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("serve: no job %s", id)
	}
	if j.State.terminal() {
		s.mu.Unlock()
		return false, nil
	}
	j.canceled.Store(true)
	cancel := j.cancelRun
	running := j.State == JobRunning
	s.mu.Unlock()
	if running {
		// The worker observes the cancellation and settles the job.
		if cancel != nil {
			cancel()
		}
		return true, nil
	}
	// Queued (or awaiting retry): settle immediately; a later pop skips it.
	s.walErr(s.wal.append(walCancel, nil, telemetry.String("id", id)))
	s.finish(j, JobCanceled, "canceled", nil, 0)
	return true, nil
}

// Stats is the /statsz payload: one coherent robustness dashboard.
type Stats struct {
	Uptime         float64          `json:"uptime_s"`
	Draining       bool             `json:"draining"`
	WorkersLive    int              `json:"workers_live"`
	Workers        int              `json:"workers"`
	QueueDepth     int              `json:"queue_depth"`
	QueueBound     int              `json:"queue_bound"`
	ActiveJobs     int              `json:"active_jobs"`
	JobsByState    map[JobState]int `json:"jobs_by_state"`
	Submitted      int64            `json:"submitted"`
	Completed      int64            `json:"completed"`
	Failed         int64            `json:"failed"`
	Retried        int64            `json:"retried"`
	Quarantined    int64            `json:"quarantined"`
	RecoveredDone  int64            `json:"recovered_done"`
	ResumedPending int64            `json:"resumed_pending"`
	WALAppends     int64            `json:"wal_appends"`
	Corpus         corpus.Stats     `json:"corpus"`
	// CorpusDropped/CorpusPersistErr surface append-store durability loss:
	// entries that never reached the -corpus journal (e.g. disk full) and
	// the first error. The in-memory corpus keeps serving; a nonzero count
	// means a restart will forget those entries.
	CorpusDropped    int64  `json:"corpus_dropped,omitempty"`
	CorpusPersistErr string `json:"corpus_persist_err,omitempty"`
	Cache          sched.CacheStats `json:"cache"`
	CacheHitRate   float64          `json:"cache_hit_rate"`
	CacheLen       int              `json:"cache_len"`
	Pool           PoolStats        `json:"pool"`
	Tenants        []TenantStats    `json:"tenants"`
	// Solver surfaces the SAT search and portfolio counters from the wired
	// tracer's registry (sat.solves, sat.conflicts, sat.clause_share.*,
	// mc.portfolio_* ...). Empty when the server runs without a Tracer.
	Solver map[string]int64 `json:"solver,omitempty"`
}

// Stats snapshots the server's health counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Uptime:         time.Since(s.startedAt).Seconds(),
		Draining:       s.draining.Load(),
		WorkersLive:    int(s.live.Load()),
		Workers:        s.cfg.Workers,
		QueueDepth:     s.q.len(),
		QueueBound:     s.cfg.QueueDepth,
		ActiveJobs:     int(s.active.Load()),
		JobsByState:    map[JobState]int{},
		Submitted:      s.submitted.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		Retried:        s.retried.Load(),
		Quarantined:    s.quarantined.Load(),
		RecoveredDone:  s.recoveredDone.Load(),
		ResumedPending: s.resumedPending.Load(),
		Corpus:         s.corpus.Stats(),
		Cache:          s.cache.Stats(),
		CacheLen:       s.cache.Len(),
		Pool:           s.pool.stats(),
		Tenants:        s.tenants.stats(),
	}
	if s.wal != nil {
		st.WALAppends = s.wal.appends.Load()
	}
	st.CorpusDropped = s.corpusStore.Dropped()
	if err := s.corpusStore.Err(); err != nil {
		st.CorpusPersistErr = err.Error()
	}
	st.CacheHitRate = st.Cache.HitRate()
	if s.cfg.Tracer != nil {
		snap := s.cfg.Tracer.Registry().Snapshot()
		st.Solver = make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, "sat.") || strings.HasPrefix(name, "mc.") {
				st.Solver[name] = v
			}
		}
		for name, v := range snap.Gauges {
			if strings.HasPrefix(name, "sat.") || strings.HasPrefix(name, "mc.") {
				st.Solver[name] = v
			}
		}
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		st.JobsByState[j.State]++
	}
	s.mu.Unlock()
	return st
}

// Cache exposes the process-wide verdict cache (bench/statsz introspection).
func (s *Server) Cache() *sched.VerdictCache { return s.cache }

// Corpus exposes the daemon's cross-run assertion corpus: every proven
// assertion mined by a completed job, deduplicated on canonical keys, and —
// when CorpusPath is configured — persisted across restarts.
func (s *Server) Corpus() *corpus.Corpus { return s.corpus }

// Ready reports whether the server should receive traffic, with a reason
// when not.
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if live := int(s.live.Load()); live < s.cfg.Workers {
		return false, fmt.Sprintf("only %d/%d workers live", live, s.cfg.Workers)
	}
	s.mu.Lock()
	pending := 0
	for _, j := range s.jobs {
		if !j.State.terminal() {
			pending++
		}
	}
	s.mu.Unlock()
	if pending >= s.cfg.QueueDepth {
		return false, "queue full"
	}
	return true, ""
}

// stopTimers cancels every pending retry timer; the affected jobs' WAL state
// (submit + fail, no terminal record) re-queues them on the next start.
func (s *Server) stopTimers() {
	s.timersMu.Lock()
	defer s.timersMu.Unlock()
	for t := range s.timers {
		t.Stop()
		delete(s.timers, t)
	}
}

// Shutdown drains gracefully: stop admitting, let in-flight jobs finish
// within the drain timeout (then cancel them — they checkpoint and resume on
// the next start), stop retry timers, flush and close the WAL. It returns
// nil on a clean drain so the daemon can exit 0; ctx bounds the whole wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cfg.Tracer.Event("serve.drain")
	s.stopTimers()
	s.q.close()
	deadline := time.AfterFunc(s.cfg.DrainTimeout, s.baseCancel)
	defer deadline.Stop()
	stop := context.AfterFunc(ctx, s.baseCancel)
	defer stop()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	s.walErr(s.wal.append(walDrain, nil))
	err := s.wal.close()
	if cerr := s.corpusStore.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return ctx.Err()
}

// Kill simulates SIGKILL for in-process recovery tests: no drain, no WAL
// flushes beyond what already hit the file, workers abandoned mid-job. The
// WAL file is exactly what a real SIGKILL would leave behind. Kill waits for
// worker goroutines to unwind (the process outlives the "crash") but writes
// nothing more.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.draining.Store(true)
	s.wal.disable()
	s.stopTimers()
	s.baseCancel()
	s.q.close()
	s.wg.Wait()
	_ = s.wal.close()
}
