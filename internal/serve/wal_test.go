package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldmine/internal/telemetry"
)

func openTestWAL(t *testing.T, path string) (*wal, []*walJob) {
	t.Helper()
	w, jobs, err := openWAL(path)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	return w, jobs
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, jobs := openTestWAL(t, path)
	if len(jobs) != 0 {
		t.Fatalf("fresh WAL replayed %d jobs", len(jobs))
	}
	spec := JobSpec{Tenant: "t1", Design: "arbiter2"}
	art := &Artifact{Design: "arbiter2", Canonical: "canon\n", Proved: 3}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.append(walSubmit, &spec, telemetry.String("id", "j000000")))
	must(w.append(walStart, nil, telemetry.String("id", "j000000"), telemetry.Int("attempt", 1)))
	must(w.append(walDone, art, telemetry.String("id", "j000000"),
		telemetry.Int("attempt", 1), telemetry.Int("elapsed_us", 1500)))

	must(w.append(walSubmit, &JobSpec{Tenant: "t2", Design: "decode"}, telemetry.String("id", "j000001")))
	must(w.append(walStart, nil, telemetry.String("id", "j000001"), telemetry.Int("attempt", 1)))
	must(w.append(walFail, nil, telemetry.String("id", "j000001"),
		telemetry.Int("attempt", 1), telemetry.String("error", "boom"),
		telemetry.Int("elapsed_us", 2000)))

	must(w.append(walSubmit, &JobSpec{Tenant: "t3", Design: "fetch"}, telemetry.String("id", "j000002")))
	must(w.append(walCancel, nil, telemetry.String("id", "j000002")))
	must(w.close())

	_, jobs = openTestWAL(t, path)
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	j0, j1, j2 := jobs[0], jobs[1], jobs[2]
	if j0.State != JobDone || j0.Artifact == nil || j0.Artifact.Canonical != "canon\n" {
		t.Fatalf("j0 = %+v, want done with artifact", j0)
	}
	if j0.ChargedMS != 1.5 {
		t.Fatalf("j0 charged = %v ms, want 1.5", j0.ChargedMS)
	}
	if j1.State != JobQueued || j1.Attempts != 1 || j1.Err != "boom" {
		t.Fatalf("j1 = %+v, want queued retry with attempt 1", j1)
	}
	if j2.State != JobCanceled {
		t.Fatalf("j2 state = %s, want canceled", j2.State)
	}
	if j0.Spec.Tenant != "t1" || j1.Spec.Design != "decode" {
		t.Fatal("specs did not survive the round trip")
	}
}

// TestWALTornFinalLine: a SIGKILL can tear the record being written; replay
// ignores exactly that final partial line.
func TestWALTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, _ := openTestWAL(t, path)
	if err := w.append(walSubmit, &JobSpec{Tenant: "t", Design: "d"}, telemetry.String("id", "j000000")); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ts_us":123,"kind":"job","name":"done","att`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, jobs := openTestWAL(t, path)
	if len(jobs) != 1 || jobs[0].State != JobQueued {
		t.Fatalf("replay after torn line = %+v, want the 1 queued job", jobs)
	}
}

// TestWALMidFileCorruption: a bad line with valid records after it is real
// corruption, not a torn tail — the open must fail loudly.
func TestWALMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	content := `{"ts_us":1,"kind":"job","name":"submit","attrs":{"id":"j000000"},"data":{"tenant":"t","design":"d"}}
this is not json
{"ts_us":3,"kind":"job","name":"start","attrs":{"id":"j000000","attempt":1}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("openWAL err = %v, want mid-file corruption error", err)
	}
}

// TestWALDrainMarkerMidFile: the id-less drain trailer Shutdown appends must
// not poison replay — a daemon that drains, restarts, does more work, and
// restarts again leaves drain markers mid-file, and every open must succeed.
func TestWALDrainMarkerMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, _ := openTestWAL(t, path)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.append(walSubmit, &JobSpec{Tenant: "t", Design: "d"}, telemetry.String("id", "j000000")))
	must(w.append(walDrain, nil)) // first graceful shutdown
	must(w.close())

	// Restart: replay succeeds past the trailer, daemon appends more work.
	w2, jobs := openTestWAL(t, path)
	if len(jobs) != 1 {
		t.Fatalf("replay after drain = %d jobs, want 1", len(jobs))
	}
	must(w2.append(walSubmit, &JobSpec{Tenant: "t", Design: "d2"}, telemetry.String("id", "j000001")))
	must(w2.append(walDrain, nil)) // second graceful shutdown
	must(w2.close())

	// Second restart: the first drain marker now sits mid-file.
	_, jobs = openTestWAL(t, path)
	if len(jobs) != 2 {
		t.Fatalf("replay with mid-file drain = %d jobs, want 2", len(jobs))
	}
}

// TestWALCorruptThenBlankTail: a malformed record followed only by blank
// lines is still mid-file corruption — bytes were written after the bad
// record, so it cannot have been a torn tail.
func TestWALCorruptThenBlankTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	content := `{"ts_us":1,"kind":"job","name":"submit","attrs":{"id":"j000000"},"data":{"tenant":"t","design":"d"}}
this is not json

`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("openWAL err = %v, want mid-file corruption error", err)
	}
}

// TestWALForeignRecordsIgnored: telemetry events sharing the file (other
// kinds) are skipped, so a combined journal still replays.
func TestWALForeignRecordsIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	content := `{"ts_us":1,"kind":"event","name":"serve.submit"}
{"ts_us":2,"kind":"job","name":"submit","attrs":{"id":"j000000"},"data":{"tenant":"t","design":"d"}}
{"ts_us":3,"kind":"close"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, jobs := openTestWAL(t, path)
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
}

// TestWALDisable: after disable (the simulated SIGKILL), appends are no-ops.
func TestWALDisable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, _ := openTestWAL(t, path)
	if err := w.append(walSubmit, &JobSpec{Tenant: "t", Design: "d"}, telemetry.String("id", "j000000")); err != nil {
		t.Fatal(err)
	}
	w.disable()
	if err := w.append(walDone, nil, telemetry.String("id", "j000000")); err != nil {
		t.Fatal(err)
	}
	_ = w.close()
	_, jobs := openTestWAL(t, path)
	if len(jobs) != 1 || jobs[0].State != JobQueued {
		t.Fatalf("post-disable replay = %+v, want 1 queued job (done suppressed)", jobs)
	}
}
