package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// apiError is the JSON error envelope. Code is machine-readable so clients
// can branch without parsing prose; RetryAfterMS mirrors the Retry-After
// header for transient rejections.
type apiError struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr maps the typed admission errors onto HTTP semantics: overload is
// 429 with Retry-After (back off and come back), drain is 503 (this instance
// is going away), bad specs are 400, budget exhaustion is 429 without
// Retry-After (waiting will not refill the budget; the code says why).
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			apiError{Error: err.Error(), Code: "queue_full", RetryAfterMS: 1000})
	case errors.Is(err, ErrTenantQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			apiError{Error: err.Error(), Code: "tenant_queue_full", RetryAfterMS: 1000})
	case errors.Is(err, ErrBudgetExhausted):
		writeJSON(w, http.StatusTooManyRequests,
			apiError{Error: err.Error(), Code: "budget_exhausted"})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable,
			apiError{Error: err.Error(), Code: "draining"})
	default:
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: err.Error(), Code: "bad_request"})
	}
}

// jobView is the wire form of a Job. The artifact is summarized (counts, not
// the canonical text) — the full artifact lives at /v1/jobs/{id}/artifact.
type jobView struct {
	ID           string    `json:"id"`
	Tenant       string    `json:"tenant"`
	State        JobState  `json:"state"`
	Attempts     int       `json:"attempts"`
	Err          string    `json:"error,omitempty"`
	Recovered    bool      `json:"recovered,omitempty"`
	Checkpointed bool      `json:"checkpointed,omitempty"`
	Artifact     *Artifact `json:"artifact,omitempty"`
}

func view(j *Job, withArtifact bool) jobView {
	v := jobView{
		ID: j.ID, Tenant: j.Spec.Tenant, State: j.State, Attempts: j.Attempts,
		Err: j.Err, Recovered: j.Recovered, Checkpointed: j.Checkpointed,
	}
	if withArtifact && j.Artifact != nil {
		a := *j.Artifact
		a.Canonical = "" // served by /artifact, kept out of the summary
		v.Artifact = &a
	}
	return v
}

// corpusEntryView is the wire form of one corpus entry on /v1/corpus.
type corpusEntryView struct {
	Design    string `json:"design"`
	Key       string `json:"key"`
	Output    string `json:"output"`
	Status    string `json:"status"`
	Method    string `json:"method,omitempty"`
	Seen      int    `json:"seen"`
	Assertion string `json:"assertion"`
}

// Handler returns the daemon's HTTP API on a fresh mux:
//
//	POST   /v1/jobs               submit a JobSpec       -> 202 jobView
//	GET    /v1/jobs[?tenant=t]    list jobs              -> 200 []jobView
//	GET    /v1/jobs/{id}          one job                -> 200 jobView
//	GET    /v1/jobs/{id}?wait=1   block until terminal   -> 200 jobView
//	GET    /v1/jobs/{id}/artifact canonical artifact     -> 200 text/plain
//	DELETE /v1/jobs/{id}          cancel                 -> 200 jobView
//	GET    /v1/corpus             corpus.Stats           -> 200 JSON
//	GET    /v1/corpus?design=d    entries mined on d     -> 200 JSON
//	GET    /healthz               process liveness       -> 200/503
//	GET    /readyz                traffic readiness      -> 200/503
//	GET    /statsz                Stats                  -> 200 JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest,
				apiError{Error: "bad JSON: " + err.Error(), Code: "bad_request"})
			return
		}
		j, err := s.Submit(spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		snap, _ := s.Job(j.ID)
		writeJSON(w, http.StatusAccepted, view(&snap, false))
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs(r.URL.Query().Get("tenant"))
		out := make([]jobView, 0, len(jobs))
		for i := range jobs {
			out = append(out, view(&jobs[i], true))
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if r.URL.Query().Get("wait") != "" {
			j, err := s.WaitJob(r.Context(), id)
			if err != nil {
				status := http.StatusNotFound
				if r.Context().Err() != nil {
					status = http.StatusRequestTimeout
				}
				writeJSON(w, status, apiError{Error: err.Error(), Code: "wait_failed"})
				return
			}
			writeJSON(w, http.StatusOK, view(&j, true))
			return
		}
		j, ok := s.Job(id)
		if !ok {
			writeJSON(w, http.StatusNotFound,
				apiError{Error: "no job " + id, Code: "not_found"})
			return
		}
		writeJSON(w, http.StatusOK, view(&j, true))
	})

	mux.HandleFunc("GET /v1/jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, ok := s.Job(id)
		if !ok {
			writeJSON(w, http.StatusNotFound,
				apiError{Error: "no job " + id, Code: "not_found"})
			return
		}
		if j.Artifact == nil {
			writeJSON(w, http.StatusConflict, apiError{
				Error: "job " + id + " has no artifact (state " + string(j.State) + ")",
				Code:  "no_artifact"})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if j.Recovered {
			w.Header().Set("X-Goldmine-Recovered", "1")
		}
		_, _ = w.Write([]byte(j.Artifact.Canonical))
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, err := s.Cancel(id); err != nil {
			writeJSON(w, http.StatusNotFound,
				apiError{Error: err.Error(), Code: "not_found"})
			return
		}
		j, _ := s.Job(id)
		writeJSON(w, http.StatusOK, view(&j, false))
	})

	mux.HandleFunc("GET /v1/corpus", func(w http.ResponseWriter, r *http.Request) {
		if design := r.URL.Query().Get("design"); design != "" {
			out := []corpusEntryView{}
			for _, e := range s.corpus.Entries() {
				if e.Design != design {
					continue
				}
				out = append(out, corpusEntryView{
					Design: e.Design, Key: e.Key, Output: e.A.Output,
					Status: e.Status, Method: e.Method, Seen: e.Seen,
					Assertion: e.A.String(),
				})
			}
			writeJSON(w, http.StatusOK, out)
			return
		}
		writeJSON(w, http.StatusOK, s.corpus.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.live.Load() == 0 {
			http.Error(w, "no live workers", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := s.Ready(); !ok {
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ready queue=" + strconv.Itoa(s.q.len()) + "\n"))
	})

	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	return mux
}
