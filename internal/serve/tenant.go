package serve

import (
	"errors"
	"sync"
	"time"
)

// Typed admission errors: the HTTP layer maps each to a status code and a
// machine-readable code field, and programmatic callers branch with
// errors.Is. They are the graceful-degradation contract — overload and
// exhaustion are answered, never absorbed.
var (
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("serve: draining, not admitting jobs")
	// ErrQueueFull: the bounded job queue is at capacity.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrTenantQueueFull: this tenant already has its maximum number of
	// queued or running jobs (per-tenant fairness cap).
	ErrTenantQueueFull = errors.New("serve: tenant queue limit reached")
	// ErrBudgetExhausted: the tenant's mining wall-clock budget is spent.
	ErrBudgetExhausted = errors.New("serve: tenant budget exhausted")
)

// tenantState is one tenant's accounting: mining wall clock consumed against
// the budget, plus the number of jobs currently queued or running.
type tenantState struct {
	used   time.Duration
	active int
}

// tenants tracks per-tenant budgets and fairness caps. All methods are safe
// for concurrent use.
type tenants struct {
	mu sync.Mutex
	m  map[string]*tenantState
	// budget is the per-tenant mining wall-clock allowance (0 = unlimited).
	budget time.Duration
	// maxActive caps one tenant's queued+running jobs (0 = unlimited).
	maxActive int
}

func newTenants(budget time.Duration, maxActive int) *tenants {
	return &tenants{m: map[string]*tenantState{}, budget: budget, maxActive: maxActive}
}

func (t *tenants) get(name string) *tenantState {
	ts := t.m[name]
	if ts == nil {
		ts = &tenantState{}
		t.m[name] = ts
	}
	return ts
}

// admit reserves a queue slot for one job of the tenant, or explains why not
// with a typed error. Budget exhaustion never blocks other tenants: the check
// is purely per-tenant state.
func (t *tenants) admit(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.get(name)
	if t.budget > 0 && ts.used >= t.budget {
		return ErrBudgetExhausted
	}
	if t.maxActive > 0 && ts.active >= t.maxActive {
		return ErrTenantQueueFull
	}
	ts.active++
	return nil
}

// readmit re-reserves a slot without the fairness cap — used when replaying
// pending jobs from the WAL (they were admitted before the restart) and when
// re-queueing a retry (the job never left the system).
func (t *tenants) readmit(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.get(name).active++
}

// settle releases the tenant's slot when a job reaches a terminal state (or
// is checkpointed by a drain) and charges the mining time it consumed.
func (t *tenants) settle(name string, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.get(name)
	if ts.active > 0 {
		ts.active--
	}
	ts.used += elapsed
}

// charge records consumption without releasing a slot (WAL replay of done
// records for jobs that are not re-admitted).
func (t *tenants) charge(name string, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.get(name).used += elapsed
}

// remaining returns the tenant's unspent budget; the second result is false
// when budgets are unlimited.
func (t *tenants) remaining(name string) (time.Duration, bool) {
	if t.budget <= 0 {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rem := t.budget - t.get(name).used
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// TenantStats is one tenant's /statsz row.
type TenantStats struct {
	Tenant      string  `json:"tenant"`
	Active      int     `json:"active"`
	UsedMS      float64 `json:"used_ms"`
	BudgetMS    float64 `json:"budget_ms,omitempty"`
	RemainingMS float64 `json:"remaining_ms,omitempty"`
}

func (t *tenants) stats() []TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TenantStats, 0, len(t.m))
	for name, ts := range t.m {
		row := TenantStats{
			Tenant: name,
			Active: ts.active,
			UsedMS: float64(ts.used.Microseconds()) / 1000,
		}
		if t.budget > 0 {
			row.BudgetMS = float64(t.budget.Microseconds()) / 1000
			rem := t.budget - ts.used
			if rem < 0 {
				rem = 0
			}
			row.RemainingMS = float64(rem.Microseconds()) / 1000
		}
		out = append(out, row)
	}
	return out
}
