package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer mints spans and point events, routing them to a Journal and keeping
// per-kind counters in a Registry. A nil *Tracer is the disabled state:
// every method no-ops and returns nil, so instrumented code never branches on
// "is telemetry on".
type Tracer struct {
	reg *Registry
	j   *Journal
	ids atomic.Uint64
	// known holds the duration histograms for the fixed span taxonomy,
	// resolved once at construction — a plain read-only map, so the common
	// Span.End pays a non-synchronized lookup. durs catches names outside
	// the taxonomy (lock-free after first use).
	known map[string]*Histogram
	durs  sync.Map // span name -> *Histogram
}

// knownSpanNames is the span taxonomy of DESIGN.md §4.4. Tracer construction
// pre-resolves their histograms so the End hot path avoids even the sync.Map
// read; a name outside this list still works, just marginally slower.
var knownSpanNames = []string{
	"mine.run", "mine.output", "mine.iteration", "mine.candidates",
	"mine.tree_update", "mine.ctx_feedback", "sim.run", "sched.cache_probe",
	"mc.check", "mc.explicit", "mc.bmc_frame", "mc.induction_step",
	"mc.ctx_canon", "sat.solve", "mc.reach", "mc.reach_frame",
	"mc.reach_induction", "directed.run", "directed.iteration",
	"directed.hole", "directed.wave",
}

// New creates a tracer over a registry and an optional journal. Either may be
// nil: a nil journal keeps metrics-only telemetry (spans still update
// duration histograms), a nil registry keeps journal-only telemetry.
func New(reg *Registry, j *Journal) *Tracer {
	t := &Tracer{reg: reg, j: j}
	if reg != nil {
		t.known = make(map[string]*Histogram, len(knownSpanNames))
		for _, n := range knownSpanNames {
			t.known[n] = reg.Histogram(n + ".us")
		}
	}
	return t
}

// Registry returns the tracer's metrics registry (nil-safe).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Journal returns the tracer's journal (nil-safe, may be nil).
func (t *Tracer) Journal() *Journal {
	if t == nil {
		return nil
	}
	return t.j
}

// Close flushes and closes the tracer's journal, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	return t.j.Close()
}

// Span is one timed phase of work. Spans form a tree via Parent IDs; ending a
// span emits exactly one KindSpan journal line and one observation in the
// "<name>.us" duration histogram. A nil *Span is inert.
//
// End recycles the Span through a pool (tracing-heavy designs end tens of
// thousands of spans per second), so the hard contract is: End at most once,
// and no Child/Annotate/ID calls after End. Every instrumented site in this
// repo is structurally exactly-once (error-path Ends return immediately;
// loop-exit Ends leave the loop).
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// spanPool recycles Span structs between End and the next newSpan.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// Event emits a point event (KindEvent) with no duration.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil || t.j == nil {
		return
	}
	t.j.Emit(Event{TS: time.Now(), Kind: KindEvent, Name: name, Attrs: attrs})
}

// Root starts a span with no parent.
func (t *Tracer) Root(name string, attrs ...Attr) *Span {
	return t.newSpan(0, name, attrs)
}

// StartSpan starts a span whose parent is the span carried by ctx (a root
// span when ctx carries none) and returns a context carrying the new span.
// The common instrumentation idiom:
//
//	ctx, sp := tracer.StartSpan(ctx, "mc.check")
//	defer sp.End()
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if p := FromContext(ctx); p != nil {
		parent = p.id
	}
	sp := t.newSpan(parent, name, attrs)
	return WithSpan(ctx, sp), sp
}

func (t *Tracer) newSpan(parent uint64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	sp := spanPool.Get().(*Span)
	*sp = Span{
		tr:     t,
		id:     t.ids.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	return sp
}

// Child starts a sub-span. Nil-safe: a child of a nil span is nil.
func (sp *Span) Child(name string, attrs ...Attr) *Span {
	if sp == nil {
		return nil
	}
	return sp.tr.newSpan(sp.id, name, attrs)
}

// ID returns the span's identifier (0 for a nil span).
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// Annotate appends attributes to be emitted when the span ends.
func (sp *Span) Annotate(attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, attrs...)
}

// End closes the span: one journal line, one histogram observation. Extra
// attributes are appended to those given at start. End on a nil span no-ops;
// End must be called at most once, and the span must not be used afterwards
// (it is recycled — see the Span contract above).
func (sp *Span) End(attrs ...Attr) {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	dur := time.Since(sp.start)
	if len(attrs) > 0 {
		sp.attrs = append(sp.attrs, attrs...)
	}
	tr := sp.tr
	if tr.j != nil {
		// The attrs slice rides along to the drain goroutine; ownership
		// transfers with the event, so the recycled Span drops it.
		tr.j.Emit(Event{
			TS:     sp.start,
			Kind:   KindSpan,
			Name:   sp.name,
			Span:   sp.id,
			Parent: sp.parent,
			Dur:    dur,
			Attrs:  sp.attrs,
		})
	}
	name := sp.name
	*sp = Span{ended: true}
	spanPool.Put(sp)
	tr.spanHist(name).ObserveDuration(dur)
}

// spanHist returns the cached duration histogram for a span name.
func (t *Tracer) spanHist(name string) *Histogram {
	if t.reg == nil {
		return nil
	}
	if h, ok := t.known[name]; ok {
		return h
	}
	if h, ok := t.durs.Load(name); ok {
		return h.(*Histogram)
	}
	h := t.reg.Histogram(name + ".us")
	t.durs.Store(name, h)
	return h
}

// EmitSnapshot writes the current metrics snapshot into the journal as a
// KindSnapshot record (used by the CLIs right before closing the journal).
func (t *Tracer) EmitSnapshot() {
	if t == nil || t.j == nil {
		return
	}
	t.j.Emit(Event{TS: time.Now(), Kind: KindSnapshot, Name: "metrics", Data: t.reg.Snapshot()})
}

// ---------------------------------------------------------------------------
// Context propagation
// ---------------------------------------------------------------------------

type ctxKey struct{}

// WithSpan returns a context carrying sp; a nil span returns ctx unchanged.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextTracer returns the tracer of the span carried by ctx, or nil. It
// lets leaf subsystems (the scheduler, the verdict cache) emit events without
// holding their own tracer reference.
func ContextTracer(ctx context.Context) *Tracer {
	if sp := FromContext(ctx); sp != nil {
		return sp.tr
	}
	return nil
}
