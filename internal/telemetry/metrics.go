// Package telemetry is the observability substrate of the GoldMine
// reproduction: lock-cheap metrics (counters, gauges, histograms), span-based
// tracing of every refinement-loop phase, and a structured JSONL event
// journal with bounded buffering and drop accounting.
//
// The package is built around one invariant: when telemetry is disabled the
// instrumented code pays (almost) nothing. Every type is nil-safe — a nil
// *Registry hands out nil *Counters whose Add is a single nil-check, a nil
// *Tracer starts nil *Spans whose Child/End are no-ops — so call sites are
// written unconditionally and the disabled fast path costs one predictable
// branch per event. The enabled hot path is atomics for metrics and one
// buffered, non-blocking channel send for journal events; the journal's
// writer goroutine does all marshaling off the instrumented path and counts
// (rather than blocks on) overflow.
//
// Naming convention: metric and span names are dotted lowercase,
// subsystem-first ("sat.propagations", "mine.iteration", "sched.steal").
// DESIGN.md §4.4 documents the full taxonomy and the overhead contract.
package telemetry

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe on a nil
// receiver (no-ops / zero), which is the disabled fast path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. power-of-two ranges. 64
// buckets cover the whole uint64 range, so there is no overflow bucket.
const histBuckets = 64

// Histogram is a lock-free power-of-two histogram of non-negative int64
// observations (durations in microseconds, work deltas, sizes). Observe is a
// single atomic add; Snapshot assembles a consistent-enough view for
// reporting (buckets are read individually, which is fine for monitoring).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// HistogramSnapshot is the read-side view of a Histogram. Buckets maps the
// inclusive upper bound of each non-empty power-of-two bucket to its count.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = map[string]int64{}
			}
			// Bucket i holds values whose bit length is i: upper bound 2^i - 1.
			var hi uint64
			if i >= 64 {
				hi = ^uint64(0)
			} else {
				hi = 1<<uint(i) - 1
			}
			s.Buckets[le(hi)] = n
		}
	}
	return s
}

func le(v uint64) string {
	// Small helper: decimal rendering without fmt on the snapshot path.
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Registry is a named collection of metrics. Metric lookup takes a mutex and
// is meant for setup time (instrumented subsystems cache the returned
// pointers); the metric operations themselves are atomic. A nil *Registry is
// the disabled state: it hands out nil metrics.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-serializable view of a Registry — the
// expvar-style dump behind -metrics-summary.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Nil-safe (returns a zero
// snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for n, c := range r.counts {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON (maps marshal with sorted
// keys, so the dump is deterministic for fixed counter values).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Names returns the sorted names of all registered metrics (useful in tests).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counts {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
