package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	h := r.Histogram("a.hist")
	for _, v := range []int64{0, 1, 3, 100, -5} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["a.hist"]
	if hs.Count != 5 || hs.Max != 100 || hs.Sum != 104 {
		t.Fatalf("hist snapshot = %+v", hs)
	}
	if s.Counters["a.count"] != 4 || s.Gauges["a.gauge"] != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["a.count"] != 4 {
		t.Fatalf("round-tripped snapshot = %+v", round)
	}
}

// TestNilSafety drives every instrumentation entry point through nil
// receivers — the disabled fast path every subsystem relies on.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	var j *Journal
	reg.Counter("x").Add(1)
	reg.Gauge("x").Set(1)
	reg.Histogram("x").Observe(1)
	if got := reg.Snapshot(); got.Counters != nil {
		t.Fatal("nil registry snapshot not empty")
	}
	if reg.Names() != nil {
		t.Fatal("nil registry names not empty")
	}
	j.Emit(Event{})
	if j.Dropped() != 0 || j.Written() != 0 {
		t.Fatal("nil journal counts nonzero")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, sp := tr.StartSpan(context.Background(), "noop")
	if sp != nil || FromContext(ctx) != nil {
		t.Fatal("nil tracer produced a span")
	}
	sp.Annotate(Int("k", 1))
	sp.End()
	if sp.Child("c") != nil {
		t.Fatal("nil span produced a child")
	}
	tr.Event("e")
	tr.EmitSnapshot()
	if tr.Registry() != nil || tr.Journal() != nil {
		t.Fatal("nil tracer exposes components")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if ContextTracer(context.Background()) != nil {
		t.Fatal("empty context has a tracer")
	}
}

func decodeLines(t *testing.T, data []byte) []JSONEvent {
	t.Helper()
	var out []JSONEvent
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var je JSONEvent
		if err := json.Unmarshal([]byte(line), &je); err != nil {
			t.Fatalf("journal line %q does not parse: %v", line, err)
		}
		out = append(out, je)
	}
	return out
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, 64)
	tr := New(NewRegistry(), j)
	root := tr.Root("run", String("design", "arbiter2"))
	child := root.Child("phase", Int("iter", 1))
	child.End(Bool("ok", true))
	root.End()
	tr.Event("steal", Int("task", 3))
	tr.Registry().Counter("sat.propagations").Add(42)
	tr.EmitSnapshot()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	evs := decodeLines(t, buf.Bytes())
	if len(evs) != 5 {
		t.Fatalf("got %d journal lines, want 5", len(evs))
	}
	byKind := map[string][]JSONEvent{}
	spans := map[uint64]JSONEvent{}
	for _, e := range evs {
		byKind[e.Kind] = append(byKind[e.Kind], e)
		if e.Kind == KindSpan {
			spans[e.Span] = e
		}
	}
	if len(byKind[KindSpan]) != 2 || len(byKind[KindEvent]) != 1 ||
		len(byKind[KindSnapshot]) != 1 || len(byKind[KindClose]) != 1 {
		t.Fatalf("kind distribution wrong: %+v", byKind)
	}
	// Span-tree well-formedness: every non-zero parent resolves to a span,
	// and the parent's interval encloses the child's start.
	for _, e := range byKind[KindSpan] {
		if e.Parent == 0 {
			continue
		}
		p, ok := spans[e.Parent]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", e.Span, e.Parent)
		}
		if e.TS < p.TS || e.TS > p.TS+p.DurUS+1 {
			t.Fatalf("child span %d starts outside parent %d's interval", e.Span, e.Parent)
		}
	}
	ch := byKind[KindSpan][0]
	if ch.Name != "phase" || ch.Attrs["iter"] != float64(1) || ch.Attrs["ok"] != float64(1) {
		t.Fatalf("child span attrs wrong: %+v", ch)
	}
	var snap Snapshot
	if err := json.Unmarshal(*byKind[KindSnapshot][0].Data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sat.propagations"] != 42 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}
	if snap.Histograms["phase.us"].Count != 1 {
		t.Fatalf("span duration histogram missing: %+v", snap.Histograms)
	}
	cl := byKind[KindClose][0]
	if cl.Attrs["written"] != float64(4) || cl.Attrs["dropped"] != float64(0) {
		t.Fatalf("trailer accounting wrong: %+v", cl.Attrs)
	}
}

// slowWriter blocks every write until released, forcing the journal buffer to
// back up.
type slowWriter struct {
	release chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (w *slowWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestJournalDropAccounting(t *testing.T) {
	w := &slowWriter{release: make(chan struct{})}
	j := NewJournal(w, 2)
	// The writer goroutine is stalled; the buffer holds 2 events (plus up to
	// one pulled into the stalled Write). Emit far more than fit.
	const emits = 100
	for i := 0; i < emits; i++ {
		j.Emit(Event{TS: time.Now(), Kind: KindEvent, Name: "e", Attrs: []Attr{Int("i", int64(i))}})
	}
	if j.Dropped() == 0 {
		t.Fatal("tiny buffer under a stalled writer dropped nothing")
	}
	close(w.release) // let the writer drain
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	data := append([]byte(nil), w.buf.Bytes()...)
	w.mu.Unlock()
	evs := decodeLines(t, data)
	var trailer *JSONEvent
	written, dropped := int64(0), int64(0)
	for i := range evs {
		if evs[i].Kind == KindClose {
			trailer = &evs[i]
		} else {
			written++
		}
	}
	if trailer == nil {
		t.Fatal("no close trailer")
	}
	dropped = int64(trailer.Attrs["dropped"].(float64))
	if int64(trailer.Attrs["written"].(float64)) != written {
		t.Fatalf("trailer written=%v, but %d lines on disk", trailer.Attrs["written"], written)
	}
	if written+dropped != emits {
		t.Fatalf("written %d + dropped %d != emitted %d", written, dropped, emits)
	}
	// Emits after Close must not panic and must be counted.
	before := j.Dropped()
	j.Emit(Event{Kind: KindEvent, Name: "late"})
	if j.Dropped() != before+1 {
		t.Fatal("post-close emit not counted as dropped")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStartSpanParenting(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewRegistry(), NewJournal(&buf, 16))
	ctx := context.Background()
	ctx, root := tr.StartSpan(ctx, "root")
	ctx2, child := tr.StartSpan(ctx, "child")
	if FromContext(ctx2) != child || FromContext(ctx) != root {
		t.Fatal("context span propagation broken")
	}
	if ContextTracer(ctx2) != tr {
		t.Fatal("ContextTracer lost the tracer")
	}
	child.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	evs := decodeLines(t, buf.Bytes())
	var rootID uint64
	for _, e := range evs {
		if e.Kind == KindSpan && e.Name == "root" {
			rootID = e.Span
		}
	}
	for _, e := range evs {
		if e.Kind == KindSpan && e.Name == "child" && e.Parent != rootID {
			t.Fatalf("child parent = %d, want %d", e.Parent, rootID)
		}
	}
}

// TestAppendEventMatchesWire pins the drain goroutine's hand-rolled encoder
// against the reference JSONEvent marshaling: for events covering every field
// and the string-escaping edge cases, both encodings must decode to the same
// record.
func TestAppendEventMatchesWire(t *testing.T) {
	events := []Event{
		{TS: time.UnixMicro(123456), Kind: KindEvent, Name: "sched.steal"},
		{
			TS: time.UnixMicro(-5), Kind: KindSpan, Name: "mc.check",
			Span: 7, Parent: 3, Dur: 1500 * time.Microsecond,
			Attrs: []Attr{
				String("assertion", `a && "b" \ <c>`+"\n\t\r\x01"),
				Int("depth", -42),
				Bool("degraded", true),
				String("unicode", "héllo — 世界"),
				String("empty", ""),
			},
		},
		{TS: time.UnixMicro(99), Kind: KindSnapshot, Name: "metrics",
			Data: map[string]int{"a": 1}},
	}
	for i, e := range events {
		got, err := appendEvent(nil, &e)
		if err != nil {
			t.Fatalf("event %d: appendEvent: %v", i, err)
		}
		ref, err := e.wire()
		if err != nil {
			t.Fatalf("event %d: wire: %v", i, err)
		}
		want, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		var gj, wj JSONEvent
		if err := json.Unmarshal(got, &gj); err != nil {
			t.Fatalf("event %d: hand encoding unparseable: %v\n%s", i, err, got)
		}
		if err := json.Unmarshal(want, &wj); err != nil {
			t.Fatal(err)
		}
		gd, wd := gj.Data, wj.Data
		gj.Data, wj.Data = nil, nil
		if !reflect.DeepEqual(gj, wj) {
			t.Errorf("event %d: decoded records differ:\nhand: %+v\nref:  %+v", i, gj, wj)
		}
		if (gd == nil) != (wd == nil) {
			t.Errorf("event %d: data presence differs", i)
		} else if gd != nil && string(*gd) != string(*wd) {
			t.Errorf("event %d: data differs: %s vs %s", i, *gd, *wd)
		}
	}
}
