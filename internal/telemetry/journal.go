package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event. Values are either
// strings or int64s — the two shapes every instrumented site needs — so the
// hot path never boxes through interfaces or builds maps.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	isInt bool
}

// String builds a string-valued attribute.
func String(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int builds an integer-valued attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Int: val, isInt: true} }

// Bool builds a boolean attribute (rendered as 0/1).
func Bool(key string, val bool) Attr {
	var v int64
	if val {
		v = 1
	}
	return Attr{Key: key, Int: v, isInt: true}
}

// Event kinds written to the journal.
const (
	// KindSpan is a completed span: Span/Parent identify it, DurUS its length.
	KindSpan = "span"
	// KindEvent is a point event (a steal, a dedup, a fault).
	KindEvent = "event"
	// KindSnapshot carries a full metrics Snapshot in Data.
	KindSnapshot = "snapshot"
	// KindClose is the journal trailer: written/dropped accounting.
	KindClose = "close"
)

// Event is one journal record. The instrumented path builds Events and hands
// them to Journal.Emit; the writer goroutine marshals them to JSONL.
type Event struct {
	TS     time.Time
	Kind   string
	Name   string
	Span   uint64
	Parent uint64
	Dur    time.Duration
	Attrs  []Attr
	Data   any // KindSnapshot payload; marshaled off the hot path
}

// JSONEvent is the wire form of an Event — one JSONL line. Exported so tests
// and downstream consumers (cmd/telcheck) can round-trip the journal.
type JSONEvent struct {
	TS     int64            `json:"ts_us"`
	Kind   string           `json:"kind"`
	Name   string           `json:"name,omitempty"`
	Span   uint64           `json:"span,omitempty"`
	Parent uint64           `json:"parent,omitempty"`
	DurUS  int64            `json:"dur_us,omitempty"`
	Attrs  map[string]any   `json:"attrs,omitempty"`
	Data   *json.RawMessage `json:"data,omitempty"`
}

// wire is the reference encoding: the drain goroutine writes the same shape
// via appendEvent (reflection-free), and a test pins the two against each
// other.
func (e *Event) wire() (JSONEvent, error) {
	je := JSONEvent{
		TS:     e.TS.UnixMicro(),
		Kind:   e.Kind,
		Name:   e.Name,
		Span:   e.Span,
		Parent: e.Parent,
		DurUS:  e.Dur.Microseconds(),
	}
	if len(e.Attrs) > 0 {
		je.Attrs = make(map[string]any, len(e.Attrs))
		for _, a := range e.Attrs {
			if a.isInt {
				je.Attrs[a.Key] = a.Int
			} else {
				je.Attrs[a.Key] = a.Str
			}
		}
	}
	if e.Data != nil {
		raw, err := json.Marshal(e.Data)
		if err != nil {
			return je, err
		}
		rm := json.RawMessage(raw)
		je.Data = &rm
	}
	return je, nil
}

// Journal writes telemetry events as JSON Lines through a bounded buffer.
// Emit never blocks the instrumented path: events queue on a channel and a
// single writer goroutine drains, marshals, and writes them. When the buffer
// is full the event is dropped and counted — under overload the journal
// degrades by losing events, never by stalling the refinement loop. Close
// flushes the queue and appends a trailer line recording written/dropped
// totals, so a consumer can always tell whether the record is complete.
type Journal struct {
	ch      chan Event
	done    chan struct{}
	w       *bufio.Writer
	closer  io.Closer // closed after the trailer when the sink is a file
	stopped atomic.Bool
	written atomic.Int64
	dropped atomic.Int64
	errOnce sync.Once
	err     error

	closeOnce sync.Once
	closeErr  error
}

// kindStop is the internal shutdown sentinel: drain exits when it arrives,
// after everything queued before it has been written.
const kindStop = "\x00stop"

// DefaultJournalBuffer is the event buffer depth used by the CLI flags.
const DefaultJournalBuffer = 8192

// NewJournal starts a journal writing to w with the given buffer depth
// (values < 1 get a minimal buffer of 1). If w is also an io.Closer it is
// closed by Journal.Close after the trailer.
func NewJournal(w io.Writer, buffer int) *Journal {
	if buffer < 1 {
		buffer = 1
	}
	j := &Journal{
		ch:   make(chan Event, buffer),
		done: make(chan struct{}),
		w:    bufio.NewWriter(w),
	}
	if c, ok := w.(io.Closer); ok {
		j.closer = c
	}
	go j.drain()
	return j
}

func (j *Journal) drain() {
	// One reusable scratch buffer: the drain goroutine shares the CPU with
	// the mining loop on small hosts, so events are formatted by direct
	// append (appendEvent) rather than reflection-driven encoding/json —
	// same wire shape as JSONEvent, a fraction of the cost.
	defer close(j.done)
	buf := make([]byte, 0, 512)
	for e := range j.ch {
		if e.Kind == kindStop {
			return
		}
		var err error
		buf, err = appendEvent(buf[:0], &e)
		if err == nil {
			_, err = j.w.Write(buf)
		}
		if err != nil {
			j.errOnce.Do(func() { j.err = err })
			continue
		}
		j.written.Add(1)
	}
}

// EncodeEvent formats e as one JSONL line appended to b, producing exactly
// the JSONEvent wire shape (field set, omitempty behaviour) without
// reflection. Exported so other JSONL logs — the serve package's durable job
// journal — reuse the same encoder and wire format as the telemetry journal;
// the inverse is a plain json.Unmarshal into JSONEvent.
func EncodeEvent(b []byte, e *Event) ([]byte, error) {
	return appendEvent(b, e)
}

// appendEvent formats e as one JSONL line into b, producing exactly the
// JSONEvent wire shape (field set, omitempty behaviour) without reflection.
func appendEvent(b []byte, e *Event) ([]byte, error) {
	b = append(b, `{"ts_us":`...)
	b = strconv.AppendInt(b, e.TS.UnixMicro(), 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, e.Kind)
	if e.Name != "" {
		b = append(b, `,"name":`...)
		b = appendJSONString(b, e.Name)
	}
	if e.Span != 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendUint(b, e.Span, 10)
	}
	if e.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, e.Parent, 10)
	}
	if us := e.Dur.Microseconds(); us != 0 {
		b = append(b, `,"dur_us":`...)
		b = strconv.AppendInt(b, us, 10)
	}
	if len(e.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range e.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			if a.isInt {
				b = strconv.AppendInt(b, a.Int, 10)
			} else {
				b = appendJSONString(b, a.Str)
			}
		}
		b = append(b, '}')
	}
	if e.Data != nil {
		raw, err := json.Marshal(e.Data)
		if err != nil {
			return b, err
		}
		b = append(b, `,"data":`...)
		b = append(b, raw...)
	}
	return append(b, '}', '\n'), nil
}

// appendJSONString appends s as a JSON string literal. Bytes >= 0x20 other
// than quote and backslash pass through untouched (UTF-8 sequences are valid
// JSON as-is); control characters get the \u00XX form encoding/json uses.
func appendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// Emit queues one event; a full buffer drops it and bumps the drop counter.
// Nil-safe: a nil journal swallows events for free. Emits after Close are
// dropped (counted), never a crash — a straggler goroutine finishing its last
// span after shutdown must not take the process down.
func (j *Journal) Emit(e Event) {
	if j == nil || j.stopped.Load() {
		if j != nil {
			j.dropped.Add(1)
		}
		return
	}
	select {
	case j.ch <- e:
	default:
		j.dropped.Add(1)
	}
}

// Written returns the number of lines successfully written so far.
func (j *Journal) Written() int64 {
	if j == nil {
		return 0
	}
	return j.written.Load()
}

// Dropped returns the number of events lost to buffer overflow so far.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Close drains the queue, writes the accounting trailer, flushes, and closes
// the underlying sink when it is a Closer. Safe to call more than once; emits
// arriving after Close are dropped (counted) rather than panicking on the
// closed channel — callers should stop instrumented work first, but a late
// event from a straggler goroutine must not crash the process.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.closeOnce.Do(func() {
		j.stopped.Store(true)
		j.ch <- Event{Kind: kindStop}
		<-j.done
		trailer := JSONEvent{
			TS:   time.Now().UnixMicro(),
			Kind: KindClose,
			Attrs: map[string]any{
				"written": j.written.Load(),
				"dropped": j.dropped.Load(),
			},
		}
		enc := json.NewEncoder(j.w)
		if err := enc.Encode(trailer); err != nil && j.err == nil {
			j.err = err
		}
		if err := j.w.Flush(); err != nil && j.err == nil {
			j.err = err
		}
		if j.closer != nil {
			if err := j.closer.Close(); err != nil && j.err == nil {
				j.err = err
			}
		}
		if j.err != nil {
			j.closeErr = fmt.Errorf("telemetry journal: %w", j.err)
		}
	})
	return j.closeErr
}
