// Package holes promotes the collector's flat uncovered-point strings into a
// structured model of coverage holes, the unit of work for directed stimulus
// generation (stimgen.DirectedFromHoles). A Hole names one uncovered bin —
// a branch arm never taken, a condition polarity never observed, a signal bit
// that never rose or fell, an FSM state or arc never visited — together with
// the RTL expression or signal bit that witnesses it, its cone-of-influence
// signature, and a rank ordering holes from likely-easy to likely-hard.
//
// The rank is a static heuristic, not a promise: a small input cone and a
// covered sibling (the other arm of the same branch, the opposite polarity of
// the same condition, the opposite edge of the same bit) both suggest the
// hole is reachable with little effort, so those holes are attempted first
// and the SAT budget is saved for the deep ones.
package holes

import (
	"fmt"
	"sort"

	"goldmine/internal/cone"
	"goldmine/internal/coverage"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// Kind classifies coverage holes.
type Kind int

// Hole kinds. BranchArm covers line, branch and minterm points (all are
// "make this 1-bit expression true once"); CondTrue/CondFalse are the missing
// polarity of a condition or expression point.
const (
	BranchArm Kind = iota
	CondTrue
	CondFalse
	ToggleRise
	ToggleFall
	FSMState
	FSMArc
)

var kindNames = [...]string{
	"branch-arm", "cond-true", "cond-false",
	"toggle-rise", "toggle-fall", "fsm-state", "fsm-arc",
}

func (k Kind) String() string { return kindNames[k] }

// Hole is one uncovered coverage bin.
type Hole struct {
	Kind Kind

	// Point is set for BranchArm/CondTrue/CondFalse holes: the uncovered
	// instrumentation point whose 1-bit Expr must evaluate to 1 (or 0 for
	// CondFalse) on some settled cycle.
	Point rtl.Point

	// Sig/Bit are set for toggle holes: bit Bit of Sig must transition
	// 0→1 (ToggleRise) or 1→0 (ToggleFall) across adjacent cycles.
	Sig *rtl.Signal
	Bit int

	// Reg/From/To are set for FSM holes: Reg must reach state To
	// (FSMState), or step From→To across adjacent cycles (FSMArc).
	Reg      *rtl.Signal
	From, To uint64

	// Cone signature: the transitive cone of influence of the hole's
	// support signals, its sorted data inputs, and the bit totals that feed
	// the rank. Inputs is the focus set for fallback fuzzing and the
	// canonicalization variable order for SAT witnesses.
	Cone          map[*rtl.Signal]bool
	Inputs        []*rtl.Signal
	ConeSignals   int
	ConeInputBits int
	ConeStateBits int

	// SiblingCovered reports that a structurally adjacent bin is already
	// covered (other branch arm on the same line, opposite polarity,
	// opposite toggle edge, another state of the same FSM), which is weak
	// evidence this hole is reachable.
	SiblingCovered bool

	// SourceUnreached marks an FSMArc whose From state has itself never
	// been observed. Such arcs used to be skipped; they are now emitted as
	// sequence obligations ("reach From, then step to To" in one query) and
	// ranked after arcs whose source is already in hand.
	SourceUnreached bool

	// Rank orders holes ascending: lower is attempted first.
	Rank float64
}

// Key is a stable identifier for the hole, unique within a design. The
// closure loop uses keys to carry per-hole verdicts (e.g. "unreachable")
// across iterations in which the hole list is re-extracted.
func (h *Hole) Key() string {
	switch h.Kind {
	case BranchArm:
		return fmt.Sprintf("point#%d", h.Point.ID)
	case CondTrue, CondFalse:
		pol := "true"
		if h.Kind == CondFalse {
			pol = "false"
		}
		return fmt.Sprintf("point#%d/%s", h.Point.ID, pol)
	case ToggleRise:
		return fmt.Sprintf("toggle:%s[%d]/rise", h.Sig.Name, h.Bit)
	case ToggleFall:
		return fmt.Sprintf("toggle:%s[%d]/fall", h.Sig.Name, h.Bit)
	case FSMState:
		return fmt.Sprintf("fsm:%s=%d", h.Reg.Name, h.To)
	default:
		return fmt.Sprintf("fsm:%s:%d->%d", h.Reg.Name, h.From, h.To)
	}
}

// String renders a human-readable description.
func (h *Hole) String() string {
	switch h.Kind {
	case BranchArm:
		return fmt.Sprintf("%s %s", h.Kind, h.Point.String())
	case CondTrue, CondFalse:
		return fmt.Sprintf("%s %s", h.Kind, h.Point.String())
	case ToggleRise, ToggleFall:
		return fmt.Sprintf("%s %s[%d]", h.Kind, h.Sig.Name, h.Bit)
	case FSMState:
		return fmt.Sprintf("%s %s=%d", h.Kind, h.Reg.Name, h.To)
	default:
		return fmt.Sprintf("%s %s:%d->%d", h.Kind, h.Reg.Name, h.From, h.To)
	}
}

// JSON is the flat serialization of a hole for -holes-json.
type JSON struct {
	Key             string  `json:"key"`
	Kind            string  `json:"kind"`
	Expr            string  `json:"expr,omitempty"`
	Line            int     `json:"line,omitempty"`
	Desc            string  `json:"desc,omitempty"`
	Signal          string  `json:"signal,omitempty"`
	Bit             int     `json:"bit,omitempty"`
	From            uint64  `json:"from,omitempty"`
	To              uint64  `json:"to,omitempty"`
	ConeSignals     int     `json:"cone_signals"`
	ConeInputBits   int     `json:"cone_input_bits"`
	ConeStateBits   int     `json:"cone_state_bits"`
	SiblingCovered  bool    `json:"sibling_covered"`
	SourceUnreached bool    `json:"source_unreached,omitempty"`
	Rank            float64 `json:"rank"`
}

// JSON returns the serializable view of the hole.
func (h *Hole) JSON() JSON {
	j := JSON{
		Key:             h.Key(),
		Kind:            h.Kind.String(),
		ConeSignals:     h.ConeSignals,
		ConeInputBits:   h.ConeInputBits,
		ConeStateBits:   h.ConeStateBits,
		SiblingCovered:  h.SiblingCovered,
		SourceUnreached: h.SourceUnreached,
		Rank:            h.Rank,
	}
	switch h.Kind {
	case BranchArm, CondTrue, CondFalse:
		j.Expr = rtl.String(h.Point.Expr)
		j.Line = h.Point.Line
		j.Desc = h.Point.Desc
	case ToggleRise, ToggleFall:
		j.Signal = h.Sig.Name
		j.Bit = h.Bit
	case FSMState:
		j.Signal = h.Reg.Name
		j.To = h.To
	default:
		j.Signal = h.Reg.Name
		j.From = h.From
		j.To = h.To
	}
	return j
}

// FromCollector extracts, signs and ranks the holes left open by the
// collector's observations. The result is sorted ascending by rank with a
// deterministic tie-break, ready for directed generation.
func FromCollector(c *coverage.Collector) []*Hole {
	return FromState(c.State())
}

// FromState is FromCollector over an explicit snapshot.
func FromState(st coverage.State) []*Hole {
	d := st.Design
	var hs []*Hole

	// Instrumentation points. Sibling evidence: for branch points, another
	// covered branch point on the same source line (the other arm); for
	// condition/expression points, the opposite polarity of the same point.
	branchLineCovered := map[int]bool{}
	for i, p := range d.Cover.Points {
		if p.Kind == rtl.PointBranch && st.SeenTrue[i] {
			branchLineCovered[p.Line] = true
		}
	}
	for i, p := range d.Cover.Points {
		switch p.Kind {
		case rtl.PointLine, rtl.PointBranch, rtl.PointMinterm:
			if !st.SeenTrue[i] {
				hs = append(hs, &Hole{
					Kind: BranchArm, Point: p,
					SiblingCovered: p.Kind == rtl.PointBranch && branchLineCovered[p.Line],
				})
			}
		default: // condition, expression: need both polarities
			if !st.SeenTrue[i] {
				hs = append(hs, &Hole{
					Kind: CondTrue, Point: p, SiblingCovered: st.SeenFalse[i],
				})
			}
			if !st.SeenFalse[i] {
				hs = append(hs, &Hole{
					Kind: CondFalse, Point: p, SiblingCovered: st.SeenTrue[i],
				})
			}
		}
	}

	// Toggle bits. Sibling evidence: the opposite edge of the same bit.
	for i, s := range st.ToggleSigs {
		for b := 0; b < s.Width; b++ {
			if !st.Rise[i][b] {
				hs = append(hs, &Hole{
					Kind: ToggleRise, Sig: s, Bit: b, SiblingCovered: st.Fall[i][b],
				})
			}
			if !st.Fall[i][b] {
				hs = append(hs, &Hole{
					Kind: ToggleFall, Sig: s, Bit: b, SiblingCovered: st.Rise[i][b],
				})
			}
		}
	}

	// FSM states and arcs. Arc holes enumerate every named-state pair; an
	// arc out of a state never observed is not skipped but marked
	// SourceUnreached — directed generation turns it into one sequence
	// obligation ("reach From, then step to To") instead of needing the
	// state hole closed first. Sibling evidence: any other state / any arc
	// out of From.
	for i, f := range d.Cover.FSMs {
		for _, stv := range f.States {
			if !st.FSMSeen[i][stv] {
				hs = append(hs, &Hole{
					Kind: FSMState, Reg: f.Reg, To: stv,
					SiblingCovered: len(st.FSMSeen[i]) > 0,
				})
			}
		}
		for _, from := range f.States {
			outSeen := false
			for _, to := range f.States {
				if st.FSMTrans[i][[2]uint64{from, to}] {
					outSeen = true
					break
				}
			}
			for _, to := range f.States {
				if from == to || st.FSMTrans[i][[2]uint64{from, to}] {
					continue
				}
				hs = append(hs, &Hole{
					Kind: FSMArc, Reg: f.Reg, From: from, To: to,
					SiblingCovered:  outSeen,
					SourceUnreached: !st.FSMSeen[i][from],
				})
			}
		}
	}

	sign(d, hs)
	rank(hs)
	sort.SliceStable(hs, func(i, j int) bool {
		if hs[i].Rank != hs[j].Rank {
			return hs[i].Rank < hs[j].Rank
		}
		return hs[i].Key() < hs[j].Key()
	})
	return hs
}

// sign fills each hole's cone signature. Cones are memoized per support
// signal: designs have far fewer distinct signals than holes.
func sign(d *rtl.Design, hs []*Hole) {
	memo := map[*rtl.Signal]map[*rtl.Signal]bool{}
	coneOf := func(s *rtl.Signal) map[*rtl.Signal]bool {
		if c, ok := memo[s]; ok {
			return c
		}
		c := cone.Of(d, s)
		memo[s] = c
		return c
	}
	for _, h := range hs {
		union := map[*rtl.Signal]bool{}
		add := func(s *rtl.Signal) {
			for sig := range coneOf(s) {
				union[sig] = true
			}
		}
		switch h.Kind {
		case BranchArm, CondTrue, CondFalse:
			for s := range rtl.Support(h.Point.Expr, nil) {
				add(s)
			}
		case ToggleRise, ToggleFall:
			add(h.Sig)
		default:
			add(h.Reg)
		}
		h.Cone = union
		h.Inputs = cone.Inputs(d, union)
		h.ConeSignals = len(union)
		for _, s := range h.Inputs {
			h.ConeInputBits += s.Width
		}
		for _, s := range cone.StateVars(d, union) {
			h.ConeStateBits += s.Width
		}
	}
}

// rank scores holes ascending-easy-first. Structural size dominates (small
// cones solve fast and fuzz well), state bits weigh double (sequential depth
// is what makes reachability hard), kinds that need adjacent-frame pairs get
// a constant surcharge, and a covered sibling earns a discount.
func rank(hs []*Hole) {
	for _, h := range hs {
		r := float64(h.ConeInputBits + 2*h.ConeStateBits + h.ConeSignals)
		switch h.Kind {
		case ToggleRise, ToggleFall:
			r += 4 // two-frame obligation
		case FSMState:
			r += 8 // usually the deep targets
		case FSMArc:
			r += 12 // two-frame and deep
			if h.SourceUnreached {
				// The sequence obligation must first reach From: strictly
				// harder than an arc whose source is already in hand, and
				// often closed for free once the state hole is.
				r += 10
			}
		}
		if h.SiblingCovered {
			r *= 0.75
		}
		h.Rank = r
	}
}

// rowEnv adapts one trace row to rtl.Env for hit detection.
type rowEnv struct {
	tr  *sim.Trace
	row []uint64
}

func (e rowEnv) Get(s *rtl.Signal) uint64 {
	if c := e.tr.Column(s.Name); c >= 0 {
		return e.row[c] & rtl.Mask(s.Width)
	}
	return 0
}

// Hit returns the first cycle index at which the trace exercises the hole,
// or -1. Adjacent-frame holes (toggles, FSM arcs) report the index of the
// second frame of the pair.
func (h *Hole) Hit(tr *sim.Trace) int {
	for t := 0; t < len(tr.Values); t++ {
		cur := rowEnv{tr, tr.Values[t]}
		switch h.Kind {
		case BranchArm, CondTrue:
			if rtl.Eval(h.Point.Expr, cur)&1 == 1 {
				return t
			}
		case CondFalse:
			if rtl.Eval(h.Point.Expr, cur)&1 == 0 {
				return t
			}
		case ToggleRise, ToggleFall:
			if t == 0 {
				continue
			}
			prev := rowEnv{tr, tr.Values[t-1]}
			pb := (prev.Get(h.Sig) >> uint(h.Bit)) & 1
			cb := (cur.Get(h.Sig) >> uint(h.Bit)) & 1
			if h.Kind == ToggleRise && pb == 0 && cb == 1 {
				return t
			}
			if h.Kind == ToggleFall && pb == 1 && cb == 0 {
				return t
			}
		case FSMState:
			if cur.Get(h.Reg) == h.To {
				return t
			}
		default: // FSMArc
			if t == 0 {
				continue
			}
			prev := rowEnv{tr, tr.Values[t-1]}
			if prev.Get(h.Reg) == h.From && cur.Get(h.Reg) == h.To {
				return t
			}
		}
	}
	return -1
}

// ReportHoles counts the holes that contribute to the coverage report's
// metrics (FSM arcs are tracked but not part of the reported FSM metric).
func ReportHoles(hs []*Hole) int {
	n := 0
	for _, h := range hs {
		if h.Kind != FSMArc {
			n++
		}
	}
	return n
}
