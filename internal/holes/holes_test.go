package holes

import (
	"math/rand"
	"strings"
	"testing"

	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// randomStim is a local deterministic stimulus source (stimgen imports this
// package, so these in-package tests cannot import stimgen back).
func randomStim(d *rtl.Design, cycles int, seed int64, resetCycles int) sim.Stimulus {
	rng := rand.New(rand.NewSource(seed))
	stim := make(sim.Stimulus, 0, cycles)
	for c := 0; c < cycles; c++ {
		iv := sim.InputVec{}
		for _, in := range d.Inputs() {
			iv[in.Name] = rng.Uint64() & rtl.Mask(in.Width)
		}
		if c < resetCycles {
			if _, ok := iv["rst"]; ok {
				iv["rst"] = 1
			}
			if _, ok := iv["reset"]; ok {
				iv["reset"] = 1
			}
		}
		stim = append(stim, iv)
	}
	return stim
}

const arbiterSrc = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk)
    if (rst) begin gnt0 <= 0; gnt1 <= 0; end
    else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule`

const fsmSrc = `
module fsm(input clk, rst, go, output reg busy);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else case (state)
      2'd0: if (go) state <= 2'd1;
      2'd1: state <= 2'd2;
      2'd2: state <= 2'd0;
      default: state <= 2'd0;
    endcase
  end
  always @(*) busy = (state != 2'd0);
endmodule`

func mustDesign(t *testing.T, src string) *rtl.Design {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFreshCollectorHolesEverythingOpen(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := coverage.New(d)
	hs := FromCollector(c)
	if len(hs) == 0 {
		t.Fatal("fresh collector produced no holes")
	}
	// Ranks ascending, keys unique, every hole signed with a cone.
	seen := map[string]bool{}
	for i, h := range hs {
		if i > 0 && hs[i-1].Rank > h.Rank {
			t.Errorf("rank order violated at %d: %.2f > %.2f", i, hs[i-1].Rank, h.Rank)
		}
		k := h.Key()
		if seen[k] {
			t.Errorf("duplicate hole key %q", k)
		}
		seen[k] = true
		if h.Kind == ToggleRise || h.Kind == ToggleFall {
			// Toggle holes always have the signal itself in the cone.
			if h.ConeSignals == 0 {
				t.Errorf("toggle hole %s has an empty cone", k)
			}
		}
	}
}

func TestPointHolesMatchUncoveredPoints(t *testing.T) {
	// The structured point holes must denote exactly the points the
	// collector's PointCovered view reports as uncovered after a partial
	// run — holes are a richer view over the same observations.
	d := mustDesign(t, arbiterSrc)
	c := coverage.New(d)
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"req0": 1}, {}}}); err != nil {
		t.Fatal(err)
	}
	uncov := map[string]bool{}
	for i, p := range d.Cover.Points {
		if !c.PointCovered(i) {
			uncov[p.String()] = true
		}
	}
	fromHoles := map[string]bool{}
	for _, h := range FromCollector(c) {
		switch h.Kind {
		case BranchArm, CondTrue, CondFalse:
			fromHoles[h.Point.String()] = true
		}
	}
	if len(uncov) != len(fromHoles) {
		t.Fatalf("point sets differ: strings=%d holes=%d", len(uncov), len(fromHoles))
	}
	for s := range uncov {
		if !fromHoles[s] {
			t.Errorf("uncovered point %q has no hole", s)
		}
	}
}

func TestHolesShrinkWithCoverage(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := coverage.New(d)
	before := len(FromCollector(c))
	var suite []sim.Stimulus
	for l := int64(0); l < 8; l++ {
		suite = append(suite, randomStim(d, 100, 11+l, 2))
	}
	if err := c.RunSuite(suite); err != nil {
		t.Fatal(err)
	}
	after := len(FromCollector(c))
	if after >= before {
		t.Errorf("holes did not shrink: %d -> %d", before, after)
	}
}

func TestFSMHoles(t *testing.T) {
	d := mustDesign(t, fsmSrc)
	c := coverage.New(d)
	// Visit only state 0: states 1 and 2 are holes, plus the arcs out of 0.
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {}}}); err != nil {
		t.Fatal(err)
	}
	hs := FromCollector(c)
	var states []string
	arcs := map[string]*Hole{}
	for _, h := range hs {
		switch h.Kind {
		case FSMState:
			states = append(states, h.Key())
		case FSMArc:
			arcs[h.Key()] = h
		}
	}
	if len(states) != 2 {
		t.Errorf("fsm state holes %v want 2", states)
	}
	// Every named-state pair is an arc hole now: 3 states, 6 ordered pairs.
	// Arcs out of the reached state 0 are plain; arcs out of unreached 1 and
	// 2 carry SourceUnreached (they become sequence obligations) and must
	// rank after their reached-source siblings.
	if len(arcs) != 6 {
		t.Errorf("fsm arc holes %d want 6: %v", len(arcs), arcs)
	}
	var reachedMax, unreachedMin float64
	for k, h := range arcs {
		fromReached := strings.Contains(k, "fsm:state:0->")
		if h.SourceUnreached == fromReached {
			t.Errorf("arc %q SourceUnreached=%v want %v", k, h.SourceUnreached, !fromReached)
		}
		if !h.JSON().SourceUnreached == h.SourceUnreached {
			t.Errorf("arc %q JSON view drops SourceUnreached", k)
		}
		if fromReached && h.Rank > reachedMax {
			reachedMax = h.Rank
		}
		if !fromReached && (unreachedMin == 0 || h.Rank < unreachedMin) {
			unreachedMin = h.Rank
		}
	}
	if unreachedMin <= reachedMax {
		t.Errorf("unreached-source arcs rank %.2f not after reached-source %.2f", unreachedMin, reachedMax)
	}
}

func TestHitDetectsExercisedHoles(t *testing.T) {
	d := mustDesign(t, fsmSrc)
	// A stimulus that walks 0→1→2→0.
	stim := sim.Stimulus{{"rst": 1}, {"go": 1}, {}, {}, {}}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(stim)
	if err != nil {
		t.Fatal(err)
	}
	c := coverage.New(d)
	hs := FromCollector(c) // everything open
	for _, h := range hs {
		hit := h.Hit(tr)
		// Cross-check against replaying the trace through a collector:
		// after running the stimulus, holes the collector closed must be
		// exactly those Hit found.
		if h.Kind == FSMState && h.To == 1 && hit < 0 {
			t.Errorf("state 1 visited but Hit missed it")
		}
		if h.Kind == FSMArc && h.From == 0 && h.To == 1 && hit < 0 {
			t.Errorf("arc 0->1 taken but Hit missed it")
		}
	}
	if err := c.RunSuite([]sim.Stimulus{stim}); err != nil {
		t.Fatal(err)
	}
	closed := map[string]bool{}
	for _, h := range FromCollector(c) {
		closed[h.Key()] = false // still open
	}
	for _, h := range hs {
		_, stillOpen := closed[h.Key()]
		if hit := h.Hit(tr); hit >= 0 && stillOpen && h.Kind != ToggleRise && h.Kind != ToggleFall {
			t.Errorf("hole %s hit at cycle %d but still open after replay", h.Key(), hit)
		}
	}
}

func TestHitConsistentWithCollectorAllDesigns(t *testing.T) {
	// Stronger differential check on real designs: for every hole of a
	// fresh design, Hit(trace) >= 0 iff a collector replaying the same
	// trace's stimulus closes it. Toggle holes are exempt in the open
	// direction only for bits Hit can't see (trace rows are settled
	// values, identical to what the collector observes, so they agree).
	for _, name := range []string{"arbiter4", "fetch"} {
		b, err := designs.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := b.Design()
		if err != nil {
			t.Fatal(err)
		}
		stim := randomStim(d, 60, 5, 2)
		s, err := sim.New(d)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := s.Run(stim)
		if err != nil {
			t.Fatal(err)
		}
		fresh := FromCollector(coverage.New(d))
		c := coverage.New(d)
		if err := c.RunSuite([]sim.Stimulus{stim}); err != nil {
			t.Fatal(err)
		}
		open := map[string]bool{}
		for _, h := range FromCollector(c) {
			open[h.Key()] = true
		}
		for _, h := range fresh {
			hit := h.Hit(tr) >= 0
			if hit && open[h.Key()] {
				t.Errorf("%s: hole %s hit in trace but open in collector", name, h.Key())
			}
			if !hit && !open[h.Key()] {
				t.Errorf("%s: hole %s closed by collector but not hit in trace", name, h.Key())
			}
		}
	}
}

func TestRankPrefersSmallConesAndSiblings(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	hs := FromCollector(coverage.New(d))
	// Identical holes except sibling evidence must differ by the discount.
	a := &Hole{Kind: CondTrue, ConeInputBits: 4, ConeStateBits: 2, ConeSignals: 6}
	b := &Hole{Kind: CondTrue, ConeInputBits: 4, ConeStateBits: 2, ConeSignals: 6, SiblingCovered: true}
	rank([]*Hole{a, b})
	if b.Rank >= a.Rank {
		t.Errorf("sibling discount missing: %v vs %v", b.Rank, a.Rank)
	}
	_ = hs
}

func TestJSONView(t *testing.T) {
	d := mustDesign(t, fsmSrc)
	hs := FromCollector(coverage.New(d))
	for _, h := range hs {
		j := h.JSON()
		if j.Key != h.Key() || j.Kind != h.Kind.String() {
			t.Errorf("JSON view mismatch: %+v vs %s/%s", j, h.Key(), h.Kind)
		}
		switch h.Kind {
		case BranchArm, CondTrue, CondFalse:
			if j.Expr == "" {
				t.Errorf("point hole %s missing expr", j.Key)
			}
		case ToggleRise, ToggleFall, FSMState, FSMArc:
			if j.Signal == "" {
				t.Errorf("hole %s missing signal", j.Key)
			}
		}
	}
}

func TestExtractionDeterministic(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := coverage.New(d)
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"req0": 1}}}); err != nil {
		t.Fatal(err)
	}
	a, b := FromCollector(c), FromCollector(c)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || a[i].Rank != b[i].Rank {
			t.Errorf("hole %d differs: %s/%.2f vs %s/%.2f",
				i, a[i].Key(), a[i].Rank, b[i].Key(), b[i].Rank)
		}
	}
}
