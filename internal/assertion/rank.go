package assertion

import "sort"

// This file implements the A-Val phase of the GoldMine architecture
// (Figure 1 of the paper): evaluating machine-generated assertions so a
// human sees the most valuable ones first, and pruning logically redundant
// ones from a suite.

// Metrics summarizes an assertion's evaluation-phase figures of merit.
type Metrics struct {
	// Complexity is the antecedent size (smaller = more general).
	Complexity int
	// InputSpace is the covered input-space fraction 1/2^depth.
	InputSpace float64
	// Support is the number of trace rows that backed the rule.
	Support int
	// TemporalDepth is the largest cycle offset mentioned.
	TemporalDepth int
	// Score is the composite importance used for ranking.
	Score float64
}

// Evaluate computes the metrics of one assertion.
func Evaluate(a *Assertion) Metrics {
	m := Metrics{
		Complexity: len(a.Antecedent),
		InputSpace: a.InputSpaceFraction(),
		Support:    a.Support,
	}
	m.TemporalDepth = a.Consequent.Offset
	for _, p := range a.Antecedent {
		if p.Offset > m.TemporalDepth {
			m.TemporalDepth = p.Offset
		}
	}
	// Generality dominates; support breaks ties; temporal behaviour is a
	// mild bonus (temporal assertions carry more design insight).
	m.Score = m.InputSpace*100 + float64(m.Support) + float64(m.TemporalDepth)*0.5
	return m
}

// Rank sorts assertions by descending importance (stable; ties broken by
// canonical key for reproducibility).
func Rank(as []*Assertion) []*Assertion {
	out := append([]*Assertion(nil), as...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := Evaluate(out[i]).Score, Evaluate(out[j]).Score
		if si != sj {
			return si > sj
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// Subsumes reports whether a logically implies b: same consequent
// proposition, and a's antecedent is a subset of b's. If a is a proven
// invariant, b adds nothing to a suite containing a.
func Subsumes(a, b *Assertion) bool {
	if a.Consequent.Signal != b.Consequent.Signal ||
		a.Consequent.Bit != b.Consequent.Bit ||
		a.Consequent.Offset != b.Consequent.Offset ||
		a.Consequent.Value != b.Consequent.Value {
		return false
	}
	if len(a.Antecedent) > len(b.Antecedent) {
		return false
	}
	bprops := map[string]bool{}
	for _, p := range b.Antecedent {
		bprops[propKey(p)] = true
	}
	for _, p := range a.Antecedent {
		if !bprops[propKey(p)] {
			return false
		}
	}
	return true
}

func propKey(p Prop) string {
	return p.Name() + "@" + itoa(p.Offset) + "=" + itoa(int(p.Value))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// ReduceSuite removes assertions subsumed by another assertion in the suite
// (and exact duplicates), preserving rank order.
func ReduceSuite(as []*Assertion) []*Assertion {
	ranked := Rank(as)
	var kept []*Assertion
	seen := map[string]bool{}
	for _, cand := range ranked {
		key := cand.Key()
		if seen[key] {
			continue
		}
		redundant := false
		for _, k := range kept {
			if Subsumes(k, cand) {
				redundant = true
				break
			}
		}
		if redundant {
			continue
		}
		seen[key] = true
		kept = append(kept, cand)
	}
	return kept
}
