package assertion

import (
	"testing"
	"testing/quick"
)

func mk(cons Prop, sup int, ants ...Prop) *Assertion {
	a := &Assertion{Output: cons.Signal, Antecedent: ants, Consequent: cons, Support: sup}
	a.Normalize()
	return a
}

func TestEvaluateMetrics(t *testing.T) {
	a := mk(P("z", 2, 1, 1), 5, P("a", 0, 1, 1), P("b", 1, 0, 1))
	m := Evaluate(a)
	if m.Complexity != 2 {
		t.Errorf("complexity %d", m.Complexity)
	}
	if m.InputSpace != 0.25 {
		t.Errorf("input space %f", m.InputSpace)
	}
	if m.Support != 5 {
		t.Errorf("support %d", m.Support)
	}
	if m.TemporalDepth != 2 {
		t.Errorf("temporal depth %d", m.TemporalDepth)
	}
}

func TestRankPrefersGeneralAssertions(t *testing.T) {
	general := mk(P("z", 0, 1, 1), 10, P("a", 0, 1, 1))
	specific := mk(P("z", 0, 1, 1), 1, P("a", 0, 1, 1), P("b", 0, 1, 1), P("c", 0, 1, 1))
	ranked := Rank([]*Assertion{specific, general})
	if ranked[0] != general {
		t.Error("general assertion should rank first")
	}
	// Rank must not mutate the input slice order.
	in := []*Assertion{specific, general}
	Rank(in)
	if in[0] != specific {
		t.Error("Rank mutated its input")
	}
}

func TestSubsumes(t *testing.T) {
	broad := mk(P("z", 1, 0, 1), 4, P("a", 0, 1, 1))
	narrow := mk(P("z", 1, 0, 1), 1, P("a", 0, 1, 1), P("b", 0, 0, 1))
	if !Subsumes(broad, narrow) {
		t.Error("broad should subsume narrow")
	}
	if Subsumes(narrow, broad) {
		t.Error("narrow must not subsume broad")
	}
	// Different consequent value: no subsumption.
	other := mk(P("z", 1, 1, 1), 1, P("a", 0, 1, 1), P("b", 0, 0, 1))
	if Subsumes(broad, other) {
		t.Error("different consequent must not be subsumed")
	}
	// Different antecedent value: no subsumption.
	diff := mk(P("z", 1, 0, 1), 1, P("a", 0, 0, 1), P("b", 0, 0, 1))
	if Subsumes(broad, diff) {
		t.Error("a=1 does not imply a=0 paths")
	}
	// Self-subsumption holds (used by duplicate elimination).
	if !Subsumes(broad, broad) {
		t.Error("assertion should subsume itself")
	}
}

func TestReduceSuite(t *testing.T) {
	broad := mk(P("z", 1, 0, 1), 4, P("a", 0, 1, 1))
	narrow := mk(P("z", 1, 0, 1), 1, P("a", 0, 1, 1), P("b", 0, 0, 1))
	dup := mk(P("z", 1, 0, 1), 4, P("a", 0, 1, 1))
	unrelated := mk(P("z", 1, 1, 1), 2, P("c", 0, 1, 1))
	out := ReduceSuite([]*Assertion{narrow, broad, dup, unrelated})
	if len(out) != 2 {
		t.Fatalf("reduced suite size %d want 2: %v", len(out), out)
	}
	keys := map[string]bool{}
	for _, a := range out {
		keys[a.Key()] = true
	}
	if !keys[broad.Key()] || !keys[unrelated.Key()] {
		t.Errorf("wrong survivors: %v", out)
	}
}

func TestQuickSubsumptionReflexiveAndAntisymmetric(t *testing.T) {
	f := func(sigBits uint8, vals uint8) bool {
		// Build two assertions over up to 4 atoms; a gets a subset of b's.
		var all []Prop
		names := []string{"p", "q", "r", "s"}
		for i, n := range names {
			all = append(all, P(n, 0, uint64(vals>>uint(i))&1, 1))
		}
		cons := P("z", 1, 1, 1)
		bAnts := all
		var aAnts []Prop
		for i := range all {
			if sigBits&(1<<uint(i)) != 0 {
				aAnts = append(aAnts, all[i])
			}
		}
		a := mk(cons, 1, aAnts...)
		b := mk(cons, 1, bAnts...)
		if !Subsumes(a, b) { // subset antecedent must subsume
			return false
		}
		if len(aAnts) < len(bAnts) && Subsumes(b, a) {
			return false
		}
		return Subsumes(a, a) && Subsumes(b, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1000: "1000"}
	for n, want := range cases {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d)=%q", n, got)
		}
	}
}
