// Package assertion defines the propositional/temporal assertions produced by
// the GoldMine miner: implications whose antecedent is a conjunction of
// (signal, cycle-offset, value) propositions and whose consequent is a single
// proposition about a design output. Assertions print in LTL, SVA and PSL
// syntax, matching the notations used in the paper.
package assertion

import (
	"fmt"
	"sort"
	"strings"
)

// Prop is one proposition: signal (or one bit of it) equals value at a cycle
// offset relative to the start of the mining window (offset 0 = earliest
// cycle). Bit < 0 refers to the whole signal; Bit >= 0 selects a single bit,
// which is how the miner expresses propositions about multi-bit signals.
type Prop struct {
	Signal string
	Bit    int
	Offset int
	Value  uint64
	Width  int
}

// P builds a whole-signal proposition (Bit = -1).
func P(signal string, offset int, value uint64, width int) Prop {
	return Prop{Signal: signal, Bit: -1, Offset: offset, Value: value, Width: width}
}

// PBit builds a single-bit proposition.
func PBit(signal string, bit, offset int, value uint64) Prop {
	return Prop{Signal: signal, Bit: bit, Offset: offset, Value: value & 1, Width: 1}
}

// Name renders the referenced variable, e.g. "req0" or "state[1]".
func (p Prop) Name() string {
	if p.Bit >= 0 {
		return fmt.Sprintf("%s[%d]", p.Signal, p.Bit)
	}
	return p.Signal
}

// String renders the proposition with X^offset temporal prefixes (LTL).
func (p Prop) String() string {
	body := p.body()
	return strings.Repeat("X", p.Offset) + body
}

func (p Prop) body() string {
	if p.Width <= 1 || p.Bit >= 0 {
		if p.Value == 0 {
			return "!" + p.Name()
		}
		return p.Name()
	}
	return fmt.Sprintf("%s==%d", p.Signal, p.Value)
}

// Assertion is an implication ant_1 ∧ ... ∧ ant_n => consequent.
type Assertion struct {
	// Output is the design output the assertion describes.
	Output string
	// Antecedent propositions sorted by (offset, signal).
	Antecedent []Prop
	// Consequent is the output proposition.
	Consequent Prop
	// Window is the mining window length w (antecedent offsets span 0..w).
	Window int

	// Confidence and Support are the statistical metrics from the miner:
	// Confidence is the fraction of supporting rows that satisfy the
	// consequent (candidate assertions require 1.0); Support is the number
	// of trace rows matching the antecedent.
	Confidence float64
	Support    int
}

// Normalize sorts the antecedent deterministically.
func (a *Assertion) Normalize() {
	sort.Slice(a.Antecedent, func(i, j int) bool {
		if a.Antecedent[i].Offset != a.Antecedent[j].Offset {
			return a.Antecedent[i].Offset < a.Antecedent[j].Offset
		}
		return a.Antecedent[i].Name() < a.Antecedent[j].Name()
	})
}

// Key is a canonical identity string used for deduplication.
func (a *Assertion) Key() string {
	b := &strings.Builder{}
	for _, p := range a.Antecedent {
		fmt.Fprintf(b, "%s@%d=%d&", p.Name(), p.Offset, p.Value)
	}
	fmt.Fprintf(b, ">%s@%d=%d", a.Consequent.Name(), a.Consequent.Offset, a.Consequent.Value)
	return b.String()
}

// CanonicalKey is the order-independent semantic identity of the assertion:
// the antecedent propositions sorted and deduplicated, then the consequent,
// each rendered as name@offset=value. Unlike Key it does not depend on the
// stored antecedent order (and never mutates the assertion), so two
// assertions mined by different outputs' refinement runs — or regenerated
// across iterations — compare equal exactly when the model checker would
// treat them identically. Statistical metadata (Confidence, Support) and the
// mining window are deliberately excluded: they do not affect the verdict.
// The verdict cache keys on this plus a design/options fingerprint.
func (a *Assertion) CanonicalKey() string {
	parts := make([]string, 0, len(a.Antecedent))
	for _, p := range a.Antecedent {
		parts = append(parts, fmt.Sprintf("%s@%d=%d", p.Name(), p.Offset, p.Value))
	}
	sort.Strings(parts)
	b := &strings.Builder{}
	prev := ""
	for _, s := range parts {
		if s == prev {
			continue // duplicated proposition: same constraint
		}
		b.WriteString(s)
		b.WriteByte('&')
		prev = s
	}
	fmt.Fprintf(b, ">%s@%d=%d", a.Consequent.Name(), a.Consequent.Offset, a.Consequent.Value)
	return b.String()
}

// String renders the assertion in LTL notation, e.g.
// "req0 && X(!req1) ==> XX(!gnt0)".
func (a *Assertion) String() string {
	if len(a.Antecedent) == 0 {
		return "true ==> " + ltlProp(a.Consequent)
	}
	parts := make([]string, len(a.Antecedent))
	for i, p := range a.Antecedent {
		parts[i] = ltlProp(p)
	}
	return strings.Join(parts, " && ") + " ==> " + ltlProp(a.Consequent)
}

func ltlProp(p Prop) string {
	if p.Offset == 0 {
		return p.body()
	}
	return strings.Repeat("X", p.Offset) + "(" + p.body() + ")"
}

// SVA renders the assertion as a SystemVerilog concurrent assertion body.
func (a *Assertion) SVA(clock string) string {
	if clock == "" {
		clock = "clk"
	}
	byOffset := a.propsByOffset()
	var seq []string
	last := 0
	first := true
	for _, grp := range byOffset {
		gap := grp.offset - last
		var conj []string
		for _, p := range grp.props {
			conj = append(conj, svaProp(p))
		}
		term := strings.Join(conj, " && ")
		if first {
			seq = append(seq, term)
			first = false
		} else {
			seq = append(seq, fmt.Sprintf("##%d %s", gap, term))
		}
		last = grp.offset
	}
	ant := strings.Join(seq, " ")
	if ant == "" {
		ant = "1'b1"
	}
	gap := a.Consequent.Offset - last
	cons := svaProp(a.Consequent)
	var imp string
	if gap == 0 {
		imp = fmt.Sprintf("%s |-> %s", ant, cons)
	} else {
		imp = fmt.Sprintf("%s |-> ##%d %s", ant, gap, cons)
	}
	return fmt.Sprintf("assert property (@(posedge %s) %s);", clock, imp)
}

// PSL renders the assertion in PSL syntax.
func (a *Assertion) PSL(clock string) string {
	if clock == "" {
		clock = "clk"
	}
	body := a.String()
	body = strings.ReplaceAll(body, "==>", "->")
	return fmt.Sprintf("assert always (%s) @(posedge %s);", body, clock)
}

func svaProp(p Prop) string {
	if p.Width <= 1 || p.Bit >= 0 {
		if p.Value == 0 {
			return "!" + p.Name()
		}
		return p.Name()
	}
	return fmt.Sprintf("(%s == %d)", p.Signal, p.Value)
}

type offsetGroup struct {
	offset int
	props  []Prop
}

func (a *Assertion) propsByOffset() []offsetGroup {
	m := map[int][]Prop{}
	for _, p := range a.Antecedent {
		m[p.Offset] = append(m[p.Offset], p)
	}
	var offs []int
	for o := range m {
		offs = append(offs, o)
	}
	sort.Ints(offs)
	var out []offsetGroup
	for _, o := range offs {
		ps := m[o]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Name() < ps[j].Name() })
		out = append(out, offsetGroup{offset: o, props: ps})
	}
	return out
}

// Signals returns the sorted, deduplicated names of the design signals the
// assertion references (antecedent and consequent). The corpus layer seeds
// cone-of-influence cluster signatures from this set.
func (a *Assertion) Signals() []string {
	seen := map[string]bool{a.Consequent.Signal: true}
	out := []string{a.Consequent.Signal}
	for _, p := range a.Antecedent {
		if !seen[p.Signal] {
			seen[p.Signal] = true
			out = append(out, p.Signal)
		}
	}
	sort.Strings(out)
	return out
}

// Depth returns the number of antecedent propositions (the decision-tree
// depth of the leaf that produced this assertion). The paper's input-space
// coverage of a true assertion is 1/2^Depth.
func (a *Assertion) Depth() int { return len(a.Antecedent) }

// InputSpaceFraction is the fraction of the (windowed) input space the
// assertion covers: 1/2^depth, per Section 7.1 of the paper.
func (a *Assertion) InputSpaceFraction() float64 {
	f := 1.0
	for i := 0; i < a.Depth(); i++ {
		f /= 2
	}
	return f
}
