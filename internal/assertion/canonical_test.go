package assertion

import "testing"

// Edge cases of the canonical identity and subsumption APIs — the contracts
// the corpus layer's cross-run dedup and cluster collapse are built on.

func TestCanonicalKeyCommutedAntecedents(t *testing.T) {
	a := &Assertion{
		Output:     "gnt0",
		Antecedent: []Prop{P("req0", 0, 1, 1), P("req1", 1, 0, 1)},
		Consequent: P("gnt0", 2, 0, 1),
	}
	b := &Assertion{
		Output:     "gnt0",
		Antecedent: []Prop{P("req1", 1, 0, 1), P("req0", 0, 1, 1)},
		Consequent: P("gnt0", 2, 0, 1),
	}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("commuted antecedents diverge:\n%q\n%q", a.CanonicalKey(), b.CanonicalKey())
	}
	// Key (order-dependent) must still see them as different orderings.
	if a.Key() == b.Key() {
		t.Errorf("order-dependent Key collapsed commuted antecedents: %q", a.Key())
	}
	// CanonicalKey must not have normalized the assertion as a side effect.
	if b.Antecedent[0].Signal != "req1" {
		t.Errorf("CanonicalKey mutated the antecedent order")
	}
}

func TestCanonicalKeyBitVsWholeSignalNoCollision(t *testing.T) {
	// A whole multi-bit signal equal to 1 and bit 0 of the same signal equal
	// to 1 are different constraints (the former pins the upper bits to 0) —
	// their keys must not collide.
	whole := &Assertion{
		Antecedent: []Prop{P("state", 0, 1, 2)},
		Consequent: P("out", 1, 1, 1),
	}
	bit := &Assertion{
		Antecedent: []Prop{PBit("state", 0, 0, 1)},
		Consequent: P("out", 1, 1, 1),
	}
	if whole.CanonicalKey() == bit.CanonicalKey() {
		t.Errorf("sig@0=1 and sig[0]@0=1 collide: %q", whole.CanonicalKey())
	}
}

func TestCanonicalKeyDuplicatePropsDeduped(t *testing.T) {
	once := &Assertion{
		Antecedent: []Prop{P("req0", 0, 1, 1)},
		Consequent: P("gnt0", 1, 1, 1),
	}
	twice := &Assertion{
		Antecedent: []Prop{P("req0", 0, 1, 1), P("req0", 0, 1, 1)},
		Consequent: P("gnt0", 1, 1, 1),
	}
	if once.CanonicalKey() != twice.CanonicalKey() {
		t.Errorf("duplicated proposition changes the key:\n%q\n%q",
			once.CanonicalKey(), twice.CanonicalKey())
	}
}

func TestSubsumesSelf(t *testing.T) {
	a := paperA5()
	if !Subsumes(a, a) {
		t.Errorf("assertion does not subsume itself")
	}
}

func TestSubsumesBitVsWholeSignal(t *testing.T) {
	// Antecedent {state==1} (whole 2-bit signal) is NOT a subset of
	// {state[0]} even though both mention "state" with value 1: propositions
	// compare by rendered name, which distinguishes the bit-select.
	whole := &Assertion{
		Antecedent: []Prop{P("state", 0, 1, 2)},
		Consequent: P("out", 1, 1, 1),
	}
	bit := &Assertion{
		Antecedent: []Prop{PBit("state", 0, 0, 1)},
		Consequent: P("out", 1, 1, 1),
	}
	if Subsumes(whole, bit) || Subsumes(bit, whole) {
		t.Errorf("whole-signal and bit-select propositions treated as equal")
	}
}

func TestSubsumesCommutedSuperset(t *testing.T) {
	// A one-prop assertion subsumes a two-prop one regardless of the
	// superset's antecedent order, and never the other way around.
	gen := &Assertion{
		Antecedent: []Prop{P("req0", 0, 1, 1)},
		Consequent: P("gnt0", 2, 0, 1),
	}
	for _, spec := range []*Assertion{
		{
			Antecedent: []Prop{P("req0", 0, 1, 1), P("req1", 1, 1, 1)},
			Consequent: P("gnt0", 2, 0, 1),
		},
		{
			Antecedent: []Prop{P("req1", 1, 1, 1), P("req0", 0, 1, 1)},
			Consequent: P("gnt0", 2, 0, 1),
		},
	} {
		if !Subsumes(gen, spec) {
			t.Errorf("general %s does not subsume specific %s", gen, spec)
		}
		if Subsumes(spec, gen) {
			t.Errorf("specific %s subsumes general %s", spec, gen)
		}
	}
}

func TestSubsumesDifferentConsequentValue(t *testing.T) {
	a := &Assertion{
		Antecedent: []Prop{P("req0", 0, 1, 1)},
		Consequent: P("gnt0", 1, 1, 1),
	}
	b := &Assertion{
		Antecedent: []Prop{P("req0", 0, 1, 1)},
		Consequent: P("gnt0", 1, 0, 1),
	}
	if Subsumes(a, b) || Subsumes(b, a) {
		t.Errorf("assertions with opposite consequent values subsume each other")
	}
}
