package assertion

import (
	"strings"
	"testing"
)

func paperA5() *Assertion {
	// A5 from the paper: req0 && X(req1) ==> XX(!gnt0)
	return &Assertion{
		Output: "gnt0",
		Antecedent: []Prop{
			P("req0", 0, 1, 1),
			P("req1", 1, 1, 1),
		},
		Consequent: P("gnt0", 2, 0, 1),
		Window:     1,
	}
}

func TestLTLString(t *testing.T) {
	a := paperA5()
	s := a.String()
	want := "req0 && X(req1) ==> XX(!gnt0)"
	if s != want {
		t.Errorf("LTL %q want %q", s, want)
	}
}

func TestLTLNegatedAtoms(t *testing.T) {
	a := &Assertion{
		Output: "gnt0",
		Antecedent: []Prop{
			P("req0", 0, 0, 1),
		},
		Consequent: P("gnt0", 1, 1, 1),
	}
	if got := a.String(); got != "!req0 ==> X(gnt0)" {
		t.Errorf("got %q", got)
	}
}

func TestMultiBitProp(t *testing.T) {
	a := &Assertion{
		Output: "y",
		Antecedent: []Prop{
			P("state", 0, 3, 2),
		},
		Consequent: P("y", 0, 1, 1),
	}
	if got := a.String(); got != "state==3 ==> y" {
		t.Errorf("got %q", got)
	}
}

func TestEmptyAntecedent(t *testing.T) {
	a := &Assertion{
		Output:     "z",
		Consequent: P("z", 0, 0, 1),
	}
	if got := a.String(); got != "true ==> !z" {
		t.Errorf("got %q", got)
	}
}

func TestSVA(t *testing.T) {
	a := paperA5()
	s := a.SVA("clk")
	for _, want := range []string{"assert property", "@(posedge clk)", "req0", "##1 req1", "|-> ##1 !gnt0"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVA %q missing %q", s, want)
		}
	}
}

func TestSVASameCycleImplication(t *testing.T) {
	a := &Assertion{
		Output: "y",
		Antecedent: []Prop{
			P("a", 0, 1, 1),
			P("b", 0, 0, 1),
		},
		Consequent: P("y", 0, 1, 1),
	}
	s := a.SVA("")
	if !strings.Contains(s, "a && !b |-> y") {
		t.Errorf("SVA %q", s)
	}
}

func TestPSL(t *testing.T) {
	a := paperA5()
	s := a.PSL("clk")
	if !strings.Contains(s, "->") || strings.Contains(s, "==>") {
		t.Errorf("PSL should use ->: %q", s)
	}
	if !strings.Contains(s, "assert always") {
		t.Errorf("PSL %q", s)
	}
}

func TestKeyAndNormalize(t *testing.T) {
	a := paperA5()
	b := &Assertion{
		Output: "gnt0",
		Antecedent: []Prop{
			P("req1", 1, 1, 1),
			P("req0", 0, 1, 1),
		},
		Consequent: P("gnt0", 2, 0, 1),
		Window:     1,
	}
	a.Normalize()
	b.Normalize()
	if a.Key() != b.Key() {
		t.Errorf("keys differ after normalize: %q vs %q", a.Key(), b.Key())
	}
	c := paperA5()
	c.Consequent.Value = 1
	c.Normalize()
	if c.Key() == a.Key() {
		t.Error("different consequents must have different keys")
	}
}

func TestDepthAndCoverage(t *testing.T) {
	a := paperA5()
	if a.Depth() != 2 {
		t.Errorf("depth %d", a.Depth())
	}
	if f := a.InputSpaceFraction(); f != 0.25 {
		t.Errorf("fraction %f want 0.25", f)
	}
	empty := &Assertion{Consequent: P("z", 0, 0, 1)}
	if f := empty.InputSpaceFraction(); f != 1.0 {
		t.Errorf("empty antecedent fraction %f want 1", f)
	}
}

func TestPropString(t *testing.T) {
	p := P("a", 2, 1, 1)
	if p.String() != "XXa" {
		t.Errorf("got %q", p.String())
	}
}
