package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	stop() // idempotent: second call must not truncate or re-write

	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "c"), ""); err == nil {
		t.Error("want error for uncreatable cpu profile path")
	}
}
