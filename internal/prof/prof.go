// Package prof wires runtime/pprof CPU and heap profiling into the
// command-line tools.
//
// The CLIs exit through os.Exit on both the error and the interrupt (exit
// code 2) paths, which skips deferred calls, so Start returns an explicit
// stop function the caller must invoke before every exit point. stop is
// idempotent: defer it for the normal return path and call it again right
// before os.Exit without double-writing the profiles.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile dump to
// memPath when the returned stop function runs. Either path may be empty to
// disable that profile; with both empty, stop is a no-op. On error every
// resource already acquired is released before returning.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "prof: mem profile:", err)
					return
				}
				defer f.Close()
				// Bring the heap statistics up to date so the profile shows
				// live objects, not whatever the last background GC saw.
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "prof: mem profile:", err)
				}
			}
		})
	}, nil
}
