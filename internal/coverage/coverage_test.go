package coverage

import (
	"math/rand"
	"strings"
	"testing"

	"goldmine/internal/designs"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// randomSuite is a local deterministic stimulus source (stimgen now imports
// this package, so these in-package tests cannot import stimgen back).
func randomSuite(d *rtl.Design, lanes, cycles int, seed int64, resetCycles int) []sim.Stimulus {
	out := make([]sim.Stimulus, lanes)
	for l := range out {
		rng := rand.New(rand.NewSource(seed + int64(l)))
		stim := make(sim.Stimulus, 0, cycles)
		for c := 0; c < cycles; c++ {
			iv := sim.InputVec{}
			for _, in := range d.Inputs() {
				iv[in.Name] = rng.Uint64() & rtl.Mask(in.Width)
			}
			if c < resetCycles {
				if _, ok := iv["rst"]; ok {
					iv["rst"] = 1
				}
				if _, ok := iv["reset"]; ok {
					iv["reset"] = 1
				}
			}
			stim = append(stim, iv)
		}
		out[l] = stim
	}
	return out
}

const arbiterSrc = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk)
    if (rst) begin gnt0 <= 0; gnt1 <= 0; end
    else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule`

func mustDesign(t *testing.T, src string) *rtl.Design {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestZeroCoverageInitially(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	r := c.Report()
	if r.Line.Covered != 0 || r.Toggle.Covered != 0 {
		t.Errorf("fresh collector should be empty: %s", r)
	}
	if r.Cycles != 0 {
		t.Errorf("cycles %d", r.Cycles)
	}
}

func TestBranchCoverageNeedsBothArms(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	// Only reset cycles: the rst-taken branch is covered, not-taken is not.
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"rst": 1}}}); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.Branch.Covered != 1 || r.Branch.Total != 2 {
		t.Errorf("branch %d/%d want 1/2", r.Branch.Covered, r.Branch.Total)
	}
	// Now run without reset.
	if err := c.RunSuite([]sim.Stimulus{{{"req0": 1}, {"req0": 1}}}); err != nil {
		t.Fatal(err)
	}
	r = c.Report()
	if r.Branch.Covered != 2 {
		t.Errorf("branch %d/%d want 2/2", r.Branch.Covered, r.Branch.Total)
	}
}

func TestToggleCoverage(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	// req0 0->1->0 and gnt0 follows: several toggles observed.
	suite := []sim.Stimulus{{
		{"rst": 1},
		{"req0": 1},
		{"req0": 1},
		{},
		{},
	}}
	if err := c.RunSuite(suite); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.Toggle.Covered == 0 {
		t.Fatal("no toggles observed")
	}
	// 5 toggle signals (rst, req0, req1, gnt0, gnt1), 2 directions each.
	if r.Toggle.Total != 10 {
		t.Errorf("toggle total %d want 10", r.Toggle.Total)
	}
}

func TestToggleNotCountedAcrossRuns(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	// Run 1 ends with req0=1; run 2 starts with req0=0. Without BeginRun
	// isolation this would count a spurious fall.
	suite := []sim.Stimulus{
		{{"req0": 1}},
		{{"req0": 0}},
	}
	if err := c.RunSuite(suite); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.Toggle.Covered != 0 {
		t.Errorf("cross-run toggles counted: %d", r.Toggle.Covered)
	}
}

func TestToggleNotCountedAcrossRunsCompiled(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	// Same isolation through the compiled engine: RunSuiteCompiled calls
	// BeginRun per stimulus, so run 1's last row must not pair with run 2's
	// first row.
	suite := []sim.Stimulus{
		{{"req0": 1}},
		{{"req0": 0}},
	}
	if err := c.RunSuiteCompiled(suite); err != nil {
		t.Fatal(err)
	}
	if r := c.Report(); r.Toggle.Covered != 0 {
		t.Errorf("cross-run toggles counted through compiled engine: %d", r.Toggle.Covered)
	}
}

func TestConditionCoverageBothValues(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	// Hold rst=1 forever: rst condition only seen true.
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"rst": 1}}}); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.Cond.Covered != 0 {
		t.Errorf("condition covered with single polarity: %d", r.Cond.Covered)
	}
	if err := c.RunSuite([]sim.Stimulus{{{}, {}}}); err != nil {
		t.Fatal(err)
	}
	r = c.Report()
	if r.Cond.Covered == 0 {
		t.Error("condition not covered after both polarities")
	}
}

func TestFSMCoverage(t *testing.T) {
	src := `
module fsm(input clk, rst, go, output reg busy);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else case (state)
      2'd0: if (go) state <= 2'd1;
      2'd1: state <= 2'd2;
      2'd2: state <= 2'd0;
      default: state <= 2'd0;
    endcase
  end
  always @(*) busy = (state != 2'd0);
endmodule`
	d := mustDesign(t, src)
	c := New(d)
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"go": 1}}}); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.FSM.Total != 3 {
		t.Fatalf("fsm states %d want 3", r.FSM.Total)
	}
	// Visited only state 0 so far (state 1 is entered at the edge after the
	// last observed cycle).
	if r.FSM.Covered != 1 {
		t.Errorf("fsm covered %d want 1", r.FSM.Covered)
	}
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"go": 1}, {}, {}, {}}}); err != nil {
		t.Fatal(err)
	}
	r = c.Report()
	if r.FSM.Covered != 3 {
		t.Errorf("fsm covered %d want 3 after full walk", r.FSM.Covered)
	}
}

func TestFSMTransitionsRecordTrueArcs(t *testing.T) {
	// Regression: Observe used to update the toggle prev storage before the
	// FSM loop read the previous state from it, so every recorded transition
	// was the self-loop (v, v). The walk 0→1→2→0 must record the real arcs.
	src := `
module fsm(input clk, rst, go, output reg busy);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else case (state)
      2'd0: if (go) state <= 2'd1;
      2'd1: state <= 2'd2;
      2'd2: state <= 2'd0;
      default: state <= 2'd0;
    endcase
  end
  always @(*) busy = (state != 2'd0);
endmodule`
	d := mustDesign(t, src)
	c := New(d)
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"go": 1}, {}, {}, {}}}); err != nil {
		t.Fatal(err)
	}
	st := c.State()
	if len(st.FSMTrans) != 1 {
		t.Fatalf("fsm count %d want 1", len(st.FSMTrans))
	}
	for _, arc := range [][2]uint64{{0, 1}, {1, 2}, {2, 0}} {
		if !st.FSMTrans[0][arc] {
			t.Errorf("arc %d->%d not recorded: %v", arc[0], arc[1], st.FSMTrans[0])
		}
	}
	if st.FSMTrans[0][[2]uint64{1, 1}] || st.FSMTrans[0][[2]uint64{2, 2}] {
		t.Errorf("spurious self-loop recorded: %v", st.FSMTrans[0])
	}
}

func TestFSMTransitionsNotPairedAcrossRuns(t *testing.T) {
	src := `
module fsm(input clk, rst, go, output reg busy);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else case (state)
      2'd0: if (go) state <= 2'd1;
      2'd1: state <= 2'd2;
      2'd2: state <= 2'd0;
      default: state <= 2'd0;
    endcase
  end
  always @(*) busy = (state != 2'd0);
endmodule`
	d := mustDesign(t, src)
	c := New(d)
	// Run 1 ends in state 1; run 2 starts (after reset) in state 0. The
	// boundary must not record a 1->0 arc — only the in-run 0->1 arcs.
	suite := []sim.Stimulus{
		{{"rst": 1}, {"go": 1}, {}},
		{{"rst": 1}, {"go": 1}, {}},
	}
	if err := c.RunSuite(suite); err != nil {
		t.Fatal(err)
	}
	st := c.State()
	if st.FSMTrans[0][[2]uint64{1, 0}] {
		t.Errorf("cross-run arc 1->0 recorded: %v", st.FSMTrans[0])
	}
	if !st.FSMTrans[0][[2]uint64{0, 1}] {
		t.Errorf("in-run arc 0->1 missing: %v", st.FSMTrans[0])
	}
}

func TestStateSnapshotIsCopy(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"req0": 1}, {}}}); err != nil {
		t.Fatal(err)
	}
	st := c.State()
	before := c.Report()
	// Mutating the snapshot must not leak back into the collector.
	for i := range st.SeenTrue {
		st.SeenTrue[i] = !st.SeenTrue[i]
	}
	for i := range st.Rise {
		for b := range st.Rise[i] {
			st.Rise[i][b] = !st.Rise[i][b]
		}
	}
	if after := c.Report(); before != after {
		t.Errorf("snapshot mutation leaked: %s vs %s", before, after)
	}
	if st.Cycles != before.Cycles {
		t.Errorf("snapshot cycles %d want %d", st.Cycles, before.Cycles)
	}
}

func TestFullRandomCoverageApproaches100(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	var stim sim.Stimulus
	stim = append(stim, sim.InputVec{"rst": 1})
	// Deterministic sweep through all 8 input combinations repeatedly.
	for i := 0; i < 64; i++ {
		stim = append(stim, sim.InputVec{
			"rst":  uint64(i>>5) & 1 & uint64(i%13/12), // rare reset
			"req0": uint64(i) & 1,
			"req1": uint64(i>>1) & 1,
		})
	}
	if err := c.RunSuite([]sim.Stimulus{stim}); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.Line.Pct() != 100 {
		t.Errorf("line %.1f", r.Line.Pct())
	}
	if r.Branch.Pct() != 100 {
		t.Errorf("branch %.1f", r.Branch.Pct())
	}
	if r.Cond.Pct() != 100 {
		t.Errorf("cond %.1f: uncovered %v", r.Cond.Pct(), uncoveredOf(d, c))
	}
}

// uncoveredOf lists uncovered point descriptions via the structured
// PointCovered API (the retired string helper, reconstructed for tests).
func uncoveredOf(d *rtl.Design, c *Collector) []string {
	var out []string
	for i, p := range d.Cover.Points {
		if !c.PointCovered(i) {
			out = append(out, p.String())
		}
	}
	return out
}

func TestMetricString(t *testing.T) {
	m := Metric{Covered: 1, Total: 2}
	if m.String() != "50.00%" {
		t.Errorf("got %s", m.String())
	}
	empty := Metric{}
	if empty.String() != "X" || empty.Pct() != 100 || empty.Defined() {
		t.Errorf("empty metric: %s %f", empty.String(), empty.Pct())
	}
}

func TestReportString(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	s := c.Report().String()
	for _, k := range []string{"line=", "branch=", "cond=", "toggle="} {
		if !strings.Contains(s, k) {
			t.Errorf("report %q missing %q", s, k)
		}
	}
}

func TestUncoveredPointsShrink(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	c := New(d)
	before := len(uncoveredOf(d, c))
	if err := c.RunSuite([]sim.Stimulus{{{"rst": 1}, {"req0": 1}, {}}}); err != nil {
		t.Fatal(err)
	}
	after := len(uncoveredOf(d, c))
	if after >= before {
		t.Errorf("uncovered points did not shrink: %d -> %d", before, after)
	}
}

func TestRunSuiteCompiledMatchesInterpreter(t *testing.T) {
	// Identical coverage reports from the interpreter and the compiled
	// machine over every bundled design: the observer hook must see the
	// same settled environment either way.
	for _, b := range designs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			d, err := b.Design()
			if err != nil {
				t.Fatal(err)
			}
			suite := randomSuite(d, 4, 150, 23, 2)
			ci := New(d)
			if err := ci.RunSuite(suite); err != nil {
				t.Fatal(err)
			}
			cc := New(d)
			if err := cc.RunSuiteCompiled(suite); err != nil {
				t.Fatal(err)
			}
			ri, rc := ci.Report(), cc.Report()
			if ri != rc {
				t.Errorf("coverage diverges:\ninterpreter: %s\ncompiled:    %s", ri, rc)
			}
			ui, uc := uncoveredOf(d, ci), uncoveredOf(d, cc)
			if len(ui) != len(uc) {
				t.Fatalf("uncovered point counts differ: %d vs %d", len(ui), len(uc))
			}
			for i := range ui {
				if ui[i] != uc[i] {
					t.Errorf("uncovered point %d: %q vs %q", i, ui[i], uc[i])
				}
			}
		})
	}
}
