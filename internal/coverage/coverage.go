// Package coverage measures the standard RTL coverage metrics reported in the
// paper's tables: line, branch, condition, expression, toggle and FSM
// coverage. It consumes the instrumentation points recorded by the rtl
// elaborator and observes simulation cycles through the simulator's observer
// hook, so coverage is collected during the same evaluation the traces come
// from.
package coverage

import (
	"fmt"
	"strings"

	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/simc"
)

// Collector accumulates coverage over one or more simulation runs.
type Collector struct {
	d *rtl.Design

	// Per instrumentation point: whether value 1 / value 0 was observed.
	seenTrue  []bool
	seenFalse []bool

	// Toggle coverage: per signal, per bit, rising/falling transitions seen.
	toggleSigs []*rtl.Signal
	rise, fall [][]bool
	prev       []uint64
	hasPrev    bool

	// FSM coverage: states observed per detected FSM register. fsmPrev is
	// the previous cycle's state, tracked separately from the toggle prev
	// storage so transition recording cannot depend on loop ordering.
	fsmSeen  []map[uint64]bool
	fsmTrans []map[[2]uint64]bool
	fsmPrev  []uint64

	Cycles int
}

// New creates a collector for a design.
func New(d *rtl.Design) *Collector {
	ci := d.Cover
	c := &Collector{
		d:          d,
		seenTrue:   make([]bool, len(ci.Points)),
		seenFalse:  make([]bool, len(ci.Points)),
		toggleSigs: ci.ToggleSignals,
	}
	c.rise = make([][]bool, len(c.toggleSigs))
	c.fall = make([][]bool, len(c.toggleSigs))
	for i, s := range c.toggleSigs {
		c.rise[i] = make([]bool, s.Width)
		c.fall[i] = make([]bool, s.Width)
	}
	c.prev = make([]uint64, len(c.toggleSigs))
	c.fsmSeen = make([]map[uint64]bool, len(ci.FSMs))
	c.fsmTrans = make([]map[[2]uint64]bool, len(ci.FSMs))
	c.fsmPrev = make([]uint64, len(ci.FSMs))
	for i := range ci.FSMs {
		c.fsmSeen[i] = map[uint64]bool{}
		c.fsmTrans[i] = map[[2]uint64]bool{}
	}
	return c
}

// BeginRun marks a reset boundary: toggle and FSM transition tracking must
// not pair cycles across independent runs.
func (c *Collector) BeginRun() { c.hasPrev = false }

// Observe consumes one settled simulation cycle.
func (c *Collector) Observe(env rtl.Env) {
	c.Cycles++
	for i, p := range c.d.Cover.Points {
		if rtl.Eval(p.Expr, env)&1 == 1 {
			c.seenTrue[i] = true
		} else {
			c.seenFalse[i] = true
		}
	}
	for i, s := range c.toggleSigs {
		v := env.Get(s) & rtl.Mask(s.Width)
		if c.hasPrev {
			diff := v ^ c.prev[i]
			for b := 0; b < s.Width; b++ {
				if (diff>>uint(b))&1 == 1 {
					if (v>>uint(b))&1 == 1 {
						c.rise[i][b] = true
					} else {
						c.fall[i][b] = true
					}
				}
			}
		}
		c.prev[i] = v
	}
	for i, f := range c.d.Cover.FSMs {
		v := env.Get(f.Reg) & rtl.Mask(f.Reg.Width)
		if c.hasPrev {
			// Record the transition from the previous cycle's state.
			c.fsmTrans[i][[2]uint64{c.fsmPrev[i], v}] = true
		}
		c.fsmSeen[i][v] = true
		c.fsmPrev[i] = v
	}
	c.hasPrev = true
}

// RunSuite simulates every stimulus in the suite from reset, collecting
// coverage across all of them.
func (c *Collector) RunSuite(suite []sim.Stimulus) error {
	s, err := sim.New(c.d)
	if err != nil {
		return err
	}
	s.Observe(c.Observe)
	for _, stim := range suite {
		c.BeginRun()
		s.Reset()
		for _, iv := range stim {
			if err := s.Step(iv, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunSuiteCompiled is RunSuite on the compiled simulator: the design is
// elaborated once into an instruction tape and every stimulus replays on the
// same machine. Coverage observations are identical to RunSuite because the
// observer hook fires at the same point (after combinational settling) over
// an equivalent environment view.
func (c *Collector) RunSuiteCompiled(suite []sim.Stimulus) error {
	p, err := simc.Compile(c.d)
	if err != nil {
		return err
	}
	m := simc.NewMachine(p)
	m.Observe(c.Observe)
	for _, stim := range suite {
		c.BeginRun()
		m.Reset()
		for _, iv := range stim {
			if err := m.Step(iv, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Metric is covered/total with a percentage view.
type Metric struct {
	Covered, Total int
}

// Pct returns the percentage (100 for an empty denominator).
func (m Metric) Pct() float64 {
	if m.Total == 0 {
		return 100
	}
	return 100 * float64(m.Covered) / float64(m.Total)
}

// Defined reports whether the metric has anything to cover.
func (m Metric) Defined() bool { return m.Total > 0 }

func (m Metric) String() string {
	if !m.Defined() {
		return "X"
	}
	return fmt.Sprintf("%.2f%%", m.Pct())
}

// Report is the coverage summary across all metrics.
type Report struct {
	Line, Branch, Cond, Expr, Toggle, FSM Metric
	Cycles                                int
}

// Report computes the current coverage summary.
func (c *Collector) Report() Report {
	var r Report
	r.Cycles = c.Cycles
	for i, p := range c.d.Cover.Points {
		var m *Metric
		var covered bool
		switch p.Kind {
		case rtl.PointLine:
			m, covered = &r.Line, c.seenTrue[i]
		case rtl.PointBranch:
			m, covered = &r.Branch, c.seenTrue[i]
		case rtl.PointCondition:
			m, covered = &r.Cond, c.seenTrue[i] && c.seenFalse[i]
		case rtl.PointMinterm:
			m, covered = &r.Expr, c.seenTrue[i]
		default:
			m, covered = &r.Expr, c.seenTrue[i] && c.seenFalse[i]
		}
		m.Total++
		if covered {
			m.Covered++
		}
	}
	for i, s := range c.toggleSigs {
		for b := 0; b < s.Width; b++ {
			r.Toggle.Total += 2
			if c.rise[i][b] {
				r.Toggle.Covered++
			}
			if c.fall[i][b] {
				r.Toggle.Covered++
			}
		}
	}
	for i, f := range c.d.Cover.FSMs {
		r.FSM.Total += len(f.States)
		for _, st := range f.States {
			if c.fsmSeen[i][st] {
				r.FSM.Covered++
			}
		}
	}
	return r
}

// State is a read-only snapshot of the collector's raw observations, the
// input to structured hole extraction (internal/holes). All slices and maps
// are deep copies: the collector may keep observing after the snapshot.
type State struct {
	Design *rtl.Design
	// SeenTrue/SeenFalse index rtl.CoverageInfo.Points.
	SeenTrue, SeenFalse []bool
	// ToggleSigs indexes Rise/Fall; Rise[i][b] reports a 0→1 transition
	// observed on bit b of ToggleSigs[i].
	ToggleSigs []*rtl.Signal
	Rise, Fall [][]bool
	// FSMSeen/FSMTrans index rtl.CoverageInfo.FSMs; FSMTrans keys are
	// {from, to} state pairs observed on adjacent cycles of one run.
	FSMSeen  []map[uint64]bool
	FSMTrans []map[[2]uint64]bool
	Cycles   int
}

// State snapshots the collector's observations.
func (c *Collector) State() State {
	st := State{
		Design:     c.d,
		SeenTrue:   append([]bool(nil), c.seenTrue...),
		SeenFalse:  append([]bool(nil), c.seenFalse...),
		ToggleSigs: append([]*rtl.Signal(nil), c.toggleSigs...),
		Rise:       make([][]bool, len(c.rise)),
		Fall:       make([][]bool, len(c.fall)),
		FSMSeen:    make([]map[uint64]bool, len(c.fsmSeen)),
		FSMTrans:   make([]map[[2]uint64]bool, len(c.fsmTrans)),
		Cycles:     c.Cycles,
	}
	for i := range c.rise {
		st.Rise[i] = append([]bool(nil), c.rise[i]...)
		st.Fall[i] = append([]bool(nil), c.fall[i]...)
	}
	for i := range c.fsmSeen {
		st.FSMSeen[i] = make(map[uint64]bool, len(c.fsmSeen[i]))
		for k, v := range c.fsmSeen[i] {
			st.FSMSeen[i][k] = v
		}
		st.FSMTrans[i] = make(map[[2]uint64]bool, len(c.fsmTrans[i]))
		for k, v := range c.fsmTrans[i] {
			st.FSMTrans[i][k] = v
		}
	}
	return st
}

// PointCovered reports whether instrumentation point i is covered under its
// kind's covering rule (condition/expression points need both polarities).
func (c *Collector) PointCovered(i int) bool {
	p := c.d.Cover.Points[i]
	if p.Kind == rtl.PointCondition || p.Kind == rtl.PointExpression {
		return c.seenTrue[i] && c.seenFalse[i]
	}
	return c.seenTrue[i]
}

// String renders the report as a one-line summary.
func (r Report) String() string {
	parts := []string{
		"line=" + r.Line.String(),
		"branch=" + r.Branch.String(),
		"cond=" + r.Cond.String(),
		"expr=" + r.Expr.String(),
		"toggle=" + r.Toggle.String(),
		"fsm=" + r.FSM.String(),
	}
	return strings.Join(parts, " ") + fmt.Sprintf(" (%d cycles)", r.Cycles)
}
