package cnf

import (
	"math/rand"
	"testing"

	"goldmine/internal/rtl"
	"goldmine/internal/sat"
	"goldmine/internal/sim"
)

// checkEquivalence unrolls the design T frames, pins the inputs to the given
// stimulus via assumptions, solves, and compares every signal at every frame
// against the simulator.
func checkEquivalence(t *testing.T, src string, stim sim.Stimulus) {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Simulate(d, stim)
	if err != nil {
		t.Fatal(err)
	}

	s := sat.New()
	u := NewUnroller(s, d)
	for i := 0; i < len(stim); i++ {
		u.AddFrame()
	}
	u.InitZero()

	var assumps []sat.Lit
	for ti, iv := range stim {
		for _, in := range d.Inputs() {
			vec, err := u.SignalVec(ti, in)
			if err != nil {
				t.Fatal(err)
			}
			val := iv[in.Name]
			for bit, lit := range vec {
				if (val>>uint(bit))&1 == 1 {
					assumps = append(assumps, lit)
				} else {
					assumps = append(assumps, lit.Neg())
				}
			}
		}
	}
	// Force encoding of every signal before solving so the model covers them.
	for ti := 0; ti < len(stim); ti++ {
		for _, sig := range trace.Signals {
			if _, err := u.SignalVec(ti, sig); err != nil {
				t.Fatalf("encode %s@%d: %v", sig.Name, ti, err)
			}
		}
	}
	if st := s.Solve(assumps...); st != sat.Sat {
		t.Fatalf("pinned-input instance must be SAT, got %v (%s)", st, s)
	}
	for ti := 0; ti < len(stim); ti++ {
		for _, sig := range trace.Signals {
			want, _ := trace.Value(ti, sig.Name)
			got, err := u.SignalModel(ti, sig)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s@%d: SAT=%d sim=%d", sig.Name, ti, got, want)
			}
		}
	}
}

func randomStim(d *rtl.Design, cycles int, seed int64) sim.Stimulus {
	rng := rand.New(rand.NewSource(seed))
	var stim sim.Stimulus
	for c := 0; c < cycles; c++ {
		iv := sim.InputVec{}
		for _, in := range d.Inputs() {
			iv[in.Name] = rng.Uint64() & rtl.Mask(in.Width)
		}
		stim = append(stim, iv)
	}
	return stim
}

const arbiterSrc = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk)
    if (rst) begin gnt0 <= 0; gnt1 <= 0; end
    else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule`

func TestArbiterEquivalence(t *testing.T) {
	d, _ := rtl.ElaborateSource(arbiterSrc)
	for seed := int64(0); seed < 5; seed++ {
		checkEquivalence(t, arbiterSrc, randomStim(d, 6, seed))
	}
}

func TestArithmeticEquivalence(t *testing.T) {
	src := `
module alu(input [3:0] a, b, input [1:0] op, output reg [3:0] y, output flag);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a ^ b;
    endcase
  end
  assign flag = (a == b) | (a < b);
endmodule`
	d, _ := rtl.ElaborateSource(src)
	for seed := int64(0); seed < 8; seed++ {
		checkEquivalence(t, src, randomStim(d, 1, seed))
	}
}

func TestMultiplyEquivalence(t *testing.T) {
	src := `
module mul(input [3:0] a, b, output [7:0] p);
  assign p = {4'b0, a} * {4'b0, b};
endmodule`
	d, _ := rtl.ElaborateSource(src)
	for seed := int64(0); seed < 10; seed++ {
		checkEquivalence(t, src, randomStim(d, 1, seed))
	}
}

func TestShiftEquivalence(t *testing.T) {
	src := `
module sh(input [7:0] a, input [2:0] n, output [7:0] l, r);
  assign l = a << n;
  assign r = a >> n;
endmodule`
	d, _ := rtl.ElaborateSource(src)
	for seed := int64(0); seed < 10; seed++ {
		checkEquivalence(t, src, randomStim(d, 1, seed))
	}
}

func TestCounterEquivalence(t *testing.T) {
	src := `
module ctr(input clk, rst, en, output reg [2:0] q, output wrap);
  always @(posedge clk)
    if (rst) q <= 0;
    else if (en) q <= q + 1;
  assign wrap = (q == 3'd7);
endmodule`
	d, _ := rtl.ElaborateSource(src)
	for seed := int64(0); seed < 5; seed++ {
		checkEquivalence(t, src, randomStim(d, 10, seed))
	}
}

func TestComparisonsEquivalence(t *testing.T) {
	src := `
module cmp(input [3:0] a, b, output lt, le, gt, ge, eq, ne);
  assign lt = a < b;
  assign le = a <= b;
  assign gt = a > b;
  assign ge = a >= b;
  assign eq = a == b;
  assign ne = a != b;
endmodule`
	d, _ := rtl.ElaborateSource(src)
	for seed := int64(0); seed < 12; seed++ {
		checkEquivalence(t, src, randomStim(d, 1, seed))
	}
}

func TestReductionsAndConcatEquivalence(t *testing.T) {
	src := `
module red(input [4:0] a, output ra, ro, rx, output [9:0] cc);
  assign ra = &a;
  assign ro = |a;
  assign rx = ^a;
  assign cc = {a, ~a};
endmodule`
	d, _ := rtl.ElaborateSource(src)
	for seed := int64(0); seed < 10; seed++ {
		checkEquivalence(t, src, randomStim(d, 1, seed))
	}
}

func TestDynamicIndexEquivalence(t *testing.T) {
	src := `
module idx(input [7:0] a, input [2:0] i, output y);
  assign y = a[i];
endmodule`
	d, _ := rtl.ElaborateSource(src)
	for seed := int64(0); seed < 10; seed++ {
		checkEquivalence(t, src, randomStim(d, 1, seed))
	}
}

func TestUnsatWhenOutputPinnedWrong(t *testing.T) {
	// Pin y != ~a: must be UNSAT.
	src := `module m(input a, output y); assign y = ~a; endmodule`
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	s := sat.New()
	u := NewUnroller(s, d)
	u.AddFrame()
	av, _ := u.SignalVec(0, d.MustSignal("a"))
	yv, _ := u.SignalVec(0, d.MustSignal("y"))
	// Assume a=1 and y=1 simultaneously (y must be 0).
	if st := s.Solve(av[0], yv[0]); st != sat.Unsat {
		t.Fatalf("contradictory pin should be UNSAT, got %v", st)
	}
	if st := s.Solve(av[0], yv[0].Neg()); st != sat.Sat {
		t.Fatalf("consistent pin should be SAT, got %v", st)
	}
}

func TestEncodeExprDirect(t *testing.T) {
	d, _ := rtl.ElaborateSource(arbiterSrc)
	s := sat.New()
	u := NewUnroller(s, d)
	u.AddFrame()
	u.InitZero()
	// gnt0 == 0 at frame 0 (reset state): expression must be forced true.
	gnt0 := d.MustSignal("gnt0")
	e := &rtl.Binary{Op: rtl.OpEq, A: &rtl.Ref{Sig: gnt0}, B: rtl.NewConst(0, 1), W: 1}
	vec, err := u.EncodeExpr(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(vec[0].Neg()); st != sat.Unsat {
		t.Fatalf("gnt0 must be 0 in reset frame, got %v", st)
	}
}

func TestFrameErrors(t *testing.T) {
	d, _ := rtl.ElaborateSource(arbiterSrc)
	u := NewUnroller(sat.New(), d)
	if _, err := u.SignalVec(0, d.MustSignal("gnt0")); err == nil {
		t.Error("frame 0 not materialized: want error")
	}
	if _, err := u.EncodeExpr(rtl.NewConst(1, 1), 2); err == nil {
		t.Error("frame 2 not materialized: want error")
	}
}

func TestInputModelExtraction(t *testing.T) {
	d, _ := rtl.ElaborateSource(arbiterSrc)
	s := sat.New()
	u := NewUnroller(s, d)
	u.AddFrame()
	u.InitZero()
	req0, _ := u.SignalVec(0, d.MustSignal("req0"))
	if st := s.Solve(req0[0]); st != sat.Sat {
		t.Fatal(st)
	}
	iv := u.InputModel(0)
	if iv["req0"] != 1 {
		t.Errorf("input model req0=%d want 1", iv["req0"])
	}
	if _, ok := iv["rst"]; !ok {
		t.Error("input model should cover all inputs")
	}
}
