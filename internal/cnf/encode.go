// Package cnf encodes elaborated RTL designs into CNF for the SAT solver via
// the Tseitin transformation. The central type is the Unroller, which
// materializes a design over consecutive time frames: frame t's register bits
// are the encoded next-state functions of frame t-1, inputs get fresh solver
// variables every frame, and combinational signals are encoded on demand with
// per-frame caching. Both bounded model checking and k-induction in the mc
// package are built on top of it.
package cnf

import (
	"fmt"

	"goldmine/internal/rtl"
	"goldmine/internal/sat"
	"goldmine/internal/sim"
)

// Vec is a little-endian vector of literals representing a word: Vec[0] is
// bit 0 (LSB).
type Vec []sat.Lit

// Unroller encodes a design over time frames 0..T-1.
type Unroller struct {
	S *sat.Solver
	D *rtl.Design

	constTrue sat.Lit

	// frames[t] holds the encodings of frame t.
	frames []*frame

	// lazy defers input/register materialization to first reference, so a
	// property's encoding touches exactly the sequential cone of influence of
	// the signals it mentions (see NewLazyUnroller).
	lazy bool
	// initZero records that InitZero was requested, so lazily materialized
	// frame-0 registers are constrained to the reset state on creation.
	initZero bool
}

type frame struct {
	inputs map[*rtl.Signal]Vec
	regs   map[*rtl.Signal]Vec
	comb   map[*rtl.Signal]Vec
}

// NewUnroller creates an unroller with zero frames.
func NewUnroller(s *sat.Solver, d *rtl.Design) *Unroller {
	u := &Unroller{S: s, D: d}
	tv := s.NewVar()
	u.constTrue = sat.Lit(tv)
	s.AddClause(u.constTrue)
	return u
}

// NewLazyUnroller creates an unroller that materializes signals on demand:
// AddFrame only reserves a frame, and inputs/registers get solver variables
// the first time they are referenced (directly or through a register's
// next-state function in an earlier frame). Encoding a property therefore
// emits CNF for exactly the transitive sequential cone of influence of the
// signals the property mentions — on a wide design, a narrow assertion
// encodes a fraction of the transition relation.
//
// This is sound because the unreferenced logic is definitional (Tseitin
// clauses constrain only their own fresh outputs), so omitting it cannot
// change satisfiability of the encoded cone; it only leaves the unreferenced
// inputs unconstrained, which is what the eager encoding does anyway.
//
// InputModel only reports inputs that were materialized; callers that need a
// total stimulus (the mc package) fill the rest with zeros.
func NewLazyUnroller(s *sat.Solver, d *rtl.Design) *Unroller {
	u := NewUnroller(s, d)
	u.lazy = true
	return u
}

// True returns the constant-true literal.
func (u *Unroller) True() sat.Lit { return u.constTrue }

// False returns the constant-false literal.
func (u *Unroller) False() sat.Lit { return u.constTrue.Neg() }

// Frames returns the number of materialized frames.
func (u *Unroller) Frames() int { return len(u.frames) }

// AddFrame materializes the next time frame and returns its index. Frame 0
// registers get fresh unconstrained variables (constrain with InitZero for
// reset-state reasoning); frame t>0 registers are wired to the encoded
// next-state functions of frame t-1.
func (u *Unroller) AddFrame() int {
	t := len(u.frames)
	f := &frame{
		inputs: map[*rtl.Signal]Vec{},
		regs:   map[*rtl.Signal]Vec{},
		comb:   map[*rtl.Signal]Vec{},
	}
	u.frames = append(u.frames, f)
	if u.lazy {
		return t
	}
	for _, in := range u.D.Inputs() {
		f.inputs[in] = u.freshVec(in.Width)
	}
	if t == 0 {
		for _, reg := range u.D.Registers() {
			f.regs[reg] = u.regVec(f, 0, reg)
		}
	} else {
		for _, reg := range u.D.Registers() {
			f.regs[reg] = u.regVec(f, t, reg)
		}
	}
	return t
}

// regVec materializes register sig at frame t: fresh variables at frame 0
// (reset-constrained when InitZero is in effect), the encoded next-state
// function of frame t-1 otherwise. The caller stores the result in f.regs.
func (u *Unroller) regVec(f *frame, t int, sig *rtl.Signal) Vec {
	if t == 0 {
		v := u.freshVec(sig.Width)
		f.regs[sig] = v
		if u.initZero {
			for _, l := range v {
				u.S.AddClause(l.Neg())
			}
		}
		return v
	}
	v := u.encodeExpr(u.D.Next[sig], t-1)
	f.regs[sig] = v
	return v
}

// InitZero constrains every register bit of frame 0 to zero (the reset state
// shared with the simulator). Under a lazy unroller the constraint also
// applies to frame-0 registers materialized after this call.
func (u *Unroller) InitZero() {
	u.initZero = true
	if len(u.frames) == 0 {
		u.AddFrame()
	}
	for _, v := range u.frames[0].regs {
		for _, l := range v {
			u.S.AddClause(l.Neg())
		}
	}
}

func (u *Unroller) freshVec(w int) Vec {
	v := make(Vec, w)
	for i := range v {
		v[i] = sat.Lit(u.S.NewVar())
	}
	return v
}

// SignalVec returns the literal vector of sig at frame t, encoding its
// combinational cone on demand.
func (u *Unroller) SignalVec(t int, sig *rtl.Signal) (Vec, error) {
	if t < 0 || t >= len(u.frames) {
		return nil, fmt.Errorf("frame %d not materialized (have %d)", t, len(u.frames))
	}
	f := u.frames[t]
	if v, ok := f.inputs[sig]; ok {
		return v, nil
	}
	if v, ok := f.regs[sig]; ok {
		return v, nil
	}
	if v, ok := f.comb[sig]; ok {
		return v, nil
	}
	if u.lazy {
		// First reference: materialize exactly this signal (and, for a
		// register at t > 0, its next-state cone in frame t-1).
		if sig.Kind == rtl.SigInput && sig.Name != u.D.Clock {
			v := u.freshVec(sig.Width)
			f.inputs[sig] = v
			return v, nil
		}
		if sig.IsState {
			return u.regVec(f, t, sig), nil
		}
	}
	e, ok := u.D.Comb[sig]
	if !ok {
		return nil, fmt.Errorf("signal %s has no encoding at frame %d", sig.Name, t)
	}
	v := u.encodeExpr(e, t)
	f.comb[sig] = v
	return v, nil
}

// EncodeExpr encodes an arbitrary expression evaluated at frame t.
func (u *Unroller) EncodeExpr(e rtl.Expr, t int) (Vec, error) {
	if t < 0 || t >= len(u.frames) {
		return nil, fmt.Errorf("frame %d not materialized (have %d)", t, len(u.frames))
	}
	return u.encodeExpr(e, t), nil
}

// InputVecAt returns the literal vector of input sig at frame t if it has
// been materialized, without forcing materialization. Under a lazy unroller a
// missing vector means the input is outside every encoded cone at that frame
// and is therefore unconstrained.
func (u *Unroller) InputVecAt(t int, sig *rtl.Signal) (Vec, bool) {
	if t < 0 || t >= len(u.frames) {
		return nil, false
	}
	v, ok := u.frames[t].inputs[sig]
	return v, ok
}

// InputModel extracts the input assignment of frame t from a satisfying
// model.
func (u *Unroller) InputModel(t int) sim.InputVec {
	f := u.frames[t]
	iv := sim.InputVec{}
	for sig, vec := range f.inputs {
		var val uint64
		for i, l := range vec {
			if u.S.ValueLit(l) {
				val |= 1 << uint(i)
			}
		}
		iv[sig.Name] = val
	}
	return iv
}

// SignalModel extracts the value of sig at frame t from a satisfying model.
func (u *Unroller) SignalModel(t int, sig *rtl.Signal) (uint64, error) {
	vec, err := u.SignalVec(t, sig)
	if err != nil {
		return 0, err
	}
	var val uint64
	for i, l := range vec {
		if u.S.ValueLit(l) {
			val |= 1 << uint(i)
		}
	}
	return val, nil
}

// ---------------------------------------------------------------------------
// Expression encoding
// ---------------------------------------------------------------------------

func (u *Unroller) encodeExpr(e rtl.Expr, t int) Vec {
	switch x := e.(type) {
	case *rtl.Const:
		v := make(Vec, x.W)
		for i := range v {
			if (x.Val>>uint(i))&1 == 1 {
				v[i] = u.True()
			} else {
				v[i] = u.False()
			}
		}
		return v

	case *rtl.Ref:
		v, err := u.SignalVec(t, x.Sig)
		if err != nil {
			panic("cnf: " + err.Error())
		}
		return v

	case *rtl.Unary:
		sub := u.encodeExpr(x.X, t)
		switch x.Op {
		case rtl.OpNot:
			out := make(Vec, len(sub))
			for i, l := range sub {
				out[i] = l.Neg()
			}
			return out
		case rtl.OpLogNot:
			return Vec{u.orTree(sub).Neg()}
		case rtl.OpNeg:
			return u.addVec(u.notVec(sub), u.constVec(1, len(sub)), nil)
		case rtl.OpRedAnd:
			return Vec{u.andTree(sub)}
		case rtl.OpRedOr:
			return Vec{u.orTree(sub)}
		case rtl.OpRedXor:
			return Vec{u.xorTree(sub)}
		}
		panic(fmt.Sprintf("cnf: bad unary op %v", x.Op))

	case *rtl.Binary:
		a := u.encodeExpr(x.A, t)
		b := u.encodeExpr(x.B, t)
		// The elaborator emits width-matched operands; be defensive for
		// hand-built expressions (mirrors rtl.Eval's masking semantics).
		switch x.Op {
		case rtl.OpAnd, rtl.OpOr, rtl.OpXor, rtl.OpXnor, rtl.OpAdd, rtl.OpSub, rtl.OpMul:
			a = u.extendVec(a, x.W)
			b = u.extendVec(b, x.W)
		case rtl.OpEq, rtl.OpNe, rtl.OpLt, rtl.OpLe, rtl.OpGt, rtl.OpGe:
			w := len(a)
			if len(b) > w {
				w = len(b)
			}
			a = u.extendVec(a, w)
			b = u.extendVec(b, w)
		}
		switch x.Op {
		case rtl.OpAnd, rtl.OpOr, rtl.OpXor, rtl.OpXnor:
			out := make(Vec, x.W)
			for i := range out {
				switch x.Op {
				case rtl.OpAnd:
					out[i] = u.andGate(a[i], b[i])
				case rtl.OpOr:
					out[i] = u.orGate(a[i], b[i])
				case rtl.OpXor:
					out[i] = u.xorGate(a[i], b[i])
				default:
					out[i] = u.xorGate(a[i], b[i]).Neg()
				}
			}
			return out
		case rtl.OpLogAnd:
			return Vec{u.andGate(u.orTree(a), u.orTree(b))}
		case rtl.OpLogOr:
			return Vec{u.orGate(u.orTree(a), u.orTree(b))}
		case rtl.OpAdd:
			return u.addVec(a, b, nil)
		case rtl.OpSub:
			one := u.True()
			return u.addVec(a, u.notVec(b), &one)
		case rtl.OpMul:
			return u.mulVec(a, b, x.W)
		case rtl.OpEq:
			return Vec{u.eqVec(a, b)}
		case rtl.OpNe:
			return Vec{u.eqVec(a, b).Neg()}
		case rtl.OpLt:
			return Vec{u.ltVec(a, b)}
		case rtl.OpLe:
			return Vec{u.ltVec(b, a).Neg()}
		case rtl.OpGt:
			return Vec{u.ltVec(b, a)}
		case rtl.OpGe:
			return Vec{u.ltVec(a, b).Neg()}
		case rtl.OpShl:
			return u.shiftVec(a, b, true)
		case rtl.OpShr:
			return u.shiftVec(a, b, false)
		}
		panic(fmt.Sprintf("cnf: bad binary op %v", x.Op))

	case *rtl.Mux:
		c := u.encodeExpr(x.Cond, t)
		cond := c[0]
		tv := u.extendVec(u.encodeExpr(x.T, t), x.W)
		fv := u.extendVec(u.encodeExpr(x.F, t), x.W)
		out := make(Vec, x.W)
		for i := range out {
			out[i] = u.muxGate(cond, tv[i], fv[i])
		}
		return out

	case *rtl.Select:
		sub := u.encodeExpr(x.X, t)
		return Vec{sub[x.Bit]}

	case *rtl.Slice:
		sub := u.encodeExpr(x.X, t)
		return sub[x.LSB : x.MSB+1]

	case *rtl.Concat:
		out := make(Vec, 0, x.W)
		// Parts are MSB-first; build little-endian.
		for i := len(x.Parts) - 1; i >= 0; i-- {
			out = append(out, u.encodeExpr(x.Parts[i], t)...)
		}
		return out

	default:
		panic(fmt.Sprintf("cnf: unknown expression %T", e))
	}
}

// ---------------------------------------------------------------------------
// Gate primitives (Tseitin)
// ---------------------------------------------------------------------------

func (u *Unroller) fresh() sat.Lit { return sat.Lit(u.S.NewVar()) }

func (u *Unroller) andGate(a, b sat.Lit) sat.Lit {
	if a == u.False() || b == u.False() {
		return u.False()
	}
	if a == u.True() {
		return b
	}
	if b == u.True() {
		return a
	}
	if a == b {
		return a
	}
	if a == b.Neg() {
		return u.False()
	}
	o := u.fresh()
	u.S.AddClause(a.Neg(), b.Neg(), o)
	u.S.AddClause(a, o.Neg())
	u.S.AddClause(b, o.Neg())
	return o
}

func (u *Unroller) orGate(a, b sat.Lit) sat.Lit {
	return u.andGate(a.Neg(), b.Neg()).Neg()
}

func (u *Unroller) xorGate(a, b sat.Lit) sat.Lit {
	if a == u.False() {
		return b
	}
	if b == u.False() {
		return a
	}
	if a == u.True() {
		return b.Neg()
	}
	if b == u.True() {
		return a.Neg()
	}
	if a == b {
		return u.False()
	}
	if a == b.Neg() {
		return u.True()
	}
	o := u.fresh()
	u.S.AddClause(a.Neg(), b.Neg(), o.Neg())
	u.S.AddClause(a, b, o.Neg())
	u.S.AddClause(a.Neg(), b, o)
	u.S.AddClause(a, b.Neg(), o)
	return o
}

func (u *Unroller) muxGate(c, t, f sat.Lit) sat.Lit {
	if c == u.True() {
		return t
	}
	if c == u.False() {
		return f
	}
	if t == f {
		return t
	}
	o := u.fresh()
	u.S.AddClause(c.Neg(), t.Neg(), o)
	u.S.AddClause(c.Neg(), t, o.Neg())
	u.S.AddClause(c, f.Neg(), o)
	u.S.AddClause(c, f, o.Neg())
	return o
}

func (u *Unroller) andTree(v Vec) sat.Lit {
	out := u.True()
	for _, l := range v {
		out = u.andGate(out, l)
	}
	return out
}

func (u *Unroller) orTree(v Vec) sat.Lit {
	out := u.False()
	for _, l := range v {
		out = u.orGate(out, l)
	}
	return out
}

func (u *Unroller) xorTree(v Vec) sat.Lit {
	out := u.False()
	for _, l := range v {
		out = u.xorGate(out, l)
	}
	return out
}

// ---------------------------------------------------------------------------
// Word-level primitives
// ---------------------------------------------------------------------------

func (u *Unroller) constVec(val uint64, w int) Vec {
	v := make(Vec, w)
	for i := range v {
		if (val>>uint(i))&1 == 1 {
			v[i] = u.True()
		} else {
			v[i] = u.False()
		}
	}
	return v
}

func (u *Unroller) notVec(a Vec) Vec {
	out := make(Vec, len(a))
	for i, l := range a {
		out[i] = l.Neg()
	}
	return out
}

func (u *Unroller) extendVec(a Vec, w int) Vec {
	if len(a) == w {
		return a
	}
	if len(a) > w {
		return a[:w]
	}
	out := make(Vec, w)
	copy(out, a)
	for i := len(a); i < w; i++ {
		out[i] = u.False()
	}
	return out
}

// addVec is a ripple-carry adder; carryIn may be nil (zero).
func (u *Unroller) addVec(a, b Vec, carryIn *sat.Lit) Vec {
	w := len(a)
	if len(b) != w {
		panic("cnf: adder width mismatch")
	}
	out := make(Vec, w)
	c := u.False()
	if carryIn != nil {
		c = *carryIn
	}
	for i := 0; i < w; i++ {
		axb := u.xorGate(a[i], b[i])
		out[i] = u.xorGate(axb, c)
		// carry = (a&b) | (c & (a^b))
		c = u.orGate(u.andGate(a[i], b[i]), u.andGate(c, axb))
	}
	return out
}

// mulVec is a shift-add multiplier truncated to w bits.
func (u *Unroller) mulVec(a, b Vec, w int) Vec {
	acc := u.constVec(0, w)
	for i := 0; i < len(b) && i < w; i++ {
		// partial = (a << i) & b[i]
		part := make(Vec, w)
		for j := 0; j < w; j++ {
			if j < i || j-i >= len(a) {
				part[j] = u.False()
			} else {
				part[j] = u.andGate(a[j-i], b[i])
			}
		}
		acc = u.addVec(acc, part, nil)
	}
	return acc
}

func (u *Unroller) eqVec(a, b Vec) sat.Lit {
	out := u.True()
	for i := range a {
		out = u.andGate(out, u.xorGate(a[i], b[i]).Neg())
	}
	return out
}

// ltVec computes unsigned a < b.
func (u *Unroller) ltVec(a, b Vec) sat.Lit {
	lt := u.False()
	for i := 0; i < len(a); i++ {
		eq := u.xorGate(a[i], b[i]).Neg()
		bitLt := u.andGate(a[i].Neg(), b[i])
		lt = u.orGate(bitLt, u.andGate(eq, lt))
	}
	return lt
}

// shiftVec implements a barrel shifter for variable amounts (left when left
// is true). Shift amounts >= width yield zero, matching rtl.Eval semantics
// for in-range widths.
func (u *Unroller) shiftVec(a, amt Vec, left bool) Vec {
	w := len(a)
	cur := a
	// Mux stages for each bit of the shift amount that matters.
	for s := 0; s < len(amt); s++ {
		shift := 1 << uint(s)
		if shift >= (1 << 30) {
			break
		}
		next := make(Vec, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			if left {
				if i-shift >= 0 {
					shifted = cur[i-shift]
				} else {
					shifted = u.False()
				}
			} else {
				if i+shift < w {
					shifted = cur[i+shift]
				} else {
					shifted = u.False()
				}
			}
			next[i] = u.muxGate(amt[s], shifted, cur[i])
		}
		cur = next
	}
	return cur
}
