package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"goldmine/internal/rtl"
	"goldmine/internal/sat"
)

// randExpr builds a random well-formed expression over the given signals.
func randExpr(rng *rand.Rand, sigs []*rtl.Signal, depth int) rtl.Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(3) == 0 {
			w := 1 + rng.Intn(6)
			return rtl.NewConst(rng.Uint64(), w)
		}
		return &rtl.Ref{Sig: sigs[rng.Intn(len(sigs))]}
	}
	switch rng.Intn(8) {
	case 0:
		x := randExpr(rng, sigs, depth-1)
		ops := []rtl.UnOp{rtl.OpNot, rtl.OpLogNot, rtl.OpNeg, rtl.OpRedAnd, rtl.OpRedOr, rtl.OpRedXor}
		op := ops[rng.Intn(len(ops))]
		w := x.Width()
		if op != rtl.OpNot && op != rtl.OpNeg {
			w = 1
		}
		if op == rtl.OpLogNot {
			x = rtl.Boolify(x)
		}
		return &rtl.Unary{Op: op, X: x, W: w}
	case 1:
		c := rtl.Boolify(randExpr(rng, sigs, depth-1))
		t := randExpr(rng, sigs, depth-1)
		f := randExpr(rng, sigs, depth-1)
		w := t.Width()
		if f.Width() > w {
			w = f.Width()
		}
		return &rtl.Mux{Cond: c, T: rtl.Extend(t, w), F: rtl.Extend(f, w), W: w}
	case 2:
		x := randExpr(rng, sigs, depth-1)
		if x.Width() > 1 {
			return &rtl.Select{X: x, Bit: rng.Intn(x.Width())}
		}
		return x
	case 3:
		x := randExpr(rng, sigs, depth-1)
		if x.Width() > 1 {
			lsb := rng.Intn(x.Width())
			msb := lsb + rng.Intn(x.Width()-lsb)
			return &rtl.Slice{X: x, MSB: msb, LSB: lsb}
		}
		return x
	case 4:
		a := randExpr(rng, sigs, depth-1)
		b := randExpr(rng, sigs, depth-1)
		if a.Width()+b.Width() <= 16 {
			return rtl.NewConcat([]rtl.Expr{a, b})
		}
		return a
	default:
		a := randExpr(rng, sigs, depth-1)
		b := randExpr(rng, sigs, depth-1)
		ops := []rtl.BinOp{
			rtl.OpAnd, rtl.OpOr, rtl.OpXor, rtl.OpXnor,
			rtl.OpLogAnd, rtl.OpLogOr,
			rtl.OpAdd, rtl.OpSub, rtl.OpMul,
			rtl.OpEq, rtl.OpNe, rtl.OpLt, rtl.OpLe, rtl.OpGt, rtl.OpGe,
			rtl.OpShl, rtl.OpShr,
		}
		op := ops[rng.Intn(len(ops))]
		switch {
		case op == rtl.OpLogAnd || op == rtl.OpLogOr:
			return &rtl.Binary{Op: op, A: rtl.Boolify(a), B: rtl.Boolify(b), W: 1}
		case op.IsBoolOp():
			w := maxInt(a.Width(), b.Width())
			return &rtl.Binary{Op: op, A: rtl.Extend(a, w), B: rtl.Extend(b, w), W: 1}
		case op == rtl.OpShl || op == rtl.OpShr:
			// Keep shift amounts narrow so both sides stay meaningful.
			return &rtl.Binary{Op: op, A: a, B: rtl.Extend(b, 3), W: a.Width()}
		default:
			w := maxInt(a.Width(), b.Width())
			return &rtl.Binary{Op: op, A: rtl.Extend(a, w), B: rtl.Extend(b, w), W: w}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestQuickEvalEncodeEquivalence is the central cross-implementation
// property: for random expressions and random input values, interpreting the
// expression (rtl.Eval) and encoding it to CNF with pinned inputs give the
// same value, bit for bit.
func TestQuickEvalEncodeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// A small synthetic combinational design context.
		src := `module q(input [3:0] a, input [5:0] b, input c, output o); assign o = c; endmodule`
		d, err := rtl.ElaborateSource(src)
		if err != nil {
			return false
		}
		sigs := []*rtl.Signal{d.MustSignal("a"), d.MustSignal("b"), d.MustSignal("c")}
		e := randExpr(rng, sigs, 4)

		// Random input assignment.
		env := rtl.MapEnv{}
		for _, s := range sigs {
			env[s] = rng.Uint64() & rtl.Mask(s.Width)
		}
		want := rtl.Eval(e, env)

		s := sat.New()
		u := NewUnroller(s, d)
		u.AddFrame()
		vec, err := u.EncodeExpr(e, 0)
		if err != nil {
			return false
		}
		var assumps []sat.Lit
		for _, sig := range sigs {
			sv, err := u.SignalVec(0, sig)
			if err != nil {
				return false
			}
			for bit, lit := range sv {
				if (env[sig]>>uint(bit))&1 == 1 {
					assumps = append(assumps, lit)
				} else {
					assumps = append(assumps, lit.Neg())
				}
			}
		}
		if s.Solve(assumps...) != sat.Sat {
			return false
		}
		var got uint64
		for bit, lit := range vec {
			if s.ValueLit(lit) {
				got |= 1 << uint(bit)
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
