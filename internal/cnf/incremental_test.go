package cnf

import (
	"testing"

	"goldmine/internal/rtl"
	"goldmine/internal/sat"
	"goldmine/internal/sim"
)

// TestSignalVecStableLiterals guards the frame-reuse contract the mc Session
// depends on: asking for the same signal vector at the same frame twice must
// return identical literals, in both the eager and the lazy unroller, so a
// property re-encoded against a shared unroller lands on the same variables.
func TestSignalVecStableLiterals(t *testing.T) {
	d, _ := rtl.ElaborateSource(arbiterSrc)
	for _, lazy := range []bool{false, true} {
		s := sat.New()
		var u *Unroller
		if lazy {
			u = NewLazyUnroller(s, d)
		} else {
			u = NewUnroller(s, d)
		}
		u.AddFrame()
		u.AddFrame()
		for ti := 0; ti < 2; ti++ {
			for _, sig := range d.Signals {
				if sig.Name == d.Clock {
					continue
				}
				first, err := u.SignalVec(ti, sig)
				if err != nil {
					t.Fatalf("lazy=%v %s@%d: %v", lazy, sig.Name, ti, err)
				}
				again, err := u.SignalVec(ti, sig)
				if err != nil {
					t.Fatalf("lazy=%v %s@%d (second): %v", lazy, sig.Name, ti, err)
				}
				if len(first) != len(again) {
					t.Fatalf("lazy=%v %s@%d: widths differ %d vs %d", lazy, sig.Name, ti, len(first), len(again))
				}
				for b := range first {
					if first[b] != again[b] {
						t.Errorf("lazy=%v %s@%d bit %d: literal changed %d -> %d",
							lazy, sig.Name, ti, b, first[b], again[b])
					}
				}
			}
		}
	}
}

// TestAddFrameAfterSolveSound checks that growing the unrolling after a solve
// is sound: the frames added later agree with the simulator just like the
// frames that were already solved against. This is the Session's deepening
// pattern (solve at depth k, extend to k+1, solve again).
func TestAddFrameAfterSolveSound(t *testing.T) {
	d, _ := rtl.ElaborateSource(arbiterSrc)
	stim := randomStim(d, 4, 7)

	for _, lazy := range []bool{false, true} {
		s := sat.New()
		var u *Unroller
		if lazy {
			u = NewLazyUnroller(s, d)
		} else {
			u = NewUnroller(s, d)
		}
		u.AddFrame()
		u.InitZero()

		pin := func(upTo int) []sat.Lit {
			var assumps []sat.Lit
			for ti := 0; ti < upTo; ti++ {
				for _, in := range d.Inputs() {
					vec, err := u.SignalVec(ti, in)
					if err != nil {
						t.Fatal(err)
					}
					for bit, lit := range vec {
						if (stim[ti][in.Name]>>uint(bit))&1 == 1 {
							assumps = append(assumps, lit)
						} else {
							assumps = append(assumps, lit.Neg())
						}
					}
				}
			}
			return assumps
		}

		if st := s.Solve(pin(1)...); st != sat.Sat {
			t.Fatalf("lazy=%v: depth-1 solve = %v, want Sat", lazy, st)
		}

		// Grow the unrolling after the solve, then check every signal at
		// every frame against the simulator.
		for len(u.frames) < len(stim) {
			u.AddFrame()
		}
		trace, err := sim.Simulate(d, stim)
		if err != nil {
			t.Fatal(err)
		}
		for ti := 0; ti < len(stim); ti++ {
			for _, sig := range trace.Signals {
				if _, err := u.SignalVec(ti, sig); err != nil {
					t.Fatalf("encode %s@%d: %v", sig.Name, ti, err)
				}
			}
		}
		if st := s.Solve(pin(len(stim))...); st != sat.Sat {
			t.Fatalf("lazy=%v: grown solve = %v, want Sat", lazy, st)
		}
		for ti := 0; ti < len(stim); ti++ {
			for _, sig := range trace.Signals {
				want, _ := trace.Value(ti, sig.Name)
				got, err := u.SignalModel(ti, sig)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("lazy=%v %s@%d: SAT=%d sim=%d", lazy, sig.Name, ti, got, want)
				}
			}
		}
	}
}

// TestLazyConeReduction checks the point of the lazy unroller: referencing
// only gnt0 (whose next-state cone excludes gnt1) allocates strictly fewer
// solver variables than the eager encoding of the full design.
func TestLazyConeReduction(t *testing.T) {
	d, _ := rtl.ElaborateSource(arbiterSrc)
	gnt0 := d.MustSignal("gnt0")

	eager := sat.New()
	ue := NewUnroller(eager, d)
	ue.AddFrame()
	ue.AddFrame()
	ue.InitZero()
	if _, err := ue.SignalVec(1, gnt0); err != nil {
		t.Fatal(err)
	}

	lazySolver := sat.New()
	ul := NewLazyUnroller(lazySolver, d)
	ul.AddFrame()
	ul.AddFrame()
	ul.InitZero()
	if _, err := ul.SignalVec(1, gnt0); err != nil {
		t.Fatal(err)
	}

	if lazySolver.NumVars() >= eager.NumVars() {
		t.Errorf("lazy cone encoding uses %d vars, eager uses %d; want strictly fewer",
			lazySolver.NumVars(), eager.NumVars())
	}
	// gnt1 must not have been materialized by the gnt0 cone.
	f := ul.frames[1]
	if _, ok := f.regs[d.MustSignal("gnt1")]; ok {
		t.Error("gnt1 materialized at frame 1 despite not being in gnt0's cone")
	}
}

// TestLazyInitZeroAppliesLate checks that InitZero constrains registers that
// materialize only after the call: with the reset state zero, assuming
// gnt0@0 = 1 must be unsatisfiable.
func TestLazyInitZeroAppliesLate(t *testing.T) {
	d, _ := rtl.ElaborateSource(arbiterSrc)
	s := sat.New()
	u := NewLazyUnroller(s, d)
	u.AddFrame()
	u.InitZero() // gnt0 not yet materialized
	vec, err := u.SignalVec(0, d.MustSignal("gnt0"))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(vec[0]); st != sat.Unsat {
		t.Fatalf("gnt0@0=1 under InitZero: Solve = %v, want Unsat", st)
	}
	if st := s.Solve(vec[0].Neg()); st != sat.Sat {
		t.Fatalf("gnt0@0=0 under InitZero: Solve = %v, want Sat", st)
	}
}
