package experiments

import (
	"fmt"

	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

func init() {
	register("fig15", "GoldMine tests raise condition coverage on an already high-coverage block", Fig15)
	register("table3", "directed-test vs GoldMine coverage on the Rigel-like modules", Table3)
	register("fig16", "random vs GoldMine coverage on the ITC-style benchmarks", Fig16)
}

// Fig15 reproduces Figure 15: wb_stage with 50 random cycles already reaches
// 100% line/branch coverage; GoldMine counterexample tests push condition
// coverage higher.
func Fig15() (*Table, error) {
	b, err := designs.Get("wb_stage")
	if err != nil {
		return nil, err
	}
	d, err := b.Design()
	if err != nil {
		return nil, err
	}
	seed := stimgen.Random(d, 50, 2024, 1)

	base := coverage.New(d)
	if err := base.RunSuite([]sim.Stimulus{seed}); err != nil {
		return nil, err
	}
	baseRep := base.Report()

	mr, err := mineModule(b, seed, 0)
	if err != nil {
		return nil, err
	}
	full := coverage.New(d)
	if err := full.RunSuite(mr.suiteUpTo(mr.maxIteration() + 1)); err != nil {
		return nil, err
	}
	fullRep := full.Report()

	t := &Table{
		ID:     "Fig15",
		Title:  "Increasing Coverage on High Coverage Block (wb_stage)",
		Header: []string{"Test", "line", "branch", "cond"},
		Rows: [][]string{
			{"50 Random Cycles",
				fmt.Sprintf("%.2f", baseRep.Line.Pct()),
				fmt.Sprintf("%.2f", baseRep.Branch.Pct()),
				fmt.Sprintf("%.2f", baseRep.Cond.Pct())},
			{"50 Random Cycles + GoldMine",
				fmt.Sprintf("%.2f", fullRep.Line.Pct()),
				fmt.Sprintf("%.2f", fullRep.Branch.Pct()),
				fmt.Sprintf("%.2f", fullRep.Cond.Pct())},
		},
	}
	t.Notes = append(t.Notes,
		"paper (Fig.15): line 100/100, branch 100/100, cond 93.02 -> 95.35",
		"shape check: line/branch stay saturated, condition coverage does not decrease and typically rises")
	return t, nil
}

// Table3 reproduces Table 3: long directed/random regression vs the GoldMine
// suite on the Rigel-like modules. The paper runs 1.5M directed cycles; we
// scale the budget down (documented) — the shape is the point: GoldMine
// reaches equal or better coverage with orders of magnitude fewer cycles.
func Table3() (*Table, error) {
	const directedCycles = 30000
	mods := []string{"wb_stage", "fetch", "decode"}
	t := &Table{
		ID:    "Table3",
		Title: "Coverage Comparison Between Directed Tests and GoldMine Tests",
		Header: []string{"Module",
			"DirCycles", "DirLine", "DirCond", "DirToggle", "DirBranch",
			"GMCycles", "GMLine", "GMCond", "GMToggle", "GMBranch"},
	}
	for _, name := range mods {
		b, err := designs.Get(name)
		if err != nil {
			return nil, err
		}
		d, err := b.Design()
		if err != nil {
			return nil, err
		}
		// The paper's directed regression: a hand-written happy-path test
		// repeated to fill the cycle budget (repetition adds cycles, not
		// coverage — exactly the stagnation the paper criticizes).
		one := b.Directed()
		directed := stimgen.Repeat(one, directedCycles/len(one))
		dirCol := coverage.New(d)
		if err := dirCol.RunSuite([]sim.Stimulus{directed}); err != nil {
			return nil, err
		}
		dirRep := dirCol.Report()

		// GoldMine: the directed test as seed plus counterexample refinement.
		mr, err := mineModule(b, one, 24)
		if err != nil {
			return nil, err
		}
		suite := mr.suiteUpTo(mr.maxIteration() + 1)
		gmCol := coverage.New(d)
		if err := gmCol.RunSuite(suite); err != nil {
			return nil, err
		}
		gmRep := gmCol.Report()

		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", directedCycles),
			fmt.Sprintf("%.2f", dirRep.Line.Pct()),
			fmt.Sprintf("%.2f", dirRep.Cond.Pct()),
			fmt.Sprintf("%.2f", dirRep.Toggle.Pct()),
			fmt.Sprintf("%.2f", dirRep.Branch.Pct()),
			fmt.Sprintf("%d", suiteCycles(suite)),
			fmt.Sprintf("%.2f", gmRep.Line.Pct()),
			fmt.Sprintf("%.2f", gmRep.Cond.Pct()),
			fmt.Sprintf("%.2f", gmRep.Toggle.Pct()),
			fmt.Sprintf("%.2f", gmRep.Branch.Pct()),
		})
	}
	t.Notes = append(t.Notes,
		"paper (Table 3) budget is 1.5M directed cycles; scaled to 30k here (same shape)",
		"shape check: GoldMine coverage >= directed coverage with far fewer cycles")
	return t, nil
}

// Fig16 reproduces Figure 16: random vs GoldMine coverage on the ITC-style
// benchmarks at the paper's cycle budgets.
func Fig16() (*Table, error) {
	rows := []struct {
		bench  string
		cycles int
	}{
		{"b01", 85},
		{"b02", 50},
		{"b09", 28000},
		{"b12", 12000},
		{"b17", 23000},
		{"b18", 10000},
	}
	t := &Table{
		ID:    "Fig16",
		Title: "Coverage Comparison Between Random Tests and GoldMine Tests (ITC-style)",
		Header: []string{"Module", "Cycles",
			"RndLine", "RndCond", "RndToggle", "RndFSM", "RndBranch",
			"GMLine", "GMCond", "GMToggle", "GMFSM", "GMBranch"},
	}
	for _, rc := range rows {
		b, err := designs.Get(rc.bench)
		if err != nil {
			return nil, err
		}
		d, err := b.Design()
		if err != nil {
			return nil, err
		}
		rnd := stimgen.Random(d, rc.cycles, 3, 2)
		rndCol := coverage.New(d)
		if err := rndCol.RunSuite([]sim.Stimulus{rnd}); err != nil {
			return nil, err
		}
		rndRep := rndCol.Report()

		// GoldMine: the random test plus counterexample refinement on the
		// key outputs (bounded iterations for the larger designs).
		maxIter := 16
		if rc.cycles > 1000 {
			maxIter = 8
		}
		seedLen := rc.cycles
		if seedLen > 256 {
			seedLen = 256
		}
		mr, err := mineModule(b, stimgen.Random(d, seedLen, 3, 2), maxIter)
		if err != nil {
			return nil, err
		}
		suite := append([]sim.Stimulus{rnd}, mr.suiteUpTo(mr.maxIteration()+1)...)
		gmCol := coverage.New(d)
		if err := gmCol.RunSuite(suite); err != nil {
			return nil, err
		}
		gmRep := gmCol.Report()

		fmtm := func(m coverage.Metric) string {
			if !m.Defined() {
				return "X"
			}
			return fmt.Sprintf("%.2f", m.Pct())
		}
		t.Rows = append(t.Rows, []string{
			rc.bench, fmt.Sprintf("%d", rc.cycles),
			fmtm(rndRep.Line), fmtm(rndRep.Cond), fmtm(rndRep.Toggle), fmtm(rndRep.FSM), fmtm(rndRep.Branch),
			fmtm(gmRep.Line), fmtm(gmRep.Cond), fmtm(gmRep.Toggle), fmtm(gmRep.FSM), fmtm(gmRep.Branch),
		})
	}
	t.Notes = append(t.Notes,
		"paper (Fig.16): GoldMine matches or beats random on every metric; large designs stay below 100% for both",
		"b12/b17/b18 are reduced-scale substitutes (see DESIGN.md)")
	return t, nil
}
