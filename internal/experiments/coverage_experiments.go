package experiments

import (
	"fmt"

	"goldmine/internal/designs"
)

func init() {
	register("fig12", "arbiter2 input-space and expression coverage by counterexample iteration", Fig12)
	register("fig13", "design-space (input-space) coverage by iteration for the simple modules", Fig13)
	register("fig14", "expression coverage increase by iteration (cex_small, arbiter2, arbiter4)", Fig14)
	register("table1", "coverage percentage by iteration starting from zero patterns", Table1)
}

// Fig12 reproduces Figure 12: per-iteration input-space and expression
// coverage of the arbiter2 directed test refined by counterexamples.
func Fig12() (*Table, error) {
	b, err := designs.Get("arbiter2")
	if err != nil {
		return nil, err
	}
	mr, err := mineModule(b, seedOf(b), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Fig12",
		Title:  "Coverage of Arbiter Design (directed seed, per counterexample iteration)",
		Header: []string{"Iteration", "InputSpace%", "Expr%", "Line%", "Branch%", "Cond%"},
	}
	last := mr.maxIteration()
	for it := 0; it <= last; it++ {
		rep, err := mr.coverageAt(it)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", it),
			pct(mr.inputSpaceAt(it)),
			fmt.Sprintf("%.2f", rep.Expr.Pct()),
			fmt.Sprintf("%.2f", rep.Line.Pct()),
			fmt.Sprintf("%.2f", rep.Branch.Pct()),
			fmt.Sprintf("%.2f", rep.Cond.Pct()),
		})
	}
	t.Notes = append(t.Notes,
		"paper (Fig.12): input space 0/50/93.75/100, expression 70/80/90/90 over iterations 0-3",
		"shape check: both series increase monotonically; input space closes at 100%")
	return t, nil
}

// Fig13 reproduces Figure 13: the design-space coverage curve per iteration
// for cex_small, arbiter2 and arbiter4.
func Fig13() (*Table, error) {
	mods := []string{"cex_small", "arbiter2", "arbiter4"}
	runs := map[string]*moduleRun{}
	last := 0
	for _, name := range mods {
		b, err := designs.Get(name)
		if err != nil {
			return nil, err
		}
		mr, err := mineModule(b, seedOf(b), 0)
		if err != nil {
			return nil, err
		}
		runs[name] = mr
		if m := mr.maxIteration(); m > last {
			last = m
		}
	}
	t := &Table{
		ID:     "Fig13",
		Title:  "Design Space Coverage by Iteration (input-space %, mean across outputs)",
		Header: append([]string{"Iteration"}, mods...),
	}
	for it := 0; it <= last; it++ {
		row := []string{fmt.Sprintf("%d", it)}
		for _, name := range mods {
			row = append(row, pct(runs[name].inputSpaceAt(it)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"shape check: early-exponential then logarithmic growth; simple modules converge to 100%")
	return t, nil
}

// Fig14 reproduces Figure 14: expression coverage per iteration.
func Fig14() (*Table, error) {
	mods := []string{"cex_small", "arbiter2", "arbiter4"}
	runs := map[string]*moduleRun{}
	last := 3
	for _, name := range mods {
		b, err := designs.Get(name)
		if err != nil {
			return nil, err
		}
		mr, err := mineModule(b, seedOf(b), 0)
		if err != nil {
			return nil, err
		}
		runs[name] = mr
		if m := mr.maxIteration(); m > last {
			last = m
		}
	}
	t := &Table{
		ID:     "Fig14",
		Title:  "Expression Coverage Increase by Iteration",
		Header: append([]string{"Iterations"}, mods...),
	}
	for it := 0; it <= last; it++ {
		row := []string{fmt.Sprintf("%d", it)}
		for _, name := range mods {
			rep, err := runs[name].coverageAt(it)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f%%", rep.Expr.Pct()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper (Fig.14): cex_small 66.67->83.33, arbiter2 70->90, arbiter4 39->88 over iterations 0-3",
		"shape check: monotonic non-decreasing, largest gain in the first iteration")
	return t, nil
}

// Table1 reproduces Table 1: the zero-pattern limit study. Mining starts with
// no test patterns ("output always 0"); coverage is sampled at the paper's
// iteration indices.
func Table1() (*Table, error) {
	samples := []int{0, 1, 2, 5, 12, 15, 17}
	targets := []struct {
		bench  string
		output string
	}{
		{"arbiter2", "gnt0"},
		{"arbiter4", "gnt0"},
		{"fetch", "valid"},
	}
	t := &Table{
		ID:    "Table1",
		Title: "Coverage Percentage by Iteration Starting From Zero Patterns (input-space %)",
	}
	t.Header = []string{"Output"}
	for _, s := range samples {
		t.Header = append(t.Header, fmt.Sprintf("it%d", s))
	}
	for _, tgt := range targets {
		b, err := designs.Get(tgt.bench)
		if err != nil {
			return nil, err
		}
		d, err := b.Design()
		if err != nil {
			return nil, err
		}
		sig := d.Signal(tgt.output)
		if sig == nil {
			return nil, fmt.Errorf("%s: no output %s", tgt.bench, tgt.output)
		}
		mr := &moduleRun{Bench: b, Design: d}
		run, err := mineModule(&designs.Benchmark{
			Name: b.Name, Source: b.Source, Window: b.Window,
			KeyOutputs: []string{tgt.output},
		}, nil, 32)
		if err != nil {
			return nil, err
		}
		mr.Results = run.Results
		row := []string{fmt.Sprintf("%s.%s", tgt.bench, tgt.output)}
		for _, s := range samples {
			row = append(row, pct(mr.inputSpaceAt(s)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper (Table 1): arbiter2.gnt0 reaches 100 by iteration 5; arbiter4.gnt0 by 17; fetchstage.valid by 5",
		"shape check: coverage grows from 0 without any seed patterns and converges to 100%")
	return t, nil
}
