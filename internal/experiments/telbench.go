// Telemetry overhead benchmark: the machine-readable evidence behind the
// observability layer's cost claim (DESIGN.md §4.4) — full mining runs with
// tracing disabled vs enabled, plus the journal volume each run produces.
// scripts/bench.sh writes its output to BENCH_telemetry.json.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"goldmine/internal/core"
	"goldmine/internal/designs"
	"goldmine/internal/telemetry"
)

// telBenchDesigns are the designs the overhead benchmark mines: the paper's
// running arbiter examples plus the fetch stage so the span volume includes
// deep model-checking phases, not just the refinement loop.
var telBenchDesigns = []string{"arbiter2", "arbiter4", "fetch"}

// telBenchRounds replays each configuration to keep wall times out of timer
// noise; the reported times are the minimum across rounds, the standard way
// to strip scheduler jitter from a throughput comparison. Baseline and traced
// rounds are interleaved so slow drift (CPU steal on shared hosts, thermal
// throttling) hits both configurations equally instead of biasing whichever
// block ran second.
const telBenchRounds = 4

// TelBenchDesign is one design's row of the telemetry-overhead benchmark.
type TelBenchDesign struct {
	Design string `json:"design"`
	// BaselineMS / TelemetryMS are the best-of-rounds wall times for a full
	// sequential MineAll with telemetry absent vs a live tracer writing the
	// JSONL journal; OverheadPct is their relative difference.
	BaselineMS  float64 `json:"baseline_ms"`
	TelemetryMS float64 `json:"telemetry_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	// Written / Dropped are the journal's own accounting for the traced run:
	// events flushed to the sink and events discarded under backpressure.
	Written int64 `json:"journal_written"`
	Dropped int64 `json:"journal_dropped"`
}

// TelBenchReport is the full benchmark output.
type TelBenchReport struct {
	Designs []TelBenchDesign `json:"designs"`
	// MeanOverheadPct averages the per-design overheads. Overhead scales
	// with journal event volume: arbiter-class runs sit within noise, while
	// SAT-heavy designs on a single-CPU host (drain goroutine sharing the
	// core) reach ~10%.
	MeanOverheadPct float64 `json:"mean_overhead_pct"`
	// SpanNames are the distinct span names observed across every traced
	// run — the evidence that each refinement-loop phase is covered.
	SpanNames []string `json:"span_names"`
}

// telBenchMine runs one full sequential MineAll of the benchmark, wired to
// tr when non-nil, and returns the wall time.
func telBenchMine(b *designs.Benchmark, tr *telemetry.Tracer) (time.Duration, error) {
	d, err := b.Design()
	if err != nil {
		return 0, err
	}
	opts := core.NewOptions().Window(b.Window).Workers(1).Telemetry(tr)
	eng, err := opts.Engine(d)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := eng.MineAll(context.Background(), seedOf(b)); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// TelemetryBench measures tracing overhead on full mining runs and writes the
// JSON report to w.
func TelemetryBench(w io.Writer) error {
	rep := TelBenchReport{}
	spanNames := map[string]struct{}{}
	var sum float64
	for _, name := range telBenchDesigns {
		b, err := designs.Get(name)
		if err != nil {
			return err
		}
		row := TelBenchDesign{Design: name}
		var base, traced time.Duration
		for r := 0; r < telBenchRounds; r++ {
			d, err := telBenchMine(b, nil)
			if err != nil {
				return fmt.Errorf("telemetry-bench: %s baseline: %w", name, err)
			}
			if r == 0 || d < base {
				base = d
			}

			t := telemetry.New(telemetry.NewRegistry(),
				telemetry.NewJournal(discardWriter{}, telemetry.DefaultJournalBuffer))
			d, err = telBenchMine(b, t)
			if err != nil {
				return fmt.Errorf("telemetry-bench: %s traced: %w", name, err)
			}
			if r == 0 || d < traced {
				traced = d
			}
			// Harvest the span taxonomy and journal accounting before the
			// tracer goes away; every round sees the same set, so
			// overwriting is fine.
			for _, n := range t.Registry().Names() {
				if len(n) > 3 && n[len(n)-3:] == ".us" {
					spanNames[n[:len(n)-3]] = struct{}{}
				}
			}
			if err := t.Close(); err != nil {
				return fmt.Errorf("telemetry-bench: %s: %w", name, err)
			}
			row.Written = t.Journal().Written()
			row.Dropped = t.Journal().Dropped()
		}

		row.BaselineMS = float64(base.Microseconds()) / 1e3
		row.TelemetryMS = float64(traced.Microseconds()) / 1e3
		if base > 0 {
			row.OverheadPct = (float64(traced)/float64(base) - 1) * 100
		}
		sum += row.OverheadPct
		rep.Designs = append(rep.Designs, row)
	}
	if len(rep.Designs) > 0 {
		rep.MeanOverheadPct = sum / float64(len(rep.Designs))
	}
	for n := range spanNames {
		rep.SpanNames = append(rep.SpanNames, n)
	}
	sort.Strings(rep.SpanNames)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// discardWriter is io.Discard with a concrete type, so the journal's drain
// goroutine has a real sink without touching the filesystem.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
