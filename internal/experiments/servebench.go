// Serving benchmark: the machine-readable robustness evidence behind the
// goldmined daemon — sustained jobs/sec and latency percentiles on a pooled
// engine fleet, cross-run verdict-cache reuse, and recovery time after a
// simulated SIGKILL mid-load. scripts/bench.sh writes its output to
// BENCH_serve.json.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"goldmine/internal/serve"
)

// serveBenchDesigns are the job payloads: small designs so the benchmark
// exercises the serving machinery (queueing, pooling, journaling), not the
// model checker.
var serveBenchDesigns = []string{"arbiter2", "decode"}

// serveBenchJobs is the total number of jobs in the throughput phase.
const serveBenchJobs = 24

// ServeBenchReport is the full benchmark output.
type ServeBenchReport struct {
	Workers int `json:"workers"`
	Jobs    int `json:"jobs"`
	// Throughput phase: all jobs submitted up front against a cold daemon.
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	// ColdHitRate / WarmHitRate are the process-wide verdict-cache hit rates
	// after the first pass and after an identical second pass: the warm pass
	// answers almost every check from the cross-run cache.
	ColdHitRate    float64 `json:"cold_cache_hit_rate"`
	WarmHitRate    float64 `json:"warm_cache_hit_rate"`
	WarmJobsPerSec float64 `json:"warm_jobs_per_sec"`
	// EngineBuilds / EngineReuses count engine-pool acquire outcomes.
	EngineBuilds int64 `json:"engine_builds"`
	EngineReuses int64 `json:"engine_reuses"`
	// Recovery phase: a third pass is killed mid-load (WAL intact) and a new
	// daemon restarts on the journal. RecoveredDone jobs were re-served from
	// the WAL without recomputation; ResumedPending jobs were re-run.
	// RecoveryMS is restart-to-all-jobs-terminal wall time.
	KilledAfterDone int     `json:"killed_after_done"`
	RecoveredDone   int64   `json:"recovered_done"`
	ResumedPending  int64   `json:"resumed_pending"`
	RecoveryMS      float64 `json:"recovery_ms"`
	// RecoveredIdentical: every artifact recovered from the WAL is
	// byte-identical to the one computed before the kill.
	RecoveredIdentical bool `json:"recovered_identical"`
}

func serveBenchSpec(i int) serve.JobSpec {
	return serve.JobSpec{
		Tenant: fmt.Sprintf("tenant%d", i%4),
		Design: serveBenchDesigns[i%len(serveBenchDesigns)],
	}
}

// runServePass submits n jobs against s and waits for them all, returning
// per-job latencies in submit order.
func runServePass(s *serve.Server, n int) ([]time.Duration, []string, error) {
	ids := make([]string, n)
	starts := make([]time.Time, n)
	for i := 0; i < n; i++ {
		starts[i] = time.Now()
		j, err := s.Submit(serveBenchSpec(i))
		if err != nil {
			return nil, nil, fmt.Errorf("submit %d: %w", i, err)
		}
		ids[i] = j.ID
	}
	lats := make([]time.Duration, n)
	for i, id := range ids {
		j, err := s.WaitJob(context.Background(), id)
		if err != nil {
			return nil, nil, fmt.Errorf("wait %s: %w", id, err)
		}
		if j.State != serve.JobDone {
			return nil, nil, fmt.Errorf("job %s ended %s (%s)", id, j.State, j.Err)
		}
		lats[i] = time.Since(starts[i])
	}
	return lats, ids, nil
}

func percentile(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return float64(s[idx].Microseconds()) / 1000
}

// ServeBench runs the daemon load harness and writes the JSON report to w.
func ServeBench(w io.Writer, workers int) error {
	if workers < 1 {
		workers = 1
	}
	dir, err := os.MkdirTemp("", "servebench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := serve.Config{
		Workers:       workers,
		QueueDepth:    serveBenchJobs * 2,
		MaxAttempts:   3,
		DrainTimeout:  time.Minute,
		MaxJobWorkers: 1,
		Tracer:        Telemetry,
	}
	rep := &ServeBenchReport{Workers: workers, Jobs: serveBenchJobs}

	// Phase 1+2: cold and warm passes on one daemon (no WAL — throughput).
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	coldStart := time.Now()
	lats, _, err := runServePass(s, serveBenchJobs)
	if err != nil {
		return err
	}
	coldWall := time.Since(coldStart)
	rep.JobsPerSec = float64(serveBenchJobs) / coldWall.Seconds()
	rep.P50MS = percentile(lats, 0.50)
	rep.P99MS = percentile(lats, 0.99)
	rep.ColdHitRate = s.Cache().Stats().HitRate()

	warmStart := time.Now()
	if _, _, err := runServePass(s, serveBenchJobs); err != nil {
		return err
	}
	rep.WarmJobsPerSec = float64(serveBenchJobs) / time.Since(warmStart).Seconds()
	rep.WarmHitRate = s.Cache().Stats().HitRate()
	st := s.Stats()
	rep.EngineBuilds = st.Pool.Builds
	rep.EngineReuses = st.Pool.Reuses
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	err = s.Shutdown(ctx)
	cancel()
	if err != nil {
		return err
	}

	// Phase 3: durability. A journaled daemon is killed mid-load; a second
	// daemon restarts on the WAL, re-serves finished jobs from the journal,
	// and re-runs the rest.
	walPath := filepath.Join(dir, "wal.jsonl")
	cfg2 := cfg
	cfg2.WALPath = walPath
	s2, err := serve.New(cfg2)
	if err != nil {
		return err
	}
	ids := make([]string, serveBenchJobs)
	for i := 0; i < serveBenchJobs; i++ {
		j, err := s2.Submit(serveBenchSpec(i))
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		ids[i] = j.ID
	}
	// Kill once roughly half the jobs are done.
	preKill := map[string]string{}
	for {
		done := 0
		for _, id := range ids {
			if j, ok := s2.Job(id); ok && j.State == serve.JobDone {
				done++
			}
		}
		if done >= serveBenchJobs/2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s2.Kill()
	for _, id := range ids {
		if j, ok := s2.Job(id); ok && j.State == serve.JobDone && j.Artifact != nil {
			preKill[id] = j.Artifact.Canonical
		}
	}
	rep.KilledAfterDone = len(preKill)

	recStart := time.Now()
	s3, err := serve.New(cfg2)
	if err != nil {
		return err
	}
	for _, id := range ids {
		j, err := s3.WaitJob(context.Background(), id)
		if err != nil {
			return fmt.Errorf("recovery wait %s: %w", id, err)
		}
		if j.State != serve.JobDone {
			return fmt.Errorf("recovered job %s ended %s (%s)", id, j.State, j.Err)
		}
	}
	rep.RecoveryMS = float64(time.Since(recStart).Microseconds()) / 1000
	// Byte-identity across the kill: every job done before the crash has the
	// same canonical artifact after restart, whether it was re-served from
	// the WAL (the common case, counted in RecoveredDone) or — in the narrow
	// race where a job finished as the kill landed — deterministically
	// recomputed.
	rep.RecoveredIdentical = true
	for id, canon := range preKill {
		j, _ := s3.Job(id)
		if j.Artifact == nil || j.Artifact.Canonical != canon {
			rep.RecoveredIdentical = false
		}
	}
	st3 := s3.Stats()
	rep.RecoveredDone = st3.RecoveredDone
	rep.ResumedPending = st3.ResumedPending
	ctx, cancel = context.WithTimeout(context.Background(), time.Minute)
	err = s3.Shutdown(ctx)
	cancel()
	if err != nil {
		return err
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
