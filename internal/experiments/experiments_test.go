package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func render(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tab.Render(&buf)
	return buf.String()
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("cell %d,%d = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"example6", "fig12", "fig13", "fig14", "fig15", "fig16", "table1", "table2", "table3"}
	var got []string
	for _, e := range All() {
		got = append(got, e.Name)
	}
	if len(got) != len(want) {
		t.Fatalf("experiments: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("experiment %d: %s want %s", i, got[i], want[i])
		}
	}
	if _, err := Get("fig12"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFig12MonotoneAndCloses(t *testing.T) {
	tab, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("too few iterations:\n%s", render(t, tab))
	}
	prevIS, prevEx := -1.0, -1.0
	for r := range tab.Rows {
		is, ex := cell(t, tab, r, 1), cell(t, tab, r, 2)
		if is < prevIS || ex < prevEx {
			t.Fatalf("coverage not monotone at row %d:\n%s", r, render(t, tab))
		}
		prevIS, prevEx = is, ex
	}
	if prevIS < 99.9 {
		t.Errorf("input-space coverage did not close: %.2f\n%s", prevIS, render(t, tab))
	}
}

func TestFig13SimpleModulesConverge(t *testing.T) {
	tab, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	for col := 1; col <= 3; col++ {
		if v := cell(t, tab, last, col); v < 99.9 {
			t.Errorf("%s final input-space %.2f, want 100:\n%s", tab.Header[col], v, render(t, tab))
		}
	}
}

func TestTable1ZeroSeed(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		if v := cell(t, tab, r, 1); v != 0 {
			t.Errorf("row %d: iteration-0 coverage %.2f, want 0 (zero seed)", r, v)
		}
		lastCol := len(tab.Rows[r]) - 1
		if v := cell(t, tab, r, lastCol); v < 99.9 {
			t.Errorf("row %d (%s): final coverage %.2f, want 100:\n%s",
				r, tab.Rows[r][0], v, render(t, tab))
		}
		// Monotone across the sampled iterations.
		prev := -1.0
		for c := 1; c <= lastCol; c++ {
			v := cell(t, tab, r, c)
			if v < prev {
				t.Errorf("row %d not monotone:\n%s", r, render(t, tab))
			}
			prev = v
		}
	}
}

func TestFig15ConditionImproves(t *testing.T) {
	tab, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	// line/branch saturated in both rows; condition must not decrease.
	for r := 0; r < 2; r++ {
		if v := cell(t, tab, r, 1); v != 100 {
			t.Errorf("row %d line %.2f:\n%s", r, v, render(t, tab))
		}
	}
	if cell(t, tab, 1, 3) < cell(t, tab, 0, 3) {
		t.Errorf("condition coverage decreased:\n%s", render(t, tab))
	}
}

func TestExample6Converges(t *testing.T) {
	tab, err := Example6()
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, tab)
	if !strings.Contains(out, "converged=true") {
		t.Errorf("Section 6 example did not converge:\n%s", out)
	}
	if !strings.Contains(out, "TRUE") || !strings.Contains(out, "false") {
		t.Errorf("expected both false and TRUE assertions:\n%s", out)
	}
}

func TestRenderFormatting(t *testing.T) {
	tab := &Table{
		ID: "T", Title: "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
		Notes:  []string{"a note"},
	}
	out := render(t, tab)
	for _, want := range []string{"== T: demo ==", "xxxxx", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
