// Model-checker benchmark: the machine-readable evidence behind the
// incremental-BMC claims (persistent-session vs stateless check latency on a
// realistic mined-assertion batch, verdict/counterexample equality).
// scripts/bench.sh writes its output to BENCH_mc.json.
package experiments

import (
	"context"

	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"time"

	"goldmine/internal/assertion"
	"goldmine/internal/core"
	"goldmine/internal/designs"
	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// mcBenchDesigns are the designs the incremental benchmark checks: the two
// arbiters (the paper's running example) and the fetch stage, whose deeper
// cones make the per-check Tseitin re-encoding the fresh path pays visible.
var mcBenchDesigns = []string{"arbiter2", "arbiter4", "fetch"}

// mcBenchRounds is how many times each batch is replayed per timing: sessions
// amortize encoding across a batch, so one round already shows the effect and
// three keep the wall times out of timer-granularity noise.
const mcBenchRounds = 3

// mcBenchMaxSuite caps the harvested batch per design so a wide design cannot
// turn the benchmark into a soak test.
const mcBenchMaxSuite = 32

// MCBenchDesign is one design's row of the incremental-checking benchmark.
type MCBenchDesign struct {
	Design     string `json:"design"`
	Assertions int    `json:"assertions"`
	// FreshMS / SessionMS are the wall times for checking the whole batch
	// (mcBenchRounds times) with a stateless checker vs one persistent
	// Session; Speedup is their ratio.
	FreshMS   float64 `json:"fresh_ms"`
	SessionMS float64 `json:"session_ms"`
	Speedup   float64 `json:"speedup"`
	// Reuses and Activations are the session's telemetry counters: solver
	// states carried across checks and induction properties activated.
	Reuses      int `json:"session_reuses"`
	Activations int `json:"session_activations"`
	// ResultsMatch reports that both paths agreed on status, method, depth,
	// and the byte-identical canonical counterexample for every assertion.
	ResultsMatch bool `json:"results_match"`
}

// MCBenchReport is the full benchmark output.
type MCBenchReport struct {
	Designs     []MCBenchDesign `json:"designs"`
	MeanSpeedup float64         `json:"mean_speedup"`
	// AllMatch is the conjunction of the per-design equality checks.
	AllMatch bool `json:"all_results_match"`
}

// MCAssertionSuite mines a benchmark design once (sequentially, bounded
// iterations) and returns the harvested candidate assertions — proved,
// falsified, and unknown alike — as a realistic re-check workload. The batch
// is deterministic: mining is reproducible and the records keep discovery
// order.
func MCAssertionSuite(name string, maxIter int) (*rtl.Design, []*assertion.Assertion, error) {
	b, err := designs.Get(name)
	if err != nil {
		return nil, nil, err
	}
	d, err := b.Design()
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Window = b.Window
	cfg.Workers = 1
	if maxIter > 0 {
		cfg.MaxIterations = maxIter
	}
	if CheckTimeout > 0 {
		cfg.MC.CheckTimeout = CheckTimeout
	}
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		return nil, nil, err
	}
	var seed sim.Stimulus
	if b.Directed != nil {
		seed = b.Directed()
	}
	res, err := eng.MineAll(context.Background(), seed)
	if err != nil {
		return nil, nil, err
	}
	var suite []*assertion.Assertion
	for _, out := range res.Outputs {
		for _, rec := range out.Proved {
			suite = append(suite, rec.Assertion)
		}
		for _, rec := range out.Failed {
			suite = append(suite, rec.Assertion)
		}
		for _, rec := range out.Unknown {
			suite = append(suite, rec.Assertion)
		}
	}
	if len(suite) > mcBenchMaxSuite {
		suite = suite[:mcBenchMaxSuite]
	}
	if len(suite) == 0 {
		return nil, nil, fmt.Errorf("%s: mining harvested no assertions", name)
	}
	return d, suite, nil
}

// mcBenchOptions forces the SAT engines (the paths sessions change) so the
// benchmark measures BMC/induction encoding cost, not the explicit engine.
func mcBenchOptions() mc.Options {
	o := mc.DefaultOptions()
	o.MaxStateBits = 0
	if CheckTimeout > 0 {
		o.CheckTimeout = CheckTimeout
	}
	return o
}

// MCBench runs the incremental-checking benchmark and writes the JSON report
// to w.
func MCBench(w io.Writer) error {
	rep := MCBenchReport{AllMatch: true}
	sum := 0.0
	for _, name := range mcBenchDesigns {
		d, suite, err := MCAssertionSuite(name, 4)
		if err != nil {
			return err
		}

		fresh := mc.NewWithOptions(d, mcBenchOptions())
		var freshRes []*mc.Result
		start := time.Now()
		for round := 0; round < mcBenchRounds; round++ {
			for _, a := range suite {
				r, err := fresh.Check(a)
				if err != nil {
					return fmt.Errorf("%s fresh: %w", name, err)
				}
				if round == 0 {
					freshRes = append(freshRes, r)
				}
			}
		}
		freshT := time.Since(start)

		sess := mc.NewWithOptions(d, mcBenchOptions()).NewSession()
		var sessRes []*mc.Result
		start = time.Now()
		for round := 0; round < mcBenchRounds; round++ {
			for _, a := range suite {
				r, err := sess.Check(a)
				if err != nil {
					return fmt.Errorf("%s session: %w", name, err)
				}
				if round == 0 {
					sessRes = append(sessRes, r)
				}
			}
		}
		sessT := time.Since(start)

		match := true
		for i := range freshRes {
			f, s := freshRes[i], sessRes[i]
			if f.Status != s.Status || f.Method != s.Method || f.Depth != s.Depth || !reflect.DeepEqual(f.Ctx, s.Ctx) {
				match = false
			}
		}
		row := MCBenchDesign{
			Design:       name,
			Assertions:   len(suite),
			FreshMS:      float64(freshT.Microseconds()) / 1000,
			SessionMS:    float64(sessT.Microseconds()) / 1000,
			Reuses:       sess.Reuses,
			Activations:  sess.Activations,
			ResultsMatch: match,
		}
		if sessT > 0 {
			row.Speedup = freshT.Seconds() / sessT.Seconds()
		}
		rep.Designs = append(rep.Designs, row)
		rep.AllMatch = rep.AllMatch && match
		sum += row.Speedup
	}
	if len(rep.Designs) > 0 {
		rep.MeanSpeedup = sum / float64(len(rep.Designs))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
