// Model-checker benchmark: the machine-readable evidence behind the
// incremental-BMC claims (persistent-session vs stateless check latency on a
// realistic mined-assertion batch, verdict/counterexample equality).
// scripts/bench.sh writes its output to BENCH_mc.json.
package experiments

import (
	"context"

	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"time"

	"goldmine/internal/assertion"
	"goldmine/internal/core"
	"goldmine/internal/designs"
	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// mcBenchDesigns are the designs the incremental benchmark checks: every
// bundled benchmark, so the report covers the paper's running examples
// (arbiters), the pipeline stages, and the ITC'99-style controllers alike.
// Mining each design first harvests a realistic re-check batch.
var mcBenchDesigns = designs.Names()

// mcBenchPortfolioWidth is the racing width of the portfolio column: two
// lanes (one BMC, one induction) is the narrowest racing portfolio and the
// one that wins wall clock even on a single core, because a proved property
// no longer pays for the full BMC ladder before induction starts.
const mcBenchPortfolioWidth = 2

// mcBenchRounds is how many times each batch is replayed per timing: sessions
// amortize encoding across a batch, so one round already shows the effect and
// three keep the wall times out of timer-granularity noise.
const mcBenchRounds = 3

// mcBenchMaxSuite caps the harvested batch per design so a wide design cannot
// turn the benchmark into a soak test.
const mcBenchMaxSuite = 32

// MCBenchDesign is one design's row of the incremental-checking benchmark.
type MCBenchDesign struct {
	Design     string `json:"design"`
	Assertions int    `json:"assertions"`
	// FreshMS / SessionMS are the wall times for checking the whole batch
	// (mcBenchRounds times) with a stateless checker vs one persistent
	// Session; Speedup is their ratio.
	FreshMS   float64 `json:"fresh_ms"`
	SessionMS float64 `json:"session_ms"`
	Speedup   float64 `json:"speedup"`
	// ColdSoloMS / PortfolioMS time the cold-batch regime the portfolio is
	// for: every assertion checked once per round on a session that starts
	// cold (a fresh Session per round, so nothing is amortized across rounds),
	// solo incremental ladder vs racing mcBenchPortfolioWidth diversified
	// lanes on predicted-hard checks. Both run on a persistent Checker whose
	// difficulty/outcome model was warmed by one untimed probe pass — the
	// production shape, since the mining run that harvested this batch already
	// checked every candidate through the same Checker. PortfolioSpeedup is
	// ColdSoloMS/PortfolioMS, and Races counts how many checks actually raced
	// across the timed rounds — zero means the router kept everything solo
	// (the design's checks are easy, or racing could not win them).
	ColdSoloMS       float64 `json:"cold_solo_ms"`
	PortfolioMS      float64 `json:"portfolio_ms"`
	PortfolioSpeedup float64 `json:"portfolio_speedup"`
	Races            int     `json:"portfolio_races"`
	// Reuses and Activations are the session's telemetry counters: solver
	// states carried across checks and induction properties activated.
	Reuses      int `json:"session_reuses"`
	Activations int `json:"session_activations"`
	// ResultsMatch reports that all four paths (fresh, session, cold-solo,
	// portfolio) agreed on status, method, depth, and the byte-identical
	// canonical counterexample for every assertion.
	ResultsMatch bool `json:"results_match"`
}

// MCBenchReport is the full benchmark output.
type MCBenchReport struct {
	Designs     []MCBenchDesign `json:"designs"`
	MeanSpeedup float64         `json:"mean_speedup"`
	// PortfolioGeomeanRaced is the geometric mean of PortfolioSpeedup (the
	// cold-batch portfolio win over the incremental-session solo ladder) over
	// the SAT-dominated designs — the ones where the router sent at least one
	// check to the racing portfolio. Designs whose checks all stay on the solo
	// path are excluded: racing never ran there, so their ratio is timer
	// noise, not a portfolio measurement.
	PortfolioGeomeanRaced float64 `json:"portfolio_geomean_raced"`
	// RacedDesigns counts the designs included in PortfolioGeomeanRaced.
	RacedDesigns int `json:"raced_designs"`
	// AllMatch is the conjunction of the per-design equality checks.
	AllMatch bool `json:"all_results_match"`
}

// MCAssertionSuite mines a benchmark design once (sequentially, bounded
// iterations) and returns the harvested candidate assertions — proved,
// falsified, and unknown alike — as a realistic re-check workload. The batch
// is deterministic: mining is reproducible and the records keep discovery
// order.
func MCAssertionSuite(name string, maxIter int) (*rtl.Design, []*assertion.Assertion, error) {
	b, err := designs.Get(name)
	if err != nil {
		return nil, nil, err
	}
	d, err := b.Design()
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Window = b.Window
	cfg.Workers = 1
	if maxIter > 0 {
		cfg.MaxIterations = maxIter
	}
	if CheckTimeout > 0 {
		cfg.MC.CheckTimeout = CheckTimeout
	}
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		return nil, nil, err
	}
	var seed sim.Stimulus
	if b.Directed != nil {
		seed = b.Directed()
	}
	res, err := eng.MineAll(context.Background(), seed)
	if err != nil {
		return nil, nil, err
	}
	var suite []*assertion.Assertion
	for _, out := range res.Outputs {
		for _, rec := range out.Proved {
			suite = append(suite, rec.Assertion)
		}
		for _, rec := range out.Failed {
			suite = append(suite, rec.Assertion)
		}
		for _, rec := range out.Unknown {
			suite = append(suite, rec.Assertion)
		}
	}
	if len(suite) > mcBenchMaxSuite {
		suite = suite[:mcBenchMaxSuite]
	}
	if len(suite) == 0 {
		return nil, nil, fmt.Errorf("%s: mining harvested no assertions", name)
	}
	return d, suite, nil
}

// mcBenchOptions forces the SAT engines (the paths sessions change) so the
// benchmark measures BMC/induction encoding cost, not the explicit engine.
func mcBenchOptions() mc.Options {
	o := mc.DefaultOptions()
	o.MaxStateBits = 0
	if CheckTimeout > 0 {
		o.CheckTimeout = CheckTimeout
	}
	return o
}

// MCBench runs the incremental-checking benchmark and writes the JSON report
// to w.
func MCBench(w io.Writer) error {
	rep := MCBenchReport{AllMatch: true}
	sum, logSum := 0.0, 0.0
	raced := 0
	for _, name := range mcBenchDesigns {
		d, suite, err := MCAssertionSuite(name, 4)
		if err != nil {
			return err
		}

		fresh := mc.NewWithOptions(d, mcBenchOptions())
		var freshRes []*mc.Result
		start := time.Now()
		for round := 0; round < mcBenchRounds; round++ {
			for _, a := range suite {
				r, err := fresh.Check(a)
				if err != nil {
					return fmt.Errorf("%s fresh: %w", name, err)
				}
				if round == 0 {
					freshRes = append(freshRes, r)
				}
			}
		}
		freshT := time.Since(start)

		sess := mc.NewWithOptions(d, mcBenchOptions()).NewSession()
		var sessRes []*mc.Result
		start = time.Now()
		for round := 0; round < mcBenchRounds; round++ {
			for _, a := range suite {
				r, err := sess.Check(a)
				if err != nil {
					return fmt.Errorf("%s session: %w", name, err)
				}
				if round == 0 {
					sessRes = append(sessRes, r)
				}
			}
		}
		sessT := time.Since(start)

		// Cold-batch columns: the mining workload (each candidate decided once
		// on a session with no amortized state) on a Checker whose difficulty
		// model the harvest already warmed. One untimed probe pass stands in
		// for the harvest mining, then each timed round gets a fresh Session.
		coldRun := func(portfolio int) (time.Duration, []*mc.Result, int, error) {
			o := mcBenchOptions()
			o.Portfolio = portfolio
			c := mc.NewWithOptions(d, o)
			probe := c.NewSession()
			for _, a := range suite {
				if _, err := probe.Check(a); err != nil {
					return 0, nil, 0, err
				}
			}
			var res []*mc.Result
			races := 0
			start := time.Now()
			for round := 0; round < mcBenchRounds; round++ {
				sess := c.NewSession()
				for _, a := range suite {
					r, err := sess.Check(a)
					if err != nil {
						return 0, nil, 0, err
					}
					if round == 0 {
						res = append(res, r)
					}
				}
				races += sess.Races
			}
			return time.Since(start), res, races, nil
		}
		coldT, coldRes, _, err := coldRun(0)
		if err != nil {
			return fmt.Errorf("%s cold-solo: %w", name, err)
		}
		portT, portRes, races, err := coldRun(mcBenchPortfolioWidth)
		if err != nil {
			return fmt.Errorf("%s portfolio: %w", name, err)
		}

		match := true
		for i := range freshRes {
			f := freshRes[i]
			for _, o := range []*mc.Result{sessRes[i], coldRes[i], portRes[i]} {
				if f.Status != o.Status || f.Method != o.Method || f.Depth != o.Depth || !reflect.DeepEqual(f.Ctx, o.Ctx) {
					match = false
				}
			}
		}
		row := MCBenchDesign{
			Design:       name,
			Assertions:   len(suite),
			FreshMS:      float64(freshT.Microseconds()) / 1000,
			SessionMS:    float64(sessT.Microseconds()) / 1000,
			ColdSoloMS:   float64(coldT.Microseconds()) / 1000,
			PortfolioMS:  float64(portT.Microseconds()) / 1000,
			Races:        races,
			Reuses:       sess.Reuses,
			Activations:  sess.Activations,
			ResultsMatch: match,
		}
		if sessT > 0 {
			row.Speedup = freshT.Seconds() / sessT.Seconds()
		}
		if portT > 0 {
			row.PortfolioSpeedup = coldT.Seconds() / portT.Seconds()
		}
		rep.Designs = append(rep.Designs, row)
		rep.AllMatch = rep.AllMatch && match
		sum += row.Speedup
		if row.Races > 0 && row.PortfolioSpeedup > 0 {
			logSum += math.Log(row.PortfolioSpeedup)
			raced++
		}
	}
	if len(rep.Designs) > 0 {
		rep.MeanSpeedup = sum / float64(len(rep.Designs))
	}
	if raced > 0 {
		rep.PortfolioGeomeanRaced = math.Exp(logSum / float64(raced))
		rep.RacedDesigns = raced
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
