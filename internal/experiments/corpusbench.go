// Corpus reduction benchmark: the machine-readable evidence behind the
// assertion-corpus claims. For every bundled design it runs two mining
// configurations (directed seed at the full refinement bound, random seed at
// half), ingests both into one corpus plus a replay of the first run — the
// cross-run dedup the canonical keys must deliver — then reduces the corpus
// with the fault/coverage oracle and reports suite size, retained
// mutant-kill percentage, retained coverage percentage, and monitor cost
// before and after. scripts/bench.sh writes its output to BENCH_corpus.json.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"goldmine/internal/corpus"
	"goldmine/internal/designs"
	"goldmine/internal/stimgen"
)

// corpusBenchMaxIter bounds the assertion-mining refinement per design; the
// same bound the coverage benchmark uses for its CEX suite. The second
// mining run uses half the bound and a random seed so the two runs overlap
// without coinciding.
const corpusBenchMaxIter = 16

// Second-run random seed stimulus shape (cycles, PRNG seed, reset cycles).
const (
	corpusBenchRandCycles = 48
	corpusBenchRandSeed   = 7
)

// CorpusBenchDesign is one design's row of the corpus benchmark.
type CorpusBenchDesign struct {
	Design string `json:"design"`
	// Mined is the proved-record count across both mining runs; Unique the
	// corpus entries after all ingests; DupHits the duplicates the
	// canonical-key dedup absorbed — overlap between the two configurations
	// plus the full replay of run 1.
	Mined   int `json:"mined"`
	Unique  int `json:"unique"`
	DupHits int `json:"dup_hits"`
	// Clustering: cone-signature cluster count and entries collapsed by
	// intra-cluster subsumption.
	Clusters  int `json:"clusters"`
	Collapsed int `json:"collapsed"`
	// Oracle shape.
	Cycles int `json:"oracle_cycles"`
	Faults int `json:"fault_universe"`
	// Suite size and monitor cost, full corpus vs reduced suite.
	FullMonitors    int `json:"full_monitors"`
	ReducedMonitors int `json:"reduced_monitors"`
	FullProps       int `json:"full_props"`
	ReducedProps    int `json:"reduced_props"`
	Vacuous         int `json:"vacuous_monitors"`
	// Measured contribution and its retention.
	KillsFull        int     `json:"kills_full"`
	KillsReduced     int     `json:"kills_reduced"`
	WindowsFull      int     `json:"windows_full"`
	WindowsReduced   int     `json:"windows_reduced"`
	KillRetainedPct  float64 `json:"kill_retained_pct"`
	CoverRetainedPct float64 `json:"coverage_retained_pct"`
	// Acceptance flags: retention thresholds and a strictly smaller suite.
	KillRetentionOK  bool `json:"kill_retention_ok"`
	CoverRetentionOK bool `json:"coverage_retention_ok"`
	Smaller          bool `json:"suite_smaller"`
}

// CorpusBenchReport is the full benchmark output.
type CorpusBenchReport struct {
	MaxIter int                 `json:"max_iter"`
	Designs []CorpusBenchDesign `json:"designs"`
	// Aggregate monitor counts across all designs.
	TotalFullMonitors    int `json:"total_full_monitors"`
	TotalReducedMonitors int `json:"total_reduced_monitors"`
	TotalFullProps       int `json:"total_full_props"`
	TotalReducedProps    int `json:"total_reduced_props"`
	// KillRetentionOK: every design retains >= 95% of the full corpus's
	// mutant kills. CoverRetentionOK: every design retains 100% of the
	// coverage contribution. SmallerCount: designs whose reduced suite is
	// strictly smaller; SuiteSmallerAll requires all mining-productive
	// designs to shrink.
	KillRetentionOK  bool `json:"kill_retention_ok"`
	CoverRetentionOK bool `json:"coverage_retention_ok"`
	SmallerCount     int  `json:"designs_with_smaller_suite"`
	SuiteSmallerAll  bool `json:"suite_smaller_all"`
}

// corpusBenchDesign runs the mine×2 → ingest×3 → reduce pipeline on one
// design: two mining configurations build a corpus with genuine cross-run
// overlap, and a full replay of run 1 exercises the idempotent-re-ingest
// path a restarted daemon depends on. Run 1 mines the key outputs with the
// directed seed; run 2 mines every output with a random seed at half the
// refinement bound.
func corpusBenchDesign(b *designs.Benchmark) (*CorpusBenchDesign, error) {
	mr1, err := mineModule(b, seedOf(b), corpusBenchMaxIter)
	if err != nil {
		return nil, err
	}
	var allOuts []string
	for _, sig := range mr1.Design.Outputs() {
		allOuts = append(allOuts, sig.Name)
	}
	mr2, err := mineModuleCfg(b,
		stimgen.Random(mr1.Design, corpusBenchRandCycles, corpusBenchRandSeed, 2),
		corpusBenchMaxIter/2, allOuts, nil)
	if err != nil {
		return nil, err
	}
	crp := corpus.New()
	st1 := crp.IngestOutputs("run1", mr1.Design, mr1.Results)
	st2 := crp.IngestOutputs("run2", mr2.Design, mr2.Results)
	rep := crp.IngestOutputs("run1-replay", mr1.Design, mr1.Results)

	red, err := corpus.Reduce(mr1.Design, crp, corpus.Options{Telemetry: Telemetry})
	if err != nil {
		return nil, err
	}
	row := &CorpusBenchDesign{
		Design:  b.Name,
		Mined:   st1.Records + st2.Records,
		Unique:  crp.Len(),
		DupHits: st1.Dups + st2.Dups + rep.Dups,

		Clusters:  red.Clusters,
		Collapsed: red.Collapsed,
		Cycles:    red.Cycles,
		Faults:    red.Faults,

		FullMonitors:    red.Total,
		ReducedMonitors: len(red.Selected),
		FullProps:       red.PropsFull,
		ReducedProps:    red.PropsSelected,
		Vacuous:         red.Vacuous,

		KillsFull:        red.KillsFull,
		KillsReduced:     red.KillsSelected,
		WindowsFull:      red.WindowsFull,
		WindowsReduced:   red.WindowsSelected,
		KillRetainedPct:  red.KillRetention(),
		CoverRetainedPct: red.CoverRetention(),
	}
	row.KillRetentionOK = row.KillRetainedPct >= 95
	row.CoverRetentionOK = row.CoverRetainedPct >= 100
	row.Smaller = row.ReducedMonitors < row.FullMonitors ||
		(row.FullMonitors == 0 && row.ReducedMonitors == 0)
	return row, nil
}

// CorpusBench runs the corpus reduction benchmark over every bundled design
// and writes the JSON report to w.
func CorpusBench(w io.Writer) error {
	rep := CorpusBenchReport{
		MaxIter:          corpusBenchMaxIter,
		KillRetentionOK:  true,
		CoverRetentionOK: true,
		SuiteSmallerAll:  true,
	}
	for _, b := range designs.All() {
		row, err := corpusBenchDesign(b)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		rep.Designs = append(rep.Designs, *row)
		rep.TotalFullMonitors += row.FullMonitors
		rep.TotalReducedMonitors += row.ReducedMonitors
		rep.TotalFullProps += row.FullProps
		rep.TotalReducedProps += row.ReducedProps
		if !row.KillRetentionOK {
			rep.KillRetentionOK = false
		}
		if !row.CoverRetentionOK {
			rep.CoverRetentionOK = false
		}
		if row.Smaller {
			rep.SmallerCount++
		} else {
			rep.SuiteSmallerAll = false
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
