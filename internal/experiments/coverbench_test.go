package experiments

import (
	"testing"

	"goldmine/internal/designs"
)

func TestCoverBenchDesign(t *testing.T) {
	b, err := designs.Get("decode")
	if err != nil {
		t.Fatal(err)
	}
	row, err := coverBenchDesign(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.Universe == 0 {
		t.Fatal("empty hole universe")
	}
	for name, curve := range map[string][]CoverCurvePoint{
		"random": row.Random, "directed": row.Directed, "cex": row.Cex,
	} {
		if len(curve) == 0 {
			t.Errorf("%s curve empty", name)
			continue
		}
		last := curve[len(curve)-1]
		if last.Cycles > coverBenchBudget {
			t.Errorf("%s curve exceeds the budget: %d cycles", name, last.Cycles)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].Open > curve[i-1].Open {
				t.Errorf("%s curve open-hole count increased at %d", name, i)
			}
		}
	}
	if !row.DirectedNotWorse {
		t.Errorf("directed worse than random on decode: %d vs %d open", row.DirectedOpen, row.RandomOpen)
	}
	if len(row.Attempts) == 0 || len(row.Methods) == 0 {
		t.Error("no per-hole accounting")
	}
	if !row.DirectedNotWorseThanLegacy {
		t.Errorf("adaptive worse than legacy on decode: %d vs %d open", row.DirectedOpen, row.LegacyOpen)
	}
	if row.LegacyReachSolves == 0 {
		t.Error("legacy baseline issued no reach solves — reduction check is vacuous")
	}
	if !row.ReachQueriesReduced {
		t.Errorf("reach queries not reduced: adaptive %d vs legacy %d solves",
			row.DirectedReachSolves, row.LegacyReachSolves)
	}
	for name, ms := range map[string]float64{
		"random": row.RandomWallMS, "directed": row.DirectedWallMS,
		"legacy": row.LegacyWallMS, "cex": row.CexWallMS,
	} {
		if ms <= 0 {
			t.Errorf("%s wall-clock not recorded: %v ms", name, ms)
		}
	}
}
