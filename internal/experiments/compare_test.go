package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFig14Shape(t *testing.T) {
	tab, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("too few rows:\n%s", render(t, tab))
	}
	// Monotone non-decreasing per module column.
	for col := 1; col <= 3; col++ {
		prev := -1.0
		for r := range tab.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[r][col], "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("column %d not monotone:\n%s", col, render(t, tab))
			}
			prev = v
		}
	}
	// arbiter4 must start strictly below 100 (thin directed seed).
	first, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[0][3], "%"), 64)
	if first >= 100 {
		t.Errorf("arbiter4 iteration-0 expression coverage %0.2f should be < 100", first)
	}
}

func TestTable3GoldMineWins(t *testing.T) {
	tab, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		dirCycles, _ := strconv.Atoi(row[1])
		gmCycles, _ := strconv.Atoi(row[6])
		if gmCycles >= dirCycles {
			t.Errorf("%s: GoldMine cycles %d not fewer than directed %d", row[0], gmCycles, dirCycles)
		}
		// GoldMine >= directed on every metric column pair.
		pairs := [][2]int{{2, 7}, {3, 8}, {4, 9}, {5, 10}}
		for _, p := range pairs {
			dir, _ := strconv.ParseFloat(row[p[0]], 64)
			gm, _ := strconv.ParseFloat(row[p[1]], 64)
			if gm < dir {
				t.Errorf("%s: GoldMine %s %.2f below directed %.2f",
					row[0], tab.Header[p[1]], gm, dir)
			}
		}
	}
	// The paper's headline: some directed metric is stuck well below 100.
	stuck := false
	for _, row := range tab.Rows {
		if v, _ := strconv.ParseFloat(row[3], 64); v < 90 {
			stuck = true
		}
	}
	if !stuck {
		t.Errorf("directed regression should stagnate below 90%% cond somewhere:\n%s", render(t, tab))
	}
}
