// Simulation benchmark: the machine-readable evidence behind the compiled
// instruction-tape and 64-lane bit-parallel simulator claims (per-cycle
// latency vs the tree-walking interpreter, per lane-cycle latency of the
// batched engine, trace equality). scripts/bench.sh writes its output to
// BENCH_sim.json.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"goldmine/internal/designs"
	"goldmine/internal/sim"
	"goldmine/internal/simc"
	"goldmine/internal/stimgen"
)

// simBenchCycles is the stimulus length per timed run: long enough that the
// per-run setup (reset, arena allocation) vanishes against the cycle loop.
const simBenchCycles = 2000

// simBenchMinTime is the minimum wall time of one measurement batch; runs
// repeat until it is exceeded so fast designs stay out of timer granularity.
const simBenchMinTime = 30 * time.Millisecond

// simBenchRounds is how many paired measurement rounds each design gets. A
// round times all engines back-to-back, so host frequency drift and scheduler
// noise hit every mode of a round roughly equally; the reported speedups are
// medians of the per-round ratios, which stay stable even when the absolute
// per-cycle times wander between rounds.
const simBenchRounds = 7

// SimBenchDesign is one design's row of the simulation benchmark.
type SimBenchDesign struct {
	Design string `json:"design"`
	Cycles int    `json:"cycles"`
	// OneBitFraction is the fraction of batch-engine words that carry 1-bit
	// signals — the bit-parallel win concentrates where this is high.
	OneBitFraction float64 `json:"one_bit_fraction"`
	// InterpNSPerCycle / CompiledNSPerCycle are single-lane per-cycle costs;
	// BatchedNSPerLaneCycle divides the 64-lane run by cycles×lanes. Each is
	// the median over simBenchRounds measurement rounds.
	InterpNSPerCycle      float64 `json:"interp_ns_per_cycle"`
	CompiledNSPerCycle    float64 `json:"compiled_ns_per_cycle"`
	BatchedNSPerLaneCycle float64 `json:"batched_ns_per_lane_cycle"`
	// CompiledSpeedup is interpreter/compiled per cycle; BatchedSpeedup is
	// interpreter per cycle over batched per lane-cycle. Both are medians of
	// per-round paired ratios, so they may differ slightly from the quotient
	// of the median ns figures.
	CompiledSpeedup float64 `json:"compiled_speedup"`
	BatchedSpeedup  float64 `json:"batched_speedup"`
	// TracesMatch reports that the compiled trace and every batched lane are
	// row-identical to the interpreter on the benchmark stimulus.
	TracesMatch bool `json:"traces_match"`
}

// SimBenchReport is the full benchmark output.
type SimBenchReport struct {
	Designs              []SimBenchDesign `json:"designs"`
	MeanCompiledSpeedup  float64          `json:"mean_compiled_speedup"`
	MeanBatchedSpeedup   float64          `json:"mean_batched_speedup"`
	AllMatch             bool             `json:"all_traces_match"`
	BatchLanes           int              `json:"batch_lanes"`
	MinBatchedSpeedup1b  float64          `json:"min_batched_speedup_1bit"`
	OneBitDesignFraction float64          `json:"one_bit_design_threshold"`
}

// timeRuns repeats fn for at least simBenchMinTime and returns the mean wall
// time of one call — a single measurement batch.
func timeRuns(fn func() error) (time.Duration, error) {
	runs := 0
	start := time.Now()
	for time.Since(start) < simBenchMinTime || runs == 0 {
		if err := fn(); err != nil {
			return 0, err
		}
		runs++
	}
	return time.Since(start) / time.Duration(runs), nil
}

// median returns the median of xs (which it sorts in place).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func tracesEqual(a, b *sim.Trace) bool {
	if a.Cycles() != b.Cycles() || len(a.Signals) != len(b.Signals) {
		return false
	}
	for c := range a.Values {
		for j := range a.Values[c] {
			if a.Values[c][j] != b.Values[c][j] {
				return false
			}
		}
	}
	return true
}

// SimBench runs the simulation benchmark over every bundled design and writes
// the JSON report to w.
func SimBench(w io.Writer) error {
	rep := SimBenchReport{
		AllMatch:             true,
		BatchLanes:           simc.MaxLanes,
		OneBitDesignFraction: 0.5,
		MinBatchedSpeedup1b:  0,
	}
	sumC, sumB := 0.0, 0.0
	first1b := true
	for _, b := range designs.All() {
		d, err := b.Design()
		if err != nil {
			return err
		}
		stim := stimgen.Random(d, simBenchCycles, 42, 2)
		lanes := stimgen.RandomLanes(d, simc.MaxLanes, simBenchCycles, 42, 2)

		s, err := sim.New(d)
		if err != nil {
			return err
		}
		want, err := s.Run(stim)
		if err != nil {
			return err
		}

		p, err := simc.Compile(d)
		if err != nil {
			return fmt.Errorf("%s compile: %w", b.Name, err)
		}
		m := simc.NewMachine(p)
		got, err := m.Run(stim)
		if err != nil {
			return err
		}
		match := tracesEqual(want, got)

		bp, err := simc.CompileBatch(d, simc.BatchOptions{})
		if err != nil {
			return fmt.Errorf("%s compile batch: %w", b.Name, err)
		}
		bm := simc.NewBatchMachine(bp)
		packed, err := bp.Pack(lanes)
		if err != nil {
			return err
		}
		bt, err := bm.RunPacked(packed)
		if err != nil {
			return err
		}
		// Lane 0 of RandomLanes(seed) is Random(seed), so it must reproduce
		// the interpreter's benchmark trace exactly.
		lane0, err := bt.Lane(0)
		if err != nil {
			return err
		}
		match = match && tracesEqual(want, lane0)

		var interpNS, compiledNS, batchedNS, cRatio, bRatio []float64
		for r := 0; r < simBenchRounds; r++ {
			interpT, err := timeRuns(func() error { _, err := s.Run(stim); return err })
			if err != nil {
				return fmt.Errorf("%s interpreter: %w", b.Name, err)
			}
			compiledT, err := timeRuns(func() error { _, err := m.Run(stim); return err })
			if err != nil {
				return fmt.Errorf("%s compiled: %w", b.Name, err)
			}
			batchedT, err := timeRuns(func() error { _, err := bm.RunPacked(packed); return err })
			if err != nil {
				return fmt.Errorf("%s batched: %w", b.Name, err)
			}
			in := float64(interpT.Nanoseconds()) / simBenchCycles
			cp := float64(compiledT.Nanoseconds()) / simBenchCycles
			bt := float64(batchedT.Nanoseconds()) / (simBenchCycles * float64(simc.MaxLanes))
			interpNS = append(interpNS, in)
			compiledNS = append(compiledNS, cp)
			batchedNS = append(batchedNS, bt)
			if cp > 0 {
				cRatio = append(cRatio, in/cp)
			}
			if bt > 0 {
				bRatio = append(bRatio, in/bt)
			}
		}

		row := SimBenchDesign{
			Design:                b.Name,
			Cycles:                simBenchCycles,
			OneBitFraction:        bp.OneBitFraction(),
			InterpNSPerCycle:      median(interpNS),
			CompiledNSPerCycle:    median(compiledNS),
			BatchedNSPerLaneCycle: median(batchedNS),
			CompiledSpeedup:       median(cRatio),
			BatchedSpeedup:        median(bRatio),
			TracesMatch:           match,
		}
		rep.Designs = append(rep.Designs, row)
		rep.AllMatch = rep.AllMatch && match
		sumC += row.CompiledSpeedup
		sumB += row.BatchedSpeedup
		if row.OneBitFraction >= rep.OneBitDesignFraction {
			if first1b || row.BatchedSpeedup < rep.MinBatchedSpeedup1b {
				rep.MinBatchedSpeedup1b = row.BatchedSpeedup
				first1b = false
			}
		}
	}
	if n := len(rep.Designs); n > 0 {
		rep.MeanCompiledSpeedup = sumC / float64(n)
		rep.MeanBatchedSpeedup = sumB / float64(n)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
