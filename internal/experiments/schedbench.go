// Scheduler benchmark: the machine-readable speedup/cache evidence behind the
// parallel-mining claims (sequential vs parallel wall time, -j1 ≡ -jN
// determinism, verdict-cache hit rates). scripts/bench.sh writes its output to
// BENCH_sched.json.
package experiments

import (
	"context"

	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"goldmine/internal/core"
	"goldmine/internal/designs"
	"goldmine/internal/sched"
	"goldmine/internal/sim"
)

// schedBenchDesigns are the designs the scheduler benchmark mines: the two
// arbiters from the paper's running example plus the three Rigel-like
// pipeline-stage modules, whose many output bits give the pool real work to
// balance.
var schedBenchDesigns = []string{"arbiter2", "arbiter4", "decode", "fetch", "wb_stage"}

// SchedBenchDesign is one design's row of the scheduler benchmark.
type SchedBenchDesign struct {
	Design  string `json:"design"`
	Outputs int    `json:"outputs"`
	Proved  int    `json:"proved"`
	// SeqMS / ParMS are the cold MineAll wall times at one worker and at the
	// benchmark's worker count; Speedup is their ratio.
	SeqMS   float64 `json:"seq_ms"`
	ParMS   float64 `json:"par_ms"`
	Speedup float64 `json:"speedup"`
	// WarmMS is a parallel MineAll re-run against a pre-filled shared verdict
	// cache; WarmHitRate is its cache hit rate (ParHitRate is the cold run's).
	WarmMS      float64 `json:"warm_ms"`
	ParHitRate  float64 `json:"par_cache_hit_rate"`
	WarmHitRate float64 `json:"warm_cache_hit_rate"`
	// Deterministic reports that the sequential and parallel runs produced
	// byte-identical canonical mining artifacts.
	Deterministic bool `json:"deterministic"`
}

// SchedBenchReport is the full benchmark output.
type SchedBenchReport struct {
	Workers int                `json:"workers"`
	Designs []SchedBenchDesign `json:"designs"`
	// MeanSpeedup averages the per-design speedups.
	MeanSpeedup float64 `json:"mean_speedup"`
	// AllDeterministic is the conjunction of the per-design checks.
	AllDeterministic bool `json:"all_deterministic"`
}

// schedBenchRun mines every output bit of a benchmark once.
func schedBenchRun(b *designs.Benchmark, seed sim.Stimulus, workers int, cache *sched.VerdictCache) (*core.Result, time.Duration, error) {
	d, err := b.Design()
	if err != nil {
		return nil, 0, err
	}
	cfg := core.DefaultConfig()
	cfg.Window = b.Window
	cfg.Workers = workers
	cfg.Cache = cache
	if CheckTimeout > 0 {
		cfg.MC.CheckTimeout = CheckTimeout
	}
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res, err := eng.MineAll(context.Background(), seed)
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start), nil
}

// SchedBench runs the scheduler benchmark at the given worker count (< 1
// means GOMAXPROCS) and writes the JSON report to w.
func SchedBench(w io.Writer, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := SchedBenchReport{Workers: workers, AllDeterministic: true}
	sum := 0.0
	for _, name := range schedBenchDesigns {
		b, err := designs.Get(name)
		if err != nil {
			return err
		}
		seed := seedOf(b)
		seqRes, seqT, err := schedBenchRun(b, seed, 1, nil)
		if err != nil {
			return fmt.Errorf("%s sequential: %w", name, err)
		}
		parRes, parT, err := schedBenchRun(b, seed, workers, nil)
		if err != nil {
			return fmt.Errorf("%s parallel: %w", name, err)
		}
		// Warm pass: one run fills a shared cache, the second reuses every
		// decisive verdict — the cross-engine hit-rate evidence.
		cache := sched.NewVerdictCache()
		if _, _, err := schedBenchRun(b, seed, workers, cache); err != nil {
			return fmt.Errorf("%s cache fill: %w", name, err)
		}
		warmRes, warmT, err := schedBenchRun(b, seed, workers, cache)
		if err != nil {
			return fmt.Errorf("%s warm: %w", name, err)
		}
		row := SchedBenchDesign{
			Design:        name,
			Outputs:       len(seqRes.Outputs),
			Proved:        len(seqRes.Assertions()),
			SeqMS:         float64(seqT.Microseconds()) / 1000,
			ParMS:         float64(parT.Microseconds()) / 1000,
			WarmMS:        float64(warmT.Microseconds()) / 1000,
			Deterministic: seqRes.Canonical() == parRes.Canonical(),
		}
		if parT > 0 {
			row.Speedup = seqT.Seconds() / parT.Seconds()
		}
		if parRes.Sched != nil {
			row.ParHitRate = parRes.Sched.CacheHitRate
		}
		if warmRes.Sched != nil {
			row.WarmHitRate = warmRes.Sched.CacheHitRate
		}
		rep.Designs = append(rep.Designs, row)
		rep.AllDeterministic = rep.AllDeterministic && row.Deterministic
		sum += row.Speedup
	}
	if len(rep.Designs) > 0 {
		rep.MeanSpeedup = sum / float64(len(rep.Designs))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
