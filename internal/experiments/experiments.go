// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7). Each experiment returns a Table that the
// cmd/experiments tool renders and bench_test.go exercises; EXPERIMENTS.md
// records the measured values next to the paper's.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"goldmine/internal/core"
	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/sched"
	"goldmine/internal/sim"
	"goldmine/internal/telemetry"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "note: "+n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered experiment.
type Experiment struct {
	Name string
	Desc string
	Run  func() (*Table, error)
}

// CheckTimeout, when non-zero, bounds every formal check issued by an
// experiment (wired from cmd/experiments -check-timeout). Checks that exceed
// it degrade to bounded/unknown verdicts instead of stalling a table.
var CheckTimeout time.Duration

// Workers is the parallelism degree every experiment mines with (wired from
// cmd/experiments -j). The tables are identical for any value; only wall time
// changes.
var Workers int

// Telemetry, when non-nil, wires every engine the experiments create into one
// shared tracer (from cmd/experiments -telemetry / -metrics-summary). Tables
// are unaffected; the journal and counters are observational only.
var Telemetry *telemetry.Tracer

// sharedCache is one verdict cache spanning every engine the experiments
// create. Cache keys carry design and option fingerprints, so re-mining the
// same benchmark in a later experiment (the sweeps do this constantly) reuses
// decisive verdicts instead of re-running the model checker.
var sharedCache = sched.NewVerdictCache()

var registry []Experiment

func register(name, desc string, run func() (*Table, error)) {
	registry = append(registry, Experiment{Name: name, Desc: desc, Run: run})
}

// All returns the registered experiments sorted by name.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named experiment.
func Get(name string) (*Experiment, error) {
	for i := range registry {
		if registry[i].Name == name {
			return &registry[i], nil
		}
	}
	var names []string
	for _, e := range All() {
		names = append(names, e.Name)
	}
	return nil, fmt.Errorf("unknown experiment %q (have %v)", name, names)
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// moduleRun mines every key output of a benchmark and returns the per-output
// results plus the engine used.
type moduleRun struct {
	Bench   *designs.Benchmark
	Design  *rtl.Design
	Engine  *core.Engine
	Results []*core.OutputResult
	Seed    sim.Stimulus
}

// mineModule mines all key-output bits of the benchmark with the given seed.
func mineModule(b *designs.Benchmark, seed sim.Stimulus, maxIter int) (*moduleRun, error) {
	return mineModuleCfg(b, seed, maxIter, nil, nil)
}

// mineModuleCfg mines the benchmark with explicit targets ("name" = every
// bit, "name[3]" = one bit; nil = the benchmark's key outputs) and an
// optional model-checker option override.
func mineModuleCfg(b *designs.Benchmark, seed sim.Stimulus, maxIter int, targets []string, mcOpts *mc.Options) (*moduleRun, error) {
	d, err := b.Design()
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Window = b.Window
	if maxIter > 0 {
		cfg.MaxIterations = maxIter
	}
	if mcOpts != nil {
		cfg.MC = *mcOpts
	}
	if CheckTimeout > 0 {
		cfg.MC.CheckTimeout = CheckTimeout
	}
	cfg.Workers = Workers
	cfg.Cache = sharedCache
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		return nil, err
	}
	if Telemetry != nil {
		eng.SetTelemetry(Telemetry)
	}
	mr := &moduleRun{Bench: b, Design: d, Engine: eng, Seed: seed}
	outs := targets
	if outs == nil {
		outs = b.KeyOutputs
	}
	if len(outs) == 0 {
		for _, o := range d.Outputs() {
			outs = append(outs, o.Name)
		}
	}
	var tgts []core.Target
	for _, spec := range outs {
		name, bit := spec, -1
		if i := strings.IndexByte(spec, '['); i >= 0 && strings.HasSuffix(spec, "]") {
			name = spec[:i]
			if _, err := fmt.Sscanf(spec[i:], "[%d]", &bit); err != nil {
				return nil, fmt.Errorf("bad target spec %q", spec)
			}
		}
		sig := d.Signal(name)
		if sig == nil {
			return nil, fmt.Errorf("%s: no output %q", b.Name, name)
		}
		lo, hi := 0, sig.Width
		if bit >= 0 {
			lo, hi = bit, bit+1
		}
		for bb := lo; bb < hi; bb++ {
			tgts = append(tgts, core.Target{Output: sig, Bit: bb})
		}
	}
	// One scheduler run over every target bit: parallel when Workers > 1,
	// with results merged back in target order.
	res, err := eng.MineTargets(context.Background(), tgts, seed)
	if err != nil {
		return nil, err
	}
	mr.Results = res.Outputs
	return mr, nil
}

// maxIteration returns the highest iteration index reached by any output.
func (mr *moduleRun) maxIteration() int {
	m := 0
	for _, r := range mr.Results {
		for _, st := range r.Iterations {
			if st.NewCtx > 0 || st.NewProved > 0 {
				if st.Iteration > m {
					m = st.Iteration
				}
			}
		}
	}
	return m
}

// suiteUpTo returns seed + every ctx pattern discovered at iteration <= k.
// When the design has a synchronous reset input, the patterns are
// concatenated into one continuous test with a reset cycle between them —
// exactly how the paper folds counterexamples back into the directed test
// ("the series of inputs for each counterexample are simply added to the
// current input stimulation"). This keeps cross-pattern activity visible to
// toggle coverage while preserving each pattern's from-reset behaviour.
func (mr *moduleRun) suiteUpTo(k int) []sim.Stimulus {
	var parts []sim.Stimulus
	if len(mr.Seed) > 0 {
		parts = append(parts, mr.Seed)
	}
	for _, r := range mr.Results {
		for i, rec := range r.Failed {
			if rec.Iteration <= k && i < len(r.Ctx) {
				parts = append(parts, r.Ctx[i])
			}
		}
	}
	rst := mr.Design.Signal("rst")
	canJoin := len(mr.Design.Registers()) == 0 ||
		(rst != nil && rst.Kind == rtl.SigInput && rst.Width == 1)
	if !canJoin || len(parts) <= 1 {
		return parts
	}
	var joined sim.Stimulus
	for i, p := range parts {
		if i > 0 && len(mr.Design.Registers()) > 0 {
			joined = append(joined, sim.InputVec{"rst": 1})
		}
		joined = append(joined, p.Clone()...)
	}
	return []sim.Stimulus{joined}
}

// inputSpaceAt returns the mean input-space coverage across outputs at
// iteration k (coverage recorded at the nearest completed iteration <= k).
func (mr *moduleRun) inputSpaceAt(k int) float64 {
	if len(mr.Results) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range mr.Results {
		cov := 0.0
		for _, st := range r.Iterations {
			if st.Iteration <= k {
				cov = st.InputSpaceCoverage
			}
		}
		total += cov
	}
	return total / float64(len(mr.Results))
}

// coverageAt measures module coverage of the cumulative suite at iteration k.
func (mr *moduleRun) coverageAt(k int) (coverage.Report, error) {
	col := coverage.New(mr.Design)
	if err := col.RunSuite(mr.suiteUpTo(k)); err != nil {
		return coverage.Report{}, err
	}
	return col.Report(), nil
}

// suiteCycles counts total stimulus cycles in a suite.
func suiteCycles(suite []sim.Stimulus) int {
	n := 0
	for _, s := range suite {
		n += len(s)
	}
	return n
}

func pct(f float64) string { return fmt.Sprintf("%.2f", 100*f) }

func seedOf(b *designs.Benchmark) sim.Stimulus {
	if b.Directed == nil {
		return nil
	}
	return b.Directed()
}
