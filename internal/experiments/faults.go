package experiments

import (
	"fmt"

	"goldmine/internal/assertion"
	"goldmine/internal/designs"
	"goldmine/internal/mc"
	"goldmine/internal/mutate"
	"goldmine/internal/stimgen"
)

func init() {
	register("table2", "faults covered by assertions (stuck-at mutation campaign)", Table2)
	register("example6", "the paper's Section 6 worked example on arbiter2", Example6)
}

// Table2 reproduces Table 2: assertions mined on the correct design are used
// as a regression suite against stuck-at mutants of the paper's signals.
func Table2() (*Table, error) {
	// Mine assertion suites for the modules owning each signal. fetch_pc is
	// mined per bit (cheap thanks to the bit-level cone analysis).
	type target struct {
		bench   string
		signal  string
		outputs []string // outputs to mine for the regression suite
	}
	targets := []target{
		{"fetch", "stall_in", []string{"valid", "fetch_pc"}},
		{"fetch", "branch_pc", []string{"valid", "fetch_pc"}},
		{"fetch", "branch_mispredict", []string{"valid", "fetch_pc"}},
		{"fetch", "icache_rdvl_i", []string{"valid"}},
		{"decode", "stall_in", []string{"valid_out", "is_alu", "illegal"}},
		{"wb_stage", "exception", []string{"wb_we", "valid_r"}},
	}
	t := &Table{
		ID:     "Table2",
		Title:  "Faults Covered by Assertions",
		Header: []string{"Module", "Signal", "Assertions", "stuck-at-0", "stuck-at-1"},
	}
	suites := map[string][]*assertion.Assertion{}
	for _, tgt := range targets {
		key := tgt.bench + "/" + fmt.Sprint(tgt.outputs)
		if _, done := suites[key]; !done {
			b, err := designs.Get(tgt.bench)
			if err != nil {
				return nil, err
			}
			d, err := b.Design()
			if err != nil {
				return nil, err
			}
			seed := stimgen.Random(d, 64, 5, 2)
			mineOpts := mc.DefaultOptions()
			mineOpts.MaxBMCDepth = 12
			mineOpts.MaxInduction = 8
			mineOpts.MaxExplicitBits = 20
			mr, err := mineModuleCfg(b, seed, 8, tgt.outputs, &mineOpts)
			if err != nil {
				return nil, err
			}
			var as []*assertion.Assertion
			for _, r := range mr.Results {
				as = append(as, r.Assertions()...)
			}
			suites[key] = as
		}
	}
	for _, tgt := range targets {
		key := tgt.bench + "/" + fmt.Sprint(tgt.outputs)
		asserts := suites[key]
		b, _ := designs.Get(tgt.bench)
		d, err := b.Design()
		if err != nil {
			return nil, err
		}
		opts := mc.DefaultOptions()
		opts.MaxBMCDepth = 10
		opts.MaxInduction = 6
		opts.MaxExplicitBits = 20
		dets, err := mutate.Campaign(d, asserts, []mutate.Fault{
			{Signal: tgt.signal, StuckAt1: false},
			{Signal: tgt.signal, StuckAt1: true},
		}, opts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tgt.bench, tgt.signal,
			fmt.Sprintf("%d", len(asserts)),
			fmt.Sprintf("%d", dets[0].Detected),
			fmt.Sprintf("%d", dets[1].Detected),
		})
	}
	t.Notes = append(t.Notes,
		"paper (Table 2): every fault detected by >= 1 assertion; counts differ per polarity",
		"shape check: no zero rows; stuck-at-0 and stuck-at-1 detection counts differ")
	return t, nil
}

// Example6 reruns the Section 6 walk-through: mining arbiter2.gnt0 from the
// directed test, printing the assertions discovered per iteration.
func Example6() (*Table, error) {
	b, err := designs.Get("arbiter2")
	if err != nil {
		return nil, err
	}
	mr, err := mineModule(&designs.Benchmark{
		Name: b.Name, Source: b.Source, Window: b.Window,
		KeyOutputs: []string{"gnt0"}, Directed: b.Directed,
	}, seedOf(b), 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Example6",
		Title:  "Section 6 walk-through: assertions for arbiter2.gnt0",
		Header: []string{"Iter", "Verdict", "Assertion (LTL)"},
	}
	res := mr.Results[0]
	for _, rec := range res.Failed {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rec.Iteration), "false", rec.Assertion.String(),
		})
	}
	for _, rec := range res.Proved {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rec.Iteration), "TRUE", rec.Assertion.String(),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("converged=%v, iterations=%d, ctx patterns=%d, proved=%d",
			res.Converged, len(res.Iterations), len(res.Ctx), len(res.Proved)),
		"paper Section 6 converges after 3 iterations with true assertions A2,A3,A6-A9,A11,A12")
	return t, nil
}
