// Coverage-closure benchmark: the machine-readable evidence behind the
// directed-stimulus claims. For every bundled design it runs three suites at
// the same total-cycle budget — pure random, the paper-style CEX-only suite
// (counterexample windows from assertion mining), and the SAT-directed
// closure loop — and reports the coverage curve of each plus the per-hole
// SAT/fuzz/unreachable accounting of the directed run. scripts/bench.sh
// writes its output to BENCH_cover.json.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"goldmine/internal/coverage"
	"goldmine/internal/designs"
	"goldmine/internal/holes"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

// coverBenchBudget is the total stimulus cycle budget per suite. It is sized
// so random coverage has visibly plateaued on the bundled designs while the
// directed run still has budget left to spend on holes.
const coverBenchBudget = 512

// coverBenchSeed keeps the three suites on the same base seed so the random
// prefix of the directed run equals the start of the random baseline.
const coverBenchSeed = 1

// coverBenchCexIter bounds the assertion-mining refinement for the CEX-only
// suite; the paper's loop converges well before this on the bundled designs.
const coverBenchCexIter = 16

// CoverAttempt is the per-hole accounting row of one directed attempt.
type CoverAttempt struct {
	Hole   string `json:"hole"`
	Method string `json:"method"`
	Depth  int    `json:"depth,omitempty"`
	// SATUnreachable marks holes that were UNSAT to the bound but still
	// closed by the fuzz fallback — evidence the bound is too small.
	SATUnreachable bool `json:"sat_unreachable,omitempty"`
}

// CoverCurvePoint samples a suite's coverage after each stimulus.
type CoverCurvePoint struct {
	Cycles int     `json:"cycles"`
	Open   int     `json:"open_holes"`
	Pct    float64 `json:"covered_pct"`
}

// CoverBenchDesign is one design's row of the closure benchmark.
type CoverBenchDesign struct {
	Design string `json:"design"`
	Budget int    `json:"budget_cycles"`
	// Universe is the design's total hole count (the fresh-collector holes);
	// every curve and open count below is against this fixed universe.
	Universe int               `json:"hole_universe"`
	Random   []CoverCurvePoint `json:"random_curve"`
	Cex      []CoverCurvePoint `json:"cex_curve"`
	Directed []CoverCurvePoint `json:"directed_curve"`
	// *Open are the holes left at budget exhaustion.
	RandomOpen   int `json:"random_open"`
	CexOpen      int `json:"cex_open"`
	DirectedOpen int `json:"directed_open"`
	// DirectedWins lists the holes the random baseline leaves open that the
	// directed suite closes at the same budget.
	DirectedWins []string `json:"directed_wins,omitempty"`
	// Methods counts the directed run's attempts by outcome; Attempts has
	// the per-hole rows.
	Methods          map[string]int `json:"methods"`
	Attempts         []CoverAttempt `json:"attempts"`
	Converged        bool           `json:"converged"`
	DirectedNotWorse bool           `json:"directed_not_worse"`

	// Closure-performance columns: time-to-closure (wall ms of building each
	// suite, the closure loop included for the directed strategies) and the
	// reach-query cost of the adaptive engine vs the legacy (PR 7) engine at
	// the same budget. Wall times vary run to run; query counts are
	// deterministic.
	RandomWallMS   float64 `json:"random_wall_ms"`
	CexWallMS      float64 `json:"cex_wall_ms"`
	DirectedWallMS float64 `json:"directed_wall_ms"`
	LegacyWallMS   float64 `json:"legacy_wall_ms"`

	DirectedReachCalls  int `json:"directed_reach_calls"`
	DirectedReachSolves int `json:"directed_reach_solves"`
	LegacyReachCalls    int `json:"legacy_reach_calls"`
	LegacyReachSolves   int `json:"legacy_reach_solves"`
	// LegacyOpen is the holes the legacy engine leaves open at the budget;
	// DirectedNotWorseThanLegacy asserts the adaptive engine's coverage did
	// not pay for its query savings.
	LegacyOpen                 int  `json:"legacy_open"`
	DirectedNotWorseThanLegacy bool `json:"directed_not_worse_than_legacy"`
	// ReachQueriesReduced: the adaptive engine issued strictly fewer SAT
	// solves than legacy (or neither issued any).
	ReachQueriesReduced bool `json:"reach_queries_reduced"`
	// DeadHoles lists holes k-induction proved unreachable at every depth
	// (removed from the universe, never fuzzed again).
	DeadHoles []string `json:"dead_holes,omitempty"`
}

// CoverBenchReport is the full benchmark output.
type CoverBenchReport struct {
	BudgetCycles int                `json:"budget_cycles"`
	Designs      []CoverBenchDesign `json:"designs"`
	// DirectedNeverWorse: on every design the directed suite leaves no more
	// holes open than pure random at the same budget.
	DirectedNeverWorse bool `json:"directed_never_worse"`
	// StrictWins counts designs where directed closes at least one hole the
	// random baseline leaves open.
	StrictWins int `json:"designs_with_strict_win"`
	// ReachQueriesReducedAll: on every design the adaptive engine solved
	// strictly fewer SAT queries than the legacy engine (or neither solved
	// any); NeverWorseThanLegacy is the coverage side of the same claim.
	ReachQueriesReducedAll bool `json:"reach_queries_reduced_all"`
	NeverWorseThanLegacy   bool `json:"directed_never_worse_than_legacy"`
	// TotalDeadHoles sums the proven-dead promotions across designs.
	TotalDeadHoles int `json:"total_dead_holes"`
}

// curveOf replays the suite one stimulus at a time and samples the open-hole
// count after each, against the design's full hole universe.
func curveOf(d *rtl.Design, suite []sim.Stimulus) ([]CoverCurvePoint, map[string]bool, error) {
	universe := len(holes.FromCollector(coverage.New(d)))
	col := coverage.New(d)
	var curve []CoverCurvePoint
	cycles := 0
	for _, s := range suite {
		if err := col.RunSuiteCompiled([]sim.Stimulus{s}); err != nil {
			return nil, nil, err
		}
		cycles += len(s)
		open := len(holes.FromCollector(col))
		curve = append(curve, CoverCurvePoint{
			Cycles: cycles,
			Open:   open,
			Pct:    100 * float64(universe-open) / float64(max(universe, 1)),
		})
	}
	openKeys := map[string]bool{}
	for _, h := range holes.FromCollector(col) {
		openKeys[h.Key()] = true
	}
	return curve, openKeys, nil
}

// cexSuite builds the paper-style suite: only the counterexample windows
// from counterexample-guided assertion mining of the key outputs, truncated
// to the cycle budget.
func cexSuite(b *designs.Benchmark, d *rtl.Design, budget int) ([]sim.Stimulus, error) {
	mr, err := mineModule(b, seedOf(b), coverBenchCexIter)
	if err != nil {
		return nil, err
	}
	var suite []sim.Stimulus
	for _, res := range mr.Results {
		suite = append(suite, res.Ctx...)
	}
	var kept []sim.Stimulus
	for _, s := range suite {
		if budget <= 0 {
			break
		}
		if len(s) > budget {
			s = s[:budget]
		}
		kept = append(kept, s)
		budget -= len(s)
	}
	return kept, nil
}

// coverBenchDesign runs the three suites on one design.
func coverBenchDesign(b *designs.Benchmark, workers int) (*CoverBenchDesign, error) {
	d, err := b.Design()
	if err != nil {
		return nil, err
	}
	row := &CoverBenchDesign{
		Design:   b.Name,
		Budget:   coverBenchBudget,
		Universe: len(holes.FromCollector(coverage.New(d))),
		Methods:  map[string]int{},
	}

	// Pure random at the full budget: the same seed lanes the directed run
	// starts from, then the same fill generator for the rest of the budget.
	t0 := time.Now()
	randomSuite := stimgen.RandomLanes(d, 4, 64, coverBenchSeed, 2)
	randomSuite = append(randomSuite, stimgen.Random(d, coverBenchBudget-4*64, coverBenchSeed+0x5eed, 2))
	row.RandomWallMS = float64(time.Since(t0).Microseconds()) / 1000
	var randomOpen map[string]bool
	row.Random, randomOpen, err = curveOf(d, randomSuite)
	if err != nil {
		return nil, err
	}

	closureOpts := func(legacy bool) stimgen.ClosureOptions {
		return stimgen.ClosureOptions{
			DirectedOptions: stimgen.DirectedOptions{
				Seed:      coverBenchSeed,
				Workers:   workers,
				Telemetry: Telemetry,
				Legacy:    legacy,
			},
			TotalCycles: coverBenchBudget,
			FillRandom:  true,
			Compiled:    true,
		}
	}

	// Adaptive directed closure at the same budget — the reported curve.
	t0 = time.Now()
	res, err := stimgen.CloseCoverage(context.Background(), d, closureOpts(false))
	if err != nil {
		return nil, err
	}
	row.DirectedWallMS = float64(time.Since(t0).Microseconds()) / 1000
	row.DirectedReachCalls, row.DirectedReachSolves = res.ReachCalls, res.ReachSolves
	row.Converged = res.Converged
	for _, at := range res.Attempts {
		row.Methods[at.Method]++
		row.Attempts = append(row.Attempts, CoverAttempt{
			Hole:           at.Hole.Key(),
			Method:         at.Method,
			Depth:          at.Depth,
			SATUnreachable: at.SATUnreachable,
		})
	}
	for _, dh := range res.Dead {
		row.DeadHoles = append(row.DeadHoles, dh.Key)
	}
	sort.Strings(row.DeadHoles)
	var directedOpen map[string]bool
	row.Directed, directedOpen, err = curveOf(d, res.Suite)
	if err != nil {
		return nil, err
	}

	// Legacy (PR 7) closure at the same budget: the baseline for the
	// time-to-closure and reach-query columns.
	t0 = time.Now()
	lres, err := stimgen.CloseCoverage(context.Background(), d, closureOpts(true))
	if err != nil {
		return nil, err
	}
	row.LegacyWallMS = float64(time.Since(t0).Microseconds()) / 1000
	row.LegacyReachCalls, row.LegacyReachSolves = lres.ReachCalls, lres.ReachSolves
	_, legacyOpen, err := curveOf(d, lres.Suite)
	if err != nil {
		return nil, err
	}
	row.LegacyOpen = len(legacyOpen)
	row.ReachQueriesReduced = row.DirectedReachSolves < row.LegacyReachSolves ||
		(row.DirectedReachSolves == 0 && row.LegacyReachSolves == 0)

	// Paper-style CEX-only suite.
	t0 = time.Now()
	cs, err := cexSuite(b, d, coverBenchBudget)
	if err != nil {
		return nil, err
	}
	row.CexWallMS = float64(time.Since(t0).Microseconds()) / 1000
	var cexOpen map[string]bool
	row.Cex, cexOpen, err = curveOf(d, cs)
	if err != nil {
		return nil, err
	}

	row.RandomOpen = len(randomOpen)
	row.DirectedOpen = len(directedOpen)
	row.CexOpen = len(cexOpen)
	for k := range randomOpen {
		if !directedOpen[k] {
			row.DirectedWins = append(row.DirectedWins, k)
		}
	}
	sort.Strings(row.DirectedWins)
	row.DirectedNotWorse = row.DirectedOpen <= row.RandomOpen
	row.DirectedNotWorseThanLegacy = row.DirectedOpen <= row.LegacyOpen
	return row, nil
}

// CoverBench runs the coverage-closure benchmark over every bundled design
// and writes the JSON report to w.
func CoverBench(w io.Writer, workers int) error {
	rep := CoverBenchReport{
		BudgetCycles:           coverBenchBudget,
		DirectedNeverWorse:     true,
		ReachQueriesReducedAll: true,
		NeverWorseThanLegacy:   true,
	}
	for _, b := range designs.All() {
		row, err := coverBenchDesign(b, workers)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		rep.Designs = append(rep.Designs, *row)
		if !row.DirectedNotWorse {
			rep.DirectedNeverWorse = false
		}
		if !row.ReachQueriesReduced {
			rep.ReachQueriesReducedAll = false
		}
		if !row.DirectedNotWorseThanLegacy {
			rep.NeverWorseThanLegacy = false
		}
		rep.TotalDeadHoles += len(row.DeadHoles)
		if len(row.DirectedWins) > 0 {
			rep.StrictWins++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
