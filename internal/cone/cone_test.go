package cone

import (
	"testing"

	"goldmine/internal/rtl"
)

const src = `
module m(input clk, rst, a, b, c, output reg y, output z, output w);
  reg s;
  always @(posedge clk)
    if (rst) begin y <= 0; s <= 0; end
    else begin y <= a & s; s <= b; end
  assign z = c;
  assign w = a | c;
endmodule`

func TestConeOfRegisteredOutput(t *testing.T) {
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	y := d.MustSignal("y")
	cn := Of(d, y)
	names := map[string]bool{}
	for s := range cn {
		names[s.Name] = true
	}
	for _, want := range []string{"y", "s", "a", "b", "rst"} {
		if !names[want] {
			t.Errorf("cone of y missing %s: %v", want, names)
		}
	}
	if names["c"] {
		t.Error("c must not be in cone of y")
	}
	if names["clk"] {
		t.Error("clk must not be in cone")
	}
}

func TestConeOfCombOutput(t *testing.T) {
	d, _ := rtl.ElaborateSource(src)
	cn := Of(d, d.MustSignal("z"))
	if len(cn) != 2 { // z, c
		t.Errorf("cone of z: %d signals", len(cn))
	}
}

func TestConeInputsAndState(t *testing.T) {
	d, _ := rtl.ElaborateSource(src)
	cn := Of(d, d.MustSignal("y"))
	ins := Inputs(d, cn)
	if len(ins) != 3 { // a, b, rst
		t.Fatalf("cone inputs: %v", ins)
	}
	if ins[0].Name != "a" || ins[1].Name != "b" || ins[2].Name != "rst" {
		t.Errorf("inputs not sorted: %v", ins)
	}
	st := StateVars(d, cn)
	if len(st) != 2 { // s, y
		t.Fatalf("cone state: %v", st)
	}
	sorted := Sorted(cn)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Name >= sorted[i].Name {
			t.Error("Sorted not sorted")
		}
	}
}
