package cone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

func TestBitSupportSelectSliceConcat(t *testing.T) {
	src := `
module m(input [7:0] a, input [3:0] b, output y, output [3:0] z, output [11:0] c);
  assign y = a[5];
  assign z = a[6:3];
  assign c = {a, b};
endmodule`
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	a := d.MustSignal("a")
	b := d.MustSignal("b")

	// y depends on a[5] only.
	cn := OfBit(d, d.MustSignal("y"), 0)
	if !cn[BitRef{Sig: a, Bit: 5}] {
		t.Error("y cone missing a[5]")
	}
	for bit := 0; bit < 8; bit++ {
		if bit != 5 && cn[BitRef{Sig: a, Bit: bit}] {
			t.Errorf("y cone has spurious a[%d]", bit)
		}
	}
	// z[1] = a[4].
	cn = OfBit(d, d.MustSignal("z"), 1)
	if !cn[BitRef{Sig: a, Bit: 4}] {
		t.Error("z[1] cone missing a[4]")
	}
	// c bit 2 = b[2] (b is the low part of the concat).
	cn = OfBit(d, d.MustSignal("c"), 2)
	if !cn[BitRef{Sig: b, Bit: 2}] {
		t.Error("c[2] cone missing b[2]")
	}
	if cn[BitRef{Sig: a, Bit: 0}] {
		t.Error("c[2] cone should not contain a bits")
	}
	// c bit 4 = a[0].
	cn = OfBit(d, d.MustSignal("c"), 4)
	if !cn[BitRef{Sig: a, Bit: 0}] {
		t.Error("c[4] cone missing a[0]")
	}
}

func TestBitSupportAdder(t *testing.T) {
	src := `module m(input [3:0] a, b, output [3:0] s); assign s = a + b; endmodule`
	d, _ := rtl.ElaborateSource(src)
	a := d.MustSignal("a")
	// s[2] depends on a[0..2] but not a[3].
	cn := OfBit(d, d.MustSignal("s"), 2)
	for bit := 0; bit <= 2; bit++ {
		if !cn[BitRef{Sig: a, Bit: bit}] {
			t.Errorf("s[2] cone missing a[%d]", bit)
		}
	}
	if cn[BitRef{Sig: a, Bit: 3}] {
		t.Error("s[2] cone should not contain a[3]")
	}
}

func TestBitSupportConstShift(t *testing.T) {
	src := `module m(input [7:0] a, output [7:0] l, r);
	  assign l = a << 2;
	  assign r = a >> 3;
	endmodule`
	d, _ := rtl.ElaborateSource(src)
	a := d.MustSignal("a")
	cn := OfBit(d, d.MustSignal("l"), 5)
	if !cn[BitRef{Sig: a, Bit: 3}] || cn[BitRef{Sig: a, Bit: 5}] {
		t.Error("l[5] should map to a[3] exactly")
	}
	cn = OfBit(d, d.MustSignal("r"), 1)
	if !cn[BitRef{Sig: a, Bit: 4}] || cn[BitRef{Sig: a, Bit: 1}] {
		t.Error("r[1] should map to a[4] exactly")
	}
	// Shifted-out bits have empty input support.
	cn = OfBit(d, d.MustSignal("l"), 0)
	if len(InputBits(d, cn)) != 0 {
		t.Errorf("l[0] should be constant zero: %v", InputBits(d, cn))
	}
}

func TestBitConeThroughRegisters(t *testing.T) {
	src := `
module m(input clk, input [3:0] d, output q1);
  reg [3:0] r;
  always @(posedge clk) r <= d;
  assign q1 = r[1];
endmodule`
	d, _ := rtl.ElaborateSource(src)
	din := d.MustSignal("d")
	cn := OfBit(d, d.MustSignal("q1"), 0)
	if !cn[BitRef{Sig: din, Bit: 1}] {
		t.Error("q1 cone missing d[1] through the register")
	}
	if cn[BitRef{Sig: din, Bit: 0}] || cn[BitRef{Sig: din, Bit: 2}] {
		t.Error("q1 cone contains unrelated d bits")
	}
	refs := StateBitRefs(cn)
	if len(refs) != 1 || refs[0].Bit != 1 {
		t.Errorf("state refs: %v", refs)
	}
}

// TestBitSupportSoundness is the key property: flipping an input bit OUTSIDE
// the computed bit cone can never change the output bit. Verified by random
// simulation on the decode benchmark-style design.
func TestBitSupportSoundness(t *testing.T) {
	src := `
module m(input clk, input [11:0] instr, input valid, stall,
         output hit, output reg vr);
  wire [2:0] op;
  assign op = instr[11:9];
  assign hit = valid & (op == 3'd2) & instr[0];
  always @(posedge clk) if (~stall) vr <= valid & (op != 3'd7);
endmodule`
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	instr := d.MustSignal("instr")
	hit := d.MustSignal("hit")
	cn := OfBit(d, hit, 0)

	// The analysis must exclude instr[1..8] for hit.
	for bit := 1; bit <= 8; bit++ {
		if cn[BitRef{Sig: instr, Bit: bit}] {
			t.Errorf("hit cone contains irrelevant instr[%d]", bit)
		}
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := sim.InputVec{
			"instr": rng.Uint64() & 0xFFF,
			"valid": rng.Uint64() & 1,
			"stall": rng.Uint64() & 1,
		}
		tr0, err := sim.Simulate(d, sim.Stimulus{base})
		if err != nil {
			return false
		}
		v0, _ := tr0.Value(0, "hit")
		// Flip each out-of-cone instr bit: hit must not change.
		for bit := 0; bit < 12; bit++ {
			if cn[BitRef{Sig: instr, Bit: bit}] {
				continue
			}
			mod := base.Clone()
			mod["instr"] ^= 1 << uint(bit)
			tr1, err := sim.Simulate(d, sim.Stimulus{mod})
			if err != nil {
				return false
			}
			v1, _ := tr1.Value(0, "hit")
			if v0 != v1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBitSupportConservativeOps(t *testing.T) {
	// Comparisons and variable shifts fall back to full support.
	src := `module m(input [3:0] a, b, output lt, output [3:0] sh);
	  assign lt = a < b;
	  assign sh = a << b;
	endmodule`
	d, _ := rtl.ElaborateSource(src)
	a := d.MustSignal("a")
	cn := OfBit(d, d.MustSignal("lt"), 0)
	for bit := 0; bit < 4; bit++ {
		if !cn[BitRef{Sig: a, Bit: bit}] {
			t.Errorf("lt cone missing a[%d]", bit)
		}
	}
	cn = OfBit(d, d.MustSignal("sh"), 0)
	if len(InputBits(d, cn)) != 8 {
		t.Errorf("variable shift should depend on all bits: %d", len(InputBits(d, cn)))
	}
}

func TestBitSetSignals(t *testing.T) {
	src := `module m(input [3:0] a, input c, output y); assign y = a[1] & c; endmodule`
	d, _ := rtl.ElaborateSource(src)
	cn := OfBit(d, d.MustSignal("y"), 0)
	sigs := cn.Signals()
	if len(sigs) != 3 { // a, c, y
		t.Errorf("signals: %v", sigs)
	}
	for i := 1; i < len(sigs); i++ {
		if sigs[i-1].Name >= sigs[i].Name {
			t.Error("Signals() not sorted")
		}
	}
}
