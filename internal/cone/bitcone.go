package cone

import (
	"sort"

	"goldmine/internal/rtl"
)

// BitRef identifies a single bit of a signal.
type BitRef struct {
	Sig *rtl.Signal
	Bit int
}

// BitSet is a set of signal bits.
type BitSet map[BitRef]bool

// add inserts a bit, clamping out-of-range bits (conservative callers may
// over-approximate widths).
func (s BitSet) add(sig *rtl.Signal, bit int) {
	if bit < 0 || bit >= sig.Width {
		return
	}
	s[BitRef{Sig: sig, Bit: bit}] = true
}

func (s BitSet) addAll(sig *rtl.Signal) {
	for b := 0; b < sig.Width; b++ {
		s.add(sig, b)
	}
}

// BitSupport computes the bit-level support of bit `bit` of expression e:
// the set of signal bits whose value can affect it. The analysis is exact for
// bitwise operators, muxes, selects, slices, concatenations and
// constant-amount shifts; it is conservative (all operand bits up to the
// position for adders, everything for comparisons, reductions and variable
// shifts) where precise tracking is not worthwhile.
func BitSupport(e rtl.Expr, bit int, out BitSet) {
	if out == nil || bit < 0 || bit >= e.Width() {
		return
	}
	switch x := e.(type) {
	case *rtl.Const:
		// no dependencies

	case *rtl.Ref:
		out.add(x.Sig, bit)

	case *rtl.Unary:
		switch x.Op {
		case rtl.OpNot:
			BitSupport(x.X, bit, out)
		case rtl.OpNeg:
			// Two's complement: bit i depends on bits 0..i.
			for b := 0; b <= bit && b < x.X.Width(); b++ {
				BitSupport(x.X, b, out)
			}
		default: // logical not and reductions: all bits
			allBits(x.X, out)
		}

	case *rtl.Binary:
		switch x.Op {
		case rtl.OpAnd, rtl.OpOr, rtl.OpXor, rtl.OpXnor:
			BitSupport(x.A, bit, out)
			BitSupport(x.B, bit, out)
		case rtl.OpAdd, rtl.OpSub:
			for b := 0; b <= bit; b++ {
				BitSupport(x.A, b, out)
				BitSupport(x.B, b, out)
			}
		case rtl.OpMul:
			for b := 0; b <= bit; b++ {
				BitSupport(x.A, b, out)
				BitSupport(x.B, b, out)
			}
		case rtl.OpShl:
			if c, ok := x.B.(*rtl.Const); ok {
				src := bit - int(c.Val)
				if src >= 0 {
					BitSupport(x.A, src, out)
				}
				return
			}
			allBits(x.A, out)
			allBits(x.B, out)
		case rtl.OpShr:
			if c, ok := x.B.(*rtl.Const); ok {
				src := bit + int(c.Val)
				if src < x.A.Width() {
					BitSupport(x.A, src, out)
				}
				return
			}
			allBits(x.A, out)
			allBits(x.B, out)
		default: // logical and comparison operators: all bits of both
			allBits(x.A, out)
			allBits(x.B, out)
		}

	case *rtl.Mux:
		BitSupport(x.Cond, 0, out)
		BitSupport(x.T, bit, out)
		BitSupport(x.F, bit, out)

	case *rtl.Select:
		BitSupport(x.X, x.Bit, out)

	case *rtl.Slice:
		BitSupport(x.X, x.LSB+bit, out)

	case *rtl.Concat:
		// Parts are MSB-first; walk from the least significant part.
		off := 0
		for i := len(x.Parts) - 1; i >= 0; i-- {
			p := x.Parts[i]
			if bit < off+p.Width() {
				BitSupport(p, bit-off, out)
				return
			}
			off += p.Width()
		}
	}
}

func allBits(e rtl.Expr, out BitSet) {
	for b := 0; b < e.Width(); b++ {
		BitSupport(e, b, out)
	}
}

// OfBit computes the transitive bit-level cone of influence of one bit of a
// signal: every signal bit that can affect it through combinational logic and
// register next-state functions over any number of cycles. The result
// includes the bit itself.
func OfBit(d *rtl.Design, out *rtl.Signal, bit int) BitSet {
	cone := BitSet{}
	cone.add(out, bit)
	work := []BitRef{{Sig: out, Bit: bit}}
	for len(work) > 0 {
		br := work[len(work)-1]
		work = work[:len(work)-1]
		deps := BitSet{}
		if e, ok := d.Comb[br.Sig]; ok {
			BitSupport(e, br.Bit, deps)
		}
		if e, ok := d.Next[br.Sig]; ok {
			BitSupport(e, br.Bit, deps)
		}
		for dep := range deps {
			if !cone[dep] {
				cone[dep] = true
				work = append(work, dep)
			}
		}
	}
	return cone
}

// InputBits returns the primary-input bits of the cone, sorted by (name,
// bit).
func InputBits(d *rtl.Design, cone BitSet) []BitRef {
	var out []BitRef
	for br := range cone {
		if br.Sig.Kind == rtl.SigInput && br.Sig.Name != d.Clock {
			out = append(out, br)
		}
	}
	sortBitRefs(out)
	return out
}

// StateBitRefs returns the register bits of the cone, sorted by (name, bit).
func StateBitRefs(cone BitSet) []BitRef {
	var out []BitRef
	for br := range cone {
		if br.Sig.IsState {
			out = append(out, br)
		}
	}
	sortBitRefs(out)
	return out
}

func sortBitRefs(refs []BitRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Sig.Name != refs[j].Sig.Name {
			return refs[i].Sig.Name < refs[j].Sig.Name
		}
		return refs[i].Bit < refs[j].Bit
	})
}

// Signals returns the distinct signals referenced by the bit set, sorted.
func (s BitSet) Signals() []*rtl.Signal {
	seen := map[*rtl.Signal]bool{}
	var out []*rtl.Signal
	for br := range s {
		if !seen[br.Sig] {
			seen[br.Sig] = true
			out = append(out, br.Sig)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
