// Package cone implements the static analyzer of the GoldMine flow: logic
// cone of influence extraction. The data mining phase is restricted to the
// variables in the cone of the target output, which shrinks the search space
// from all design inputs to the relevant ones (Section 2.2 of the paper).
package cone

import (
	"sort"
	"strings"

	"goldmine/internal/rtl"
)

// Of computes the transitive cone of influence of a signal: every signal
// whose value can affect it, across combinational logic and register
// next-state functions, over any number of cycles. The result includes the
// signal itself.
func Of(d *rtl.Design, out *rtl.Signal) map[*rtl.Signal]bool {
	cone := map[*rtl.Signal]bool{out: true}
	work := []*rtl.Signal{out}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		var deps map[*rtl.Signal]bool
		if e, ok := d.Comb[s]; ok {
			deps = rtl.Support(e, deps)
		}
		if e, ok := d.Next[s]; ok {
			deps = rtl.Support(e, deps)
		}
		for dep := range deps {
			if !cone[dep] {
				cone[dep] = true
				work = append(work, dep)
			}
		}
	}
	return cone
}

// Inputs returns the primary data inputs inside the cone, sorted by name.
func Inputs(d *rtl.Design, cone map[*rtl.Signal]bool) []*rtl.Signal {
	var out []*rtl.Signal
	for s := range cone {
		if s.Kind == rtl.SigInput && s.Name != d.Clock {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StateVars returns the registers and register-backed outputs in the cone,
// sorted by name. These are the extension variables admitted at the farthest
// back temporal stage when the default feature set saturates (Section 3.1).
func StateVars(d *rtl.Design, cone map[*rtl.Signal]bool) []*rtl.Signal {
	var out []*rtl.Signal
	for s := range cone {
		if s.IsState {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Signature renders the canonical cone signature of a set of named signals:
// the union of their cones of influence, as sorted names joined with ",".
// Two assertions whose referenced signals resolve to the same signature
// observe the same slice of the design — the corpus layer clusters on this.
// Names that do not resolve to a design signal are included verbatim, so a
// stale corpus entry degrades to its own cluster instead of an error.
func Signature(d *rtl.Design, names []string) string {
	union := map[*rtl.Signal]bool{}
	var missing []string
	for _, n := range names {
		sig := d.Signal(n)
		if sig == nil {
			missing = append(missing, n)
			continue
		}
		for s := range Of(d, sig) {
			union[s] = true
		}
	}
	parts := make([]string, 0, len(union)+len(missing))
	for _, s := range Sorted(union) {
		parts = append(parts, s.Name)
	}
	parts = append(parts, missing...)
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Sorted returns the whole cone sorted by name (for deterministic output).
func Sorted(cone map[*rtl.Signal]bool) []*rtl.Signal {
	out := make([]*rtl.Signal, 0, len(cone))
	for s := range cone {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
