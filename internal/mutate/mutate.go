// Package mutate implements the systematic mutation-based fault injection of
// Section 7.4: an internal design signal is forced stuck-at-0 or stuck-at-1
// and the previously mined assertions are re-checked on the mutated design.
// Assertions that fail on the mutant detect ("cover") the injected fault.
package mutate

import (
	"fmt"
	"sort"

	"goldmine/internal/assertion"
	"goldmine/internal/mc"
	"goldmine/internal/monitor"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/simc"
	"goldmine/internal/telemetry"
)

// Fault is a stuck-at fault on a named signal. StuckAt1 false forces all bits
// to 0, true forces all bits to 1.
type Fault struct {
	Signal   string
	StuckAt1 bool
}

func (f Fault) String() string {
	v := 0
	if f.StuckAt1 {
		v = 1
	}
	return fmt.Sprintf("%s stuck-at-%d", f.Signal, v)
}

// Apply returns a mutated copy of the design with the fault injected. The
// original design is not modified (signal metadata is shared, expression maps
// are rebuilt).
func Apply(d *rtl.Design, f Fault) (*rtl.Design, error) {
	sig := d.Signal(f.Signal)
	if sig == nil {
		return nil, fmt.Errorf("mutate: no signal %q in %s", f.Signal, d.Name)
	}
	var val uint64
	if f.StuckAt1 {
		val = rtl.Mask(sig.Width)
	}
	stuck := rtl.NewConst(val, sig.Width)

	md := &rtl.Design{
		Name:    d.Name + "~" + f.String(),
		Signals: d.Signals,
		Clock:   d.Clock,
		Comb:    map[*rtl.Signal]rtl.Expr{},
		Next:    map[*rtl.Signal]rtl.Expr{},
		Cover:   d.Cover,
	}
	// Rebuild the signal index by re-adding? rtl.Design has a private map;
	// construct via the public surface: copy expression maps and rely on
	// Signal() working through Signals. See rtl.Rebind below.
	for s, e := range d.Comb {
		md.Comb[s] = e
	}
	for s, e := range d.Next {
		md.Next[s] = e
	}

	switch {
	case sig.Kind == rtl.SigInput:
		// Inputs have no driver: replace every read of the signal.
		for s, e := range md.Comb {
			md.Comb[s] = replaceRef(e, sig, stuck)
		}
		for s, e := range md.Next {
			md.Next[s] = replaceRef(e, sig, stuck)
		}
	case sig.IsState:
		md.Next[sig] = stuck
		// The current-cycle value read by consumers still comes from the
		// register; forcing the next-state makes it stuck from cycle 1 on.
		// To make the fault effective in cycle 0 too, also rewrite reads.
		for s, e := range md.Comb {
			md.Comb[s] = replaceRef(e, sig, stuck)
		}
		for s, e := range md.Next {
			if s == sig {
				continue
			}
			md.Next[s] = replaceRef(e, sig, stuck)
		}
	default:
		md.Comb[sig] = stuck
	}
	if err := rtl.Rebind(md); err != nil {
		return nil, err
	}
	return md, nil
}

// replaceRef substitutes constant c for every read of sig in e.
func replaceRef(e rtl.Expr, sig *rtl.Signal, c rtl.Expr) rtl.Expr {
	switch x := e.(type) {
	case *rtl.Ref:
		if x.Sig == sig {
			return c
		}
		return x
	case *rtl.Const, nil:
		return e
	case *rtl.Unary:
		return &rtl.Unary{Op: x.Op, X: replaceRef(x.X, sig, c), W: x.W}
	case *rtl.Binary:
		return &rtl.Binary{Op: x.Op, A: replaceRef(x.A, sig, c), B: replaceRef(x.B, sig, c), W: x.W}
	case *rtl.Mux:
		return &rtl.Mux{
			Cond: replaceRef(x.Cond, sig, c),
			T:    replaceRef(x.T, sig, c),
			F:    replaceRef(x.F, sig, c),
			W:    x.W,
		}
	case *rtl.Select:
		return &rtl.Select{X: replaceRef(x.X, sig, c), Bit: x.Bit}
	case *rtl.Slice:
		return &rtl.Slice{X: replaceRef(x.X, sig, c), MSB: x.MSB, LSB: x.LSB}
	case *rtl.Concat:
		parts := make([]rtl.Expr, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = replaceRef(p, sig, c)
		}
		return rtl.NewConcat(parts)
	default:
		return e
	}
}

// AllFaults enumerates the full stuck-at fault universe of a design: every
// signal except the clock, stuck-at-0 then stuck-at-1, in name order. The
// deterministic order matters downstream — the corpus ranking oracle indexes
// kill sets by position in this list.
func AllFaults(d *rtl.Design) []Fault {
	names := make([]string, 0, len(d.Signals))
	for _, s := range d.Signals {
		if s.Name == d.Clock {
			continue
		}
		names = append(names, s.Name)
	}
	sort.Strings(names)
	out := make([]Fault, 0, 2*len(names))
	for _, n := range names {
		out = append(out, Fault{Signal: n, StuckAt1: false}, Fault{Signal: n, StuckAt1: true})
	}
	return out
}

// Detection reports how many assertions detect a fault.
type Detection struct {
	Fault    Fault
	Detected int // assertions that fail on the mutant
	Total    int
	// Detecting lists the indices of detecting assertions.
	Detecting []int
}

// SimCampaign is the simulation flavor of Campaign: instead of re-checking
// each assertion formally on a mutated design, it runs the stimulus on the
// bit-parallel batch simulator with up to 64 stuck-at faults pinned into
// separate lanes of one run, then replays each lane's trace through the
// assertion monitors. An assertion detects a fault when it fires at least one
// violation on that fault's lane. The design compiles once (all fault signals
// declared forceable) and faults are re-pinned between 64-lane chunks, so a
// whole campaign costs a handful of batched simulations regardless of the
// fault-list length. tel may be nil; when set, each chunk records a sim.batch
// span.
func SimCampaign(d *rtl.Design, asserts []*assertion.Assertion, faults []Fault, stim sim.Stimulus, tel *telemetry.Tracer) ([]Detection, error) {
	names := make([]string, 0, len(faults))
	seen := map[string]bool{}
	for _, f := range faults {
		if d.Signal(f.Signal) == nil {
			return nil, fmt.Errorf("mutate: no signal %q in %s", f.Signal, d.Name)
		}
		if !seen[f.Signal] {
			seen[f.Signal] = true
			names = append(names, f.Signal)
		}
	}
	p, err := simc.CompileBatch(d, simc.BatchOptions{Forceable: names})
	if err != nil {
		return nil, err
	}
	m := simc.NewBatchMachine(p)
	out := make([]Detection, 0, len(faults))
	for off := 0; off < len(faults); off += simc.MaxLanes {
		chunk := faults[off:min(off+simc.MaxLanes, len(faults))]
		m.ClearForces()
		lanes := make([]sim.Stimulus, len(chunk))
		for l, f := range chunk {
			var v uint64
			if f.StuckAt1 {
				v = ^uint64(0) // SetForce masks to the signal's width
			}
			if err := m.SetForce(l, f.Signal, v); err != nil {
				return nil, err
			}
			lanes[l] = stim
		}
		sp := tel.Root("sim.batch",
			telemetry.String("design", d.Name),
			telemetry.Int("lanes", int64(len(chunk))),
			telemetry.Int("cycles", int64(len(stim))))
		traces, err := m.RunBatch(lanes)
		sp.End()
		if err != nil {
			return nil, err
		}
		for l, f := range chunk {
			mon, err := monitor.New(d, asserts)
			if err != nil {
				return nil, err
			}
			if err := mon.RunTrace(traces[l]); err != nil {
				return nil, err
			}
			det := Detection{Fault: f, Total: len(asserts)}
			for i, st := range mon.AssertionStats() {
				if st.Violations > 0 {
					det.Detected++
					det.Detecting = append(det.Detecting, i)
				}
			}
			out = append(out, det)
		}
	}
	return out, nil
}

// Campaign checks every assertion against every fault, reproducing Table 2.
func Campaign(d *rtl.Design, asserts []*assertion.Assertion, faults []Fault, opts mc.Options) ([]Detection, error) {
	var out []Detection
	for _, f := range faults {
		md, err := Apply(d, f)
		if err != nil {
			return nil, err
		}
		checker := mc.NewWithOptions(md, opts)
		det := Detection{Fault: f, Total: len(asserts)}
		for i, a := range asserts {
			res, err := checker.Check(a)
			if err != nil {
				return nil, err
			}
			if res.Status == mc.StatusFalsified {
				det.Detected++
				det.Detecting = append(det.Detecting, i)
			}
		}
		out = append(out, det)
	}
	return out, nil
}
