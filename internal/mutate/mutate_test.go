package mutate

import (
	"context"

	"testing"

	"goldmine/internal/assertion"
	"goldmine/internal/core"
	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

const arbiterSrc = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk)
    if (rst) begin gnt0 <= 0; gnt1 <= 0; end
    else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule`

func mustDesign(t *testing.T, src string) *rtl.Design {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestApplyStuckAtOutput(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	md, err := Apply(d, Fault{Signal: "gnt0", StuckAt1: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Simulate(md, sim.Stimulus{{"rst": 1}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	// From cycle 1 on the register is stuck at 1 despite reset.
	if v, _ := tr.Value(2, "gnt0"); v != 1 {
		t.Errorf("stuck-at-1 gnt0 = %d", v)
	}
	// Original design unchanged.
	tro, _ := sim.Simulate(d, sim.Stimulus{{"rst": 1}, {}, {}})
	if v, _ := tro.Value(2, "gnt0"); v != 0 {
		t.Errorf("original design mutated: gnt0 = %d", v)
	}
}

func TestApplyStuckAtInput(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	md, err := Apply(d, Fault{Signal: "req0", StuckAt1: false})
	if err != nil {
		t.Fatal(err)
	}
	// With req0 stuck at 0, gnt0 can never rise.
	tr, _ := sim.Simulate(md, sim.Stimulus{{"rst": 1}, {"req0": 1}, {"req0": 1}, {"req0": 1}})
	for c := 0; c < tr.Cycles(); c++ {
		if v, _ := tr.Value(c, "gnt0"); v != 0 {
			t.Fatalf("cycle %d: gnt0=%d with req0 stuck at 0", c, v)
		}
	}
}

func TestApplyUnknownSignal(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	if _, err := Apply(d, Fault{Signal: "nosuch"}); err == nil {
		t.Error("unknown signal should error")
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Signal: "x", StuckAt1: true}
	if f.String() != "x stuck-at-1" {
		t.Errorf("got %q", f.String())
	}
	f0 := Fault{Signal: "y"}
	if f0.String() != "y stuck-at-0" {
		t.Errorf("got %q", f0.String())
	}
}

func TestCampaignDetectsFaults(t *testing.T) {
	// Mine assertions on the correct arbiter, then inject faults (Section
	// 7.4): every fault must be detected by at least one assertion.
	d := mustDesign(t, arbiterSrc)
	e, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.MineAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	asserts := res.Assertions()
	if len(asserts) == 0 {
		t.Fatal("no assertions mined")
	}
	faults := []Fault{
		{Signal: "gnt0", StuckAt1: false},
		{Signal: "gnt0", StuckAt1: true},
		{Signal: "req1", StuckAt1: true},
	}
	dets, err := Campaign(d, asserts, faults, mc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range dets {
		if det.Detected == 0 {
			t.Errorf("%s not detected by any of %d assertions", det.Fault, det.Total)
		}
		if det.Detected != len(det.Detecting) {
			t.Errorf("%s: count mismatch", det.Fault)
		}
	}
}

func TestStuckAtDifferentPolaritiesDiffer(t *testing.T) {
	// Sanity for Table 2's shape: the two polarities of one signal are
	// generally detected by different numbers of assertions.
	d := mustDesign(t, arbiterSrc)
	e, _ := core.NewEngine(d, core.DefaultConfig())
	res, err := e.MineAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	asserts := res.Assertions()
	dets, err := Campaign(d, asserts, []Fault{
		{Signal: "req0", StuckAt1: false},
		{Signal: "req0", StuckAt1: true},
	}, mc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if dets[0].Detected == 0 && dets[1].Detected == 0 {
		t.Error("req0 faults completely undetected")
	}
	t.Logf("req0 s-a-0 detected by %d, s-a-1 by %d of %d assertions",
		dets[0].Detected, dets[1].Detected, len(asserts))
}

func TestWholeAssertionSuiteStillProvesOnCleanDesign(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	e, _ := core.NewEngine(d, core.DefaultConfig())
	res, err := e.MineAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	checker := mc.New(d)
	for _, a := range res.Assertions() {
		v, err := checker.Check(a)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == mc.StatusFalsified {
			t.Errorf("assertion fails on clean design: %s", a)
		}
	}
	_ = assertion.Assertion{} // keep import for clarity of the test's domain
}
