package mutate

import (
	"context"

	"testing"

	"reflect"

	"goldmine/internal/assertion"
	"goldmine/internal/core"
	"goldmine/internal/mc"
	"goldmine/internal/monitor"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

const arbiterSrc = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk)
    if (rst) begin gnt0 <= 0; gnt1 <= 0; end
    else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule`

func mustDesign(t *testing.T, src string) *rtl.Design {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestApplyStuckAtOutput(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	md, err := Apply(d, Fault{Signal: "gnt0", StuckAt1: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Simulate(md, sim.Stimulus{{"rst": 1}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	// From cycle 1 on the register is stuck at 1 despite reset.
	if v, _ := tr.Value(2, "gnt0"); v != 1 {
		t.Errorf("stuck-at-1 gnt0 = %d", v)
	}
	// Original design unchanged.
	tro, _ := sim.Simulate(d, sim.Stimulus{{"rst": 1}, {}, {}})
	if v, _ := tro.Value(2, "gnt0"); v != 0 {
		t.Errorf("original design mutated: gnt0 = %d", v)
	}
}

func TestApplyStuckAtInput(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	md, err := Apply(d, Fault{Signal: "req0", StuckAt1: false})
	if err != nil {
		t.Fatal(err)
	}
	// With req0 stuck at 0, gnt0 can never rise.
	tr, _ := sim.Simulate(md, sim.Stimulus{{"rst": 1}, {"req0": 1}, {"req0": 1}, {"req0": 1}})
	for c := 0; c < tr.Cycles(); c++ {
		if v, _ := tr.Value(c, "gnt0"); v != 0 {
			t.Fatalf("cycle %d: gnt0=%d with req0 stuck at 0", c, v)
		}
	}
}

func TestApplyUnknownSignal(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	if _, err := Apply(d, Fault{Signal: "nosuch"}); err == nil {
		t.Error("unknown signal should error")
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Signal: "x", StuckAt1: true}
	if f.String() != "x stuck-at-1" {
		t.Errorf("got %q", f.String())
	}
	f0 := Fault{Signal: "y"}
	if f0.String() != "y stuck-at-0" {
		t.Errorf("got %q", f0.String())
	}
}

func TestCampaignDetectsFaults(t *testing.T) {
	// Mine assertions on the correct arbiter, then inject faults (Section
	// 7.4): every fault must be detected by at least one assertion.
	d := mustDesign(t, arbiterSrc)
	e, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.MineAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	asserts := res.Assertions()
	if len(asserts) == 0 {
		t.Fatal("no assertions mined")
	}
	faults := []Fault{
		{Signal: "gnt0", StuckAt1: false},
		{Signal: "gnt0", StuckAt1: true},
		{Signal: "req1", StuckAt1: true},
	}
	dets, err := Campaign(d, asserts, faults, mc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range dets {
		if det.Detected == 0 {
			t.Errorf("%s not detected by any of %d assertions", det.Fault, det.Total)
		}
		if det.Detected != len(det.Detecting) {
			t.Errorf("%s: count mismatch", det.Fault)
		}
	}
}

func TestStuckAtDifferentPolaritiesDiffer(t *testing.T) {
	// Sanity for Table 2's shape: the two polarities of one signal are
	// generally detected by different numbers of assertions.
	d := mustDesign(t, arbiterSrc)
	e, _ := core.NewEngine(d, core.DefaultConfig())
	res, err := e.MineAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	asserts := res.Assertions()
	dets, err := Campaign(d, asserts, []Fault{
		{Signal: "req0", StuckAt1: false},
		{Signal: "req0", StuckAt1: true},
	}, mc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if dets[0].Detected == 0 && dets[1].Detected == 0 {
		t.Error("req0 faults completely undetected")
	}
	t.Logf("req0 s-a-0 detected by %d, s-a-1 by %d of %d assertions",
		dets[0].Detected, dets[1].Detected, len(asserts))
}

func TestWholeAssertionSuiteStillProvesOnCleanDesign(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	e, _ := core.NewEngine(d, core.DefaultConfig())
	res, err := e.MineAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	checker := mc.New(d)
	for _, a := range res.Assertions() {
		v, err := checker.Check(a)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == mc.StatusFalsified {
			t.Errorf("assertion fails on clean design: %s", a)
		}
	}
	_ = assertion.Assertion{} // keep import for clarity of the test's domain
}

// simAsserts mines the arbiter suite once for the simulation-campaign tests.
func simAsserts(t *testing.T, d *rtl.Design) []*assertion.Assertion {
	t.Helper()
	e, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.MineAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	asserts := res.Assertions()
	if len(asserts) == 0 {
		t.Fatal("no assertions mined")
	}
	return asserts
}

func TestSimCampaignMatchesScalarForce(t *testing.T) {
	// The 64-lane batched campaign must report exactly the detections of a
	// one-fault-at-a-time interpreter run with Simulator.Force.
	d := mustDesign(t, arbiterSrc)
	asserts := simAsserts(t, d)
	faults := []Fault{
		{Signal: "gnt0", StuckAt1: false},
		{Signal: "gnt0", StuckAt1: true},
		{Signal: "gnt1", StuckAt1: true},
		{Signal: "req0", StuckAt1: false},
		{Signal: "req1", StuckAt1: true},
	}
	stim := stimgen.Random(d, 400, 3, 2)
	dets, err := SimCampaign(d, asserts, faults, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != len(faults) {
		t.Fatalf("detections %d want %d", len(dets), len(faults))
	}
	for i, f := range faults {
		s, err := sim.New(d)
		if err != nil {
			t.Fatal(err)
		}
		var v uint64
		if f.StuckAt1 {
			v = ^uint64(0)
		}
		if err := s.Force(f.Signal, v); err != nil {
			t.Fatal(err)
		}
		mon, err := monitor.New(d, asserts)
		if err != nil {
			t.Fatal(err)
		}
		mon.Attach(s)
		if _, err := s.Run(stim); err != nil {
			t.Fatal(err)
		}
		var want []int
		for ai, st := range mon.AssertionStats() {
			if st.Violations > 0 {
				want = append(want, ai)
			}
		}
		if !reflect.DeepEqual(dets[i].Detecting, want) {
			t.Errorf("%s: batched detecting %v, scalar force %v", f, dets[i].Detecting, want)
		}
		if dets[i].Detected != len(want) {
			t.Errorf("%s: count %d want %d", f, dets[i].Detected, len(want))
		}
	}
}

func TestSimCampaignDetectsFaults(t *testing.T) {
	// Register faults must be caught. (Input stuck-at faults can legitimately
	// escape simulation monitors: the forced value is visible in the trace, so
	// antecedents requiring the opposite polarity go vacuous — the formal
	// Campaign, which rewrites only the reads, is the stronger detector there.)
	d := mustDesign(t, arbiterSrc)
	asserts := simAsserts(t, d)
	faults := []Fault{
		{Signal: "gnt0", StuckAt1: false},
		{Signal: "gnt0", StuckAt1: true},
		{Signal: "gnt1", StuckAt1: true},
	}
	dets, err := SimCampaign(d, asserts, faults, stimgen.Random(d, 500, 7, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range dets {
		if det.Detected == 0 {
			t.Errorf("%s not detected by any of %d assertions", det.Fault, det.Total)
		}
		if det.Detected != len(det.Detecting) {
			t.Errorf("%s: count mismatch", det.Fault)
		}
	}
}

func TestSimCampaignChunksPast64Lanes(t *testing.T) {
	// More faults than lanes: the campaign must split into 64-lane chunks and
	// duplicate faults must produce identical detections.
	d := mustDesign(t, arbiterSrc)
	asserts := simAsserts(t, d)
	base := []Fault{
		{Signal: "gnt0", StuckAt1: false},
		{Signal: "gnt0", StuckAt1: true},
		{Signal: "gnt1", StuckAt1: false},
		{Signal: "gnt1", StuckAt1: true},
		{Signal: "req0", StuckAt1: true},
		{Signal: "req1", StuckAt1: true},
	}
	var faults []Fault
	for len(faults) < 70 {
		faults = append(faults, base...)
	}
	dets, err := SimCampaign(d, asserts, faults, stimgen.Random(d, 200, 13, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != len(faults) {
		t.Fatalf("detections %d want %d", len(dets), len(faults))
	}
	for i, det := range dets {
		ref := dets[i%len(base)]
		if !reflect.DeepEqual(det.Detecting, ref.Detecting) {
			t.Errorf("fault %d (%s): chunked detection %v differs from first-chunk %v",
				i, det.Fault, det.Detecting, ref.Detecting)
		}
	}
}

func TestSimCampaignUnknownSignal(t *testing.T) {
	d := mustDesign(t, arbiterSrc)
	if _, err := SimCampaign(d, nil, []Fault{{Signal: "ghost"}}, sim.Stimulus{{}}, nil); err == nil {
		t.Error("unknown fault signal should error")
	}
}
