package monitor_test

import (
	"context"

	"testing"

	"goldmine/internal/assertion"
	"goldmine/internal/core"
	"goldmine/internal/designs"
	"goldmine/internal/monitor"
	"goldmine/internal/mutate"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

func arbiterSuite(t *testing.T) (*rtl.Design, []*assertion.Assertion) {
	t.Helper()
	b, err := designs.Get("arbiter2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Design()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Window = b.Window
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.MineAll(context.Background(), b.Directed())
	if err != nil {
		t.Fatal(err)
	}
	return d, res.Assertions()
}

func TestMonitorCleanOnCorrectDesign(t *testing.T) {
	d, suite := arbiterSuite(t)
	m, err := monitor.New(d, suite)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunSuite([]sim.Stimulus{stimgen.Random(d, 3000, 5, 2)}); err != nil {
		t.Fatal(err)
	}
	if !m.Clean() {
		v := m.Violations()[0]
		t.Fatalf("proved assertion %d violated at cycle %d: %s", v.Index, v.Cycle, suite[v.Index])
	}
	// Long random stimulus should activate most assertions.
	if m.VacuousCount() == len(suite) {
		t.Error("no assertion ever activated")
	}
}

func TestMonitorCatchesInjectedFault(t *testing.T) {
	d, suite := arbiterSuite(t)
	mutant, err := mutate.Apply(d, mutate.Fault{Signal: "gnt0", StuckAt1: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := monitor.New(mutant, suite)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunSuite([]sim.Stimulus{stimgen.Random(mutant, 500, 5, 2)}); err != nil {
		t.Fatal(err)
	}
	if m.Clean() {
		t.Fatal("stuck-at fault escaped the assertion monitor")
	}
	// Stats must be consistent: violations <= activations per assertion.
	for i, st := range m.AssertionStats() {
		if st.Violations > st.Activations {
			t.Errorf("assertion %d: violations %d > activations %d", i, st.Violations, st.Activations)
		}
	}
}

func TestMonitorWindowBoundaries(t *testing.T) {
	// A two-cycle-window assertion must not fire across BeginRun boundaries.
	d, _ := rtl.ElaborateSource(`
module m(input clk, a, output reg q);
  always @(posedge clk) q <= a;
endmodule`)
	// a ==> X q: trivially true of the design.
	a := &assertion.Assertion{
		Output:     "q",
		Antecedent: []assertion.Prop{assertion.P("a", 0, 1, 1)},
		Consequent: assertion.P("q", 1, 1, 1),
	}
	m, err := monitor.New(d, []*assertion.Assertion{a})
	if err != nil {
		t.Fatal(err)
	}
	// Run 1 ends with a=1; run 2 starts with q=0 — without run isolation
	// this would register a spurious violation.
	if err := m.RunSuite([]sim.Stimulus{
		{{"a": 1}},
		{{"a": 0}, {"a": 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if !m.Clean() {
		t.Fatalf("spurious cross-run violation: %+v", m.Violations())
	}
	// Within one run it fires correctly on a real violation of a false rule.
	bad := &assertion.Assertion{
		Output:     "q",
		Antecedent: []assertion.Prop{assertion.P("a", 0, 1, 1)},
		Consequent: assertion.P("q", 1, 0, 1), // wrong: q follows a
	}
	m2, _ := monitor.New(d, []*assertion.Assertion{bad})
	if err := m2.RunSuite([]sim.Stimulus{{{"a": 1}, {"a": 0}}}); err != nil {
		t.Fatal(err)
	}
	if m2.Clean() {
		t.Fatal("false assertion not caught")
	}
	if m2.Violations()[0].Cycle != 0 {
		t.Errorf("violation cycle %d want 0", m2.Violations()[0].Cycle)
	}
}

func TestMonitorUnknownSignal(t *testing.T) {
	d, _ := rtl.ElaborateSource(`module m(input a, output y); assign y = a; endmodule`)
	bad := &assertion.Assertion{
		Output:     "y",
		Antecedent: []assertion.Prop{assertion.P("ghost", 0, 1, 1)},
		Consequent: assertion.P("y", 0, 1, 1),
	}
	if _, err := monitor.New(d, []*assertion.Assertion{bad}); err == nil {
		t.Error("unknown signal should error")
	}
}

func TestMonitorViolationCap(t *testing.T) {
	d, _ := rtl.ElaborateSource(`module m(input a, output y); assign y = a; endmodule`)
	alwaysWrong := &assertion.Assertion{
		Output:     "y",
		Consequent: assertion.P("y", 0, 1, 1), // claims y always 1
	}
	m, _ := monitor.New(d, []*assertion.Assertion{alwaysWrong})
	m.MaxViolations = 3
	var stim sim.Stimulus
	for i := 0; i < 10; i++ {
		stim = append(stim, sim.InputVec{"a": 0})
	}
	if err := m.RunSuite([]sim.Stimulus{stim}); err != nil {
		t.Fatal(err)
	}
	if len(m.Violations()) != 3 {
		t.Errorf("violations recorded %d want cap 3", len(m.Violations()))
	}
	if m.AssertionStats()[0].Violations != 10 {
		t.Errorf("stats must keep counting past the cap: %d", m.AssertionStats()[0].Violations)
	}
}
