// Package monitor implements runtime assertion checking: mined assertions
// attach to a simulator as observers and are evaluated on every window of
// live simulation, the way traditional testbench monitors consume SVA. The
// paper's conclusion positions the mined assertions exactly this way — as
// regression monitors in a validation environment — and the Section 7.4
// fault experiment uses them as the regression vehicle.
package monitor

import (
	"fmt"

	"goldmine/internal/assertion"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// Violation records one assertion failure during simulation.
type Violation struct {
	// Assertion index into the monitor's suite.
	Index int
	// Cycle is the window-start cycle of the violation.
	Cycle int
}

// Stats aggregates per-assertion activity.
type Stats struct {
	// Activations counts windows where the antecedent matched.
	Activations int
	// Violations counts antecedent matches with a failing consequent.
	Violations int
}

// Monitor evaluates a suite of assertions over a sliding window of
// simulation cycles.
type Monitor struct {
	d     *rtl.Design
	suite []*assertion.Assertion

	// resolved propositions per assertion.
	ants  [][]resolvedProp
	cons  []resolvedProp
	depth int // window depth = max consequent offset + 1

	// ring buffer of the last `depth` cycle snapshots.
	ring  [][]uint64
	sigs  []*rtl.Signal
	index map[*rtl.Signal]int
	seen  int // cycles observed since reset

	stats      []Stats
	violations []Violation
	// MaxViolations bounds the recorded violation list (0 = 1000).
	MaxViolations int
	// OnActivation, when non-nil, receives every antecedent match as
	// (assertion index, window-start cycle). The corpus scoring oracle uses
	// it to record each assertion's temporal coverage contribution; leave
	// nil to keep the per-window cost at two counter bumps.
	OnActivation func(index, cycle int)
}

type resolvedProp struct {
	sig    *rtl.Signal
	bit    int
	offset int
	value  uint64
}

// New builds a monitor for the assertion suite on a design.
func New(d *rtl.Design, suite []*assertion.Assertion) (*Monitor, error) {
	m := &Monitor{
		d:     d,
		suite: suite,
		stats: make([]Stats, len(suite)),
		index: map[*rtl.Signal]int{},
	}
	resolve := func(p assertion.Prop) (resolvedProp, error) {
		sig := d.Signal(p.Signal)
		if sig == nil {
			return resolvedProp{}, fmt.Errorf("monitor: unknown signal %q", p.Signal)
		}
		if _, ok := m.index[sig]; !ok {
			m.index[sig] = len(m.sigs)
			m.sigs = append(m.sigs, sig)
		}
		rp := resolvedProp{sig: sig, bit: p.Bit, offset: p.Offset, value: p.Value}
		if p.Bit < 0 {
			rp.value &= rtl.Mask(sig.Width)
		} else {
			rp.value &= 1
		}
		return rp, nil
	}
	for _, a := range suite {
		var ants []resolvedProp
		for _, p := range a.Antecedent {
			rp, err := resolve(p)
			if err != nil {
				return nil, err
			}
			ants = append(ants, rp)
		}
		cp, err := resolve(a.Consequent)
		if err != nil {
			return nil, err
		}
		m.ants = append(m.ants, ants)
		m.cons = append(m.cons, cp)
		if cp.offset+1 > m.depth {
			m.depth = cp.offset + 1
		}
	}
	if m.depth == 0 {
		m.depth = 1
	}
	m.ring = make([][]uint64, m.depth)
	for i := range m.ring {
		m.ring[i] = make([]uint64, len(m.sigs))
	}
	return m, nil
}

// Attach registers the monitor on a simulator. Call BeginRun before each
// reset so windows never straddle independent runs.
func (m *Monitor) Attach(s *sim.Simulator) { s.Observe(m.Observe) }

// BeginRun clears the sliding window at a reset boundary.
func (m *Monitor) BeginRun() { m.seen = 0 }

// Observe consumes one settled simulation cycle.
func (m *Monitor) Observe(env rtl.Env) {
	slot := m.seen % m.depth
	for i, sig := range m.sigs {
		m.ring[slot][i] = env.Get(sig) & rtl.Mask(sig.Width)
	}
	m.advance()
}

// advance evaluates the assertion windows after a new cycle has been written
// into the ring buffer at slot seen%depth.
func (m *Monitor) advance() {
	m.seen++
	if m.seen < m.depth {
		return // window not yet full
	}
	// The completed window starts depth-1 cycles ago.
	start := m.seen - m.depth
	for ai := range m.suite {
		match := true
		for _, p := range m.ants[ai] {
			if m.windowValue(start, p) != p.value {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		m.stats[ai].Activations++
		if m.OnActivation != nil {
			m.OnActivation(ai, start)
		}
		if m.windowValue(start, m.cons[ai]) != m.cons[ai].value {
			m.stats[ai].Violations++
			maxV := m.MaxViolations
			if maxV <= 0 {
				maxV = 1000
			}
			if len(m.violations) < maxV {
				m.violations = append(m.violations, Violation{Index: ai, Cycle: start})
			}
		}
	}
}

// windowValue reads the proposition's value at window-start cycle + offset
// from the ring buffer.
func (m *Monitor) windowValue(start int, p resolvedProp) uint64 {
	slot := (start + p.offset) % m.depth
	v := m.ring[slot][m.index[p.sig]]
	if p.bit >= 0 {
		return (v >> uint(p.bit)) & 1
	}
	return v
}

// Violations returns the recorded failures.
func (m *Monitor) Violations() []Violation { return m.violations }

// AssertionStats returns per-assertion activation/violation counts.
func (m *Monitor) AssertionStats() []Stats { return append([]Stats(nil), m.stats...) }

// Clean reports whether no assertion fired a violation.
func (m *Monitor) Clean() bool { return len(m.violations) == 0 }

// VacuousCount counts assertions whose antecedent never activated — useful
// to gauge how much of the suite a regression actually exercises.
func (m *Monitor) VacuousCount() int {
	n := 0
	for _, st := range m.stats {
		if st.Activations == 0 {
			n++
		}
	}
	return n
}

// RunTrace replays a recorded trace through the monitor without
// re-simulating: each row is treated as one settled cycle. This is how
// batched simulation output (64 lanes transposed back to individual traces)
// feeds the regression monitors — the simulator has already run, only the
// window evaluation remains. Trace values are stored raw (driver-width), so
// they are masked to signal width here exactly as Observe masks live values.
func (m *Monitor) RunTrace(tr *sim.Trace) error {
	cols := make([]int, len(m.sigs))
	for i, sig := range m.sigs {
		c := tr.Column(sig.Name)
		if c < 0 {
			return fmt.Errorf("monitor: trace has no signal %q", sig.Name)
		}
		if tr.Signals[c].Width != sig.Width {
			return fmt.Errorf("monitor: trace signal %s width %d, design width %d",
				sig.Name, tr.Signals[c].Width, sig.Width)
		}
		cols[i] = c
	}
	m.BeginRun()
	for _, row := range tr.Values {
		slot := m.seen % m.depth
		for i, sig := range m.sigs {
			m.ring[slot][i] = row[cols[i]] & rtl.Mask(sig.Width)
		}
		m.advance()
	}
	return nil
}

// RunSuite resets and replays each stimulus with the monitor attached.
func (m *Monitor) RunSuite(suite []sim.Stimulus) error {
	s, err := sim.New(m.d)
	if err != nil {
		return err
	}
	s.Observe(m.Observe)
	for _, stim := range suite {
		m.BeginRun()
		s.Reset()
		for _, iv := range stim {
			if err := s.Step(iv, nil); err != nil {
				return err
			}
		}
	}
	return nil
}
