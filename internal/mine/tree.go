// Package mine implements the A-Miner of the GoldMine flow: a decision-tree
// supervised learner over windowed boolean trace data, plus the paper's
// incremental decision tree (Section 3). Leaves with zero error are candidate
// assertions (100% confidence: a single contradicting row discards a rule).
// When a counterexample row is added, only the leaf on the failed assertion's
// path becomes impure and is split further; the variable ordering of all
// existing internal nodes is preserved (Definition 6).
package mine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"goldmine/internal/assertion"
	"goldmine/internal/trace"
)

// ErrProvedContradicted reports that new trace rows contradicted a leaf whose
// assertion had already been formally proved — either the prover or the
// simulator is unsound for this design. The leaf is demoted (Proved cleared,
// Stuck set) so mining can continue around it.
var ErrProvedContradicted = errors.New("mine: proved leaf contradicted by new data")

// Node is a decision-tree node. Var < 0 marks a leaf; otherwise Zero/One are
// the subtrees for the split variable's two values.
type Node struct {
	Var       int
	Zero, One *Node

	// Rows are dataset row indices reaching this node.
	Rows []int
	// Mean is the average target value of Rows (the prediction M); Err is
	// the sum of squared errors against Mean (E). A leaf with Err == 0 is a
	// 100%-confidence candidate.
	Mean float64
	Err  float64

	// Depth is the number of split decisions above this node.
	Depth int

	// Proved marks a leaf whose candidate assertion passed formal
	// verification; Stuck marks an impure leaf with no usable split
	// variables even after window extension.
	Proved bool
	Stuck  bool
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Var < 0 }

// Pure reports whether every row agrees with the prediction.
func (n *Node) Pure() bool { return n.Err == 0 }

// PredictedValue is the rounded prediction at the node.
func (n *Node) PredictedValue() uint64 {
	if n.Mean >= 0.5 {
		return 1
	}
	return 0
}

// Leaf couples a leaf node with its root path.
type Leaf struct {
	Node *Node
	// Path lists (var index, value) split decisions from the root.
	Path []PathStep
}

// PathStep is one split decision.
type PathStep struct {
	Var   int
	Value byte
}

// Tree is a (possibly incrementally grown) decision tree for one output bit.
type Tree struct {
	DS   *trace.Dataset
	Root *Node

	// Splits counts total split decisions made (monitoring Theorem 1's
	// bound).
	Splits int
}

// Build constructs a fresh decision tree over all dataset rows. An empty
// dataset yields a single leaf predicting 0 ("output always 0"), the
// zero-pattern starting point of Section 7.2.
func Build(ds *trace.Dataset) *Tree {
	t := &Tree{DS: ds}
	rows := make([]int, ds.Rows())
	for i := range rows {
		rows[i] = i
	}
	t.Root = &Node{Var: -1, Rows: rows}
	t.recompute(t.Root)
	t.grow(t.Root, nil)
	return t
}

// recompute refreshes Mean and Err from the node's rows.
func (t *Tree) recompute(n *Node) {
	if len(n.Rows) == 0 {
		n.Mean = 0
		n.Err = 0
		return
	}
	ones := 0
	for _, r := range n.Rows {
		ones += int(t.DS.Target(r))
	}
	n.Mean = float64(ones) / float64(len(n.Rows))
	// SSE for a Bernoulli split: ones*(1-mean)^2 + zeros*mean^2.
	zeros := float64(len(n.Rows) - ones)
	n.Err = float64(ones)*(1-n.Mean)*(1-n.Mean) + zeros*n.Mean*n.Mean
}

// usedOnPath collects the variables already split on along a path.
func usedOnPath(path []PathStep) map[int]bool {
	used := map[int]bool{}
	for _, st := range path {
		used[st.Var] = true
	}
	return used
}

// grow recursively splits an impure node. It assumes n.Rows/Mean/Err are
// current. The path identifies used variables.
func (t *Tree) grow(n *Node, path []PathStep) {
	if n.Err == 0 {
		return // pure leaf (or empty): candidate assertion
	}
	used := usedOnPath(path)
	v := t.selectSplit(n, used)
	if v < 0 {
		// No variable splits the rows: activate the farthest-back state
		// variables (window extension, Section 3.1) and retry once.
		if t.DS.Extend() {
			v = t.selectSplit(n, used)
		}
		if v < 0 {
			n.Stuck = true
			return
		}
	}
	t.splitOn(n, v, path)
}

// splitOn turns leaf n into an internal node splitting on variable v.
func (t *Tree) splitOn(n *Node, v int, path []PathStep) {
	n.Var = v
	n.Stuck = false
	t.Splits++
	zero := &Node{Var: -1, Depth: n.Depth + 1}
	one := &Node{Var: -1, Depth: n.Depth + 1}
	for _, r := range n.Rows {
		if t.DS.Value(r, v) == 0 {
			zero.Rows = append(zero.Rows, r)
		} else {
			one.Rows = append(one.Rows, r)
		}
	}
	n.Zero, n.One = zero, one
	t.recompute(zero)
	t.recompute(one)
	t.grow(zero, append(path, PathStep{Var: v, Value: 0}))
	t.grow(one, append(path, PathStep{Var: v, Value: 1}))
}

// selectSplit picks the unused variable that minimizes the children's summed
// error, requiring a non-trivial partition. Ties break toward the lowest
// variable index for determinism. Returns -1 when nothing splits.
func (t *Tree) selectSplit(n *Node, used map[int]bool) int {
	best := -1
	bestErr := 0.0
	for v := 0; v < t.DS.NumVars(); v++ {
		if used[v] {
			continue
		}
		var n0, n1, o0, o1 int
		for _, r := range n.Rows {
			if t.DS.Value(r, v) == 0 {
				n0++
				o0 += int(t.DS.Target(r))
			} else {
				n1++
				o1 += int(t.DS.Target(r))
			}
		}
		if n0 == 0 || n1 == 0 {
			continue
		}
		err := sse(n0, o0) + sse(n1, o1)
		if best < 0 || err < bestErr {
			best = v
			bestErr = err
		}
	}
	return best
}

func sse(n, ones int) float64 {
	if n == 0 {
		return 0
	}
	mean := float64(ones) / float64(n)
	return float64(ones)*(1-mean)*(1-mean) + float64(n-ones)*mean*mean
}

// AddRows routes freshly appended dataset rows down the tree, recomputing
// statistics along each path and resplitting any leaf that becomes impure.
// Existing split variables are never changed (incremental tree,
// Definition 6). If a proved leaf is contradicted it is demoted to stuck and
// an error wrapping ErrProvedContradicted is returned; the remaining leaves
// are still processed, so the tree stays usable.
func (t *Tree) AddRows(rowIdx []int) error {
	type touch struct {
		node *Node
		path []PathStep
	}
	touched := map[*Node]touch{}
	for _, r := range rowIdx {
		n := t.Root
		var path []PathStep
		for {
			n.Rows = append(n.Rows, r)
			t.recompute(n)
			if n.IsLeaf() {
				touched[n] = touch{node: n, path: append([]PathStep(nil), path...)}
				break
			}
			val := t.DS.Value(r, n.Var)
			path = append(path, PathStep{Var: n.Var, Value: val})
			if val == 0 {
				n = n.Zero
			} else {
				n = n.One
			}
		}
	}
	// Deterministic processing order.
	var order []touch
	for _, tc := range touched {
		order = append(order, tc)
	}
	sort.Slice(order, func(i, j int) bool {
		return pathKey(order[i].path) < pathKey(order[j].path)
	})
	var errs error
	for _, tc := range order {
		n := tc.node
		if n.Err > 0 {
			// A proved leaf can never be contradicted by real behaviour: its
			// assertion holds on all reachable traces. Demote it rather than
			// corrupting the proof bookkeeping by resplitting it.
			if n.Proved {
				n.Proved = false
				n.Stuck = true
				errs = errors.Join(errs, fmt.Errorf("%w (path %s)", ErrProvedContradicted, pathKey(tc.path)))
				continue
			}
			t.grow(n, tc.path)
		}
	}
	return errs
}

func pathKey(path []PathStep) string {
	b := &strings.Builder{}
	for _, st := range path {
		fmt.Fprintf(b, "%d=%d/", st.Var, st.Value)
	}
	return b.String()
}

// Leaves returns all leaves with their paths, in left-to-right order.
func (t *Tree) Leaves() []Leaf {
	var out []Leaf
	var walk func(n *Node, path []PathStep)
	walk = func(n *Node, path []PathStep) {
		if n.IsLeaf() {
			out = append(out, Leaf{Node: n, Path: append([]PathStep(nil), path...)})
			return
		}
		walk(n.Zero, append(path, PathStep{Var: n.Var, Value: 0}))
		walk(n.One, append(path, PathStep{Var: n.Var, Value: 1}))
	}
	walk(t.Root, nil)
	return out
}

// Assertion builds the candidate assertion of a pure leaf: the conjunction of
// path propositions implies the predicted output value. Returns nil for
// impure or empty-path-with-nonzero-error leaves.
func (t *Tree) Assertion(lf Leaf) *assertion.Assertion {
	n := lf.Node
	if !n.Pure() {
		return nil
	}
	a := &assertion.Assertion{
		Output:     t.DS.Out.Name,
		Consequent: t.DS.TargetProp(n.PredictedValue()),
		Window:     t.DS.Window,
		Confidence: 1.0,
		Support:    len(n.Rows),
	}
	for _, st := range lf.Path {
		a.Antecedent = append(a.Antecedent, t.DS.Var(st.Var).Prop(uint64(st.Value)))
	}
	a.Normalize()
	return a
}

// Candidates returns the unproved pure leaves paired with their candidate
// assertions — the assertions due for formal verification this iteration.
// Stuck leaves are skipped: retrying a leaf whose check already timed out or
// faulted would livelock the refinement loop.
func (t *Tree) Candidates() []Candidate {
	var out []Candidate
	for _, lf := range t.Leaves() {
		if lf.Node.Proved || lf.Node.Stuck || !lf.Node.Pure() {
			continue
		}
		if a := t.Assertion(lf); a != nil {
			out = append(out, Candidate{Leaf: lf, Assertion: a})
		}
	}
	return out
}

// Candidate pairs a leaf with its assertion.
type Candidate struct {
	Leaf      Leaf
	Assertion *assertion.Assertion
}

// Converged reports whether every leaf holds a proved assertion — the final
// decision tree F_z of Definition 7.
func (t *Tree) Converged() bool {
	for _, lf := range t.Leaves() {
		if !lf.Node.Proved {
			return false
		}
	}
	return true
}

// Predict routes a feature assignment down the tree and returns the leaf's
// predicted output value plus the leaf itself. The get function supplies the
// value of each feature column.
func (t *Tree) Predict(get func(v trace.VarRef) byte) (uint64, *Node) {
	n := t.Root
	for !n.IsLeaf() {
		if get(t.DS.Var(n.Var)) == 0 {
			n = n.Zero
		} else {
			n = n.One
		}
	}
	return n.PredictedValue(), n
}

// Stats summarizes tree shape.
type Stats struct {
	Nodes, Leaves, ProvedLeaves, StuckLeaves, MaxDepth int
}

// Stats computes size statistics.
func (t *Tree) Stats() Stats {
	var st Stats
	var walk func(n *Node)
	walk = func(n *Node) {
		st.Nodes++
		if n.Depth > st.MaxDepth {
			st.MaxDepth = n.Depth
		}
		if n.IsLeaf() {
			st.Leaves++
			if n.Proved {
				st.ProvedLeaves++
			}
			if n.Stuck {
				st.StuckLeaves++
			}
			return
		}
		walk(n.Zero)
		walk(n.One)
	}
	walk(t.Root)
	return st
}

// String renders the tree for diagnostics.
func (t *Tree) String() string {
	b := &strings.Builder{}
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if n.IsLeaf() {
			status := ""
			if n.Proved {
				status = " [proved]"
			} else if n.Stuck {
				status = " [stuck]"
			} else if n.Pure() {
				status = " [candidate]"
			}
			fmt.Fprintf(b, "%sleaf M=%.2f E=%.2f rows=%d%s\n", indent, n.Mean, n.Err, len(n.Rows), status)
			return
		}
		fmt.Fprintf(b, "%s%s (M=%.2f E=%.2f rows=%d)\n", indent, t.DS.Var(n.Var).Name(), n.Mean, n.Err, len(n.Rows))
		fmt.Fprintf(b, "%s=0:\n", indent)
		walk(n.Zero, indent+"  ")
		fmt.Fprintf(b, "%s=1:\n", indent)
		walk(n.One, indent+"  ")
	}
	walk(t.Root, "")
	return b.String()
}
