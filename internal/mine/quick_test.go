package mine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/trace"
)

// randomDataset builds a dataset over the 3-input XOR/AND design with n
// random stimulus cycles.
func randomDataset(t testing.TB, seed int64, n int) *trace.Dataset {
	t.Helper()
	src := `module m(input a, b, c, output z); assign z = (a ^ b) | (b & c); endmodule`
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.NewDataset(d, d.MustSignal("z"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var stim sim.Stimulus
	for i := 0; i < n; i++ {
		stim = append(stim, sim.InputVec{
			"a": rng.Uint64() & 1, "b": rng.Uint64() & 1, "c": rng.Uint64() & 1,
		})
	}
	tr, err := sim.Simulate(d, stim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddTrace(tr, 0); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestQuickLeavesPartitionRows: for any random dataset, the tree's leaves
// partition the row set, and every row's features match its leaf's path.
func TestQuickLeavesPartitionRows(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomDataset(t, seed, 1+int(uint64(seed)%24))
		tr := Build(ds)
		seen := map[int]int{}
		for _, lf := range tr.Leaves() {
			for _, r := range lf.Node.Rows {
				seen[r]++
				for _, st := range lf.Path {
					if ds.Value(r, st.Var) != st.Value {
						return false
					}
				}
			}
		}
		if len(seen) != ds.Rows() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCandidatesConsistent: every candidate assertion agrees with every
// row in its leaf (100% confidence), and no path repeats a variable.
func TestQuickCandidatesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomDataset(t, seed, 2+int(uint64(seed)%30))
		tr := Build(ds)
		for _, c := range tr.Candidates() {
			pred := c.Leaf.Node.PredictedValue()
			for _, r := range c.Leaf.Node.Rows {
				if uint64(ds.Target(r)) != pred {
					return false
				}
			}
			used := map[int]bool{}
			for _, st := range c.Leaf.Path {
				if used[st.Var] {
					return false
				}
				used[st.Var] = true
			}
			if c.Assertion.Confidence != 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// treeShape captures the split variable of every internal node by path.
func treeShape(tr *Tree) map[string]int {
	shape := map[string]int{}
	var walk func(n *Node, path string)
	walk = func(n *Node, path string) {
		if n.IsLeaf() {
			return
		}
		shape[path] = n.Var
		walk(n.Zero, path+"0")
		walk(n.One, path+"1")
	}
	walk(tr.Root, "")
	return shape
}

// TestQuickIncrementalPreservesOrdering: Definition 6 — adding rows never
// changes the split variable of an existing internal node; existing internal
// structure only grows.
func TestQuickIncrementalPreservesOrdering(t *testing.T) {
	src := `module m(input a, b, c, output z); assign z = (a ^ b) | (b & c); endmodule`
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, err := trace.NewDataset(d, d.MustSignal("z"), 0, 0)
		if err != nil {
			return false
		}
		mkStim := func(n int) sim.Stimulus {
			var stim sim.Stimulus
			for i := 0; i < n; i++ {
				stim = append(stim, sim.InputVec{
					"a": rng.Uint64() & 1, "b": rng.Uint64() & 1, "c": rng.Uint64() & 1,
				})
			}
			return stim
		}
		t0, err := sim.Simulate(d, mkStim(3+rng.Intn(5)))
		if err != nil {
			return false
		}
		if _, err := ds.AddTrace(t0, 0); err != nil {
			return false
		}
		tr := Build(ds)
		// Incremental additions, checking structure preservation each time.
		for step := 0; step < 4; step++ {
			before := treeShape(tr)
			t1, err := sim.Simulate(d, mkStim(1+rng.Intn(3)))
			if err != nil {
				return false
			}
			start := ds.Rows()
			if _, err := ds.AddTrace(t1, step+1); err != nil {
				return false
			}
			var newRows []int
			for r := start; r < ds.Rows(); r++ {
				newRows = append(newRows, r)
			}
			if err := tr.AddRows(newRows); err != nil {
				return false
			}
			after := treeShape(tr)
			for path, v := range before {
				if after[path] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTheorem1Bound: the split count always respects the Theorem 1 size
// bound 2k+1 <= 2^(n+1)-1 over the cone variable count n.
func TestQuickTheorem1Bound(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomDataset(t, seed, 1+int(uint64(seed)%40))
		tr := Build(ds)
		n := ds.NumVars()
		return 2*tr.Splits+1 <= (1<<uint(n+1))-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
