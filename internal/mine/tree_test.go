package mine

import (
	"errors"
	"strings"
	"testing"

	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/trace"
)

const xorSrc = `module xr(input a, b, output z); assign z = a ^ b; endmodule`

func xorDataset(t *testing.T, stim sim.Stimulus) (*rtl.Design, *trace.Dataset) {
	t.Helper()
	d, err := rtl.ElaborateSource(xorSrc)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.NewDataset(d, d.MustSignal("z"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stim != nil {
		tr, err := sim.Simulate(d, stim)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.AddTrace(tr, 0); err != nil {
			t.Fatal(err)
		}
	}
	return d, ds
}

func fullXorStim() sim.Stimulus {
	return sim.Stimulus{
		{"a": 0, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 0}, {"a": 1, "b": 1},
	}
}

func TestBuildXorFullTable(t *testing.T) {
	_, ds := xorDataset(t, fullXorStim())
	tr := Build(ds)
	st := tr.Stats()
	// XOR needs both variables: 3 internal nodes, 4 leaves.
	if st.Leaves != 4 {
		t.Fatalf("leaves %d want 4\n%s", st.Leaves, tr)
	}
	if st.MaxDepth != 2 {
		t.Errorf("depth %d want 2", st.MaxDepth)
	}
	cands := tr.Candidates()
	if len(cands) != 4 {
		t.Fatalf("candidates %d want 4", len(cands))
	}
	// Every leaf must be pure with a correct XOR prediction.
	for _, c := range cands {
		var a, b, haveA, haveB uint64
		for _, p := range c.Assertion.Antecedent {
			switch p.Signal {
			case "a":
				a, haveA = p.Value, 1
			case "b":
				b, haveB = p.Value, 1
			}
		}
		if haveA == 0 || haveB == 0 {
			t.Fatalf("assertion misses a variable: %s", c.Assertion)
		}
		if c.Assertion.Consequent.Value != a^b {
			t.Errorf("bad prediction: %s", c.Assertion)
		}
	}
}

func TestLeavesPartitionRows(t *testing.T) {
	_, ds := xorDataset(t, fullXorStim())
	tr := Build(ds)
	seen := map[int]int{}
	for _, lf := range tr.Leaves() {
		for _, r := range lf.Node.Rows {
			seen[r]++
			// Row feature values must match the leaf path.
			for _, st := range lf.Path {
				if ds.Value(r, st.Var) != st.Value {
					t.Fatalf("row %d does not match path", r)
				}
			}
		}
	}
	if len(seen) != ds.Rows() {
		t.Fatalf("leaves cover %d of %d rows", len(seen), ds.Rows())
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("row %d appears %d times", r, n)
		}
	}
}

func TestEmptyDatasetZeroAssertion(t *testing.T) {
	_, ds := xorDataset(t, nil)
	tr := Build(ds)
	cands := tr.Candidates()
	if len(cands) != 1 {
		t.Fatalf("candidates %d want 1", len(cands))
	}
	a := cands[0].Assertion
	if len(a.Antecedent) != 0 || a.Consequent.Value != 0 {
		t.Fatalf("zero-seed assertion should be 'z always 0': %s", a)
	}
	if a.Support != 0 {
		t.Errorf("support %d", a.Support)
	}
}

func TestIncrementalAddRowsPreservesOrdering(t *testing.T) {
	d, ds := xorDataset(t, sim.Stimulus{
		{"a": 0, "b": 0}, {"a": 1, "b": 0},
	})
	tr := Build(ds)
	// With rows {00->0, 10->1} one split on a suffices.
	if got := tr.Stats().Leaves; got != 2 {
		t.Fatalf("initial leaves %d\n%s", got, tr)
	}
	rootVar := tr.Root.Var
	// Add a contradicting row for the a=1 branch: 11 -> 0.
	s, _ := sim.New(d)
	tr2, _ := s.Run(sim.Stimulus{{"a": 1, "b": 1}})
	start := ds.Rows()
	if _, err := ds.AddTrace(tr2, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddRows([]int{start}); err != nil {
		t.Fatal(err)
	}
	if tr.Root.Var != rootVar {
		t.Fatal("incremental update changed the root split variable")
	}
	// The a=1 branch must now split on b.
	one := tr.Root.One
	if one.IsLeaf() {
		t.Fatalf("a=1 branch should have split\n%s", tr)
	}
	if ds.Var(one.Var).Signal != "b" {
		t.Errorf("a=1 branch split on %s, want b", ds.Var(one.Var).Name())
	}
	// a=0 branch untouched.
	if !tr.Root.Zero.IsLeaf() {
		t.Error("a=0 branch should be unchanged")
	}
}

func TestFailedAssertionNeverRegenerated(t *testing.T) {
	// Paper Section 1: a contradicting example discards a rule permanently.
	d, ds := xorDataset(t, sim.Stimulus{{"a": 0, "b": 0}, {"a": 1, "b": 0}})
	tr := Build(ds)
	var before []string
	for _, c := range tr.Candidates() {
		before = append(before, c.Assertion.Key())
	}
	s, _ := sim.New(d)
	t2, _ := s.Run(sim.Stimulus{{"a": 1, "b": 1}})
	start := ds.Rows()
	ds.AddTrace(t2, 1)
	if err := tr.AddRows([]int{start}); err != nil {
		t.Fatal(err)
	}
	after := map[string]bool{}
	for _, c := range tr.Candidates() {
		after[c.Assertion.Key()] = true
	}
	// The candidate "a=1 => z=1" (contradicted by the new row) must be gone.
	for _, k := range before {
		if strings.Contains(k, "a@0=1&>") && after[k] {
			t.Errorf("contradicted assertion regenerated: %s", k)
		}
	}
}

func TestProvedLeafRetained(t *testing.T) {
	_, ds := xorDataset(t, fullXorStim())
	tr := Build(ds)
	cands := tr.Candidates()
	for _, c := range cands {
		c.Leaf.Node.Proved = true
	}
	if !tr.Converged() {
		t.Fatal("all leaves proved: tree should be converged")
	}
	if got := len(tr.Candidates()); got != 0 {
		t.Errorf("proved leaves still produce candidates: %d", got)
	}
}

func TestProvedLeafContradictionDemotes(t *testing.T) {
	// A proved leaf contradicted by new rows is demoted to stuck (prover vs
	// simulator disagreement) instead of panicking, and the rest of the tree
	// keeps mining.
	d, ds := xorDataset(t, sim.Stimulus{{"a": 0, "b": 0}, {"a": 1, "b": 0}})
	tr := Build(ds)
	// Mark the a=1 leaf (predicting z=1) as proved, then contradict it.
	one := tr.Root.One
	if !one.IsLeaf() || one.PredictedValue() != 1 {
		t.Fatalf("unexpected tree shape\n%s", tr)
	}
	one.Proved = true
	s, _ := sim.New(d)
	t2, _ := s.Run(sim.Stimulus{{"a": 1, "b": 1}}) // a=1 but z=0
	start := ds.Rows()
	if _, err := ds.AddTrace(t2, 1); err != nil {
		t.Fatal(err)
	}
	err := tr.AddRows([]int{start})
	if !errors.Is(err, ErrProvedContradicted) {
		t.Fatalf("AddRows error = %v, want ErrProvedContradicted", err)
	}
	if one.Proved || !one.Stuck {
		t.Fatalf("contradicted leaf not demoted: proved=%v stuck=%v", one.Proved, one.Stuck)
	}
	if got := tr.Stats().StuckLeaves; got != 1 {
		t.Errorf("stuck leaves %d want 1", got)
	}
	// The demoted leaf is impure and stuck: it must not resurface as a
	// candidate, and the tree can no longer claim convergence.
	for _, c := range tr.Candidates() {
		if c.Leaf.Node == one {
			t.Error("demoted leaf offered as candidate")
		}
	}
	if tr.Converged() {
		t.Error("tree with demoted leaf reports converged")
	}
}

func TestSplitCountTheoremBound(t *testing.T) {
	// Theorem 1: after k iterations, 2k+1 <= 2^(n+1)-1 where n = cone vars.
	_, ds := xorDataset(t, fullXorStim())
	tr := Build(ds)
	n := ds.NumVars()
	if 2*tr.Splits+1 > (1<<(uint(n)+1))-1 {
		t.Errorf("split bound violated: %d splits, %d vars", tr.Splits, n)
	}
}

func TestTreeStringRendering(t *testing.T) {
	_, ds := xorDataset(t, fullXorStim())
	tr := Build(ds)
	s := tr.String()
	for _, want := range []string{"a@0", "b@0", "leaf", "candidate"} {
		if !strings.Contains(s, want) {
			t.Errorf("tree string missing %q:\n%s", want, s)
		}
	}
}

func TestStuckLeafOnConflictingRows(t *testing.T) {
	// A sequential design mined WITHOUT window extension available would
	// conflict; with extension the tree resolves via state variables.
	src := `
module tog(input clk, en, output reg q);
  always @(posedge clk) if (en) q <= ~q;
endmodule`
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.NewDataset(d, d.MustSignal("q"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// en=1 at every cycle: q alternates 0,1,0,1 -> rows (en=1 -> q') conflict
	// unless state q@0 becomes a feature.
	tr0, _ := sim.Simulate(d, sim.Stimulus{{"en": 1}, {"en": 1}, {"en": 1}, {"en": 1}})
	if _, err := ds.AddTrace(tr0, 0); err != nil {
		t.Fatal(err)
	}
	tr := Build(ds)
	if !ds.Extended() {
		t.Error("conflicting rows should have triggered window extension")
	}
	st := tr.Stats()
	if st.StuckLeaves != 0 {
		t.Errorf("stuck leaves %d\n%s", st.StuckLeaves, tr)
	}
	// All leaves pure now.
	for _, lf := range tr.Leaves() {
		if !lf.Node.Pure() {
			t.Errorf("impure leaf after extension\n%s", tr)
		}
	}
}

func TestAssertionSupportAndConfidence(t *testing.T) {
	_, ds := xorDataset(t, append(fullXorStim(), sim.InputVec{"a": 1, "b": 1})) // duplicate 11 row
	tr := Build(ds)
	for _, c := range tr.Candidates() {
		if c.Assertion.Confidence != 1.0 {
			t.Errorf("confidence %f", c.Assertion.Confidence)
		}
		want := 1
		// The duplicated row (a=1,b=1) gives its leaf support 2.
		isBoth1 := true
		for _, p := range c.Assertion.Antecedent {
			if p.Value != 1 {
				isBoth1 = false
			}
		}
		if isBoth1 && len(c.Assertion.Antecedent) == 2 {
			want = 2
		}
		if c.Assertion.Support != want {
			t.Errorf("support %d want %d for %s", c.Assertion.Support, want, c.Assertion)
		}
	}
}
