// The adaptive work-sharing closure engine behind CloseCoverage and
// DirectedFromHoles (the Legacy knob selects the PR 7 paths in directed.go).
//
// Three ideas carry the speedup, all aimed at not re-doing work:
//
//   - Cross-hole witness reuse: holes are processed in fixed-size waves; at
//     each wave boundary every witness the wave produced is replayed (one
//     64-lane batch-sim call) against all holes still waiting, and covered
//     holes come back MethodShared without ever issuing a reach query.
//
//   - Adaptive per-hole depth with ladder resume: a hole's first ladder is
//     capped by its cone's state-bit count, not the global MaxDepth; a hole
//     bounded-unreachable at its cap is deferred, its cap doubles next
//     iteration, and mc.Session.ReachFrom resumes past the proven depth so
//     the retries together cost one full ladder, not one per iteration.
//
//   - k-induction dead-code promotion: a bounded-unreachable hole that fuzz
//     also missed is routed through mc.Session.ProveUnreachable; a ReachDead
//     verdict removes it from the hole universe for good (and, with
//     ClosureOptions.DeadFile, for every future run on the same design).
//
//   - Witness compaction under a cycle budget: a witness the budget cannot
//     afford is parked (the hole is never re-solved), and a final repack
//     evicts suite witnesses whose every covered fact is covered elsewhere —
//     typically shallow early-iteration witnesses subsumed by deeper ones —
//     then readmits parked witnesses into the freed cycles.
//
// Determinism: wave boundaries are fixed by shareWave (not the worker
// count), verdicts and canonical witnesses are properties of the formula,
// fuzz seeds derive from the hole's index, and the covered/proven maps are
// only written between waves — so -j1 and -jN remain byte-identical.
package stimgen

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"sort"

	"goldmine/internal/coverage"
	"goldmine/internal/holes"
	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/sched"
	"goldmine/internal/sim"
	"goldmine/internal/simc"
	"goldmine/internal/telemetry"
)

// shareWave is the wave width of the sharing engine: how many ranked holes
// are attempted between witness-replay barriers. A constant (never the worker
// count) so the barrier schedule — and with it every shared-coverage decision
// — is identical under any -j.
const shareWave = 16

// closureWorkers is the per-run worker pool: one persistent mc.Session and
// one batch machine per worker, living across waves and iterations so
// unrolled frames, learned clauses, and memoized obligation gadgets are paid
// for once.
type closureWorkers struct {
	sessions []*mc.Session
	bms      []*simc.BatchMachine
}

func newClosureWorkers(d *rtl.Design, nholes int, opts DirectedOptions) (*closureWorkers, error) {
	bp, err := simc.CompileBatch(d, simc.BatchOptions{})
	if err != nil {
		return nil, err
	}
	n := sched.Workers(opts.Workers, nholes)
	cw := &closureWorkers{
		sessions: make([]*mc.Session, n),
		bms:      make([]*simc.BatchMachine, n),
	}
	for w := 0; w < n; w++ {
		checker := mc.NewWithOptions(d, opts.MC)
		checker.SetTelemetry(opts.Telemetry)
		cw.sessions[w] = checker.NewSession()
		cw.bms[w] = simc.NewBatchMachine(bp)
	}
	return cw, nil
}

// sumQueries folds the per-worker session counters into the result. The
// totals are worker-count independent: each hole's solve count depends only
// on its obligation, resume depth, and cap.
func (cw *closureWorkers) sumQueries(res *ClosureResult) {
	for _, s := range cw.sessions {
		res.ReachCalls += s.ReachCalls
		res.ReachSolves += s.ReachSolves
	}
}

// indMaxK bounds the closure engine's induction ladders. Dead code is
// shallowly inductive — every bundled design's dead hole proves at k <= 8 —
// and each failed step is a wasted solve, so the engine stops there rather
// than walking to the checker's full MaxInduction on holes that are merely
// bounded-unreachable. ProveUnreachable's fromK resume makes the bound a
// per-hole total, not per-attempt.
const indMaxK = 8

// capFor is a hole's initial adaptive ladder cap: shallow for holes whose
// cone is mostly combinational, two frames deeper per sequential state bit
// (state bits are what push witnesses deep), plus a margin for sequence
// obligations that must reach an unobserved FSM state first. The cap is
// clamped to half the configured MaxDepth — one deferral doubling reaches
// full depth, and starting shallow is what lets k-induction retire dead
// holes before the full ladder is paid (a depth-10 base already covers every
// k <= indMaxK step). Ladder resume makes the clamp free for deep holes:
// their rung total telescopes to the same MaxDepth.
func capFor(h *holes.Hole, maxDepth int) int {
	c := 4 + 2*h.ConeStateBits
	if h.SourceUnreached {
		c += 4
	}
	if half := maxDepth / 2; c > half && half >= 4 {
		c = half
	}
	if c > maxDepth {
		c = maxDepth
	}
	return c
}

// runWaves attempts the ranked holes in shareWave-sized waves. caps[i] is
// hole i's ladder cap; proven maps hole keys to depths already proven
// unreachable and tried to induction steps already observed Sat (both
// read-only here — the caller owns updates between calls). At each wave
// boundary the wave's witnesses are replayed against all holes still
// waiting; covered ones come back MethodShared without a query.
func (cw *closureWorkers) runWaves(ctx context.Context, hs []*holes.Hole, caps []int, proven, tried map[string]int, opts DirectedOptions) []*HoleAttempt {
	out := make([]*HoleAttempt, len(hs))
	coveredBy := make([]int, len(hs)) // witness-owner index, -1 = not covered
	coveredAt := make([]int, len(hs)) // hit cycle in the owner's witness
	for i := range coveredBy {
		coveredBy[i] = -1
	}
	workers := len(cw.sessions)
	for base := 0; base < len(hs); base += shareWave {
		end := base + shareWave
		if end > len(hs) {
			end = len(hs)
		}
		var wsp *telemetry.Span
		wctx := ctx
		if opts.Telemetry != nil {
			wctx, wsp = opts.Telemetry.StartSpan(ctx, "directed.wave",
				telemetry.Int("base", int64(base)),
				telemetry.Int("size", int64(end-base)))
		}
		tasks := make([]sched.Task, workers)
		for w := 0; w < workers; w++ {
			w := w
			tasks[w] = sched.Task{ID: w, Run: func(tctx context.Context) {
				for i := base + w; i < end; i += workers {
					if coveredBy[i] >= 0 {
						out[i] = &HoleAttempt{
							Hole: hs[i], Method: MethodShared,
							Via: hs[coveredBy[i]].Key(), Depth: coveredAt[i] + 1,
						}
						continue
					}
					out[i] = attemptAdaptive(tctx, cw.sessions[w], cw.bms[w],
						hs[i], i, caps[i], proven[hs[i].Key()], tried[hs[i].Key()], opts)
					if tctx.Err() != nil {
						return
					}
				}
			}}
		}
		sched.RunTasks(wctx, workers, tasks, nil)
		// Cancellation can abandon tasks before they touch their slots.
		for i := base; i < end; i++ {
			if out[i] == nil {
				out[i] = &HoleAttempt{Hole: hs[i], Method: MethodOpen, Err: ctx.Err()}
			}
		}
		// Barrier: replay this wave's witnesses against every hole still
		// waiting. Lane order is index order, and the first hitting lane
		// wins, so coverage attribution is deterministic.
		var lanes []sim.Stimulus
		var owners []int
		for i := base; i < end; i++ {
			if out[i].Stim != nil {
				lanes = append(lanes, out[i].Stim)
				owners = append(owners, i)
			}
		}
		shared := 0
		if len(lanes) > 0 && end < len(hs) {
			// Witness replay is an optimization: on a sim fault the later
			// holes simply issue their own queries.
			if traces, err := cw.bms[0].RunBatch(lanes); err == nil {
				for j := end; j < len(hs); j++ {
					if coveredBy[j] >= 0 {
						continue
					}
					for l, tr := range traces {
						if hit := hs[j].Hit(tr); hit >= 0 {
							coveredBy[j], coveredAt[j] = owners[l], hit
							shared++
							break
						}
					}
				}
			}
		}
		wsp.End(
			telemetry.Int("witnesses", int64(len(lanes))),
			telemetry.Int("newly_covered", int64(shared)),
		)
		if ctx.Err() != nil {
			// Mark the unattempted remainder open instead of spinning
			// through dead waves.
			for i := end; i < len(hs); i++ {
				if out[i] == nil {
					out[i] = &HoleAttempt{Hole: hs[i], Method: MethodOpen, Err: ctx.Err()}
				}
			}
			break
		}
	}
	return out
}

// attemptAdaptive runs the capped, resumable SAT→fuzz→induction ladder for
// one hole. rank is the hole's index in the ranked list (the fuzz seed
// derives from it, not from the worker); fromDepth is the depth already
// proven unreachable in earlier iterations, fromK the induction steps
// already observed Sat — both ladders resume, never repeat.
func attemptAdaptive(ctx context.Context, sess *mc.Session, bm *simc.BatchMachine, h *holes.Hole, rank, cap, fromDepth, fromK int, opts DirectedOptions) *HoleAttempt {
	at := &HoleAttempt{Hole: h}
	var sp *telemetry.Span
	if opts.Telemetry != nil {
		ctx, sp = opts.Telemetry.StartSpan(ctx, "directed.hole",
			telemetry.String("hole", h.Key()),
			telemetry.Int("rank", int64(rank)),
			telemetry.Int("cap", int64(cap)))
	}
	defer func() {
		sp.End(telemetry.String("method", at.Method), telemetry.Int("depth", int64(at.Depth)))
	}()

	ob := obligationFor(h)

	// Structural dead-code probe, first visit only: most dead targets are
	// transition-relation violations — inductive at k=1 from a base that
	// just covers the obligation window. Catching one here costs two solves
	// total and skips the whole ladder; a live hole pays one wasted step
	// solve once (the base rung is the ladder's own first rung, resumed).
	probe := 1
	for _, p := range ob.Props {
		if p.Offset+1 > probe {
			probe = p.Offset + 1
		}
	}
	if fromDepth == 0 && fromK == 0 && cap > probe {
		if pres, perr := sess.ReachFrom(ctx, ob, 0, probe, h.Inputs); perr == nil {
			switch pres.Status {
			case mc.ReachFound:
				at.Method, at.Depth, at.Stim = MethodSAT, pres.Depth, pres.Stim
				return at
			case mc.ReachUnreachable:
				dres, derr := sess.ProveUnreachable(ctx, ob, probe, 0, 1)
				if derr == nil && dres.Status == mc.ReachDead {
					at.Method, at.K, at.Depth, at.ProvenDepth = MethodDead, dres.K, probe, probe
					return at
				}
				fromDepth = probe
				if derr == nil && dres.Status == mc.ReachUnreachable {
					fromK = 1 // the k=1 step was observed Sat: never re-solve it
				}
			}
		}
	}

	res, err := sess.ReachFrom(ctx, ob, fromDepth, cap, h.Inputs)
	unreachable := false
	switch {
	case err != nil:
		at.Err = err
	case res.Status == mc.ReachFound:
		at.Method, at.Depth, at.Stim = MethodSAT, res.Depth, res.Stim
		return at
	case res.Status == mc.ReachUnreachable:
		unreachable = true
		at.ProvenDepth = res.Depth
	case res.Status == mc.ReachUnknown:
		// Budget died mid-ladder, but the completed rungs are proven: the
		// retry resumes past them.
		if res.Depth > fromDepth {
			at.ProvenDepth = res.Depth
		}
	}

	// Fallback: focused batch fuzzing. The cap may simply be too small (fuzz
	// lanes run past it), so bounded-UNSAT still gets a fuzz shot.
	lanes := FocusedLanes(bm.Program().Design(), h.Inputs, opts.FuzzLanes, opts.FuzzCycles,
		opts.Seed+int64(rank)*1000003, 2)
	traces, err := bm.RunBatch(lanes)
	if err != nil {
		if at.Err == nil {
			at.Err = err
		}
		at.Method = MethodError
		return at
	}
	best, bestLane := -1, -1
	for l, tr := range traces {
		if hit := h.Hit(tr); hit >= 0 && (best < 0 || hit < best) {
			best, bestLane = hit, l
		}
	}
	if best >= 0 {
		at.Method, at.Depth = MethodFuzz, best+1
		at.Stim = lanes[bestLane][:best+1].Clone()
		at.SATUnreachable = unreachable
		return at
	}
	switch {
	case at.Err != nil:
		at.Method = MethodError
	case unreachable:
		// Bounded-unreachable and fuzz missed: try to promote the bounded
		// claim to dead code. The induction k is capped by the proven base
		// depth, so even a shallow cap can retire targets whose absence is
		// inductive (most dead code is, at k=1) — that is the payoff of
		// starting shallow: a dead hole never pays the full ladder. On
		// failure K records the steps tried so the next attempt resumes.
		dres, derr := sess.ProveUnreachable(ctx, ob, at.ProvenDepth, fromK, indMaxK)
		switch {
		case derr == nil && dres.Status == mc.ReachDead:
			at.Method, at.K, at.Depth = MethodDead, dres.K, at.ProvenDepth
		case cap < opts.MaxDepth:
			at.Method, at.Depth = MethodDeferred, at.ProvenDepth
		default:
			at.Method, at.Depth = MethodUnreachable, at.ProvenDepth
		}
		if derr == nil && dres.Status == mc.ReachUnreachable && dres.K > fromK {
			at.K = dres.K
		}
	default:
		at.Method = MethodOpen
	}
	return at
}

// closeAdaptive is the adaptive closure loop: extract holes, skip the dead
// and the terminally fruitless, attempt the rest in shared waves at their
// adaptive caps, fold witnesses into the suite, grow the caps of deferred
// holes, and iterate while anything moved.
func closeAdaptive(ctx context.Context, d *rtl.Design, col *coverage.Collector, collect func([]sim.Stimulus) error, res *ClosureResult, opts ClosureOptions) error {
	fp := sched.DesignFingerprint(d)
	dead := map[string]DeadHole{}
	if opts.DeadFile != "" {
		loaded, err := loadDeadCorpus(opts.DeadFile, fp)
		if err != nil {
			return err
		}
		dead = loaded
	}

	var cw *closureWorkers
	seedLen := len(res.Suite)     // everything before this index is seed, never evicted
	proven := map[string]int{}    // hole key -> depth proven unreachable
	tried := map[string]int{}     // hole key -> induction steps observed Sat
	caps := map[string]int{}      // hole key -> current adaptive cap
	terminal := map[string]bool{} // unreachable at MaxDepth (not dead) or errored
	pending := map[string]bool{}  // witness in hand but over budget; never re-solved
	var pendOrder []*HoleAttempt
	var newDead []DeadHole

	for iter := 0; iter < opts.MaxIterations; iter++ {
		all := holes.FromCollector(col)
		var hs []*holes.Hole
		excluded := 0
		for _, h := range all {
			k := h.Key()
			if _, isDead := dead[k]; isDead {
				excluded++
				continue
			}
			if !terminal[k] && !pending[k] {
				hs = append(hs, h)
			}
		}
		if iter == 0 {
			res.DeadLoaded = excluded
		}
		if len(hs) == 0 {
			res.Converged = len(pendOrder) == 0
			break
		}
		if cw == nil {
			var err error
			if cw, err = newClosureWorkers(d, len(hs), opts.DirectedOptions); err != nil {
				return err
			}
			defer cw.sumQueries(res)
		}
		capsArr := make([]int, len(hs))
		for i, h := range hs {
			k := h.Key()
			if c, ok := caps[k]; ok {
				capsArr[i] = c
			} else {
				capsArr[i] = capFor(h, opts.MaxDepth)
				caps[k] = capsArr[i]
			}
		}

		var itSp *telemetry.Span
		ictx := ctx
		if opts.Telemetry != nil {
			ictx, itSp = opts.Telemetry.StartSpan(ctx, "directed.iteration",
				telemetry.Int("iter", int64(iter)),
				telemetry.Int("holes", int64(len(hs))))
		}
		attempts := cw.runWaves(ictx, hs, capsArr, proven, tried, opts.DirectedOptions)

		st := IterationStats{Holes: len(hs)}
		progressed := false
		var fresh []sim.Stimulus
		for _, at := range attempts {
			res.Attempts = append(res.Attempts, at)
			res.Methods[at.Method]++
			k := at.Hole.Key()
			if at.ProvenDepth > proven[k] {
				proven[k] = at.ProvenDepth
				progressed = true // deeper rungs proved; a retry starts past them
			}
			switch at.Method {
			case MethodSAT, MethodFuzz:
				if opts.TotalCycles > 0 && res.CyclesUsed+len(at.Stim) > opts.TotalCycles {
					// Over budget: park the witness instead of dropping it.
					// The hole is never re-solved, and the final compaction
					// pass readmits the stimulus if eviction frees room.
					if !pending[k] {
						pending[k] = true
						pendOrder = append(pendOrder, at)
					}
					continue
				}
				fresh = append(fresh, at.Stim)
				res.CyclesUsed += len(at.Stim)
				st.Directed++
			case MethodShared:
				st.Shared++
			case MethodDead:
				st.Dead++
				dh := DeadHole{Design: fp, Key: k, Depth: at.ProvenDepth, K: at.K}
				dead[k] = dh
				newDead = append(newDead, dh)
				res.Dead = append(res.Dead, dh)
				progressed = true // the universe shrank
			case MethodDeferred:
				st.Deferred++
				if at.K > tried[k] {
					tried[k] = at.K // failed induction steps: never re-solve them
				}
				if c := caps[k]; c < opts.MaxDepth {
					nc := c * 2
					if nc > opts.MaxDepth {
						nc = opts.MaxDepth
					}
					caps[k] = nc
					progressed = true // the ladder advanced; re-evaluate next pass
				}
			case MethodUnreachable, MethodError:
				terminal[k] = true
			}
		}
		if len(fresh) > 0 {
			res.Suite = append(res.Suite, fresh...)
			before := len(holes.FromCollector(col))
			if err := collect(fresh); err != nil {
				itSp.End(telemetry.String("error", err.Error()))
				return err
			}
			st.Closed = before - len(holes.FromCollector(col))
			progressed = true
		}
		res.Iterations = append(res.Iterations, st)
		itSp.End(
			telemetry.Int("appended", int64(st.Directed)),
			telemetry.Int("closed", int64(st.Closed)),
			telemetry.Int("shared", int64(st.Shared)),
			telemetry.Int("dead", int64(st.Dead)),
		)
		if !progressed || ctx.Err() != nil {
			break
		}
	}

	if cw != nil && len(pendOrder) > 0 {
		if err := cw.compactSuite(ctx, res, seedLen, pendOrder, collect, opts); err != nil {
			return err
		}
	}

	if opts.DeadFile != "" && len(newDead) > 0 {
		sort.Slice(newDead, func(i, j int) bool { return newDead[i].Key < newDead[j].Key })
		if err := appendDeadCorpus(opts.DeadFile, newDead); err != nil {
			return err
		}
	}
	sort.Slice(res.Dead, func(i, j int) bool { return res.Dead[i].Key < res.Dead[j].Key })
	return nil
}

// compactSuite is the budget repair pass: when the cycle gate parked SAT or
// fuzz witnesses, re-pack the suite so the cycles buy maximum coverage. One
// batch replay yields each stimulus's covered-fact signature (the hole keys
// it hits — exactly the predicate the wave barrier shares on); directed
// witnesses whose every fact is covered elsewhere in the suite are evicted,
// and parked witnesses that fit the freed cycles and still add coverage are
// readmitted, to fixpoint. Seed stimuli are never evicted. The pass issues no
// reach queries, and the scan orders (suite order, park order) make it
// deterministic under any -j. The adaptive ladder is what makes it matter:
// shallow iterations admit short witnesses that deeper ones subsume, and
// without eviction those stale cycles crowd out the deep witnesses the
// legacy fixed-depth loop would have afforded.
func (cw *closureWorkers) compactSuite(ctx context.Context, res *ClosureResult, seedLen int, pendOrder []*HoleAttempt, collect func([]sim.Stimulus) error, opts ClosureOptions) error {
	if opts.TotalCycles <= 0 {
		return nil
	}
	var sp *telemetry.Span
	if opts.Telemetry != nil {
		_, sp = opts.Telemetry.StartSpan(ctx, "directed.compact",
			telemetry.Int("parked", int64(len(pendOrder))))
	}
	d := cw.bms[0].Program().Design()
	universe := holes.FromCollector(coverage.New(d))
	lanes := append([]sim.Stimulus{}, res.Suite...)
	for _, at := range pendOrder {
		lanes = append(lanes, at.Stim)
	}
	traces, err := cw.bms[0].RunBatch(lanes)
	if err != nil {
		// Compaction is an optimization: on a sim fault keep the suite as is.
		sp.End(telemetry.String("error", err.Error()))
		return nil
	}
	sigs := make([]map[string]bool, len(lanes))
	for l, tr := range traces {
		sig := map[string]bool{}
		for _, h := range universe {
			if h.Hit(tr) >= 0 {
				sig[h.Key()] = true
			}
		}
		sigs[l] = sig
	}

	covers := map[string]int{} // fact -> kept stimuli covering it
	for l := range res.Suite {
		for k := range sigs[l] {
			covers[k]++
		}
	}
	kept := make([]bool, len(res.Suite))
	for i := range kept {
		kept[i] = true
	}
	admitted := make([]bool, len(pendOrder))
	free := opts.TotalCycles - res.CyclesUsed
	for changed := true; changed; {
		changed = false
		for i := seedLen; i < len(res.Suite); i++ {
			if !kept[i] {
				continue
			}
			unique := false
			for k := range sigs[i] {
				if covers[k] == 1 {
					unique = true
					break
				}
			}
			if unique {
				continue
			}
			kept[i] = false
			for k := range sigs[i] {
				covers[k]--
			}
			free += len(res.Suite[i])
			res.Evicted++
			changed = true
		}
		for j, at := range pendOrder {
			if admitted[j] || len(at.Stim) > free {
				continue
			}
			sig := sigs[len(res.Suite)+j]
			adds := false
			for k := range sig {
				if covers[k] == 0 {
					adds = true
					break
				}
			}
			if !adds {
				continue // its hole got covered meanwhile; don't spend cycles
			}
			admitted[j] = true
			for k := range sig {
				covers[k]++
			}
			free -= len(at.Stim)
			res.Readmitted++
			changed = true
		}
	}
	if res.Evicted == 0 && res.Readmitted == 0 {
		sp.End(telemetry.Int("evicted", 0), telemetry.Int("readmitted", 0))
		return nil
	}

	suite := append([]sim.Stimulus{}, res.Suite[:seedLen]...)
	for i := seedLen; i < len(res.Suite); i++ {
		if kept[i] {
			suite = append(suite, res.Suite[i])
		}
	}
	var fresh []sim.Stimulus
	for j, at := range pendOrder {
		if admitted[j] {
			fresh = append(fresh, at.Stim)
		}
	}
	res.Suite = append(suite, fresh...)
	res.CyclesUsed = opts.TotalCycles - free
	sp.End(
		telemetry.Int("evicted", int64(res.Evicted)),
		telemetry.Int("readmitted", int64(res.Readmitted)),
		telemetry.Int("free_cycles", int64(free)),
	)
	if len(fresh) > 0 {
		// The evicted witnesses' facts stay observed in the collector (they
		// are covered elsewhere by construction); only the readmitted ones
		// carry new coverage.
		return collect(fresh)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Dead-hole corpus
// ---------------------------------------------------------------------------

// DeadHole is one proven-dead coverage hole: k-induction (K) on top of a
// bounded-unreachable base case (Depth frames from reset) showed no stimulus
// of any length can exercise it. Persisted as JSONL in per-design
// fingerprint namespaces so later runs skip the proof — and the query.
type DeadHole struct {
	Design string `json:"design"`
	Key    string `json:"key"`
	Depth  int    `json:"depth"`
	K      int    `json:"k"`
}

// LoadDeadHoles reads a dead-hole journal and returns the entries recorded
// for design, keyed by hole key. Callers use it to filter proven-dead points
// out of hole listings without re-running closure.
func LoadDeadHoles(path string, d *rtl.Design) (map[string]DeadHole, error) {
	return loadDeadCorpus(path, sched.DesignFingerprint(d))
}

// loadDeadCorpus reads the dead-hole journal, keeping only design's
// namespace. A missing file is an empty corpus; a torn final line (a killed
// writer) is discarded, mirroring the assertion corpus loader.
func loadDeadCorpus(path, design string) (map[string]DeadHole, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]DeadHole{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]DeadHole{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var dh DeadHole
		if json.Unmarshal(sc.Bytes(), &dh) != nil {
			continue // torn or foreign line: dead entries are re-provable
		}
		if dh.Design == design && dh.Key != "" {
			out[dh.Key] = dh
		}
	}
	return out, sc.Err()
}

// appendDeadCorpus appends newly-proven entries. The file never ends without
// a newline after a successful append, so a crash mid-write leaves at most
// one torn line for the loader to skip.
func appendDeadCorpus(path string, entries []DeadHole) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		// Guard against welding onto a torn tail left by a killed writer.
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, fi.Size()-1); err == nil && buf[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				return err
			}
		}
	}
	var buf []byte
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	_, err = f.Write(buf)
	return err
}
