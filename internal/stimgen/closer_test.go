package stimgen

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"goldmine/internal/coverage"
	"goldmine/internal/holes"
)

func closureOpts(workers int) ClosureOptions {
	return ClosureOptions{
		DirectedOptions: DirectedOptions{Seed: 42, Workers: workers},
		SeedLanes:       2,
		SeedCycles:      8,
		MaxIterations:   4,
	}
}

func TestAdaptiveClosureIssuesFewerSolvesThanLegacy(t *testing.T) {
	// The whole point of the engine: equal-or-better coverage for strictly
	// less SAT work. Witness sharing and adaptive caps both cut solves.
	for _, src := range []string{arbiterSrc, fsmSrc} {
		d := mustElab(t, src)
		opts := closureOpts(2)
		adaptive, err := CloseCoverage(context.Background(), d, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Legacy = true
		legacy, err := CloseCoverage(context.Background(), d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if legacy.ReachSolves == 0 {
			t.Fatalf("%s: legacy closure issued no solves — comparison is vacuous", d.Name)
		}
		if adaptive.ReachSolves >= legacy.ReachSolves {
			t.Errorf("%s: adaptive %d solves, legacy %d — no reduction",
				d.Name, adaptive.ReachSolves, legacy.ReachSolves)
		}
		af, lf := adaptive.Final, legacy.Final
		if af.Branch.Covered < lf.Branch.Covered || af.Toggle.Covered < lf.Toggle.Covered ||
			af.FSM.Covered < lf.FSM.Covered {
			t.Errorf("%s: adaptive coverage worse: %s vs %s", d.Name, af, lf)
		}
	}
}

func TestAdaptiveClosureSharesWitnesses(t *testing.T) {
	// A near-empty seed leaves more than one wave of holes open, so later
	// waves can ride earlier witnesses.
	d := mustElab(t, arbiterSrc)
	res, err := CloseCoverage(context.Background(), d, ClosureOptions{
		DirectedOptions: DirectedOptions{Seed: 42, Workers: 2},
		SeedLanes:       1,
		SeedCycles:      2,
		MaxIterations:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Methods[MethodShared] == 0 {
		t.Errorf("no hole was covered by a sibling's witness: %v", res.Methods)
	}
	// Shared attempts never carry a stimulus; the accounting must hold.
	for _, at := range res.Attempts {
		if at.Method == MethodShared && (at.Stim != nil || at.Via == "") {
			t.Errorf("%s: shared attempt stim=%v via=%q", at.Hole.Key(), at.Stim, at.Via)
		}
	}
}

func TestAdaptiveClosurePromotesDeadHoles(t *testing.T) {
	// The arbiter's one-hot grant invariant makes several condition/branch
	// bins dead code; the engine must prove at least one and shrink the
	// universe rather than re-fuzzing it forever.
	d := mustElab(t, arbiterSrc)
	res, err := CloseCoverage(context.Background(), d, closureOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dead) == 0 || res.Methods[MethodDead] == 0 {
		t.Fatalf("no dead promotion: methods %v", res.Methods)
	}
	for _, dh := range res.Dead {
		if dh.K < 1 || dh.Depth < 1 || dh.Key == "" || dh.Design == "" {
			t.Errorf("malformed dead entry %+v", dh)
		}
	}
	// A dead hole must not be attempted again in later iterations.
	firstSeen := map[string]int{}
	for i, at := range res.Attempts {
		k := at.Hole.Key()
		if at.Method == MethodDead {
			firstSeen[k] = i
		} else if di, dead := firstSeen[k]; dead && i > di {
			t.Errorf("hole %s attempted (%s) after dead promotion", k, at.Method)
		}
	}
}

func TestDeadCorpusPersistsAcrossRuns(t *testing.T) {
	d := mustElab(t, arbiterSrc)
	deadFile := filepath.Join(t.TempDir(), "dead.jsonl")
	opts := closureOpts(2)
	opts.DeadFile = deadFile

	first, err := CloseCoverage(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Dead) == 0 {
		t.Fatal("first run promoted nothing; persistence test is vacuous")
	}
	if first.DeadLoaded != 0 {
		t.Errorf("fresh corpus loaded %d dead holes", first.DeadLoaded)
	}

	second, err := CloseCoverage(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every hole proven dead in run 1 is excluded before any query in run 2:
	// no re-promotion, a recorded exclusion count, and fewer queries.
	if len(second.Dead) != 0 {
		t.Errorf("second run re-proved %d dead holes", len(second.Dead))
	}
	if second.DeadLoaded < len(first.Dead) {
		t.Errorf("second run excluded %d dead holes, first proved %d",
			second.DeadLoaded, len(first.Dead))
	}
	if second.ReachCalls >= first.ReachCalls {
		t.Errorf("dead exclusion did not reduce queries: %d -> %d",
			first.ReachCalls, second.ReachCalls)
	}
	// Suites and coverage are unchanged — dead holes never produced stimulus.
	if !reflect.DeepEqual(first.Suite, second.Suite) {
		t.Error("suites differ across reruns with a dead corpus")
	}
	if first.Final != second.Final {
		t.Errorf("final coverage differs: %s vs %s", first.Final, second.Final)
	}

	// The journal tolerates a torn tail (killed writer) and still excludes.
	f, err := os.OpenFile(deadFile, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"design":"x","key":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	third, err := CloseCoverage(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.DeadLoaded != second.DeadLoaded {
		t.Errorf("torn tail changed exclusions: %d vs %d", third.DeadLoaded, second.DeadLoaded)
	}
}

func TestAdaptiveClosureDeterministicAcrossWorkers(t *testing.T) {
	d := mustElab(t, fsmSrc)
	run := func(workers int) *ClosureResult {
		res, err := CloseCoverage(context.Background(), d, closureOpts(workers))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r4 := run(1), run(4)
	if !reflect.DeepEqual(r1.Suite, r4.Suite) {
		t.Error("suites differ between -j1 and -j4")
	}
	if r1.Final != r4.Final {
		t.Errorf("final reports differ: %s vs %s", r1.Final, r4.Final)
	}
	if !reflect.DeepEqual(r1.Methods, r4.Methods) {
		t.Errorf("method counts differ: %v vs %v", r1.Methods, r4.Methods)
	}
	if !reflect.DeepEqual(r1.Dead, r4.Dead) {
		t.Errorf("dead sets differ: %v vs %v", r1.Dead, r4.Dead)
	}
	// The query counters are part of the determinism contract: solve counts
	// are per-hole formula properties, so the totals match under any -j.
	if r1.ReachCalls != r4.ReachCalls || r1.ReachSolves != r4.ReachSolves {
		t.Errorf("query counters differ: %d/%d vs %d/%d",
			r1.ReachCalls, r1.ReachSolves, r4.ReachCalls, r4.ReachSolves)
	}
}

func TestSequenceObligationClosesArcOutOfUnreachedState(t *testing.T) {
	// With a fresh collector nothing is reached, so every FSM arc is a
	// sequence obligation (SourceUnreached). The engine must close arcs like
	// 1->2 — whose source state no stimulus has visited — in one query (or
	// via a sibling's witness), not skip them.
	d := mustElab(t, fsmSrc)
	hs := freshHoles(t, d)
	var arcs []*holes.Hole
	for _, h := range hs {
		if h.Kind == holes.FSMArc && h.SourceUnreached {
			arcs = append(arcs, h)
		}
	}
	if len(arcs) == 0 {
		t.Fatal("fresh fsm holes contain no SourceUnreached arcs")
	}
	attempts, err := DirectedFromHoles(context.Background(), d, hs, DirectedOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*HoleAttempt{}
	for _, at := range attempts {
		byKey[at.Hole.Key()] = at
	}
	// The real arc 1->2 must be closed even though state 1 was never seen.
	at := byKey["fsm:state:1->2"]
	if at == nil {
		t.Fatal("arc 1->2 not attempted")
	}
	switch at.Method {
	case MethodSAT, MethodFuzz, MethodShared:
	default:
		t.Errorf("sequence obligation 1->2: method %s", at.Method)
	}
	// The impossible arc 2->1 must be promoted to dead, shrinking the
	// universe instead of staying bounded-unreachable.
	if at := byKey["fsm:state:2->1"]; at == nil || at.Method != MethodDead {
		t.Errorf("impossible arc 2->1: %+v want dead", at)
	}
}

func TestCapForScalesWithStateBits(t *testing.T) {
	h := &holes.Hole{ConeStateBits: 0}
	if c := capFor(h, 40); c != 4 {
		t.Errorf("combinational cap %d want 4", c)
	}
	h.ConeStateBits = 3
	if c := capFor(h, 40); c != 10 {
		t.Errorf("3-state-bit cap %d want 10", c)
	}
	h.SourceUnreached = true
	if c := capFor(h, 40); c != 14 {
		t.Errorf("sequence-obligation cap %d want 14", c)
	}
	// Big cones start at half depth — one deferral doubling reaches full —
	// so dead holes can promote before the full ladder is paid.
	h.ConeStateBits = 40
	if c := capFor(h, 40); c != 20 {
		t.Errorf("cap %d not clamped to half MaxDepth", c)
	}
	if c := capFor(h, 20); c != 10 {
		t.Errorf("cap %d want half of MaxDepth 20", c)
	}
	// A shallow MaxDepth is never halved below the 4-frame floor.
	if c := capFor(h, 6); c != 6 {
		t.Errorf("cap %d want 6 (no halving below the floor)", c)
	}
}

func TestCompactionRepacksBudgetedSuite(t *testing.T) {
	// Under a tight cycle budget the gate parks witnesses it cannot afford;
	// the compaction pass must evict witnesses covering nothing unique and
	// readmit parked ones into the freed cycles — without losing a single
	// covered fact and without breaking -j determinism.
	for _, src := range []string{arbiterSrc, fsmSrc} {
		d := mustElab(t, src)
		run := func(workers int) *ClosureResult {
			res, err := CloseCoverage(context.Background(), d, ClosureOptions{
				DirectedOptions: DirectedOptions{Seed: 42, Workers: workers},
				SeedLanes:       1,
				SeedCycles:      4,
				MaxIterations:   4,
				TotalCycles:     16,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		res := run(2)
		if res.CyclesUsed > 16 {
			t.Errorf("%s: budget overrun: %d cycles", d.Name, res.CyclesUsed)
		}
		if res.Evicted == 0 {
			t.Errorf("%s: compaction evicted nothing under a 16-cycle budget", d.Name)
		}
		// Replaying the compacted suite from scratch reproduces every metric
		// the collector reported: eviction may only remove redundancy.
		fresh := coverage.New(d)
		if err := fresh.RunSuite(res.Suite); err != nil {
			t.Fatal(err)
		}
		got, want := fresh.Report(), res.Final
		got.Cycles, want.Cycles = 0, 0
		if got != want {
			t.Errorf("%s: compacted suite replays to %+v, collector saw %+v", d.Name, got, want)
		}
		r1, r4 := run(1), run(4)
		if !reflect.DeepEqual(r1.Suite, r4.Suite) {
			t.Errorf("%s: compacted suites differ between -j1 and -j4", d.Name)
		}
		if r1.Evicted != r4.Evicted || r1.Readmitted != r4.Readmitted {
			t.Errorf("%s: compaction moves differ: %d/%d vs %d/%d",
				d.Name, r1.Evicted, r1.Readmitted, r4.Evicted, r4.Readmitted)
		}
	}
}

func TestAdaptiveClosureRetriesDeferredHoles(t *testing.T) {
	// A deferred hole's cap must grow across iterations (the satellite fix:
	// the old skip set froze fruitless holes forever). Observable effect:
	// any hole deferred in one iteration is re-attempted in a later one
	// unless closure ended first.
	d := mustElab(t, fsmSrc)
	res, err := CloseCoverage(context.Background(), d, ClosureOptions{
		DirectedOptions: DirectedOptions{Seed: 1},
		SeedLanes:       1,
		SeedCycles:      4,
		MaxIterations:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	deferredAt := map[string]int{}
	retried := 0
	for iterIdx, n := 0, 0; n < len(res.Attempts); iterIdx++ {
		if iterIdx >= len(res.Iterations) {
			break
		}
		for i := 0; i < res.Iterations[iterIdx].Holes; i, n = i+1, n+1 {
			at := res.Attempts[n]
			k := at.Hole.Key()
			if at.Method == MethodDeferred {
				deferredAt[k] = iterIdx
			} else if prev, ok := deferredAt[k]; ok && iterIdx > prev {
				retried++
			}
		}
	}
	// Not every run defers (small design), but if anything was deferred and
	// iterations remained, it must have been retried, not frozen.
	if len(deferredAt) > 0 && len(res.Iterations) > 1 && retried == 0 {
		lastIter := len(res.Iterations) - 1
		allLast := true
		for _, it := range deferredAt {
			if it != lastIter {
				allLast = false
			}
		}
		if !allLast {
			t.Errorf("deferred holes never retried: %v over %d iterations",
				deferredAt, len(res.Iterations))
		}
	}
}
