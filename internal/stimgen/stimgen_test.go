package stimgen

import (
	"testing"

	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

const src = `
module m(input clk, rst, input a, input [3:0] d, output reg [3:0] q);
  always @(posedge clk) if (rst) q <= 0; else if (a) q <= d;
endmodule`

func design(t *testing.T) *rtl.Design {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRandomReproducible(t *testing.T) {
	d := design(t)
	s1 := Random(d, 50, 42, 2)
	s2 := Random(d, 50, 42, 2)
	if len(s1) != 50 {
		t.Fatalf("cycles %d", len(s1))
	}
	for c := range s1 {
		for k, v := range s1[c] {
			if s2[c][k] != v {
				t.Fatalf("seeds diverge at cycle %d key %s", c, k)
			}
		}
	}
	s3 := Random(d, 50, 43, 2)
	same := true
	for c := range s1 {
		for k, v := range s1[c] {
			if s3[c][k] != v {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical stimulus")
	}
}

func TestRandomResetPrefix(t *testing.T) {
	d := design(t)
	s := Random(d, 10, 1, 3)
	for c := 0; c < 3; c++ {
		if s[c]["rst"] != 1 {
			t.Errorf("cycle %d rst=%d want 1", c, s[c]["rst"])
		}
	}
}

func TestRandomRespectsWidths(t *testing.T) {
	d := design(t)
	s := Random(d, 100, 5, 0)
	for c, iv := range s {
		if iv["a"] > 1 {
			t.Fatalf("cycle %d: a=%d exceeds width", c, iv["a"])
		}
		if iv["d"] > 15 {
			t.Fatalf("cycle %d: d=%d exceeds width", c, iv["d"])
		}
	}
	if _, err := sim.Simulate(d, s); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustive(t *testing.T) {
	d := design(t)
	s := Exhaustive(d, 20)
	// rst(1) + a(1) + d(4) = 6 bits -> 64 combinations.
	if len(s) != 64 {
		t.Fatalf("exhaustive cycles %d want 64", len(s))
	}
	seen := map[uint64]bool{}
	for _, iv := range s {
		key := iv["rst"] | iv["a"]<<1 | iv["d"]<<2
		if seen[key] {
			t.Fatalf("duplicate combination %d", key)
		}
		seen[key] = true
	}
	if got := Exhaustive(d, 3); got != nil {
		t.Error("over-budget exhaustive should return nil")
	}
}

func TestRepeatAndConcat(t *testing.T) {
	a := sim.Stimulus{{"a": 1}}
	b := sim.Stimulus{{"a": 0}, {"a": 1}}
	r := Repeat(a, 3)
	if len(r) != 3 {
		t.Fatalf("repeat len %d", len(r))
	}
	c := Concat(a, b)
	if len(c) != 3 || c[1]["a"] != 0 {
		t.Fatalf("concat wrong: %v", c)
	}
	// Mutating the result must not affect the sources.
	c[0]["a"] = 9
	if a[0]["a"] != 1 {
		t.Error("concat aliases source")
	}
}

func TestRandomLanes(t *testing.T) {
	d := design(t)
	lanes := RandomLanes(d, 8, 40, 100, 2)
	if len(lanes) != 8 {
		t.Fatalf("lanes %d", len(lanes))
	}
	for l, got := range lanes {
		want := Random(d, 40, 100+int64(l), 2)
		if len(got) != len(want) {
			t.Fatalf("lane %d length %d vs %d", l, len(got), len(want))
		}
		for c := range want {
			for name, v := range want[c] {
				if got[c][name] != v {
					t.Fatalf("lane %d cycle %d %s: %d vs %d", l, c, name, got[c][name], v)
				}
			}
		}
	}
}
