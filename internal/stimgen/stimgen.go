// Package stimgen provides the stimulus sources of the paper's experiments:
// seeded pseudo-random input streams (the "random simulation phase"),
// exhaustive enumeration for small combinational blocks, and helpers for
// composing directed tests.
package stimgen

import (
	"math/rand"

	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// Random generates a reproducible random stimulus of the given cycle count.
// resetCycles initial cycles assert every input named "rst" or "reset" (other
// inputs still toggle randomly).
func Random(d *rtl.Design, cycles int, seed int64, resetCycles int) sim.Stimulus {
	rng := rand.New(rand.NewSource(seed))
	ins := d.Inputs()
	stim := make(sim.Stimulus, 0, cycles)
	for c := 0; c < cycles; c++ {
		iv := sim.InputVec{}
		for _, in := range ins {
			iv[in.Name] = rng.Uint64() & rtl.Mask(in.Width)
		}
		if c < resetCycles {
			if _, ok := iv["rst"]; ok {
				iv["rst"] = 1
			}
			if _, ok := iv["reset"]; ok {
				iv["reset"] = 1
			}
		} else {
			// Keep reset rare after the prefix so the design does useful work.
			if _, ok := iv["rst"]; ok && rng.Intn(16) != 0 {
				iv["rst"] = 0
			}
			if _, ok := iv["reset"]; ok && rng.Intn(16) != 0 {
				iv["reset"] = 0
			}
		}
		stim = append(stim, iv)
	}
	return stim
}

// RandomLanes generates lanes independent random stimuli for one batched
// simulation: lane l uses seed+l, so the set is reproducible and each lane
// equals Random(d, cycles, seed+l, resetCycles) exactly — mixing batched and
// scalar runs of the same seed therefore exercises identical vectors.
func RandomLanes(d *rtl.Design, lanes, cycles int, seed int64, resetCycles int) []sim.Stimulus {
	out := make([]sim.Stimulus, lanes)
	for l := range out {
		out[l] = Random(d, cycles, seed+int64(l), resetCycles)
	}
	return out
}

// Exhaustive enumerates every input combination once, in counting order. It
// returns nil if the total input width exceeds maxBits (default guard 20).
func Exhaustive(d *rtl.Design, maxBits int) sim.Stimulus {
	if maxBits <= 0 {
		maxBits = 20
	}
	ins := d.Inputs()
	bits := 0
	for _, in := range ins {
		bits += in.Width
	}
	if bits > maxBits {
		return nil
	}
	total := uint64(1) << uint(bits)
	stim := make(sim.Stimulus, 0, total)
	for n := uint64(0); n < total; n++ {
		iv := sim.InputVec{}
		rem := n
		for _, in := range ins {
			iv[in.Name] = rem & rtl.Mask(in.Width)
			rem >>= uint(in.Width)
		}
		stim = append(stim, iv)
	}
	return stim
}

// Repeat tiles a stimulus n times.
func Repeat(stim sim.Stimulus, n int) sim.Stimulus {
	out := make(sim.Stimulus, 0, len(stim)*n)
	for i := 0; i < n; i++ {
		out = append(out, stim.Clone()...)
	}
	return out
}

// Concat joins stimuli into one stream.
func Concat(parts ...sim.Stimulus) sim.Stimulus {
	var out sim.Stimulus
	for _, p := range parts {
		out = append(out, p.Clone()...)
	}
	return out
}
