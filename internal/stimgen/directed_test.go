package stimgen

import (
	"context"
	"reflect"
	"testing"

	"goldmine/internal/coverage"
	"goldmine/internal/holes"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/simc"
)

const arbiterSrc = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk)
    if (rst) begin gnt0 <= 0; gnt1 <= 0; end
    else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule`

const fsmSrc = `
module fsm(input clk, rst, go, output reg busy);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else case (state)
      2'd0: if (go) state <= 2'd1;
      2'd1: state <= 2'd2;
      2'd2: state <= 2'd0;
      default: state <= 2'd0;
    endcase
  end
  always @(*) busy = (state != 2'd0);
endmodule`

func mustElab(t *testing.T, src string) *rtl.Design {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// --- Repeat/Concat edge cases -------------------------------------------

func TestRepeatZeroAndEmpty(t *testing.T) {
	a := sim.Stimulus{{"a": 1}}
	if r := Repeat(a, 0); len(r) != 0 {
		t.Errorf("Repeat n=0 yielded %d cycles", len(r))
	}
	if r := Repeat(sim.Stimulus{}, 5); len(r) != 0 {
		t.Errorf("Repeat of empty stimulus yielded %d cycles", len(r))
	}
	if r := Repeat(nil, 3); len(r) != 0 {
		t.Errorf("Repeat of nil stimulus yielded %d cycles", len(r))
	}
}

func TestConcatZeroCycleParts(t *testing.T) {
	a := sim.Stimulus{{"a": 1}}
	if c := Concat(); c != nil {
		t.Errorf("empty Concat: %v", c)
	}
	c := Concat(sim.Stimulus{}, a, nil, a)
	if len(c) != 2 {
		t.Fatalf("Concat with empty parts: %d cycles want 2", len(c))
	}
	for _, iv := range c {
		if iv["a"] != 1 {
			t.Errorf("Concat dropped values: %v", c)
		}
	}
}

func TestConcatMismatchedVectorsReplay(t *testing.T) {
	// Parts driving different input subsets (and out-of-width values) must
	// concatenate and replay: missing inputs default to 0, wide values are
	// masked by the simulator, identically on both engines.
	d := mustElab(t, arbiterSrc)
	parts := Concat(
		sim.Stimulus{{"rst": 1}},
		sim.Stimulus{{"req0": 1}, {"req1": 0xff}}, // req1 is 1 bit wide
		sim.Stimulus{{}},                          // drives nothing
	)
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := s.Run(parts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := simc.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := simc.NewMachine(p).Run(parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ti.Values, tc.Values) {
		t.Errorf("replay diverges:\ninterp:   %v\ncompiled: %v", ti.Values, tc.Values)
	}
}

// --- DirectedFromHoles ---------------------------------------------------

func freshHoles(t *testing.T, d *rtl.Design) []*holes.Hole {
	t.Helper()
	return holes.FromCollector(coverage.New(d))
}

func TestDirectedFromHolesProducesWitnesses(t *testing.T) {
	d := mustElab(t, arbiterSrc)
	hs := freshHoles(t, d)
	attempts, err := DirectedFromHoles(context.Background(), d, hs, DirectedOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != len(hs) {
		t.Fatalf("attempts %d want %d", len(attempts), len(hs))
	}
	sat := 0
	for i, at := range attempts {
		if at.Hole != hs[i] {
			t.Fatalf("attempt %d not positional", i)
		}
		switch at.Method {
		case MethodSAT, MethodFuzz:
			if len(at.Stim) == 0 || len(at.Stim) != at.Depth {
				t.Errorf("%s: stim %d cycles, depth %d", at.Hole.Key(), len(at.Stim), at.Depth)
			}
			if at.Method == MethodSAT {
				sat++
			}
			// The witness must actually exercise the hole when replayed.
			s, err := sim.New(d)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := s.Run(at.Stim)
			if err != nil {
				t.Fatal(err)
			}
			if at.Hole.Hit(tr) < 0 {
				t.Errorf("%s: %s witness does not exercise the hole", at.Hole.Key(), at.Method)
			}
		case MethodShared:
			// No stimulus of its own: the named sibling's witness covers it.
			if at.Stim != nil || at.Via == "" {
				t.Errorf("%s: shared attempt stim=%v via=%q", at.Hole.Key(), at.Stim, at.Via)
			}
			var owner *HoleAttempt
			for _, o := range attempts {
				if o.Hole.Key() == at.Via {
					owner = o
					break
				}
			}
			if owner == nil || owner.Stim == nil {
				t.Errorf("%s: shared via %q which has no witness", at.Hole.Key(), at.Via)
				continue
			}
			s, err := sim.New(d)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := s.Run(owner.Stim)
			if err != nil {
				t.Fatal(err)
			}
			if at.Hole.Hit(tr) < 0 {
				t.Errorf("%s: sibling %q witness does not cover it", at.Hole.Key(), at.Via)
			}
		case MethodDead:
			if at.Stim != nil || at.K < 1 {
				t.Errorf("%s: dead attempt stim=%v k=%d", at.Hole.Key(), at.Stim, at.K)
			}
		case MethodUnreachable, MethodOpen, MethodError:
		default:
			t.Errorf("%s: unknown method %q", at.Hole.Key(), at.Method)
		}
	}
	if sat == 0 {
		t.Error("no hole was closed by the SAT path")
	}
}

func TestDirectedSATStimuliReplayIdenticallyCompiled(t *testing.T) {
	// Differential: every SAT-decoded witness replays byte-identically
	// through the interpreter and the compiled engine.
	d := mustElab(t, fsmSrc)
	attempts, err := DirectedFromHoles(context.Background(), d, freshHoles(t, d), DirectedOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := simc.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	m := simc.NewMachine(p)
	checked := 0
	for _, at := range attempts {
		if at.Method != MethodSAT {
			continue
		}
		s, err := sim.New(d)
		if err != nil {
			t.Fatal(err)
		}
		ti, err := s.Run(at.Stim)
		if err != nil {
			t.Fatal(err)
		}
		m.Reset()
		tc, err := m.Run(at.Stim)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ti.Values, tc.Values) {
			t.Errorf("%s: SAT witness replay diverges between engines", at.Hole.Key())
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no SAT witnesses to check")
	}
}

func TestDirectedDeterministicAcrossWorkers(t *testing.T) {
	d := mustElab(t, arbiterSrc)
	hs := freshHoles(t, d)
	run := func(workers int) []*HoleAttempt {
		at, err := DirectedFromHoles(context.Background(), d, hs, DirectedOptions{Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	a1, a4 := run(1), run(4)
	for i := range a1 {
		if a1[i].Method != a4[i].Method || a1[i].Depth != a4[i].Depth {
			t.Errorf("hole %s: -j1 %s@%d vs -j4 %s@%d", hs[i].Key(),
				a1[i].Method, a1[i].Depth, a4[i].Method, a4[i].Depth)
		}
		if !reflect.DeepEqual(a1[i].Stim, a4[i].Stim) {
			t.Errorf("hole %s: stimuli differ across worker counts", hs[i].Key())
		}
	}
}

func TestFocusedLanesHoldNonConeInputsAtZero(t *testing.T) {
	d := mustElab(t, arbiterSrc)
	focus := []*rtl.Signal{d.MustSignal("req0")}
	lanes := FocusedLanes(d, focus, 4, 20, 9, 2)
	if len(lanes) != 4 {
		t.Fatalf("lanes %d", len(lanes))
	}
	sawReq0 := false
	for _, stim := range lanes {
		for c, iv := range stim {
			if iv["req1"] != 0 {
				t.Fatalf("non-cone input req1 driven: cycle %d %v", c, iv)
			}
			if c >= 2 && iv["rst"] != 0 {
				t.Fatalf("rst outside cone asserted after prefix: cycle %d", c)
			}
			if c < 2 && iv["rst"] != 1 {
				t.Fatalf("reset prefix not asserted: cycle %d %v", c, iv)
			}
			if iv["req0"] == 1 {
				sawReq0 = true
			}
		}
	}
	if !sawReq0 {
		t.Error("focused input req0 never toggled")
	}
}

// --- CloseCoverage -------------------------------------------------------

func TestCloseCoverageImprovesOverSeed(t *testing.T) {
	d := mustElab(t, fsmSrc)
	// A tiny, deliberately bad seed so there is room to close.
	res, err := CloseCoverage(context.Background(), d, ClosureOptions{
		DirectedOptions: DirectedOptions{Seed: 1},
		SeedLanes:       1,
		SeedCycles:      4,
		MaxIterations:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ib, fb := res.Initial, res.Final
	if fb.Branch.Covered < ib.Branch.Covered || fb.FSM.Covered < ib.FSM.Covered ||
		fb.Toggle.Covered < ib.Toggle.Covered {
		t.Errorf("coverage regressed: %s -> %s", ib, fb)
	}
	if fb.FSM.Covered != fb.FSM.Total {
		t.Errorf("closure left FSM states open: %s (methods %v)", fb, res.Methods)
	}
	if res.CyclesUsed == 0 || len(res.Suite) == 0 {
		t.Error("no suite produced")
	}
	n := 0
	for _, s := range res.Suite {
		n += len(s)
	}
	if n != res.CyclesUsed {
		t.Errorf("CyclesUsed %d but suite holds %d cycles", res.CyclesUsed, n)
	}
}

func TestCloseCoverageDeterministic(t *testing.T) {
	d := mustElab(t, arbiterSrc)
	run := func(workers int) *ClosureResult {
		res, err := CloseCoverage(context.Background(), d, ClosureOptions{
			DirectedOptions: DirectedOptions{Seed: 42, Workers: workers},
			SeedLanes:       2,
			SeedCycles:      8,
			MaxIterations:   3,
			TotalCycles:     256,
			FillRandom:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r4 := run(1), run(4)
	if !reflect.DeepEqual(r1.Suite, r4.Suite) {
		t.Error("suites differ between -j1 and -j4")
	}
	if r1.Final != r4.Final {
		t.Errorf("final reports differ: %s vs %s", r1.Final, r4.Final)
	}
	// Fixed seed, same options: byte-identical on a second run.
	again := run(1)
	if !reflect.DeepEqual(r1.Suite, again.Suite) {
		t.Error("suite not reproducible for a fixed seed")
	}
}

func TestCloseCoverageRespectsCycleBudget(t *testing.T) {
	d := mustElab(t, arbiterSrc)
	res, err := CloseCoverage(context.Background(), d, ClosureOptions{
		DirectedOptions: DirectedOptions{Seed: 5},
		SeedLanes:       2,
		SeedCycles:      16,
		TotalCycles:     40,
		MaxIterations:   4,
		FillRandom:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesUsed > 40 {
		t.Errorf("budget exceeded: %d cycles", res.CyclesUsed)
	}
	if res.CyclesUsed != 40 {
		t.Errorf("FillRandom did not top up to the budget: %d/40", res.CyclesUsed)
	}
}

func TestCloseCoverageCompiledMatchesInterpreter(t *testing.T) {
	d := mustElab(t, fsmSrc)
	run := func(compiled bool) *ClosureResult {
		res, err := CloseCoverage(context.Background(), d, ClosureOptions{
			DirectedOptions: DirectedOptions{Seed: 11},
			SeedLanes:       1,
			SeedCycles:      8,
			MaxIterations:   2,
			Compiled:        compiled,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ri, rc := run(false), run(true)
	if !reflect.DeepEqual(ri.Suite, rc.Suite) {
		t.Error("suites differ between coverage engines")
	}
	if ri.Final != rc.Final {
		t.Errorf("final reports differ: %s vs %s", ri.Final, rc.Final)
	}
}
