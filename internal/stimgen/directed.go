// Directed stimulus generation: the closure engine that aims input vectors at
// what is not yet covered. Each coverage hole (internal/holes) becomes a
// reachability obligation over the CNF unrolling — branch arm: path condition
// true at some frame; toggle edge: the bit differs across adjacent frames;
// FSM arc: the state pair at adjacent frames — solved on a persistent
// mc.Session so holes of one design share unrolled frames and learned
// clauses. A SAT witness decodes into the canonical (lex-min) stimulus; on
// bounded-UNSAT or budget exhaustion the engine falls back to 64-lane batched
// fuzzing focused on the hole's cone inputs. The outer loop (CloseCoverage)
// re-simulates, re-collects, drops what closed, re-ranks, and iterates.
//
// Determinism: hole attempts are sharded round-robin over the sched pool and
// merged positionally; Reach verdicts and canonical witnesses are properties
// of the formula (not solver history), and fuzz seeds derive from the hole's
// rank index (not the worker) — so -j1 and -jN produce byte-identical suites
// whenever the per-check budgets are deterministic (the same caveat as the
// mining pipeline: wall-clock budgets trade determinism for liveness).
package stimgen

import (
	"context"
	"fmt"
	"math/rand"

	"goldmine/internal/coverage"
	"goldmine/internal/holes"
	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/sched"
	"goldmine/internal/sim"
	"goldmine/internal/simc"
	"goldmine/internal/telemetry"
)

// DirectedOptions configures DirectedFromHoles.
type DirectedOptions struct {
	// MaxDepth bounds the reachability ladder per hole (frames from
	// reset). 0 means 20.
	MaxDepth int
	// FuzzLanes / FuzzCycles shape the fallback batch fuzzing (defaults:
	// simc.MaxLanes lanes, 48 cycles).
	FuzzLanes  int
	FuzzCycles int
	// Seed is the base seed for fallback fuzzing; the per-hole seed is
	// derived from it and the hole's index in the ranked list.
	Seed int64
	// Workers is the sched pool width (0 = GOMAXPROCS).
	Workers int
	// MC overrides the checker options (zero value = mc.DefaultOptions).
	MC mc.Options
	// Telemetry journals directed.hole / mc.reach / sat.solve spans.
	Telemetry *telemetry.Tracer
	// Legacy selects the PR 7 engine: a fixed MaxDepth ladder per hole, no
	// cross-hole witness sharing, no adaptive depth, no dead-code promotion,
	// and a permanent fruitless-hole skip set in CloseCoverage. Kept for
	// benchmarking the adaptive engine against it (-cover-bench runs both).
	Legacy bool
}

func (o DirectedOptions) withDefaults() DirectedOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 20
	}
	if o.FuzzLanes <= 0 {
		o.FuzzLanes = simc.MaxLanes
	}
	if o.FuzzLanes > simc.MaxLanes {
		o.FuzzLanes = simc.MaxLanes
	}
	if o.FuzzCycles <= 0 {
		o.FuzzCycles = 48
	}
	if o.MC == (mc.Options{}) {
		o.MC = mc.DefaultOptions()
	}
	return o
}

// Attempt methods.
const (
	MethodSAT         = "sat"         // witness decoded from a satisfying assignment
	MethodFuzz        = "fuzz"        // focused batch fuzzing hit the hole
	MethodShared      = "shared"      // a sibling hole's witness covered this one
	MethodDead        = "dead"        // k-induction proved the hole unreachable at all depths
	MethodDeferred    = "deferred"    // unreachable at the adaptive cap; retried deeper next iteration
	MethodUnreachable = "unreachable" // UNSAT to the full bound and fuzzing missed
	MethodOpen        = "open"        // budget ran out and fuzzing missed
	MethodError       = "error"       // engine fault (Err carries the cause)
)

// HoleAttempt is the outcome of directing stimulus at one hole.
type HoleAttempt struct {
	Hole *holes.Hole
	// Method is one of the Method* constants.
	Method string
	// Depth is the witness length in cycles (SAT: ladder depth; fuzz: hit
	// cycle + 1; shared: hit cycle + 1 in the sibling's witness; dead /
	// deferred / unreachable: the depth proven unreachable). Zero when the
	// attempt produced neither.
	Depth int
	// Stim exercises the hole when replayed from reset, or nil. Shared
	// attempts carry no stimulus — the witness named by Via, already in the
	// suite, covers this hole.
	Stim sim.Stimulus
	// Via is the key of the sibling hole whose witness covered this one
	// (MethodShared only).
	Via string
	// K is the winning induction k of a MethodDead promotion; on a deferred
	// or unreachable attempt it is the highest induction step tried (all
	// observed Sat), feeding the cross-iteration induction resume.
	K int
	// ProvenDepth is the deepest depth this attempt proved the obligation
	// unreachable within; it feeds the cross-iteration ladder resume.
	ProvenDepth int
	// SATUnreachable records that the obligation was UNSAT to the bound
	// even when fuzzing later hit it (a diagnostic for bound tuning).
	SATUnreachable bool
	Err            error
}

// obligationFor encodes the hole as a reachability obligation. The Expr
// nodes are reused from the design/holes, so the session's per-frame gadget
// memoization applies across attempts.
func obligationFor(h *holes.Hole) mc.Obligation {
	ob := mc.Obligation{Name: h.Key()}
	switch h.Kind {
	case holes.BranchArm, holes.CondTrue:
		ob.Props = []mc.ReachProp{{Expr: h.Point.Expr, Value: true}}
	case holes.CondFalse:
		ob.Props = []mc.ReachProp{{Expr: h.Point.Expr, Value: false}}
	case holes.ToggleRise, holes.ToggleFall:
		bit := rtl.Expr(&rtl.Select{X: &rtl.Ref{Sig: h.Sig}, Bit: h.Bit})
		rise := h.Kind == holes.ToggleRise
		ob.Props = []mc.ReachProp{
			{Expr: bit, Value: !rise, Offset: 0},
			{Expr: bit, Value: rise, Offset: 1},
		}
	case holes.FSMState:
		ob.Props = []mc.ReachProp{{Expr: stateEq(h.Reg, h.To), Value: true}}
	default: // FSMArc
		ob.Props = []mc.ReachProp{
			{Expr: stateEq(h.Reg, h.From), Value: true, Offset: 0},
			{Expr: stateEq(h.Reg, h.To), Value: true, Offset: 1},
		}
	}
	return ob
}

func stateEq(reg *rtl.Signal, v uint64) rtl.Expr {
	return &rtl.Binary{Op: rtl.OpEq, A: &rtl.Ref{Sig: reg}, B: rtl.NewConst(v, reg.Width), W: 1}
}

// FocusedLanes generates fuzz lanes aimed at a hole: the hole's cone inputs
// toggle randomly while every other input is held at zero (it cannot affect
// the hole), with the usual reset prefix. Lane l uses seed+l.
func FocusedLanes(d *rtl.Design, focus []*rtl.Signal, lanes, cycles int, seed int64, resetCycles int) []sim.Stimulus {
	inCone := map[string]bool{}
	for _, s := range focus {
		inCone[s.Name] = true
	}
	ins := d.Inputs()
	out := make([]sim.Stimulus, lanes)
	for l := range out {
		rng := rand.New(rand.NewSource(seed + int64(l)))
		stim := make(sim.Stimulus, 0, cycles)
		for c := 0; c < cycles; c++ {
			iv := sim.InputVec{}
			for _, in := range ins {
				if inCone[in.Name] {
					iv[in.Name] = rng.Uint64() & rtl.Mask(in.Width)
				} else {
					iv[in.Name] = 0
				}
			}
			for _, rname := range []string{"rst", "reset"} {
				if _, ok := iv[rname]; !ok {
					continue
				}
				if c < resetCycles {
					iv[rname] = 1
				} else if inCone[rname] && rng.Intn(16) == 0 {
					iv[rname] = 1
				} else {
					iv[rname] = 0
				}
			}
			stim = append(stim, iv)
		}
		out[l] = stim
	}
	return out
}

// DirectedFromHoles synthesizes stimulus per hole: SAT-directed first,
// focused fuzzing as the fallback ladder. Holes are attempted in slice order
// (callers pass the ranked list from holes.FromCollector); the result is
// positional — out[i] answers hs[i] — and independent of the worker count.
//
// The default engine processes holes in fixed-size waves and replays every
// witness against the holes still waiting at each wave boundary: a hole
// covered by a sibling's witness comes back as MethodShared (Via names the
// sibling, Stim is nil — the sibling's stimulus is the one to keep) and never
// issues its own reach query. Set DirectedOptions.Legacy for the PR 7
// one-query-per-hole behavior.
func DirectedFromHoles(ctx context.Context, d *rtl.Design, hs []*holes.Hole, opts DirectedOptions) ([]*HoleAttempt, error) {
	opts = opts.withDefaults()
	if len(hs) == 0 {
		return make([]*HoleAttempt, 0), nil
	}
	cw, err := newClosureWorkers(d, len(hs), opts)
	if err != nil {
		return nil, err
	}
	if opts.Legacy {
		return cw.runLegacy(ctx, hs, opts), nil
	}
	caps := make([]int, len(hs))
	for i := range caps {
		caps[i] = opts.MaxDepth
	}
	return cw.runWaves(ctx, hs, caps, nil, nil, opts), nil
}

// runLegacy is the PR 7 engine: every hole gets its own full-depth query,
// witnesses are never shared.
func (cw *closureWorkers) runLegacy(ctx context.Context, hs []*holes.Hole, opts DirectedOptions) []*HoleAttempt {
	out := make([]*HoleAttempt, len(hs))
	workers := len(cw.sessions)
	tasks := make([]sched.Task, workers)
	for w := 0; w < workers; w++ {
		w := w
		tasks[w] = sched.Task{ID: w, Run: func(tctx context.Context) {
			for i := w; i < len(hs); i += workers {
				out[i] = attemptHole(tctx, cw.sessions[w], cw.bms[w], hs[i], i, opts)
				if tctx.Err() != nil {
					return
				}
			}
		}}
	}
	sched.RunTasks(ctx, workers, tasks, nil)
	// Cancellation can abandon tasks before they touch their slots.
	for i, at := range out {
		if at == nil {
			out[i] = &HoleAttempt{Hole: hs[i], Method: MethodOpen, Err: ctx.Err()}
		}
	}
	return out
}

// attemptHole runs the SAT→fuzz ladder for one hole. rank is the hole's
// index in the ranked list; the fuzz seed derives from it so results do not
// depend on which worker ran the attempt.
func attemptHole(ctx context.Context, sess *mc.Session, bm *simc.BatchMachine, h *holes.Hole, rank int, opts DirectedOptions) *HoleAttempt {
	at := &HoleAttempt{Hole: h}
	var sp *telemetry.Span
	if opts.Telemetry != nil {
		ctx, sp = opts.Telemetry.StartSpan(ctx, "directed.hole",
			telemetry.String("hole", h.Key()),
			telemetry.Int("rank", int64(rank)))
	}
	defer func() {
		sp.End(telemetry.String("method", at.Method), telemetry.Int("depth", int64(at.Depth)))
	}()

	res, err := sess.Reach(ctx, obligationFor(h), opts.MaxDepth, h.Inputs)
	unreachable := false
	switch {
	case err != nil:
		at.Err = err
	case res.Status == mc.ReachFound:
		at.Method, at.Depth, at.Stim = MethodSAT, res.Depth, res.Stim
		return at
	case res.Status == mc.ReachUnreachable:
		unreachable = true
	}

	// Fallback: focused batch fuzzing. The bound may simply be too small
	// (fuzz lanes run past it), so bounded-UNSAT still gets a fuzz shot.
	lanes := FocusedLanes(bm.Program().Design(), h.Inputs, opts.FuzzLanes, opts.FuzzCycles,
		opts.Seed+int64(rank)*1000003, 2)
	traces, err := bm.RunBatch(lanes)
	if err != nil {
		if at.Err == nil {
			at.Err = err
		}
		at.Method = MethodError
		return at
	}
	best, bestLane := -1, -1
	for l, tr := range traces {
		if hit := h.Hit(tr); hit >= 0 && (best < 0 || hit < best) {
			best, bestLane = hit, l
		}
	}
	if best >= 0 {
		at.Method, at.Depth = MethodFuzz, best+1
		at.Stim = lanes[bestLane][:best+1].Clone()
		at.SATUnreachable = unreachable
		return at
	}
	switch {
	case at.Err != nil:
		at.Method = MethodError
	case unreachable:
		at.Method = MethodUnreachable
	default:
		at.Method = MethodOpen
	}
	return at
}

// ClosureOptions configures CloseCoverage.
type ClosureOptions struct {
	DirectedOptions
	// SeedLanes random stimuli of SeedCycles cycles each prime the suite
	// (defaults 4 × 64).
	SeedLanes  int
	SeedCycles int
	// TotalCycles caps the summed cycle count of the suite (0 = no cap).
	// Directed stimuli that would exceed the cap are dropped.
	TotalCycles int
	// MaxIterations bounds the collect→extract→direct loop (default 4).
	MaxIterations int
	// FillRandom tops the suite up with random stimulus to TotalCycles
	// after closure, for equal-budget comparisons against random-only.
	FillRandom bool
	// Compiled routes coverage collection through the compiled batch-free
	// engine (identical observations, faster).
	Compiled bool
	// ResetCycles is the reset prefix of generated random stimuli
	// (default 2).
	ResetCycles int
	// DeadFile persists proven-dead holes (JSONL, per-design fingerprint
	// namespaces) across runs: holes recorded dead are excluded from the
	// universe before any query is issued, and new promotions are appended.
	// Empty disables persistence; promotions still shrink this run.
	DeadFile string
}

func (o ClosureOptions) withDefaults() ClosureOptions {
	o.DirectedOptions = o.DirectedOptions.withDefaults()
	if o.SeedLanes <= 0 {
		o.SeedLanes = 4
	}
	if o.SeedCycles <= 0 {
		o.SeedCycles = 64
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 4
	}
	if o.ResetCycles <= 0 {
		o.ResetCycles = 2
	}
	return o
}

// IterationStats records one pass of the closure loop.
type IterationStats struct {
	Holes    int // holes attempted this iteration
	Directed int // stimuli appended
	Closed   int // holes that disappeared after re-collection
	Shared   int // holes covered by a sibling's witness (no query of their own)
	Dead     int // holes promoted to proven-dead (removed from the universe)
	Deferred int // holes pushed to a deeper cap next iteration
}

// ClosureResult is the outcome of CloseCoverage.
type ClosureResult struct {
	// Suite is the final stimulus suite: seed prefix, then directed
	// stimuli in rank order per iteration, then the optional random fill.
	Suite []sim.Stimulus
	// Initial/Final are the coverage reports before and after closure.
	Initial, Final coverage.Report
	Iterations     []IterationStats
	// Attempts aggregates every hole attempt across iterations.
	Attempts []*HoleAttempt
	// Methods counts attempts by method.
	Methods map[string]int
	// Converged reports that no attemptable holes remained (every
	// remaining hole is unreachable/open/errored).
	Converged bool
	// CyclesUsed is the summed cycle count of the final suite.
	CyclesUsed int
	// Dead lists the holes promoted to proven-dead this run (k-induction on
	// top of their bounded-unreachable base case); they are removed from the
	// hole universe and, with DeadFile set, never queried again in any run.
	Dead []DeadHole
	// DeadLoaded counts holes excluded up front because a previous run
	// already proved them dead (DeadFile).
	DeadLoaded int
	// ReachCalls / ReachSolves total the reachability queries issued and the
	// SAT solves they cost, summed over the per-worker sessions. The
	// adaptive engine's whole point is making these smaller than the legacy
	// path's at equal coverage.
	ReachCalls  int
	ReachSolves int
	// Evicted / Readmitted count the final compaction pass's moves when the
	// cycle budget parked witnesses: suite witnesses evicted because every
	// fact they cover is covered elsewhere, and parked witnesses readmitted
	// into the freed cycles.
	Evicted    int
	Readmitted int
}

// CloseCoverage runs the coverage-closure loop: seed the suite randomly,
// collect, aim directed stimulus at the holes, append what hits, re-collect,
// and iterate until closure, no-progress, or the iteration/cycle budget.
//
// The default engine is adaptive and work-sharing (closer.go): per-hole depth
// caps grown across iterations with the ladder resumed past proven depths,
// witnesses replayed against every open hole at wave boundaries, and
// persistent bounded-unreachable holes promoted to proven-dead by k-induction
// and removed from the universe. ClosureOptions.Legacy selects the PR 7 loop
// (fixed depth, no sharing, permanent skip set) for comparison.
func CloseCoverage(ctx context.Context, d *rtl.Design, opts ClosureOptions) (*ClosureResult, error) {
	opts = opts.withDefaults()
	var runSp *telemetry.Span
	if opts.Telemetry != nil {
		ctx, runSp = opts.Telemetry.StartSpan(ctx, "directed.run",
			telemetry.String("design", d.Name))
		defer func() { runSp.End() }()
	}

	col := coverage.New(d)
	collect := func(stims []sim.Stimulus) error {
		if opts.Compiled {
			return col.RunSuiteCompiled(stims)
		}
		return col.RunSuite(stims)
	}

	res := &ClosureResult{Methods: map[string]int{}}
	seed := RandomLanes(d, opts.SeedLanes, opts.SeedCycles, opts.Seed, opts.ResetCycles)
	if opts.TotalCycles > 0 {
		// Cap the random seed at half the budget so directed stimulus always
		// has room to spend; truncate whole stimuli, then cycles.
		budget := opts.TotalCycles - opts.TotalCycles/2
		var kept []sim.Stimulus
		for _, s := range seed {
			if budget <= 0 {
				break
			}
			if len(s) > budget {
				s = s[:budget]
			}
			kept = append(kept, s)
			budget -= len(s)
		}
		seed = kept
	}
	res.Suite = append(res.Suite, seed...)
	for _, s := range seed {
		res.CyclesUsed += len(s)
	}
	if err := collect(seed); err != nil {
		return nil, err
	}
	res.Initial = col.Report()

	var err error
	if opts.Legacy {
		err = closeLegacy(ctx, d, col, collect, res, opts)
	} else {
		err = closeAdaptive(ctx, d, col, collect, res, opts)
	}
	if err != nil {
		return nil, err
	}
	if !res.Converged && len(holes.FromCollector(col)) == 0 {
		res.Converged = true
	}

	if opts.FillRandom && opts.TotalCycles > res.CyclesUsed {
		fill := Random(d, opts.TotalCycles-res.CyclesUsed, opts.Seed+0x5eed, opts.ResetCycles)
		res.Suite = append(res.Suite, fill)
		res.CyclesUsed += len(fill)
		if err := collect([]sim.Stimulus{fill}); err != nil {
			return nil, err
		}
	}
	res.Final = col.Report()
	if runSp != nil {
		runSp.Annotate(
			telemetry.Int("cycles", int64(res.CyclesUsed)),
			telemetry.Int("attempts", int64(len(res.Attempts))),
			telemetry.Int("reach_solves", int64(res.ReachSolves)),
		)
	}
	return res, nil
}

// closeLegacy is the PR 7 closure loop, preserved verbatim for benchmarking:
// fixed-depth queries via the legacy one-hole-one-query engine and a skip set
// that never re-evaluates a fruitless hole.
func closeLegacy(ctx context.Context, d *rtl.Design, col *coverage.Collector, collect func([]sim.Stimulus) error, res *ClosureResult, opts ClosureOptions) error {
	skip := map[string]bool{} // hole keys proven fruitless; never retried
	for iter := 0; iter < opts.MaxIterations; iter++ {
		all := holes.FromCollector(col)
		var hs []*holes.Hole
		for _, h := range all {
			if !skip[h.Key()] {
				hs = append(hs, h)
			}
		}
		if len(hs) == 0 {
			res.Converged = true
			break
		}
		var itSp *telemetry.Span
		ictx := ctx
		if opts.Telemetry != nil {
			ictx, itSp = opts.Telemetry.StartSpan(ctx, "directed.iteration",
				telemetry.Int("iter", int64(iter)),
				telemetry.Int("holes", int64(len(hs))))
		}
		cw, err := newClosureWorkers(d, len(hs), opts.DirectedOptions)
		if err != nil {
			itSp.End(telemetry.String("error", err.Error()))
			return err
		}
		attempts := cw.runLegacy(ictx, hs, opts.DirectedOptions)
		cw.sumQueries(res)
		st := IterationStats{Holes: len(hs)}
		var fresh []sim.Stimulus
		for _, at := range attempts {
			res.Attempts = append(res.Attempts, at)
			res.Methods[at.Method]++
			switch at.Method {
			case MethodSAT, MethodFuzz:
				if opts.TotalCycles > 0 && res.CyclesUsed+len(at.Stim) > opts.TotalCycles {
					continue // over budget: drop, but keep accounting
				}
				fresh = append(fresh, at.Stim)
				res.CyclesUsed += len(at.Stim)
				st.Directed++
			default:
				// Unreachable/open/error: do not burn budget on this
				// hole again in later iterations.
				skip[at.Hole.Key()] = true
			}
		}
		if st.Directed == 0 {
			res.Iterations = append(res.Iterations, st)
			itSp.End(telemetry.Int("appended", 0))
			break // no progress possible: every hole is skipped or over budget
		}
		res.Suite = append(res.Suite, fresh...)
		before := len(holes.FromCollector(col))
		if err := collect(fresh); err != nil {
			itSp.End(telemetry.String("error", err.Error()))
			return err
		}
		st.Closed = before - len(holes.FromCollector(col))
		res.Iterations = append(res.Iterations, st)
		itSp.End(telemetry.Int("appended", int64(st.Directed)), telemetry.Int("closed", int64(st.Closed)))
		if ctx.Err() != nil {
			break
		}
	}
	return nil
}

// String summarizes an attempt for CLI output.
func (at *HoleAttempt) String() string {
	s := fmt.Sprintf("%-12s %s", at.Method, at.Hole.Key())
	if at.Stim != nil {
		s += fmt.Sprintf(" (%d cycles)", len(at.Stim))
	}
	return s
}
