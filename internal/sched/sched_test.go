package sched

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunTasksRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 40
		var ran [n]int32
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = Task{ID: i, Run: func(context.Context) {
				atomic.AddInt32(&ran[i], 1)
			}}
		}
		st := RunTasks(context.Background(), workers, tasks, nil)
		for i := range ran {
			if ran[i] != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, ran[i])
			}
		}
		if st.Completed != n {
			t.Fatalf("workers=%d: Completed = %d, want %d", workers, st.Completed, n)
		}
		if st.Workers > workers || st.Workers > n {
			t.Fatalf("workers=%d: resolved Workers = %d", workers, st.Workers)
		}
	}
}

func TestWorkersClamp(t *testing.T) {
	if w := Workers(0, 10); w < 1 {
		t.Fatalf("Workers(0,10) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8,3) = %d, want 3", w)
	}
	if w := Workers(-2, 0); w < 1 {
		t.Fatalf("Workers(-2,0) = %d", w)
	}
}

func TestRunTasksStealing(t *testing.T) {
	// One worker's deque gets every slow task (round-robin with 2 workers and
	// slow tasks at even indices); the other must steal to stay busy. With a
	// blocking rendezvous we force both workers to be active at once, so at
	// least one steal is guaranteed: worker 1's own deque holds one quick
	// task, and the gate only opens once worker 1 has entered a stolen task.
	gate := make(chan struct{})
	entered := make(chan int, 16)
	tasks := []Task{
		{ID: 0, Run: func(ctx context.Context) {
			// Worker 0 parks here until another worker steals task 2 or 3.
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}},
		{ID: 1, Run: func(context.Context) {}},
		{ID: 2, Run: func(context.Context) { entered <- 2; close(gate) }},
		{ID: 3, Run: func(context.Context) {}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st := RunTasks(ctx, 2, tasks, nil)
	if st.Completed != 4 {
		t.Fatalf("Completed = %d, want 4", st.Completed)
	}
	if st.Stolen == 0 {
		t.Fatal("expected at least one stolen task")
	}
	select {
	case <-entered:
	default:
		t.Fatal("task 2 never ran")
	}
}

func TestRunTasksCancellationDrains(t *testing.T) {
	// The first tasks cancel the context themselves; queued tasks must be
	// abandoned without running, and RunTasks must still return.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 64
	var ran int64
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{ID: i, Run: func(context.Context) {
			atomic.AddInt64(&ran, 1)
			if i < 2 {
				cancel()
			}
		}}
	}
	st := RunTasks(ctx, 2, tasks, nil)
	if st.Completed != atomic.LoadInt64(&ran) {
		t.Fatalf("Completed = %d, ran = %d", st.Completed, ran)
	}
	if st.Completed == n {
		t.Fatal("cancellation did not abandon any queued task")
	}
}

func TestRunTasksPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	tasks := []Task{{ID: 0, Run: func(context.Context) { atomic.AddInt64(&ran, 1) }}}
	st := RunTasks(ctx, 4, tasks, nil)
	if ran != 0 || st.Completed != 0 {
		t.Fatalf("pre-cancelled pool ran %d tasks (completed %d)", ran, st.Completed)
	}
}

func TestRunTasksPanicIsolation(t *testing.T) {
	var mu sync.Mutex
	var caught []*PanicError
	var ran int64
	tasks := make([]Task, 8)
	for i := range tasks {
		i := i
		tasks[i] = Task{ID: i, Run: func(context.Context) {
			if i%3 == 0 {
				panic("hostile task")
			}
			atomic.AddInt64(&ran, 1)
		}}
	}
	st := RunTasks(context.Background(), 3, tasks, func(task Task, pe *PanicError) {
		mu.Lock()
		defer mu.Unlock()
		if pe.TaskID != task.ID {
			t.Errorf("PanicError.TaskID = %d, task.ID = %d", pe.TaskID, task.ID)
		}
		if len(pe.Stack) == 0 {
			t.Error("missing panic stack")
		}
		caught = append(caught, pe)
	})
	if st.Panics != 3 {
		t.Fatalf("Panics = %d, want 3", st.Panics)
	}
	if len(caught) != 3 {
		t.Fatalf("onPanic called %d times, want 3", len(caught))
	}
	if ran != 5 {
		t.Fatalf("non-panicking tasks ran %d times, want 5", ran)
	}
	if st.Completed != 8 {
		t.Fatalf("Completed = %d, want 8 (panicking tasks still complete)", st.Completed)
	}
}

func TestPriorityOrderHardestFirstStable(t *testing.T) {
	scores := []int64{10, 50, 50, 5, 100, 50}
	order := PriorityOrder(len(scores), func(i int) int64 { return scores[i] })
	want := []int{4, 1, 2, 5, 0, 3} // descending score, ties in index order
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("PriorityOrder = %v, want %v", order, want)
	}
	// Deterministic: identical inputs give the identical permutation.
	again := PriorityOrder(len(scores), func(i int) int64 { return scores[i] })
	if !reflect.DeepEqual(order, again) {
		t.Fatalf("PriorityOrder not deterministic: %v vs %v", order, again)
	}
	// A permutation: every index exactly once.
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatalf("index %d appears twice in %v", i, order)
		}
		seen[i] = true
	}
	if empty := PriorityOrder(0, func(int) int64 { return 0 }); len(empty) != 0 {
		t.Fatalf("PriorityOrder(0) = %v, want empty", empty)
	}
}
