// Package sched is the parallel mining scheduler of the GoldMine
// reproduction. The refinement loop is embarrassingly parallel at two levels
// — every output bit's mining run is independent, and in batched-check mode
// (paper Section 7) the leaf checks of one iteration are independent of each
// other — and this package supplies the two pieces that exploit it safely:
//
//   - A work-stealing task pool (RunTasks): tasks are sharded round-robin
//     onto per-worker deques; a worker drains its own deque front-to-back and
//     steals from the tail of a sibling's deque when it runs dry, so uneven
//     per-output mining cost never leaves a core idle. Cancellation drains
//     the pool cleanly (queued tasks are abandoned, running tasks finish on
//     their own context discipline), and a panicking task is isolated to its
//     own slot — the worker recovers, reports the fault, and moves on.
//
//   - A memoizing verdict cache (VerdictCache): every formal check is routed
//     through a concurrency-safe, single-flight cache keyed by the canonical
//     assertion form plus a design/options fingerprint, so identical
//     candidates mined for different outputs, regenerated across refinement
//     iterations, or re-checked across engines never hit the model checker
//     twice. Only decisive, budget-clean verdicts are stored; degraded or
//     unknown results are returned to their caller but evicted so a later
//     caller with a healthier budget recomputes.
//
// Determinism contract: the pool identifies every task by its index and the
// caller merges results positionally, so `-j 1` and `-j N` produce the same
// mining artifacts (assertions, counterexample stimuli, iteration stats).
// Scheduler telemetry — tasks stolen, cache hit/shared counts — is advisory
// and intentionally excluded from that contract: which worker computes a
// shared verdict first is a race the cache resolves safely but not
// reproducibly.
package sched

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"goldmine/internal/telemetry"
)

// Task is one independent unit of schedulable work. ID is the caller's merge
// index; Run must honour ctx cancellation on its own (the pool stops
// dispatching queued tasks once ctx is done but never kills a running one).
type Task struct {
	ID  int
	Run func(ctx context.Context)
}

// PanicError records a panic isolated inside a pool worker.
type PanicError struct {
	TaskID int
	Value  any
	Stack  []byte
}

// Stats is the pool telemetry of one RunTasks call.
type Stats struct {
	// Workers is the number of worker goroutines used.
	Workers int
	// Tasks is the number of tasks submitted.
	Tasks int
	// Completed counts tasks that ran to completion (including ones whose
	// panic was isolated).
	Completed int64
	// Stolen counts tasks executed by a worker other than the one whose
	// deque they were initially sharded onto.
	Stolen int64
	// Panics counts tasks whose panic was recovered by the worker barrier.
	Panics int64
}

// deque is a mutex-guarded double-ended task queue. The owner pops from the
// front; thieves steal from the back, minimizing contention on the hot end.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (q *deque) popFront() (Task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return Task{}, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true
}

func (q *deque) popBack() (Task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return Task{}, false
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	return t, true
}

// PriorityOrder returns a dispatch permutation of n tasks, highest score
// first; ties keep the original (index) order, so the permutation is fully
// deterministic. Dispatching predicted-hard checks first is classic
// longest-processing-time makespan scheduling: the pool never ends a round
// with one straggling hard property serializing the tail. The caller still
// merges results positionally (Task.ID is unchanged), so dispatch order never
// leaks into artifacts.
func PriorityOrder(n int, score func(int) int64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return score(order[a]) > score(order[b])
	})
	return order
}

// Workers clamps a worker-count request: n < 1 means GOMAXPROCS, and the
// count never exceeds the number of tasks it will serve.
func Workers(n, tasks int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if tasks > 0 && n > tasks {
		n = tasks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// RunTasks executes tasks on `workers` goroutines with work stealing and
// blocks until every dispatched task has finished. Tasks never spawn tasks,
// so an empty set of deques is a terminal state. When ctx is cancelled,
// queued tasks are abandoned (their Run is never called); tasks already
// running are left to observe ctx themselves. A panic inside a task is
// recovered by the worker, reported through onPanic (if non-nil), and counted
// in Stats.Panics; the worker then continues with its next task.
func RunTasks(ctx context.Context, workers int, tasks []Task, onPanic func(Task, *PanicError)) Stats {
	workers = Workers(workers, len(tasks))
	st := Stats{Workers: workers, Tasks: len(tasks)}
	if len(tasks) == 0 {
		return st
	}
	queues := make([]*deque, workers)
	for i := range queues {
		queues[i] = &deque{}
	}
	for i, t := range tasks {
		q := queues[i%workers]
		q.tasks = append(q.tasks, t)
	}
	var completed, stolen, panics int64
	run := func(t Task, theft bool) {
		defer func() {
			if r := recover(); r != nil {
				atomic.AddInt64(&panics, 1)
				if onPanic != nil {
					buf := make([]byte, 16<<10)
					buf = buf[:runtime.Stack(buf, false)]
					onPanic(t, &PanicError{TaskID: t.ID, Value: r, Stack: buf})
				}
			}
			atomic.AddInt64(&completed, 1)
		}()
		if theft {
			atomic.AddInt64(&stolen, 1)
			// Advisory journal event: which worker steals which task is a
			// benign race, so steals are telemetry, never artifacts.
			if tr := telemetry.ContextTracer(ctx); tr != nil {
				tr.Event("sched.steal", telemetry.Int("task", int64(t.ID)))
				tr.Registry().Counter("sched.steals").Inc()
			}
		}
		t.Run(ctx)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			own := queues[w]
			for {
				if ctx.Err() != nil {
					return // drain: abandon queued tasks
				}
				if t, ok := own.popFront(); ok {
					run(t, false)
					continue
				}
				// Own deque dry: steal from siblings, scanning outward so
				// concurrent thieves start at different victims.
				found := false
				for off := 1; off < workers; off++ {
					if t, ok := queues[(w+off)%workers].popBack(); ok {
						run(t, true)
						found = true
						break
					}
				}
				if !found {
					return // every deque empty — no task creates tasks
				}
			}
		}(w)
	}
	wg.Wait()
	st.Completed = completed
	st.Stolen = stolen
	st.Panics = panics
	return st
}
