// Verdict cache: a concurrency-safe, single-flight memo table in front of the
// model checker. See the package comment for the role it plays in the
// scheduler.
package sched

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/telemetry"
)

// ErrCheckPanicked is the error waiters of a single-flight check observe when
// the goroutine computing the shared verdict panicked. The panicking caller
// itself sees the original panic (re-raised in its own goroutine so the
// engine's recover barrier attributes it correctly); waiters get this error
// and degrade their own leaf through the usual fault-isolation path.
var ErrCheckPanicked = errors.New("sched: in-flight check panicked")

// Outcome classifies how a VerdictCache.Check call was served.
type Outcome int

const (
	// Computed: this caller ran the model checker (cache miss, leader).
	Computed Outcome = iota
	// Hit: a stored verdict was returned without any model-checker work.
	Hit
	// Shared: the verdict was being computed by another goroutine; this
	// caller waited for it (a deduplicated concurrent check).
	Shared
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "computed"
	}
}

// CacheStats is a snapshot of VerdictCache telemetry.
type CacheStats struct {
	// Hits counts lookups served from a stored verdict.
	Hits int64
	// Shared counts lookups that waited on an identical in-flight check.
	Shared int64
	// Misses counts lookups that had to run the model checker.
	Misses int64
	// Stored counts verdicts retained (decisive and budget-clean).
	Stored int64
}

// Lookups is the total number of Check calls behind the snapshot.
func (s CacheStats) Lookups() int64 { return s.Hits + s.Shared + s.Misses }

// HitRate is the fraction of lookups that avoided model-checker work
// (stored hits plus deduplicated in-flight shares).
func (s CacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits+s.Shared) / float64(n)
	}
	return 0
}

type cacheEntry struct {
	done chan struct{} // closed when res/err are final
	res  *mc.Result
	err  error
}

// VerdictCache memoizes model-checker verdicts under canonical keys. It is
// safe for concurrent use by any number of goroutines. Identical concurrent
// checks are single-flighted: one caller (the leader) runs the checker while
// the others wait for its verdict.
//
// Storage policy: only decisive, budget-clean verdicts (proved / falsified /
// bounded, not degraded, no recorded cause) are retained. Unknown or degraded
// verdicts are returned to their caller but evicted immediately — they
// reflect that caller's budget, not the assertion, and a later caller with a
// healthier budget must be free to recompute. Hard errors and panics are
// likewise never cached.
type VerdictCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, shared, misses, stored int64
}

// NewVerdictCache creates an empty cache.
func NewVerdictCache() *VerdictCache {
	return &VerdictCache{entries: map[string]*cacheEntry{}}
}

// Stats returns a consistent snapshot of the telemetry counters.
func (c *VerdictCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Shared: c.shared, Misses: c.misses, Stored: c.stored}
}

// Len returns the number of stored or in-flight entries.
func (c *VerdictCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cacheable reports whether a verdict may be stored: decisive and untouched
// by budget pressure, so any later caller would compute exactly the same one.
func cacheable(res *mc.Result) bool {
	if res == nil || res.Degraded || res.Cause != nil {
		return false
	}
	switch res.Status {
	case mc.StatusProved, mc.StatusFalsified, mc.StatusBounded:
		return true
	default:
		return false
	}
}

// result hands a terminal entry to a caller: a shallow copy of the verdict so
// callers can own their Result struct, with the counterexample stimulus
// shared read-only (nothing downstream mutates it).
func (e *cacheEntry) result() (*mc.Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	r := *e.res
	return &r, nil
}

// Check routes one formal check through the cache. compute is invoked in the
// calling goroutine when the key is absent (so panics surface to the caller's
// own recover barrier, with waiters failed via ErrCheckPanicked). When an
// identical check is already in flight, Check blocks until the leader's
// verdict lands or ctx dies; a context death while waiting is reported as
// mc.ErrCanceled, matching the checker's own budget taxonomy.
func (c *VerdictCache) Check(ctx context.Context, key string, compute func() (*mc.Result, error)) (*mc.Result, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done: // terminal entry: a stored decisive verdict
			c.hits++
			c.mu.Unlock()
			res, err := e.result()
			return res, Hit, err
		default: // in flight: wait for the leader
			c.shared++
			c.mu.Unlock()
			// A deduplicated concurrent check: advisory, like steals.
			if tr := telemetry.ContextTracer(ctx); tr != nil {
				tr.Event("sched.dedup")
				tr.Registry().Counter("sched.dedups").Inc()
			}
			select {
			case <-e.done:
				res, err := e.result()
				return res, Shared, err
			case <-ctx.Done():
				return nil, Shared, fmt.Errorf("%w: while waiting on shared check: %v", mc.ErrCanceled, ctx.Err())
			}
		}
	}
	// Leader: compute in this goroutine under a fresh in-flight entry.
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	finished := false
	defer func() {
		if finished {
			return
		}
		// compute panicked: fail the waiters, evict, and let the panic
		// continue into the caller's recover barrier.
		e.err = ErrCheckPanicked
		c.evict(key, e)
		close(e.done)
	}()
	res, err := compute()
	finished = true
	e.res, e.err = res, err
	if err != nil || !cacheable(res) {
		c.evict(key, e)
	} else {
		c.mu.Lock()
		c.stored++
		c.mu.Unlock()
	}
	close(e.done)
	if err != nil {
		return nil, Computed, err
	}
	return res, Computed, nil
}

// evict removes the entry if it still owns the key.
func (c *VerdictCache) evict(key string, e *cacheEntry) {
	c.mu.Lock()
	if c.entries[key] == e {
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Cache key fingerprints
// ---------------------------------------------------------------------------

// DesignFingerprint hashes the structural identity of a design — name,
// signal declarations, and the canonical rendering of every combinational and
// next-state expression — so verdicts cached for one design can never leak
// onto another, even across engines sharing one cache.
func DesignFingerprint(d *rtl.Design) string {
	h := fnv.New64a()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	write(d.Name)
	write(d.Clock)
	for _, s := range d.Signals {
		write(fmt.Sprintf("%s:%d:%v:%v", s.Name, s.Width, s.Kind, s.IsState))
	}
	lines := make([]string, 0, len(d.Comb)+len(d.Next))
	for s, e := range d.Comb {
		lines = append(lines, "c "+s.Name+" = "+rtl.String(e))
	}
	for s, e := range d.Next {
		lines = append(lines, "n "+s.Name+" <= "+rtl.String(e))
	}
	sort.Strings(lines)
	for _, l := range lines {
		write(l)
	}
	return fmt.Sprintf("d%016x", h.Sum64())
}

// OptionsFingerprint hashes the model-checker limits. Budgets and engine
// bounds are part of the cache key: two checkers with different limits may
// legitimately return different bounded verdicts for the same assertion.
func OptionsFingerprint(opts mc.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", opts)
	return fmt.Sprintf("o%016x", h.Sum64())
}
