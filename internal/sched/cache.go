// Verdict cache: a concurrency-safe, single-flight memo table in front of the
// model checker. See the package comment for the role it plays in the
// scheduler.
//
// The cache is sharded and LRU-bounded so one instance can serve two very
// different lifetimes: the private per-run cache every engine keeps (a single
// shard is plenty — contention is bounded by the worker count of one run) and
// the process-wide cross-run cache of the goldmined daemon, where many tenants
// mining the same design share warm entries across jobs and the cache must
// survive for days without growing past its budget.
package sched

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/telemetry"
)

// ErrCheckPanicked is the error waiters of a single-flight check observe when
// the goroutine computing the shared verdict panicked. The panicking caller
// itself sees the original panic (re-raised in its own goroutine so the
// engine's recover barrier attributes it correctly); waiters get this error
// and degrade their own leaf through the usual fault-isolation path.
var ErrCheckPanicked = errors.New("sched: in-flight check panicked")

// DefaultCacheCapacity bounds a NewVerdictCache instance: per-run caches top
// out in the low thousands of decisive verdicts on the bundled designs, so
// 64k entries is effectively "unbounded for a run" while still guaranteeing
// the cache cannot grow without limit on a pathological workload.
const DefaultCacheCapacity = 1 << 16

// Outcome classifies how a VerdictCache.Check call was served.
type Outcome int

const (
	// Computed: this caller ran the model checker (cache miss, leader).
	Computed Outcome = iota
	// Hit: a stored verdict was returned without any model-checker work.
	Hit
	// Shared: the verdict was being computed by another goroutine; this
	// caller waited for it (a deduplicated concurrent check).
	Shared
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "computed"
	}
}

// CacheStats is a snapshot of VerdictCache telemetry.
type CacheStats struct {
	// Hits counts lookups served from a stored verdict.
	Hits int64
	// Shared counts lookups that waited on an identical in-flight check.
	Shared int64
	// Misses counts lookups that had to run the model checker.
	Misses int64
	// Stored counts verdicts retained (decisive and budget-clean).
	Stored int64
	// Evicted counts stored verdicts pushed out by the LRU bound.
	Evicted int64
}

// Lookups is the total number of Check calls behind the snapshot.
func (s CacheStats) Lookups() int64 { return s.Hits + s.Shared + s.Misses }

// HitRate is the fraction of lookups that avoided model-checker work
// (stored hits plus deduplicated in-flight shares).
func (s CacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits+s.Shared) / float64(n)
	}
	return 0
}

type cacheEntry struct {
	key  string
	done chan struct{} // closed when res/err are final
	res  *mc.Result
	err  error

	// Intrusive LRU links, valid only while resident (stored in a shard's
	// recency list). In-flight entries are not resident: they cannot be
	// evicted while a leader is computing and waiters hold their done
	// channel.
	prev, next *cacheEntry
	resident   bool
}

// VerdictCache memoizes model-checker verdicts under canonical keys. It is
// safe for concurrent use by any number of goroutines. Identical concurrent
// checks are single-flighted: one caller (the leader) runs the checker while
// the others wait for its verdict.
//
// Storage policy: only decisive, budget-clean verdicts (proved / falsified /
// bounded, not degraded, no recorded cause) are retained. Unknown or degraded
// verdicts are returned to their caller but evicted immediately — they
// reflect that caller's budget, not the assertion, and a later caller with a
// healthier budget must be free to recompute. Hard errors and panics are
// likewise never cached.
//
// Residency is bounded: each shard keeps its stored entries on an LRU list
// and evicts the coldest ones once the shard's capacity is exceeded, so a
// long-lived cross-run cache degrades by recomputing cold verdicts, never by
// exhausting memory.
type VerdictCache struct {
	shards []*cacheShard
	mask   uint32
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// lru is the sentinel of the doubly-linked recency ring: lru.next is the
	// most recently used resident entry, lru.prev the coldest.
	lru      cacheEntry
	resident int
	capacity int // max resident entries; <= 0 means unbounded

	hits, shared, misses, stored, evicted int64
}

// NewVerdictCache creates a single-shard cache bounded at
// DefaultCacheCapacity — the per-run configuration.
func NewVerdictCache() *VerdictCache {
	return NewVerdictCacheSized(1, DefaultCacheCapacity)
}

// NewVerdictCacheSized creates a cache with the given shard count (rounded up
// to a power of two) and total capacity, split evenly across shards. A
// capacity <= 0 means unbounded. Sharding only spreads lock contention; the
// single-flight and storage semantics are identical for any shard count.
func NewVerdictCacheSized(shards, capacity int) *VerdictCache {
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + n - 1) / n
		if perShard < 1 {
			perShard = 1
		}
	}
	c := &VerdictCache{shards: make([]*cacheShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		s := &cacheShard{entries: map[string]*cacheEntry{}, capacity: perShard}
		s.lru.next, s.lru.prev = &s.lru, &s.lru
		c.shards[i] = s
	}
	return c
}

// Shards returns the shard count (a power of two).
func (c *VerdictCache) Shards() int { return len(c.shards) }

// Capacity returns the total resident-entry bound (0 = unbounded).
func (c *VerdictCache) Capacity() int {
	if c.shards[0].capacity <= 0 {
		return 0
	}
	return c.shards[0].capacity * len(c.shards)
}

func (c *VerdictCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()&c.mask]
}

// Stats returns a consistent per-shard, aggregated snapshot of the telemetry
// counters.
func (c *VerdictCache) Stats() CacheStats {
	var st CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Shared += s.shared
		st.Misses += s.misses
		st.Stored += s.stored
		st.Evicted += s.evicted
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of stored or in-flight entries.
func (c *VerdictCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// cacheable reports whether a verdict may be stored: decisive and untouched
// by budget pressure, so any later caller would compute exactly the same one.
func cacheable(res *mc.Result) bool {
	if res == nil || res.Degraded || res.Cause != nil {
		return false
	}
	switch res.Status {
	case mc.StatusProved, mc.StatusFalsified, mc.StatusBounded:
		return true
	default:
		return false
	}
}

// result hands a terminal entry to a caller: a shallow copy of the verdict so
// callers can own their Result struct, with the counterexample stimulus
// shared read-only (nothing downstream mutates it).
func (e *cacheEntry) result() (*mc.Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	r := *e.res
	return &r, nil
}

// unlink removes e from its shard's recency ring. Caller holds the shard lock.
func (s *cacheShard) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	e.resident = false
	s.resident--
}

// linkFront marks e most-recently-used. Caller holds the shard lock.
func (s *cacheShard) linkFront(e *cacheEntry) {
	e.next = s.lru.next
	e.prev = &s.lru
	s.lru.next.prev = e
	s.lru.next = e
	e.resident = true
	s.resident++
}

// touch refreshes e's recency. Caller holds the shard lock.
func (s *cacheShard) touch(e *cacheEntry) {
	if !e.resident {
		return
	}
	s.unlink(e)
	s.linkFront(e)
}

// store makes a terminal entry resident and evicts past the capacity bound.
// Caller holds the shard lock.
func (s *cacheShard) store(e *cacheEntry) {
	s.stored++
	s.linkFront(e)
	for s.capacity > 0 && s.resident > s.capacity {
		cold := s.lru.prev
		if cold == &s.lru {
			break
		}
		s.unlink(cold)
		delete(s.entries, cold.key)
		s.evicted++
	}
}

// Check routes one formal check through the cache. compute is invoked in the
// calling goroutine when the key is absent (so panics surface to the caller's
// own recover barrier, with waiters failed via ErrCheckPanicked). When an
// identical check is already in flight, Check blocks until the leader's
// verdict lands or ctx dies; a context death while waiting is reported as
// mc.ErrCanceled, matching the checker's own budget taxonomy.
func (c *VerdictCache) Check(ctx context.Context, key string, compute func() (*mc.Result, error)) (*mc.Result, Outcome, error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		select {
		case <-e.done: // terminal entry: a stored decisive verdict
			s.hits++
			s.touch(e)
			s.mu.Unlock()
			res, err := e.result()
			return res, Hit, err
		default: // in flight: wait for the leader
			s.shared++
			s.mu.Unlock()
			// A deduplicated concurrent check: advisory, like steals.
			if tr := telemetry.ContextTracer(ctx); tr != nil {
				tr.Event("sched.dedup")
				tr.Registry().Counter("sched.dedups").Inc()
			}
			select {
			case <-e.done:
				res, err := e.result()
				return res, Shared, err
			case <-ctx.Done():
				return nil, Shared, fmt.Errorf("%w: while waiting on shared check: %v", mc.ErrCanceled, ctx.Err())
			}
		}
	}
	// Leader: compute in this goroutine under a fresh in-flight entry.
	e := &cacheEntry{key: key, done: make(chan struct{})}
	s.entries[key] = e
	s.misses++
	s.mu.Unlock()

	finished := false
	defer func() {
		if finished {
			return
		}
		// compute panicked: fail the waiters, evict, and let the panic
		// continue into the caller's recover barrier.
		e.err = ErrCheckPanicked
		s.evict(key, e)
		close(e.done)
	}()
	res, err := compute()
	finished = true
	e.res, e.err = res, err
	if err != nil || !cacheable(res) {
		s.evict(key, e)
	} else {
		s.mu.Lock()
		if s.entries[key] == e {
			s.store(e)
		}
		s.mu.Unlock()
	}
	close(e.done)
	if err != nil {
		return nil, Computed, err
	}
	return res, Computed, nil
}

// evict removes the entry if it still owns the key.
func (s *cacheShard) evict(key string, e *cacheEntry) {
	s.mu.Lock()
	if s.entries[key] == e {
		delete(s.entries, key)
		if e.resident {
			s.unlink(e)
		}
	}
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Cache key fingerprints
// ---------------------------------------------------------------------------

// DesignFingerprint hashes the structural identity of a design — name,
// signal declarations, and the canonical rendering of every combinational and
// next-state expression — so verdicts cached for one design can never leak
// onto another, even across engines sharing one cache.
func DesignFingerprint(d *rtl.Design) string {
	h := fnv.New64a()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	write(d.Name)
	write(d.Clock)
	for _, s := range d.Signals {
		write(fmt.Sprintf("%s:%d:%v:%v", s.Name, s.Width, s.Kind, s.IsState))
	}
	lines := make([]string, 0, len(d.Comb)+len(d.Next))
	for s, e := range d.Comb {
		lines = append(lines, "c "+s.Name+" = "+rtl.String(e))
	}
	for s, e := range d.Next {
		lines = append(lines, "n "+s.Name+" <= "+rtl.String(e))
	}
	sort.Strings(lines)
	for _, l := range lines {
		write(l)
	}
	return fmt.Sprintf("d%016x", h.Sum64())
}

// OptionsFingerprint hashes the model-checker limits. Budgets and engine
// bounds are part of the cache key: two checkers with different limits may
// legitimately return different bounded verdicts for the same assertion.
// Portfolio is excluded: the racing backend guarantees byte-identical
// verdicts and counterexamples, so cached results (and pooled serve engines)
// are interchangeable across portfolio settings.
func OptionsFingerprint(opts mc.Options) string {
	opts.Portfolio = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", opts)
	return fmt.Sprintf("o%016x", h.Sum64())
}
