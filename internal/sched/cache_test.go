package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"goldmine/internal/mc"
	"goldmine/internal/rtl"
)

func proved() (*mc.Result, error) {
	return &mc.Result{Status: mc.StatusProved, Method: "test"}, nil
}

func TestCacheHitOnSecondCheck(t *testing.T) {
	c := NewVerdictCache()
	var computes int32
	compute := func() (*mc.Result, error) {
		atomic.AddInt32(&computes, 1)
		return proved()
	}
	ctx := context.Background()
	r1, o1, err := c.Check(ctx, "k", compute)
	if err != nil || o1 != Computed || r1.Status != mc.StatusProved {
		t.Fatalf("first check: %v %v %v", r1, o1, err)
	}
	r2, o2, err := c.Check(ctx, "k", compute)
	if err != nil || o2 != Hit || r2.Status != mc.StatusProved {
		t.Fatalf("second check: %v %v %v", r2, o2, err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if r1 == r2 {
		t.Fatal("cache handed out its stored *Result instead of a copy")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stored != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestCacheDoesNotStoreIndecisiveVerdicts(t *testing.T) {
	cases := []*mc.Result{
		{Status: mc.StatusUnknown, Cause: mc.ErrBudgetExceeded},
		{Status: mc.StatusProved, Degraded: true},
		{Status: mc.StatusBounded, Cause: mc.ErrBudgetExceeded},
	}
	for i, bad := range cases {
		c := NewVerdictCache()
		var computes int32
		compute := func() (*mc.Result, error) {
			atomic.AddInt32(&computes, 1)
			return bad, nil
		}
		for n := 0; n < 2; n++ {
			if _, o, err := c.Check(context.Background(), "k", compute); err != nil || o != Computed {
				t.Fatalf("case %d check %d: outcome %v err %v", i, n, o, err)
			}
		}
		if computes != 2 {
			t.Fatalf("case %d: computed %d times, want 2 (no store)", i, computes)
		}
		if c.Len() != 0 {
			t.Fatalf("case %d: %d entries retained", i, c.Len())
		}
	}
}

func TestCacheDoesNotStoreErrors(t *testing.T) {
	c := NewVerdictCache()
	boom := errors.New("boom")
	if _, _, err := c.Check(context.Background(), "k", func() (*mc.Result, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error entry retained")
	}
	if _, o, err := c.Check(context.Background(), "k", proved); err != nil || o != Computed {
		t.Fatalf("recompute after error: %v %v", o, err)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewVerdictCache()
	started := make(chan struct{})
	release := make(chan struct{})
	var computes int32
	go func() {
		c.Check(context.Background(), "k", func() (*mc.Result, error) {
			atomic.AddInt32(&computes, 1)
			close(started)
			<-release
			return proved()
		})
	}()
	<-started
	const waiters = 4
	var wg sync.WaitGroup
	var sharedCount int32
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, o, err := c.Check(context.Background(), "k", func() (*mc.Result, error) {
				atomic.AddInt32(&computes, 1)
				return proved()
			})
			if err != nil || r.Status != mc.StatusProved {
				t.Errorf("waiter: %v %v", r, err)
			}
			if o == Shared {
				atomic.AddInt32(&sharedCount, 1)
			}
		}()
	}
	// Give the waiters a moment to attach to the in-flight entry, then let
	// the leader finish. Late waiters score a Hit instead of Shared — both
	// mean the checker ran once.
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times, want 1 (single flight)", computes)
	}
	st := c.Stats()
	if st.Shared != int64(sharedCount) {
		t.Fatalf("stats.Shared = %d, observed %d Shared outcomes", st.Shared, sharedCount)
	}
}

func TestCacheCancelWhileWaiting(t *testing.T) {
	c := NewVerdictCache()
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Check(context.Background(), "k", func() (*mc.Result, error) {
			close(started)
			<-release
			return proved()
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Check(ctx, "k", proved)
		done <- err
	}()
	cancel()
	err := <-done
	if !errors.Is(err, mc.ErrCanceled) {
		t.Fatalf("err = %v, want mc.ErrCanceled", err)
	}
	close(release)
}

func TestCacheLeaderPanicFailsWaiters(t *testing.T) {
	c := NewVerdictCache()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		c.Check(context.Background(), "k", func() (*mc.Result, error) {
			close(started)
			<-release
			panic("hostile checker")
		})
	}()
	<-started
	waitErr := make(chan error, 1)
	go func() {
		_, _, err := c.Check(context.Background(), "k", proved)
		waitErr <- err
	}()
	// The waiter may attach to the in-flight entry or, if it arrives after
	// the eviction, become a fresh leader — either way it must not hang and
	// must not observe the panic.
	close(release)
	if v := <-leaderPanicked; v == nil {
		t.Fatal("leader's panic was swallowed instead of re-raised")
	}
	if err := <-waitErr; err != nil && !errors.Is(err, ErrCheckPanicked) {
		t.Fatalf("waiter err = %v", err)
	}
	if c.Len() != 0 {
		// A fresh-leader waiter stores a proved verdict; an attached waiter
		// leaves the cache empty. Only the panicked entry must be gone.
		st := c.Stats()
		if st.Stored == 0 {
			t.Fatal("panicked entry retained")
		}
	}
}

func TestCacheLRUBound(t *testing.T) {
	const capacity = 8
	c := NewVerdictCacheSized(1, capacity)
	if c.Capacity() != capacity {
		t.Fatalf("Capacity() = %d, want %d", c.Capacity(), capacity)
	}
	ctx := context.Background()
	key := func(i int) string { return fmt.Sprintf("k%03d", i) }
	for i := 0; i < 3*capacity; i++ {
		if _, _, err := c.Check(ctx, key(i), proved); err != nil {
			t.Fatal(err)
		}
		if got := c.Len(); got > capacity {
			t.Fatalf("after %d stores: Len() = %d exceeds capacity %d", i+1, got, capacity)
		}
	}
	st := c.Stats()
	if st.Stored != 3*capacity {
		t.Fatalf("Stored = %d, want %d", st.Stored, 3*capacity)
	}
	if st.Evicted != 2*capacity {
		t.Fatalf("Evicted = %d, want %d", st.Evicted, 2*capacity)
	}
	// The survivors are exactly the most recent `capacity` keys.
	for i := 2 * capacity; i < 3*capacity; i++ {
		if _, o, _ := c.Check(ctx, key(i), proved); o != Hit {
			t.Fatalf("recent key %d: outcome %v, want Hit", i, o)
		}
	}
	if _, o, _ := c.Check(ctx, key(0), proved); o != Computed {
		t.Fatalf("cold key 0: outcome %v, want Computed (evicted)", o)
	}
}

func TestCacheLRUTouchOnHit(t *testing.T) {
	// A hit refreshes recency: the entry hit most recently must outlive
	// colder entries stored after it.
	const capacity = 4
	c := NewVerdictCacheSized(1, capacity)
	ctx := context.Background()
	key := func(i int) string { return fmt.Sprintf("k%03d", i) }
	for i := 0; i < capacity; i++ {
		c.Check(ctx, key(i), proved)
	}
	// Touch k0, then push two new keys: k1 and k2 must fall out, k0 stays.
	if _, o, _ := c.Check(ctx, key(0), proved); o != Hit {
		t.Fatalf("touch: outcome %v, want Hit", o)
	}
	c.Check(ctx, key(capacity), proved)
	c.Check(ctx, key(capacity+1), proved)
	if _, o, _ := c.Check(ctx, key(0), proved); o != Hit {
		t.Fatalf("touched key evicted: outcome %v, want Hit", o)
	}
	if _, o, _ := c.Check(ctx, key(1), proved); o != Computed {
		t.Fatalf("cold key survived past capacity: outcome %v, want Computed", o)
	}
}

func TestCacheInFlightEntriesAreNotEvicted(t *testing.T) {
	// An in-flight leader's entry must survive any amount of store pressure:
	// waiters hold its done channel.
	c := NewVerdictCacheSized(1, 2)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Check(context.Background(), "inflight", func() (*mc.Result, error) {
			close(started)
			<-release
			return proved()
		})
	}()
	<-started
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		c.Check(ctx, fmt.Sprintf("filler%d", i), proved)
	}
	got := make(chan Outcome, 1)
	go func() {
		_, o, _ := c.Check(ctx, "inflight", proved)
		got <- o
	}()
	close(release)
	if o := <-got; o != Shared && o != Hit {
		t.Fatalf("waiter outcome %v, want Shared or Hit", o)
	}
}

func TestCacheSharded(t *testing.T) {
	c := NewVerdictCacheSized(7, 1024) // rounds up to 8 shards
	if c.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", c.Shards())
	}
	ctx := context.Background()
	const n = 500
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, _, err := c.Check(ctx, fmt.Sprintf("key-%d", i), proved); err != nil {
					t.Errorf("check: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != n {
		t.Fatalf("Misses = %d, want %d (single flight across shards)", st.Misses, n)
	}
	if got := st.Lookups(); got != 4*n {
		t.Fatalf("Lookups = %d, want %d", got, 4*n)
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
}

func TestFingerprints(t *testing.T) {
	src := `module m(input a, output y); assign y = ~a; endmodule`
	d1, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if DesignFingerprint(d1) != DesignFingerprint(d2) {
		t.Fatal("identical designs fingerprint differently")
	}
	d3, err := rtl.ElaborateSource(`module m(input a, output y); assign y = a; endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if DesignFingerprint(d1) == DesignFingerprint(d3) {
		t.Fatal("different designs share a fingerprint")
	}
	o1, o2 := mc.DefaultOptions(), mc.DefaultOptions()
	if OptionsFingerprint(o1) != OptionsFingerprint(o2) {
		t.Fatal("identical options fingerprint differently")
	}
	o2.MaxBMCDepth++
	if OptionsFingerprint(o1) == OptionsFingerprint(o2) {
		t.Fatal("different options share a fingerprint")
	}
	// Portfolio is excluded: the racing backend produces byte-identical
	// results, so cached verdicts and pooled engines are interchangeable
	// across portfolio widths.
	o3 := mc.DefaultOptions()
	o3.Portfolio = 4
	if OptionsFingerprint(o1) != OptionsFingerprint(o3) {
		t.Fatal("Portfolio leaked into the options fingerprint")
	}
}
