package rtl

import (
	"fmt"
	"math/bits"
)

// Env supplies current signal values during expression evaluation.
type Env interface {
	Get(sig *Signal) uint64
}

// MapEnv is a simple map-backed environment.
type MapEnv map[*Signal]uint64

// Get returns the value of sig (zero when absent).
func (m MapEnv) Get(sig *Signal) uint64 { return m[sig] }

// Eval computes the value of e under env. Results are masked to the
// expression width. Shift amounts >= 64 yield zero.
func Eval(e Expr, env Env) uint64 {
	switch x := e.(type) {
	case *Const:
		return x.Val

	case *Ref:
		return env.Get(x.Sig) & Mask(x.Sig.Width)

	case *Unary:
		v := Eval(x.X, env)
		switch x.Op {
		case OpNot:
			return ^v & Mask(x.W)
		case OpLogNot:
			if v == 0 {
				return 1
			}
			return 0
		case OpNeg:
			return (-v) & Mask(x.W)
		case OpRedAnd:
			if v == Mask(x.X.Width()) {
				return 1
			}
			return 0
		case OpRedOr:
			if v != 0 {
				return 1
			}
			return 0
		case OpRedXor:
			return uint64(bits.OnesCount64(v) & 1)
		}
		panic(fmt.Sprintf("rtl.Eval: bad unary op %d", x.Op))

	case *Binary:
		a := Eval(x.A, env)
		b := Eval(x.B, env)
		switch x.Op {
		case OpAnd:
			return (a & b) & Mask(x.W)
		case OpOr:
			return (a | b) & Mask(x.W)
		case OpXor:
			return (a ^ b) & Mask(x.W)
		case OpXnor:
			return (^(a ^ b)) & Mask(x.W)
		case OpLogAnd:
			return b2u(a != 0 && b != 0)
		case OpLogOr:
			return b2u(a != 0 || b != 0)
		case OpAdd:
			return (a + b) & Mask(x.W)
		case OpSub:
			return (a - b) & Mask(x.W)
		case OpMul:
			return (a * b) & Mask(x.W)
		case OpEq:
			return b2u(a == b)
		case OpNe:
			return b2u(a != b)
		case OpLt:
			return b2u(a < b)
		case OpLe:
			return b2u(a <= b)
		case OpGt:
			return b2u(a > b)
		case OpGe:
			return b2u(a >= b)
		case OpShl:
			if b >= 64 {
				return 0
			}
			return (a << b) & Mask(x.W)
		case OpShr:
			if b >= 64 {
				return 0
			}
			return (a >> b) & Mask(x.W)
		}
		panic(fmt.Sprintf("rtl.Eval: bad binary op %d", x.Op))

	case *Mux:
		if Eval(x.Cond, env)&1 == 1 {
			return Eval(x.T, env) & Mask(x.W)
		}
		return Eval(x.F, env) & Mask(x.W)

	case *Select:
		return (Eval(x.X, env) >> uint(x.Bit)) & 1

	case *Slice:
		return (Eval(x.X, env) >> uint(x.LSB)) & Mask(x.MSB-x.LSB+1)

	case *Concat:
		var v uint64
		for _, p := range x.Parts {
			v = (v << uint(p.Width())) | Eval(p, env)
		}
		return v & Mask(x.W)

	default:
		panic(fmt.Sprintf("rtl.Eval: unknown expression %T", e))
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

