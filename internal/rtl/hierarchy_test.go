package rtl

import (
	"strings"
	"testing"
)

const hierSrc = `
module top(input clk, rst, input a, b, output y, output [1:0] cnt);
  wire t;
  inv u_inv (.a(a), .y(t));
  counter u_cnt (.clk(clk), .rst(rst), .en(t & b), .q(cnt));
  assign y = t ^ b;
endmodule

module inv(input a, output y);
  assign y = ~a;
endmodule

module counter(input clk, rst, en, output reg [1:0] q);
  always @(posedge clk)
    if (rst) q <= 0;
    else if (en) q <= q + 1;
endmodule
`

func TestElaborateHierarchy(t *testing.T) {
	d, err := ElaborateHierarchySource(hierSrc, "top")
	if err != nil {
		t.Fatal(err)
	}
	if d.Clock != "clk" {
		t.Errorf("clock %q", d.Clock)
	}
	cnt := d.MustSignal("cnt")
	if !cnt.IsState || cnt.Width != 2 {
		t.Fatalf("cnt: %+v", cnt)
	}
	// Semantics through the hierarchy: en = ~a & b; counter increments.
	env := MapEnv{
		d.MustSignal("rst"): 0,
		d.MustSignal("a"):   0,
		d.MustSignal("b"):   1,
		cnt:                 2,
	}
	// Settle comb signals first (t, en wire, y).
	order, err := d.CombOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range order {
		env[s] = Eval(d.Comb[s], env)
	}
	if v := Eval(d.Next[cnt], env); v != 3 {
		t.Errorf("next cnt = %d want 3 (en = ~a & b = 1)", v)
	}
	env[d.MustSignal("a")] = 1
	for _, s := range order {
		env[s] = Eval(d.Comb[s], env)
	}
	if v := Eval(d.Next[cnt], env); v != 2 {
		t.Errorf("next cnt = %d want 2 (hold, en=0)", v)
	}
	// y = ~a ^ b.
	if v := Eval(d.Comb[d.MustSignal("y")], env); v != 1 {
		t.Errorf("y = %d want 1 (~1 ^ 1 = 0 ^ 1)", v)
	}
}

func TestElaborateSourceImplicitTop(t *testing.T) {
	// First module is the top when several are present.
	d, err := ElaborateSource(hierSrc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "top" {
		t.Errorf("implicit top %q", d.Name)
	}
}

func TestElaborateHierarchyBadTop(t *testing.T) {
	if _, err := ElaborateHierarchySource(hierSrc, "nosuch"); err == nil ||
		!strings.Contains(err.Error(), "no module") {
		t.Fatalf("want no-module error, got %v", err)
	}
}

func TestHierarchySharedInstanceNames(t *testing.T) {
	// Two instances of the same child must not collide.
	src := `
module top(input a, b, output x, y);
  inv i0 (.a(a), .y(x));
  inv i1 (.a(b), .y(y));
endmodule
module inv(input a, output y);
  wire mid;
  assign mid = ~a;
  assign y = mid;
endmodule`
	d, err := ElaborateHierarchySource(src, "top")
	if err != nil {
		t.Fatal(err)
	}
	env := MapEnv{d.MustSignal("a"): 1, d.MustSignal("b"): 0}
	order, _ := d.CombOrder()
	for _, s := range order {
		env[s] = Eval(d.Comb[s], env)
	}
	if env[d.MustSignal("x")] != 0 || env[d.MustSignal("y")] != 1 {
		t.Errorf("x=%d y=%d want 0,1", env[d.MustSignal("x")], env[d.MustSignal("y")])
	}
}
