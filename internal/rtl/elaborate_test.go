package rtl

import (
	"strings"
	"testing"
)

const arbiter2Src = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;

  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0;
      gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule
`

func elaborate(t *testing.T, src string) *Design {
	t.Helper()
	d, err := ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestElaborateArbiter(t *testing.T) {
	d := elaborate(t, arbiter2Src)
	if d.Clock != "clk" {
		t.Errorf("clock %q", d.Clock)
	}
	ins := d.Inputs()
	if len(ins) != 3 { // rst, req0, req1
		t.Fatalf("inputs %d: %v", len(ins), ins)
	}
	regs := d.Registers()
	if len(regs) != 2 {
		t.Fatalf("registers %d", len(regs))
	}
	gnt0 := d.MustSignal("gnt0")
	if !gnt0.IsState || gnt0.Kind != SigOutput {
		t.Errorf("gnt0: %+v", gnt0)
	}
	next := d.Next[gnt0]
	if next == nil {
		t.Fatal("no next-state for gnt0")
	}
	// Check reset semantics: rst=1 forces next gnt0 = 0 regardless of rest.
	env := MapEnv{
		d.MustSignal("rst"):  1,
		d.MustSignal("req0"): 1,
		d.MustSignal("req1"): 1,
		gnt0:                 1,
	}
	if v := Eval(next, env); v != 0 {
		t.Errorf("reset: next gnt0 = %d, want 0", v)
	}
	// rst=0, req0=1, gnt0=0 -> next gnt0 = 1.
	env[d.MustSignal("rst")] = 0
	env[gnt0] = 0
	env[d.MustSignal("req1")] = 0
	if v := Eval(next, env); v != 1 {
		t.Errorf("grant: next gnt0 = %d, want 1", v)
	}
	// gnt0=1, req0=1, req1=1 -> round robin passes to port 1: next gnt0 = 0.
	env[gnt0] = 1
	env[d.MustSignal("req1")] = 1
	if v := Eval(next, env); v != 0 {
		t.Errorf("round robin: next gnt0 = %d, want 0", v)
	}
}

func TestElaborateCombAlways(t *testing.T) {
	src := `
module m(input [1:0] sel, input a, b, c, d, output reg y);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      2'd2: y = c;
      default: y = d;
    endcase
  end
endmodule`
	d := elaborate(t, src)
	y := d.MustSignal("y")
	if y.IsState {
		t.Fatal("comb-assigned reg misclassified as state")
	}
	e := d.Comb[y]
	if e == nil {
		t.Fatal("no comb expression for y")
	}
	vals := map[string]uint64{"a": 0, "b": 1, "c": 0, "d": 1}
	env := MapEnv{}
	for n, v := range vals {
		env[d.MustSignal(n)] = v
	}
	for sel, want := range map[uint64]uint64{0: 0, 1: 1, 2: 0, 3: 1} {
		env[d.MustSignal("sel")] = sel
		if got := Eval(e, env); got != want {
			t.Errorf("sel=%d: y=%d want %d", sel, got, want)
		}
	}
}

func TestElaborateLatchDetection(t *testing.T) {
	src := `
module m(input s, a, output reg y);
  always @(*) if (s) y = a;
endmodule`
	if _, err := ElaborateSource(src); err == nil || !strings.Contains(err.Error(), "latch") {
		t.Fatalf("want latch error, got %v", err)
	}
}

func TestElaborateDefaultBeforeIf(t *testing.T) {
	src := `
module m(input s, a, output reg y);
  always @(*) begin
    y = 0;
    if (s) y = a;
  end
endmodule`
	d := elaborate(t, src)
	env := MapEnv{d.MustSignal("s"): 1, d.MustSignal("a"): 1}
	if v := Eval(d.Comb[d.MustSignal("y")], env); v != 1 {
		t.Errorf("y=%d want 1", v)
	}
	env[d.MustSignal("s")] = 0
	if v := Eval(d.Comb[d.MustSignal("y")], env); v != 0 {
		t.Errorf("y=%d want 0", v)
	}
}

func TestElaborateBlockingReadThrough(t *testing.T) {
	src := `
module m(input a, b, output reg y);
  reg t;
  always @(*) begin
    t = a & b;
    y = ~t;
  end
endmodule`
	d := elaborate(t, src)
	env := MapEnv{d.MustSignal("a"): 1, d.MustSignal("b"): 1}
	if v := Eval(d.Comb[d.MustSignal("y")], env); v != 0 {
		t.Errorf("y=%d want 0 (t=1)", v)
	}
}

func TestElaborateNonblockingOldValue(t *testing.T) {
	// Classic swap: with NBAs both registers read old values.
	src := `
module m(input clk, output reg p, q);
  always @(posedge clk) begin
    p <= q;
    q <= p;
  end
endmodule`
	d := elaborate(t, src)
	p, q := d.MustSignal("p"), d.MustSignal("q")
	env := MapEnv{p: 1, q: 0}
	if Eval(d.Next[p], env) != 0 || Eval(d.Next[q], env) != 1 {
		t.Error("NBA swap broken: next values should exchange")
	}
}

func TestElaborateRegisterHold(t *testing.T) {
	src := `
module m(input clk, en, d, output reg q);
  always @(posedge clk) if (en) q <= d;
endmodule`
	d := elaborate(t, src)
	q := d.MustSignal("q")
	env := MapEnv{d.MustSignal("en"): 0, d.MustSignal("d"): 1, q: 1}
	if v := Eval(d.Next[q], env); v != 1 {
		t.Errorf("hold: next q = %d, want 1 (unchanged)", v)
	}
	env[q] = 0
	if v := Eval(d.Next[q], env); v != 0 {
		t.Errorf("hold: next q = %d, want 0 (unchanged)", v)
	}
}

func TestElaboratePartialAssigns(t *testing.T) {
	src := `
module m(input [3:0] a, output [3:0] y);
  assign y[1:0] = a[3:2];
  assign y[3:2] = a[1:0];
endmodule`
	d := elaborate(t, src)
	env := MapEnv{d.MustSignal("a"): 0b1101}
	if v := Eval(d.Comb[d.MustSignal("y")], env); v != 0b0111 {
		t.Errorf("y=%04b want 0111", v)
	}
}

func TestElaboratePartialAssignGapRejected(t *testing.T) {
	src := `
module m(input [3:0] a, output [3:0] y);
  assign y[3:2] = a[1:0];
endmodule`
	if _, err := ElaborateSource(src); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("want undriven-bits error, got %v", err)
	}
}

func TestElaborateBitSelectLHSInSeqBlock(t *testing.T) {
	src := `
module m(input clk, input d, input [1:0] i, output reg [3:0] q);
  always @(posedge clk) q[i] <= d;
endmodule`
	d := elaborate(t, src)
	q := d.MustSignal("q")
	env := MapEnv{q: 0b1010, d.MustSignal("i"): 2, d.MustSignal("d"): 1}
	if v := Eval(d.Next[q], env); v != 0b1110 {
		t.Errorf("dynamic bit write: next q = %04b, want 1110", v)
	}
	env[d.MustSignal("d")] = 0
	env[d.MustSignal("i")] = 1
	if v := Eval(d.Next[q], env); v != 0b1000 {
		t.Errorf("dynamic bit clear: next q = %04b, want 1000", v)
	}
}

func TestElaborateMultipleDriversRejected(t *testing.T) {
	src := `
module m(input a, b, output y);
  assign y = a;
  assign y = b;
endmodule`
	if _, err := ElaborateSource(src); err == nil ||
		!(strings.Contains(err.Error(), "multiple") || strings.Contains(err.Error(), "overlapping")) {
		t.Fatalf("want multi-driver error, got %v", err)
	}
}

func TestElaborateSeqAndCombDriverRejected(t *testing.T) {
	src := `
module m(input clk, a, output reg y);
  always @(posedge clk) y <= a;
  always @(*) y = ~a;
endmodule`
	if _, err := ElaborateSource(src); err == nil {
		t.Fatal("want mixed-driver error")
	}
}

func TestElaborateClockAsDataRejected(t *testing.T) {
	src := `
module m(input clk, a, output reg y);
  always @(posedge clk) y <= a & clk;
endmodule`
	if _, err := ElaborateSource(src); err == nil || !strings.Contains(err.Error(), "clock") {
		t.Fatal("want clock-as-data error")
	}
}

func TestElaborateCombCycleRejected(t *testing.T) {
	src := `
module m(input a, output y);
  wire t;
  assign t = y & a;
  assign y = t | a;
endmodule`
	_, err := ElaborateSource(src)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestElaborateUndrivenReadRejected(t *testing.T) {
	src := `
module m(input a, output y);
  wire ghost;
  assign y = a & ghost;
endmodule`
	if _, err := ElaborateSource(src); err == nil || !strings.Contains(err.Error(), "never driven") {
		t.Fatalf("want undriven error, got %v", err)
	}
}

func TestElaborateArithmeticWidths(t *testing.T) {
	src := `
module m(input [3:0] a, b, output [4:0] s, output lt, output [3:0] sh);
  assign s = a + b;
  assign lt = a < b;
  assign sh = a << 1;
endmodule`
	d := elaborate(t, src)
	env := MapEnv{d.MustSignal("a"): 9, d.MustSignal("b"): 12}
	// a+b computed at width 4 then zero-extended to 5: (9+12)&15 = 5.
	if v := Eval(d.Comb[d.MustSignal("s")], env); v != 5 {
		t.Errorf("s=%d want 5 (4-bit wrap then extend)", v)
	}
	if v := Eval(d.Comb[d.MustSignal("lt")], env); v != 1 {
		t.Errorf("lt=%d want 1", v)
	}
	if v := Eval(d.Comb[d.MustSignal("sh")], env); v != 2 {
		t.Errorf("sh=%d want 2 (9<<1 masked to 4 bits)", v)
	}
}

func TestElaborateReductionOps(t *testing.T) {
	src := `
module m(input [3:0] a, output ra, ro, rx, nra);
  assign ra = &a;
  assign ro = |a;
  assign rx = ^a;
  assign nra = ~&a;
endmodule`
	d := elaborate(t, src)
	env := MapEnv{d.MustSignal("a"): 0b1111}
	checks := map[string]uint64{"ra": 1, "ro": 1, "rx": 0, "nra": 0}
	for name, want := range checks {
		if v := Eval(d.Comb[d.MustSignal(name)], env); v != want {
			t.Errorf("a=1111: %s=%d want %d", name, v, want)
		}
	}
	env[d.MustSignal("a")] = 0b0110
	checks = map[string]uint64{"ra": 0, "ro": 1, "rx": 0, "nra": 1}
	for name, want := range checks {
		if v := Eval(d.Comb[d.MustSignal(name)], env); v != want {
			t.Errorf("a=0110: %s=%d want %d", name, v, want)
		}
	}
}

func TestElaborateDynamicIndexRead(t *testing.T) {
	src := `
module m(input [7:0] a, input [2:0] i, output y);
  assign y = a[i];
endmodule`
	d := elaborate(t, src)
	env := MapEnv{d.MustSignal("a"): 0b10010110}
	for i := uint64(0); i < 8; i++ {
		env[d.MustSignal("i")] = i
		want := (uint64(0b10010110) >> i) & 1
		if v := Eval(d.Comb[d.MustSignal("y")], env); v != want {
			t.Errorf("a[%d]=%d want %d", i, v, want)
		}
	}
}

func TestElaborateConcatRepl(t *testing.T) {
	src := `
module m(input [1:0] a, output [5:0] y);
  assign y = {a, {2{a[0]}}, 2'b01};
endmodule`
	d := elaborate(t, src)
	env := MapEnv{d.MustSignal("a"): 0b10}
	// {10, 00, 01} = 100001
	if v := Eval(d.Comb[d.MustSignal("y")], env); v != 0b100001 {
		t.Errorf("y=%06b want 100001", v)
	}
}

func TestCoveragePointsRecorded(t *testing.T) {
	d := elaborate(t, arbiter2Src)
	ci := d.Cover
	if len(ci.ByKind(PointLine)) == 0 {
		t.Error("no line points")
	}
	br := ci.ByKind(PointBranch)
	if len(br) != 2 { // if(rst) taken / not taken
		t.Errorf("branch points %d, want 2", len(br))
	}
	if len(ci.ByKind(PointCondition)) == 0 {
		t.Error("no condition points")
	}
	if len(ci.ByKind(PointExpression)) == 0 {
		t.Error("no expression points")
	}
	if len(ci.ToggleSignals) != 6-1 { // all but clk
		t.Errorf("toggle signals %d, want 5", len(ci.ToggleSignals))
	}
}

func TestFSMDetection(t *testing.T) {
	src := `
module fsm(input clk, rst, go, output reg busy);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else case (state)
      2'd0: if (go) state <= 2'd1;
      2'd1: state <= 2'd2;
      2'd2: state <= 2'd0;
      default: state <= 2'd0;
    endcase
  end
  always @(*) busy = (state != 2'd0);
endmodule`
	d := elaborate(t, src)
	if len(d.Cover.FSMs) != 1 {
		t.Fatalf("FSMs detected: %d", len(d.Cover.FSMs))
	}
	fsm := d.Cover.FSMs[0]
	if fsm.Reg.Name != "state" {
		t.Errorf("FSM reg %s", fsm.Reg.Name)
	}
	if len(fsm.States) != 3 { // 0, 1, 2
		t.Errorf("states %v", fsm.States)
	}
}

func TestBranchPathConditions(t *testing.T) {
	// Nested ifs: inner branch condition must include outer path.
	src := `
module m(input a, b, output reg y);
  always @(*) begin
    y = 0;
    if (a) begin
      if (b) y = 1;
    end
  end
endmodule`
	d := elaborate(t, src)
	var inner *Point
	for i, p := range d.Cover.Points {
		if p.Kind == PointBranch && strings.Contains(p.Desc, "if (b) taken") {
			inner = &d.Cover.Points[i]
		}
	}
	if inner == nil {
		t.Fatal("inner branch point missing")
	}
	env := MapEnv{d.MustSignal("a"): 0, d.MustSignal("b"): 1}
	if Eval(inner.Expr, env) != 0 {
		t.Error("inner branch should be gated by outer path condition")
	}
	env[d.MustSignal("a")] = 1
	if Eval(inner.Expr, env) != 1 {
		t.Error("inner branch should fire when both conditions hold")
	}
}

func TestSupportAndWalk(t *testing.T) {
	d := elaborate(t, arbiter2Src)
	gnt0 := d.MustSignal("gnt0")
	sup := Support(d.Next[gnt0], nil)
	names := map[string]bool{}
	for s := range sup {
		names[s.Name] = true
	}
	for _, want := range []string{"rst", "req0", "req1", "gnt0"} {
		if !names[want] {
			t.Errorf("support missing %s: %v", want, names)
		}
	}
	if names["clk"] {
		t.Error("clock must not appear in support")
	}
}

func TestExprStringRendering(t *testing.T) {
	d := elaborate(t, arbiter2Src)
	s := String(d.Next[d.MustSignal("gnt0")])
	for _, sub := range []string{"rst", "req0", "?"} {
		if !strings.Contains(s, sub) {
			t.Errorf("expr string %q missing %q", s, sub)
		}
	}
}

func TestValidateUndrivenOutput(t *testing.T) {
	src := `module m(input a, output y, output z); assign y = a; endmodule`
	if _, err := ElaborateSource(src); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("want undriven output error, got %v", err)
	}
}

func TestCombOrderDeterministic(t *testing.T) {
	src := `
module m(input a, output y);
  wire t1, t2, t3;
  assign t1 = ~a;
  assign t2 = t1 & a;
  assign t3 = t2 | t1;
  assign y = t3 ^ a;
endmodule`
	d := elaborate(t, src)
	o1, err := d.CombOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, s := range o1 {
		pos[s.Name] = i
	}
	if !(pos["t1"] < pos["t2"] && pos["t2"] < pos["t3"] && pos["t3"] < pos["y"]) {
		t.Errorf("bad topological order: %v", pos)
	}
}
