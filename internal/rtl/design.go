package rtl

import (
	"fmt"
	"sort"
	"sync"
)

// SigKind classifies signals in a Design.
type SigKind int

// Signal kinds.
const (
	SigInput SigKind = iota
	SigOutput
	SigWire // internal combinational net
	SigReg  // sequential state element
)

func (k SigKind) String() string {
	switch k {
	case SigInput:
		return "input"
	case SigOutput:
		return "output"
	case SigWire:
		return "wire"
	default:
		return "reg"
	}
}

// Signal is an elaborated design signal.
type Signal struct {
	Name  string
	Width int
	Kind  SigKind
	// IsState marks sequential registers (may coincide with SigOutput for
	// output regs).
	IsState bool
	// Line is the declaring source line.
	Line int
}

func (s *Signal) String() string { return fmt.Sprintf("%s %s[%d]", s.Kind, s.Name, s.Width) }

// Design is an elaborated RTL module: pure dataflow plus registers.
type Design struct {
	Name string
	// Signals in declaration order.
	Signals []*Signal
	byName  map[string]*Signal

	// Clock is the name of the (single) clock signal, or "" for a purely
	// combinational design. The clock never appears in any expression.
	Clock string

	// Comb maps each non-state signal that is driven by logic to its
	// expression. Inputs and the clock have no entry.
	Comb map[*Signal]Expr

	// Next maps each state register to its next-state expression, evaluated
	// with current-cycle signal values and latched on the clock edge.
	Next map[*Signal]Expr

	// Cover holds the coverage instrumentation points recorded during
	// elaboration.
	Cover *CoverageInfo

	// combOrder is the lazily computed topological order, built once under
	// combMu so concurrent simulators/steppers over a shared Design can race
	// to first use safely. The published slice is immutable.
	combMu    sync.Mutex
	combOrder []*Signal
}

// Signal returns the signal named name, or nil.
func (d *Design) Signal(name string) *Signal { return d.byName[name] }

// MustSignal returns the named signal or panics; for tests and internal use
// after validation.
func (d *Design) MustSignal(name string) *Signal {
	s := d.byName[name]
	if s == nil {
		panic(fmt.Sprintf("rtl: design %s: no signal %q", d.Name, name))
	}
	return s
}

// Inputs returns the data inputs (excluding the clock) in declaration order.
func (d *Design) Inputs() []*Signal {
	var out []*Signal
	for _, s := range d.Signals {
		if s.Kind == SigInput && s.Name != d.Clock {
			out = append(out, s)
		}
	}
	return out
}

// Outputs returns the output signals in declaration order.
func (d *Design) Outputs() []*Signal {
	var out []*Signal
	for _, s := range d.Signals {
		if s.Kind == SigOutput {
			out = append(out, s)
		}
	}
	return out
}

// Registers returns the state elements in declaration order.
func (d *Design) Registers() []*Signal {
	var out []*Signal
	for _, s := range d.Signals {
		if s.IsState {
			out = append(out, s)
		}
	}
	return out
}

// StateBits returns the total number of state bits.
func (d *Design) StateBits() int {
	n := 0
	for _, s := range d.Registers() {
		n += s.Width
	}
	return n
}

// InputBits returns the total number of data input bits.
func (d *Design) InputBits() int {
	n := 0
	for _, s := range d.Inputs() {
		n += s.Width
	}
	return n
}

// CombOrder returns the combinational signals in dependency order: every
// signal appears after all non-state signals its expression reads. An error
// is returned for combinational cycles.
func (d *Design) CombOrder() ([]*Signal, error) {
	d.combMu.Lock()
	defer d.combMu.Unlock()
	if d.combOrder != nil {
		return d.combOrder, nil
	}
	// Kahn's algorithm over comb-driven signals.
	indeg := map[*Signal]int{}
	deps := map[*Signal][]*Signal{} // signal -> signals that read it
	for s, e := range d.Comb {
		if _, ok := indeg[s]; !ok {
			indeg[s] = 0
		}
		for dep := range Support(e, nil) {
			if _, isComb := d.Comb[dep]; isComb && !dep.IsState {
				deps[dep] = append(deps[dep], s)
				indeg[s]++
			}
		}
	}
	var ready []*Signal
	for s, n := range indeg {
		if n == 0 {
			ready = append(ready, s)
		}
	}
	// Deterministic order for reproducibility.
	sort.Slice(ready, func(i, j int) bool { return ready[i].Name < ready[j].Name })
	var order []*Signal
	for len(ready) > 0 {
		s := ready[0]
		ready = ready[1:]
		order = append(order, s)
		var unlocked []*Signal
		for _, t := range deps[s] {
			indeg[t]--
			if indeg[t] == 0 {
				unlocked = append(unlocked, t)
			}
		}
		sort.Slice(unlocked, func(i, j int) bool { return unlocked[i].Name < unlocked[j].Name })
		ready = append(ready, unlocked...)
	}
	if len(order) != len(indeg) {
		var cyc []string
		for s, n := range indeg {
			if n > 0 {
				cyc = append(cyc, s.Name)
			}
		}
		sort.Strings(cyc)
		return nil, fmt.Errorf("design %s: combinational cycle involving %v", d.Name, cyc)
	}
	d.combOrder = order
	return order, nil
}

// Validate performs structural checks: every output is driven, every register
// has a next-state function, no expression reads the clock, and the
// combinational logic is acyclic.
func (d *Design) Validate() error {
	for _, s := range d.Signals {
		switch {
		case s.Kind == SigOutput && !s.IsState:
			if _, ok := d.Comb[s]; !ok {
				return fmt.Errorf("design %s: output %s is undriven", d.Name, s.Name)
			}
		case s.IsState:
			if _, ok := d.Next[s]; !ok {
				return fmt.Errorf("design %s: register %s has no next-state function", d.Name, s.Name)
			}
		}
	}
	check := func(e Expr) error {
		for sig := range Support(e, nil) {
			if sig.Name == d.Clock && d.Clock != "" {
				return fmt.Errorf("design %s: clock %s used as data", d.Name, d.Clock)
			}
		}
		return nil
	}
	for _, e := range d.Comb {
		if err := check(e); err != nil {
			return err
		}
	}
	for _, e := range d.Next {
		if err := check(e); err != nil {
			return err
		}
	}
	_, err := d.CombOrder()
	return err
}

// Rebind reconstructs the design's internal indices after its expression
// maps were rebuilt externally (e.g. by fault injection) and revalidates it.
func Rebind(d *Design) error {
	d.byName = map[string]*Signal{}
	for _, s := range d.Signals {
		d.byName[s.Name] = s
	}
	d.combOrder = nil
	return d.Validate()
}

// addSignal registers a new signal; it reports a conflict for duplicates.
func (d *Design) addSignal(s *Signal) error {
	if d.byName == nil {
		d.byName = map[string]*Signal{}
	}
	if _, dup := d.byName[s.Name]; dup {
		return fmt.Errorf("design %s: duplicate signal %q", d.Name, s.Name)
	}
	d.Signals = append(d.Signals, s)
	d.byName[s.Name] = s
	return nil
}
