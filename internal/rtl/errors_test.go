package rtl

import (
	"strings"
	"testing"
)

func expectErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := ElaborateSource(src)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("want error containing %q, got %v", want, err)
	}
}

func TestElaborateRejections(t *testing.T) {
	expectErr(t, `module m(inout a, output y); assign y = a; endmodule`, "inout")
	expectErr(t, `module m(input [64:0] a, output y); assign y = a[0]; endmodule`, "wider than 64")
	expectErr(t, `
module m(input c1, c2, d, output reg q1, q2);
  always @(posedge c1) q1 <= d;
  always @(posedge c2) q2 <= d;
endmodule`, "second clock")
	expectErr(t, `
module m(input clk, a, output reg y);
  always @(posedge clk or posedge a) y <= a;
endmodule`, "multiple edge signals")
	expectErr(t, `
module m(input clk, a, output y);
  reg a;
  always @(posedge clk) a <= 1;
  assign y = a;
endmodule`, "") // duplicate decl of input a
	expectErr(t, `module m(input a, output y); assign y = a[3]; endmodule`, "out of bounds")
	expectErr(t, `module m(input [3:0] a, output [1:0] y); assign y = a[0:1]; endmodule`, "out of bounds")
	expectErr(t, `module m(input a, output y); assign y = {70{a}}; endmodule`, "wider than 64")
	expectErr(t, `module m(input [63:0] a, output y); assign y = {a, a} == 0; endmodule`, "wider than 64")
	expectErr(t, `module m(input a, output y); assign y = ghost; endmodule`, "undeclared")
	expectErr(t, `module m(input a, output y, z); assign y = a; endmodule`, "undriven")
	expectErr(t, `
module m(input a, b, output reg y);
  always @(*) case (a)
    1'b0: y = b;
    default: y = 0;
    default: y = 1;
  endcase
endmodule`, "multiple default")
	expectErr(t, `module m(input a, input [1:0] i, output [3:0] y);
	  assign y[i] = a;
	endmodule`, "dynamic bit-select")
	expectErr(t, `
module m(input clk, d, output reg q);
  always @(posedge clk) clk <= d;
endmodule`, "")
	expectErr(t, `
module m(input a, output reg y);
  always @(*) q = a;
endmodule`, "undeclared")
}

func TestProceduralDrivesInputRejected(t *testing.T) {
	expectErr(t, `
module m(input clk, a, output reg y);
  always @(posedge clk) begin
    y <= a;
  end
  always @(*) a = y;
endmodule`, "")
}

func TestMaskEdges(t *testing.T) {
	if Mask(64) != ^uint64(0) {
		t.Error("Mask(64)")
	}
	if Mask(1) != 1 || Mask(8) != 255 {
		t.Error("Mask small")
	}
}

func TestEvalShiftOverflow(t *testing.T) {
	d := elaborate(t, `module m(input [5:0] n, output [7:0] y, z);
	  wire [7:0] base;
	  assign base = 8'hFF;
	  assign y = base << n;
	  assign z = base >> n;
	endmodule`)
	env := MapEnv{d.MustSignal("n"): 63}
	order, _ := d.CombOrder()
	for _, s := range order {
		env[s] = Eval(d.Comb[s], env)
	}
	if env[d.MustSignal("y")] != 0 || env[d.MustSignal("z")] != 0 {
		t.Errorf("shift by 63: y=%d z=%d want 0,0", env[d.MustSignal("y")], env[d.MustSignal("z")])
	}
}

func TestStringCoversAllNodes(t *testing.T) {
	d := elaborate(t, `module m(input [3:0] a, b, input s, output [3:0] y);
	  assign y = s ? (a + b) : {2'b01, a[3:2]};
	endmodule`)
	out := String(d.Comb[d.MustSignal("y")])
	for _, want := range []string{"?", "+", "{", "["} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q: %s", want, out)
		}
	}
	// Unary and comparison rendering.
	d2 := elaborate(t, `module m2(input [3:0] a, output y);
	  assign y = !(&a) && (a >= 4'd2);
	endmodule`)
	out2 := String(d2.Comb[d2.MustSignal("y")])
	for _, want := range []string{"!", "&&", ">="} {
		if !strings.Contains(out2, want) {
			t.Errorf("String missing %q: %s", want, out2)
		}
	}
}

func TestRebind(t *testing.T) {
	d := elaborate(t, arbiter2Src)
	// Rebuild the maps as mutate does and rebind.
	nd := &Design{
		Name:    d.Name,
		Signals: d.Signals,
		Clock:   d.Clock,
		Comb:    map[*Signal]Expr{},
		Next:    map[*Signal]Expr{},
		Cover:   d.Cover,
	}
	for s, e := range d.Comb {
		nd.Comb[s] = e
	}
	for s, e := range d.Next {
		nd.Next[s] = e
	}
	if err := Rebind(nd); err != nil {
		t.Fatal(err)
	}
	if nd.Signal("gnt0") == nil {
		t.Error("rebound design lost signal index")
	}
	// Rebind must catch invalid designs too.
	delete(nd.Next, nd.MustSignal("gnt0"))
	if err := Rebind(nd); err == nil {
		t.Error("rebind of register without next-state should fail")
	}
}

func TestSignalStringer(t *testing.T) {
	d := elaborate(t, arbiter2Src)
	s := d.MustSignal("gnt0").String()
	if !strings.Contains(s, "gnt0") || !strings.Contains(s, "output") {
		t.Errorf("signal string %q", s)
	}
	kinds := []SigKind{SigInput, SigOutput, SigWire, SigReg}
	for _, k := range kinds {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestMustSignalPanics(t *testing.T) {
	d := elaborate(t, arbiter2Src)
	defer func() {
		if recover() == nil {
			t.Error("MustSignal should panic on unknown name")
		}
	}()
	d.MustSignal("nosuch")
}

func TestPointStringAndKinds(t *testing.T) {
	d := elaborate(t, arbiter2Src)
	for _, p := range d.Cover.Points {
		if p.String() == "" {
			t.Fatal("empty point description")
		}
	}
	for _, k := range []PointKind{PointLine, PointBranch, PointCondition, PointExpression, PointMinterm} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}
