// Package rtl defines the elaborated register-transfer-level intermediate
// representation used throughout the GoldMine reproduction. A verilog.Module
// is elaborated into a Design: a set of width-annotated signals, one
// combinational expression per wire, and one next-state expression per
// register. Procedural always blocks are lowered by symbolic execution into
// pure expressions, so every downstream consumer (simulator, synthesizer,
// coverage engine, model checker) works on the same simple dataflow form.
//
// Width semantics follow a simplified, deterministic subset of Verilog-2001:
// all values are unsigned; binary bitwise and arithmetic operators extend both
// operands to the larger width; comparisons, logical operators and reductions
// yield one bit; every result is truncated to its annotated width. Values are
// limited to 64 bits per signal.
package rtl

import (
	"fmt"
	"strings"
)

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNot    UnOp = iota // bitwise ~
	OpLogNot             // logical !
	OpNeg                // arithmetic -
	OpRedAnd             // &x
	OpRedOr              // |x
	OpRedXor             // ^x
)

var unOpNames = [...]string{"~", "!", "-", "&", "|", "^"}

func (op UnOp) String() string { return unOpNames[op] }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAnd BinOp = iota
	OpOr
	OpXor
	OpXnor
	OpLogAnd
	OpLogOr
	OpAdd
	OpSub
	OpMul
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpShl
	OpShr
)

var binOpNames = [...]string{
	"&", "|", "^", "~^", "&&", "||", "+", "-", "*",
	"==", "!=", "<", "<=", ">", ">=", "<<", ">>",
}

func (op BinOp) String() string { return binOpNames[op] }

// IsBoolOp reports whether the operator always yields a single bit.
func (op BinOp) IsBoolOp() bool {
	switch op {
	case OpLogAnd, OpLogOr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// Expr is an elaborated expression node. Expressions form a DAG over signals.
type Expr interface {
	// Width is the bit width of the expression's value.
	Width() int
	exprNode()
}

// Const is a literal value truncated to W bits.
type Const struct {
	Val uint64
	W   int
}

// Ref reads the current value of a whole signal.
type Ref struct {
	Sig *Signal
}

// Unary applies a unary operator; W annotates the result width.
type Unary struct {
	Op UnOp
	X  Expr
	W  int
}

// Binary applies a binary operator; W annotates the result width.
type Binary struct {
	Op   BinOp
	A, B Expr
	W    int
}

// Mux selects T when Cond's low bit is 1, else F.
type Mux struct {
	Cond, T, F Expr
	W          int
}

// Select extracts a single constant bit.
type Select struct {
	X   Expr
	Bit int
}

// Slice extracts constant bit range [MSB:LSB] (MSB >= LSB).
type Slice struct {
	X        Expr
	MSB, LSB int
}

// Concat joins parts with Parts[0] most significant (Verilog order).
type Concat struct {
	Parts []Expr
	W     int
}

func (e *Const) exprNode()  {}
func (e *Ref) exprNode()    {}
func (e *Unary) exprNode()  {}
func (e *Binary) exprNode() {}
func (e *Mux) exprNode()    {}
func (e *Select) exprNode() {}
func (e *Slice) exprNode()  {}
func (e *Concat) exprNode() {}

// Width implementations.
func (e *Const) Width() int  { return e.W }
func (e *Ref) Width() int    { return e.Sig.Width }
func (e *Unary) Width() int  { return e.W }
func (e *Binary) Width() int { return e.W }
func (e *Mux) Width() int    { return e.W }
func (e *Select) Width() int { return 1 }
func (e *Slice) Width() int  { return e.MSB - e.LSB + 1 }
func (e *Concat) Width() int { return e.W }

// Mask returns the bit mask for a width (width must be in 1..64).
func Mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// NewConst builds a width-masked constant.
func NewConst(v uint64, w int) *Const { return &Const{Val: v & Mask(w), W: w} }

// ConstBool builds a 1-bit constant from a bool.
func ConstBool(b bool) *Const {
	if b {
		return &Const{Val: 1, W: 1}
	}
	return &Const{Val: 0, W: 1}
}

// String renders the expression in Verilog-like syntax.
func String(e Expr) string {
	switch x := e.(type) {
	case *Const:
		return fmt.Sprintf("%d'd%d", x.W, x.Val)
	case *Ref:
		return x.Sig.Name
	case *Unary:
		return x.Op.String() + wrap(x.X)
	case *Binary:
		return wrap(x.A) + " " + x.Op.String() + " " + wrap(x.B)
	case *Mux:
		return wrap(x.Cond) + " ? " + wrap(x.T) + " : " + wrap(x.F)
	case *Select:
		return wrap(x.X) + fmt.Sprintf("[%d]", x.Bit)
	case *Slice:
		return wrap(x.X) + fmt.Sprintf("[%d:%d]", x.MSB, x.LSB)
	case *Concat:
		parts := make([]string, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = String(p)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func wrap(e Expr) string {
	switch e.(type) {
	case *Const, *Ref, *Select, *Slice, *Concat:
		return String(e)
	default:
		return "(" + String(e) + ")"
	}
}

// Support appends every distinct signal read by e to set (keyed by name) and
// returns the set. Pass nil to allocate.
func Support(e Expr, set map[*Signal]bool) map[*Signal]bool {
	if set == nil {
		set = map[*Signal]bool{}
	}
	walk(e, func(n Expr) {
		if r, ok := n.(*Ref); ok {
			set[r.Sig] = true
		}
	})
	return set
}

// walk visits every node in the expression tree, parents before children.
func walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Unary:
		walk(x.X, fn)
	case *Binary:
		walk(x.A, fn)
		walk(x.B, fn)
	case *Mux:
		walk(x.Cond, fn)
		walk(x.T, fn)
		walk(x.F, fn)
	case *Select:
		walk(x.X, fn)
	case *Slice:
		walk(x.X, fn)
	case *Concat:
		for _, p := range x.Parts {
			walk(p, fn)
		}
	}
}

// Walk exposes expression traversal to other packages.
func Walk(e Expr, fn func(Expr)) { walk(e, fn) }
