package rtl

import "fmt"

// PointKind classifies coverage instrumentation points.
type PointKind int

// Coverage point kinds. Line, branch and condition points carry a 1-bit
// activation expression that the simulator evaluates every cycle; expression
// points carry the monitored boolean expression itself; toggle points carry a
// signal bit.
const (
	PointLine PointKind = iota
	PointBranch
	PointCondition
	PointExpression
	// PointMinterm is one operand-value combination of a boolean operator
	// node (sum-of-products style expression coverage): covered once the
	// combination is observed. Unreachable combinations keep expression
	// coverage below 100%, as the paper notes for commercial metrics.
	PointMinterm
)

func (k PointKind) String() string {
	switch k {
	case PointLine:
		return "line"
	case PointBranch:
		return "branch"
	case PointCondition:
		return "condition"
	case PointMinterm:
		return "minterm"
	default:
		return "expression"
	}
}

// Point is a coverage instrumentation point produced during elaboration.
//
//   - PointLine: Expr is the path condition under which the statement at
//     Line executes; the point is covered once Expr evaluates to 1.
//   - PointBranch: Expr is pathCond AND armCond for one arm of an if or case;
//     covered once taken.
//   - PointCondition: Expr is one atomic condition of a decision; covered
//     once it has been observed both 0 and 1 while its decision is evaluated.
//   - PointExpression: Expr is a boolean-valued RHS (sub)expression; covered
//     once observed both 0 and 1.
type Point struct {
	Kind PointKind
	ID   int
	Line int
	// Desc is a human-readable label (source text of the guarded construct).
	Desc string
	Expr Expr
}

func (p Point) String() string {
	return fmt.Sprintf("%s#%d line %d: %s", p.Kind, p.ID, p.Line, p.Desc)
}

// FSMInfo describes a state register detected as a finite-state machine:
// a register that is both compared against constants and assigned constants.
type FSMInfo struct {
	Reg    *Signal
	States []uint64 // named state encodings observed statically
}

// CoverageInfo aggregates all instrumentation recorded for a design.
type CoverageInfo struct {
	Points []Point
	// ToggleSignals lists the signals subject to toggle coverage (all data
	// signals: inputs, wires, regs, outputs).
	ToggleSignals []*Signal
	FSMs          []FSMInfo
}

// add appends a point, assigning its ID.
func (ci *CoverageInfo) add(kind PointKind, line int, desc string, e Expr) {
	ci.Points = append(ci.Points, Point{
		Kind: kind, ID: len(ci.Points), Line: line, Desc: desc, Expr: e,
	})
}

// ByKind returns the points of one kind.
func (ci *CoverageInfo) ByKind(kind PointKind) []Point {
	var out []Point
	for _, p := range ci.Points {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}
