package rtl

import (
	"fmt"
	"math/bits"
	"sort"

	"goldmine/internal/verilog"
)

// Elaborate lowers a parsed Verilog module into a Design. Procedural always
// blocks are symbolically executed into per-signal expressions; continuous
// assignments (including partial bit/part-select drives) are merged; coverage
// instrumentation points are recorded along the way.
func Elaborate(m *verilog.Module) (*Design, error) {
	el := &elaborator{
		m: m,
		d: &Design{
			Name:  m.Name,
			Comb:  map[*Signal]Expr{},
			Next:  map[*Signal]Expr{},
			Cover: &CoverageInfo{},
		},
		drivers: map[*Signal]string{},
	}
	if err := el.run(); err != nil {
		return nil, err
	}
	if err := el.d.Validate(); err != nil {
		return nil, err
	}
	return el.d, nil
}

// ElaborateSource parses and elaborates a single-module source string. If
// the source contains several modules, the first is the implicit top and any
// instances are flattened.
func ElaborateSource(src string) (*Design, error) {
	mods, err := verilog.ParseFile(src)
	if err != nil {
		return nil, err
	}
	return ElaborateHierarchy(mods, mods[0].Name)
}

// ElaborateHierarchySource parses a multi-module source and elaborates the
// named top module with its instance hierarchy flattened.
func ElaborateHierarchySource(src, top string) (*Design, error) {
	mods, err := verilog.ParseFile(src)
	if err != nil {
		return nil, err
	}
	return ElaborateHierarchy(mods, top)
}

// ElaborateHierarchy flattens the hierarchy rooted at top and elaborates it.
func ElaborateHierarchy(mods []*verilog.Module, top string) (*Design, error) {
	flat, err := verilog.Flatten(mods, top)
	if err != nil {
		return nil, err
	}
	return Elaborate(flat)
}

type elaborator struct {
	m       *verilog.Module
	d       *Design
	drivers map[*Signal]string // signal -> description of its driver
}

func (el *elaborator) run() error {
	if err := el.detectClock(); err != nil {
		return err
	}
	if err := el.declareSignals(); err != nil {
		return err
	}
	if err := el.lowerAssigns(); err != nil {
		return err
	}
	for i := range el.m.Always {
		if err := el.lowerAlways(&el.m.Always[i]); err != nil {
			return err
		}
	}
	if err := el.checkDriven(); err != nil {
		return err
	}
	el.collectToggleSignals()
	el.detectFSMs()
	return nil
}

// detectClock finds the unique clock from edge-triggered sensitivity lists.
func (el *elaborator) detectClock() error {
	for i := range el.m.Always {
		blk := &el.m.Always[i]
		if !blk.Sequential() {
			continue
		}
		clk, _ := blk.Clock()
		for _, s := range blk.Sens {
			if s.Edge != verilog.EdgeNone && s.Signal != clk {
				return fmt.Errorf("line %d: multiple edge signals in sensitivity list (%s, %s); single-clock subset",
					blk.Line, clk, s.Signal)
			}
		}
		if el.d.Clock != "" && el.d.Clock != clk {
			return fmt.Errorf("line %d: second clock %q (already using %q); single-clock subset", blk.Line, clk, el.d.Clock)
		}
		el.d.Clock = clk
	}
	return nil
}

// declareSignals creates Signal records. Whether a reg is true sequential
// state is decided by scanning which always block assigns it.
func (el *elaborator) declareSignals() error {
	seqAssigned := map[string]bool{}
	combAssigned := map[string]bool{}
	for i := range el.m.Always {
		blk := &el.m.Always[i]
		set := map[string]bool{}
		collectAssigned(blk.Body, set)
		for name := range set {
			if blk.Sequential() {
				seqAssigned[name] = true
			} else {
				combAssigned[name] = true
			}
		}
	}
	for _, dec := range el.m.Decls {
		if dec.Range.Width() > 64 {
			return fmt.Errorf("line %d: signal %s wider than 64 bits (%d)", dec.Line, dec.Name, dec.Range.Width())
		}
		kind := SigWire
		switch dec.Dir {
		case verilog.DirInput:
			kind = SigInput
		case verilog.DirOutput:
			kind = SigOutput
		case verilog.DirInout:
			return fmt.Errorf("line %d: inout ports are not supported", dec.Line)
		default:
			if dec.Kind == verilog.KindReg {
				kind = SigReg
			}
		}
		if seqAssigned[dec.Name] && combAssigned[dec.Name] {
			return fmt.Errorf("signal %s assigned in both sequential and combinational blocks", dec.Name)
		}
		sig := &Signal{
			Name:    dec.Name,
			Width:   dec.Range.Width(),
			Kind:    kind,
			IsState: seqAssigned[dec.Name],
			Line:    dec.Line,
		}
		// A reg only driven combinationally is just a wire.
		if sig.Kind == SigReg && !sig.IsState {
			sig.Kind = SigWire
		}
		if sig.Kind == SigInput && sig.IsState {
			return fmt.Errorf("input %s assigned inside the design", dec.Name)
		}
		if err := el.d.addSignal(sig); err != nil {
			return err
		}
	}
	// Ports listed in the header must be declared.
	for _, p := range el.m.Ports {
		if el.d.Signal(p) == nil {
			return fmt.Errorf("port %s has no declaration", p)
		}
	}
	return nil
}

func collectAssigned(s verilog.Stmt, set map[string]bool) {
	switch st := s.(type) {
	case *verilog.BlockStmt:
		for _, sub := range st.Stmts {
			collectAssigned(sub, set)
		}
	case *verilog.AssignStmt:
		set[st.LHS.Name] = true
	case *verilog.IfStmt:
		collectAssigned(st.Then, set)
		if st.Else != nil {
			collectAssigned(st.Else, set)
		}
	case *verilog.CaseStmt:
		for _, item := range st.Items {
			collectAssigned(item.Body, set)
		}
	}
}

// ---------------------------------------------------------------------------
// Continuous assignments
// ---------------------------------------------------------------------------

// partialDrive is one continuous assignment to a (possibly partial) LHS.
type partialDrive struct {
	msb, lsb int
	rhs      Expr
	line     int
}

func (el *elaborator) lowerAssigns() error {
	partial := map[*Signal][]partialDrive{}
	for _, a := range el.m.Assigns {
		sig := el.d.Signal(a.LHS.Name)
		if sig == nil {
			return fmt.Errorf("line %d: assignment to undeclared signal %s", a.Line, a.LHS.Name)
		}
		if sig.Kind == SigInput {
			return fmt.Errorf("line %d: continuous assignment drives input %s", a.Line, sig.Name)
		}
		if sig.IsState {
			return fmt.Errorf("line %d: continuous assignment drives register %s", a.Line, sig.Name)
		}
		msb, lsb := sig.Width-1, 0
		switch {
		case a.LHS.Index != nil:
			idx, ok := constOf(a.LHS.Index)
			if !ok {
				return fmt.Errorf("line %d: dynamic bit-select on assign LHS is not supported", a.Line)
			}
			msb, lsb = int(idx), int(idx)
		case a.LHS.HasRange:
			msb, lsb = a.LHS.MSB, a.LHS.LSB
		}
		if msb >= sig.Width || lsb < 0 || msb < lsb {
			return fmt.Errorf("line %d: assign range [%d:%d] out of bounds for %s[%d]", a.Line, msb, lsb, sig.Name, sig.Width)
		}
		rhs, err := el.elabExpr(a.RHS)
		if err != nil {
			return err
		}
		rhs = extend(rhs, msb-lsb+1)
		partial[sig] = append(partial[sig], partialDrive{msb: msb, lsb: lsb, rhs: rhs, line: a.Line})

		desc := fmt.Sprintf("assign %s", a.LHS)
		el.d.Cover.add(PointLine, a.Line, desc, ConstBool(true))
		el.recordExprPoints(rhs, a.Line)
		// Boolean continuous assignments contribute condition points for
		// their atomic operands (commercial condition-coverage semantics).
		if rhs.Width() == 1 {
			el.recordConditionPoints(rhs, a.Line, desc)
		}
	}
	for sig, drives := range partial {
		e, err := mergeDrives(sig, drives)
		if err != nil {
			return err
		}
		if prev, dup := el.drivers[sig]; dup {
			return fmt.Errorf("signal %s has multiple drivers (%s and continuous assign)", sig.Name, prev)
		}
		el.drivers[sig] = "continuous assign"
		el.d.Comb[sig] = e
	}
	return nil
}

// mergeDrives composes partial continuous assignments into one expression
// covering the whole signal, rejecting overlaps and gaps.
func mergeDrives(sig *Signal, drives []partialDrive) (Expr, error) {
	sort.Slice(drives, func(i, j int) bool { return drives[i].lsb < drives[j].lsb })
	expect := 0
	var parts []Expr // LSB-first here, reversed into Concat order below
	for _, dr := range drives {
		if dr.lsb < expect {
			return nil, fmt.Errorf("line %d: overlapping continuous assignments to %s", dr.line, sig.Name)
		}
		if dr.lsb > expect {
			return nil, fmt.Errorf("bits [%d:%d] of %s are undriven", dr.lsb-1, expect, sig.Name)
		}
		parts = append(parts, dr.rhs)
		expect = dr.msb + 1
	}
	if expect != sig.Width {
		return nil, fmt.Errorf("bits [%d:%d] of %s are undriven", sig.Width-1, expect, sig.Name)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	// Concat wants MSB first.
	rev := make([]Expr, len(parts))
	for i, p := range parts {
		rev[len(parts)-1-i] = p
	}
	return newConcat(rev), nil
}

// ---------------------------------------------------------------------------
// Always blocks: symbolic execution
// ---------------------------------------------------------------------------

// symState carries the symbolic values during procedural execution. cur holds
// read-through values (updated by blocking assignments); fin holds the final
// values that become next-state (sequential) or combinational drives.
type symState struct {
	cur map[*Signal]Expr
	fin map[*Signal]Expr
}

func newSymState() *symState {
	return &symState{cur: map[*Signal]Expr{}, fin: map[*Signal]Expr{}}
}

func (s *symState) clone() *symState {
	c := newSymState()
	for k, v := range s.cur {
		c.cur[k] = v
	}
	for k, v := range s.fin {
		c.fin[k] = v
	}
	return c
}

// latch is a marker expression standing for "value not assigned on this
// path" in a combinational block; if it survives into a final expression the
// block infers a latch, which the subset rejects.
type latch struct {
	Sig *Signal
}

func (e *latch) exprNode()  {}
func (e *latch) Width() int { return e.Sig.Width }

func containsLatch(e Expr) *latch {
	var found *latch
	walk(e, func(n Expr) {
		if l, ok := n.(*latch); ok && found == nil {
			found = l
		}
	})
	return found
}

type blockCtx struct {
	el         *elaborator
	sequential bool
	assigned   map[string]bool // signals assigned anywhere in the block
}

func (el *elaborator) lowerAlways(blk *verilog.AlwaysBlock) error {
	assigned := map[string]bool{}
	collectAssigned(blk.Body, assigned)
	ctx := &blockCtx{el: el, sequential: blk.Sequential(), assigned: assigned}

	st := newSymState()
	if err := ctx.exec(blk.Body, st, ConstBool(true)); err != nil {
		return err
	}

	for name := range assigned {
		sig := el.d.Signal(name)
		if sig == nil {
			return fmt.Errorf("line %d: assignment to undeclared signal %s", blk.Line, name)
		}
		v, ok := st.fin[sig]
		if !ok {
			continue
		}
		if l := containsLatch(v); l != nil {
			return fmt.Errorf("line %d: signal %s is not assigned on all paths of a combinational block (latch inferred)",
				blk.Line, l.Sig.Name)
		}
		if prev, dup := el.drivers[sig]; dup {
			return fmt.Errorf("signal %s has multiple drivers (%s and always block at line %d)", sig.Name, prev, blk.Line)
		}
		el.drivers[sig] = fmt.Sprintf("always block at line %d", blk.Line)
		if ctx.sequential {
			el.d.Next[sig] = extend(v, sig.Width)
		} else {
			el.d.Comb[sig] = extend(v, sig.Width)
		}
	}
	return nil
}

// subst rewrites an elaborated expression so that reads of signals assigned
// earlier in the block (by blocking assignments) see their in-block values,
// implementing Verilog blocking-assignment read-through semantics.
func (ctx *blockCtx) subst(e Expr, st *symState) Expr {
	switch x := e.(type) {
	case *Ref:
		return ctx.read(x.Sig, st)
	case *Const, nil:
		return e
	case *Unary:
		return &Unary{Op: x.Op, X: ctx.subst(x.X, st), W: x.W}
	case *Binary:
		return &Binary{Op: x.Op, A: ctx.subst(x.A, st), B: ctx.subst(x.B, st), W: x.W}
	case *Mux:
		return &Mux{Cond: ctx.subst(x.Cond, st), T: ctx.subst(x.T, st), F: ctx.subst(x.F, st), W: x.W}
	case *Select:
		return &Select{X: ctx.subst(x.X, st), Bit: x.Bit}
	case *Slice:
		return &Slice{X: ctx.subst(x.X, st), MSB: x.MSB, LSB: x.LSB}
	case *Concat:
		parts := make([]Expr, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = ctx.subst(p, st)
		}
		return &Concat{Parts: parts, W: x.W}
	default:
		return e
	}
}

// read returns the symbolic current value of sig within the block.
func (ctx *blockCtx) read(sig *Signal, st *symState) Expr {
	if v, ok := st.cur[sig]; ok {
		return v
	}
	if !ctx.sequential && ctx.assigned[sig.Name] {
		// Combinational read-before-write on this path.
		return &latch{Sig: sig}
	}
	return &Ref{Sig: sig}
}

// pending returns the value that will be committed for sig (used as the
// "old" value for partial writes and merges).
func (ctx *blockCtx) pending(sig *Signal, st *symState) Expr {
	if v, ok := st.fin[sig]; ok {
		return v
	}
	if ctx.sequential {
		return &Ref{Sig: sig} // hold
	}
	return &latch{Sig: sig}
}

func (ctx *blockCtx) exec(s verilog.Stmt, st *symState, path Expr) error {
	el := ctx.el
	switch stmt := s.(type) {
	case *verilog.BlockStmt:
		for _, sub := range stmt.Stmts {
			if err := ctx.exec(sub, st, path); err != nil {
				return err
			}
		}
		return nil

	case *verilog.NullStmt:
		return nil

	case *verilog.AssignStmt:
		sig := el.d.Signal(stmt.LHS.Name)
		if sig == nil {
			return fmt.Errorf("line %d: assignment to undeclared signal %s", stmt.Line, stmt.LHS.Name)
		}
		if sig.Kind == SigInput {
			return fmt.Errorf("line %d: procedural assignment drives input %s", stmt.Line, sig.Name)
		}
		rhs, err := el.elabExpr(stmt.RHS)
		if err != nil {
			return err
		}
		rhs = ctx.subst(rhs, st)
		el.d.Cover.add(PointLine, stmt.Line, fmt.Sprintf("%s %s ...", stmt.LHS, assignOp(stmt.Blocking)), path)
		el.recordExprPoints(rhs, stmt.Line)

		newVal, err := ctx.writeLValue(sig, stmt.LHS, rhs, st, stmt.Line)
		if err != nil {
			return err
		}
		st.fin[sig] = newVal
		if stmt.Blocking {
			st.cur[sig] = newVal
		}
		return nil

	case *verilog.IfStmt:
		cond, err := el.elabExpr(stmt.Cond)
		if err != nil {
			return err
		}
		cond = boolify(ctx.subst(cond, st))
		condDesc := verilog.ExprString(stmt.Cond)
		el.d.Cover.add(PointLine, stmt.Line, "if ("+condDesc+")", path)
		el.d.Cover.add(PointBranch, stmt.Line, "if ("+condDesc+") taken", and1(path, cond))
		el.d.Cover.add(PointBranch, stmt.Line, "if ("+condDesc+") not taken", and1(path, not1(cond)))
		el.recordConditionPoints(cond, stmt.Line, condDesc)
		el.recordExprPoints(cond, stmt.Line)

		thenSt := st.clone()
		if err := ctx.exec(stmt.Then, thenSt, and1(path, cond)); err != nil {
			return err
		}
		elseSt := st.clone()
		if stmt.Else != nil {
			if err := ctx.exec(stmt.Else, elseSt, and1(path, not1(cond))); err != nil {
				return err
			}
		}
		ctx.merge(st, cond, thenSt, elseSt)
		return nil

	case *verilog.CaseStmt:
		return ctx.execCase(stmt, st, path)

	default:
		return fmt.Errorf("unsupported statement %T", s)
	}
}

// execCase lowers a case statement to a priority if-chain (first matching
// label wins) by recursing arm by arm.
func (ctx *blockCtx) execCase(cs *verilog.CaseStmt, st *symState, path Expr) error {
	el := ctx.el
	subj, err := el.elabExpr(cs.Subject)
	if err != nil {
		return err
	}
	subj = ctx.subst(subj, st)
	subjDesc := verilog.ExprString(cs.Subject)
	el.d.Cover.add(PointLine, cs.Line, "case ("+subjDesc+")", path)

	var defaultBody verilog.Stmt
	type arm struct {
		cond Expr
		body verilog.Stmt
		line int
		desc string
	}
	var arms []arm
	for _, item := range cs.Items {
		if item.Labels == nil {
			if defaultBody != nil {
				return fmt.Errorf("line %d: multiple default arms", item.Line)
			}
			defaultBody = item.Body
			continue
		}
		var cond Expr
		var descs []string
		for _, lab := range item.Labels {
			le, err := el.elabExpr(lab)
			if err != nil {
				return err
			}
			le = ctx.subst(le, st)
			w := maxInt(subj.Width(), le.Width())
			eq := &Binary{Op: OpEq, A: extend(subj, w), B: extend(le, w), W: 1}
			if cond == nil {
				cond = eq
			} else {
				cond = &Binary{Op: OpLogOr, A: cond, B: eq, W: 1}
			}
			descs = append(descs, verilog.ExprString(lab))
		}
		el.recordExprPoints(cond, item.Line)
		arms = append(arms, arm{cond: cond, body: item.Body, line: item.Line,
			desc: fmt.Sprintf("case %s: %v", subjDesc, descs)})
	}

	// Recursive if-chain.
	var chain func(i int, st *symState, path Expr) error
	chain = func(i int, st *symState, path Expr) error {
		if i == len(arms) {
			if defaultBody != nil {
				el.d.Cover.add(PointBranch, cs.Line, "case ("+subjDesc+") default", path)
				return ctx.exec(defaultBody, st, path)
			}
			return nil
		}
		a := arms[i]
		el.d.Cover.add(PointBranch, a.line, a.desc, and1(path, a.cond))
		thenSt := st.clone()
		if err := ctx.exec(a.body, thenSt, and1(path, a.cond)); err != nil {
			return err
		}
		elseSt := st.clone()
		if err := chain(i+1, elseSt, and1(path, not1(a.cond))); err != nil {
			return err
		}
		ctx.merge(st, a.cond, thenSt, elseSt)
		return nil
	}
	return chain(0, st, path)
}

// merge folds the two branch states back into st with muxes on cond.
func (ctx *blockCtx) merge(st *symState, cond Expr, thenSt, elseSt *symState) {
	mergeMap := func(get func(*symState) map[*Signal]Expr, def func(*Signal) Expr) {
		seen := map[*Signal]bool{}
		for sig := range get(thenSt) {
			seen[sig] = true
		}
		for sig := range get(elseSt) {
			seen[sig] = true
		}
		for sig := range seen {
			tv, tok := get(thenSt)[sig]
			ev, eok := get(elseSt)[sig]
			if !tok {
				tv = def(sig)
			}
			if !eok {
				ev = def(sig)
			}
			if tok && eok && tv == ev {
				get(st)[sig] = tv
				continue
			}
			w := maxInt(tv.Width(), ev.Width())
			get(st)[sig] = &Mux{Cond: cond, T: extend(tv, w), F: extend(ev, w), W: w}
		}
	}
	mergeMap(func(s *symState) map[*Signal]Expr { return s.cur },
		func(sig *Signal) Expr { return ctx.read(sig, st) })
	mergeMap(func(s *symState) map[*Signal]Expr { return s.fin },
		func(sig *Signal) Expr { return ctx.pending(sig, st) })
}

// writeLValue computes the full-width new value of sig after assigning rhs to
// the (possibly partial) lvalue.
func (ctx *blockCtx) writeLValue(sig *Signal, lv verilog.LValue, rhs Expr, st *symState, line int) (Expr, error) {
	switch {
	case lv.Index == nil && !lv.HasRange:
		return extend(rhs, sig.Width), nil

	case lv.HasRange:
		msb, lsb := lv.MSB, lv.LSB
		if msb < lsb || msb >= sig.Width || lsb < 0 {
			return nil, fmt.Errorf("line %d: part-select [%d:%d] out of bounds for %s[%d]", line, msb, lsb, sig.Name, sig.Width)
		}
		old := ctx.pending(sig, st)
		return insertBits(old, extend(rhs, msb-lsb+1), msb, lsb, sig.Width), nil

	default: // bit select
		old := ctx.pending(sig, st)
		bit := extend(rhs, 1)
		if cv, ok := constOf(lv.Index); ok {
			if int(cv) >= sig.Width {
				return nil, fmt.Errorf("line %d: bit-select [%d] out of bounds for %s[%d]", line, cv, sig.Name, sig.Width)
			}
			return insertBits(old, bit, int(cv), int(cv), sig.Width), nil
		}
		idx, err := ctx.el.elabExpr(lv.Index)
		if err != nil {
			return nil, err
		}
		idx = ctx.subst(idx, st)
		// Dynamic index: per-bit mux.
		parts := make([]Expr, sig.Width) // MSB first for Concat
		for j := 0; j < sig.Width; j++ {
			sel := &Binary{Op: OpEq, A: idx, B: NewConst(uint64(j), idx.Width()), W: 1}
			oldBit := selectBit(old, j)
			parts[sig.Width-1-j] = &Mux{Cond: sel, T: bit, F: oldBit, W: 1}
		}
		return newConcat(parts), nil
	}
}

// insertBits replaces bits [msb:lsb] of old (width w) with val.
func insertBits(old, val Expr, msb, lsb, w int) Expr {
	var parts []Expr // MSB first
	if msb < w-1 {
		parts = append(parts, &Slice{X: old, MSB: w - 1, LSB: msb + 1})
	}
	parts = append(parts, val)
	if lsb > 0 {
		parts = append(parts, &Slice{X: old, MSB: lsb - 1, LSB: 0})
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return newConcat(parts)
}

func selectBit(e Expr, bit int) Expr {
	if e.Width() == 1 && bit == 0 {
		return e
	}
	return &Select{X: e, Bit: bit}
}

// ---------------------------------------------------------------------------
// Expression elaboration
// ---------------------------------------------------------------------------

func (el *elaborator) elabExpr(e verilog.Expr) (Expr, error) {
	switch x := e.(type) {
	case *verilog.Ident:
		sig := el.d.Signal(x.Name)
		if sig == nil {
			return nil, fmt.Errorf("line %d: undeclared signal %s", x.Line, x.Name)
		}
		if sig.Name == el.d.Clock {
			return nil, fmt.Errorf("line %d: clock %s used as data", x.Line, x.Name)
		}
		return &Ref{Sig: sig}, nil

	case *verilog.Number:
		w := x.Width
		if w == 0 {
			w = bits.Len64(x.Value)
			if w == 0 {
				w = 1
			}
		}
		return NewConst(x.Value, w), nil

	case *verilog.Unary:
		sub, err := el.elabExpr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "~":
			return &Unary{Op: OpNot, X: sub, W: sub.Width()}, nil
		case "!":
			return &Unary{Op: OpLogNot, X: boolify(sub), W: 1}, nil
		case "-":
			return &Unary{Op: OpNeg, X: sub, W: sub.Width()}, nil
		case "&":
			return &Unary{Op: OpRedAnd, X: sub, W: 1}, nil
		case "|":
			return &Unary{Op: OpRedOr, X: sub, W: 1}, nil
		case "^":
			return &Unary{Op: OpRedXor, X: sub, W: 1}, nil
		case "~&":
			return not1(&Unary{Op: OpRedAnd, X: sub, W: 1}), nil
		case "~|":
			return not1(&Unary{Op: OpRedOr, X: sub, W: 1}), nil
		case "~^":
			return not1(&Unary{Op: OpRedXor, X: sub, W: 1}), nil
		}
		return nil, fmt.Errorf("line %d: unsupported unary operator %q", x.Line, x.Op)

	case *verilog.Binary:
		a, err := el.elabExpr(x.A)
		if err != nil {
			return nil, err
		}
		b, err := el.elabExpr(x.B)
		if err != nil {
			return nil, err
		}
		op, ok := binOpFromString(x.Op)
		if !ok {
			return nil, fmt.Errorf("line %d: unsupported binary operator %q", x.Line, x.Op)
		}
		switch {
		case op == OpLogAnd || op == OpLogOr:
			return &Binary{Op: op, A: boolify(a), B: boolify(b), W: 1}, nil
		case op.IsBoolOp(): // comparisons
			w := maxInt(a.Width(), b.Width())
			return &Binary{Op: op, A: extend(a, w), B: extend(b, w), W: 1}, nil
		case op == OpShl || op == OpShr:
			return &Binary{Op: op, A: a, B: b, W: a.Width()}, nil
		default:
			w := maxInt(a.Width(), b.Width())
			return &Binary{Op: op, A: extend(a, w), B: extend(b, w), W: w}, nil
		}

	case *verilog.Ternary:
		cond, err := el.elabExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		t, err := el.elabExpr(x.Then)
		if err != nil {
			return nil, err
		}
		f, err := el.elabExpr(x.Else)
		if err != nil {
			return nil, err
		}
		w := maxInt(t.Width(), f.Width())
		return &Mux{Cond: boolify(cond), T: extend(t, w), F: extend(f, w), W: w}, nil

	case *verilog.Index:
		sub, err := el.elabExpr(x.X)
		if err != nil {
			return nil, err
		}
		if cv, ok := constOf(x.Idx); ok {
			if int(cv) >= sub.Width() {
				return nil, fmt.Errorf("line %d: bit-select [%d] out of bounds (width %d)", x.Line, cv, sub.Width())
			}
			return selectBit(sub, int(cv)), nil
		}
		idx, err := el.elabExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		// Dynamic select: mux chain over the bits.
		var out Expr = selectBit(sub, 0)
		for j := 1; j < sub.Width(); j++ {
			sel := &Binary{Op: OpEq, A: idx, B: NewConst(uint64(j), idx.Width()), W: 1}
			out = &Mux{Cond: sel, T: selectBit(sub, j), F: out, W: 1}
		}
		return out, nil

	case *verilog.Slice:
		sub, err := el.elabExpr(x.X)
		if err != nil {
			return nil, err
		}
		if x.MSB < x.LSB || x.MSB >= sub.Width() || x.LSB < 0 {
			return nil, fmt.Errorf("line %d: part-select [%d:%d] out of bounds (width %d)", x.Line, x.MSB, x.LSB, sub.Width())
		}
		if x.LSB == 0 && x.MSB == sub.Width()-1 {
			return sub, nil
		}
		return &Slice{X: sub, MSB: x.MSB, LSB: x.LSB}, nil

	case *verilog.Concat:
		parts := make([]Expr, len(x.Parts))
		for i, pe := range x.Parts {
			sub, err := el.elabExpr(pe)
			if err != nil {
				return nil, err
			}
			parts[i] = sub
		}
		c := newConcat(parts)
		if c.Width() > 64 {
			return nil, fmt.Errorf("line %d: concatenation wider than 64 bits", x.Line)
		}
		return c, nil

	case *verilog.Repl:
		sub, err := el.elabExpr(x.X)
		if err != nil {
			return nil, err
		}
		if x.Count*sub.Width() > 64 {
			return nil, fmt.Errorf("line %d: replication wider than 64 bits", x.Line)
		}
		parts := make([]Expr, x.Count)
		for i := range parts {
			parts[i] = sub
		}
		return newConcat(parts), nil

	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

func binOpFromString(op string) (BinOp, bool) {
	switch op {
	case "&":
		return OpAnd, true
	case "|":
		return OpOr, true
	case "^":
		return OpXor, true
	case "~^":
		return OpXnor, true
	case "&&":
		return OpLogAnd, true
	case "||":
		return OpLogOr, true
	case "+":
		return OpAdd, true
	case "-":
		return OpSub, true
	case "*":
		return OpMul, true
	case "==":
		return OpEq, true
	case "!=":
		return OpNe, true
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	case "<<":
		return OpShl, true
	case ">>":
		return OpShr, true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Coverage instrumentation helpers
// ---------------------------------------------------------------------------

// recordExprPoints registers expression-coverage points. Every 1-bit
// operator node gets a both-values point; 1-bit binary boolean operators
// additionally get four operand-minterm points (sum-of-products style), so
// expression coverage is bounded below 100% when some operand combinations
// are unreachable — matching the behaviour of the commercial metric the
// paper reports.
func (el *elaborator) recordExprPoints(rhs Expr, line int) {
	walk(rhs, func(n Expr) {
		switch x := n.(type) {
		case *Unary, *Mux:
			if n.Width() == 1 {
				el.d.Cover.add(PointExpression, line, String(n), n)
			}
		case *Binary:
			if x.W != 1 {
				return
			}
			el.d.Cover.add(PointExpression, line, String(n), n)
			switch x.Op {
			case OpAnd, OpOr, OpXor, OpXnor, OpLogAnd, OpLogOr:
				if x.A.Width() != 1 || x.B.Width() != 1 {
					return
				}
				for combo := 0; combo < 4; combo++ {
					av, bv := combo&1 == 1, combo&2 == 2
					pa, pb := x.A, x.B
					if !av {
						pa = not1(pa)
					}
					if !bv {
						pb = not1(pb)
					}
					desc := fmt.Sprintf("%s with (%d,%d)", String(n), b2i(av), b2i(bv))
					el.d.Cover.add(PointMinterm, line, desc, and1(pa, pb))
				}
			}
		}
	})
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// recordConditionPoints registers the atomic conditions of a decision.
func (el *elaborator) recordConditionPoints(cond Expr, line int, desc string) {
	for _, atom := range atomsOf(cond) {
		el.d.Cover.add(PointCondition, line, String(atom)+" in ("+desc+")", atom)
	}
}

// atomsOf decomposes a 1-bit decision into its atomic conditions: operands of
// logical (or 1-bit bitwise) and/or/not chains.
func atomsOf(e Expr) []Expr {
	switch x := e.(type) {
	case *Binary:
		if x.W == 1 && (x.Op == OpLogAnd || x.Op == OpLogOr || x.Op == OpAnd || x.Op == OpOr) {
			return append(atomsOf(x.A), atomsOf(x.B)...)
		}
	case *Unary:
		if x.W == 1 && (x.Op == OpLogNot || x.Op == OpNot) {
			return atomsOf(x.X)
		}
	}
	if _, isConst := e.(*Const); isConst {
		return nil
	}
	return []Expr{e}
}

func (el *elaborator) collectToggleSignals() {
	for _, s := range el.d.Signals {
		if s.Name == el.d.Clock {
			continue
		}
		el.d.Cover.ToggleSignals = append(el.d.Cover.ToggleSignals, s)
	}
}

// detectFSMs finds registers that are compared against constants somewhere
// in the design and assigned constants in their next-state logic.
func (el *elaborator) detectFSMs() {
	compared := map[*Signal]bool{}
	note := func(e Expr) {
		walk(e, func(n Expr) {
			if b, ok := n.(*Binary); ok && (b.Op == OpEq || b.Op == OpNe) {
				ra, aIsRef := b.A.(*Ref)
				_, bIsConst := b.B.(*Const)
				if aIsRef && bIsConst && ra.Sig.IsState {
					compared[ra.Sig] = true
				}
				rb, bIsRef := b.B.(*Ref)
				_, aIsConst := b.A.(*Const)
				if bIsRef && aIsConst && rb.Sig.IsState {
					compared[rb.Sig] = true
				}
			}
		})
	}
	for _, e := range el.d.Comb {
		note(e)
	}
	for _, e := range el.d.Next {
		note(e)
	}
	for reg, next := range el.d.Next {
		if !compared[reg] {
			continue
		}
		states := map[uint64]bool{}
		var leaves func(e Expr)
		leaves = func(e Expr) {
			switch x := e.(type) {
			case *Mux:
				leaves(x.T)
				leaves(x.F)
			case *Const:
				states[x.Val] = true
			}
		}
		leaves(next)
		if len(states) < 2 {
			continue
		}
		var list []uint64
		for v := range states {
			list = append(list, v)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		el.d.Cover.FSMs = append(el.d.Cover.FSMs, FSMInfo{Reg: reg, States: list})
	}
	sort.Slice(el.d.Cover.FSMs, func(i, j int) bool {
		return el.d.Cover.FSMs[i].Reg.Name < el.d.Cover.FSMs[j].Reg.Name
	})
}

// checkDriven verifies every signal read somewhere has a driver.
func (el *elaborator) checkDriven() error {
	driven := map[*Signal]bool{}
	for _, s := range el.d.Signals {
		if s.Kind == SigInput || s.IsState {
			driven[s] = true
		}
	}
	for s := range el.d.Comb {
		driven[s] = true
	}
	var reads map[*Signal]bool
	for _, e := range el.d.Comb {
		reads = Support(e, reads)
	}
	for _, e := range el.d.Next {
		reads = Support(e, reads)
	}
	for s := range reads {
		if !driven[s] {
			return fmt.Errorf("signal %s is read but never driven", s.Name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

func assignOp(blocking bool) string {
	if blocking {
		return "="
	}
	return "<="
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// extend adjusts e to width w by zero-extension or truncation.
func extend(e Expr, w int) Expr {
	cw := e.Width()
	switch {
	case cw == w:
		return e
	case cw > w:
		if c, ok := e.(*Const); ok {
			return NewConst(c.Val, w)
		}
		if w == 1 {
			return selectBit(e, 0)
		}
		return &Slice{X: e, MSB: w - 1, LSB: 0}
	default:
		if c, ok := e.(*Const); ok {
			return NewConst(c.Val, w)
		}
		return newConcat([]Expr{NewConst(0, w-cw), e})
	}
}

// boolify reduces e to one bit (reduction-or for wide values).
func boolify(e Expr) Expr {
	if e.Width() == 1 {
		return e
	}
	return &Unary{Op: OpRedOr, X: e, W: 1}
}

func not1(e Expr) Expr {
	if c, ok := e.(*Const); ok {
		return ConstBool(c.Val == 0)
	}
	return &Unary{Op: OpLogNot, X: e, W: 1}
}

func and1(a, b Expr) Expr {
	if c, ok := a.(*Const); ok {
		if c.Val == 0 {
			return ConstBool(false)
		}
		return b
	}
	if c, ok := b.(*Const); ok {
		if c.Val == 0 {
			return ConstBool(false)
		}
		return a
	}
	return &Binary{Op: OpLogAnd, A: a, B: b, W: 1}
}

// And1 and Not1 expose 1-bit logic construction to other packages.
func And1(a, b Expr) Expr { return and1(a, b) }

// Not1 returns the 1-bit negation of e.
func Not1(e Expr) Expr { return not1(e) }

// Boolify exposes 1-bit reduction to other packages.
func Boolify(e Expr) Expr { return boolify(e) }

// Extend exposes width adjustment to other packages.
func Extend(e Expr, w int) Expr { return extend(e, w) }

func newConcat(parts []Expr) Expr {
	w := 0
	for _, p := range parts {
		w += p.Width()
	}
	return &Concat{Parts: parts, W: w}
}

// NewConcat builds a concatenation (parts MSB-first).
func NewConcat(parts []Expr) Expr { return newConcat(parts) }

func constOf(e verilog.Expr) (uint64, bool) {
	if n, ok := e.(*verilog.Number); ok {
		return n.Value, true
	}
	return 0, false
}
