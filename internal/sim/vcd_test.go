package sim

import (
	"strings"
	"testing"
)

func TestWriteVCD(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, _ := New(d)
	trace, err := s.Run(Stimulus{{"rst": 1}, {"req0": 1}, {"req0": 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteVCD(&buf, d, trace, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module arbiter2 $end",
		"$var wire 1",
		"gnt0",
		"clk",
		"$enddefinitions $end",
		"#0",
		"#4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// gnt0 rises at cycle 2: a "1" change for its id should appear after #4.
	if !strings.Contains(out, "#4") {
		t.Error("missing cycle 2 timestamp")
	}
}

func TestWriteVCDVectors(t *testing.T) {
	src := `module m(input clk, input [3:0] d, output reg [3:0] q);
	  always @(posedge clk) q <= d;
	endmodule`
	d := mustDesign(t, src)
	s, _ := New(d)
	trace, _ := s.Run(Stimulus{{"d": 5}, {"d": 10}})
	var buf strings.Builder
	if err := WriteVCD(&buf, d, trace, "top"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "$var wire 4") {
		t.Error("vector declaration missing")
	}
	if !strings.Contains(out, "b101 ") {
		t.Errorf("binary vector value missing:\n%s", out)
	}
	// d=5 at cycle 0 and q=5 at cycle 1: two changes; the unchanged d=10 at
	// cycle 1 is emitted once.
	if got := strings.Count(out, "b101 "); got != 2 {
		t.Errorf("b101 emitted %d times, want 2 (d@0 and q@1)", got)
	}
	if got := strings.Count(out, "b1010 "); got != 1 {
		t.Errorf("b1010 emitted %d times, want 1", got)
	}
}

func TestVCDIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("id collision or empty at %d: %q", i, id)
		}
		seen[id] = true
		for _, c := range id {
			if c < 33 || c > 126 {
				t.Fatalf("non-printable id char %q", id)
			}
		}
	}
}
