package sim

import (
	"fmt"
	"io"
	"strconv"

	"goldmine/internal/rtl"
)

// WriteVCD dumps a recorded trace as an IEEE 1364 Value Change Dump, the
// interchange format every waveform viewer understands. Each trace cycle
// occupies two timescale units so the synthetic clock (emitted as "clk" when
// the design is clocked) shows a full period per cycle.
func WriteVCD(w io.Writer, d *rtl.Design, tr *Trace, module string) error {
	if module == "" {
		module = d.Name
	}
	fmt.Fprintf(w, "$date\n  goldmine trace dump\n$end\n")
	fmt.Fprintf(w, "$version\n  goldmine rtlsim\n$end\n")
	fmt.Fprintf(w, "$timescale 1ns $end\n")
	fmt.Fprintf(w, "$scope module %s $end\n", module)

	ids := make([]string, len(tr.Signals))
	for i, sig := range tr.Signals {
		ids[i] = vcdID(i)
		if sig.Width == 1 {
			fmt.Fprintf(w, "$var wire 1 %s %s $end\n", ids[i], sig.Name)
		} else {
			fmt.Fprintf(w, "$var wire %d %s %s [%d:0] $end\n", sig.Width, ids[i], sig.Name, sig.Width-1)
		}
	}
	clkID := ""
	if d.Clock != "" {
		clkID = vcdID(len(tr.Signals))
		fmt.Fprintf(w, "$var wire 1 %s %s $end\n", clkID, d.Clock)
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")

	prev := make([]uint64, len(tr.Signals))
	for c := 0; c < tr.Cycles(); c++ {
		fmt.Fprintf(w, "#%d\n", 2*c)
		if clkID != "" {
			fmt.Fprintf(w, "1%s\n", clkID)
		}
		for i, sig := range tr.Signals {
			v := tr.Values[c][i]
			if c > 0 && v == prev[i] {
				continue
			}
			prev[i] = v
			if sig.Width == 1 {
				fmt.Fprintf(w, "%d%s\n", v&1, ids[i])
			} else {
				fmt.Fprintf(w, "b%s %s\n", strconv.FormatUint(v, 2), ids[i])
			}
		}
		if clkID != "" {
			fmt.Fprintf(w, "#%d\n0%s\n", 2*c+1, clkID)
		}
	}
	fmt.Fprintf(w, "#%d\n", 2*tr.Cycles())
	return nil
}

// vcdID assigns compact printable identifier codes (! through ~, then two
// characters, ...).
func vcdID(n int) string {
	const lo, hi = 33, 126
	base := hi - lo + 1
	id := []byte{}
	for {
		id = append(id, byte(lo+n%base))
		n = n/base - 1
		if n < 0 {
			break
		}
	}
	return string(id)
}
