package sim

import (
	"strings"
	"testing"

	"goldmine/internal/rtl"
)

const arbiter2Src = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;

  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0;
      gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule
`

func mustDesign(t *testing.T, src string) *rtl.Design {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestArbiterSequence(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	stim := Stimulus{
		{"rst": 1},
		{"req0": 1},            // cycle 1: request port 0
		{"req0": 1, "req1": 1}, // cycle 2: both request; gnt0 was granted
		{"req1": 1},            // cycle 3
	}
	trace, err := s.Run(stim)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Cycles() != 4 {
		t.Fatalf("cycles %d", trace.Cycles())
	}
	// Cycle 0 under reset: gnt0 = 0.
	if v, _ := trace.Value(0, "gnt0"); v != 0 {
		t.Errorf("cycle0 gnt0=%d", v)
	}
	// Cycle 2: req0 was asserted in cycle 1 with gnt0=0 -> grant port 0 now.
	if v, _ := trace.Value(2, "gnt0"); v != 1 {
		t.Errorf("cycle2 gnt0=%d want 1", v)
	}
	// Cycle 3: in cycle 2 both requested while gnt0 held -> round robin to 1.
	if v, _ := trace.Value(3, "gnt0"); v != 0 {
		t.Errorf("cycle3 gnt0=%d want 0", v)
	}
	if v, _ := trace.Value(3, "gnt1"); v != 1 {
		t.Errorf("cycle3 gnt1=%d want 1", v)
	}
}

func TestCombDesign(t *testing.T) {
	src := `
module add(input [3:0] a, b, output [3:0] s, output c);
  wire [4:0] full;
  assign full = {1'b0, a} + {1'b0, b};
  assign s = full[3:0];
  assign c = full[4];
endmodule`
	d := mustDesign(t, src)
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := s.Run(Stimulus{{"a": 9, "b": 12}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := trace.Value(0, "s"); v != 5 {
		t.Errorf("s=%d want 5", v)
	}
	if v, _ := trace.Value(0, "c"); v != 1 {
		t.Errorf("c=%d want 1", v)
	}
}

func TestCounterRollover(t *testing.T) {
	src := `
module ctr(input clk, rst, en, output reg [1:0] q);
  always @(posedge clk)
    if (rst) q <= 0;
    else if (en) q <= q + 1;
endmodule`
	d := mustDesign(t, src)
	s, _ := New(d)
	stim := Stimulus{{"rst": 1}}
	for i := 0; i < 5; i++ {
		stim = append(stim, InputVec{"en": 1})
	}
	trace, err := s.Run(stim)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 0, 1, 2, 3, 0} // settles before edge; rollover at 4
	for c, w := range want {
		if v, _ := trace.Value(c, "q"); v != w {
			t.Errorf("cycle %d: q=%d want %d", c, v, w)
		}
	}
}

func TestObservers(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, _ := New(d)
	calls := 0
	s.Observe(func(env rtl.Env) { calls++ })
	if _, err := s.Run(make(Stimulus, 7)); err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Errorf("observer calls %d want 7", calls)
	}
}

func TestStimulusErrors(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, _ := New(d)
	if err := s.Step(InputVec{"nosuch": 1}, nil); err == nil {
		t.Error("unknown signal should error")
	}
	if err := s.Step(InputVec{"gnt0": 1}, nil); err == nil {
		t.Error("driving output should error")
	}
	if err := s.Step(InputVec{"clk": 1}, nil); err == nil {
		t.Error("driving clock should error")
	}
}

func TestTraceAppendMismatch(t *testing.T) {
	d1 := mustDesign(t, arbiter2Src)
	d2 := mustDesign(t, `module m(input a, output y); assign y = ~a; endmodule`)
	t1 := NewTrace(d1)
	t2 := NewTrace(d2)
	if err := t1.Append(t2); err == nil {
		t.Error("mismatched append should error")
	}
}

func TestTraceAppendWidthMismatch(t *testing.T) {
	d1 := mustDesign(t, `module m(input [3:0] a, output [3:0] y); assign y = ~a; endmodule`)
	d2 := mustDesign(t, `module m(input [7:0] a, output [7:0] y); assign y = ~a; endmodule`)
	t1 := NewTrace(d1)
	t2 := NewTrace(d2)
	err := t1.Append(t2)
	if err == nil {
		t.Fatal("width-mismatched append should error")
	}
	if got := err.Error(); !strings.Contains(got, "width mismatch") || !strings.Contains(got, "a") {
		t.Errorf("error %q should name the signal and the width mismatch", got)
	}
}

func TestForceSemantics(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, _ := New(d)
	// Forcing an input overrides the stimulus and is visible in the trace.
	if err := s.Force("req0", 1); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(Stimulus{{}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if v, _ := tr.Value(c, "req0"); v != 1 {
			t.Errorf("cycle %d: forced req0=%d want 1", c, v)
		}
	}
	// req0 stuck at 1 with req1 low grants port 0 from cycle 1 on.
	if v, _ := tr.Value(2, "gnt0"); v != 1 {
		t.Errorf("gnt0=%d want 1 under stuck req0", v)
	}
	// Forcing a register pins it even against its next-state function.
	if err := s.Force("gnt0", 0); err != nil {
		t.Fatal(err)
	}
	tr, err = s.Run(Stimulus{{}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if v, _ := tr.Value(c, "gnt0"); v != 0 {
			t.Errorf("cycle %d: forced gnt0=%d want 0", c, v)
		}
	}
	// Unforce releases; ClearForces releases everything.
	s.Unforce("gnt0")
	tr, _ = s.Run(Stimulus{{}, {}, {}})
	if v, _ := tr.Value(2, "gnt0"); v != 1 {
		t.Errorf("after unforce gnt0=%d want 1 (req0 still stuck)", v)
	}
	s.ClearForces()
	tr, _ = s.Run(Stimulus{{}, {}, {}})
	if v, _ := tr.Value(2, "req0"); v != 0 {
		t.Errorf("after clear req0=%d want 0", v)
	}
}

func TestForceCombSignal(t *testing.T) {
	d := mustDesign(t, `module m(input a, b, output y, z); wire w; assign w = a & b; assign y = w; assign z = ~w; endmodule`)
	s, _ := New(d)
	if err := s.Force("w", 1); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(Stimulus{{"a": 0, "b": 0}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Value(0, "w"); v != 1 {
		t.Errorf("forced w=%d want 1", v)
	}
	if v, _ := tr.Value(0, "y"); v != 1 {
		t.Errorf("y=%d want 1 (reads forced w)", v)
	}
	if v, _ := tr.Value(0, "z"); v != 0 {
		t.Errorf("z=%d want 0 (reads forced w)", v)
	}
}

func TestForceErrors(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, _ := New(d)
	if err := s.Force("nosuch", 1); err == nil {
		t.Error("forcing unknown signal should error")
	}
	if err := s.Force("clk", 1); err == nil {
		t.Error("forcing clock should error")
	}
	// Force masks to signal width.
	if err := s.Force("req0", 0xff); err != nil {
		t.Fatal(err)
	}
	tr, _ := s.Run(Stimulus{{}})
	if v, _ := tr.Value(0, "req0"); v != 1 {
		t.Errorf("forced value not masked: req0=%d", v)
	}
}

func TestStepNoAllocs(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, _ := New(d)
	in := InputVec{"req0": 1}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.Step(in, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Step allocates %.1f objects/cycle, want 0", allocs)
	}
}

func TestTraceAppend(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, _ := New(d)
	t1, _ := s.Run(Stimulus{{"rst": 1}, {"req0": 1}})
	t2, _ := s.Run(Stimulus{{"rst": 1}})
	if err := t1.Append(t2); err != nil {
		t.Fatal(err)
	}
	if t1.Cycles() != 3 {
		t.Errorf("cycles %d want 3", t1.Cycles())
	}
}

func TestPeekAndReset(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	s, _ := New(d)
	if err := s.Step(InputVec{"req0": 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(InputVec{"req0": 1}, nil); err != nil {
		t.Fatal(err)
	}
	v, err := s.Peek("gnt0")
	if err != nil || v != 1 {
		t.Errorf("peek gnt0 = %d, %v", v, err)
	}
	s.Reset()
	if v, _ := s.Peek("gnt0"); v != 0 {
		t.Errorf("after reset gnt0 = %d", v)
	}
	if s.Cycle() != 0 {
		t.Errorf("cycle after reset %d", s.Cycle())
	}
	if _, err := s.Peek("bogus"); err == nil {
		t.Error("peek of unknown signal should error")
	}
}

func TestInputVecClone(t *testing.T) {
	v := InputVec{"a": 1}
	c := v.Clone()
	c["a"] = 2
	if v["a"] != 1 {
		t.Error("clone aliases original")
	}
	st := Stimulus{{"a": 1}}
	sc := st.Clone()
	sc[0]["a"] = 5
	if st[0]["a"] != 1 {
		t.Error("stimulus clone aliases original")
	}
}

func TestValueErrors(t *testing.T) {
	d := mustDesign(t, arbiter2Src)
	tr := NewTrace(d)
	if _, err := tr.Value(0, "gnt0"); err == nil {
		t.Error("out-of-range cycle should error")
	}
	if _, err := tr.Value(0, "nosuch"); err == nil {
		t.Error("unknown signal should error")
	}
	if tr.Column("clk") != -1 {
		t.Error("clock should not be a trace column")
	}
}
