// Package sim provides a two-valued, cycle-accurate interpreter for
// elaborated rtl.Designs. It is the "Data Generator" of the GoldMine flow:
// it applies input stimulus cycle by cycle, evaluates the combinational
// expressions in dependency order, latches next-state values on the implicit
// clock edge, and records complete per-cycle traces of every signal. Per-cycle
// observer hooks let the coverage engine watch the same evaluation.
package sim

import (
	"fmt"
	"sort"

	"goldmine/internal/rtl"
	"goldmine/internal/telemetry"
)

// InputVec assigns values to (a subset of) the design's data inputs for one
// cycle. Unassigned inputs default to zero.
type InputVec map[string]uint64

// Clone returns a deep copy of the vector.
func (v InputVec) Clone() InputVec {
	c := make(InputVec, len(v))
	for k, x := range v {
		c[k] = x
	}
	return c
}

// Stimulus is a sequence of per-cycle input vectors.
type Stimulus []InputVec

// Clone deep-copies the stimulus.
func (st Stimulus) Clone() Stimulus {
	c := make(Stimulus, len(st))
	for i, v := range st {
		c[i] = v.Clone()
	}
	return c
}

// Trace records the value of every design signal at every simulated cycle.
// Values[i][j] is the value of Signals[j] during cycle i (after combinational
// settling, before the clock edge).
type Trace struct {
	Signals []*rtl.Signal
	Values  [][]uint64
	index   map[string]int
}

// NewTrace creates an empty trace over the design's signals (excluding the
// clock), ordered deterministically by name.
func NewTrace(d *rtl.Design) *Trace {
	var sigs []*rtl.Signal
	for _, s := range d.Signals {
		if s.Name == d.Clock {
			continue
		}
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Name < sigs[j].Name })
	idx := make(map[string]int, len(sigs))
	for i, s := range sigs {
		idx[s.Name] = i
	}
	return &Trace{Signals: sigs, index: idx}
}

// Cycles returns the number of recorded cycles.
func (t *Trace) Cycles() int { return len(t.Values) }

// Column returns the column index of a signal name, or -1.
func (t *Trace) Column(name string) int {
	if i, ok := t.index[name]; ok {
		return i
	}
	return -1
}

// Value returns the value of signal name at cycle c.
func (t *Trace) Value(c int, name string) (uint64, error) {
	i := t.Column(name)
	if i < 0 {
		return 0, fmt.Errorf("trace has no signal %q", name)
	}
	if c < 0 || c >= len(t.Values) {
		return 0, fmt.Errorf("cycle %d out of range (0..%d)", c, len(t.Values)-1)
	}
	return t.Values[c][i], nil
}

// Append adds the rows of other to t. Both traces must be over the same
// elaboration of the same design: signal ordering, names and widths must all
// agree. The width check matters because two elaborations of "the same"
// module can legally disagree on a bus width (parameter overrides, fault
// rewrites); silently merging such traces would feed the miner columns whose
// bit semantics differ row to row.
func (t *Trace) Append(other *Trace) error {
	if len(t.Signals) != len(other.Signals) {
		return fmt.Errorf("trace signal count mismatch: %d vs %d", len(t.Signals), len(other.Signals))
	}
	for i := range t.Signals {
		if t.Signals[i].Name != other.Signals[i].Name {
			return fmt.Errorf("trace signal mismatch at %d: %s vs %s", i, t.Signals[i].Name, other.Signals[i].Name)
		}
		if t.Signals[i].Width != other.Signals[i].Width {
			return fmt.Errorf("trace signal %s width mismatch: %d vs %d (traces come from differently-elaborated designs)",
				t.Signals[i].Name, t.Signals[i].Width, other.Signals[i].Width)
		}
	}
	t.Values = append(t.Values, other.Values...)
	return nil
}

// Simulator steps an elaborated design cycle by cycle.
type Simulator struct {
	d     *rtl.Design
	vals  rtl.MapEnv
	order []*rtl.Signal
	// inputs are the data inputs (clock excluded), precomputed so Step
	// zeroes them directly instead of scanning every design signal.
	inputs []*rtl.Signal
	// nextSigs/nextBuf are the registers with next-state functions and a
	// persistent evaluation buffer, so the clock edge reuses one slice
	// instead of allocating a map per cycle.
	nextSigs []*rtl.Signal
	nextBuf  []uint64
	// forces pins signals to constant values (stuck-at semantics for fault
	// regression); forced is the deterministic application order.
	forces map[*rtl.Signal]uint64
	forced []*rtl.Signal
	// observers are invoked once per cycle after combinational settling.
	observers []func(env rtl.Env)
	cycle     int
	// Cycles, when set, counts every simulated cycle into a telemetry
	// counter (shared across simulators; a nil counter no-ops).
	Cycles *telemetry.Counter
}

// New creates a simulator in the reset state (all registers zero).
func New(d *rtl.Design) (*Simulator, error) {
	order, err := d.CombOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{d: d, order: order, vals: rtl.MapEnv{}}
	s.inputs = d.Inputs()
	for reg := range d.Next {
		s.nextSigs = append(s.nextSigs, reg)
	}
	sort.Slice(s.nextSigs, func(i, j int) bool { return s.nextSigs[i].Name < s.nextSigs[j].Name })
	s.nextBuf = make([]uint64, len(s.nextSigs))
	s.Reset()
	return s, nil
}

// Design returns the simulated design.
func (s *Simulator) Design() *rtl.Design { return s.d }

// Reset zeroes all state and inputs. Matches the formal engine's initial
// state (all registers zero).
func (s *Simulator) Reset() {
	s.vals = rtl.MapEnv{}
	for _, sig := range s.d.Signals {
		s.vals[sig] = 0
	}
	s.cycle = 0
}

// Observe registers a per-cycle hook, invoked after combinational settling
// with the complete environment for the cycle.
func (s *Simulator) Observe(fn func(env rtl.Env)) {
	s.observers = append(s.observers, fn)
}

// Cycle returns the number of completed cycles since reset.
func (s *Simulator) Cycle() int { return s.cycle }

// Peek returns the current value of a signal.
func (s *Simulator) Peek(name string) (uint64, error) {
	sig := s.d.Signal(name)
	if sig == nil {
		return 0, fmt.Errorf("no signal %q", name)
	}
	return s.vals[sig] & rtl.Mask(sig.Width), nil
}

// Force pins a signal to a constant value (masked to the signal's width) from
// the next settled cycle onward: readers and the recorded trace both see the
// forced value, giving stuck-at semantics for fault regression. The clock
// cannot be forced.
func (s *Simulator) Force(name string, v uint64) error {
	sig := s.d.Signal(name)
	if sig == nil {
		return fmt.Errorf("force targets unknown signal %q", name)
	}
	if sig.Name == s.d.Clock {
		return fmt.Errorf("force targets clock %q", name)
	}
	if s.forces == nil {
		s.forces = make(map[*rtl.Signal]uint64)
	}
	if _, ok := s.forces[sig]; !ok {
		s.forced = append(s.forced, sig)
	}
	s.forces[sig] = v & rtl.Mask(sig.Width)
	return nil
}

// Unforce releases a forced signal; unknown or unforced names are no-ops.
func (s *Simulator) Unforce(name string) {
	sig := s.d.Signal(name)
	if sig == nil {
		return
	}
	if _, ok := s.forces[sig]; !ok {
		return
	}
	delete(s.forces, sig)
	for i, f := range s.forced {
		if f == sig {
			s.forced = append(s.forced[:i], s.forced[i+1:]...)
			break
		}
	}
}

// ClearForces releases all forced signals.
func (s *Simulator) ClearForces() {
	s.forces = nil
	s.forced = nil
}

// Step applies one input vector, settles combinational logic, invokes
// observers, records into trace (if non-nil), and advances the clock.
func (s *Simulator) Step(in InputVec, trace *Trace) error {
	// Zero all data inputs, then apply the vector (unassigned inputs are 0).
	for _, sig := range s.inputs {
		s.vals[sig] = 0
	}
	for name, v := range in {
		sig := s.d.Signal(name)
		if sig == nil {
			return fmt.Errorf("stimulus drives unknown signal %q", name)
		}
		if sig.Kind != rtl.SigInput {
			return fmt.Errorf("stimulus drives non-input signal %q", name)
		}
		if sig.Name == s.d.Clock {
			return fmt.Errorf("stimulus drives clock %q", name)
		}
		s.vals[sig] = v & rtl.Mask(sig.Width)
	}
	if len(s.forces) == 0 {
		// Fast path: no stuck-at overrides, settle in dependency order.
		for _, sig := range s.order {
			s.vals[sig] = rtl.Eval(s.d.Comb[sig], s.vals)
		}
	} else {
		// Pin non-combinational signals (inputs, registers) before settling so
		// downstream logic reads the forced value; combinational signals are
		// pinned in place of their driver during the settle pass.
		for _, sig := range s.forced {
			if _, comb := s.d.Comb[sig]; !comb {
				s.vals[sig] = s.forces[sig]
			}
		}
		for _, sig := range s.order {
			if fv, ok := s.forces[sig]; ok {
				s.vals[sig] = fv
				continue
			}
			s.vals[sig] = rtl.Eval(s.d.Comb[sig], s.vals)
		}
	}
	// Observe and record the settled cycle.
	for _, fn := range s.observers {
		fn(s.vals)
	}
	if trace != nil {
		row := make([]uint64, len(trace.Signals))
		for i, sig := range trace.Signals {
			row[i] = s.vals[sig]
		}
		trace.Values = append(trace.Values, row)
	}
	// Clock edge: latch next state (two-phase via the persistent buffer).
	for i, reg := range s.nextSigs {
		s.nextBuf[i] = rtl.Eval(s.d.Next[reg], s.vals)
	}
	for i, reg := range s.nextSigs {
		s.vals[reg] = s.nextBuf[i]
	}
	s.cycle++
	s.Cycles.Inc()
	return nil
}

// Run resets the simulator and applies the stimulus, returning the trace.
func (s *Simulator) Run(stim Stimulus) (*Trace, error) {
	s.Reset()
	trace := NewTrace(s.d)
	for _, in := range stim {
		if err := s.Step(in, trace); err != nil {
			return nil, err
		}
	}
	return trace, nil
}

// RunAppend applies the stimulus from reset, appending rows to trace.
func (s *Simulator) RunAppend(stim Stimulus, trace *Trace) error {
	s.Reset()
	for _, in := range stim {
		if err := s.Step(in, trace); err != nil {
			return err
		}
	}
	return nil
}

// Simulate is a convenience helper: build a simulator and run the stimulus.
func Simulate(d *rtl.Design, stim Stimulus) (*Trace, error) {
	s, err := New(d)
	if err != nil {
		return nil, err
	}
	return s.Run(stim)
}
