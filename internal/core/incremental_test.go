package core

import (
	"context"

	"testing"

	"goldmine/internal/designs"
	"goldmine/internal/sim"
)

// mineIncr mines a benchmark with the incremental session pool on or off and
// returns the canonical artifact string.
func mineIncr(t *testing.T, name string, incremental, satOnly bool, workers, maxIter int) string {
	t.Helper()
	b, err := designs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Design()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Window = b.Window
	cfg.Workers = workers
	cfg.Incremental = incremental
	if satOnly {
		// Disqualify the explicit engine so the SAT paths (the ones sessions
		// change) decide every check.
		cfg.MC.MaxStateBits = 0
	}
	if maxIter > 0 {
		cfg.MaxIterations = maxIter
	}
	eng, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seed sim.Stimulus
	if b.Directed != nil {
		seed = b.Directed()
	}
	res, err := eng.MineAll(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return res.Canonical()
}

// TestIncrementalMatchesFresh is the engine-level equivalence contract of the
// incremental backend: session-pooled and stateless checking produce
// byte-identical mining artifacts (verdicts, counterexample stimuli,
// iteration stats), with the SAT engines forced on so the persistent solver
// states actually decide the checks.
func TestIncrementalMatchesFresh(t *testing.T) {
	cases := []struct {
		design  string
		satOnly bool
		workers int
		maxIter int
	}{
		{"arbiter2", true, 1, 0},
		{"arbiter2", false, 1, 0},
		{"arbiter2", true, 4, 0},
		{"fetch", true, 1, 3},
	}
	for _, tc := range cases {
		fresh := mineIncr(t, tc.design, false, tc.satOnly, tc.workers, tc.maxIter)
		incr := mineIncr(t, tc.design, true, tc.satOnly, tc.workers, tc.maxIter)
		if fresh != incr {
			t.Errorf("%s (satOnly=%v j=%d): incremental and fresh artifacts differ:\nfresh:\n%s\nincremental:\n%s",
				tc.design, tc.satOnly, tc.workers, fresh, incr)
		}
	}
}
