package core

import (
	"context"
	"strings"
	"testing"

	"goldmine/internal/designs"
	"goldmine/internal/sim"
	"goldmine/internal/stimgen"
)

// mineCompiled mines a benchmark with the compiled simulator toggled and
// returns the canonical artifact string.
func mineCompiled(t *testing.T, name string, compiled bool, workers, maxIter int) string {
	t.Helper()
	b, err := designs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Design()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Window = b.Window
	cfg.Workers = workers
	cfg.CompiledSim = compiled
	if maxIter > 0 {
		cfg.MaxIterations = maxIter
	}
	eng, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if compiled && eng.compiled == nil {
		t.Fatal("CompiledSim set but engine has no compiled-program holder")
	}
	if !compiled && eng.compiled != nil {
		t.Fatal("CompiledSim unset but engine holds a compiled program")
	}
	var seed sim.Stimulus
	if b.Directed != nil {
		seed = b.Directed()
	}
	res, err := eng.MineAll(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return res.Canonical()
}

// TestCompiledMiningCanonical is the compiled-simulator determinism contract:
// the mining artifacts must be byte-identical whether seed and counterexample
// traces come from the instruction-tape machine or the tree-walking
// interpreter, sequentially and in parallel (forked engines share one
// compiled program).
func TestCompiledMiningCanonical(t *testing.T) {
	cases := []struct {
		design  string
		maxIter int
	}{
		{"arbiter2", 0},
		{"arbiter4", 6},
		{"fetch", 3},
		{"b01", 4},
	}
	for _, tc := range cases {
		interp := mineCompiled(t, tc.design, false, 1, tc.maxIter)
		for _, workers := range []int{1, 4} {
			comp := mineCompiled(t, tc.design, true, workers, tc.maxIter)
			if comp != interp {
				t.Errorf("%s -j%d: compiled and interpreter artifacts differ:\ninterpreter:\n%s\ncompiled:\n%s",
					tc.design, workers, interp, comp)
			}
		}
		if !strings.Contains(interp, "output") {
			t.Errorf("%s: canonical form looks empty:\n%s", tc.design, interp)
		}
	}
}

// TestCompiledFallback ensures a compile failure silently falls back to the
// interpreter rather than corrupting mining: a nil compiled holder (the
// CompiledSim=false path) and the compiled path must both serve Simulate.
func TestCompiledSimulateMatchesInterpreter(t *testing.T) {
	b, err := designs.Get("b09")
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Design()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Window = b.Window
	eng, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stim := stimgen.Random(d, 300, 9, 2)
	got, err := eng.simulate(context.Background(), stim)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.sim.Run(stim)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles() != want.Cycles() {
		t.Fatalf("cycle count %d vs %d", got.Cycles(), want.Cycles())
	}
	for c := range want.Values {
		for j := range want.Values[c] {
			if got.Values[c][j] != want.Values[c][j] {
				t.Fatalf("cycle %d col %d (%s): compiled %d interpreter %d",
					c, j, want.Signals[j].Name, got.Values[c][j], want.Values[c][j])
			}
		}
	}
}
