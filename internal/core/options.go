package core

import (
	"fmt"
	"time"

	"goldmine/internal/mc"
	"goldmine/internal/rtl"
	"goldmine/internal/sched"
	"goldmine/internal/telemetry"
)

// Options is a validated builder over Config: it starts from DefaultConfig,
// applies each setter, and Build rejects out-of-range or mutually
// contradictory settings with one combined error instead of letting a bad
// knob surface as a confusing mining result. It unifies the three previously
// separate knob surfaces — Config, mc.Options, and the worker counts — behind
// one chainable API; the goldmine CLI flags map 1:1 onto these setters.
//
//	cfg, err := core.NewOptions().
//		Window(2).
//		Workers(8).
//		CheckTimeout(time.Second).
//		Build()
//
// The zero-cost escape hatch remains: Config literals are still accepted by
// NewEngine for callers that need a knob the builder does not expose.
type Options struct {
	cfg Config
	tel *telemetry.Tracer
}

// NewOptions starts a builder from DefaultConfig.
func NewOptions() *Options {
	return &Options{cfg: DefaultConfig()}
}

// Window sets the mining window length w (Section 2.1 of the paper).
func (o *Options) Window(w int) *Options { o.cfg.Window = w; return o }

// MaxIterations bounds refinement rounds per output bit (0 = default 64).
func (o *Options) MaxIterations(n int) *Options { o.cfg.MaxIterations = n; return o }

// MaxChecks bounds the formal checks per output bit (0 = default 4000).
func (o *Options) MaxChecks(n int) *Options { o.cfg.MaxChecks = n; return o }

// Workers sets the parallelism degree of MineAll/MineTargets
// (<= 1 mines sequentially; artifacts are identical for any value).
func (o *Options) Workers(n int) *Options { o.cfg.Workers = n; return o }

// Batched enables the Section 7 batched-check optimization.
func (o *Options) Batched(b bool) *Options { o.cfg.BatchedChecks = b; return o }

// FullCtxTrace adds every counterexample window to the dataset instead of
// only the violating one.
func (o *Options) FullCtxTrace(b bool) *Options { o.cfg.AddFullCtxTrace = b; return o }

// SignalCone falls back to signal-granular cone-of-influence analysis.
func (o *Options) SignalCone(b bool) *Options { o.cfg.SignalCone = b; return o }

// Incremental toggles the persistent SAT session pool.
func (o *Options) Incremental(b bool) *Options { o.cfg.Incremental = b; return o }

// Compiled toggles the compiled instruction-tape simulator for seed and
// counterexample simulation (on by default; traces and mining artifacts are
// identical either way — the interpreter remains the reference oracle).
func (o *Options) Compiled(b bool) *Options { o.cfg.CompiledSim = b; return o }

// CoI toggles cone-of-influence CNF reduction in the model checker.
func (o *Options) CoI(b bool) *Options { o.cfg.MC.CoI = b; return o }

// Timeout bounds one whole MineOutput call by wall clock (0 = none).
func (o *Options) Timeout(d time.Duration) *Options { o.cfg.Timeout = d; return o }

// IterationTimeout bounds a single refinement iteration (0 = none).
func (o *Options) IterationTimeout(d time.Duration) *Options { o.cfg.IterationTimeout = d; return o }

// CheckTimeout bounds one formal check by wall clock (0 = none).
func (o *Options) CheckTimeout(d time.Duration) *Options { o.cfg.MC.CheckTimeout = d; return o }

// MaxWork bounds the deterministic work units of one formal check (0 = none).
func (o *Options) MaxWork(n int64) *Options { o.cfg.MC.MaxWork = n; return o }

// BMCDepth bounds SAT bounded model checking.
func (o *Options) BMCDepth(n int) *Options { o.cfg.MC.MaxBMCDepth = n; return o }

// Induction bounds the k of k-induction.
func (o *Options) Induction(n int) *Options { o.cfg.MC.MaxInduction = n; return o }

// Portfolio sets the racing SAT portfolio width for predicted-hard
// incremental checks (0 or 1 disables racing; artifacts are identical either
// way, only wall-clock changes).
func (o *Options) Portfolio(n int) *Options { o.cfg.MC.Portfolio = n; return o }

// MC replaces the full model-checker option block for knobs without a
// dedicated setter (explicit-engine bit limits).
func (o *Options) MC(opts mc.Options) *Options { o.cfg.MC = opts; return o }

// Cache supplies a shared verdict cache (nil keeps a private one).
func (o *Options) Cache(c *sched.VerdictCache) *Options { o.cfg.Cache = c; return o }

// Telemetry wires the engine built by Engine into a tracer (nil = disabled).
// Recorded here rather than in Config so the tracer never enters the
// structures whose rendering feeds cache-key fingerprints.
func (o *Options) Telemetry(tr *telemetry.Tracer) *Options { o.tel = tr; return o }

// Build validates the accumulated settings and returns the Config. All
// violations are reported at once.
func (o *Options) Build() (Config, error) {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }
	c := o.cfg
	if c.Window < 0 {
		bad("window must be >= 0 (got %d)", c.Window)
	}
	if c.MaxIterations < 0 {
		bad("max iterations must be >= 0 (got %d)", c.MaxIterations)
	}
	if c.MaxChecks < 0 {
		bad("max checks must be >= 0 (got %d)", c.MaxChecks)
	}
	if c.Workers < 0 {
		bad("workers must be >= 0 (got %d)", c.Workers)
	}
	if c.Timeout < 0 || c.IterationTimeout < 0 || c.MC.CheckTimeout < 0 {
		bad("timeouts must be >= 0")
	}
	if c.MC.MaxWork < 0 {
		bad("max work must be >= 0 (got %d)", c.MC.MaxWork)
	}
	if c.MC.MaxBMCDepth < 1 {
		bad("BMC depth must be >= 1 (got %d)", c.MC.MaxBMCDepth)
	}
	if c.MC.MaxInduction < 0 {
		bad("induction bound must be >= 0 (got %d)", c.MC.MaxInduction)
	}
	if c.MC.Portfolio < 0 {
		bad("portfolio width must be >= 0 (got %d)", c.MC.Portfolio)
	}
	// Contradictions between the budget layers: an inner budget wider than an
	// outer one means the inner bound can never fire — almost certainly a
	// mistaken unit, so reject instead of silently ignoring the knob.
	if c.Timeout > 0 && c.IterationTimeout > c.Timeout {
		bad("iteration timeout %v exceeds overall timeout %v", c.IterationTimeout, c.Timeout)
	}
	if c.IterationTimeout > 0 && c.MC.CheckTimeout > c.IterationTimeout {
		bad("check timeout %v exceeds iteration timeout %v", c.MC.CheckTimeout, c.IterationTimeout)
	}
	if c.Timeout > 0 && c.MC.CheckTimeout > c.Timeout {
		bad("check timeout %v exceeds overall timeout %v", c.MC.CheckTimeout, c.Timeout)
	}
	if len(errs) > 0 {
		return Config{}, fmt.Errorf("core options: %s", joinErrs(errs))
	}
	return c, nil
}

func joinErrs(errs []string) string {
	s := errs[0]
	for _, e := range errs[1:] {
		s += "; " + e
	}
	return s
}

// Engine validates the settings and builds an engine for the design,
// applying the Telemetry wiring when one was supplied.
func (o *Options) Engine(d *rtl.Design) (*Engine, error) {
	cfg, err := o.Build()
	if err != nil {
		return nil, err
	}
	e, err := NewEngine(d, cfg)
	if err != nil {
		return nil, err
	}
	if o.tel != nil {
		e.SetTelemetry(o.tel)
	}
	return e, nil
}
