package core

import (
	"context"

	"testing"

	"goldmine/internal/sim"
)

func TestBatchedChecksConverges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchedChecks = true
	e := mustEngine(t, arbiterSrc, cfg)
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("batched mode did not converge\n%s", res.Tree)
	}
	if cov := res.InputSpaceCoverage(); cov < 0.999 {
		t.Errorf("batched coverage %f", cov)
	}
}

func TestBatchedMatchesImmediateVerdicts(t *testing.T) {
	// Both modes must converge and prove logically equivalent suites: every
	// proved assertion from one mode must hold in the other mode's run
	// (cross-validated through the model checker).
	imm := mustEngine(t, arbiterSrc, DefaultConfig())
	resImm, err := imm.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	cfgB := DefaultConfig()
	cfgB.BatchedChecks = true
	bat := mustEngine(t, arbiterSrc, cfgB)
	resBat, err := bat.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if !resImm.Converged || !resBat.Converged {
		t.Fatal("both modes must converge")
	}
	// Both reach full coverage closure of the same output.
	if resImm.InputSpaceCoverage() < 0.999 || resBat.InputSpaceCoverage() < 0.999 {
		t.Error("coverage closure differs between modes")
	}
}

func TestSignalConeStillConverges(t *testing.T) {
	// On a narrow design the signal-level cone equals the bit-level one.
	cfg := DefaultConfig()
	cfg.SignalCone = true
	e := mustEngine(t, arbiterSrc, cfg)
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("signal-cone mode did not converge on the arbiter")
	}
}

func TestSignalConeWidensFeatureSpace(t *testing.T) {
	// On a wide-bus design the signal-level cone admits many more features.
	src := `
module m(input clk, input [7:0] bus, input en, output reg y);
  always @(posedge clk) y <= en & bus[3];
endmodule`
	bitCfg := DefaultConfig()
	eBit := mustEngine(t, src, bitCfg)
	resBit, err := eBit.MineOutputByName(context.Background(), "y", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sigCfg := DefaultConfig()
	sigCfg.SignalCone = true
	eSig := mustEngine(t, src, sigCfg)
	resSig, err := eSig.MineOutputByName(context.Background(), "y", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	nb := resBit.Tree.DS.NumVars()
	ns := resSig.Tree.DS.NumVars()
	if ns <= nb {
		t.Errorf("signal cone features %d should exceed bit cone %d", ns, nb)
	}
	if !resBit.Converged {
		t.Error("bit-cone mining should converge")
	}
}

func TestMaxChecksCapsRefinement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxChecks = 2
	e := mustEngine(t, arbiterSrc, cfg)
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.Proved) + len(res.Failed)
	if total > 2 {
		t.Errorf("checks %d exceed MaxChecks=2", total)
	}
	if res.Converged {
		t.Error("two checks cannot converge the arbiter from zero seed")
	}
}

func TestMaxIterationsCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxIterations = 1
	e := mustEngine(t, arbiterSrc, cfg)
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) > 1 {
		t.Errorf("iterations %d exceed cap", len(res.Iterations))
	}
}

func TestWindowZeroOnSequentialDesign(t *testing.T) {
	// Window 0 on a registered output: consequent offset 1, single-cycle
	// antecedents; should still converge via state extension.
	cfg := DefaultConfig()
	cfg.Window = 0
	e := mustEngine(t, arbiterSrc, cfg)
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("window-0 mining did not converge\n%s", res.Tree)
	}
	for _, rec := range res.Proved {
		if rec.Assertion.Consequent.Offset != 1 {
			t.Errorf("window-0 consequent offset %d want 1", rec.Assertion.Consequent.Offset)
		}
	}
}

func TestSuiteAggregation(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineAll(context.Background(), paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	suite := res.Suite()
	if len(suite) == 0 || len(suite[0]) != len(paperSeed()) {
		t.Error("suite must start with the seed")
	}
	var total sim.Stimulus
	for _, s := range suite {
		total = append(total, s...)
	}
	if len(total) == len(paperSeed()) {
		t.Error("suite should contain ctx patterns beyond the seed")
	}
}
