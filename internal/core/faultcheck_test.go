package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"goldmine/internal/assertion"
	"goldmine/internal/mc"
	"goldmine/internal/sim"
)

// hostileChecker wraps the real checker and injects one fault per configured
// call number: a panic, a sleep that outlives the iteration deadline, or a
// falsified verdict carrying a malformed counterexample. All other calls
// delegate, so mining can make real progress around the faults.
type hostileChecker struct {
	real *mc.Checker

	calls     int
	panicOn   int // call number that panics (0 = never)
	sleepOn   int // call number that blocks until ctx is done
	badCtxOn  int // call number returning a malformed counterexample
	errOn     int // call number returning a hard error
	slept     bool
	sawCancel bool
}

func (h *hostileChecker) CheckCtx(ctx context.Context, a *assertion.Assertion) (*mc.Result, error) {
	h.calls++
	switch h.calls {
	case h.panicOn:
		panic("hostile: injected checker panic")
	case h.sleepOn:
		// Sleep past any deadline; only the context wakes us. A missing
		// deadline would hang the test, which is exactly the regression this
		// harness guards against.
		select {
		case <-ctx.Done():
			h.slept = true
			return &mc.Result{Status: mc.StatusUnknown, Method: "hostile-sleep",
				Degraded: true, Cause: mc.ErrBudgetExceeded}, nil
		case <-time.After(30 * time.Second):
			return nil, errors.New("hostile: sleep was never interrupted")
		}
	case h.badCtxOn:
		// A "counterexample" with no cycles: Ctx_simulation cannot find a
		// violating window in it.
		return &mc.Result{Status: mc.StatusFalsified, Method: "hostile-badctx",
			Ctx: sim.Stimulus{}}, nil
	case h.errOn:
		return nil, errors.New("hostile: injected hard error")
	}
	if ctx.Err() != nil {
		h.sawCancel = true
	}
	return h.real.CheckCtx(ctx, a)
}

// TestFaultInjectionPartialResults is the acceptance scenario: a checker that
// panics on one assertion, sleeps past the deadline on another, and returns a
// malformed trace on a third. MineOutput must still return proven assertions
// and accumulated ctx stimuli, with Converged=false, StuckLeafs >= 1, and
// structured EngineError records — no crash, no hang.
func TestFaultInjectionPartialResults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IterationTimeout = 100 * time.Millisecond
	e := mustEngine(t, arbiterSrc, cfg)
	h := &hostileChecker{real: e.Checker, panicOn: 2, sleepOn: 3, badCtxOn: 6}
	e.SetChecker(h)

	done := make(chan struct{})
	var res *OutputResult
	var err error
	go func() {
		defer close(done)
		res, err = e.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("fault-injected mining hung")
	}
	if err != nil {
		t.Fatalf("fault-injected mining returned hard error: %v", err)
	}
	if h.calls < 6 {
		t.Fatalf("only %d checks ran; faults aborted the loop", h.calls)
	}
	if !h.slept {
		t.Fatal("sleeping check was never woken by a deadline")
	}
	if len(res.Proved) == 0 {
		t.Error("no proven assertions survived the faults")
	}
	if len(res.Ctx) == 0 {
		t.Error("no counterexample stimuli accumulated")
	}
	if res.Converged {
		t.Error("mining claims convergence despite stuck leaves")
	}
	if res.StuckLeafs < 1 {
		t.Errorf("StuckLeafs = %d, want >= 1", res.StuckLeafs)
	}
	if len(res.Errors) < 2 {
		t.Fatalf("EngineError records = %d, want >= 2 (panic, bad ctx)", len(res.Errors))
	}
	stages := map[string]bool{}
	for _, ee := range res.Errors {
		stages[ee.Stage] = true
		if ee.Output != "gnt0" {
			t.Errorf("EngineError on wrong output: %+v", ee)
		}
		if ee.Cause == nil {
			t.Errorf("EngineError without cause: %+v", ee)
		}
	}
	if !stages[StageCheck] {
		t.Error("no StageCheck fault recorded for the panic")
	}
	if !stages[StageCtxSim] && !stages[StageDataset] {
		t.Error("malformed counterexample produced no ctx-sim/dataset fault")
	}
	// The panic must surface as ErrEngineInternal with the panic text.
	foundPanic := false
	for _, ee := range res.Errors {
		if errors.Is(ee.Cause, mc.ErrEngineInternal) && strings.Contains(ee.Error(), "injected checker panic") {
			foundPanic = true
		}
	}
	if !foundPanic {
		t.Error("injected panic not wrapped as ErrEngineInternal")
	}
	if len(res.Unknown) < 1 {
		t.Errorf("Unknown records = %d, want >= 1", len(res.Unknown))
	}
	// Fault records must not masquerade as proved.
	for _, rec := range res.Unknown {
		if rec.Status != mc.StatusUnknown {
			t.Errorf("unknown record carries status %v", rec.Status)
		}
	}
	// Proved assertions must still hold on the real checker.
	for _, rec := range res.Proved {
		v, cerr := e.Checker.Check(rec.Assertion)
		if cerr != nil {
			t.Fatal(cerr)
		}
		if v.Status == mc.StatusFalsified {
			t.Errorf("fault run proved a false assertion: %s", rec.Assertion)
		}
	}
}

// TestHardErrorIsolated: a checker returning a hard Go error (not a panic)
// is isolated the same way — recorded, leaf stuck, loop continues.
func TestHardErrorIsolated(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	h := &hostileChecker{real: e.Checker, errOn: 2}
	e.SetChecker(h)
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatalf("hard checker error escaped the barrier: %v", err)
	}
	if len(res.Errors) != 1 || res.Errors[0].Stage != StageCheck {
		t.Fatalf("errors = %+v, want one StageCheck fault", res.Errors)
	}
	if !errors.Is(res.Errors[0].Cause, mc.ErrEngineInternal) {
		t.Errorf("cause = %v, want ErrEngineInternal", res.Errors[0].Cause)
	}
	if res.StuckLeafs < 1 {
		t.Errorf("StuckLeafs = %d, want >= 1", res.StuckLeafs)
	}
	if len(res.Proved) == 0 {
		t.Error("no proofs survived a single hard error")
	}
}

// TestOverallDeadlineFlushesPartial: a checker that always sleeps plus an
// overall timeout must yield a prompt Interrupted partial result, not a hang
// or an error.
func TestOverallDeadlineFlushesPartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Timeout = 200 * time.Millisecond
	e := mustEngine(t, arbiterSrc, cfg)
	e.SetChecker(checkerFunc(func(ctx context.Context, a *assertion.Assertion) (*mc.Result, error) {
		<-ctx.Done()
		return &mc.Result{Status: mc.StatusUnknown, Method: "sleeper",
			Degraded: true, Cause: mc.ErrBudgetExceeded}, nil
	}))
	start := time.Now()
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("overall deadline ignored: ran %v", el)
	}
	if !res.Interrupted {
		t.Error("deadline expiry not reported as Interrupted")
	}
	if res.Converged {
		t.Error("interrupted run claims convergence")
	}
}

// checkerFunc adapts a function to FormalChecker.
type checkerFunc func(ctx context.Context, a *assertion.Assertion) (*mc.Result, error)

func (f checkerFunc) CheckCtx(ctx context.Context, a *assertion.Assertion) (*mc.Result, error) {
	return f(ctx, a)
}

// TestMineAllCancelledContext: cancelling the context stops MineAll between
// outputs with a partial, Interrupted result.
func TestMineAllCancelledContext(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.MineAll(ctx, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Error("cancelled MineAll not marked Interrupted")
	}
	if len(res.Outputs) != 0 {
		t.Errorf("pre-cancelled context still mined %d outputs", len(res.Outputs))
	}
}

// TestPerCheckBudgetMarksLeavesStuck: a per-check budget too small for any
// verdict parks every leaf as stuck (no livelock, no convergence claim), and
// the Unknown records carry the budget cause.
func TestPerCheckBudgetMarksLeavesStuck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MC.MaxStateBits = 0 // force SAT
	cfg.MC.MaxWork = 1
	e := mustEngine(t, arbiterSrc, cfg)
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("starved mining claims convergence")
	}
	if res.StuckLeafs < 1 {
		t.Errorf("StuckLeafs = %d, want >= 1", res.StuckLeafs)
	}
	if len(res.Unknown) < 1 {
		t.Fatalf("no Unknown records under starvation")
	}
	for _, rec := range res.Unknown {
		if rec.Err == nil || !mc.IsBudget(rec.Err) {
			t.Errorf("unknown record cause = %v, want budget error", rec.Err)
		}
	}
	// Starvation must terminate quickly: stuck leaves are never retried.
	if len(res.Iterations) > 2 {
		t.Errorf("starved mining looped %d iterations", len(res.Iterations))
	}
}
