package core

import (
	"context"

	"math/rand"
	"testing"

	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

const arbiterSrc = `
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;
  always @(posedge clk)
    if (rst) begin gnt0 <= 0; gnt1 <= 0; end
    else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule`

func mustEngine(t *testing.T, src string, cfg Config) *Engine {
	t.Helper()
	d, err := rtl.ElaborateSource(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// paperSeed is the directed test of Figure 7.
func paperSeed() sim.Stimulus {
	return sim.Stimulus{
		{"rst": 1},
		{"req0": 1},
		{"req0": 1, "req1": 1},
		{"req1": 1},
		{"req0": 1, "req1": 1},
		{},
	}
}

func TestArbiterConvergence(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("gnt0 mining did not converge: stuck=%d\n%s", res.StuckLeafs, res.Tree)
	}
	if len(res.Proved) == 0 {
		t.Fatal("no proved assertions")
	}
	if len(res.Ctx) == 0 {
		t.Fatal("expected counterexamples during refinement")
	}
	// Every proved assertion must involve the output as consequent.
	for _, rec := range res.Proved {
		if rec.Assertion.Consequent.Signal != "gnt0" {
			t.Errorf("assertion on wrong signal: %s", rec.Assertion)
		}
	}
}

func TestArbiterZeroSeed(t *testing.T) {
	// Section 7.2: start from no patterns; the first candidate is
	// "gnt0 always 0", which is falsified, and refinement proceeds.
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("zero-seed mining did not converge\n%s", res.Tree)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	first := res.Iterations[0]
	if first.Candidates != 1 {
		t.Errorf("zero-seed first iteration candidates %d want 1", first.Candidates)
	}
	if len(res.Ctx) == 0 {
		t.Fatal("zero seed must generate ctx patterns")
	}
}

func TestMonotonicCoverage(t *testing.T) {
	// The paper: coverage increases monotonically with iterations.
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, st := range res.Iterations {
		if st.InputSpaceCoverage < prev {
			t.Fatalf("coverage decreased: %f -> %f at iteration %d",
				prev, st.InputSpaceCoverage, st.Iteration)
		}
		prev = st.InputSpaceCoverage
	}
}

func TestInputSpaceCoverageClosesTo100(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	// At convergence the leaves partition the (windowed) input space, so the
	// proved-assertion fractions must sum to 1 (coverage closure).
	if cov := res.InputSpaceCoverage(); cov < 0.999 {
		t.Errorf("converged input-space coverage %f want 1.0", cov)
	}
}

func TestProvedAssertionsHoldOnRandomSimulation(t *testing.T) {
	// Theorem-2 flavored property check: proven assertions can never be
	// violated by any simulation run.
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	d := e.D
	rng := rand.New(rand.NewSource(99))
	var stim sim.Stimulus
	stim = append(stim, sim.InputVec{"rst": 1})
	for i := 0; i < 300; i++ {
		stim = append(stim, sim.InputVec{
			"rst":  uint64(rng.Intn(8) / 7), // occasional reset
			"req0": uint64(rng.Intn(2)),
			"req1": uint64(rng.Intn(2)),
		})
	}
	tr, err := sim.Simulate(d, stim)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Proved {
		a := rec.Assertion
		for p := 0; p+a.Consequent.Offset < tr.Cycles(); p++ {
			match := true
			for _, prop := range a.Antecedent {
				v, _ := tr.Value(p+prop.Offset, prop.Signal)
				if prop.Bit >= 0 {
					v = (v >> uint(prop.Bit)) & 1
				}
				if v != prop.Value {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			cv, _ := tr.Value(p+a.Consequent.Offset, a.Consequent.Signal)
			if a.Consequent.Bit >= 0 {
				cv = (cv >> uint(a.Consequent.Bit)) & 1
			}
			if cv != a.Consequent.Value {
				t.Fatalf("proved assertion violated at cycle %d: %s", p, a)
			}
		}
	}
}

func TestCtxPatternsAreReplayable(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ctx := range res.Ctx {
		if len(ctx) == 0 {
			t.Errorf("ctx %d is empty", i)
		}
		if _, err := sim.Simulate(e.D, ctx); err != nil {
			t.Errorf("ctx %d does not replay: %v", i, err)
		}
	}
}

func TestMineAllOutputs(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineAll(context.Background(), paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 { // gnt0, gnt1
		t.Fatalf("outputs mined: %d", len(res.Outputs))
	}
	if !res.Converged() {
		t.Error("arbiter should fully converge")
	}
	suite := res.Suite()
	if len(suite) < 2 {
		t.Errorf("suite size %d", len(suite))
	}
	if len(res.Assertions()) == 0 {
		t.Error("no assertions")
	}
}

func TestCombinationalMining(t *testing.T) {
	src := `
module cex(input a, b, c, output z);
  assign z = (a & b) | (~a & c);
endmodule`
	e := mustEngine(t, src, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "z", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("combinational mining did not converge\n%s", res.Tree)
	}
	// Consequent offset must be 0 for a combinational design.
	for _, rec := range res.Proved {
		if rec.Assertion.Consequent.Offset != 0 {
			t.Errorf("comb assertion has temporal consequent: %s", rec.Assertion)
		}
	}
	if cov := res.InputSpaceCoverage(); cov < 0.999 {
		t.Errorf("coverage %f", cov)
	}
}

func TestFullCtxTraceMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AddFullCtxTrace = true
	e := mustEngine(t, arbiterSrc, cfg)
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("full-trace mode did not converge\n%s", res.Tree)
	}
}

func TestWindowExtensionHappens(t *testing.T) {
	// The paper's third iteration requires gnt0(t-1): the dataset must end up
	// extended for the arbiter with window 1.
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	// Some proved assertion should mention gnt0 in its antecedent (state
	// variable admitted by window extension).
	found := false
	for _, rec := range res.Proved {
		for _, p := range rec.Assertion.Antecedent {
			if p.Signal == "gnt0" {
				found = true
			}
		}
	}
	if !found {
		t.Log("note: no proved assertion used gnt0 state (acceptable if tree resolved via inputs alone)")
	}
}

func TestMineOutputErrors(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	if _, err := e.MineOutputByName(context.Background(), "nosuch", 0, nil); err == nil {
		t.Error("unknown output should error")
	}
	if _, err := e.MineOutputByName(context.Background(), "req0", 0, nil); err == nil {
		t.Error("input as output should error")
	}
}

func TestIterationStatsRecorded(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Iterations {
		if st.Iteration != i+1 {
			t.Errorf("iteration numbering: %d at %d", st.Iteration, i)
		}
		if st.TreeNodes < st.TreeLeaves {
			t.Errorf("nodes %d < leaves %d", st.TreeNodes, st.TreeLeaves)
		}
	}
}
