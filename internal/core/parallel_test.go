package core

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"goldmine/internal/assertion"
	"goldmine/internal/designs"
	"goldmine/internal/mc"
	"goldmine/internal/sched"
	"goldmine/internal/sim"
)

// mineBench mines every output bit of a benchmark design at the given worker
// count and returns the run's canonical artifact string.
func mineBench(t *testing.T, name string, workers, maxIter int, batched bool) (*Result, string) {
	t.Helper()
	b, err := designs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Design()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Window = b.Window
	cfg.Workers = workers
	cfg.BatchedChecks = batched
	if maxIter > 0 {
		cfg.MaxIterations = maxIter
	}
	eng, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seed sim.Stimulus
	if b.Directed != nil {
		seed = b.Directed()
	}
	res, err := eng.MineAll(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Canonical()
}

// TestParallelDeterminism is the -j 1 ≡ -j N contract: the canonical mining
// artifacts must be byte-identical for any worker count, in both immediate
// and batched-check modes.
func TestParallelDeterminism(t *testing.T) {
	cases := []struct {
		design  string
		maxIter int
		batched bool
	}{
		{"arbiter2", 0, false},
		{"arbiter2", 0, true},
		{"arbiter4", 6, false},
		{"fetch", 3, true},
	}
	for _, tc := range cases {
		seqRes, seq := mineBench(t, tc.design, 1, tc.maxIter, tc.batched)
		parRes, par := mineBench(t, tc.design, 4, tc.maxIter, tc.batched)
		if seq != par {
			t.Errorf("%s (batched=%v): -j1 and -j4 artifacts differ:\n-j1:\n%s\n-j4:\n%s",
				tc.design, tc.batched, seq, par)
		}
		if seqRes.Sched == nil || parRes.Sched == nil {
			t.Fatalf("%s: missing Sched telemetry", tc.design)
		}
		if seqRes.Sched.Workers != 1 {
			t.Errorf("%s: sequential Sched.Workers = %d", tc.design, seqRes.Sched.Workers)
		}
		if parRes.Sched.Workers < 2 {
			t.Errorf("%s: parallel Sched.Workers = %d, want >= 2", tc.design, parRes.Sched.Workers)
		}
		if !strings.Contains(seq, "output") {
			t.Errorf("%s: canonical form looks empty:\n%s", tc.design, seq)
		}
	}
}

// TestCacheHitsOnRemine re-mines the same engine: every decisive verdict of
// the first pass must be served from the cache on the second, with identical
// artifacts.
func TestCacheHitsOnRemine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	e := mustEngine(t, arbiterSrc, cfg)
	first, err := e.MineAll(context.Background(), paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.MineAll(context.Background(), paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if second.Sched == nil || second.Sched.CacheHits == 0 {
		t.Fatalf("re-mine scored no cache hits: %+v", second.Sched)
	}
	if second.Sched.CacheMisses != 0 {
		t.Errorf("re-mine missed %d times; every decisive verdict should be cached", second.Sched.CacheMisses)
	}
	if first.Canonical() != second.Canonical() {
		t.Error("cached verdicts changed the mining artifacts")
	}
	hits := 0
	for _, o := range second.Outputs {
		hits += o.CacheHits
	}
	if hits == 0 {
		t.Error("per-output CacheHits counters all zero")
	}
}

// TestCacheSharedAcrossEngines shares one verdict cache between two engines
// over the same design: the second engine mines entirely from cache.
func TestCacheSharedAcrossEngines(t *testing.T) {
	cache := sched.NewVerdictCache()
	cfg := DefaultConfig()
	cfg.Cache = cache
	e1 := mustEngine(t, arbiterSrc, cfg)
	r1, err := e1.MineAll(context.Background(), paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	e2 := mustEngine(t, arbiterSrc, cfg)
	r2, err := e2.MineAll(context.Background(), paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Sched.CacheHits == 0 {
		t.Fatalf("second engine scored no cache hits: %+v", r2.Sched)
	}
	if r1.Canonical() != r2.Canonical() {
		t.Error("shared cache changed the artifacts across engines")
	}
}

// TestCacheKeyIncludesOptions proves that checkers with different budgets do
// not share verdicts even through a shared cache.
func TestCacheKeyIncludesOptions(t *testing.T) {
	cache := sched.NewVerdictCache()
	cfg := DefaultConfig()
	cfg.Cache = cache
	e1 := mustEngine(t, arbiterSrc, cfg)
	if _, err := e1.MineAll(context.Background(), paperSeed()); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.MC.MaxBMCDepth++
	e2 := mustEngine(t, arbiterSrc, cfg2)
	r2, err := e2.MineAll(context.Background(), paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Sched.CacheHits != 0 {
		t.Fatalf("engines with different MC options shared %d verdicts", r2.Sched.CacheHits)
	}
}

// TestWorkerPanicIsolation corrupts the engine so mining panics outside every
// per-check barrier; the whole-job barrier must degrade the output to a
// StageWorker fault instead of crashing the run.
func TestWorkerPanicIsolation(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	e.sim = nil // any seeded mining run now nil-derefs before the first check
	res, err := e.MineTargets(context.Background(), e.Targets(), paperSeed())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) == 0 {
		t.Fatal("no outputs returned")
	}
	for _, o := range res.Outputs {
		if len(o.Errors) != 1 || o.Errors[0].Stage != StageWorker {
			t.Fatalf("output %s: errors = %v, want one %s fault", o.Output, o.Errors, StageWorker)
		}
		if o.Converged {
			t.Errorf("output %s: faulted job reported convergence", o.Output)
		}
	}
}

// cancelChecker cancels a shared context after n checks, then delegates.
type cancelChecker struct {
	real   FormalChecker
	cancel context.CancelFunc
	after  int64
	calls  int64
}

func (c *cancelChecker) CheckCtx(ctx context.Context, a *assertion.Assertion) (*mc.Result, error) {
	if atomic.AddInt64(&c.calls, 1) == c.after {
		c.cancel()
	}
	return c.real.CheckCtx(ctx, a)
}

// TestParallelCancellationDrains cancels mid-run with workers in flight: the
// pool must drain cleanly, keep every partial result, and mark the run
// interrupted.
func TestParallelCancellationDrains(t *testing.T) {
	b, err := designs.Get("arbiter4")
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Design()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Window = b.Window
	cfg.Workers = 4
	eng, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng.SetChecker(&cancelChecker{real: eng.Checker, cancel: cancel, after: 5})
	res, err := eng.MineTargets(ctx, eng.Targets(), b.Directed())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("run not marked interrupted")
	}
	for _, o := range res.Outputs {
		if o.Converged && o.Interrupted {
			t.Errorf("output %s: both converged and interrupted", o.Output)
		}
	}
}
