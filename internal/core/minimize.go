package core

import (
	"fmt"

	"goldmine/internal/assertion"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// MinimizeCtx shrinks a counterexample stimulus while preserving the
// violation of the given assertion: it drops leading cycles (the violation
// window must stay at the end) and then zeroes input bits cycle by cycle,
// keeping each simplification only if the assertion is still violated in the
// final window. The result is a minimal, human-readable test pattern — the
// validation artifact engineers actually read.
func MinimizeCtx(d *rtl.Design, a *assertion.Assertion, ctx sim.Stimulus) (sim.Stimulus, error) {
	if len(ctx) == 0 {
		return nil, fmt.Errorf("empty counterexample")
	}
	violates := func(stim sim.Stimulus) bool {
		tr, err := sim.Simulate(d, stim)
		if err != nil {
			return false
		}
		return violatesAt(tr, a, len(stim)-(a.Consequent.Offset+1))
	}
	if !violates(ctx) {
		return nil, fmt.Errorf("stimulus does not violate the assertion")
	}
	cur := ctx.Clone()

	// Phase 1: drop leading cycles.
	for len(cur) > a.Consequent.Offset+1 {
		cand := cur[1:].Clone()
		if !violates(cand) {
			break
		}
		cur = cand
	}
	// Phase 2: zero non-essential input assignments.
	for c := range cur {
		for _, in := range d.Inputs() {
			if cur[c][in.Name] == 0 {
				delete(cur[c], in.Name)
				continue
			}
			saved := cur[c][in.Name]
			cur[c][in.Name] = 0
			if !violates(cur) {
				cur[c][in.Name] = saved
			} else {
				delete(cur[c], in.Name)
			}
		}
	}
	return cur, nil
}

// violatesAt reports whether the assertion's antecedent matches and the
// consequent fails in the window starting at cycle p0 of the trace.
func violatesAt(tr *sim.Trace, a *assertion.Assertion, p0 int) bool {
	if p0 < 0 || p0+a.Consequent.Offset >= tr.Cycles() {
		return false
	}
	read := func(c int, p assertion.Prop) (uint64, bool) {
		v, err := tr.Value(c, p.Signal)
		if err != nil {
			return 0, false
		}
		if p.Bit >= 0 {
			return (v >> uint(p.Bit)) & 1, true
		}
		return v, true
	}
	for _, p := range a.Antecedent {
		v, ok := read(p0+p.Offset, p)
		if !ok || v != p.Value {
			return false
		}
	}
	cv, ok := read(p0+a.Consequent.Offset, a.Consequent)
	return ok && cv != a.Consequent.Value
}
