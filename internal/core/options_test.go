package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"goldmine/internal/designs"
	"goldmine/internal/telemetry"
)

func TestOptionsDefaults(t *testing.T) {
	cfg, err := NewOptions().Build()
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig()
	if cfg.Window != want.Window || cfg.MaxIterations != want.MaxIterations ||
		cfg.MaxChecks != want.MaxChecks || cfg.MC != want.MC {
		t.Fatalf("bare Build() diverges from DefaultConfig: %+v vs %+v", cfg, want)
	}
}

func TestOptionsSetters(t *testing.T) {
	cfg, err := NewOptions().
		Window(3).
		MaxIterations(7).
		MaxChecks(11).
		Workers(4).
		Batched(true).
		FullCtxTrace(true).
		SignalCone(true).
		Incremental(true).
		CoI(true).
		Timeout(time.Minute).
		IterationTimeout(time.Second).
		CheckTimeout(time.Millisecond).
		MaxWork(99).
		BMCDepth(5).
		Induction(6).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Window != 3 || cfg.MaxIterations != 7 || cfg.MaxChecks != 11 ||
		cfg.Workers != 4 || !cfg.BatchedChecks || !cfg.AddFullCtxTrace ||
		!cfg.SignalCone || !cfg.Incremental || !cfg.MC.CoI ||
		cfg.Timeout != time.Minute || cfg.IterationTimeout != time.Second ||
		cfg.MC.CheckTimeout != time.Millisecond || cfg.MC.MaxWork != 99 ||
		cfg.MC.MaxBMCDepth != 5 || cfg.MC.MaxInduction != 6 {
		t.Fatalf("setters lost values: %+v", cfg)
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		o    *Options
		want []string
	}{
		{"negative window", NewOptions().Window(-1), []string{"window"}},
		{"negative iterations", NewOptions().MaxIterations(-2), []string{"max iterations"}},
		{"negative workers", NewOptions().Workers(-1), []string{"workers"}},
		{"zero BMC depth", NewOptions().BMCDepth(0), []string{"BMC depth"}},
		{"negative timeout", NewOptions().Timeout(-time.Second), []string{"timeouts"}},
		{"iteration budget above overall", NewOptions().Timeout(time.Second).IterationTimeout(time.Minute),
			[]string{"iteration timeout"}},
		{"check budget above iteration", NewOptions().IterationTimeout(time.Second).CheckTimeout(time.Minute),
			[]string{"check timeout"}},
		{"all violations reported at once", NewOptions().Window(-1).Workers(-1).BMCDepth(0),
			[]string{"window", "workers", "BMC depth"}},
	}
	for _, tc := range cases {
		_, err := tc.o.Build()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, w)
			}
		}
	}
}

// TestOptionsEngineTelemetry checks the builder's Engine wires the tracer:
// counters and span histograms accumulate during mining, and the tracer never
// contaminates the Config (cache-key fingerprints must not see it).
func TestOptionsEngineTelemetry(t *testing.T) {
	b, err := designs.Get("arbiter2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Design()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.New(reg, nil)
	eng, err := NewOptions().Window(b.Window).Telemetry(tr).Engine(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MineOutputByName(context.Background(), "gnt0", 0, b.Directed()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["mine.outputs"] != 1 {
		t.Errorf("mine.outputs = %d, want 1", snap.Counters["mine.outputs"])
	}
	if snap.Counters["mine.iterations"] == 0 {
		t.Error("mine.iterations never incremented")
	}
	if snap.Counters["mc.checks"] == 0 {
		t.Error("mc.checks never incremented")
	}
	if _, ok := snap.Histograms["mine.output.us"]; !ok {
		t.Error("no mine.output.us span histogram")
	}
}
