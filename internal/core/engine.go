// Package core implements the paper's contribution: counterexample-guided
// iterative refinement of decision trees for validation stimulus generation
// (Figure 3/4 of the paper). For each design output bit it:
//
//  1. simulates the seed stimulus and builds the windowed mining dataset
//     restricted to the output's logic cone,
//  2. builds a decision tree whose pure leaves are 100%-confidence candidate
//     assertions,
//  3. model-checks every candidate; true candidates become proven invariants,
//     false ones yield counterexample traces,
//  4. simulates each counterexample (Ctx_simulation), appends the violating
//     window to the dataset, and incrementally resplits only the failed leaf,
//  5. repeats until every leaf is proven (the final decision tree F_z) or the
//     iteration budget is exhausted.
//
// The accumulated counterexample stimuli are the generated validation
// patterns; together with the proven assertions they are the artifacts the
// paper argues achieve output-centric coverage closure.
package core

import (
	"fmt"
	"time"

	"goldmine/internal/assertion"
	"goldmine/internal/mc"
	"goldmine/internal/mine"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/trace"
)

// Config tunes the refinement engine.
type Config struct {
	// Window is the mining window length w (Section 2.1). Combinational
	// designs use 0.
	Window int
	// MaxIterations bounds refinement rounds per output bit.
	MaxIterations int
	// AddFullCtxTrace adds every window of a counterexample trace to the
	// dataset instead of only the violating window.
	AddFullCtxTrace bool
	// MaxChecks bounds the total formal checks per output bit (a safety
	// valve against runaway refinement on outputs with huge relevant
	// cones). 0 means the default of 4000.
	MaxChecks int
	// SignalCone falls back to the paper's signal-granular cone of
	// influence instead of the default bit-level analysis (ablation knob:
	// wide buses then contribute every bit as a split candidate).
	SignalCone bool
	// BatchedChecks implements the performance optimization suggested in
	// Section 7 of the paper: collect every candidate of an iteration,
	// check them all, and only then apply all counterexample rows to the
	// tree in a single incremental update. The default (false) applies
	// each counterexample as soon as it is found, matching the paper's
	// baseline implementation.
	BatchedChecks bool
	// MC are the model checker limits.
	MC mc.Options
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		Window:        1,
		MaxIterations: 64,
		MC:            mc.DefaultOptions(),
	}
}

// AssertionRecord tracks one checked assertion.
type AssertionRecord struct {
	Assertion *assertion.Assertion
	Status    mc.Status
	Method    string
	Iteration int
}

// IterationStats records per-iteration progress (the deterministic metric of
// progress the paper highlights).
type IterationStats struct {
	Iteration  int
	Candidates int
	NewProved  int
	NewCtx     int
	Rows       int
	// InputSpaceCoverage is Σ 1/2^depth over assertions proved so far
	// (Section 7.1).
	InputSpaceCoverage float64
	// TreeLeaves and TreeNodes snapshot the incremental tree size.
	TreeLeaves, TreeNodes int
}

// OutputResult is the outcome of mining one output bit.
type OutputResult struct {
	Output string
	Bit    int
	Tree   *mine.Tree

	Proved  []AssertionRecord // includes bounded-proved; see Bounded flag
	Failed  []AssertionRecord // falsified candidates (with the iteration)
	Bounded int               // how many proved records were only bounded

	// Ctx are the counterexample stimuli in discovery order; each one starts
	// from reset and is a complete validation pattern.
	Ctx []sim.Stimulus

	Iterations []IterationStats
	Converged  bool
	StuckLeafs int
	Elapsed    time.Duration
}

// InputSpaceCoverage is the paper's Σ 1/2^depth over proved assertions.
func (r *OutputResult) InputSpaceCoverage() float64 {
	cov := 0.0
	for _, rec := range r.Proved {
		cov += rec.Assertion.InputSpaceFraction()
	}
	if cov > 1 {
		cov = 1
	}
	return cov
}

// Assertions returns the proved assertions.
func (r *OutputResult) Assertions() []*assertion.Assertion {
	out := make([]*assertion.Assertion, len(r.Proved))
	for i, rec := range r.Proved {
		out[i] = rec.Assertion
	}
	return out
}

// Result aggregates mining over several output bits.
type Result struct {
	Design  *rtl.Design
	Outputs []*OutputResult
	Seed    sim.Stimulus
	Elapsed time.Duration
}

// Suite returns the complete validation suite: the seed stimulus followed by
// every counterexample pattern (each runs from reset).
func (r *Result) Suite() []sim.Stimulus {
	var suite []sim.Stimulus
	if len(r.Seed) > 0 {
		suite = append(suite, r.Seed)
	}
	for _, o := range r.Outputs {
		suite = append(suite, o.Ctx...)
	}
	return suite
}

// Assertions returns all proved assertions across outputs.
func (r *Result) Assertions() []*assertion.Assertion {
	var out []*assertion.Assertion
	for _, o := range r.Outputs {
		out = append(out, o.Assertions()...)
	}
	return out
}

// Converged reports whether every mined output converged.
func (r *Result) Converged() bool {
	for _, o := range r.Outputs {
		if !o.Converged {
			return false
		}
	}
	return true
}

// Engine runs the refinement loop for one design.
type Engine struct {
	D       *rtl.Design
	Cfg     Config
	Checker *mc.Checker
	sim     *sim.Simulator
}

// NewEngine creates an engine (shared model-checker cache across outputs).
func NewEngine(d *rtl.Design, cfg Config) (*Engine, error) {
	s, err := sim.New(d)
	if err != nil {
		return nil, err
	}
	return &Engine{
		D:       d,
		Cfg:     cfg,
		Checker: mc.NewWithOptions(d, cfg.MC),
		sim:     s,
	}, nil
}

// MineOutput runs counterexample-guided refinement for one bit of an output.
// The seed stimulus may be empty (the zero-pattern limit study of Section
// 7.2: mining starts from the single assertion "output always 0").
func (e *Engine) MineOutput(out *rtl.Signal, bit int, seed sim.Stimulus) (*OutputResult, error) {
	start := time.Now()
	window := e.Cfg.Window
	if len(e.D.Registers()) == 0 {
		window = 0
	}
	ds, err := trace.NewDatasetCfg(e.D, out, bit, window, !e.Cfg.SignalCone)
	if err != nil {
		return nil, err
	}
	if len(seed) > 0 {
		tr, err := e.sim.Run(seed)
		if err != nil {
			return nil, err
		}
		if _, err := ds.AddTrace(tr, 0); err != nil {
			return nil, err
		}
	}
	tree := mine.Build(ds)
	res := &OutputResult{Output: out.Name, Bit: bit, Tree: tree}

	maxIter := e.Cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	maxChecks := e.Cfg.MaxChecks
	if maxChecks <= 0 {
		maxChecks = 4000
	}
	checks := 0
	for it := 1; it <= maxIter && checks < maxChecks; it++ {
		cands := tree.Candidates()
		st := IterationStats{Iteration: it, Candidates: len(cands)}
		if len(cands) == 0 {
			break
		}
		var batchedRows []int
		for _, cand := range cands {
			node := cand.Leaf.Node
			// The tree may have changed under us (full-trace mode): skip
			// candidates whose leaf is gone or no longer pure.
			if !node.IsLeaf() || node.Proved || !node.Pure() {
				continue
			}
			if checks >= maxChecks {
				break
			}
			checks++
			verdict, err := e.Checker.Check(cand.Assertion)
			if err != nil {
				return nil, err
			}
			switch verdict.Status {
			case mc.StatusProved, mc.StatusBounded:
				node.Proved = true
				res.Proved = append(res.Proved, AssertionRecord{
					Assertion: cand.Assertion, Status: verdict.Status,
					Method: verdict.Method, Iteration: it,
				})
				if verdict.Status == mc.StatusBounded {
					res.Bounded++
				}
				st.NewProved++
			case mc.StatusFalsified:
				res.Failed = append(res.Failed, AssertionRecord{
					Assertion: cand.Assertion, Status: verdict.Status,
					Method: verdict.Method, Iteration: it,
				})
				res.Ctx = append(res.Ctx, verdict.Ctx)
				st.NewCtx++
				// Ctx_simulation: concrete values for every cone signal.
				ctxTrace, err := e.sim.Run(verdict.Ctx)
				if err != nil {
					return nil, err
				}
				var newRows []int
				if e.Cfg.AddFullCtxTrace {
					before := ds.Rows()
					if _, err := ds.AddTrace(ctxTrace, it); err != nil {
						return nil, err
					}
					for r := before; r < ds.Rows(); r++ {
						newRows = append(newRows, r)
					}
				} else {
					r, err := ds.LastWindowRow(ctxTrace, it)
					if err != nil {
						return nil, err
					}
					newRows = append(newRows, r)
				}
				if e.Cfg.BatchedChecks {
					batchedRows = append(batchedRows, newRows...)
				} else {
					tree.AddRows(newRows)
				}
			}
		}
		if len(batchedRows) > 0 {
			tree.AddRows(batchedRows)
		}
		st.Rows = ds.Rows()
		st.InputSpaceCoverage = res.InputSpaceCoverage()
		ts := tree.Stats()
		st.TreeLeaves, st.TreeNodes = ts.Leaves, ts.Nodes
		res.Iterations = append(res.Iterations, st)
		if tree.Converged() {
			break
		}
	}
	res.Converged = tree.Converged()
	res.StuckLeafs = tree.Stats().StuckLeaves
	res.Elapsed = time.Since(start)
	return res, nil
}

// MineAll mines every bit of every design output with a shared seed.
func (e *Engine) MineAll(seed sim.Stimulus) (*Result, error) {
	start := time.Now()
	res := &Result{Design: e.D, Seed: seed}
	for _, out := range e.D.Outputs() {
		for bit := 0; bit < out.Width; bit++ {
			or, err := e.MineOutput(out, bit, seed)
			if err != nil {
				return nil, fmt.Errorf("mining %s[%d]: %w", out.Name, bit, err)
			}
			res.Outputs = append(res.Outputs, or)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// MineOutputByName is a convenience wrapper resolving the output by name.
func (e *Engine) MineOutputByName(name string, bit int, seed sim.Stimulus) (*OutputResult, error) {
	out := e.D.Signal(name)
	if out == nil {
		return nil, fmt.Errorf("no signal %q in design %s", name, e.D.Name)
	}
	if out.Kind != rtl.SigOutput && !out.IsState {
		return nil, fmt.Errorf("signal %q is not an output or register", name)
	}
	return e.MineOutput(out, bit, seed)
}
