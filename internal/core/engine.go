// Package core implements the paper's contribution: counterexample-guided
// iterative refinement of decision trees for validation stimulus generation
// (Figure 3/4 of the paper). For each design output bit it:
//
//  1. simulates the seed stimulus and builds the windowed mining dataset
//     restricted to the output's logic cone,
//  2. builds a decision tree whose pure leaves are 100%-confidence candidate
//     assertions,
//  3. model-checks every candidate; true candidates become proven invariants,
//     false ones yield counterexample traces,
//  4. simulates each counterexample (Ctx_simulation), appends the violating
//     window to the dataset, and incrementally resplits only the failed leaf,
//  5. repeats until every leaf is proven (the final decision tree F_z) or the
//     iteration budget is exhausted.
//
// The accumulated counterexample stimuli are the generated validation
// patterns; together with the proven assertions they are the artifacts the
// paper argues achieve output-centric coverage closure.
//
// Every engine interaction — formal check, counterexample simulation, dataset
// append, incremental tree update — runs behind a recover() barrier. A panic
// or hard error in one check becomes a structured EngineError, the affected
// leaf is marked stuck, and mining continues on the remaining leaves, so a
// single hostile assertion can never lose the accumulated stimulus.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"goldmine/internal/assertion"
	"goldmine/internal/mc"
	"goldmine/internal/mine"
	"goldmine/internal/rtl"
	"goldmine/internal/sched"
	"goldmine/internal/sim"
	"goldmine/internal/simc"
	"goldmine/internal/telemetry"
	"goldmine/internal/trace"
)

// Config tunes the refinement engine.
type Config struct {
	// Window is the mining window length w (Section 2.1). Combinational
	// designs use 0.
	Window int
	// MaxIterations bounds refinement rounds per output bit.
	MaxIterations int
	// AddFullCtxTrace adds every window of a counterexample trace to the
	// dataset instead of only the violating window.
	AddFullCtxTrace bool
	// MaxChecks bounds the total formal checks per output bit (a safety
	// valve against runaway refinement on outputs with huge relevant
	// cones). 0 means the default of 4000.
	MaxChecks int
	// SignalCone falls back to the paper's signal-granular cone of
	// influence instead of the default bit-level analysis (ablation knob:
	// wide buses then contribute every bit as a split candidate).
	SignalCone bool
	// BatchedChecks implements the performance optimization suggested in
	// Section 7 of the paper: collect every candidate of an iteration,
	// check them all, and only then apply all counterexample rows to the
	// tree in a single incremental update. The default (false) applies
	// each counterexample as soon as it is found, matching the paper's
	// baseline implementation.
	BatchedChecks bool
	// Timeout bounds one MineOutput call by wall clock; zero means no
	// deadline. On expiry the loop stops cleanly, returning everything
	// proved so far with Interrupted set.
	Timeout time.Duration
	// IterationTimeout bounds a single refinement iteration. When a slice
	// expires, the remaining candidates of that iteration are deferred to
	// the next one (their leaves are NOT marked stuck).
	IterationTimeout time.Duration
	// Workers is the parallelism degree of MineAll/MineTargets: output-bit
	// mining jobs are spread over a work-stealing pool of this many workers,
	// and in BatchedChecks mode a batch's independent leaf checks fan out
	// over the same worker budget. <= 1 mines sequentially. Mining artifacts
	// (assertions, counterexample stimuli, iteration stats) are identical
	// for any Workers value; only wall time and scheduler telemetry change.
	Workers int
	// Cache optionally supplies a shared verdict cache (e.g. one cache
	// across the engines of an experiment sweep). Keys include design and
	// model-checker-option fingerprints, so sharing across engines and
	// designs is safe. Nil means a private per-engine cache.
	Cache *sched.VerdictCache
	// Incremental routes formal checks through a pool of persistent
	// mc.Session solver contexts, amortizing the transition-relation
	// encoding and learned clauses across the thousands of checks of a
	// refinement run. Verdicts and counterexamples are identical to the
	// stateless path (sessions canonicalize counterexamples), so the
	// -j1 ≡ -jN determinism contract is unaffected. One caveat: with a
	// deterministic MC.MaxWork budget, *where* a hard check degrades along
	// proved→bounded→unknown can depend on which session answered it
	// (verdicts only ever weaken; they never flip). DefaultConfig enables it.
	Incremental bool
	// CompiledSim routes seed and counterexample simulation through the
	// compiled instruction-tape engine (internal/simc) instead of the tree
	// interpreter. The design is compiled once per engine (shared across
	// forks); traces are bit-for-bit identical to the interpreter's, so every
	// mining artifact — including Result.Canonical — is unchanged. If
	// compilation fails the engine silently falls back to the interpreter.
	// DefaultConfig enables it.
	CompiledSim bool
	// MC are the model checker limits.
	MC mc.Options
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		Window:        1,
		MaxIterations: 64,
		Incremental:   true,
		CompiledSim:   true,
		MC:            mc.DefaultOptions(),
	}
}

// FormalChecker is the formal-verification boundary the engine drives. It is
// satisfied by *mc.Checker; tests substitute hostile implementations to prove
// the engine fails soft.
type FormalChecker interface {
	CheckCtx(ctx context.Context, a *assertion.Assertion) (*mc.Result, error)
}

// Stages of the refinement loop where an engine fault can occur.
const (
	StageCheck      = "formal-check"
	StageCtxSim     = "ctx-simulation"
	StageDataset    = "dataset-append"
	StageTreeUpdate = "tree-update"
	// StageWorker marks a panic that escaped every per-check barrier and was
	// caught by the scheduler's whole-job barrier: the output's partial
	// result is replaced by a single fault record, and mining of the other
	// outputs continues.
	StageWorker = "worker"
)

// EngineError is a structured record of a fault (panic or hard error) isolated
// at an engine boundary. The refinement loop records it, marks the leaf stuck,
// and continues.
type EngineError struct {
	Stage     string // one of the Stage* constants
	Output    string // output signal being mined
	Assertion *assertion.Assertion
	Leaf      string // root path of the affected leaf ("var=val/...")
	Cause     error
}

func (e *EngineError) Error() string {
	a := "<none>"
	if e.Assertion != nil {
		a = e.Assertion.String()
	}
	return fmt.Sprintf("engine fault at %s (output %s, leaf %s, assertion %s): %v",
		e.Stage, e.Output, e.Leaf, a, e.Cause)
}

func (e *EngineError) Unwrap() error { return e.Cause }

// AssertionRecord tracks one checked assertion.
type AssertionRecord struct {
	Assertion *assertion.Assertion
	Status    mc.Status
	Method    string
	Iteration int
	// Elapsed is the wall time of the formal check.
	Elapsed time.Duration
	// Degraded marks a verdict weakened by budget pressure.
	Degraded bool
	// Err explains an Unknown status (mc.ErrBudgetExceeded, mc.ErrCanceled,
	// mc.ErrEngineInternal) — it distinguishes "unconverged because hard"
	// from "unconverged because crashed".
	Err error
}

// IterationStats records per-iteration progress (the deterministic metric of
// progress the paper highlights).
type IterationStats struct {
	Iteration  int
	Candidates int
	NewProved  int
	NewCtx     int
	// NewUnknown counts checks that returned no verdict (budget/cancel/fault)
	// this iteration; their leaves are stuck and will not be retried.
	NewUnknown int
	// Faults counts isolated engine faults (panics, hard errors) this
	// iteration; Degraded counts budget-weakened verdicts.
	Faults   int
	Degraded int
	Rows     int
	// CheckTime is the wall time spent inside formal checks this iteration.
	CheckTime time.Duration
	// InputSpaceCoverage is Σ 1/2^depth over assertions proved so far
	// (Section 7.1).
	InputSpaceCoverage float64
	// TreeLeaves and TreeNodes snapshot the incremental tree size.
	TreeLeaves, TreeNodes int
}

// OutputResult is the outcome of mining one output bit.
type OutputResult struct {
	Output string
	Bit    int
	Tree   *mine.Tree

	Proved  []AssertionRecord // includes bounded-proved; see Bounded flag
	Failed  []AssertionRecord // falsified candidates (with the iteration)
	Unknown []AssertionRecord // no verdict: budget exhausted, cancelled, or faulted
	Bounded int               // how many proved records were only bounded

	// Ctx are the counterexample stimuli in discovery order; each one starts
	// from reset and is a complete validation pattern.
	Ctx []sim.Stimulus

	// Errors are the isolated engine faults encountered while mining this
	// output. Each corresponds to a stuck leaf, not a lost run.
	Errors []*EngineError

	Iterations []IterationStats
	Converged  bool
	// Interrupted reports that the overall deadline or a cancellation cut
	// mining short; the partial results above are still valid.
	Interrupted bool
	StuckLeafs  int
	Elapsed     time.Duration

	// Verdict-cache telemetry for this output's checks: CacheHits were
	// served from a stored verdict, CacheShared waited on an identical
	// in-flight check (deduplicated concurrent work), CacheMisses ran the
	// model checker. Advisory only — which concurrent output scores the hit
	// for a shared candidate is a benign race, so these counters are
	// excluded from the determinism contract (see Result.Canonical).
	CacheHits, CacheShared, CacheMisses int
}

// InputSpaceCoverage is the paper's Σ 1/2^depth over proved assertions.
func (r *OutputResult) InputSpaceCoverage() float64 {
	cov := 0.0
	for _, rec := range r.Proved {
		cov += rec.Assertion.InputSpaceFraction()
	}
	if cov > 1 {
		cov = 1
	}
	return cov
}

// Assertions returns the proved assertions.
func (r *OutputResult) Assertions() []*assertion.Assertion {
	out := make([]*assertion.Assertion, len(r.Proved))
	for i, rec := range r.Proved {
		out[i] = rec.Assertion
	}
	return out
}

// SchedStats is the scheduler telemetry of one MineAll/MineTargets run. All
// of it is advisory: none of these numbers participate in the determinism
// contract (work stealing and cache-hit attribution are benign races).
type SchedStats struct {
	// Workers is the resolved parallelism degree (1 = sequential).
	Workers int
	// Tasks is the number of output-bit mining jobs scheduled.
	Tasks int
	// TasksStolen counts jobs executed by a worker other than the one they
	// were initially sharded onto.
	TasksStolen int64
	// WorkerPanics counts whole-job panics isolated by the worker barrier.
	WorkerPanics int64
	// ChecksDeduped counts formal checks that waited on an identical
	// in-flight check instead of running the model checker again.
	ChecksDeduped int64
	// CacheHits / CacheMisses count verdict-cache lookups over the run.
	CacheHits, CacheMisses int64
	// CacheHitRate is (hits + deduped) / lookups, 0 when no checks ran.
	CacheHitRate float64
}

// Result aggregates mining over several output bits.
type Result struct {
	Design  *rtl.Design
	Outputs []*OutputResult
	Seed    sim.Stimulus
	// Interrupted reports that mining stopped early on cancellation or
	// deadline; Outputs holds everything completed (or partially completed)
	// before the cut.
	Interrupted bool
	Elapsed     time.Duration
	// Sched is the scheduler/cache telemetry of the run (set by MineAll and
	// MineTargets in both sequential and parallel modes).
	Sched *SchedStats
}

// Suite returns the complete validation suite: the seed stimulus followed by
// every counterexample pattern (each runs from reset).
func (r *Result) Suite() []sim.Stimulus {
	var suite []sim.Stimulus
	if len(r.Seed) > 0 {
		suite = append(suite, r.Seed)
	}
	for _, o := range r.Outputs {
		suite = append(suite, o.Ctx...)
	}
	return suite
}

// Assertions returns all proved assertions across outputs.
func (r *Result) Assertions() []*assertion.Assertion {
	var out []*assertion.Assertion
	for _, o := range r.Outputs {
		out = append(out, o.Assertions()...)
	}
	return out
}

// Converged reports whether every mined output converged.
func (r *Result) Converged() bool {
	for _, o := range r.Outputs {
		if !o.Converged {
			return false
		}
	}
	return true
}

// Errors collects the isolated engine faults across outputs.
func (r *Result) Errors() []*EngineError {
	var out []*EngineError
	for _, o := range r.Outputs {
		out = append(out, o.Errors...)
	}
	return out
}

// Canonical renders the run's mining artifacts — everything the determinism
// contract covers — as a stable string: the same design, seed and
// configuration produce byte-identical output for any Workers value. Wall
// times and scheduler/cache telemetry are deliberately absent; comparing
// Canonical strings is how the tests and the bench harness verify -j 1 ≡ -j N.
func (r *Result) Canonical() string {
	b := &strings.Builder{}
	fmt.Fprintf(b, "design %s interrupted=%v\n", r.Design.Name, r.Interrupted)
	for _, o := range r.Outputs {
		fmt.Fprintf(b, "output %s[%d] converged=%v interrupted=%v bounded=%d stuck=%d faults=%d\n",
			o.Output, o.Bit, o.Converged, o.Interrupted, o.Bounded, o.StuckLeafs, len(o.Errors))
		writeRecs := func(kind string, recs []AssertionRecord) {
			for _, rec := range recs {
				fmt.Fprintf(b, "  %s it=%d %v %s\n", kind, rec.Iteration, rec.Status, rec.Assertion.Key())
			}
		}
		writeRecs("proved", o.Proved)
		writeRecs("failed", o.Failed)
		writeRecs("unknown", o.Unknown)
		for i, stim := range o.Ctx {
			fmt.Fprintf(b, "  ctx %d %s\n", i, canonicalStimulus(stim))
		}
		for _, st := range o.Iterations {
			fmt.Fprintf(b, "  iter %d cand=%d proved=%d ctx=%d unknown=%d faults=%d rows=%d leaves=%d nodes=%d cov=%.6f\n",
				st.Iteration, st.Candidates, st.NewProved, st.NewCtx, st.NewUnknown,
				st.Faults, st.Rows, st.TreeLeaves, st.TreeNodes, st.InputSpaceCoverage)
		}
	}
	return b.String()
}

// canonicalStimulus renders a stimulus with sorted input names per cycle
// (InputVec is a map; iteration order must not leak into the canonical form).
func canonicalStimulus(st sim.Stimulus) string {
	b := &strings.Builder{}
	for c, vec := range st {
		if c > 0 {
			b.WriteByte(';')
		}
		names := make([]string, 0, len(vec))
		for n := range vec {
			names = append(names, n)
		}
		sort.Strings(names)
		for i, n := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%d", n, vec[n])
		}
	}
	return b.String()
}

// Engine runs the refinement loop for one design.
type Engine struct {
	D       *rtl.Design
	Cfg     Config
	Checker *mc.Checker
	checker FormalChecker // overrides Checker when set (fault injection)
	sim     *sim.Simulator
	// compiled holds the once-compiled instruction-tape program, shared by
	// every fork (compilation is per design, not per goroutine); machine is
	// this engine's private executor over it (simc.Machine is
	// single-goroutine, like sim.Simulator).
	compiled *compiledSim
	machine  *simc.Machine

	// cache memoizes model-checker verdicts under canonical keys; shared by
	// every fork of this engine (and across engines when Config.Cache is
	// set). keyPrefix pins its entries to this design + checker options.
	cache     *sched.VerdictCache
	keyPrefix string
	// checkSem is the shared lane budget for intra-output batched-check
	// fan-out: Workers-1 tokens, so total check concurrency across all
	// in-flight mining jobs stays at the configured degree (each job always
	// keeps one lane of its own).
	checkSem chan struct{}
	// sessions pools incremental mc.Sessions (nil when Cfg.Incremental is
	// off). A Session is single-goroutine, so each in-flight check takes one
	// out, uses it exclusively, and returns it; the channel is shared by
	// every fork of this engine so warmed-up solver states migrate between
	// mining jobs. A check that panics simply never returns its session —
	// the possibly-corrupt state is dropped, not repooled.
	sessions chan *mc.Session
	// tel routes the refinement loop's telemetry (spans per output /
	// iteration / phase, mine.* counters). Nil when disabled: every
	// instrumentation site below is a nil-safe no-op, so the disabled path
	// costs one branch per phase, not per event. Set via SetTelemetry and
	// shared by every fork.
	tel *telemetry.Tracer
	mtr coreMetrics
}

// coreMetrics caches the mine.* counters so hot-loop accounting is an atomic
// add, not a registry lookup. Zero value (all nil) = disabled.
type coreMetrics struct {
	outputs, iterations, candidates, ctxFound, proved *telemetry.Counter
}

// NewEngine creates an engine (shared model-checker reachability and verdict
// caches across outputs).
func NewEngine(d *rtl.Design, cfg Config) (*Engine, error) {
	s, err := sim.New(d)
	if err != nil {
		return nil, err
	}
	cache := cfg.Cache
	if cache == nil {
		cache = sched.NewVerdictCache()
	}
	lanes := cfg.Workers - 1
	if lanes < 0 {
		lanes = 0
	}
	e := &Engine{
		D:         d,
		Cfg:       cfg,
		Checker:   mc.NewWithOptions(d, cfg.MC),
		sim:       s,
		cache:     cache,
		keyPrefix: sched.DesignFingerprint(d) + "|" + sched.OptionsFingerprint(cfg.MC) + "|",
		checkSem:  make(chan struct{}, lanes),
	}
	if cfg.CompiledSim {
		e.compiled = &compiledSim{}
	}
	if cfg.Incremental {
		// Capacity covers the worst-case concurrent checks (one per mining
		// worker plus every spare check lane) so sessions are parked, not lost.
		e.sessions = make(chan *mc.Session, cfg.Workers+lanes+2)
	}
	return e, nil
}

// SetTelemetry wires the engine — and transitively the model checker, SAT
// solvers, and simulator — into a tracer. Call it once, before mining starts
// (the wiring is not synchronized against in-flight checks); a nil tracer
// leaves telemetry disabled at the one-branch nil fast path. Forked engines
// inherit the wiring. Telemetry never alters mining artifacts: the journal is
// a side channel and the -j1 ≡ -jN determinism contract is unaffected.
func (e *Engine) SetTelemetry(tr *telemetry.Tracer) {
	e.tel = tr
	e.Checker.SetTelemetry(tr)
	if tr == nil {
		e.mtr = coreMetrics{}
		e.sim.Cycles = nil
		return
	}
	reg := tr.Registry()
	e.mtr = coreMetrics{
		outputs:    reg.Counter("mine.outputs"),
		iterations: reg.Counter("mine.iterations"),
		candidates: reg.Counter("mine.candidates"),
		ctxFound:   reg.Counter("mine.ctx_found"),
		proved:     reg.Counter("mine.proved"),
	}
	e.sim.Cycles = reg.Counter("sim.cycles")
}

// getSession checks a pooled incremental session out (or warms a new one up).
func (e *Engine) getSession() *mc.Session {
	select {
	case s := <-e.sessions:
		return s
	default:
		return e.Checker.NewSession()
	}
}

// putSession parks a session for the next check; a full pool drops it.
func (e *Engine) putSession(s *mc.Session) {
	select {
	case e.sessions <- s:
	default:
	}
}

// fork clones the engine for one parallel mining job: a fresh simulator
// (sim.Simulator is single-goroutine), sharing the design, the thread-safe
// model checker (and its reachability cache), the verdict cache, and the
// check-lane budget.
func (e *Engine) fork() (*Engine, error) {
	s, err := sim.New(e.D)
	if err != nil {
		return nil, err
	}
	fe := *e
	fe.sim = s
	fe.sim.Cycles = e.sim.Cycles
	fe.machine = nil // executors are single-goroutine; the program is shared
	return &fe, nil
}

// compiledSim is the fork-shared compile-once cell for the instruction-tape
// simulator.
type compiledSim struct {
	once sync.Once
	prog *simc.Program
	err  error
}

// compiledMachine returns this engine's compiled executor, compiling the
// shared program on first use (under a sim.compile span). Nil means the
// compiled path is disabled or compilation failed — callers fall back to the
// interpreter.
func (e *Engine) compiledMachine(ctx context.Context) *simc.Machine {
	if e.compiled == nil {
		return nil
	}
	e.compiled.once.Do(func() {
		_, sp := e.tel.StartSpan(ctx, "sim.compile", telemetry.String("design", e.D.Name))
		e.compiled.prog, e.compiled.err = simc.Compile(e.D)
		sp.End()
	})
	if e.compiled.err != nil {
		return nil
	}
	if e.machine == nil {
		e.machine = simc.NewMachine(e.compiled.prog)
	}
	e.machine.Cycles = e.sim.Cycles
	return e.machine
}

// simulate runs a stimulus on the fastest available engine. Compiled and
// interpreted traces are bit-for-bit identical (enforced by the differential
// tests in internal/simc), so the choice never changes mining artifacts.
func (e *Engine) simulate(ctx context.Context, stim sim.Stimulus) (*sim.Trace, error) {
	if m := e.compiledMachine(ctx); m != nil {
		return m.Run(stim)
	}
	return e.sim.Run(stim)
}

// SetChecker substitutes the formal checker — the fault-injection seam. A nil
// fc restores the built-in mc.Checker. The verdict cache is reset so stale
// verdicts from the previous checker cannot mask the substitute; in parallel
// runs the substitute must itself be safe for concurrent CheckCtx calls.
func (e *Engine) SetChecker(fc FormalChecker) {
	e.checker = fc
	e.cache = sched.NewVerdictCache()
}

// cacheKey derives the verdict-cache key of a candidate assertion.
func (e *Engine) cacheKey(a *assertion.Assertion) string {
	return e.keyPrefix + a.CanonicalKey()
}

func (e *Engine) formalChecker() FormalChecker {
	if e.checker != nil {
		return e.checker
	}
	return e.Checker
}

// leafKey renders a leaf's root path for fault records.
func leafKey(lf mine.Leaf) string {
	if len(lf.Path) == 0 {
		return "root"
	}
	b := &strings.Builder{}
	for _, st := range lf.Path {
		fmt.Fprintf(b, "%d=%d/", st.Var, st.Value)
	}
	return b.String()
}

// checkOutcome carries one formal-check verdict from a check lane back to the
// sequential merge step of the iteration.
type checkOutcome struct {
	verdict *mc.Result
	outcome sched.Outcome
	eerr    *EngineError
}

// safeCheck runs one formal check behind a recover barrier, routed through the
// verdict cache. A panic or hard error becomes an EngineError;
// budget/cancellation outcomes arrive as an Unknown verdict from the checker
// itself (or are synthesized for a cancelled wait on a shared in-flight check)
// and pass through untouched. Safe for concurrent use by check lanes: it
// mutates nothing on the engine.
func (e *Engine) safeCheck(ctx context.Context, out string, cand mine.Candidate) (co checkOutcome) {
	engineFault := func(cause error) *EngineError {
		return &EngineError{
			Stage: StageCheck, Output: out, Assertion: cand.Assertion,
			Leaf:  leafKey(cand.Leaf),
			Cause: cause,
		}
	}
	defer func() {
		if r := recover(); r != nil {
			co.verdict = nil
			co.eerr = engineFault(fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, r))
		}
	}()
	ctx, psp := e.tel.StartSpan(ctx, "sched.cache_probe")
	defer psp.End()
	v, outcome, err := e.cache.Check(ctx, e.cacheKey(cand.Assertion), func() (*mc.Result, error) {
		// The fault-injection override always wins; otherwise prefer an
		// incremental session when the engine keeps a pool. A panicking
		// session is never repooled (the deferred recover above fires before
		// putSession runs), so corrupt solver state dies with the check.
		if e.checker == nil && e.sessions != nil {
			s := e.getSession()
			r, err := s.CheckCtx(ctx, cand.Assertion)
			e.putSession(s)
			return r, err
		}
		return e.formalChecker().CheckCtx(ctx, cand.Assertion)
	})
	co.outcome = outcome
	psp.Annotate(telemetry.String("outcome", outcome.String()))
	if err != nil {
		if errors.Is(err, mc.ErrCanceled) {
			// Cancelled while waiting on a shared in-flight check: report it
			// the way the checker itself reports cancellation, so the leaf
			// stays retryable instead of becoming a fault.
			co.verdict = &mc.Result{Status: mc.StatusUnknown, Cause: err}
			return co
		}
		co.eerr = engineFault(fmt.Errorf("%w: %v", mc.ErrEngineInternal, err))
		return co
	}
	if v == nil {
		co.eerr = engineFault(fmt.Errorf("%w: checker returned no verdict", mc.ErrEngineInternal))
		return co
	}
	if outcome == sched.Hit {
		// The stored verdict's wall time was paid by an earlier check; a hit
		// costs nothing.
		v.Elapsed = 0
	}
	co.verdict = v
	return co
}

// runChecks runs a batch of independent leaf checks, fanning out over the
// engine's shared check lanes whenever a token is free. The calling goroutine
// always keeps checking itself (it never blocks waiting for a lane), so every
// mining job makes progress even when other jobs hold all the spare tokens.
//
// Dispatch order is difficulty-aware: the checker's learned cost model
// (mc.PredictHard) scores each candidate and predicted-hard checks start
// first, so a batch never ends with one straggling hard property serializing
// the tail while the spare lanes sit idle (LPT makespan scheduling). Results
// are positional: the returned slice parallels dispatch, so the reorder never
// leaks into artifacts.
func (e *Engine) runChecks(ctx context.Context, out string, dispatch []mine.Candidate) []checkOutcome {
	outcomes := make([]checkOutcome, len(dispatch))
	order := sched.PriorityOrder(len(dispatch), func(i int) int64 {
		score, _ := e.Checker.PredictHard(dispatch[i].Assertion)
		return score
	})
	var wg sync.WaitGroup
	for _, i := range order {
		select {
		case e.checkSem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-e.checkSem }()
				// safeCheck's recover barrier contains lane panics.
				outcomes[i] = e.safeCheck(ctx, out, dispatch[i])
			}(i)
		default:
			outcomes[i] = e.safeCheck(ctx, out, dispatch[i])
		}
	}
	wg.Wait()
	return outcomes
}

// safeCtxSim simulates a counterexample stimulus behind a recover barrier
// (hostile checkers can return malformed traces that trip the simulator).
func (e *Engine) safeCtxSim(ctx context.Context, stim sim.Stimulus) (tr *sim.Trace, err error) {
	defer func() {
		if r := recover(); r != nil {
			tr = nil
			err = fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, r)
		}
	}()
	return e.simulate(ctx, stim)
}

// safeAddRows applies an incremental tree update behind a recover barrier.
func safeAddRows(t *mine.Tree, rows []int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, r)
		}
	}()
	return t.AddRows(rows)
}

// MineOutput runs counterexample-guided refinement for one bit of an output
// under a context and the configured deadlines. The seed stimulus may be empty
// (the zero-pattern limit study of Section 7.2: mining starts from the single
// assertion "output always 0"). Cancellation and deadline expiry are not
// errors: the loop stops at the next boundary and returns the partial result
// with Interrupted set. Use context.Background() when no cancellation is
// needed.
func (e *Engine) MineOutput(ctx context.Context, out *rtl.Signal, bit int, seed sim.Stimulus) (*OutputResult, error) {
	start := time.Now()
	ctx, osp := e.tel.StartSpan(ctx, "mine.output",
		telemetry.String("output", out.Name), telemetry.Int("bit", int64(bit)))
	defer osp.End()
	e.mtr.outputs.Inc()
	if e.Cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Cfg.Timeout)
		defer cancel()
	}
	window := e.Cfg.Window
	if len(e.D.Registers()) == 0 {
		window = 0
	}
	ds, err := trace.NewDatasetCfg(e.D, out, bit, window, !e.Cfg.SignalCone)
	if err != nil {
		return nil, err
	}
	if len(seed) > 0 {
		ssp := osp.Child("sim.run", telemetry.Int("cycles", int64(len(seed))))
		tr, err := e.simulate(ctx, seed)
		ssp.End()
		if err != nil {
			return nil, err
		}
		if _, err := ds.AddTrace(tr, 0); err != nil {
			return nil, err
		}
	}
	bsp := osp.Child("mine.tree_update", telemetry.String("op", "build"))
	tree := mine.Build(ds)
	bsp.End()
	res := &OutputResult{Output: out.Name, Bit: bit, Tree: tree}

	maxIter := e.Cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	maxChecks := e.Cfg.MaxChecks
	if maxChecks <= 0 {
		maxChecks = 4000
	}
	checks := 0
	fault := func(st *IterationStats, node *mine.Node, rec AssertionRecord, ee *EngineError) {
		node.Stuck = true
		res.Errors = append(res.Errors, ee)
		rec.Status = mc.StatusUnknown
		rec.Err = ee.Cause
		res.Unknown = append(res.Unknown, rec)
		st.Faults++
		st.NewUnknown++
	}
	for it := 1; it <= maxIter && checks < maxChecks; it++ {
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		itCtx, itCancel := ctx, context.CancelFunc(func() {})
		if e.Cfg.IterationTimeout > 0 {
			itCtx, itCancel = context.WithTimeout(ctx, e.Cfg.IterationTimeout)
		}
		isp := osp.Child("mine.iteration", telemetry.Int("iter", int64(it)))
		// Checks issued this iteration hang their spans off the iteration:
		// the span rides the context through the cache into the checker.
		itCtx = telemetry.WithSpan(itCtx, isp)
		e.mtr.iterations.Inc()
		csp := isp.Child("mine.candidates")
		cands := tree.Candidates()
		csp.End(telemetry.Int("count", int64(len(cands))))
		e.mtr.candidates.Add(int64(len(cands)))
		st := IterationStats{Iteration: it, Candidates: len(cands)}
		if len(cands) == 0 {
			itCancel()
			isp.End()
			break
		}
		var batchedRows []int
		// process merges one check verdict into the iteration state. It runs
		// only on the mining goroutine (never inside a check lane), so all
		// tree, dataset and result mutation stays single-threaded.
		process := func(cand mine.Candidate, co checkOutcome) {
			node := cand.Leaf.Node
			rec := AssertionRecord{Assertion: cand.Assertion, Iteration: it}
			switch co.outcome {
			case sched.Hit:
				res.CacheHits++
			case sched.Shared:
				res.CacheShared++
			default:
				res.CacheMisses++
			}
			if co.eerr != nil {
				fault(&st, node, rec, co.eerr)
				return
			}
			verdict := co.verdict
			rec.Status = verdict.Status
			rec.Method = verdict.Method
			rec.Elapsed = verdict.Elapsed
			rec.Degraded = verdict.Degraded
			st.CheckTime += verdict.Elapsed
			if verdict.Degraded {
				st.Degraded++
			}
			switch verdict.Status {
			case mc.StatusProved, mc.StatusBounded:
				node.Proved = true
				res.Proved = append(res.Proved, rec)
				if verdict.Status == mc.StatusBounded {
					res.Bounded++
				}
				st.NewProved++
				e.mtr.proved.Inc()
			case mc.StatusFalsified:
				// Ctx_simulation: concrete values for every cone signal. The
				// counterexample only counts once it replays cleanly — a
				// malformed trace from a faulty engine must not pollute the
				// validation suite.
				fsp := isp.Child("mine.ctx_feedback", telemetry.Int("cycles", int64(len(verdict.Ctx))))
				defer fsp.End()
				e.mtr.ctxFound.Inc()
				ctxTrace, err := e.safeCtxSim(ctx, verdict.Ctx)
				if err != nil {
					fault(&st, node, rec, &EngineError{
						Stage: StageCtxSim, Output: out.Name,
						Assertion: cand.Assertion, Leaf: leafKey(cand.Leaf),
						Cause: err,
					})
					return
				}
				var newRows []int
				if e.Cfg.AddFullCtxTrace {
					before := ds.Rows()
					if _, err := ds.AddTrace(ctxTrace, it); err != nil {
						fault(&st, node, rec, &EngineError{
							Stage: StageDataset, Output: out.Name,
							Assertion: cand.Assertion, Leaf: leafKey(cand.Leaf),
							Cause: err,
						})
						return
					}
					for r := before; r < ds.Rows(); r++ {
						newRows = append(newRows, r)
					}
				} else {
					r, err := ds.LastWindowRow(ctxTrace, it)
					if err != nil {
						fault(&st, node, rec, &EngineError{
							Stage: StageDataset, Output: out.Name,
							Assertion: cand.Assertion, Leaf: leafKey(cand.Leaf),
							Cause: err,
						})
						return
					}
					newRows = append(newRows, r)
				}
				res.Failed = append(res.Failed, rec)
				res.Ctx = append(res.Ctx, verdict.Ctx)
				st.NewCtx++
				if e.Cfg.BatchedChecks {
					batchedRows = append(batchedRows, newRows...)
				} else {
					tsp := isp.Child("mine.tree_update", telemetry.Int("rows", int64(len(newRows))))
					err := safeAddRows(tree, newRows)
					tsp.End()
					if err != nil {
						res.Errors = append(res.Errors, &EngineError{
							Stage: StageTreeUpdate, Output: out.Name,
							Assertion: cand.Assertion, Leaf: leafKey(cand.Leaf),
							Cause: err,
						})
						st.Faults++
					}
				}
			case mc.StatusUnknown:
				if itCtx.Err() != nil && (verdict.Cause == nil || mc.IsBudget(verdict.Cause)) {
					// The iteration (or overall) deadline expired mid-check,
					// not the per-check budget: the leaf is retryable.
					res.Unknown = append(res.Unknown, rec)
					st.NewUnknown++
					if ctx.Err() != nil {
						res.Interrupted = true
					}
					return
				}
				// A per-check budget verdict: retrying next iteration would
				// livelock, so the leaf is parked as stuck.
				node.Stuck = true
				rec.Err = verdict.Cause
				res.Unknown = append(res.Unknown, rec)
				st.NewUnknown++
			}
		}
		if e.Cfg.BatchedChecks {
			// Batched mode: the tree does not change until the whole batch has
			// been checked, so the dispatch set is fixed up front and the
			// independent leaf checks may fan out over idle check lanes.
			// Verdicts are merged in candidate order, keeping the artifacts
			// identical for any Workers value.
			var dispatch []mine.Candidate
			for _, cand := range cands {
				node := cand.Leaf.Node
				if !node.IsLeaf() || node.Proved || node.Stuck || !node.Pure() {
					continue
				}
				if checks >= maxChecks {
					break
				}
				checks++
				dispatch = append(dispatch, cand)
			}
			outcomes := e.runChecks(itCtx, out.Name, dispatch)
			for i, cand := range dispatch {
				process(cand, outcomes[i])
			}
			if ctx.Err() != nil {
				res.Interrupted = true
			}
		} else {
			for _, cand := range cands {
				node := cand.Leaf.Node
				// The tree changes under us as counterexamples land: skip
				// candidates whose leaf is gone or no longer pure.
				if !node.IsLeaf() || node.Proved || node.Stuck || !node.Pure() {
					continue
				}
				if checks >= maxChecks {
					break
				}
				if ctx.Err() != nil {
					res.Interrupted = true
					break
				}
				if itCtx.Err() != nil {
					// Iteration slice spent: defer the rest to the next round.
					break
				}
				checks++
				process(cand, e.safeCheck(itCtx, out.Name, cand))
				if res.Interrupted {
					break
				}
			}
		}
		itCancel()
		if len(batchedRows) > 0 {
			tsp := isp.Child("mine.tree_update", telemetry.Int("rows", int64(len(batchedRows))))
			err := safeAddRows(tree, batchedRows)
			tsp.End()
			if err != nil {
				res.Errors = append(res.Errors, &EngineError{
					Stage: StageTreeUpdate, Output: out.Name, Cause: err,
				})
				st.Faults++
			}
		}
		st.Rows = ds.Rows()
		st.InputSpaceCoverage = res.InputSpaceCoverage()
		ts := tree.Stats()
		st.TreeLeaves, st.TreeNodes = ts.Leaves, ts.Nodes
		res.Iterations = append(res.Iterations, st)
		isp.End(
			telemetry.Int("proved", int64(st.NewProved)),
			telemetry.Int("ctx", int64(st.NewCtx)),
			telemetry.Int("unknown", int64(st.NewUnknown)),
		)
		if res.Interrupted || tree.Converged() {
			break
		}
	}
	if ctx.Err() != nil {
		res.Interrupted = true
	}
	res.Converged = tree.Converged() && !res.Interrupted
	res.StuckLeafs = tree.Stats().StuckLeaves
	res.Elapsed = time.Since(start)
	osp.Annotate(
		telemetry.Bool("converged", res.Converged),
		telemetry.Bool("interrupted", res.Interrupted),
		telemetry.Int("proved", int64(len(res.Proved))),
		telemetry.Int("ctx", int64(len(res.Ctx))),
	)
	return res, nil
}

// MineAll mines every bit of every design output with a shared seed under a
// context. On cancellation or deadline it stops between (or inside) outputs
// and returns the partial result with Interrupted set rather than an error.
func (e *Engine) MineAll(ctx context.Context, seed sim.Stimulus) (*Result, error) {
	return e.MineTargets(ctx, e.Targets(), seed)
}

// Target names one output bit to mine: one independent job of a
// MineTargets run.
type Target struct {
	Output *rtl.Signal
	Bit    int
}

// Targets lists every output bit of the design in declaration order — the
// full job set of MineAll.
func (e *Engine) Targets() []Target {
	var ts []Target
	for _, out := range e.D.Outputs() {
		for bit := 0; bit < out.Width; bit++ {
			ts = append(ts, Target{Output: out, Bit: bit})
		}
	}
	return ts
}

// mineOutputSafe is MineOutput behind a whole-job recover barrier: a panic
// that escapes every per-check barrier (a hostile checker corrupting engine
// state, a bug in the miner itself) degrades only this output — the result is
// replaced by a single StageWorker fault record — and never takes down the
// run or the scheduler.
func (e *Engine) mineOutputSafe(ctx context.Context, out *rtl.Signal, bit int, seed sim.Stimulus) (or *OutputResult, err error) {
	name := "<nil>"
	if out != nil {
		name = out.Name
	}
	defer func() {
		if r := recover(); r != nil {
			err = nil
			or = &OutputResult{Output: name, Bit: bit, Errors: []*EngineError{{
				Stage: StageWorker, Output: name,
				Cause: fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, r),
			}}}
		}
	}()
	return e.MineOutput(ctx, out, bit, seed)
}

// MineTargets mines the given output bits under a context. With
// Cfg.Workers > 1 the jobs are spread over a work-stealing pool (each job on a
// forked engine with its own simulator); results are merged positionally, so
// the mining artifacts are identical for any Workers value. On cancellation
// or deadline the pool drains cleanly: jobs never started are excluded from
// Outputs, running jobs stop at their next boundary and contribute their
// partial results, and Interrupted is set.
func (e *Engine) MineTargets(ctx context.Context, targets []Target, seed sim.Stimulus) (*Result, error) {
	start := time.Now()
	ctx, rsp := e.tel.StartSpan(ctx, "mine.run",
		telemetry.String("design", e.D.Name), telemetry.Int("targets", int64(len(targets))))
	defer rsp.End()
	res := &Result{Design: e.D, Seed: seed}
	cacheBefore := e.cache.Stats()
	workers := e.Cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers <= 1 {
		for _, t := range targets {
			if ctx.Err() != nil {
				res.Interrupted = true
				break
			}
			or, err := e.mineOutputSafe(ctx, t.Output, t.Bit, seed)
			if err != nil {
				return nil, fmt.Errorf("mining %s[%d]: %w", t.Output.Name, t.Bit, err)
			}
			res.Outputs = append(res.Outputs, or)
			if or.Interrupted {
				res.Interrupted = true
			}
		}
		e.finishSched(res, &SchedStats{Workers: 1, Tasks: len(targets)}, cacheBefore)
		res.Elapsed = time.Since(start)
		return res, nil
	}

	outs := make([]*OutputResult, len(targets))
	errs := make([]error, len(targets))
	tasks := make([]sched.Task, len(targets))
	for i := range targets {
		i := i
		t := targets[i]
		tasks[i] = sched.Task{ID: i, Run: func(jctx context.Context) {
			fe, err := e.fork()
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = fe.mineOutputSafe(jctx, t.Output, t.Bit, seed)
		}}
	}
	st := sched.RunTasks(ctx, workers, tasks, func(t sched.Task, pe *sched.PanicError) {
		// Backstop only: mineOutputSafe's own barrier catches job panics, so
		// this fires just for faults in the task closure itself.
		tg := targets[t.ID]
		outs[t.ID] = &OutputResult{Output: tg.Output.Name, Bit: tg.Bit, Errors: []*EngineError{{
			Stage: StageWorker, Output: tg.Output.Name,
			Cause: fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, pe.Value),
		}}}
	})
	for i, t := range targets {
		if errs[i] != nil {
			return nil, fmt.Errorf("mining %s[%d]: %w", t.Output.Name, t.Bit, errs[i])
		}
		if outs[i] == nil {
			// Cancelled before the job started: nothing mined, nothing merged.
			res.Interrupted = true
			continue
		}
		res.Outputs = append(res.Outputs, outs[i])
		if outs[i].Interrupted {
			res.Interrupted = true
		}
	}
	if ctx.Err() != nil {
		res.Interrupted = true
	}
	e.finishSched(res, &SchedStats{
		Workers:      st.Workers,
		Tasks:        st.Tasks,
		TasksStolen:  st.Stolen,
		WorkerPanics: st.Panics,
	}, cacheBefore)
	res.Elapsed = time.Since(start)
	return res, nil
}

// finishSched attaches the run's scheduler telemetry, deriving cache counters
// from the delta of the shared cache's snapshots. With a cache shared across
// engines the delta can include concurrent foreign lookups — advisory numbers,
// see SchedStats.
func (e *Engine) finishSched(res *Result, ss *SchedStats, before sched.CacheStats) {
	after := e.cache.Stats()
	ss.CacheHits = after.Hits - before.Hits
	ss.ChecksDeduped = after.Shared - before.Shared
	ss.CacheMisses = after.Misses - before.Misses
	if n := ss.CacheHits + ss.ChecksDeduped + ss.CacheMisses; n > 0 {
		ss.CacheHitRate = float64(ss.CacheHits+ss.ChecksDeduped) / float64(n)
	}
	res.Sched = ss
}

// MineOutputByName resolves the output by name and mines it under a context.
func (e *Engine) MineOutputByName(ctx context.Context, name string, bit int, seed sim.Stimulus) (*OutputResult, error) {
	out := e.D.Signal(name)
	if out == nil {
		return nil, fmt.Errorf("no signal %q in design %s", name, e.D.Name)
	}
	if out.Kind != rtl.SigOutput && !out.IsState {
		return nil, fmt.Errorf("signal %q is not an output or register", name)
	}
	return e.MineOutput(ctx, out, bit, seed)
}
