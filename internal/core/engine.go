// Package core implements the paper's contribution: counterexample-guided
// iterative refinement of decision trees for validation stimulus generation
// (Figure 3/4 of the paper). For each design output bit it:
//
//  1. simulates the seed stimulus and builds the windowed mining dataset
//     restricted to the output's logic cone,
//  2. builds a decision tree whose pure leaves are 100%-confidence candidate
//     assertions,
//  3. model-checks every candidate; true candidates become proven invariants,
//     false ones yield counterexample traces,
//  4. simulates each counterexample (Ctx_simulation), appends the violating
//     window to the dataset, and incrementally resplits only the failed leaf,
//  5. repeats until every leaf is proven (the final decision tree F_z) or the
//     iteration budget is exhausted.
//
// The accumulated counterexample stimuli are the generated validation
// patterns; together with the proven assertions they are the artifacts the
// paper argues achieve output-centric coverage closure.
//
// Every engine interaction — formal check, counterexample simulation, dataset
// append, incremental tree update — runs behind a recover() barrier. A panic
// or hard error in one check becomes a structured EngineError, the affected
// leaf is marked stuck, and mining continues on the remaining leaves, so a
// single hostile assertion can never lose the accumulated stimulus.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"goldmine/internal/assertion"
	"goldmine/internal/mc"
	"goldmine/internal/mine"
	"goldmine/internal/rtl"
	"goldmine/internal/sim"
	"goldmine/internal/trace"
)

// Config tunes the refinement engine.
type Config struct {
	// Window is the mining window length w (Section 2.1). Combinational
	// designs use 0.
	Window int
	// MaxIterations bounds refinement rounds per output bit.
	MaxIterations int
	// AddFullCtxTrace adds every window of a counterexample trace to the
	// dataset instead of only the violating window.
	AddFullCtxTrace bool
	// MaxChecks bounds the total formal checks per output bit (a safety
	// valve against runaway refinement on outputs with huge relevant
	// cones). 0 means the default of 4000.
	MaxChecks int
	// SignalCone falls back to the paper's signal-granular cone of
	// influence instead of the default bit-level analysis (ablation knob:
	// wide buses then contribute every bit as a split candidate).
	SignalCone bool
	// BatchedChecks implements the performance optimization suggested in
	// Section 7 of the paper: collect every candidate of an iteration,
	// check them all, and only then apply all counterexample rows to the
	// tree in a single incremental update. The default (false) applies
	// each counterexample as soon as it is found, matching the paper's
	// baseline implementation.
	BatchedChecks bool
	// Timeout bounds one MineOutput call by wall clock; zero means no
	// deadline. On expiry the loop stops cleanly, returning everything
	// proved so far with Interrupted set.
	Timeout time.Duration
	// IterationTimeout bounds a single refinement iteration. When a slice
	// expires, the remaining candidates of that iteration are deferred to
	// the next one (their leaves are NOT marked stuck).
	IterationTimeout time.Duration
	// MC are the model checker limits.
	MC mc.Options
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		Window:        1,
		MaxIterations: 64,
		MC:            mc.DefaultOptions(),
	}
}

// FormalChecker is the formal-verification boundary the engine drives. It is
// satisfied by *mc.Checker; tests substitute hostile implementations to prove
// the engine fails soft.
type FormalChecker interface {
	CheckCtx(ctx context.Context, a *assertion.Assertion) (*mc.Result, error)
}

// Stages of the refinement loop where an engine fault can occur.
const (
	StageCheck      = "formal-check"
	StageCtxSim     = "ctx-simulation"
	StageDataset    = "dataset-append"
	StageTreeUpdate = "tree-update"
)

// EngineError is a structured record of a fault (panic or hard error) isolated
// at an engine boundary. The refinement loop records it, marks the leaf stuck,
// and continues.
type EngineError struct {
	Stage     string // one of the Stage* constants
	Output    string // output signal being mined
	Assertion *assertion.Assertion
	Leaf      string // root path of the affected leaf ("var=val/...")
	Cause     error
}

func (e *EngineError) Error() string {
	a := "<none>"
	if e.Assertion != nil {
		a = e.Assertion.String()
	}
	return fmt.Sprintf("engine fault at %s (output %s, leaf %s, assertion %s): %v",
		e.Stage, e.Output, e.Leaf, a, e.Cause)
}

func (e *EngineError) Unwrap() error { return e.Cause }

// AssertionRecord tracks one checked assertion.
type AssertionRecord struct {
	Assertion *assertion.Assertion
	Status    mc.Status
	Method    string
	Iteration int
	// Elapsed is the wall time of the formal check.
	Elapsed time.Duration
	// Degraded marks a verdict weakened by budget pressure.
	Degraded bool
	// Err explains an Unknown status (mc.ErrBudgetExceeded, mc.ErrCanceled,
	// mc.ErrEngineInternal) — it distinguishes "unconverged because hard"
	// from "unconverged because crashed".
	Err error
}

// IterationStats records per-iteration progress (the deterministic metric of
// progress the paper highlights).
type IterationStats struct {
	Iteration  int
	Candidates int
	NewProved  int
	NewCtx     int
	// NewUnknown counts checks that returned no verdict (budget/cancel/fault)
	// this iteration; their leaves are stuck and will not be retried.
	NewUnknown int
	// Faults counts isolated engine faults (panics, hard errors) this
	// iteration; Degraded counts budget-weakened verdicts.
	Faults   int
	Degraded int
	Rows     int
	// CheckTime is the wall time spent inside formal checks this iteration.
	CheckTime time.Duration
	// InputSpaceCoverage is Σ 1/2^depth over assertions proved so far
	// (Section 7.1).
	InputSpaceCoverage float64
	// TreeLeaves and TreeNodes snapshot the incremental tree size.
	TreeLeaves, TreeNodes int
}

// OutputResult is the outcome of mining one output bit.
type OutputResult struct {
	Output string
	Bit    int
	Tree   *mine.Tree

	Proved  []AssertionRecord // includes bounded-proved; see Bounded flag
	Failed  []AssertionRecord // falsified candidates (with the iteration)
	Unknown []AssertionRecord // no verdict: budget exhausted, cancelled, or faulted
	Bounded int               // how many proved records were only bounded

	// Ctx are the counterexample stimuli in discovery order; each one starts
	// from reset and is a complete validation pattern.
	Ctx []sim.Stimulus

	// Errors are the isolated engine faults encountered while mining this
	// output. Each corresponds to a stuck leaf, not a lost run.
	Errors []*EngineError

	Iterations []IterationStats
	Converged  bool
	// Interrupted reports that the overall deadline or a cancellation cut
	// mining short; the partial results above are still valid.
	Interrupted bool
	StuckLeafs  int
	Elapsed     time.Duration
}

// InputSpaceCoverage is the paper's Σ 1/2^depth over proved assertions.
func (r *OutputResult) InputSpaceCoverage() float64 {
	cov := 0.0
	for _, rec := range r.Proved {
		cov += rec.Assertion.InputSpaceFraction()
	}
	if cov > 1 {
		cov = 1
	}
	return cov
}

// Assertions returns the proved assertions.
func (r *OutputResult) Assertions() []*assertion.Assertion {
	out := make([]*assertion.Assertion, len(r.Proved))
	for i, rec := range r.Proved {
		out[i] = rec.Assertion
	}
	return out
}

// Result aggregates mining over several output bits.
type Result struct {
	Design  *rtl.Design
	Outputs []*OutputResult
	Seed    sim.Stimulus
	// Interrupted reports that mining stopped early on cancellation or
	// deadline; Outputs holds everything completed (or partially completed)
	// before the cut.
	Interrupted bool
	Elapsed     time.Duration
}

// Suite returns the complete validation suite: the seed stimulus followed by
// every counterexample pattern (each runs from reset).
func (r *Result) Suite() []sim.Stimulus {
	var suite []sim.Stimulus
	if len(r.Seed) > 0 {
		suite = append(suite, r.Seed)
	}
	for _, o := range r.Outputs {
		suite = append(suite, o.Ctx...)
	}
	return suite
}

// Assertions returns all proved assertions across outputs.
func (r *Result) Assertions() []*assertion.Assertion {
	var out []*assertion.Assertion
	for _, o := range r.Outputs {
		out = append(out, o.Assertions()...)
	}
	return out
}

// Converged reports whether every mined output converged.
func (r *Result) Converged() bool {
	for _, o := range r.Outputs {
		if !o.Converged {
			return false
		}
	}
	return true
}

// Errors collects the isolated engine faults across outputs.
func (r *Result) Errors() []*EngineError {
	var out []*EngineError
	for _, o := range r.Outputs {
		out = append(out, o.Errors...)
	}
	return out
}

// Engine runs the refinement loop for one design.
type Engine struct {
	D       *rtl.Design
	Cfg     Config
	Checker *mc.Checker
	checker FormalChecker // overrides Checker when set (fault injection)
	sim     *sim.Simulator
}

// NewEngine creates an engine (shared model-checker cache across outputs).
func NewEngine(d *rtl.Design, cfg Config) (*Engine, error) {
	s, err := sim.New(d)
	if err != nil {
		return nil, err
	}
	return &Engine{
		D:       d,
		Cfg:     cfg,
		Checker: mc.NewWithOptions(d, cfg.MC),
		sim:     s,
	}, nil
}

// SetChecker substitutes the formal checker — the fault-injection seam. A nil
// fc restores the built-in mc.Checker.
func (e *Engine) SetChecker(fc FormalChecker) { e.checker = fc }

func (e *Engine) formalChecker() FormalChecker {
	if e.checker != nil {
		return e.checker
	}
	return e.Checker
}

// leafKey renders a leaf's root path for fault records.
func leafKey(lf mine.Leaf) string {
	if len(lf.Path) == 0 {
		return "root"
	}
	b := &strings.Builder{}
	for _, st := range lf.Path {
		fmt.Fprintf(b, "%d=%d/", st.Var, st.Value)
	}
	return b.String()
}

// safeCheck runs one formal check behind a recover barrier. A panic or hard
// error becomes an EngineError; budget/cancellation outcomes arrive as an
// Unknown verdict from the checker itself and pass through untouched.
func (e *Engine) safeCheck(ctx context.Context, out string, cand mine.Candidate) (res *mc.Result, eerr *EngineError) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			eerr = &EngineError{
				Stage: StageCheck, Output: out, Assertion: cand.Assertion,
				Leaf:  leafKey(cand.Leaf),
				Cause: fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, r),
			}
		}
	}()
	v, err := e.formalChecker().CheckCtx(ctx, cand.Assertion)
	if err != nil {
		return nil, &EngineError{
			Stage: StageCheck, Output: out, Assertion: cand.Assertion,
			Leaf:  leafKey(cand.Leaf),
			Cause: fmt.Errorf("%w: %v", mc.ErrEngineInternal, err),
		}
	}
	if v == nil {
		return nil, &EngineError{
			Stage: StageCheck, Output: out, Assertion: cand.Assertion,
			Leaf:  leafKey(cand.Leaf),
			Cause: fmt.Errorf("%w: checker returned no verdict", mc.ErrEngineInternal),
		}
	}
	return v, nil
}

// safeCtxSim simulates a counterexample stimulus behind a recover barrier
// (hostile checkers can return malformed traces that trip the simulator).
func (e *Engine) safeCtxSim(stim sim.Stimulus) (tr *sim.Trace, err error) {
	defer func() {
		if r := recover(); r != nil {
			tr = nil
			err = fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, r)
		}
	}()
	return e.sim.Run(stim)
}

// safeAddRows applies an incremental tree update behind a recover barrier.
func safeAddRows(t *mine.Tree, rows []int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: panic: %v", mc.ErrEngineInternal, r)
		}
	}()
	return t.AddRows(rows)
}

// MineOutput runs counterexample-guided refinement for one bit of an output.
// The seed stimulus may be empty (the zero-pattern limit study of Section
// 7.2: mining starts from the single assertion "output always 0").
func (e *Engine) MineOutput(out *rtl.Signal, bit int, seed sim.Stimulus) (*OutputResult, error) {
	return e.MineOutputCtx(context.Background(), out, bit, seed)
}

// MineOutputCtx is MineOutput under a context and the configured deadlines.
// Cancellation and deadline expiry are not errors: the loop stops at the next
// boundary and returns the partial result with Interrupted set.
func (e *Engine) MineOutputCtx(ctx context.Context, out *rtl.Signal, bit int, seed sim.Stimulus) (*OutputResult, error) {
	start := time.Now()
	if e.Cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Cfg.Timeout)
		defer cancel()
	}
	window := e.Cfg.Window
	if len(e.D.Registers()) == 0 {
		window = 0
	}
	ds, err := trace.NewDatasetCfg(e.D, out, bit, window, !e.Cfg.SignalCone)
	if err != nil {
		return nil, err
	}
	if len(seed) > 0 {
		tr, err := e.sim.Run(seed)
		if err != nil {
			return nil, err
		}
		if _, err := ds.AddTrace(tr, 0); err != nil {
			return nil, err
		}
	}
	tree := mine.Build(ds)
	res := &OutputResult{Output: out.Name, Bit: bit, Tree: tree}

	maxIter := e.Cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	maxChecks := e.Cfg.MaxChecks
	if maxChecks <= 0 {
		maxChecks = 4000
	}
	checks := 0
	fault := func(st *IterationStats, node *mine.Node, rec AssertionRecord, ee *EngineError) {
		node.Stuck = true
		res.Errors = append(res.Errors, ee)
		rec.Status = mc.StatusUnknown
		rec.Err = ee.Cause
		res.Unknown = append(res.Unknown, rec)
		st.Faults++
		st.NewUnknown++
	}
	for it := 1; it <= maxIter && checks < maxChecks; it++ {
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		itCtx, itCancel := ctx, context.CancelFunc(func() {})
		if e.Cfg.IterationTimeout > 0 {
			itCtx, itCancel = context.WithTimeout(ctx, e.Cfg.IterationTimeout)
		}
		cands := tree.Candidates()
		st := IterationStats{Iteration: it, Candidates: len(cands)}
		if len(cands) == 0 {
			itCancel()
			break
		}
		var batchedRows []int
		for _, cand := range cands {
			node := cand.Leaf.Node
			// The tree may have changed under us (full-trace mode): skip
			// candidates whose leaf is gone or no longer pure.
			if !node.IsLeaf() || node.Proved || node.Stuck || !node.Pure() {
				continue
			}
			if checks >= maxChecks {
				break
			}
			if ctx.Err() != nil {
				res.Interrupted = true
				break
			}
			if itCtx.Err() != nil {
				// Iteration slice spent: defer the rest to the next round.
				break
			}
			checks++
			verdict, eerr := e.safeCheck(itCtx, out.Name, cand)
			rec := AssertionRecord{Assertion: cand.Assertion, Iteration: it}
			if eerr != nil {
				fault(&st, node, rec, eerr)
				continue
			}
			rec.Status = verdict.Status
			rec.Method = verdict.Method
			rec.Elapsed = verdict.Elapsed
			rec.Degraded = verdict.Degraded
			st.CheckTime += verdict.Elapsed
			if verdict.Degraded {
				st.Degraded++
			}
			switch verdict.Status {
			case mc.StatusProved, mc.StatusBounded:
				node.Proved = true
				res.Proved = append(res.Proved, rec)
				if verdict.Status == mc.StatusBounded {
					res.Bounded++
				}
				st.NewProved++
			case mc.StatusFalsified:
				// Ctx_simulation: concrete values for every cone signal. The
				// counterexample only counts once it replays cleanly — a
				// malformed trace from a faulty engine must not pollute the
				// validation suite.
				ctxTrace, err := e.safeCtxSim(verdict.Ctx)
				if err != nil {
					fault(&st, node, rec, &EngineError{
						Stage: StageCtxSim, Output: out.Name,
						Assertion: cand.Assertion, Leaf: leafKey(cand.Leaf),
						Cause: err,
					})
					continue
				}
				var newRows []int
				if e.Cfg.AddFullCtxTrace {
					before := ds.Rows()
					if _, err := ds.AddTrace(ctxTrace, it); err != nil {
						fault(&st, node, rec, &EngineError{
							Stage: StageDataset, Output: out.Name,
							Assertion: cand.Assertion, Leaf: leafKey(cand.Leaf),
							Cause: err,
						})
						continue
					}
					for r := before; r < ds.Rows(); r++ {
						newRows = append(newRows, r)
					}
				} else {
					r, err := ds.LastWindowRow(ctxTrace, it)
					if err != nil {
						fault(&st, node, rec, &EngineError{
							Stage: StageDataset, Output: out.Name,
							Assertion: cand.Assertion, Leaf: leafKey(cand.Leaf),
							Cause: err,
						})
						continue
					}
					newRows = append(newRows, r)
				}
				res.Failed = append(res.Failed, rec)
				res.Ctx = append(res.Ctx, verdict.Ctx)
				st.NewCtx++
				if e.Cfg.BatchedChecks {
					batchedRows = append(batchedRows, newRows...)
				} else if err := safeAddRows(tree, newRows); err != nil {
					res.Errors = append(res.Errors, &EngineError{
						Stage: StageTreeUpdate, Output: out.Name,
						Assertion: cand.Assertion, Leaf: leafKey(cand.Leaf),
						Cause: err,
					})
					st.Faults++
				}
			case mc.StatusUnknown:
				if itCtx.Err() != nil && (verdict.Cause == nil || mc.IsBudget(verdict.Cause)) {
					// The iteration (or overall) deadline expired mid-check,
					// not the per-check budget: the leaf is retryable.
					res.Unknown = append(res.Unknown, rec)
					st.NewUnknown++
					if ctx.Err() != nil {
						res.Interrupted = true
					}
					continue
				}
				// A per-check budget verdict: retrying next iteration would
				// livelock, so the leaf is parked as stuck.
				node.Stuck = true
				rec.Err = verdict.Cause
				res.Unknown = append(res.Unknown, rec)
				st.NewUnknown++
			}
			if res.Interrupted {
				break
			}
		}
		itCancel()
		if len(batchedRows) > 0 {
			if err := safeAddRows(tree, batchedRows); err != nil {
				res.Errors = append(res.Errors, &EngineError{
					Stage: StageTreeUpdate, Output: out.Name, Cause: err,
				})
				st.Faults++
			}
		}
		st.Rows = ds.Rows()
		st.InputSpaceCoverage = res.InputSpaceCoverage()
		ts := tree.Stats()
		st.TreeLeaves, st.TreeNodes = ts.Leaves, ts.Nodes
		res.Iterations = append(res.Iterations, st)
		if res.Interrupted || tree.Converged() {
			break
		}
	}
	if ctx.Err() != nil {
		res.Interrupted = true
	}
	res.Converged = tree.Converged() && !res.Interrupted
	res.StuckLeafs = tree.Stats().StuckLeaves
	res.Elapsed = time.Since(start)
	return res, nil
}

// MineAll mines every bit of every design output with a shared seed.
func (e *Engine) MineAll(seed sim.Stimulus) (*Result, error) {
	return e.MineAllCtx(context.Background(), seed)
}

// MineAllCtx mines every output bit under a context. On cancellation or
// deadline it stops between (or inside) outputs and returns the partial
// result with Interrupted set rather than an error.
func (e *Engine) MineAllCtx(ctx context.Context, seed sim.Stimulus) (*Result, error) {
	start := time.Now()
	res := &Result{Design: e.D, Seed: seed}
	for _, out := range e.D.Outputs() {
		for bit := 0; bit < out.Width; bit++ {
			if ctx.Err() != nil {
				res.Interrupted = true
				res.Elapsed = time.Since(start)
				return res, nil
			}
			or, err := e.MineOutputCtx(ctx, out, bit, seed)
			if err != nil {
				return nil, fmt.Errorf("mining %s[%d]: %w", out.Name, bit, err)
			}
			res.Outputs = append(res.Outputs, or)
			if or.Interrupted {
				res.Interrupted = true
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// MineOutputByName is a convenience wrapper resolving the output by name.
func (e *Engine) MineOutputByName(name string, bit int, seed sim.Stimulus) (*OutputResult, error) {
	return e.MineOutputByNameCtx(context.Background(), name, bit, seed)
}

// MineOutputByNameCtx resolves the output by name and mines it under a
// context.
func (e *Engine) MineOutputByNameCtx(ctx context.Context, name string, bit int, seed sim.Stimulus) (*OutputResult, error) {
	out := e.D.Signal(name)
	if out == nil {
		return nil, fmt.Errorf("no signal %q in design %s", name, e.D.Name)
	}
	if out.Kind != rtl.SigOutput && !out.IsState {
		return nil, fmt.Errorf("signal %q is not an output or register", name)
	}
	return e.MineOutputCtx(ctx, out, bit, seed)
}
