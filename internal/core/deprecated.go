// Deprecated context-free entry points, kept for one release while callers
// migrate to the context-first Engine methods. Each is a thin wrapper that
// supplies context.Background(); none add behaviour. They are package-level
// functions (not methods) so `Engine` itself exposes exactly one way to run
// each operation.
package core

import (
	"context"

	"goldmine/internal/rtl"
	"goldmine/internal/sim"
)

// MineOutputBackground mines one output bit without cancellation.
//
// Deprecated: use Engine.MineOutput with a context.
func MineOutputBackground(e *Engine, out *rtl.Signal, bit int, seed sim.Stimulus) (*OutputResult, error) {
	return e.MineOutput(context.Background(), out, bit, seed)
}

// MineAllBackground mines every output bit without cancellation.
//
// Deprecated: use Engine.MineAll with a context.
func MineAllBackground(e *Engine, seed sim.Stimulus) (*Result, error) {
	return e.MineAll(context.Background(), seed)
}

// MineTargetsBackground mines the given targets without cancellation.
//
// Deprecated: use Engine.MineTargets with a context.
func MineTargetsBackground(e *Engine, targets []Target, seed sim.Stimulus) (*Result, error) {
	return e.MineTargets(context.Background(), targets, seed)
}

// MineOutputByNameBackground mines one named output bit without cancellation.
//
// Deprecated: use Engine.MineOutputByName with a context.
func MineOutputByNameBackground(e *Engine, name string, bit int, seed sim.Stimulus) (*OutputResult, error) {
	return e.MineOutputByName(context.Background(), name, bit, seed)
}
