package core

import (
	"context"

	"testing"

	"goldmine/internal/sim"
)

func TestMinimizeCtxShrinks(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) == 0 {
		t.Fatal("need failed assertions to minimize against")
	}
	for i, rec := range res.Failed {
		if i >= len(res.Ctx) {
			break
		}
		ctx := res.Ctx[i]
		// Pad the ctx with irrelevant leading noise: minimization must strip it.
		padded := sim.Stimulus{{"req1": 1}, {"req0": 1, "req1": 1}}
		padded = append(padded, ctx.Clone()...)
		min, err := MinimizeCtx(e.D, rec.Assertion, padded)
		if err != nil {
			// The padded prefix may change register state so the original
			// window no longer violates: acceptable, try the raw ctx then.
			min, err = MinimizeCtx(e.D, rec.Assertion, ctx)
			if err != nil {
				t.Fatalf("ctx %d: %v", i, err)
			}
		}
		if len(min) > len(padded) {
			t.Errorf("ctx %d grew: %d -> %d", i, len(padded), len(min))
		}
		// The minimized pattern still violates.
		tr, err := sim.Simulate(e.D, min)
		if err != nil {
			t.Fatal(err)
		}
		if !violatesAt(tr, rec.Assertion, len(min)-(rec.Assertion.Consequent.Offset+1)) {
			t.Errorf("ctx %d: minimized stimulus no longer violates %s", i, rec.Assertion)
		}
		// Minimality of length: window-size lower bound respected.
		if len(min) < rec.Assertion.Consequent.Offset+1 {
			t.Errorf("ctx %d too short: %d cycles", i, len(min))
		}
	}
}

func TestMinimizeCtxZeroesIrrelevantInputs(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	totalBefore, totalAfter := 0, 0
	for i, rec := range res.Failed {
		if i >= len(res.Ctx) {
			break
		}
		min, err := MinimizeCtx(e.D, rec.Assertion, res.Ctx[i])
		if err != nil {
			continue
		}
		for c := range res.Ctx[i] {
			totalBefore += len(res.Ctx[i][c])
		}
		for c := range min {
			totalAfter += len(min[c])
		}
	}
	if totalAfter > totalBefore {
		t.Errorf("minimization increased assignments: %d -> %d", totalBefore, totalAfter)
	}
}

func TestMinimizeCtxErrors(t *testing.T) {
	e := mustEngine(t, arbiterSrc, DefaultConfig())
	res, err := e.MineOutputByName(context.Background(), "gnt0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Proved[0].Assertion // true assertion: nothing violates it
	if _, err := MinimizeCtx(e.D, a, sim.Stimulus{{"rst": 1}, {}, {}}); err == nil {
		t.Error("non-violating stimulus should error")
	}
	if _, err := MinimizeCtx(e.D, a, nil); err == nil {
		t.Error("empty stimulus should error")
	}
}
