package sat

import (
	"math/rand"
	"sync"
	"testing"
)

// lubyRef is an independent reference for the Luby sequence: the k-th term is
// 2^(i-1) when k = 2^i - 1, else the sequence restarts at k - 2^(i-1) + 1 for
// the largest i with 2^(i-1) <= k < 2^i - 1. Computed iteratively, unlike the
// recursive production version.
func lubyRef(k int64) int64 {
	for {
		// Find size = 2^i - 1, the smallest full prefix covering k.
		size := int64(1)
		for size < k {
			size = 2*size + 1
		}
		if k == size {
			return (size + 1) / 2
		}
		k -= (size - 1) / 2
	}
}

func TestLubySequenceAgainstReference(t *testing.T) {
	// The canonical prefix, then a long stretch against the reference.
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
	for i := int64(1); i <= 4096; i++ {
		if got, ref := luby(i), lubyRef(i); got != ref {
			t.Fatalf("luby(%d) = %d, reference %d", i, got, ref)
		}
	}
	// Structural properties: every term is a power of two, and term 2^k - 1
	// is exactly 2^(k-1).
	for k := uint(1); k <= 12; k++ {
		i := int64(1)<<k - 1
		if got := luby(i); got != int64(1)<<(k-1) {
			t.Fatalf("luby(2^%d-1) = %d, want %d", k, got, int64(1)<<(k-1))
		}
	}
}

func TestNewMatchesDefaultConfig(t *testing.T) {
	if got, want := New().Config(), DefaultConfig(); got != want {
		t.Fatalf("New config %+v, want %+v", got, want)
	}
	if got := NewWithConfig(Config{}).Config(); got != DefaultConfig() {
		t.Fatalf("zero Config normalized to %+v, want defaults", got)
	}
}

// addAll loads a CNF, reporting whether the solver is still live.
func addAll(t *testing.T, s *Solver, cnf [][]Lit) bool {
	t.Helper()
	for _, cl := range cnf {
		if ok, err := s.AddClause(cl...); err != nil {
			t.Fatal(err)
		} else if !ok {
			return false
		}
	}
	return true
}

// randomCNF3 builds a random 3-CNF over nv variables.
func randomCNF3(rng *rand.Rand, nv, nc int) [][]Lit {
	var cnf [][]Lit
	for i := 0; i < nc; i++ {
		cl := make([]Lit, 0, 3)
		for j := 0; j < 3; j++ {
			v := Lit(1 + rng.Intn(nv))
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl = append(cl, v)
		}
		cnf = append(cnf, cl)
	}
	return cnf
}

// TestConfigsAgreeWithBruteForce runs every portfolio configuration over
// random formulas and checks each against exhaustive enumeration: the knobs
// may change the search path but never the verdict.
func TestConfigsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	configs := []Config{
		DefaultConfig(),
		PortfolioConfig(1),
		PortfolioConfig(2),
		PortfolioConfig(3),
		{Restart: RestartGeometric, RestartBase: 2, RestartGrow: 1.1},
		{RandomFreq: 0.5, Seed: 99, PhaseDefault: true},
	}
	for iter := 0; iter < 120; iter++ {
		nv := 4 + rng.Intn(6)
		cnf := randomCNF3(rng, nv, 2+rng.Intn(4*nv))
		want := bruteForce(nv, cnf)
		for ci, cfg := range configs {
			s := NewWithConfig(cfg)
			got := Unsat
			if addAll(t, s, cnf) {
				got = s.Solve()
			}
			if (got == Sat) != want {
				t.Fatalf("iter %d config %d: solver=%v brute=%v cnf=%v", iter, ci, got, want, cnf)
			}
			if got == Sat {
				for _, cl := range cnf {
					sat := false
					for _, l := range cl {
						if s.ValueLit(l) {
							sat = true
						}
					}
					if !sat {
						t.Fatalf("iter %d config %d: model misses clause %v", iter, ci, cl)
					}
				}
			}
		}
	}
}

// TestConfigDeterminism checks that equal configurations replay the identical
// search (statistic-for-statistic), and that the random-decision stream is a
// pure function of the seed.
func TestConfigDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cnf := randomCNF3(rng, 12, 50)
	run := func(cfg Config) (Status, int64, int64, int64) {
		s := NewWithConfig(cfg)
		if !addAll(t, s, cnf) {
			return Unsat, 0, 0, 0
		}
		st := s.Solve()
		return st, s.Conflicts, s.Decisions, s.Propagations
	}
	cfg := Config{RandomFreq: 0.2, Seed: 42, Restart: RestartGeometric, RestartBase: 8}
	st1, c1, d1, p1 := run(cfg)
	st2, c2, d2, p2 := run(cfg)
	if st1 != st2 || c1 != c2 || d1 != d2 || p1 != p2 {
		t.Fatalf("same config diverged: (%v %d %d %d) vs (%v %d %d %d)",
			st1, c1, d1, p1, st2, c2, d2, p2)
	}
}

// pigeonCNF encodes the pigeonhole principle with n+1 pigeons in n holes
// (unsatisfiable, and hard enough to force real search).
func pigeonCNF(n int) (int, [][]Lit) {
	v := func(p, h int) Lit { return Lit(p*n + h + 1) }
	var cnf [][]Lit
	for p := 0; p <= n; p++ {
		var cl []Lit
		for h := 0; h < n; h++ {
			cl = append(cl, v(p, h))
		}
		cnf = append(cnf, cl)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				cnf = append(cnf, []Lit{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return (n + 1) * n, cnf
}

func TestGeometricRestartsSolvePigeonhole(t *testing.T) {
	for _, cfg := range []Config{
		{Restart: RestartGeometric, RestartBase: 2, RestartGrow: 1.2},
		{Restart: RestartGeometric, RestartBase: 1, RestartGrow: 1.05, RandomFreq: 0.1, Seed: 3},
	} {
		s := NewWithConfig(cfg)
		_, cnf := pigeonCNF(5)
		if addAll(t, s, cnf) {
			if st := s.Solve(); st != Unsat {
				t.Fatalf("pigeonhole(5) under %+v: %v", cfg, st)
			}
		}
	}
}

func TestClausePoolBasics(t *testing.T) {
	p := NewClausePool(3)
	if !p.Publish(1, []Lit{1, 2}) || !p.Publish(2, []Lit{-1, 3}) {
		t.Fatal("publish into empty pool refused")
	}
	// Importer 1 skips its own export.
	got, cur := p.CollectSince(0, 1)
	if len(got) != 1 || got[0][0] != -1 {
		t.Fatalf("collect for src 1: %v", got)
	}
	if cur != 2 {
		t.Fatalf("cursor = %d, want 2", cur)
	}
	// Nothing new: fast path returns the same cursor.
	if got, cur2 := p.CollectSince(cur, 1); got != nil || cur2 != cur {
		t.Fatalf("idle collect: %v %d", got, cur2)
	}
	// Cap: third accepted, fourth dropped.
	if !p.Publish(3, []Lit{4}) {
		t.Fatal("publish under cap refused")
	}
	if p.Publish(3, []Lit{5}) {
		t.Fatal("publish over cap accepted")
	}
	if p.Len() != 3 || p.Exports() != 3 || p.Dropped() != 1 {
		t.Fatalf("accounting: len=%d exports=%d dropped=%d", p.Len(), p.Exports(), p.Dropped())
	}
	// A cursor ahead of an empty region stays put.
	if _, cur := p.CollectSince(99, 0); cur != 99 {
		t.Fatalf("overshoot cursor moved to %d", cur)
	}
}

// TestShareExportImport runs one solver to completion on a hard formula and
// checks that a second aligned solver adopts its published learnts.
func TestShareExportImport(t *testing.T) {
	nv, cnf := pigeonCNF(5)
	pool := NewClausePool(0)

	a := New()
	a.Share, a.ShareID, a.ShareVarCap = pool, 1, nv
	if addAll(t, a, cnf) {
		if st := a.Solve(); st != Unsat {
			t.Fatalf("exporter: %v", st)
		}
	}
	if a.SharedExports == 0 || pool.Len() == 0 {
		t.Fatalf("exporter published nothing (exports=%d pool=%d)", a.SharedExports, pool.Len())
	}

	b := New()
	b.Share, b.ShareID, b.ShareVarCap = pool, 2, nv
	if addAll(t, b, cnf) {
		if st := b.Solve(); st != Unsat {
			t.Fatalf("importer: %v", st)
		}
	}
	if b.SharedImports == 0 {
		t.Fatal("importer adopted nothing")
	}
	if b.Conflicts >= a.Conflicts {
		t.Logf("note: import did not reduce conflicts (a=%d b=%d)", a.Conflicts, b.Conflicts)
	}
}

// TestSimplifyRetiresSatisfiedClauses checks the activation-literal lifecycle:
// clauses guarded by act are retired by the unit ¬act + Simplify, and the
// solver stays correct afterwards.
func TestSimplifyRetiresSatisfiedClauses(t *testing.T) {
	s := New()
	const act = 5
	// (x1 | x2 | ¬act) & (¬x1 | x3 | ¬act) with act forced on, plus a free
	// clause (x4).
	s.AddClause(1, 2, -act)
	s.AddClause(-1, 3, -act)
	s.AddClause(4)
	if st := s.Solve(Lit(act)); st != Sat {
		t.Fatalf("under act: %v", st)
	}
	before := s.NumClauses()
	// Retire: act is now false forever; both guarded clauses are satisfied.
	s.AddClause(Lit(-act))
	s.Simplify()
	if got := s.NumClauses(); got >= before {
		t.Fatalf("Simplify retired nothing: %d -> %d", before, got)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("after retirement: %v", st)
	}
	if !s.Value(4) {
		t.Fatal("free clause lost in retirement")
	}
	// Solving under the retired activator is now vacuously Unsat.
	if st := s.Solve(Lit(act)); st != Unsat {
		t.Fatalf("assuming retired act: %v", st)
	}
}

// TestImportAfterRetirement is the Simplify/import edge case: after a unit
// ¬act retirement, imported clauses mentioning the retired literal must be
// skipped (when satisfied by ¬act) or stripped (when they contain the dead
// act literal), never corrupt the solver.
func TestImportAfterRetirement(t *testing.T) {
	pool := NewClausePool(0)
	s := New()
	const act = 4
	s.AddClause(1, 2)
	s.AddClause(3, -act)
	s.ensure(act)
	// Retire act, then Simplify away the guarded clause.
	s.AddClause(Lit(-act))
	s.Simplify()

	// A sibling publishes clauses touching the retired literal.
	pool.Publish(9, []Lit{-act, 1})     // satisfied by ¬act: skip
	pool.Publish(9, []Lit{Lit(act), 2}) // act is false: strips to unit (2)
	pool.Publish(9, []Lit{-1, -2, 3})   // ordinary clause: adopt
	s.Share, s.ShareID, s.ShareVarCap = pool, 1, 4

	if st := s.Solve(); st != Sat {
		t.Fatalf("after imports: %v", st)
	}
	if !s.Value(2) {
		t.Fatal("stripped unit (2) was not propagated")
	}
	if s.SharedImports != 2 {
		t.Fatalf("SharedImports = %d, want 2 (skip the ¬act-satisfied one)", s.SharedImports)
	}
	// The adopted ternary must bind: with 2 fixed true it reduces to
	// (¬1 ∨ 3), so assuming 1 forces 3.
	if st := s.Solve(1); st != Sat {
		t.Fatalf("assuming 1: %v", st)
	}
	if !s.Value(3) {
		t.Fatal("imported clause (-1 -2 3) did not propagate 3")
	}
}

// TestImportUnknownVariableSkipped: a clause mentioning a variable the
// importer has not allocated is skipped rather than force-grown — growing
// would desynchronize the aligned variable spaces.
func TestImportUnknownVariableSkipped(t *testing.T) {
	pool := NewClausePool(0)
	pool.Publish(9, []Lit{100, -101})
	s := New()
	s.AddClause(1)
	s.Share, s.ShareID, s.ShareVarCap = pool, 1, 1
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve: %v", st)
	}
	if s.SharedImports != 0 {
		t.Fatalf("adopted misaligned clause (imports=%d)", s.SharedImports)
	}
	if s.NumVars() != 1 {
		t.Fatalf("import grew variable table to %d", s.NumVars())
	}
}

// TestImportUnitAndRefutation: imported units propagate at level 0, and an
// import completing a refutation makes the solver permanently unsat.
func TestImportUnitAndRefutation(t *testing.T) {
	pool := NewClausePool(0)
	pool.Publish(9, []Lit{2})
	s := New()
	s.AddClause(1, 2)
	s.ensure(2)
	s.Share, s.ShareID, s.ShareVarCap = pool, 1, 2
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve: %v", st)
	}
	if !s.Value(2) {
		t.Fatal("imported unit not applied")
	}
	// Now publish the refuting unit.
	pool.Publish(9, []Lit{-2})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("refuting import: %v", st)
	}
	if st := s.Solve(); st != Unsat {
		t.Fatal("unsat is sticky after import refutation")
	}
}

// TestSharedSolveConcurrent races diversified solvers over one pool on the
// same formula under -race: verdicts must agree and the pool must survive
// concurrent export/import traffic.
func TestSharedSolveConcurrent(t *testing.T) {
	nv, cnf := pigeonCNF(5)
	pool := NewClausePool(0)
	const workers = 4
	var wg sync.WaitGroup
	verdicts := make([]Status, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewWithConfig(PortfolioConfig(i))
			s.Share, s.ShareID, s.ShareVarCap = pool, uint64(i+1), nv
			live := true
			for _, cl := range cnf {
				if ok, err := s.AddClause(cl...); err != nil || !ok {
					live = ok
					if err != nil {
						t.Error(err)
					}
					break
				}
			}
			if live {
				verdicts[i] = s.Solve()
			} else {
				verdicts[i] = Unsat
			}
		}(i)
	}
	wg.Wait()
	for i, v := range verdicts {
		if v != Unsat {
			t.Fatalf("worker %d: %v", i, v)
		}
	}
}

// TestClausePoolConcurrentTraffic hammers Publish/CollectSince from many
// goroutines (run under -race).
func TestClausePoolConcurrentTraffic(t *testing.T) {
	pool := NewClausePool(4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cursor := 0
			for i := 0; i < 200; i++ {
				pool.Publish(uint64(w), []Lit{Lit(w + 1), Lit(-(i%7 + 1))})
				var got [][]Lit
				got, cursor = pool.CollectSince(cursor, uint64(w))
				for _, cl := range got {
					if len(cl) == 0 {
						t.Error("empty clause collected")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if pool.Len() == 0 {
		t.Fatal("no traffic recorded")
	}
}
