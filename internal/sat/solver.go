// Package sat implements an incremental CDCL (conflict-driven clause
// learning) SAT solver in the MiniSat lineage: two-literal watching, first-UIP
// conflict analysis with clause learning and non-chronological backjumping,
// EVSIDS variable activity, phase saving, Luby restarts and solving under
// assumptions. It is the decision procedure behind the GoldMine formal
// verification engine (bounded model checking and k-induction).
//
// Variables are positive integers. A literal is a signed variable: +v is the
// positive literal, -v the negation, as in DIMACS.
//
// # Concurrency contract
//
// A *Solver is single-goroutine: it keeps trail, watcher, and activity state
// across calls and must never be shared between goroutines without external
// synchronization. Distinct Solver instances share nothing — the package has
// no mutable package-level state (only sentinel error values) and no pooled
// scratch buffers — so the one-solver-per-goroutine pattern used by the
// parallel mining scheduler is safe by construction. Cancellation is
// cooperative: SolveCtx polls its context between propagations, so the owner
// goroutine cancels a search via the context, not by touching the solver.
package sat

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Budget-stop causes reported by StopCause after an Unknown verdict.
var (
	// ErrConflictBudget: MaxConflicts was exhausted.
	ErrConflictBudget = errors.New("sat: conflict budget exhausted")
	// ErrPropagationBudget: MaxPropagations was exhausted.
	ErrPropagationBudget = errors.New("sat: propagation budget exhausted")
	// ErrDeadline: the Deadline passed mid-search.
	ErrDeadline = errors.New("sat: deadline exceeded")
)

// ErrZeroLit is returned by AddClause when a clause contains literal 0.
var ErrZeroLit = errors.New("sat: zero literal")

// Lit is a DIMACS-style literal: +v or -v for variable v >= 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// internal literal encoding: variable index v (1-based) maps to 2v (positive)
// and 2v+1 (negative).
type ilit uint32

func toInternal(l Lit) ilit {
	if l > 0 {
		return ilit(2 * l)
	}
	return ilit(-2*l + 1)
}

func fromInternal(il ilit) Lit {
	v := Lit(il >> 1)
	if il&1 == 1 {
		return -v
	}
	return v
}

func (il ilit) neg() ilit { return il ^ 1 }
func (il ilit) vix() int  { return int(il >> 1) }

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits     []ilit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker ilit
}

type varData struct {
	assign lbool
	level  int
	reason *clause
	phase  bool // saved phase: last assigned polarity
	seen   bool
}

// Status is the solver verdict.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Solver is an incremental CDCL SAT solver.
type Solver struct {
	vars []varData // index 1..n
	// activity is EVSIDS variable activity, kept out of varData in a dense
	// slice of its own: the decision heap's comparisons are the hottest
	// random-access pattern in the solver, and packing the activities
	// together keeps them cache-resident.
	activity []float64 // index 1..n, parallel to vars
	clauses  []*clause
	learnts  []*clause
	// watches is indexed by internal literal (2v / 2v+1): a flat slice
	// instead of a map keeps the unit-propagation inner loop free of hashing
	// and map-growth allocations (it is the hottest path of the checker).
	watches [][]watcher

	trail    []ilit
	trailLim []int
	qhead    int

	// analyze/minimize scratch buffers, reused across conflicts so clause
	// learning allocates only the final learnt clause (exact-sized), not the
	// append-grown intermediates.
	learntBuf  []ilit
	cleanupBuf []int

	varInc   float64
	claInc   float64
	varDecay float64
	claDecay float64

	// cfg is the normalized search configuration (restart schedule, phase
	// default, decision noise); rng is the xorshift64 state behind
	// cfg.RandomFreq.
	cfg Config
	rng uint64

	order *activityHeap

	unsat bool // empty clause derived at level 0

	// Share, when non-nil, connects the solver to a shared learned-clause
	// pool. Small, low-LBD learnts whose variables fall inside ShareVarCap
	// are exported as they are learned; clauses published by other solvers
	// are imported at level-0 safe points (solve start and every restart).
	// Sharing is sound only between solvers whose NewVar/clause sequences
	// encode the same formula over the same variable numbering — the caller
	// owns that alignment invariant.
	Share *ClausePool
	// ShareID tags this solver's exports so it skips them on import.
	ShareID uint64
	// ShareVarCap is the highest variable index allowed in an exported
	// clause. 0 disables export (import still runs). Capping at the aligned
	// prefix of the variable space keeps every published clause meaningful —
	// and immediately importable — for all participants.
	ShareVarCap int
	shareCursor int   // next unread pool index
	lbdScratch  []int // distinct-level scratch for export filtering

	// statistics
	Conflicts     int64
	Decisions     int64
	Propagations  int64
	Learned       int64
	Restarts      int64
	SharedExports int64 // learnts published to Share
	SharedImports int64 // clauses adopted from Share

	// Counters, when non-nil, receives the deltas of the solver's search
	// statistics (and one solve tick) at the end of every Solve/SolveCtx call.
	// The aggregation is delta-based and paid once per solve, so the search
	// loop itself carries no telemetry cost.
	Counters *SolveCounters

	// MaxConflicts bounds one Solve call; <= 0 means unlimited.
	MaxConflicts int64
	// MaxPropagations bounds one Solve call; <= 0 means unlimited. Unlike
	// conflicts, propagations accrue on every search step, so this is a
	// deterministic work budget even on easy instances.
	MaxPropagations int64
	// Deadline bounds one Solve call by wall clock; the zero value means no
	// deadline. Polled every pollInterval propagations.
	Deadline time.Time

	// cancellation/budget state of the in-flight Solve
	ctx       context.Context
	polling   bool
	nextPoll  int64
	propLimit int64
	stopCause error
}

// pollInterval is how many propagations elapse between budget/cancellation
// polls. It is small enough that a cancelled context stops the search within
// well under 100 ms on any realistic workload, and large enough that polling
// is invisible in profiles.
const pollInterval = 2048

// New creates an empty solver with the default configuration.
func New() *Solver {
	return NewWithConfig(Config{})
}

// NewWithConfig creates an empty solver using cfg (zero fields are filled
// with defaults; NewWithConfig(Config{}) ≡ New()).
func NewWithConfig(cfg Config) *Solver {
	cfg = cfg.normalize()
	s := &Solver{
		varInc:   1,
		claInc:   1,
		varDecay: cfg.VarDecay,
		claDecay: cfg.ClaDecay,
		cfg:      cfg,
		rng:      cfg.Seed,
	}
	s.vars = make([]varData, 1) // index 0 unused
	s.activity = make([]float64, 1)
	s.watches = make([][]watcher, 2) // ilits 0,1 unused
	s.order = newActivityHeap(s)
	return s
}

// Config returns the solver's normalized configuration.
func (s *Solver) Config() Config { return s.cfg }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	s.vars = append(s.vars, varData{phase: s.cfg.PhaseDefault})
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	v := len(s.vars) - 1
	s.order.push(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.vars) - 1 }

// ensure grows the variable table to cover v.
func (s *Solver) ensure(v int) {
	for len(s.vars) <= v {
		s.NewVar()
	}
}

func (s *Solver) value(il ilit) lbool {
	a := s.vars[il.vix()].assign
	if a == lUndef {
		return lUndef
	}
	if il&1 == 1 { // negative literal
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// AddClause adds a clause (a disjunction of literals). Returns false if the
// formula is already unsatisfiable at level 0. A clause containing literal 0
// is rejected with ErrZeroLit and leaves the solver untouched.
func (s *Solver) AddClause(lits ...Lit) (bool, error) {
	for _, l := range lits {
		if l == 0 {
			return false, fmt.Errorf("%w in clause %v", ErrZeroLit, lits)
		}
	}
	if s.unsat {
		return false, nil
	}
	s.backjump(0) // incremental use: drop the previous model's decisions
	ils := make([]ilit, 0, len(lits))
	for _, l := range lits {
		s.ensure(l.Var())
		ils = append(ils, toInternal(l))
	}
	// Simplify: dedupe, drop false literals, detect tautology/satisfied.
	sort.Slice(ils, func(i, j int) bool { return ils[i] < ils[j] })
	out := ils[:0]
	var prev ilit
	for i, il := range ils {
		if i > 0 && il == prev {
			continue
		}
		if i > 0 && il == prev.neg() {
			return true, nil // tautology
		}
		switch s.value(il) {
		case lTrue:
			return true, nil // already satisfied at level 0
		case lFalse:
			// drop
		default:
			out = append(out, il)
		}
		prev = il
	}
	ils = out
	switch len(ils) {
	case 0:
		s.unsat = true
		return false, nil
	case 1:
		s.enqueue(ils[0], nil)
		if s.propagate() != nil {
			s.unsat = true
			return false, nil
		}
		return true, nil
	}
	c := &clause{lits: ils}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true, nil
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].neg()] = append(s.watches[c.lits[0].neg()], watcher{c: c, blocker: c.lits[1]})
	s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], watcher{c: c, blocker: c.lits[0]})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(il ilit, reason *clause) {
	vd := &s.vars[il.vix()]
	if il&1 == 1 {
		vd.assign = lFalse
	} else {
		vd.assign = lTrue
	}
	vd.level = s.decisionLevel()
	vd.reason = reason
	vd.phase = il&1 == 0
	s.trail = append(s.trail, il)
}

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Normalize: watched literal being falsified is c.lits[0] or [1];
			// put the other watch at position 0.
			if c.lits[0] == p.neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Now c.lits[1] == p.neg().
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, watcher{c: c, blocker: c.lits[0]})
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], watcher{c: c, blocker: c.lits[0]})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.value(c.lits[0]) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
				continue
			}
			s.enqueue(c.lits[0], c)
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backjump level. The returned slice aliases
// an internal scratch buffer valid until the next analyze call — callers copy
// it when they keep the clause.
func (s *Solver) analyze(conflict *clause) ([]ilit, int) {
	learnt := append(s.learntBuf[:0], 0) // slot 0 for the asserting literal
	counter := 0
	var p ilit
	idx := len(s.trail) - 1
	c := conflict
	cleanup := s.cleanupBuf[:0]

	for {
		if c.learnt {
			s.bumpClause(c)
		}
		for _, q := range c.lits {
			if p != 0 && q == p {
				continue
			}
			vd := &s.vars[q.vix()]
			if !vd.seen && vd.level > 0 {
				vd.seen = true
				cleanup = append(cleanup, q.vix())
				s.bumpVar(q.vix())
				if vd.level == s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Pick the next seen literal from the trail.
		for !s.vars[s.trail[idx].vix()].seen {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.vars[p.vix()].seen = false
		counter--
		if counter == 0 {
			break
		}
		c = s.vars[p.vix()].reason
	}
	learnt[0] = p.neg()

	// Clause minimization: drop literals implied by the rest.
	out := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.redundant(q) {
			out = append(out, q)
		}
	}
	learnt = out

	// Backjump level = max level among learnt[1:].
	bj := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.vars[learnt[i].vix()].level; lv > bj {
			bj = lv
		}
	}
	// Move a literal of level bj into slot 1 (second watch).
	for i := 2; i < len(learnt); i++ {
		if s.vars[learnt[i].vix()].level > s.vars[learnt[1].vix()].level {
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}
	for _, v := range cleanup {
		s.vars[v].seen = false
	}
	s.learntBuf = learnt[:0]
	s.cleanupBuf = cleanup[:0]
	return learnt, bj
}

// redundant reports whether literal q in a learnt clause is implied by its
// reason chain (simple recursive local minimization).
func (s *Solver) redundant(q ilit) bool {
	r := s.vars[q.vix()].reason
	if r == nil {
		return false
	}
	for _, l := range r.lits {
		if l == q.neg() {
			continue
		}
		vd := &s.vars[l.vix()]
		if vd.level == 0 {
			continue
		}
		if !vd.seen {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i < len(s.activity); i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) backjump(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	if level == 0 && len(s.trail)-limit > 64 {
		// Full restarts between incremental solves undo nearly the whole
		// trail; rebuilding the order heap in one O(V) pass beats pushing
		// each variable back individually.
		for i := len(s.trail) - 1; i >= limit; i-- {
			vd := &s.vars[s.trail[i].vix()]
			vd.assign = lUndef
			vd.reason = nil
		}
		s.trail = s.trail[:limit]
		s.trailLim = s.trailLim[:0]
		s.qhead = len(s.trail)
		s.order.rebuild()
		return
	}
	for i := len(s.trail) - 1; i >= limit; i-- {
		il := s.trail[i]
		vd := &s.vars[il.vix()]
		vd.assign = lUndef
		vd.reason = nil
		s.order.push(il.vix())
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// nextRand advances the solver's xorshift64 generator. Deterministic for a
// given seed; never zero.
func (s *Solver) nextRand() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// pickBranch chooses the next decision variable by activity, using the saved
// phase for polarity. With probability cfg.RandomFreq the variable is instead
// drawn uniformly from the order heap (a deterministic xorshift stream), the
// classic diversification against activity-ordering pathologies.
func (s *Solver) pickBranch() ilit {
	if s.cfg.RandomFreq > 0 && len(s.order.heap) > 0 {
		if float64(s.nextRand()%(1<<24))/(1<<24) < s.cfg.RandomFreq {
			v := s.order.heap[s.nextRand()%uint64(len(s.order.heap))]
			if s.vars[v].assign == lUndef {
				// Left in the heap on purpose: pop would cost a sift and the
				// unassigned check at the normal pop path skips it later.
				if s.vars[v].phase {
					return ilit(2 * v)
				}
				return ilit(2*v + 1)
			}
		}
	}
	for {
		v, ok := s.order.pop()
		if !ok {
			return 0
		}
		if s.vars[v].assign == lUndef {
			if s.vars[v].phase {
				return ilit(2 * v)
			}
			return ilit(2*v + 1)
		}
	}
}

// Simplify removes clauses permanently satisfied at decision level 0 from the
// clause database and the watch lists. It exists for incremental use:
// retiring a property's activation literal (adding the unit clause ¬act)
// satisfies every clause guarded by act forever, yet those clauses would keep
// absorbing watch-list traffic on every later propagation. Simplify reclaims
// that bandwidth without changing the formula's models. Reason clauses of the
// level-0 trail are kept so implication records stay intact.
func (s *Solver) Simplify() {
	if s.unsat {
		return
	}
	s.backjump(0)
	if c := s.propagate(); c != nil {
		s.unsat = true
		return
	}
	filter := func(cs []*clause) []*clause {
		kept := cs[:0]
		for _, c := range cs {
			if s.satisfiedAtZero(c) && !s.locked(c) {
				s.unwatch(c)
				continue
			}
			kept = append(kept, c)
		}
		return kept
	}
	s.clauses = filter(s.clauses)
	s.learnts = filter(s.learnts)
}

// unwatch removes c's two watcher entries. The watch invariant guarantees a
// live clause is watched exactly on lits[0] and lits[1], so two targeted
// list edits replace a sweep over every watch list.
func (s *Solver) unwatch(c *clause) {
	for i := 0; i < 2; i++ {
		key := c.lits[i].neg()
		ws := s.watches[key]
		for j := range ws {
			if ws[j].c == c {
				s.watches[key] = append(ws[:j], ws[j+1:]...)
				break
			}
		}
	}
}

// satisfiedAtZero reports whether a clause holds under the level-0 trail alone.
func (s *Solver) satisfiedAtZero(c *clause) bool {
	for _, il := range c.lits {
		if s.value(il) == lTrue && s.vars[il.vix()].level == 0 {
			return true
		}
	}
	return false
}

// reduceDB removes half of the least active learnt clauses.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].activity > s.learnts[j].activity
	})
	keep := len(s.learnts) / 2
	removed := s.learnts[keep:]
	s.learnts = s.learnts[:keep]
	dead := map[*clause]bool{}
	for _, c := range removed {
		if s.locked(c) {
			s.learnts = append(s.learnts, c)
			continue
		}
		dead[c] = true
	}
	if len(dead) == 0 {
		return
	}
	for key, ws := range s.watches {
		kept := ws[:0]
		for _, w := range ws {
			if !dead[w.c] {
				kept = append(kept, w)
			}
		}
		s.watches[key] = kept
	}
}

func (s *Solver) locked(c *clause) bool {
	return len(c.lits) > 0 && s.vars[c.lits[0].vix()].reason == c
}

// Export quality filter: only clauses this small and this "glue-like" are
// worth the cross-solver traffic. LBD (literal block distance — the number of
// distinct decision levels in the clause at learn time) is the standard
// Glucose-style quality measure: low-LBD clauses connect few search regions
// and stay useful after restarts.
const (
	shareMaxSize = 8
	shareMaxLBD  = 4
)

// lbd counts the distinct decision levels among the clause's literals. Called
// only on clauses that pass the size cap, so the quadratic distinct-count on
// the scratch slice is cheaper than any hashing scheme.
func (s *Solver) lbd(lits []ilit) int {
	lv := s.lbdScratch[:0]
	for _, il := range lits {
		l := s.vars[il.vix()].level
		dup := false
		for _, e := range lv {
			if e == l {
				dup = true
				break
			}
		}
		if !dup {
			lv = append(lv, l)
		}
	}
	s.lbdScratch = lv[:0]
	return len(lv)
}

// exportLearnt publishes a just-learned clause to the shared pool when it
// passes the quality filter (size, LBD) and the variable cap. Must be called
// while the conflict's literals are still assigned (before the backjump) so
// the LBD reflects real levels.
func (s *Solver) exportLearnt(lits []ilit) {
	if s.Share == nil || s.ShareVarCap <= 0 || len(lits) > shareMaxSize {
		return
	}
	for _, il := range lits {
		if il.vix() > s.ShareVarCap {
			return
		}
	}
	if len(lits) > 2 && s.lbd(lits) > shareMaxLBD {
		return
	}
	out := make([]Lit, len(lits))
	for i, il := range lits {
		out[i] = fromInternal(il)
	}
	if s.Share.Publish(s.ShareID, out) {
		s.SharedExports++
	}
}

// importShared drains clauses other solvers published since the last visit
// and adopts them as learnts. Callers must be at decision level 0 (solve
// start or a restart boundary); may set s.unsat when an import completes a
// level-0 refutation.
func (s *Solver) importShared() {
	if s.Share == nil {
		return
	}
	batch, cur := s.Share.CollectSince(s.shareCursor, s.ShareID)
	s.shareCursor = cur
	for _, lits := range batch {
		if !s.adoptClause(lits) {
			return
		}
	}
}

// adoptClause installs one imported clause, applying the same level-0
// simplifications as AddClause (drop false literals, skip satisfied or
// tautological clauses — which also covers clauses mentioning an activation
// literal already retired by a unit ¬act). Returns false when the solver
// became unsat. Clauses mentioning variables this solver has not allocated
// are skipped defensively: under the ShareVarCap discipline they cannot
// occur, and adopting them via ensure() would desynchronize the aligned
// variable spaces sharing depends on.
func (s *Solver) adoptClause(ext []Lit) bool {
	if s.unsat {
		return false
	}
	ils := make([]ilit, 0, len(ext))
	for _, l := range ext {
		if l == 0 || l.Var() >= len(s.vars) {
			return true
		}
		ils = append(ils, toInternal(l))
	}
	sort.Slice(ils, func(i, j int) bool { return ils[i] < ils[j] })
	out := ils[:0]
	var prev ilit
	for i, il := range ils {
		if i > 0 && il == prev {
			continue
		}
		if i > 0 && il == prev.neg() {
			return true // tautology
		}
		switch s.value(il) {
		case lTrue:
			return true // satisfied at level 0 (includes retired ¬act guards)
		case lFalse:
			// drop
		default:
			out = append(out, il)
		}
		prev = il
	}
	ils = out
	switch len(ils) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.enqueue(ils[0], nil)
		if s.propagate() != nil {
			s.unsat = true
			return false
		}
		s.SharedImports++
		return true
	}
	c := &clause{lits: ils, learnt: true, activity: s.claInc}
	s.learnts = append(s.learnts, c)
	s.watch(c)
	s.SharedImports++
	return true
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumptions. A Sat result
// leaves the model readable via Value; Unsat means unsatisfiable under the
// assumptions; Unknown means a budget (MaxConflicts, MaxPropagations,
// Deadline) was exhausted — StopCause then reports which.
func (s *Solver) Solve(assumptions ...Lit) Status {
	return s.SolveCtx(context.Background(), assumptions...)
}

// SolveCtx is Solve under a context: cancellation is polled every
// pollInterval propagations and aborts the search with Unknown, leaving the
// context's error available via StopCause.
func (s *Solver) SolveCtx(ctx context.Context, assumptions ...Lit) Status {
	if s.Counters != nil {
		defer s.Counters.observe(s)()
	}
	if s.unsat {
		return Unsat
	}
	s.stopCause = nil
	s.ctx = ctx
	s.polling = ctx.Done() != nil || !s.Deadline.IsZero() || s.MaxPropagations > 0
	s.nextPoll = s.Propagations // poll on the first search step
	s.propLimit = 0
	if s.MaxPropagations > 0 {
		s.propLimit = s.Propagations + s.MaxPropagations
	}
	defer func() { s.ctx = nil }()

	s.backjump(0)
	if c := s.propagate(); c != nil {
		s.unsat = true
		return Unsat
	}
	if s.importShared(); s.unsat {
		return Unsat
	}

	restartNum := int64(0)
	conflictBudget := float64(s.cfg.RestartBase)
	conflictsAtStart := s.Conflicts
	maxLearnts := int64(len(s.clauses)/3 + 100)

	for {
		restartNum++
		var budget int64
		if s.cfg.Restart == RestartGeometric {
			budget = int64(conflictBudget)
			conflictBudget *= s.cfg.RestartGrow
		} else {
			budget = s.cfg.RestartBase * luby(restartNum)
		}
		status := s.search(assumptions, budget, &maxLearnts)
		if status != Unknown {
			return status
		}
		if s.stopCause != nil {
			s.backjump(0)
			return Unknown
		}
		s.Restarts++
		if s.MaxConflicts > 0 && s.Conflicts-conflictsAtStart >= s.MaxConflicts {
			s.stopCause = ErrConflictBudget
			s.backjump(0)
			return Unknown
		}
		// Restart boundary: the trail is at level 0, the one place adopting
		// foreign clauses is unconditionally sound.
		if s.importShared(); s.unsat {
			return Unsat
		}
	}
}

// StopCause reports why the previous Solve returned Unknown: a context error,
// ErrDeadline, ErrPropagationBudget, or ErrConflictBudget. It is nil after a
// decided (Sat/Unsat) result.
func (s *Solver) StopCause() error { return s.stopCause }

// shouldStop polls the cancellation and budget sources. It is rate-limited by
// the propagation counter so the hot search loop pays one integer compare in
// the common case.
func (s *Solver) shouldStop() bool {
	if !s.polling || s.Propagations < s.nextPoll {
		return false
	}
	s.nextPoll = s.Propagations + pollInterval
	if s.propLimit > 0 && s.propLimit < s.nextPoll {
		// Land the next poll exactly on the propagation budget so small
		// deterministic budgets are honoured, not rounded up to pollInterval.
		s.nextPoll = s.propLimit
	}
	if err := s.ctx.Err(); err != nil {
		s.stopCause = err
		return true
	}
	if s.propLimit > 0 && s.Propagations >= s.propLimit {
		s.stopCause = ErrPropagationBudget
		return true
	}
	if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
		s.stopCause = ErrDeadline
		return true
	}
	return false
}

// search runs CDCL until a verdict, a restart budget exhaustion (Unknown), or
// assumption failure.
func (s *Solver) search(assumptions []Lit, budget int64, maxLearnts *int64) Status {
	conflicts := int64(0)
	for {
		if s.shouldStop() {
			s.backjump(0)
			return Unknown
		}
		conflict := s.propagate()
		if conflict != nil {
			s.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, bj := s.analyze(conflict)
			s.exportLearnt(learnt) // before backjump: literal levels are live
			s.backjump(bj)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				// analyze returns scratch: copy exactly once, exact-sized.
				lits := make([]ilit, len(learnt))
				copy(lits, learnt)
				c := &clause{lits: lits, learnt: true, activity: s.claInc}
				s.learnts = append(s.learnts, c)
				s.Learned++
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.varInc /= s.varDecay
			s.claInc /= s.claDecay
			continue
		}

		if conflicts >= budget {
			s.backjump(0)
			return Unknown
		}
		if int64(len(s.learnts)) > *maxLearnts+int64(len(s.trail)) {
			s.reduceDB()
			*maxLearnts += *maxLearnts / 10
		}

		// Apply assumptions as pseudo-decisions.
		if s.decisionLevel() < len(assumptions) {
			a := toInternal(assumptions[s.decisionLevel()])
			s.ensure(a.vix())
			switch s.value(a) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat // conflicting assumptions
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(a, nil)
				continue
			}
		}

		// Full-assignment check by trail length before consulting the heap:
		// at a Sat verdict the heap is full of stale (already assigned)
		// entries, and popping them all just to find it empty costs
		// O(V log V) per solve — the dominant cost of incremental sessions,
		// whose solvers hold many more variables than any single query uses.
		if len(s.trail) == len(s.vars)-1 {
			return Sat
		}
		next := s.pickBranch()
		if next == 0 {
			return Sat // all variables assigned
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, nil)
	}
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool {
	if v <= 0 || v >= len(s.vars) {
		return false
	}
	return s.vars[v].assign == lTrue
}

// ValueLit returns the model value of a literal after a Sat result.
func (s *Solver) ValueLit(l Lit) bool {
	v := s.Value(l.Var())
	if l < 0 {
		return !v
	}
	return v
}

// NumClauses returns the number of problem clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// String summarizes solver statistics.
func (s *Solver) String() string {
	return fmt.Sprintf("sat.Solver{vars=%d clauses=%d learnts=%d conflicts=%d decisions=%d props=%d restarts=%d}",
		s.NumVars(), len(s.clauses), len(s.learnts), s.Conflicts, s.Decisions, s.Propagations, s.Restarts)
}

// ---------------------------------------------------------------------------
// Activity-ordered heap for decision variable selection
// ---------------------------------------------------------------------------

type activityHeap struct {
	s    *Solver
	heap []int
	// indices[v] is v's position in heap, or -1 when absent. A flat slice
	// instead of a map: pickBranch pops and re-pushes variables on every
	// decision/backjump, and map hashing dominated that path in profiles.
	indices []int
}

func newActivityHeap(s *Solver) *activityHeap {
	return &activityHeap{s: s}
}

func (h *activityHeap) less(i, j int) bool {
	return h.s.activity[h.heap[i]] > h.s.activity[h.heap[j]]
}

func (h *activityHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i
	h.indices[h.heap[j]] = j
}

func (h *activityHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *activityHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *activityHeap) push(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *activityHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, true
}

// rebuild reloads the heap with every unassigned variable and restores heap
// order bottom-up. Floyd's heapify is O(V) against O(V log V) for pushing
// variables back one at a time, and reloading also drops stale entries for
// assigned variables so the next solve's pops never sift dead wood.
func (h *activityHeap) rebuild() {
	h.heap = h.heap[:0]
	for len(h.indices) < len(h.s.vars) {
		h.indices = append(h.indices, -1)
	}
	for v := 1; v < len(h.s.vars); v++ {
		if h.s.vars[v].assign == lUndef {
			h.indices[v] = len(h.heap)
			h.heap = append(h.heap, v)
		} else {
			h.indices[v] = -1
		}
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *activityHeap) update(v int) {
	if len(h.indices) > v && h.indices[v] >= 0 {
		h.up(h.indices[v])
		h.down(h.indices[v])
	}
}
