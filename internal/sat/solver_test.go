package sat

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestTrivial(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula: %v", st)
	}
	s.AddClause(1)
	if st := s.Solve(); st != Sat {
		t.Fatalf("unit: %v", st)
	}
	if !s.Value(1) {
		t.Error("x1 should be true")
	}
	s.AddClause(-1)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("x & ~x: %v", st)
	}
	// Once unsat, stays unsat.
	if st := s.Solve(); st != Unsat {
		t.Fatal("unsat is sticky")
	}
	if ok, _ := s.AddClause(2); ok {
		t.Error("AddClause after unsat should return false")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	// x1 -> x2 -> x3 -> x4, x1 forced.
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	s.AddClause(-3, 4)
	s.AddClause(1)
	if st := s.Solve(); st != Sat {
		t.Fatal(st)
	}
	for v := 1; v <= 4; v++ {
		if !s.Value(v) {
			t.Errorf("x%d should be true", v)
		}
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	s.AddClause(1, -1)   // tautology: ignored
	s.AddClause(2, 2, 2) // duplicates collapse to unit
	if st := s.Solve(); st != Sat || !s.Value(2) {
		t.Fatalf("status %v, x2=%v", st, s.Value(2))
	}
}

func TestPigeonhole3x2(t *testing.T) {
	// 3 pigeons, 2 holes: unsat. Var p*2+h+1... small manual encoding.
	s := New()
	v := func(p, h int) Lit { return Lit(p*2 + h + 1) }
	for p := 0; p < 3; p++ {
		s.AddClause(v(p, 0), v(p, 1))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(3,2): %v", st)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	s.AddClause(-1, 2)
	s.AddClause(-2, -3)
	if st := s.Solve(1, 3); st != Unsat {
		t.Fatalf("assume x1,x3: %v", st)
	}
	if st := s.Solve(1); st != Sat {
		t.Fatalf("assume x1: %v", st)
	}
	if !s.Value(2) || s.Value(3) {
		t.Error("model should satisfy x2, ~x3")
	}
	// Solver remains usable after assumption failures.
	if st := s.Solve(); st != Sat {
		t.Fatalf("no assumptions: %v", st)
	}
	if st := s.Solve(3); st != Sat {
		t.Fatalf("assume x3: %v", st)
	}
	if s.Value(1) {
		t.Error("x1 must be false when x3 assumed")
	}
}

func TestConflictingAssumptions(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	if st := s.Solve(-1, 1); st != Unsat {
		t.Fatalf("conflicting assumptions: %v", st)
	}
}

func TestIncremental(t *testing.T) {
	s := New()
	s.AddClause(1, 2, 3)
	if s.Solve() != Sat {
		t.Fatal("base sat")
	}
	s.AddClause(-1)
	s.AddClause(-2)
	if s.Solve() != Sat {
		t.Fatal("still sat")
	}
	if !s.Value(3) {
		t.Error("x3 forced")
	}
	s.AddClause(-3)
	if s.Solve() != Unsat {
		t.Fatal("now unsat")
	}
}

func TestXorChainUnsat(t *testing.T) {
	// x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsat (odd cycle).
	s := New()
	addXor := func(a, b Lit) {
		s.AddClause(a, b)
		s.AddClause(-a, -b)
	}
	addXor(1, 2)
	addXor(2, 3)
	addXor(1, 3)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("xor cycle: %v", st)
	}
}

// bruteForce checks satisfiability of cnf over nv variables by enumeration.
func bruteForce(nv int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(nv); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				v := (m>>(uint(l.Var())-1))&1 == 1
				if (l > 0) == v {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		nv := 3 + rng.Intn(8)    // 3..10 vars
		nc := 2 + rng.Intn(5*nv) // clause count
		k := 1 + rng.Intn(3)     // clause width 1..3
		var cnf [][]Lit
		for i := 0; i < nc; i++ {
			width := 1 + rng.Intn(k)
			cl := make([]Lit, 0, width)
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					cl = append(cl, Lit(v))
				} else {
					cl = append(cl, Lit(-v))
				}
			}
			cnf = append(cnf, cl)
		}
		s := New()
		live := true
		for _, cl := range cnf {
			if ok, err := s.AddClause(cl...); err != nil {
				t.Fatal(err)
			} else if !ok {
				live = false
				break
			}
		}
		var got Status
		if !live {
			got = Unsat
		} else {
			got = s.Solve()
		}
		want := bruteForce(nv, cnf)
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v bruteforce=%v cnf=%v", iter, got, want, cnf)
		}
		if got == Sat {
			// Verify the model actually satisfies the formula.
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.ValueLit(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model does not satisfy clause %v", iter, cl)
				}
			}
		}
	}
}

func TestRandomWithAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		nv := 4 + rng.Intn(5)
		var cnf [][]Lit
		for i := 0; i < 3*nv; i++ {
			cl := make([]Lit, 0, 3)
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl = append(cl, Lit(v))
			}
			cnf = append(cnf, cl)
		}
		// Random assumptions over distinct vars.
		var assumps []Lit
		perm := rng.Perm(nv)
		na := rng.Intn(3)
		for i := 0; i < na && i < len(perm); i++ {
			v := Lit(perm[i] + 1)
			if rng.Intn(2) == 0 {
				v = -v
			}
			assumps = append(assumps, v)
		}
		s := New()
		live := true
		for _, cl := range cnf {
			if ok, err := s.AddClause(cl...); err != nil {
				t.Fatal(err)
			} else if !ok {
				live = false
				break
			}
		}
		// Brute force with assumptions appended as unit clauses.
		full := append([][]Lit{}, cnf...)
		for _, a := range assumps {
			full = append(full, []Lit{a})
		}
		want := bruteForce(nv, full)
		var got Status
		if !live {
			got = Unsat
		} else {
			got = s.Solve(assumps...)
		}
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v assumps=%v", iter, got, want, cnf, assumps)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestMaxConflictsUnknown(t *testing.T) {
	// A hard instance with a tiny budget should return Unknown.
	s := New()
	s.MaxConflicts = 1
	// PHP(5,4): unsat but needs search.
	v := func(p, h int) Lit { return Lit(p*4 + h + 1) }
	for p := 0; p < 5; p++ {
		s.AddClause(v(p, 0), v(p, 1), v(p, 2), v(p, 3))
	}
	for h := 0; h < 4; h++ {
		for p1 := 0; p1 < 5; p1++ {
			for p2 := p1 + 1; p2 < 5; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	st := s.Solve()
	if st == Sat {
		t.Fatal("PHP(5,4) cannot be sat")
	}
	// Either it finished fast (Unsat) or hit the budget (Unknown): both fine,
	// but with budget 1 we expect Unknown on this instance.
	t.Logf("status with 1-conflict budget: %v, %s", st, s)
}

func TestStatsAndString(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.AddClause(-1, 2)
	s.AddClause(1, -2)
	s.Solve()
	if s.NumVars() != 2 || s.NumClauses() != 3 {
		t.Errorf("vars=%d clauses=%d", s.NumVars(), s.NumClauses())
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestValueLitBounds(t *testing.T) {
	s := New()
	if s.Value(0) || s.Value(99) {
		t.Error("out-of-range Value must be false")
	}
}

// php builds a pigeonhole instance PHP(p, h) — unsat and exponentially hard
// for CDCL when p = h+1, which makes it a good budget-test workload.
func php(s *Solver, pigeons, holes int) {
	v := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		var cl []Lit
		for h := 0; h < holes; h++ {
			cl = append(cl, v(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
}

func TestAddClauseZeroLiteral(t *testing.T) {
	s := New()
	if _, err := s.AddClause(1, 0, 2); !errors.Is(err, ErrZeroLit) {
		t.Fatalf("want ErrZeroLit, got %v", err)
	}
	// The rejected clause must not have perturbed the solver.
	s.AddClause(1)
	if st := s.Solve(); st != Sat || !s.Value(1) {
		t.Fatalf("solver unusable after rejected clause: %v", st)
	}
}

func TestPropagationBudgetUnknown(t *testing.T) {
	s := New()
	php(s, 9, 8)
	s.MaxPropagations = 500
	st := s.Solve()
	if st != Unknown {
		t.Fatalf("want Unknown under 500-propagation budget, got %v (%s)", st, s)
	}
	if !errors.Is(s.StopCause(), ErrPropagationBudget) {
		t.Fatalf("StopCause = %v, want ErrPropagationBudget", s.StopCause())
	}
	// Lifting the budget on the same solver finds the refutation.
	s.MaxPropagations = 0
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(9,8) without budget: %v", st)
	}
	if s.StopCause() != nil {
		t.Fatalf("StopCause after decided result = %v, want nil", s.StopCause())
	}
}

func TestDeadlineUnknown(t *testing.T) {
	s := New()
	php(s, 12, 11)
	s.Deadline = time.Now().Add(5 * time.Millisecond)
	start := time.Now()
	st := s.Solve()
	if st != Unknown {
		t.Fatalf("want Unknown under 5ms deadline, got %v (%s)", st, s)
	}
	if !errors.Is(s.StopCause(), ErrDeadline) {
		t.Fatalf("StopCause = %v, want ErrDeadline", s.StopCause())
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline overrun: solve took %v", el)
	}
}

func TestContextCancelStopsSearch(t *testing.T) {
	s := New()
	php(s, 12, 11)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Status, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	go func() { done <- s.SolveCtx(ctx) }()
	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("cancelled solve returned %v, want Unknown", st)
		}
		if !errors.Is(s.StopCause(), context.Canceled) {
			t.Fatalf("StopCause = %v, want context.Canceled", s.StopCause())
		}
		// The acceptance bound is 100ms from cancellation to return; allow
		// slack for CI scheduling noise on top of the 10ms pre-cancel sleep.
		if el := time.Since(start); el > time.Second {
			t.Fatalf("cancellation latency too high: %v", el)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled solve hung")
	}
}
