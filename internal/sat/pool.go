package sat

import (
	"sync"
	"sync/atomic"
)

// poolEntry is one shared learnt clause. Literals are in the external
// encoding and immutable after publication — importers read the slice
// without copying, so a published slice must never be mutated.
type poolEntry struct {
	lits []Lit
	src  uint64 // exporter tag; importers skip their own clauses
}

// ClausePool is a shared pool of learned clauses for solvers working on
// aligned CNF encodings (identical NewVar sequences, so a variable index
// means the same thing to every participant). Exporters publish small
// high-quality learnts (the size/LBD filter lives in the Solver); importers
// drain everything published since their last visit.
//
// The pool is lock-cheap rather than lock-free: a published-count is read
// atomically first, so the steady state of an importer with nothing new to
// collect is one atomic load and no lock. Publication and collection take a
// short mutex; entries are append-only up to a fixed cap, which keeps
// importer cursors stable (no ring-buffer invalidation) and bounds memory.
type ClausePool struct {
	published atomic.Int64 // len(entries), readable without the lock

	mu      sync.Mutex
	entries []poolEntry
	cap     int

	// accounting (atomic: read by /statsz while solvers run)
	exports atomic.Int64 // clauses accepted
	dropped atomic.Int64 // clauses refused because the pool was full
}

// defaultPoolCap bounds a pool's lifetime clause count. Export filters keep
// clauses small (≤ shareMaxSize literals), so the cap bounds pool memory at
// a few hundred KB while covering far more sharing than a single check emits.
const defaultPoolCap = 8192

// NewClausePool returns an empty pool. cap <= 0 selects the default bound.
func NewClausePool(cap int) *ClausePool {
	if cap <= 0 {
		cap = defaultPoolCap
	}
	return &ClausePool{cap: cap}
}

// Publish adds a clause to the pool, tagging it with the exporter's id. The
// literal slice is retained; callers pass a fresh copy. Returns false when
// the pool is at capacity (the clause is dropped, never partially stored).
func (p *ClausePool) Publish(src uint64, lits []Lit) bool {
	p.mu.Lock()
	if len(p.entries) >= p.cap {
		p.mu.Unlock()
		p.dropped.Add(1)
		return false
	}
	p.entries = append(p.entries, poolEntry{lits: lits, src: src})
	p.published.Store(int64(len(p.entries)))
	p.mu.Unlock()
	p.exports.Add(1)
	return true
}

// CollectSince returns the clauses published after cursor by exporters other
// than self, along with the new cursor. The fast path — nothing new — is a
// single atomic load. Returned slices alias pool storage and must be treated
// as read-only.
func (p *ClausePool) CollectSince(cursor int, self uint64) ([][]Lit, int) {
	n := int(p.published.Load())
	if cursor >= n {
		return nil, cursor
	}
	p.mu.Lock()
	fresh := p.entries[cursor:]
	var out [][]Lit
	for _, e := range fresh {
		if e.src != self {
			out = append(out, e.lits)
		}
	}
	n = len(p.entries)
	p.mu.Unlock()
	return out, n
}

// Len reports the number of clauses currently held.
func (p *ClausePool) Len() int { return int(p.published.Load()) }

// Exports reports the lifetime count of accepted publications.
func (p *ClausePool) Exports() int64 { return p.exports.Load() }

// Dropped reports the lifetime count of publications refused at capacity.
func (p *ClausePool) Dropped() int64 { return p.dropped.Load() }
