package sat

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.AddClause(-1, 3)
	s.AddClause(-2, -3)
	s.AddClause(2) // becomes a level-0 unit

	var sb strings.Builder
	if err := s.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p cnf") {
		t.Fatalf("missing problem line:\n%s", out)
	}
	s2, err := ParseDIMACS(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != s2.Solve() {
		t.Error("round-tripped formula has different satisfiability")
	}
}

func TestParseDIMACSBasics(t *testing.T) {
	src := `c comment
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Error("formula should be SAT")
	}
	if s.NumClauses() != 3 {
		t.Errorf("clauses %d", s.NumClauses())
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	src := "p cnf 2 1\n1\n2 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClauses() != 1 {
		t.Errorf("clauses %d want 1 (clause spans lines)", s.NumClauses())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	if _, err := ParseDIMACS(strings.NewReader("p cnf x y\n")); err == nil {
		t.Error("bad problem line should error")
	}
	if _, err := ParseDIMACS(strings.NewReader("1 foo 0\n")); err == nil {
		t.Error("bad literal should error")
	}
}

func TestDIMACSRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		nv := 3 + rng.Intn(6)
		var cnf [][]Lit
		s := New()
		alive := true
		for i := 0; i < 4*nv && alive; i++ {
			var cl []Lit
			for j := 0; j <= rng.Intn(3); j++ {
				v := Lit(1 + rng.Intn(nv))
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl = append(cl, v)
			}
			cnf = append(cnf, cl)
			alive, _ = s.AddClause(cl...)
		}
		if !alive {
			continue // formula trivially unsat at level 0; skip round trip
		}
		var sb strings.Builder
		if err := s.WriteDIMACS(&sb); err != nil {
			t.Fatal(err)
		}
		s2, err := ParseDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s2.Solve(), s.Solve(); got != want {
			t.Fatalf("iter %d: round trip changed result %v -> %v\ncnf=%v", iter, want, got, cnf)
		}
	}
}
