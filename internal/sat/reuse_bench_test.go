package sat

import "testing"

// phpClauses returns the pigeonhole instance PHP(p, h) as DIMACS-style
// clauses, so benchmarks can replay the same formula into many solvers.
func phpClauses(pigeons, holes int) [][]Lit {
	var cnf [][]Lit
	lit := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		var c []Lit
		for h := 0; h < holes; h++ {
			c = append(c, lit(p, h))
		}
		cnf = append(cnf, c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				cnf = append(cnf, []Lit{-lit(p1, h), -lit(p2, h)})
			}
		}
	}
	return cnf
}

// BenchmarkSolverReuse measures the incremental pattern the model checker's
// Session relies on: one persistent solver answering a stream of queries
// under changing assumptions. PHP(8,8) is satisfiable (a perfect matching);
// assuming pigeon 0 into a different hole each call invalidates the saved
// model, so every iteration runs real propagate/analyze work against warm
// watcher lists and scratch buffers.
func BenchmarkSolverReuse(b *testing.B) {
	const n = 8
	s := New()
	for _, c := range phpClauses(n, n) {
		if _, err := s.AddClause(c...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		force := Lit(0*n + i%n + 1) // pigeon 0 in hole i%n
		if st := s.Solve(force); st != Sat {
			b.Fatalf("Solve = %v, want Sat", st)
		}
	}
}

// BenchmarkSolverFresh is the baseline BenchmarkSolverReuse is compared
// against: the same query stream but a brand-new solver (re-adding every
// clause) per call, as the pre-Session checker did.
func BenchmarkSolverFresh(b *testing.B) {
	const n = 8
	cnf := phpClauses(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, c := range cnf {
			if _, err := s.AddClause(c...); err != nil {
				b.Fatal(err)
			}
		}
		force := Lit(0*n + i%n + 1)
		if st := s.Solve(force); st != Sat {
			b.Fatalf("Solve = %v, want Sat", st)
		}
	}
}
