package sat

import "goldmine/internal/telemetry"

// SolveCounters is the solver's telemetry hookup: cached counter pointers fed
// with per-solve deltas of the search statistics. One SolveCounters may be
// shared by any number of solvers (the counters are atomic); a single solver
// is still single-goroutine.
type SolveCounters struct {
	Solves        *telemetry.Counter
	Propagations  *telemetry.Counter
	Conflicts     *telemetry.Counter
	Decisions     *telemetry.Counter
	Restarts      *telemetry.Counter
	Learned       *telemetry.Counter
	SharedExports *telemetry.Counter
	SharedImports *telemetry.Counter
	// LearntDB tracks the learnt-clause database size after the most recent
	// solve (a gauge: reduceDB shrinks it, so a counter would mislead).
	LearntDB *telemetry.Gauge
}

// NewSolveCounters resolves the sat.* counters from a registry. Nil-safe: a
// nil registry yields a SolveCounters of nil counters (all adds no-op), and
// callers may equally leave Solver.Counters nil to skip the bookkeeping
// entirely.
func NewSolveCounters(reg *telemetry.Registry) *SolveCounters {
	return &SolveCounters{
		Solves:        reg.Counter("sat.solves"),
		Propagations:  reg.Counter("sat.propagations"),
		Conflicts:     reg.Counter("sat.conflicts"),
		Decisions:     reg.Counter("sat.decisions"),
		Restarts:      reg.Counter("sat.restarts"),
		Learned:       reg.Counter("sat.learned"),
		SharedExports: reg.Counter("sat.clause_share.exports"),
		SharedImports: reg.Counter("sat.clause_share.imports"),
		LearntDB:      reg.Gauge("sat.learnt_db"),
	}
}

// observe snapshots the statistics before a solve and returns the closure
// that records the deltas after it.
func (c *SolveCounters) observe(s *Solver) func() {
	p0, c0, d0, r0 := s.Propagations, s.Conflicts, s.Decisions, s.Restarts
	l0, e0, i0 := s.Learned, s.SharedExports, s.SharedImports
	return func() {
		c.Solves.Add(1)
		c.Propagations.Add(s.Propagations - p0)
		c.Conflicts.Add(s.Conflicts - c0)
		c.Decisions.Add(s.Decisions - d0)
		c.Restarts.Add(s.Restarts - r0)
		c.Learned.Add(s.Learned - l0)
		c.SharedExports.Add(s.SharedExports - e0)
		c.SharedImports.Add(s.SharedImports - i0)
		c.LearntDB.Set(int64(len(s.learnts)))
	}
}
