package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS writes the problem clauses in DIMACS CNF format. Learnt
// clauses are not emitted (they are implied).
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "c goldmine CDCL solver export\n")
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)+len(s.units()))
	for _, u := range s.units() {
		fmt.Fprintf(bw, "%d 0\n", u)
	}
	for _, c := range s.clauses {
		for _, il := range c.lits {
			fmt.Fprintf(bw, "%d ", fromInternal(il))
		}
		fmt.Fprintf(bw, "0\n")
	}
	return bw.Flush()
}

// units returns the level-0 forced literals (unit clauses absorbed into the
// assignment during AddClause).
func (s *Solver) units() []Lit {
	var out []Lit
	limit := len(s.trail)
	if len(s.trailLim) > 0 {
		limit = s.trailLim[0]
	}
	for _, il := range s.trail[:limit] {
		if s.vars[il.vix()].reason == nil {
			out = append(out, fromInternal(il))
		}
	}
	return out
}

// ParseDIMACS reads a DIMACS CNF file into a fresh solver. Comment lines and
// the problem line are tolerated anywhere before the clauses.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("bad problem line %q", line)
			}
			if _, err := strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("bad variable count in %q", line)
			}
			if _, err := strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("bad clause count in %q", line)
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("bad literal %q: %w", tok, err)
			}
			if v == 0 {
				if _, err := s.AddClause(cur...); err != nil {
					return nil, err
				}
				cur = cur[:0]
				continue
			}
			cur = append(cur, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		if _, err := s.AddClause(cur...); err != nil {
			return nil, err
		}
	}
	return s, nil
}
