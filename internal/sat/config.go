package sat

// RestartPolicy selects the conflict-budget schedule between restarts.
type RestartPolicy int

const (
	// RestartLuby follows the Luby sequence scaled by RestartBase
	// (MiniSat's default schedule; strong universal worst-case bounds).
	RestartLuby RestartPolicy = iota
	// RestartGeometric grows the conflict budget by RestartGrow per restart
	// starting from RestartBase (aggressive early restarts, long tail).
	RestartGeometric
)

func (p RestartPolicy) String() string {
	if p == RestartGeometric {
		return "geometric"
	}
	return "luby"
}

// Config parameterizes a Solver's search strategy. Every field is
// deterministic: two solvers built from equal Configs and fed the identical
// AddClause/NewVar/Solve sequence take the identical search path. The zero
// value is normalized to DefaultConfig, so New() and
// NewWithConfig(Config{}) behave the same.
//
// The point of the knobs is diversification, not tuning: the portfolio
// backend (mc.Options.Portfolio) races solvers whose Configs differ in
// restart shape, branching polarity, activity decay, and decision noise, so
// that at least one draws a search order suited to the instance.
type Config struct {
	// Restart selects the restart schedule (default Luby).
	Restart RestartPolicy
	// RestartBase is the first conflict budget (default 100).
	RestartBase int64
	// RestartGrow is the geometric growth factor, used only by
	// RestartGeometric (default 1.5; values <= 1 are normalized to 1.5).
	RestartGrow float64
	// PhaseDefault is the branching polarity assumed for a variable that has
	// never been assigned (phase saving overrides it afterwards). false —
	// the MiniSat default — branches negative first.
	PhaseDefault bool
	// VarDecay is the EVSIDS variable-activity decay in (0,1) (default 0.95).
	VarDecay float64
	// ClaDecay is the clause-activity decay in (0,1) (default 0.999).
	ClaDecay float64
	// RandomFreq is the probability in [0,1) that a decision picks a random
	// unassigned variable instead of the activity maximum (default 0).
	RandomFreq float64
	// Seed seeds the xorshift generator behind RandomFreq; solvers with equal
	// seeds and equal inputs draw identical sequences (default 1; 0 is
	// normalized to 1 because xorshift has a fixed point at zero).
	Seed uint64
}

// DefaultConfig returns the configuration New uses: Luby restarts with base
// 100, negative-first polarity, MiniSat decay constants, no random decisions.
func DefaultConfig() Config {
	return Config{
		Restart:      RestartLuby,
		RestartBase:  100,
		RestartGrow:  1.5,
		PhaseDefault: false,
		VarDecay:     0.95,
		ClaDecay:     0.999,
		RandomFreq:   0,
		Seed:         1,
	}
}

// normalize fills zero fields with defaults and clamps out-of-range values so
// a partially specified Config is always usable.
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.RestartBase <= 0 {
		c.RestartBase = d.RestartBase
	}
	if c.RestartGrow <= 1 {
		c.RestartGrow = d.RestartGrow
	}
	if c.VarDecay <= 0 || c.VarDecay >= 1 {
		c.VarDecay = d.VarDecay
	}
	if c.ClaDecay <= 0 || c.ClaDecay >= 1 {
		c.ClaDecay = d.ClaDecay
	}
	if c.RandomFreq < 0 || c.RandomFreq >= 1 {
		c.RandomFreq = 0
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// PortfolioConfig returns the canonical configuration for portfolio member i.
// Member 0 is DefaultConfig — the exact single-solver strategy — so a
// one-member "portfolio" degenerates to the baseline; later members diversify
// restart shape, polarity, decay, and decision noise deterministically from
// the index, so every process races the same lineup.
func PortfolioConfig(i int) Config {
	c := DefaultConfig()
	switch i % 4 {
	case 1:
		// Positive-first polarity with slow decay: favors SAT answers on
		// formulas whose models are dense in ones.
		c.PhaseDefault = true
		c.VarDecay = 0.99
	case 2:
		// Aggressive geometric restarts with a dash of noise: escapes heavy
		// tails that Luby rides out slowly.
		c.Restart = RestartGeometric
		c.RestartBase = 64
		c.RestartGrow = 1.3
		c.RandomFreq = 0.02
		c.Seed = uint64(i)*0x9e3779b97f4a7c15 + 1
	case 3:
		// Fast decay focuses on recent conflicts; long Luby base keeps each
		// dive deep.
		c.VarDecay = 0.85
		c.RestartBase = 256
		c.RandomFreq = 0.01
		c.Seed = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	return c
}
