package verilog

import (
	"fmt"
)

// Flatten inlines the module hierarchy rooted at top into one flat module:
// every instance's internals are spliced into the parent with
// "<inst>_"-prefixed names, input ports become continuous assignments from
// their actuals, and output ports drive their actuals. Ports connected to
// plain identifiers are substituted directly (no intermediate wire), which
// is also how the child's clock is bound to the parent clock.
//
// Limitations of the subset: instance parameter overrides are not supported
// (children elaborate with their declared parameter values), inout ports are
// rejected, and output actuals must be plain identifiers.
func Flatten(mods []*Module, top string) (*Module, error) {
	byName := map[string]*Module{}
	for _, m := range mods {
		if _, dup := byName[m.Name]; dup {
			return nil, fmt.Errorf("duplicate module %q", m.Name)
		}
		byName[m.Name] = m
	}
	root, ok := byName[top]
	if !ok {
		return nil, fmt.Errorf("no module %q", top)
	}
	f := &flattener{mods: byName, depth: map[string]bool{}}
	return f.flatten(root)
}

type flattener struct {
	mods  map[string]*Module
	depth map[string]bool // instantiation path, for recursion detection
}

func (f *flattener) flatten(m *Module) (*Module, error) {
	if f.depth[m.Name] {
		return nil, fmt.Errorf("recursive instantiation of module %q", m.Name)
	}
	f.depth[m.Name] = true
	defer delete(f.depth, m.Name)

	out := &Module{
		Name:    m.Name,
		Ports:   append([]string(nil), m.Ports...),
		Decls:   append([]Decl(nil), m.Decls...),
		Params:  append([]Param(nil), m.Params...),
		Assigns: append([]Assign(nil), m.Assigns...),
		Always:  append([]AlwaysBlock(nil), m.Always...),
		Line:    m.Line,
	}
	used := map[string]bool{}
	for _, d := range out.Decls {
		used[d.Name] = true
	}

	for _, inst := range m.Instances {
		child, ok := f.mods[inst.Module]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown module %q", inst.Line, inst.Module)
		}
		flatChild, err := f.flatten(child)
		if err != nil {
			return nil, err
		}
		if err := f.splice(out, used, inst, flatChild); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// splice inlines one flattened child instance into the parent.
func (f *flattener) splice(parent *Module, used map[string]bool, inst Instance, child *Module) error {
	// Resolve connections to a port -> actual map.
	conns := map[string]Expr{}
	positional := true
	for _, c := range inst.Conns {
		if c.Port != "" {
			positional = false
		}
	}
	if positional {
		if len(inst.Conns) > len(child.Ports) {
			return fmt.Errorf("line %d: instance %s has %d connections for %d ports",
				inst.Line, inst.Name, len(inst.Conns), len(child.Ports))
		}
		for i, c := range inst.Conns {
			if c.Expr != nil {
				conns[child.Ports[i]] = c.Expr
			}
		}
	} else {
		for _, c := range inst.Conns {
			if c.Port == "" {
				return fmt.Errorf("line %d: instance %s mixes named and positional connections", inst.Line, inst.Name)
			}
			if _, dup := conns[c.Port]; dup {
				return fmt.Errorf("line %d: instance %s connects port %s twice", inst.Line, inst.Name, c.Port)
			}
			if c.Expr != nil {
				conns[c.Port] = c.Expr
			}
		}
	}

	// Build the rename map for every child signal.
	rename := map[string]string{}
	portDir := map[string]PortDir{}
	for _, d := range child.Decls {
		portDir[d.Name] = d.Dir
	}
	for port, actual := range conns {
		dir, isPort := portDir[port]
		if !isPort || dir == DirNone {
			return fmt.Errorf("line %d: module %s has no port %q", inst.Line, child.Name, port)
		}
		if dir == DirInout {
			return fmt.Errorf("line %d: inout port %s.%s unsupported", inst.Line, child.Name, port)
		}
		if id, isIdent := actual.(*Ident); isIdent {
			// Direct substitution: the child port becomes the parent signal.
			rename[port] = id.Name
			continue
		}
		if dir == DirOutput {
			return fmt.Errorf("line %d: output port %s.%s must connect to a plain identifier", inst.Line, child.Name, port)
		}
	}
	fresh := func(name string) string {
		cand := inst.Name + "_" + name
		for used[cand] {
			cand = cand + "_"
		}
		used[cand] = true
		return cand
	}
	for _, d := range child.Decls {
		if _, done := rename[d.Name]; done {
			continue
		}
		rename[d.Name] = fresh(d.Name)
	}

	// Splice declarations: internal child signals (and ports without direct
	// substitution) become parent wires/regs.
	for _, d := range child.Decls {
		target := rename[d.Name]
		if target == d.Name && d.Dir != DirNone {
			// Directly substituted port bound to an identically named parent
			// signal: nothing to declare.
			if _, exists := indexDecl(parent, target); exists {
				continue
			}
		}
		if _, exists := indexDecl(parent, target); exists {
			continue // bound to an existing parent signal
		}
		nd := d
		nd.Name = target
		nd.Dir = DirNone // internal now
		if d.Dir == DirInput {
			nd.Kind = KindWire
		}
		parent.Decls = append(parent.Decls, nd)
		used[target] = true
	}

	// Port binding assigns for expression-connected inputs, and unconnected
	// inputs default to zero.
	for _, d := range child.Decls {
		if d.Dir != DirInput {
			continue
		}
		actual, connected := conns[d.Name]
		if _, direct := actual.(*Ident); connected && direct {
			continue
		}
		var rhs Expr
		if connected {
			rhs = actual
		} else {
			rhs = &Number{Value: 0, Width: d.Range.Width(), Line: inst.Line}
		}
		parent.Assigns = append(parent.Assigns, Assign{
			LHS:  LValue{Name: rename[d.Name], Line: inst.Line},
			RHS:  rhs,
			Line: inst.Line,
		})
	}

	// Splice child logic with renamed identifiers.
	for _, a := range child.Assigns {
		na := a
		na.LHS = renameLValue(a.LHS, rename)
		na.RHS = renameExpr(a.RHS, rename)
		parent.Assigns = append(parent.Assigns, na)
	}
	for _, blk := range child.Always {
		nb := blk
		nb.Sens = make([]SensItem, len(blk.Sens))
		for i, s := range blk.Sens {
			nb.Sens[i] = SensItem{Edge: s.Edge, Signal: renameName(s.Signal, rename)}
		}
		nb.Body = renameStmt(blk.Body, rename)
		parent.Always = append(parent.Always, nb)
	}
	return nil
}

func indexDecl(m *Module, name string) (int, bool) {
	for i := range m.Decls {
		if m.Decls[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

func renameName(name string, rn map[string]string) string {
	if to, ok := rn[name]; ok {
		return to
	}
	return name
}

func renameLValue(lv LValue, rn map[string]string) LValue {
	out := lv
	out.Name = renameName(lv.Name, rn)
	if lv.Index != nil {
		out.Index = renameExpr(lv.Index, rn)
	}
	return out
}

func renameExpr(e Expr, rn map[string]string) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		return &Ident{Name: renameName(x.Name, rn), Line: x.Line}
	case *Number:
		return x
	case *Unary:
		return &Unary{Op: x.Op, X: renameExpr(x.X, rn), Line: x.Line}
	case *Binary:
		return &Binary{Op: x.Op, A: renameExpr(x.A, rn), B: renameExpr(x.B, rn), Line: x.Line}
	case *Ternary:
		return &Ternary{
			Cond: renameExpr(x.Cond, rn), Then: renameExpr(x.Then, rn),
			Else: renameExpr(x.Else, rn), Line: x.Line,
		}
	case *Index:
		return &Index{X: renameExpr(x.X, rn), Idx: renameExpr(x.Idx, rn), Line: x.Line}
	case *Slice:
		return &Slice{X: renameExpr(x.X, rn), MSB: x.MSB, LSB: x.LSB, Line: x.Line}
	case *Concat:
		parts := make([]Expr, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = renameExpr(p, rn)
		}
		return &Concat{Parts: parts, Line: x.Line}
	case *Repl:
		return &Repl{Count: x.Count, X: renameExpr(x.X, rn), Line: x.Line}
	default:
		return e
	}
}

func renameStmt(s Stmt, rn map[string]string) Stmt {
	switch st := s.(type) {
	case nil:
		return nil
	case *BlockStmt:
		out := &BlockStmt{Line: st.Line}
		for _, sub := range st.Stmts {
			out.Stmts = append(out.Stmts, renameStmt(sub, rn))
		}
		return out
	case *AssignStmt:
		return &AssignStmt{
			LHS: renameLValue(st.LHS, rn), RHS: renameExpr(st.RHS, rn),
			Blocking: st.Blocking, Line: st.Line,
		}
	case *IfStmt:
		return &IfStmt{
			Cond: renameExpr(st.Cond, rn),
			Then: renameStmt(st.Then, rn),
			Else: renameStmt(st.Else, rn),
			Line: st.Line,
		}
	case *CaseStmt:
		out := &CaseStmt{Subject: renameExpr(st.Subject, rn), Line: st.Line}
		for _, item := range st.Items {
			ni := CaseItem{Line: item.Line, Body: renameStmt(item.Body, rn)}
			for _, lab := range item.Labels {
				ni.Labels = append(ni.Labels, renameExpr(lab, rn))
			}
			out.Items = append(out.Items, ni)
		}
		return out
	case *NullStmt:
		return st
	default:
		return s
	}
}
