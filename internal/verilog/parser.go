package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a lexed token stream.
type Parser struct {
	toks   []Token
	pos    int
	params map[string]int64 // visible parameter values for constant folding
}

// Parse parses a single Verilog module from src.
func Parse(src string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, params: map[string]int64{}}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing tokens after endmodule")
	}
	return m, nil
}

// ParseFile parses a source file that may contain several modules.
func ParseFile(src string) ([]*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, params: map[string]int64{}}
	var mods []*Module
	for !p.atEOF() {
		p.params = map[string]int64{}
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("no modules in source")
	}
	return mods, nil
}

func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) peekAhead(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("line %d:%d (near %q): %s", t.Line, t.Col, t.Text, fmt.Sprintf(format, args...))
}

func (p *Parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.Kind != TokSymbol || t.Text != sym {
		return p.errorf("expected %q", sym)
	}
	p.next()
	return nil
}

func (p *Parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.Kind != TokKeyword || t.Text != kw {
		return p.errorf("expected keyword %q", kw)
	}
	p.next()
	return nil
}

func (p *Parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == sym {
		p.next()
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return Token{}, p.errorf("expected identifier")
	}
	return p.next(), nil
}

// ---------------------------------------------------------------------------
// Module structure
// ---------------------------------------------------------------------------

func (p *Parser) parseModule() (*Module, error) {
	start := p.peek()
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: nameTok.Text, Line: start.Line}

	if p.acceptSymbol("#") { // parameter port list #(parameter N = 4, ...)
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			if !p.acceptKeyword("parameter") && len(m.Params) == 0 {
				return nil, p.errorf("expected parameter in parameter port list")
			}
			if err := p.parseOneParam(m); err != nil {
				return nil, err
			}
			if p.acceptSymbol(",") {
				p.acceptKeyword("parameter") // optional repeat
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}

	if p.acceptSymbol("(") {
		if err := p.parsePortList(m); err != nil {
			return nil, err
		}
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}

	for {
		t := p.peek()
		if t.Kind == TokKeyword && t.Text == "endmodule" {
			p.next()
			break
		}
		if t.Kind == TokEOF {
			return nil, p.errorf("unexpected EOF inside module %s", m.Name)
		}
		if err := p.parseModuleItem(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// parsePortList handles both ANSI headers (input [3:0] a, output reg b, ...)
// and plain name lists (a, b, c).
func (p *Parser) parsePortList(m *Module) error {
	if p.acceptSymbol(")") {
		return nil
	}
	// Persisted direction/kind/range across comma-separated ANSI entries.
	dir := DirNone
	kind := KindWire
	rng := Range{Scalar: true}
	for {
		t := p.peek()
		if t.Kind == TokKeyword && (t.Text == "input" || t.Text == "output" || t.Text == "inout") {
			p.next()
			switch t.Text {
			case "input":
				dir = DirInput
			case "output":
				dir = DirOutput
			default:
				dir = DirInout
			}
			kind = KindWire
			rng = Range{Scalar: true}
			if p.acceptKeyword("reg") {
				kind = KindReg
			} else {
				p.acceptKeyword("wire")
			}
			r, has, err := p.tryParseRange()
			if err != nil {
				return err
			}
			if has {
				rng = r
			}
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		m.Ports = append(m.Ports, nameTok.Text)
		if dir != DirNone {
			m.Decls = append(m.Decls, Decl{
				Name: nameTok.Text, Dir: dir, Kind: kind, Range: rng, Line: nameTok.Line,
			})
		}
		if p.acceptSymbol(",") {
			continue
		}
		return p.expectSymbol(")")
	}
}

func (p *Parser) parseModuleItem(m *Module) error {
	t := p.peek()
	if t.Kind == TokIdent {
		// Module instantiation: <module> <inst> ( connections ) ;
		return p.parseInstance(m)
	}
	if t.Kind != TokKeyword {
		return p.errorf("expected module item (declaration, assign, always, or instance)")
	}
	switch t.Text {
	case "input", "output", "inout", "wire", "reg", "integer":
		return p.parseDecl(m)
	case "parameter", "localparam":
		p.next()
		for {
			if err := p.parseOneParam(m); err != nil {
				return err
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
		return p.expectSymbol(";")
	case "assign":
		return p.parseAssign(m)
	case "always":
		return p.parseAlways(m)
	case "initial":
		// Initial blocks are ignored by the synthesizable subset: registers
		// reset to zero. Skip the block body.
		p.next()
		st, err := p.parseStmt()
		_ = st
		return err
	default:
		return p.errorf("unsupported module item %q", t.Text)
	}
}

// parseInstance handles `mod inst (.a(x), .b(y));` and positional
// `mod inst (x, y);` forms.
func (p *Parser) parseInstance(m *Module) error {
	modTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst := Instance{Module: modTok.Text, Name: nameTok.Text, Line: modTok.Line}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	if !p.acceptSymbol(")") {
		for {
			c := Conn{Line: p.peek().Line}
			if p.acceptSymbol(".") {
				port, err := p.expectIdent()
				if err != nil {
					return err
				}
				c.Port = port.Text
				if err := p.expectSymbol("("); err != nil {
					return err
				}
				if !p.acceptSymbol(")") {
					e, err := p.parseExpr()
					if err != nil {
						return err
					}
					c.Expr = e
					if err := p.expectSymbol(")"); err != nil {
						return err
					}
				}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				c.Expr = e
			}
			inst.Conns = append(inst.Conns, c)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	m.Instances = append(m.Instances, inst)
	return nil
}

func (p *Parser) parseOneParam(m *Module) error {
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	e, err := p.parseExpr()
	if err != nil {
		return err
	}
	v, err := p.constEval(e)
	if err != nil {
		return fmt.Errorf("parameter %s: %w", nameTok.Text, err)
	}
	m.Params = append(m.Params, Param{Name: nameTok.Text, Value: v, Line: nameTok.Line})
	p.params[nameTok.Text] = v
	return nil
}

func (p *Parser) parseDecl(m *Module) error {
	t := p.next() // input/output/inout/wire/reg/integer
	dir := DirNone
	kind := KindWire
	switch t.Text {
	case "input":
		dir = DirInput
	case "output":
		dir = DirOutput
	case "inout":
		dir = DirInout
	case "reg":
		kind = KindReg
	case "integer":
		kind = KindReg
	}
	if dir != DirNone {
		if p.acceptKeyword("reg") {
			kind = KindReg
		} else {
			p.acceptKeyword("wire")
		}
	}
	rng := Range{Scalar: true}
	if t.Text == "integer" {
		rng = Range{MSB: 31, LSB: 0}
	}
	r, has, err := p.tryParseRange()
	if err != nil {
		return err
	}
	if has {
		rng = r
	}
	for {
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		// Merge with an existing port-list entry if present (non-ANSI style:
		// module m(a); input a; ...).
		if d := m.Decl(nameTok.Text); d != nil {
			if dir != DirNone {
				d.Dir = dir
			}
			if kind == KindReg {
				d.Kind = KindReg
			}
			if has || !rng.Scalar {
				d.Range = rng
			}
		} else {
			m.Decls = append(m.Decls, Decl{
				Name: nameTok.Text, Dir: dir, Kind: kind, Range: rng, Line: nameTok.Line,
			})
		}
		if p.acceptSymbol("=") {
			// Wire declaration with initializer: treat as continuous assign.
			rhs, err := p.parseExpr()
			if err != nil {
				return err
			}
			m.Assigns = append(m.Assigns, Assign{
				LHS:  LValue{Name: nameTok.Text, Line: nameTok.Line},
				RHS:  rhs,
				Line: nameTok.Line,
			})
		}
		if p.acceptSymbol(",") {
			continue
		}
		return p.expectSymbol(";")
	}
}

// tryParseRange parses [const : const] if present.
func (p *Parser) tryParseRange() (Range, bool, error) {
	if !(p.peek().Kind == TokSymbol && p.peek().Text == "[") {
		return Range{}, false, nil
	}
	p.next()
	msbE, err := p.parseExpr()
	if err != nil {
		return Range{}, false, err
	}
	msb, err := p.constEval(msbE)
	if err != nil {
		return Range{}, false, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return Range{}, false, err
	}
	lsbE, err := p.parseExpr()
	if err != nil {
		return Range{}, false, err
	}
	lsb, err := p.constEval(lsbE)
	if err != nil {
		return Range{}, false, err
	}
	if err := p.expectSymbol("]"); err != nil {
		return Range{}, false, err
	}
	return Range{MSB: int(msb), LSB: int(lsb)}, true, nil
}

func (p *Parser) parseAssign(m *Module) error {
	start := p.next() // assign
	for {
		lv, err := p.parseLValue()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("="); err != nil {
			return err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return err
		}
		m.Assigns = append(m.Assigns, Assign{LHS: lv, RHS: rhs, Line: start.Line})
		if p.acceptSymbol(",") {
			continue
		}
		return p.expectSymbol(";")
	}
}

func (p *Parser) parseAlways(m *Module) error {
	start := p.next() // always
	blk := AlwaysBlock{Line: start.Line}
	if p.acceptSymbol("@*") {
		blk.Star = true
	} else {
		if err := p.expectSymbol("@"); err != nil {
			return err
		}
		if p.acceptSymbol("*") {
			blk.Star = true
		} else {
			if err := p.expectSymbol("("); err != nil {
				return err
			}
			if p.acceptSymbol("*") {
				blk.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return err
				}
			} else {
				for {
					item := SensItem{}
					if p.acceptKeyword("posedge") {
						item.Edge = EdgePos
					} else if p.acceptKeyword("negedge") {
						item.Edge = EdgeNeg
					}
					sig, err := p.expectIdent()
					if err != nil {
						return err
					}
					item.Signal = sig.Text
					blk.Sens = append(blk.Sens, item)
					if p.acceptKeyword("or") || p.acceptSymbol(",") {
						continue
					}
					break
				}
				if err := p.expectSymbol(")"); err != nil {
					return err
				}
			}
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return err
	}
	blk.Body = body
	m.Always = append(m.Always, blk)
	return nil
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.Kind == TokKeyword && t.Text == "begin":
		p.next()
		blk := &BlockStmt{Line: t.Line}
		for {
			if p.acceptKeyword("end") {
				return blk, nil
			}
			if p.atEOF() {
				return nil, p.errorf("unexpected EOF in begin/end block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
	case t.Kind == TokKeyword && t.Text == "if":
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: t.Line}
		if p.acceptKeyword("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case t.Kind == TokKeyword && (t.Text == "case" || t.Text == "casez" || t.Text == "casex"):
		return p.parseCase()
	case t.Kind == TokSymbol && t.Text == ";":
		p.next()
		return &NullStmt{Line: t.Line}, nil
	case t.Kind == TokIdent && strings.HasPrefix(t.Text, "$"):
		// System tasks ($display, $finish, ...) are simulation-only: skip
		// the call and treat it as a null statement.
		p.next()
		if p.acceptSymbol("(") {
			depth := 1
			for depth > 0 {
				tok := p.next()
				switch {
				case tok.Kind == TokEOF:
					return nil, p.errorf("unterminated system task arguments")
				case tok.Kind == TokSymbol && tok.Text == "(":
					depth++
				case tok.Kind == TokSymbol && tok.Text == ")":
					depth--
				}
			}
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		return &NullStmt{Line: t.Line}, nil
	case t.Kind == TokIdent:
		lv, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		blocking := true
		if p.acceptSymbol("<=") {
			blocking = false
		} else if !p.acceptSymbol("=") {
			return nil, p.errorf("expected = or <= in assignment")
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lv, RHS: rhs, Blocking: blocking, Line: t.Line}, nil
	default:
		return nil, p.errorf("expected statement")
	}
}

func (p *Parser) parseCase() (Stmt, error) {
	t := p.next() // case/casez/casex — z/x treated as plain case in the
	// two-valued subset.
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	cs := &CaseStmt{Subject: subj, Line: t.Line}
	for {
		if p.acceptKeyword("endcase") {
			return cs, nil
		}
		if p.atEOF() {
			return nil, p.errorf("unexpected EOF in case statement")
		}
		item := CaseItem{Line: p.peek().Line}
		if p.acceptKeyword("default") {
			p.acceptSymbol(":")
		} else {
			for {
				lab, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Labels = append(item.Labels, lab)
				if p.acceptSymbol(",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(":"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		item.Body = body
		cs.Items = append(cs.Items, item)
	}
}

func (p *Parser) parseLValue() (LValue, error) {
	nameTok, err := p.expectIdent()
	if err != nil {
		return LValue{}, err
	}
	lv := LValue{Name: nameTok.Text, Line: nameTok.Line}
	if p.acceptSymbol("[") {
		first, err := p.parseExpr()
		if err != nil {
			return LValue{}, err
		}
		if p.acceptSymbol(":") {
			msb, err := p.constEval(first)
			if err != nil {
				return LValue{}, err
			}
			second, err := p.parseExpr()
			if err != nil {
				return LValue{}, err
			}
			lsb, err := p.constEval(second)
			if err != nil {
				return LValue{}, err
			}
			lv.HasRange = true
			lv.MSB, lv.LSB = int(msb), int(lsb)
		} else {
			lv.Index = first
		}
		if err := p.expectSymbol("]"); err != nil {
			return LValue{}, err
		}
	}
	return lv, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

// binaryPrec maps operators to precedence levels; higher binds tighter.
var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4, "^~": 4, "~^": 4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokSymbol && p.peek().Text == "?" {
		t := p.next()
		thenE, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(":"); err != nil {
			return nil, err
		}
		elseE, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &Ternary{Cond: cond, Then: thenE, Else: elseE, Line: t.Line}, nil
	}
	return cond, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		normOp := op.Text
		switch normOp {
		case "===":
			normOp = "=="
		case "!==":
			normOp = "!="
		case "<<<":
			normOp = "<<"
		case ">>>":
			normOp = ">>"
		case "^~":
			normOp = "~^"
		}
		lhs = &Binary{Op: normOp, A: lhs, B: rhs, Line: op.Line}
	}
}

var unaryOps = map[string]bool{
	"~": true, "!": true, "-": true, "+": true,
	"&": true, "|": true, "^": true, "~&": true, "~|": true, "~^": true,
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokSymbol && unaryOps[t.Text] {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op.Text == "+" {
			return x, nil
		}
		return &Unary{Op: op.Text, X: x, Line: op.Line}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokSymbol && p.peek().Text == "[" {
		open := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.acceptSymbol(":") {
			msb, err := p.constEval(first)
			if err != nil {
				return nil, err
			}
			second, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			lsb, err := p.constEval(second)
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			e = &Slice{X: e, MSB: int(msb), LSB: int(lsb), Line: open.Line}
		} else {
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			e = &Index{X: e, Idx: first, Line: open.Line}
		}
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokIdent:
		p.next()
		if v, ok := p.params[t.Text]; ok {
			return &Number{Value: uint64(v), Line: t.Line}, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case t.Kind == TokNumber:
		p.next()
		v, err := strconv.ParseUint(strings.ReplaceAll(t.Text, "_", ""), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q: %w", t.Line, t.Text, err)
		}
		return &Number{Value: v, Line: t.Line}, nil
	case t.Kind == TokSized:
		p.next()
		return parseSizedLiteral(t)
	case t.Kind == TokSymbol && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokSymbol && t.Text == "{":
		return p.parseConcat()
	default:
		return nil, p.errorf("expected expression")
	}
}

func (p *Parser) parseConcat() (Expr, error) {
	open := p.next() // {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// Replication: {N{expr}}
	if p.peek().Kind == TokSymbol && p.peek().Text == "{" {
		n, err := p.constEval(first)
		if err != nil {
			return nil, fmt.Errorf("line %d: replication count must be constant: %w", open.Line, err)
		}
		p.next() // inner {
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("line %d: replication count must be positive, got %d", open.Line, n)
		}
		return &Repl{Count: int(n), X: inner, Line: open.Line}, nil
	}
	c := &Concat{Parts: []Expr{first}, Line: open.Line}
	for p.acceptSymbol(",") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Parts = append(c.Parts, e)
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseSizedLiteral decodes tokens like 4'b1010, 8'hFF, 'd3, 12'o777.
func parseSizedLiteral(t Token) (Expr, error) {
	text := strings.ReplaceAll(t.Text, "_", "")
	tick := strings.IndexByte(text, '\'')
	width := 0
	if tick > 0 {
		w, err := strconv.Atoi(text[:tick])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad width in %q", t.Line, t.Text)
		}
		width = w
	}
	if width > 64 {
		return nil, fmt.Errorf("line %d: literal width %d exceeds 64-bit subset limit", t.Line, width)
	}
	baseCh := text[tick+1]
	digits := text[tick+2:]
	var base int
	switch baseCh {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	default:
		return nil, fmt.Errorf("line %d: bad base %q", t.Line, string(baseCh))
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return nil, fmt.Errorf("line %d: bad literal %q: %w", t.Line, t.Text, err)
	}
	if width > 0 && width < 64 {
		v &= (uint64(1) << uint(width)) - 1
	}
	return &Number{Value: v, Width: width, Line: t.Line}, nil
}

// constEval folds a constant expression at parse time (for ranges, parameter
// values and replication counts).
func (p *Parser) constEval(e Expr) (int64, error) {
	switch x := e.(type) {
	case *Number:
		return int64(x.Value), nil
	case *Ident:
		if v, ok := p.params[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("identifier %q is not a constant", x.Name)
	case *Unary:
		v, err := p.constEval(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("operator %q not allowed in constant expression", x.Op)
	case *Binary:
		a, err := p.constEval(x.A)
		if err != nil {
			return 0, err
		}
		b, err := p.constEval(x.B)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("division by zero in constant expression")
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, fmt.Errorf("modulo by zero in constant expression")
			}
			return a % b, nil
		case "<<":
			return a << uint(b), nil
		case ">>":
			return a >> uint(b), nil
		}
		return 0, fmt.Errorf("operator %q not allowed in constant expression", x.Op)
	default:
		return 0, fmt.Errorf("expression is not constant")
	}
}
