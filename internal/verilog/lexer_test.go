package verilog

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestLexIdentifiersAndKeywords(t *testing.T) {
	toks, err := Lex("module foo_bar $display _x9")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"module", "foo_bar", "$display", "_x9", ""}
	got := texts(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %q want %q", i, got[i], want[i])
		}
	}
	if toks[0].Kind != TokKeyword {
		t.Errorf("module should lex as keyword, got %v", toks[0].Kind)
	}
	if toks[1].Kind != TokIdent {
		t.Errorf("foo_bar should lex as identifier, got %v", toks[1].Kind)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
	}{
		{"42", TokNumber},
		{"4'b1010", TokSized},
		{"8'hFF", TokSized},
		{"12'o777", TokSized},
		{"'d3", TokSized},
		{"16'd65_535", TokSized},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if toks[0].Kind != c.kind {
			t.Errorf("%s: kind %v, want %v", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Text != c.src {
			t.Errorf("%s: text %q", c.src, toks[0].Text)
		}
	}
}

func TestLexRejectsXZLiterals(t *testing.T) {
	if _, err := Lex("4'b10xz"); err == nil {
		t.Fatal("expected error for x/z literal")
	}
}

func TestLexSymbols(t *testing.T) {
	toks, err := Lex("a <= b == c && d || ~^e <<< 2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "<=", "b", "==", "c", "&&", "d", "||", "~^", "e", "<<<", "2"}
	got := texts(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `a // line comment
	/* block
	   comment */ b`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	if got[0] != "a" || got[1] != "b" {
		t.Errorf("comments not stripped: %v", got)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := Lex("a /* never closed"); err == nil {
		t.Fatal("expected unterminated comment error")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestLexUnexpectedCharacter(t *testing.T) {
	_, err := Lex("a ` b")
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("want unexpected character error, got %v", err)
	}
}

func TestLexEOFKind(t *testing.T) {
	toks, err := Lex("")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Kind != TokEOF {
		t.Fatalf("empty input should produce single EOF, got %v", kinds(toks))
	}
}

func TestTokenStringer(t *testing.T) {
	tok := Token{Kind: TokIdent, Text: "x", Line: 3, Col: 7}
	if s := tok.String(); !strings.Contains(s, "identifier") || !strings.Contains(s, "3:7") {
		t.Errorf("token string %q", s)
	}
	if TokenKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
