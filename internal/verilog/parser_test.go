package verilog

import (
	"strings"
	"testing"
)

const arbiterSrc = `
// Two-port round-robin arbiter with priority on port 0 (paper section 6).
module arbiter2(clk, rst, req0, req1, gnt0, gnt1);
  input clk, rst;
  input req0, req1;
  output reg gnt0, gnt1;

  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0;
      gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule
`

func TestParseArbiter(t *testing.T) {
	m, err := Parse(arbiterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "arbiter2" {
		t.Errorf("module name %q", m.Name)
	}
	if len(m.Ports) != 6 {
		t.Errorf("got %d ports, want 6", len(m.Ports))
	}
	d := m.Decl("gnt0")
	if d == nil {
		t.Fatal("gnt0 not declared")
	}
	if d.Dir != DirOutput || d.Kind != KindReg {
		t.Errorf("gnt0 decl: dir=%v kind=%v", d.Dir, d.Kind)
	}
	if len(m.Always) != 1 {
		t.Fatalf("got %d always blocks", len(m.Always))
	}
	if !m.Always[0].Sequential() {
		t.Error("always block should be sequential")
	}
	clk, edge := m.Always[0].Clock()
	if clk != "clk" || edge != EdgePos {
		t.Errorf("clock = %s %v", clk, edge)
	}
}

func TestParseANSIPorts(t *testing.T) {
	src := `
module m(input clk, input [3:0] a, b, output reg [1:0] y, output z);
  assign z = a[0] & b[1];
  always @(posedge clk) y <= a[1:0] + b[3:2];
endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Decl("a")
	if a == nil || a.Range.Width() != 4 || a.Dir != DirInput {
		t.Fatalf("a decl wrong: %+v", a)
	}
	b := m.Decl("b")
	if b == nil || b.Range.Width() != 4 {
		t.Fatalf("b should inherit [3:0]: %+v", b)
	}
	y := m.Decl("y")
	if y == nil || y.Kind != KindReg || y.Range.Width() != 2 {
		t.Fatalf("y decl wrong: %+v", y)
	}
	z := m.Decl("z")
	if z == nil || !z.Range.Scalar {
		t.Fatalf("z should be scalar: %+v", z)
	}
}

func TestParseParameters(t *testing.T) {
	src := `
module m #(parameter W = 4, parameter D = W*2) (input [W-1:0] a, output [D-1:0] y);
  localparam HALF = D/2;
  assign y = {a, a} << HALF;
endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.ParamValue("D"); !ok || v != 8 {
		t.Errorf("D = %d, %v", v, ok)
	}
	if m.Decl("a").Range.Width() != 4 {
		t.Errorf("a width %d", m.Decl("a").Range.Width())
	}
	if m.Decl("y").Range.Width() != 8 {
		t.Errorf("y width %d", m.Decl("y").Range.Width())
	}
}

func TestParseCase(t *testing.T) {
	src := `
module dec(input [1:0] sel, output reg [3:0] y);
  always @(*) begin
    case (sel)
      2'b00: y = 4'b0001;
      2'b01: y = 4'b0010;
      2'b10, 2'b11: y = 4'b0100;
      default: y = 4'b0000;
    endcase
  end
endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	blk := m.Always[0]
	if blk.Sequential() {
		t.Error("comb block misclassified")
	}
	body, ok := blk.Body.(*BlockStmt)
	if !ok {
		t.Fatalf("body type %T", blk.Body)
	}
	cs, ok := body.Stmts[0].(*CaseStmt)
	if !ok {
		t.Fatalf("stmt type %T", body.Stmts[0])
	}
	if len(cs.Items) != 4 {
		t.Fatalf("case items %d", len(cs.Items))
	}
	if len(cs.Items[2].Labels) != 2 {
		t.Errorf("multi-label arm has %d labels", len(cs.Items[2].Labels))
	}
	if cs.Items[3].Labels != nil {
		t.Error("default arm should have nil labels")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `module m(input a, b, c, output y); assign y = a | b & c; endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	bin, ok := m.Assigns[0].RHS.(*Binary)
	if !ok || bin.Op != "|" {
		t.Fatalf("top op should be |, got %v", ExprString(m.Assigns[0].RHS))
	}
	inner, ok := bin.B.(*Binary)
	if !ok || inner.Op != "&" {
		t.Fatalf("& should bind tighter: %v", ExprString(m.Assigns[0].RHS))
	}
}

func TestParseTernaryAndConcat(t *testing.T) {
	src := `module m(input s, input [1:0] a, b, output [3:0] y);
	  assign y = s ? {a, b} : {2{a}};
	endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tern, ok := m.Assigns[0].RHS.(*Ternary)
	if !ok {
		t.Fatalf("want ternary, got %T", m.Assigns[0].RHS)
	}
	if _, ok := tern.Then.(*Concat); !ok {
		t.Errorf("then-branch should be concat, got %T", tern.Then)
	}
	rep, ok := tern.Else.(*Repl)
	if !ok || rep.Count != 2 {
		t.Errorf("else-branch should be {2{a}}, got %v", ExprString(tern.Else))
	}
}

func TestParseReductionOperators(t *testing.T) {
	src := `module m(input [3:0] a, output x, y, z);
	  assign x = &a;
	  assign y = ~|a;
	  assign z = ^a;
	endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, wantOp := range []string{"&", "~|", "^"} {
		u, ok := m.Assigns[i].RHS.(*Unary)
		if !ok || u.Op != wantOp {
			t.Errorf("assign %d: want unary %s, got %v", i, wantOp, ExprString(m.Assigns[i].RHS))
		}
	}
}

func TestParseBitAndPartSelect(t *testing.T) {
	src := `module m(input [7:0] a, input [2:0] i, output x, output [3:0] y);
	  assign x = a[i];
	  assign y = a[6:3];
	endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Assigns[0].RHS.(*Index); !ok {
		t.Errorf("a[i] should parse as Index, got %T", m.Assigns[0].RHS)
	}
	sl, ok := m.Assigns[1].RHS.(*Slice)
	if !ok || sl.MSB != 6 || sl.LSB != 3 {
		t.Errorf("a[6:3] parse: %v", ExprString(m.Assigns[1].RHS))
	}
}

func TestParseLValueSelects(t *testing.T) {
	src := `module m(input clk, input [7:0] d, output reg [7:0] q);
	  always @(posedge clk) begin
	    q[0] <= d[0];
	    q[7:4] <= d[3:0];
	  end
	endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := m.Always[0].Body.(*BlockStmt)
	a0 := body.Stmts[0].(*AssignStmt)
	if a0.LHS.Index == nil {
		t.Error("q[0] lvalue should have index")
	}
	a1 := body.Stmts[1].(*AssignStmt)
	if !a1.LHS.HasRange || a1.LHS.MSB != 7 || a1.LHS.LSB != 4 {
		t.Errorf("q[7:4] lvalue: %+v", a1.LHS)
	}
}

func TestParseMultipleModules(t *testing.T) {
	src := arbiterSrc + `
module tiny(input a, output y); assign y = ~a; endmodule`
	mods, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 || mods[1].Name != "tiny" {
		t.Fatalf("modules: %d", len(mods))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"module m(input a; endmodule",              // bad port list
		"module m(input a); assign = a; endmodule", // missing lvalue
		"module m(input a); assign y a; endmodule", // missing =
		"module m(input a); always @(posedge) ; endmodule",
		"module m(input a); wire [x:0] w; endmodule", // non-const range
		"module m(input a);",                         // missing endmodule
		"module m(input a); case endmodule",
		"",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseWireInitializer(t *testing.T) {
	src := `module m(input a, b, output y);
	  wire t = a ^ b;
	  assign y = ~t;
	endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Assigns) != 2 {
		t.Fatalf("wire initializer should create an assign, got %d assigns", len(m.Assigns))
	}
	if m.Assigns[0].LHS.Name != "t" {
		t.Errorf("first assign LHS %q", m.Assigns[0].LHS.Name)
	}
}

func TestParseSensitivityList(t *testing.T) {
	src := `module m(input a, b, output reg y);
	  always @(a or b) y = a & b;
	endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	blk := m.Always[0]
	if blk.Sequential() || len(blk.Sens) != 2 {
		t.Fatalf("sens list: %+v", blk.Sens)
	}
}

func TestParseAlwaysStarVariants(t *testing.T) {
	for _, hdr := range []string{"always @(*)", "always @*"} {
		src := "module m(input a, output reg y); " + hdr + " y = ~a; endmodule"
		m, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", hdr, err)
		}
		if !m.Always[0].Star {
			t.Errorf("%s: not flagged as star", hdr)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	src := `module m(input a, b, input [3:0] v, output y);
	  assign y = (a & ~b) | (v[2] == 1'b1);
	endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := ExprString(m.Assigns[0].RHS)
	for _, sub := range []string{"a", "~", "b", "v", "[2]", "=="} {
		if !strings.Contains(s, sub) {
			t.Errorf("expr string %q missing %q", s, sub)
		}
	}
}

func TestRangeWidth(t *testing.T) {
	cases := []struct {
		r    Range
		want int
	}{
		{Range{Scalar: true}, 1},
		{Range{MSB: 3, LSB: 0}, 4},
		{Range{MSB: 0, LSB: 7}, 8}, // reversed range
		{Range{MSB: 5, LSB: 5}, 1},
	}
	for _, c := range cases {
		if got := c.r.Width(); got != c.want {
			t.Errorf("width(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestSizedLiteralValues(t *testing.T) {
	cases := []struct {
		src   string
		value uint64
		width int
	}{
		{"4'b1010", 10, 4},
		{"8'hFF", 255, 8},
		{"3'd9", 1, 3}, // truncated to width
		{"'d3", 3, 0},
		{"12'o777", 511, 12},
	}
	for _, c := range cases {
		src := "module m(output [63:0] y); assign y = " + c.src + "; endmodule"
		m, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		n, ok := m.Assigns[0].RHS.(*Number)
		if !ok {
			t.Fatalf("%s: not a number", c.src)
		}
		if n.Value != c.value || n.Width != c.width {
			t.Errorf("%s: value=%d width=%d, want %d/%d", c.src, n.Value, n.Width, c.value, c.width)
		}
	}
}

func TestOversizedLiteralRejected(t *testing.T) {
	src := "module m(output y); assign y = 128'hFF; endmodule"
	if _, err := Parse(src); err == nil {
		t.Fatal("128-bit literal should be rejected")
	}
}
