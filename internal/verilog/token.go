// Package verilog implements a lexer and parser for the synthesizable
// Verilog-2001 subset used by the GoldMine reproduction: module declarations
// (ANSI and non-ANSI port styles), wire/reg/input/output declarations with
// vector ranges, continuous assignments, and always blocks containing
// blocking/non-blocking assignments, if/else, case statements and begin/end
// blocks. Expressions cover the usual bitwise, logical, relational,
// arithmetic, shift, reduction, concatenation, replication, bit-select,
// part-select and conditional operators.
package verilog

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber  // plain decimal literal: 42
	TokSized   // sized/base literal: 4'b1010, 8'hff, 'd3
	TokKeyword // reserved word
	TokSymbol  // operator or punctuation
	TokString  // "quoted string" (system-task arguments only)
)

var kindNames = map[TokenKind]string{
	TokEOF:     "EOF",
	TokIdent:   "identifier",
	TokNumber:  "number",
	TokSized:   "sized literal",
	TokKeyword: "keyword",
	TokSymbol:  "symbol",
	TokString:  "string",
}

func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s %q at %d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// keywords is the set of reserved words recognized by the lexer. Words the
// parser does not understand still lex as keywords so that error messages
// point at the right construct.
var keywords = map[string]bool{
	"module": true, "endmodule": true,
	"input": true, "output": true, "inout": true,
	"wire": true, "reg": true, "integer": true,
	"assign": true, "always": true, "initial": true,
	"begin": true, "end": true,
	"if": true, "else": true,
	"case": true, "casez": true, "casex": true, "endcase": true,
	"default": true,
	"posedge": true, "negedge": true, "or": true,
	"parameter": true, "localparam": true,
	"function": true, "endfunction": true,
	"generate": true, "endgenerate": true,
	"for": true, "while": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[s] }

// multi-character symbols, longest first per starting byte. The lexer tries
// three-byte, then two-byte, then single-byte symbols.
var threeSymbols = map[string]bool{
	"===": true, "!==": true, "<<<": true, ">>>": true,
}

var twoSymbols = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true,
	"&&": true, "||": true, "<<": true, ">>": true,
	"~&": true, "~|": true, "~^": true, "^~": true,
	"@*": true,
}

var oneSymbols = map[byte]bool{
	'(': true, ')': true, '[': true, ']': true, '{': true, '}': true,
	',': true, ';': true, ':': true, '.': true, '#': true, '@': true,
	'=': true, '+': true, '-': true, '*': true, '/': true, '%': true,
	'&': true, '|': true, '^': true, '~': true, '!': true,
	'<': true, '>': true, '?': true,
}
