package verilog

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

// PortDir is the direction of a module port.
type PortDir int

// Port directions. DirNone marks internal wire/reg declarations.
const (
	DirNone PortDir = iota
	DirInput
	DirOutput
	DirInout
)

func (d PortDir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	default:
		return "internal"
	}
}

// NetKind distinguishes wire-like from reg-like declarations.
type NetKind int

// Net kinds.
const (
	KindWire NetKind = iota
	KindReg
)

func (k NetKind) String() string {
	if k == KindReg {
		return "reg"
	}
	return "wire"
}

// Range is a vector range [MSB:LSB]. A scalar signal has MSB == LSB == 0 and
// Scalar == true.
type Range struct {
	MSB, LSB int
	Scalar   bool
}

// Width returns the bit width implied by the range.
func (r Range) Width() int {
	if r.Scalar {
		return 1
	}
	if r.MSB >= r.LSB {
		return r.MSB - r.LSB + 1
	}
	return r.LSB - r.MSB + 1
}

func (r Range) String() string {
	if r.Scalar {
		return ""
	}
	return fmt.Sprintf("[%d:%d]", r.MSB, r.LSB)
}

// Decl is a signal declaration (port or internal).
type Decl struct {
	Name  string
	Dir   PortDir
	Kind  NetKind
	Range Range
	Line  int
}

// Param is a parameter or localparam declaration with an integer value.
type Param struct {
	Name  string
	Value int64
	Line  int
}

// Conn is one port connection of a module instance.
type Conn struct {
	// Port is the formal port name; empty for positional connections.
	Port string
	// Expr is the actual; nil for explicitly unconnected ports (.p()).
	Expr Expr
	Line int
}

// Instance is a module instantiation.
type Instance struct {
	Module string
	Name   string
	Conns  []Conn
	Line   int
}

// Module is a parsed Verilog module.
type Module struct {
	Name      string
	Ports     []string // port order as written in the header
	Decls     []Decl
	Params    []Param
	Assigns   []Assign
	Always    []AlwaysBlock
	Instances []Instance
	Line      int
}

// Decl returns the declaration for name, or nil.
func (m *Module) Decl(name string) *Decl {
	for i := range m.Decls {
		if m.Decls[i].Name == name {
			return &m.Decls[i]
		}
	}
	return nil
}

// ParamValue returns the value of a parameter and whether it exists.
func (m *Module) ParamValue(name string) (int64, bool) {
	for _, p := range m.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return 0, false
}

// Assign is a continuous assignment: assign LHS = RHS.
type Assign struct {
	LHS  LValue
	RHS  Expr
	Line int
}

// EdgeKind describes a sensitivity-list entry.
type EdgeKind int

// Edge kinds.
const (
	EdgeNone EdgeKind = iota // level sensitivity (combinational)
	EdgePos
	EdgeNeg
)

// SensItem is one entry of an always sensitivity list.
type SensItem struct {
	Edge   EdgeKind
	Signal string
}

// AlwaysBlock is an always process. Star is true for always @(*) (or an
// explicit all-inputs level list). A block with any edge-triggered item is
// sequential.
type AlwaysBlock struct {
	Sens []SensItem
	Star bool
	Body Stmt
	Line int
}

// Sequential reports whether the block is edge-triggered.
func (a *AlwaysBlock) Sequential() bool {
	for _, s := range a.Sens {
		if s.Edge != EdgeNone {
			return true
		}
	}
	return false
}

// Clock returns the clock signal of a sequential block: the first posedge or
// negedge item. Designs in this subset use a single clock.
func (a *AlwaysBlock) Clock() (string, EdgeKind) {
	for _, s := range a.Sens {
		if s.Edge != EdgeNone {
			return s.Signal, s.Edge
		}
	}
	return "", EdgeNone
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is a procedural statement.
type Stmt interface {
	stmtNode()
	StmtLine() int
}

// BlockStmt is a begin/end group.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// AssignStmt is a procedural assignment; Blocking selects = vs <=.
type AssignStmt struct {
	LHS      LValue
	RHS      Expr
	Blocking bool
	Line     int
}

// IfStmt is if (Cond) Then else Else; Else may be nil.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Line int
}

// CaseItem is one arm of a case statement. A nil Labels slice marks default.
type CaseItem struct {
	Labels []Expr
	Body   Stmt
	Line   int
}

// CaseStmt is case (Subject) ... endcase.
type CaseStmt struct {
	Subject Expr
	Items   []CaseItem
	Line    int
}

// NullStmt is a lone semicolon.
type NullStmt struct{ Line int }

func (s *BlockStmt) stmtNode()  {}
func (s *AssignStmt) stmtNode() {}
func (s *IfStmt) stmtNode()     {}
func (s *CaseStmt) stmtNode()   {}
func (s *NullStmt) stmtNode()   {}

// StmtLine returns the source line of the statement.
func (s *BlockStmt) StmtLine() int  { return s.Line }
func (s *AssignStmt) StmtLine() int { return s.Line }
func (s *IfStmt) StmtLine() int     { return s.Line }
func (s *CaseStmt) StmtLine() int   { return s.Line }
func (s *NullStmt) StmtLine() int   { return s.Line }

// LValue is an assignment target: a whole signal, a bit, or a part-select.
type LValue struct {
	Name string
	// Index is the bit-select expression, nil when whole-signal or ranged.
	Index Expr
	// HasRange selects a constant part-select [MSB:LSB].
	HasRange bool
	MSB, LSB int
	Line     int
}

func (lv LValue) String() string {
	switch {
	case lv.Index != nil:
		return fmt.Sprintf("%s[%s]", lv.Name, ExprString(lv.Index))
	case lv.HasRange:
		return fmt.Sprintf("%s[%d:%d]", lv.Name, lv.MSB, lv.LSB)
	default:
		return lv.Name
	}
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is a Verilog expression node.
type Expr interface {
	exprNode()
	ExprLine() int
}

// Ident references a signal or parameter by name.
type Ident struct {
	Name string
	Line int
}

// Number is an integer literal. Width 0 means unsized (context-determined).
type Number struct {
	Value uint64
	Width int
	Line  int
}

// Unary applies a prefix operator: ~ ! - & | ^ ~& ~| ~^ (reductions included).
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary applies an infix operator.
type Binary struct {
	Op   string
	A, B Expr
	Line int
}

// Ternary is Cond ? Then : Else.
type Ternary struct {
	Cond, Then, Else Expr
	Line             int
}

// Index is a dynamic or constant bit-select X[Idx].
type Index struct {
	X    Expr
	Idx  Expr
	Line int
}

// Slice is a constant part-select X[MSB:LSB].
type Slice struct {
	X        Expr
	MSB, LSB int
	Line     int
}

// Concat is {A, B, ...} with the leftmost element most significant.
type Concat struct {
	Parts []Expr
	Line  int
}

// Repl is a replication {N{X}}.
type Repl struct {
	Count int
	X     Expr
	Line  int
}

func (e *Ident) exprNode()   {}
func (e *Number) exprNode()  {}
func (e *Unary) exprNode()   {}
func (e *Binary) exprNode()  {}
func (e *Ternary) exprNode() {}
func (e *Index) exprNode()   {}
func (e *Slice) exprNode()   {}
func (e *Concat) exprNode()  {}
func (e *Repl) exprNode()    {}

// ExprLine returns the source line of the expression.
func (e *Ident) ExprLine() int   { return e.Line }
func (e *Number) ExprLine() int  { return e.Line }
func (e *Unary) ExprLine() int   { return e.Line }
func (e *Binary) ExprLine() int  { return e.Line }
func (e *Ternary) ExprLine() int { return e.Line }
func (e *Index) ExprLine() int   { return e.Line }
func (e *Slice) ExprLine() int   { return e.Line }
func (e *Concat) ExprLine() int  { return e.Line }
func (e *Repl) ExprLine() int    { return e.Line }

// ExprString renders an expression back to Verilog-like text, mainly for
// diagnostics and assertion pretty-printing.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *Number:
		if x.Width > 0 {
			return fmt.Sprintf("%d'd%d", x.Width, x.Value)
		}
		return fmt.Sprintf("%d", x.Value)
	case *Unary:
		return x.Op + parenthesize(x.X)
	case *Binary:
		return parenthesize(x.A) + " " + x.Op + " " + parenthesize(x.B)
	case *Ternary:
		return parenthesize(x.Cond) + " ? " + parenthesize(x.Then) + " : " + parenthesize(x.Else)
	case *Index:
		return parenthesize(x.X) + "[" + ExprString(x.Idx) + "]"
	case *Slice:
		return fmt.Sprintf("%s[%d:%d]", parenthesize(x.X), x.MSB, x.LSB)
	case *Concat:
		parts := make([]string, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = ExprString(p)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Repl:
		return fmt.Sprintf("{%d{%s}}", x.Count, ExprString(x.X))
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case *Ident, *Number, *Index, *Slice, *Concat, *Repl:
		return ExprString(e)
	default:
		return "(" + ExprString(e) + ")"
	}
}
