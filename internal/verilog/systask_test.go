package verilog

import "testing"

func TestSystemTasksSkipped(t *testing.T) {
	src := `
module m(input clk, a, output reg y);
  always @(posedge clk) begin
    y <= a;
    $display("y is now %b", a);
    if (a) $finish;
  end
endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := m.Always[0].Body.(*BlockStmt)
	if len(body.Stmts) != 3 {
		t.Fatalf("statements %d want 3", len(body.Stmts))
	}
	if _, ok := body.Stmts[1].(*NullStmt); !ok {
		t.Errorf("$display should lower to a null statement, got %T", body.Stmts[1])
	}
	ifStmt, ok := body.Stmts[2].(*IfStmt)
	if !ok {
		t.Fatalf("if statement lost: %T", body.Stmts[2])
	}
	if _, ok := ifStmt.Then.(*NullStmt); !ok {
		t.Errorf("$finish should lower to a null statement, got %T", ifStmt.Then)
	}
}

func TestStringLexing(t *testing.T) {
	toks, err := Lex(`$display("hello (world)")`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokString || toks[2].Text != "hello (world)" {
		t.Errorf("string token: %v", toks[2])
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := Lex("\"new\nline\""); err == nil {
		t.Error("newline in string should error")
	}
}

func TestNestedParensInSystemTask(t *testing.T) {
	src := `
module m(input clk, a, output reg y);
  always @(posedge clk) begin
    $display("val", (a & (a | a)));
    y <= a;
  end
endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := m.Always[0].Body.(*BlockStmt)
	if len(body.Stmts) != 2 {
		t.Fatalf("statements %d want 2", len(body.Stmts))
	}
}
