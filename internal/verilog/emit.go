package verilog

import (
	"fmt"
	"strings"
)

// Emit renders a module back to Verilog source. Re-parsing the emitted text
// yields a structurally equivalent module (round-trip tested), which makes
// Emit useful for dumping flattened hierarchies and for golden files.
func Emit(m *Module) string {
	b := &strings.Builder{}
	fmt.Fprintf(b, "module %s(%s);\n", m.Name, strings.Join(m.Ports, ", "))
	for _, p := range m.Params {
		fmt.Fprintf(b, "  localparam %s = %d;\n", p.Name, p.Value)
	}
	for _, d := range m.Decls {
		rng := ""
		if !d.Range.Scalar {
			rng = fmt.Sprintf(" [%d:%d]", d.Range.MSB, d.Range.LSB)
		}
		switch {
		case d.Dir != DirNone && d.Kind == KindReg:
			fmt.Fprintf(b, "  %s reg%s %s;\n", d.Dir, rng, d.Name)
		case d.Dir != DirNone:
			fmt.Fprintf(b, "  %s%s %s;\n", d.Dir, rng, d.Name)
		case d.Kind == KindReg:
			fmt.Fprintf(b, "  reg%s %s;\n", rng, d.Name)
		default:
			fmt.Fprintf(b, "  wire%s %s;\n", rng, d.Name)
		}
	}
	for _, a := range m.Assigns {
		fmt.Fprintf(b, "  assign %s = %s;\n", a.LHS, ExprString(a.RHS))
	}
	for i := range m.Always {
		emitAlways(b, &m.Always[i])
	}
	for _, inst := range m.Instances {
		var conns []string
		for _, c := range inst.Conns {
			actual := ""
			if c.Expr != nil {
				actual = ExprString(c.Expr)
			}
			if c.Port != "" {
				conns = append(conns, fmt.Sprintf(".%s(%s)", c.Port, actual))
			} else {
				conns = append(conns, actual)
			}
		}
		fmt.Fprintf(b, "  %s %s (%s);\n", inst.Module, inst.Name, strings.Join(conns, ", "))
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func emitAlways(b *strings.Builder, blk *AlwaysBlock) {
	if blk.Star || len(blk.Sens) == 0 {
		b.WriteString("  always @(*)\n")
	} else {
		var items []string
		for _, s := range blk.Sens {
			switch s.Edge {
			case EdgePos:
				items = append(items, "posedge "+s.Signal)
			case EdgeNeg:
				items = append(items, "negedge "+s.Signal)
			default:
				items = append(items, s.Signal)
			}
		}
		fmt.Fprintf(b, "  always @(%s)\n", strings.Join(items, " or "))
	}
	emitStmt(b, blk.Body, "    ")
}

func emitStmt(b *strings.Builder, s Stmt, indent string) {
	switch st := s.(type) {
	case nil:
		fmt.Fprintf(b, "%s;\n", indent)
	case *BlockStmt:
		fmt.Fprintf(b, "%sbegin\n", indent)
		for _, sub := range st.Stmts {
			emitStmt(b, sub, indent+"  ")
		}
		fmt.Fprintf(b, "%send\n", indent)
	case *AssignStmt:
		op := "<="
		if st.Blocking {
			op = "="
		}
		fmt.Fprintf(b, "%s%s %s %s;\n", indent, st.LHS, op, ExprString(st.RHS))
	case *IfStmt:
		fmt.Fprintf(b, "%sif (%s)\n", indent, ExprString(st.Cond))
		emitStmt(b, st.Then, indent+"  ")
		if st.Else != nil {
			fmt.Fprintf(b, "%selse\n", indent)
			emitStmt(b, st.Else, indent+"  ")
		}
	case *CaseStmt:
		fmt.Fprintf(b, "%scase (%s)\n", indent, ExprString(st.Subject))
		for _, item := range st.Items {
			if item.Labels == nil {
				fmt.Fprintf(b, "%s  default:\n", indent)
			} else {
				var labs []string
				for _, l := range item.Labels {
					labs = append(labs, ExprString(l))
				}
				fmt.Fprintf(b, "%s  %s:\n", indent, strings.Join(labs, ", "))
			}
			emitStmt(b, item.Body, indent+"    ")
		}
		fmt.Fprintf(b, "%sendcase\n", indent)
	case *NullStmt:
		fmt.Fprintf(b, "%s;\n", indent)
	default:
		fmt.Fprintf(b, "%s// unsupported %T\n", indent, s)
	}
}
