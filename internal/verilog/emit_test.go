package verilog

import (
	"strings"
	"testing"
)

func TestEmitBasics(t *testing.T) {
	m, err := Parse(arbiterSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := Emit(m)
	for _, want := range []string{
		"module arbiter2(clk, rst, req0, req1, gnt0, gnt1);",
		"output reg gnt0;",
		"always @(posedge clk)",
		"gnt0 <= 0;",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("emit missing %q:\n%s", want, out)
		}
	}
	// Re-parse must succeed.
	if _, err := Parse(out); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
}

func TestEmitCaseAndVectors(t *testing.T) {
	src := `
module dec(input [1:0] sel, output reg [3:0] y);
  always @(*) begin
    case (sel)
      2'b00: y = 4'b0001;
      2'b01, 2'b10: y = 4'b0010;
      default: y = 4'b0000;
    endcase
  end
endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Emit(m)
	for _, want := range []string{"case (sel)", "default:", "output reg [3:0] y;", "endcase"} {
		if !strings.Contains(out, want) {
			t.Errorf("emit missing %q:\n%s", want, out)
		}
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
}

func TestEmitInstances(t *testing.T) {
	mods, err := ParseFile(hierSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := Emit(mods[0])
	for _, want := range []string{"inv u_inv (.a(a), .y(t));", "counter u_cnt ("} {
		if !strings.Contains(out, want) {
			t.Errorf("emit missing %q:\n%s", want, out)
		}
	}
}

func TestEmitNegedgeAndSensList(t *testing.T) {
	src := `
module m(input clk, a, b, output reg y, output reg z);
  always @(negedge clk) y <= a;
  always @(*) if (a) z = b; else z = ~b;
endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Emit(m)
	if !strings.Contains(out, "negedge clk") {
		t.Errorf("negedge lost:\n%s", out)
	}
	if !strings.Contains(out, "else") {
		t.Errorf("else lost:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
}

func TestEmitLocalparams(t *testing.T) {
	src := `module m(input a, output y);
	  localparam K = 3;
	  assign y = a;
	endmodule`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Emit(m)
	if !strings.Contains(out, "localparam K = 3;") {
		t.Errorf("localparam lost:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatal(err)
	}
}
