package verilog

import (
	"fmt"
	"strings"
)

// Lexer turns Verilog source text into a token stream. It strips // and
// /* */ comments and tracks line/column positions for diagnostics.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input, returning the token slice terminated by a
// TokEOF token, or the first lexical error encountered.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			startLine := lx.line
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return fmt.Errorf("line %d: unterminated block comment", startLine)
				}
				if lx.peekByte() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBaseDigit(c byte) bool {
	return isDigit(c) || c == '_' || c == 'x' || c == 'X' || c == 'z' || c == 'Z' ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := lx.peekByte()

	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := TokIdent
		if IsKeyword(text) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case isDigit(c), c == '\'':
		return lx.lexNumber(line, col)

	case c == '"':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && lx.peekByte() != '"' {
			if lx.peekByte() == '\n' {
				return Token{}, fmt.Errorf("line %d:%d: unterminated string", line, col)
			}
			lx.advance()
		}
		if lx.pos >= len(lx.src) {
			return Token{}, fmt.Errorf("line %d:%d: unterminated string", line, col)
		}
		text := lx.src[start:lx.pos]
		lx.advance() // closing quote
		return Token{Kind: TokString, Text: text, Line: line, Col: col}, nil
	}

	// Symbols: longest match first.
	if lx.pos+3 <= len(lx.src) && threeSymbols[lx.src[lx.pos:lx.pos+3]] {
		text := lx.src[lx.pos : lx.pos+3]
		lx.advance()
		lx.advance()
		lx.advance()
		return Token{Kind: TokSymbol, Text: text, Line: line, Col: col}, nil
	}
	if lx.pos+2 <= len(lx.src) && twoSymbols[lx.src[lx.pos:lx.pos+2]] {
		text := lx.src[lx.pos : lx.pos+2]
		lx.advance()
		lx.advance()
		return Token{Kind: TokSymbol, Text: text, Line: line, Col: col}, nil
	}
	if oneSymbols[c] {
		lx.advance()
		return Token{Kind: TokSymbol, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, fmt.Errorf("line %d:%d: unexpected character %q", line, col, string(c))
}

// lexNumber handles decimal literals, sized literals like 4'b1010 and 8'hFF,
// and base-only literals like 'd3. Underscores inside digit runs are allowed.
func (lx *Lexer) lexNumber(line, col int) (Token, error) {
	start := lx.pos
	// Optional size prefix (decimal digits).
	for lx.pos < len(lx.src) && (isDigit(lx.peekByte()) || lx.peekByte() == '_') {
		lx.advance()
	}
	if lx.peekByte() != '\'' {
		text := lx.src[start:lx.pos]
		if text == "" {
			return Token{}, fmt.Errorf("line %d:%d: malformed number", line, col)
		}
		return Token{Kind: TokNumber, Text: text, Line: line, Col: col}, nil
	}
	lx.advance() // consume '
	base := lx.peekByte()
	switch base {
	case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
		lx.advance()
	default:
		return Token{}, fmt.Errorf("line %d:%d: bad base character %q in literal", lx.line, lx.col, string(base))
	}
	digStart := lx.pos
	for lx.pos < len(lx.src) && isBaseDigit(lx.peekByte()) {
		lx.advance()
	}
	if lx.pos == digStart {
		return Token{}, fmt.Errorf("line %d:%d: literal missing digits", lx.line, lx.col)
	}
	text := lx.src[start:lx.pos]
	if strings.ContainsAny(text, "xXzZ") {
		return Token{}, fmt.Errorf("line %d:%d: x/z literals are not supported (two-valued subset): %s", line, col, text)
	}
	return Token{Kind: TokSized, Text: text, Line: line, Col: col}, nil
}
