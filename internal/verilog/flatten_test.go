package verilog

import (
	"strings"
	"testing"
)

const hierSrc = `
module top(input clk, rst, input a, b, output y, output [1:0] cnt);
  wire t;
  inv u_inv (.a(a), .y(t));
  counter u_cnt (.clk(clk), .rst(rst), .en(t & b), .q(cnt));
  assign y = t ^ b;
endmodule

module inv(input a, output y);
  assign y = ~a;
endmodule

module counter(input clk, rst, en, output reg [1:0] q);
  always @(posedge clk)
    if (rst) q <= 0;
    else if (en) q <= q + 1;
endmodule
`

func TestParseInstances(t *testing.T) {
	mods, err := ParseFile(hierSrc)
	if err != nil {
		t.Fatal(err)
	}
	top := mods[0]
	if len(top.Instances) != 2 {
		t.Fatalf("instances %d", len(top.Instances))
	}
	if top.Instances[0].Module != "inv" || top.Instances[0].Name != "u_inv" {
		t.Errorf("instance 0: %+v", top.Instances[0])
	}
	if top.Instances[1].Conns[2].Port != "en" {
		t.Errorf("named connection parse: %+v", top.Instances[1].Conns)
	}
}

func TestParsePositionalInstance(t *testing.T) {
	src := `
module top(input a, output y);
  inv i0 (a, y);
endmodule
module inv(input a, output y); assign y = ~a; endmodule`
	mods, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if mods[0].Instances[0].Conns[0].Port != "" {
		t.Error("positional connection should have empty port name")
	}
	flat, err := Flatten(mods, "top")
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Instances) != 0 && flat.Instances != nil {
		t.Error("flattened module should not keep instances")
	}
	if len(flat.Assigns) == 0 {
		t.Error("child logic not spliced")
	}
}

func TestFlattenHierarchy(t *testing.T) {
	mods, err := ParseFile(hierSrc)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(mods, "top")
	if err != nil {
		t.Fatal(err)
	}
	// Child always block spliced with renamed q -> cnt (direct substitution).
	if len(flat.Always) != 1 {
		t.Fatalf("always blocks %d want 1", len(flat.Always))
	}
	// The expression-connected en port becomes a prefixed wire with an
	// assign.
	found := false
	for _, a := range flat.Assigns {
		if strings.HasPrefix(a.LHS.Name, "u_cnt_en") {
			found = true
		}
	}
	if !found {
		t.Errorf("expression-connected input wire missing; assigns: %d", len(flat.Assigns))
	}
	// Direct-substituted output: cnt must be assigned in the spliced always
	// block (via rename q -> cnt).
	set := map[string]bool{}
	collectAssignedNames(flat.Always[0].Body, set)
	if !set["cnt"] {
		t.Errorf("child register output not renamed to cnt: %v", set)
	}
}

func collectAssignedNames(s Stmt, set map[string]bool) {
	switch st := s.(type) {
	case *BlockStmt:
		for _, sub := range st.Stmts {
			collectAssignedNames(sub, set)
		}
	case *AssignStmt:
		set[st.LHS.Name] = true
	case *IfStmt:
		collectAssignedNames(st.Then, set)
		if st.Else != nil {
			collectAssignedNames(st.Else, set)
		}
	case *CaseStmt:
		for _, item := range st.Items {
			collectAssignedNames(item.Body, set)
		}
	}
}

func TestFlattenNested(t *testing.T) {
	src := `
module top(input a, output y);
  mid m0 (.a(a), .y(y));
endmodule
module mid(input a, output y);
  leaf l0 (.a(a), .y(y));
endmodule
module leaf(input a, output y);
  assign y = ~a;
endmodule`
	mods, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(mods, "top")
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Assigns) != 1 {
		t.Fatalf("nested flatten assigns %d want 1", len(flat.Assigns))
	}
}

func TestFlattenErrors(t *testing.T) {
	cases := []struct {
		src, top, want string
	}{
		{`module a(input x, output y); b i0 (.x(x), .y(y)); endmodule`, "a", "unknown module"},
		{`module a(input x, output y); a i0 (.x(x), .y(y)); endmodule`, "a", "recursive"},
		{
			`module t(input x, output y); c i0 (.nope(x)); endmodule
			 module c(input x, output y); assign y = x; endmodule`,
			"t", "no port",
		},
		{
			`module t(input x, output y); c i0 (.x(x), .y(x & x)); endmodule
			 module c(input x, output y); assign y = x; endmodule`,
			"t", "plain identifier",
		},
		{
			`module t(input x, output y); c i0 (.x(x), .x(x)); endmodule
			 module c(input x, output y); assign y = x; endmodule`,
			"t", "twice",
		},
	}
	for _, tc := range cases {
		mods, err := ParseFile(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.top, err)
		}
		_, err = Flatten(mods, tc.top)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("top %s: want error containing %q, got %v", tc.top, tc.want, err)
		}
	}
	if _, err := Flatten(nil, "zzz"); err == nil {
		t.Error("missing top should error")
	}
}

func TestFlattenUnconnectedInputDefaultsZero(t *testing.T) {
	src := `
module top(input a, output y);
  gate g0 (.a(a), .y(y));
endmodule
module gate(input a, b, output y);
  assign y = a | b;
endmodule`
	mods, _ := ParseFile(src)
	flat, err := Flatten(mods, "top")
	if err != nil {
		t.Fatal(err)
	}
	// b gets a default-zero assign.
	found := false
	for _, a := range flat.Assigns {
		if strings.HasPrefix(a.LHS.Name, "g0_b") {
			if n, ok := a.RHS.(*Number); ok && n.Value == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("unconnected input should default to zero")
	}
}
